// Package bamboo is the public API of this reproduction of "Releasing
// Locks As Early As You Can: Reducing Contention of Hotspots by Violating
// Two-Phase Locking" (Guo, Wu, Yan, Yu — SIGMOD 2021).
//
// It exposes an embeddable in-memory transactional engine with pluggable
// concurrency control: the paper's Bamboo protocol (early lock retiring
// over Wound-Wait with dirty reads, commit-semaphore dependency tracking
// and cascading aborts), the 2PL baselines (Wound-Wait, Wait-Die,
// No-Wait), the Silo OCC baseline, and an interactive-mode wrapper that
// charges a network round trip per operation.
//
// Quick start:
//
//	db := bamboo.Open(bamboo.Options{Protocol: bamboo.Bamboo})
//	accounts := db.CreateTable(bamboo.NewSchema("accounts",
//		bamboo.Column{Name: "balance", Type: bamboo.ColInt64}))
//	... load rows ...
//	err := db.Execute(0, func(tx bamboo.Tx) error {
//		return tx.Update(accounts.Get(42), func(img []byte) {
//			accounts.Schema.AddInt64(img, 0, 100)
//		})
//	})
//
// See the examples directory for runnable programs and internal/bench for
// the paper's experiments.
package bamboo

import (
	"fmt"
	"time"

	"bamboo/internal/core"
	"bamboo/internal/lock"
	"bamboo/internal/occ"
	"bamboo/internal/rpcsim"
	"bamboo/internal/stats"
	"bamboo/internal/storage"
	"bamboo/internal/wal"
)

// Protocol selects the concurrency-control scheme of a DB.
type Protocol int

const (
	// Bamboo is the paper's protocol with all optimizations (§3.5) and
	// δ = 0.15.
	Bamboo Protocol = iota
	// BambooBase is Bamboo without Optimization 2 (every write retires).
	BambooBase
	// WoundWait, WaitDie and NoWait are the 2PL baselines.
	WoundWait
	// WaitDie is the Wait-Die 2PL baseline.
	WaitDie
	// NoWait is the No-Wait 2PL baseline.
	NoWait
	// Silo is the OCC baseline.
	Silo
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case Bamboo:
		return "BAMBOO"
	case BambooBase:
		return "BAMBOO-base"
	case WoundWait:
		return "WOUND_WAIT"
	case WaitDie:
		return "WAIT_DIE"
	case NoWait:
		return "NO_WAIT"
	case Silo:
		return "SILO"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// Re-exported storage types: schemas and tables are defined once and used
// by every engine.
type (
	// Schema is a fixed-width row layout.
	Schema = storage.Schema
	// Column describes one column of a schema.
	Column = storage.Column
	// Table is a collection of rows with a primary hash index.
	Table = storage.Table
	// Row is one tuple.
	Row = storage.Row
	// Tx is the operation interface transaction bodies use.
	Tx = core.Tx
	// TxnFunc is a transaction body.
	TxnFunc = core.TxnFunc
	// Report summarizes a run's throughput, abort rates and time
	// breakdown.
	Report = stats.Report
)

// Column type constants.
const (
	// ColInt64 is a 64-bit integer column.
	ColInt64 = storage.ColInt64
	// ColFloat64 is a 64-bit float column.
	ColFloat64 = storage.ColFloat64
	// ColBytes is a fixed-width byte-string column.
	ColBytes = storage.ColBytes
)

// NewSchema builds a schema from columns.
func NewSchema(name string, cols ...Column) *Schema { return storage.NewSchema(name, cols...) }

// ErrUserAbort requests a final, user-initiated abort from inside a
// transaction body; the transaction is rolled back and not retried.
var ErrUserAbort = core.ErrUserAbort

// Options configures Open.
type Options struct {
	// Protocol selects the concurrency control scheme (default Bamboo).
	Protocol Protocol
	// Delta overrides Bamboo's Optimization-2 δ (default 0.15; 0 retires
	// every write eagerly).
	Delta *float64
	// DisableDynamicTS turns off timestamp-on-first-conflict.
	DisableDynamicTS bool
	// InteractiveRTT, when positive, wraps the engine in the
	// interactive-mode transport charging this round trip per operation.
	InteractiveRTT time.Duration
	// AbortBackoffMax bounds the randomized retry backoff after aborts.
	AbortBackoffMax time.Duration
	// MVCC keeps a small bounded version chain per row so transactions
	// marked read-only (core.MarkReadOnly) execute at a snapshot
	// timestamp with zero lock acquisitions and zero aborts. Only the
	// lock engines support it; Silo ignores the flag.
	MVCC bool
	// MVCCPruneInterval is the background version-pruner tick
	// (0 = default 2ms). Only meaningful with MVCC set.
	MVCCPruneInterval time.Duration
	// GroupCommit batches commit-record device writes through the WAL's
	// epoch-based group committer; GroupCommitInterval is the epoch
	// accumulation window (0 = flush as soon as records are pending).
	GroupCommit         bool
	GroupCommitInterval time.Duration
	// WALDir, when set, puts the commit log on real files under this
	// directory (one append-only log per storage partition) with the
	// WALFsync policy; Close syncs and closes them. After a crash,
	// Internal().ReplayDir rebuilds row state from such a directory.
	WALDir           string
	WALFsync         FsyncPolicy
	WALFsyncInterval time.Duration
	// Adaptive enables runtime contention control on the Bamboo protocols
	// (ignored otherwise): a background feedback engine classifies
	// entries hot or cold from their observed conflict rates and applies
	// early lock release only where contention pays for it, plus batched
	// reader grants on hot entries. AdaptiveInterval is the sampling tick
	// (0 = 10ms).
	Adaptive         bool
	AdaptiveInterval time.Duration
	// MetricsAddr, when set, serves live observability endpoints
	// (/metrics Prometheus text exposition, /debug/vars JSON, /healthz)
	// on this address for the DB's lifetime; ":0" binds a free port —
	// read it back with DB.MetricsAddr. See docs/METRICS.md for the
	// exported series. Empty (the default) disables the endpoint at zero
	// hot-path cost.
	MetricsAddr string
	// MetricsInterval is the rate-collector tick deriving per-second
	// gauges (commits/sec, aborts/sec, ...) from successive counter
	// samples; 0 = 1s. Only meaningful with MetricsAddr.
	MetricsInterval time.Duration
}

// FsyncPolicy re-exports the WAL fsync policies for Options.WALFsync.
type FsyncPolicy = wal.FsyncPolicy

// Fsync policies for Options.WALFsync.
const (
	// FsyncNone never syncs (page-cache durability only).
	FsyncNone = wal.FsyncNone
	// FsyncBatch syncs once per device write (per record, or per group-
	// commit epoch when GroupCommit is on).
	FsyncBatch = wal.FsyncBatch
	// FsyncInterval syncs at most once per WALFsyncInterval.
	FsyncInterval = wal.FsyncInterval
)

// DB is a database instance bound to one protocol.
type DB struct {
	inner  *core.DB
	engine core.Engine
	silo   *occ.Engine
}

// Open creates a database.
func Open(opts Options) *DB {
	var cfg core.Config
	switch opts.Protocol {
	case Bamboo:
		cfg = core.Bamboo()
	case BambooBase:
		cfg = core.BambooBase()
	case WoundWait:
		cfg = core.WoundWait()
	case WaitDie:
		cfg = core.WaitDie()
	case NoWait:
		cfg = core.NoWait()
	case Silo:
		cfg = core.Config{}
	}
	if opts.Delta != nil {
		cfg.Delta = *opts.Delta
	}
	if opts.DisableDynamicTS {
		cfg.DynamicTS = false
	}
	cfg.AbortBackoffMax = opts.AbortBackoffMax
	if opts.Protocol != Silo {
		cfg.MVCC = opts.MVCC
		cfg.MVCCPruneInterval = opts.MVCCPruneInterval
	}
	cfg.GroupCommit = opts.GroupCommit
	cfg.GroupCommitInterval = opts.GroupCommitInterval
	cfg.WALDir = opts.WALDir
	cfg.WALFsync = opts.WALFsync
	cfg.WALFsyncInterval = opts.WALFsyncInterval
	cfg.Adaptive = opts.Adaptive
	cfg.AdaptiveInterval = opts.AdaptiveInterval
	cfg.MetricsAddr = opts.MetricsAddr
	cfg.MetricsInterval = opts.MetricsInterval

	db := &DB{inner: core.NewDB(cfg)}
	if opts.Protocol == Silo {
		db.silo = occ.New(db.inner)
		db.engine = db.silo
	} else {
		db.engine = core.NewLockEngine(db.inner)
	}
	if opts.InteractiveRTT > 0 {
		db.engine = rpcsim.New(db.engine, rpcsim.Config{RTT: opts.InteractiveRTT})
	}
	return db
}

// Close releases background resources (the Silo epoch advancer and the
// group-commit flusher).
func (db *DB) Close() {
	if db.silo != nil {
		db.silo.Close()
	}
	db.inner.Close()
}

// Protocol returns the display name of the configured protocol.
func (db *DB) Protocol() string { return db.engine.Name() }

// MetricsAddr returns the bound address of the metrics endpoint ("" when
// Options.MetricsAddr was empty). With ":0" this is where the server
// actually listens.
func (db *DB) MetricsAddr() string { return db.inner.MetricsAddr() }

// CreateTable creates a table, panicking on duplicate names (schema setup
// is static).
func (db *DB) CreateTable(schema *Schema) *Table {
	return db.inner.Catalog.MustCreateTable(schema, 0)
}

// Table returns a table by name, or nil.
func (db *DB) Table(name string) *Table { return db.inner.Catalog.Table(name) }

// Execute runs fn as one serializable transaction on behalf of the given
// worker, retrying internally until it commits or aborts finally. It
// returns nil on commit and on user abort; any other error is a
// programming error.
func (db *DB) Execute(worker int, fn TxnFunc) error {
	sess := db.engine.NewSession(worker, &stats.Collector{})
	return sess.Run(fn)
}

// Session is a long-lived per-worker execution context that accumulates
// statistics; prefer it over Execute in loops.
type Session struct {
	inner core.Session
	col   *stats.Collector
}

// NewSession creates a session for a worker.
func (db *DB) NewSession(worker int) *Session {
	col := &stats.Collector{}
	return &Session{inner: db.engine.NewSession(worker, col), col: col}
}

// Run executes one logical transaction.
func (s *Session) Run(fn TxnFunc) error { return s.inner.Run(fn) }

// Stats summarizes the session so far.
func (s *Session) Stats() Report {
	return stats.Summarize("session", s.col.Elapsed, []*stats.Collector{s.col}, nil)
}

// Run drives a closed-loop multi-worker run: workers goroutines each
// execute perWorker transactions produced by gen and the merged report is
// returned. gen receives (worker, seq).
func (db *DB) Run(workers, perWorker int, gen func(worker, seq int) TxnFunc) (Report, error) {
	res := core.RunN(db.engine, workers, perWorker, core.Generator(gen))
	return res.Report, res.Err
}

// RunFor is Run with a wall-clock budget instead of a transaction count.
func (db *DB) RunFor(workers int, d time.Duration, gen func(worker, seq int) TxnFunc) (Report, error) {
	res := core.RunFor(db.engine, workers, d, core.Generator(gen))
	return res.Report, res.Err
}

// Engine exposes the underlying core.Engine for integration with the
// workload and bench packages.
func (db *DB) Engine() core.Engine { return db.engine }

// Internal returns the underlying core.DB (catalog, WAL, commit hooks).
func (db *DB) Internal() *core.DB { return db.inner }

// LockVariant re-exports the lock variants for advanced configuration via
// the internal packages.
type LockVariant = lock.Variant
