package bamboo_test

import (
	"testing"
	"time"

	"bamboo"
)

func openWithTable(t *testing.T, opts bamboo.Options) (*bamboo.DB, *bamboo.Table) {
	t.Helper()
	db := bamboo.Open(opts)
	t.Cleanup(db.Close)
	schema := bamboo.NewSchema("kv",
		bamboo.Column{Name: "v", Type: bamboo.ColInt64})
	tbl := db.CreateTable(schema)
	for k := uint64(0); k < 8; k++ {
		if _, err := tbl.InsertRow(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	return db, tbl
}

func TestOpenAllProtocols(t *testing.T) {
	protos := []bamboo.Protocol{
		bamboo.Bamboo, bamboo.BambooBase, bamboo.WoundWait,
		bamboo.WaitDie, bamboo.NoWait, bamboo.Silo,
	}
	for _, p := range protos {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			db, tbl := openWithTable(t, bamboo.Options{Protocol: p})
			rep, err := db.Run(4, 100, func(worker, seq int) bamboo.TxnFunc {
				return func(tx bamboo.Tx) error {
					return tx.Update(tbl.Get(uint64(seq%8)), func(img []byte) {
						tbl.Schema.AddInt64(img, 0, 1)
					})
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Commits != 400 {
				t.Fatalf("commits = %d", rep.Commits)
			}
			var total int64
			for k := uint64(0); k < 8; k++ {
				img := tbl.Get(k).Entry.CurrentData()
				if p := tbl.Get(k).OCCImage.Load(); p != nil {
					img = *p
				}
				total += tbl.Schema.GetInt64(img, 0)
			}
			if total != 400 {
				t.Fatalf("total = %d (lost updates)", total)
			}
		})
	}
}

func TestExecuteAndSession(t *testing.T) {
	db, tbl := openWithTable(t, bamboo.Options{Protocol: bamboo.Bamboo})
	if err := db.Execute(0, func(tx bamboo.Tx) error {
		return tx.Update(tbl.Get(0), func(img []byte) {
			tbl.Schema.SetInt64(img, 0, 7)
		})
	}); err != nil {
		t.Fatal(err)
	}
	sess := db.NewSession(1)
	if err := sess.Run(func(tx bamboo.Tx) error {
		img, err := tx.Read(tbl.Get(0))
		if err != nil {
			return err
		}
		if got := tbl.Schema.GetInt64(img, 0); got != 7 {
			t.Errorf("read %d, want 7", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if st := sess.Stats(); st.Commits != 1 {
		t.Fatalf("session commits = %d", st.Commits)
	}
}

func TestUserAbortPublicAPI(t *testing.T) {
	db, tbl := openWithTable(t, bamboo.Options{Protocol: bamboo.Bamboo})
	if err := db.Execute(0, func(tx bamboo.Tx) error {
		if err := tx.Update(tbl.Get(0), func(img []byte) {
			tbl.Schema.SetInt64(img, 0, 99)
		}); err != nil {
			return err
		}
		return bamboo.ErrUserAbort
	}); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Schema.GetInt64(tbl.Get(0).Entry.CurrentData(), 0); got != 0 {
		t.Fatalf("value = %d after user abort", got)
	}
}

func TestInteractiveOption(t *testing.T) {
	db, tbl := openWithTable(t, bamboo.Options{
		Protocol: bamboo.Bamboo, InteractiveRTT: time.Microsecond,
	})
	if got := db.Protocol(); got != "BAMBOO/interactive" {
		t.Fatalf("protocol = %q", got)
	}
	rep, err := db.RunFor(2, 20*time.Millisecond, func(worker, seq int) bamboo.TxnFunc {
		return func(tx bamboo.Tx) error {
			_, err := tx.Read(tbl.Get(0))
			return err
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Commits == 0 {
		t.Fatal("no commits in interactive mode")
	}
}

func TestDeltaOverride(t *testing.T) {
	zero := 0.0
	db, tbl := openWithTable(t, bamboo.Options{Protocol: bamboo.Bamboo, Delta: &zero})
	if got := db.Protocol(); got != "BAMBOO-base" {
		t.Fatalf("protocol with delta=0 = %q", got)
	}
	_ = tbl
}
