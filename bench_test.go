// Benchmarks regenerating every table and figure of the paper's
// evaluation. Run all of them with
//
//	go test -bench=. -benchmem
//
// or a single figure with e.g. -bench=BenchmarkFig6. Each benchmark
// executes its experiment once per b.N at a moderate scale and reports
// committed transactions/second for the headline protocol as the custom
// metric "bamboo_tps" alongside the standard ns/op. The full sweeps with
// printed series (what EXPERIMENTS.md records) come from
// cmd/bamboo-bench.
package bamboo_test

import (
	"testing"
	"time"

	"bamboo/internal/bench"
)

func benchScale() bench.Scale {
	return bench.Scale{
		Threads:       []int{8},
		TxnsPerWorker: 400,
		Rows:          30000,
		RTT:           20 * time.Microsecond,
	}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e := bench.Find(id)
	if e == nil {
		b.Fatalf("experiment %s not found", id)
	}
	s := benchScale()
	b.ResetTimer()
	var lastTPS float64
	for i := 0; i < b.N; i++ {
		rows := e.Run(s)
		for _, r := range rows {
			if r.Protocol == "BAMBOO" {
				lastTPS = r.Report.ThroughputTPS
			}
		}
	}
	if lastTPS > 0 {
		b.ReportMetric(lastTPS, "bamboo_tps")
	}
}

// BenchmarkFig1Schedules reproduces Figure 1 (schedule overlap with one
// hotspot).
func BenchmarkFig1Schedules(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkSec52SingleHotspot reproduces the §5.2 single-hotspot numbers.
func BenchmarkSec52SingleHotspot(b *testing.B) { runExperiment(b, "sec5.2") }

// BenchmarkFig3aSpeedupVsThreads reproduces Figure 3a.
func BenchmarkFig3aSpeedupVsThreads(b *testing.B) { runExperiment(b, "fig3a") }

// BenchmarkFig3bHotspotPosition reproduces Figure 3b.
func BenchmarkFig3bHotspotPosition(b *testing.B) { runExperiment(b, "fig3b") }

// BenchmarkFig4SecondHotspotDistance reproduces Figure 4.
func BenchmarkFig4SecondHotspotDistance(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5FirstHotspotDistance reproduces Figure 5.
func BenchmarkFig5FirstHotspotDistance(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6YCSBThreads reproduces Figure 6.
func BenchmarkFig6YCSBThreads(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7LongReadOnly reproduces Figure 7.
func BenchmarkFig7LongReadOnly(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8YCSBZipf reproduces Figure 8.
func BenchmarkFig8YCSBZipf(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9TPCCThreads reproduces Figure 9.
func BenchmarkFig9TPCCThreads(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10TPCCWarehouses reproduces Figure 10.
func BenchmarkFig10TPCCWarehouses(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11IC3 reproduces Figure 11.
func BenchmarkFig11IC3(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkDeltaSweep reproduces the §5.1 δ calibration.
func BenchmarkDeltaSweep(b *testing.B) { runExperiment(b, "delta") }

// BenchmarkAblationOptimizations measures the §3.5 optimizations
// individually.
func BenchmarkAblationOptimizations(b *testing.B) { runExperiment(b, "ablation") }
