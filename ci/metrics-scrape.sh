#!/usr/bin/env bash
# Vacuous-exporter guard: run a real benchmark with the live metrics
# endpoint enabled and scrape /metrics mid-run. The endpoint must show the
# counters actually moving — per-partition conflicts, WAL fsyncs, latency
# quantiles — not just render valid exposition over zeros. A refactor that
# detaches the Live mirror, drops the partition counters, or stops wiring
# WAL stats keeps every unit test green; this catches it.
#
# The workload is the durability sweep at quick scale: file-backed WALs
# (so bamboo_wal_syncs_total must advance) under zipfian contention (so
# bamboo_partition_conflicts_total must advance). Run it locally:
#
#   go build -o bamboo-bench ./cmd/bamboo-bench
#   ci/metrics-scrape.sh
set -euo pipefail

BENCH="${BENCH:-./bamboo-bench}"
BASE="${TMPDIR_BASE:-${RUNNER_TEMP:-/tmp}}/metrics-scrape"
rm -rf "$BASE"
mkdir -p "$BASE"

"$BENCH" -exp durability -quick -metrics-addr 127.0.0.1:0 \
  > "$BASE/bench.log" 2>&1 &
pid=$!

# The bench prints "metrics: http://<addr>/metrics" to stderr once the
# endpoint is bound; the port is kernel-assigned, so parse it out.
addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's#^metrics: http://\([^/]*\)/metrics$#\1#p' "$BASE/bench.log" 2>/dev/null | head -1)"
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "bench never printed its metrics address"
  cat "$BASE/bench.log"
  exit 1
fi
echo "scraping http://$addr/metrics"

# Poll while the bench runs. Any single scrape may land in the gap
# between benchmark points (bamboo_up 0, no counters), so each required
# series only needs to show a nonzero value in SOME scrape.
saw_conflicts=0
saw_syncs=0
saw_quantile=0
saw_recycled=0
scrapes=0
while kill -0 "$pid" 2>/dev/null; do
  if curl -sf "http://$addr/metrics" > "$BASE/scrape.txt" 2>/dev/null; then
    scrapes=$((scrapes + 1))
    if grep -Eq '^bamboo_partition_conflicts_total\{partition="[0-9]+"\} [1-9]' "$BASE/scrape.txt"; then
      [ "$saw_conflicts" = 1 ] || cp "$BASE/scrape.txt" "$BASE/scrape-conflicts.txt"
      saw_conflicts=1
    fi
    if grep -Eq '^bamboo_wal_syncs_total [1-9]' "$BASE/scrape.txt"; then
      [ "$saw_syncs" = 1 ] || cp "$BASE/scrape.txt" "$BASE/scrape-syncs.txt"
      saw_syncs=1
    fi
    if grep -Eq '^bamboo_txn_latency_seconds\{quantile="0\.99"\} [0-9]' "$BASE/scrape.txt"; then
      saw_quantile=1
    fi
    # The durability sweep runs the non-MVCC locking engine, so the
    # image-recycling protocol is live: spare buffers captured at commit
    # release must be serving write copies, not just rendering zeros.
    if grep -Eq '^bamboo_image_pool_recycled_total [1-9]' "$BASE/scrape.txt"; then
      saw_recycled=1
    fi
  fi
  sleep 0.2
done
wait "$pid" || { echo "bench run failed"; cat "$BASE/bench.log"; exit 1; }

echo "scrapes: $scrapes (conflicts=$saw_conflicts syncs=$saw_syncs quantile=$saw_quantile recycled=$saw_recycled)"
fail=0
if [ "$saw_conflicts" != 1 ]; then
  echo "FAIL: no scrape showed a nonzero bamboo_partition_conflicts_total"
  fail=1
fi
if [ "$saw_syncs" != 1 ]; then
  echo "FAIL: no scrape showed a nonzero bamboo_wal_syncs_total"
  fail=1
fi
if [ "$saw_quantile" != 1 ]; then
  echo "FAIL: no scrape showed bamboo_txn_latency_seconds quantiles"
  fail=1
fi
if [ "$saw_recycled" != 1 ]; then
  echo "FAIL: no scrape showed a nonzero bamboo_image_pool_recycled_total"
  fail=1
fi
if [ "$fail" != 0 ]; then
  echo "== last scrape =="
  cat "$BASE/scrape.txt" 2>/dev/null || echo "(no successful scrape)"
  exit 1
fi

# Show a mid-run sample in the job log: the per-partition conflict series
# and the latency summary operators would dashboard.
echo "== sample mid-run scrape (conflict + latency series) =="
grep -E '^bamboo_(partition_conflicts_total|wal_syncs_total|txn_latency_seconds)' \
  "$BASE/scrape-conflicts.txt" | head -20
