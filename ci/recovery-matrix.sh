#!/usr/bin/env bash
# Crash-recovery matrix cell: SIGKILL a checkpointing crashtest run at one
# storage-lifecycle phase and verify replay. The CI matrix supplies PHASE
# (before-checkpoint | during-checkpoint | after-checkpoint |
# after-truncation) and FSYNC (batch | interval); run it locally the same
# way:
#
#   go build -o crashtest ./cmd/crashtest
#   PHASE=after-truncation FSYNC=batch ci/recovery-matrix.sh
set -euo pipefail

PHASE="${PHASE:?set PHASE: before-checkpoint|during-checkpoint|after-checkpoint|after-truncation}"
FSYNC="${FSYNC:-batch}"
BASE="${TMPDIR_BASE:-${RUNNER_TEMP:-/tmp}}/recovery-$PHASE-$FSYNC"
WAL="$BASE/wal"
CKPT="$BASE/ckpt"
CT="${CRASHTEST:-./crashtest}"
rm -rf "$BASE"
mkdir -p "$WAL" "$CKPT"

# run_kill <seconds> [run flags...]: start the workload, wait for READY,
# let it commit for <seconds>, then SIGKILL it mid-flight.
run_kill() {
  local naptime="$1"
  shift
  "$CT" -mode run -wal "$WAL" -partitions 4 -threads 4 -fsync "$FSYNC" "$@" \
    > "$BASE/run.log" 2>&1 &
  local pid=$!
  for _ in $(seq 1 100); do
    grep -q READY "$BASE/run.log" 2>/dev/null && break
    sleep 0.1
  done
  grep -q READY "$BASE/run.log" || { echo "runner never became ready"; cat "$BASE/run.log"; exit 1; }
  sleep "$naptime"
  kill -9 "$pid"
  wait "$pid" || true
}

applied_bytes() {
  grep -o '[0-9]* applied bytes' "$1" | grep -o '[0-9]*'
}

case "$PHASE" in
before-checkpoint)
  # Interval far beyond the run: the kill lands before any snapshot
  # exists, so recovery must fall back to a full replay of the logs.
  run_kill 2 -checkpoint-dir "$CKPT" -checkpoint-interval 1h
  "$CT" -mode recover -wal "$WAL" -checkpoint-dir "$CKPT" -partitions 4 \
    -min-records 100 | tee "$BASE/rec.log"
  grep -q 'checkpoints: 0 restored' "$BASE/rec.log" \
    || { echo "a snapshot appeared before the interval elapsed"; exit 1; }
  ;;
during-checkpoint)
  # Snapshot every 25ms with truncation on: the kill races snapshot
  # writes, prunes and segment unlinks. Whatever temp files the kill
  # leaves behind, recovery must land on a durable (atomically renamed)
  # snapshot plus its log suffix.
  run_kill 2 -checkpoint-dir "$CKPT" -checkpoint-interval 25ms \
    -segment-bytes 65536 -truncate
  "$CT" -mode recover -wal "$WAL" -checkpoint-dir "$CKPT" -partitions 4 \
    -min-records 1 -min-checkpoints 1
  ;;
after-checkpoint)
  run_kill 4 -checkpoint-dir "$CKPT" -checkpoint-interval 150ms
  "$CT" -mode recover -wal "$WAL" -checkpoint-dir "$CKPT" -partitions 4 \
    -min-records 1 -min-checkpoints 4 | tee "$BASE/suffix.log"
  # Truncation is off in this phase, so a checkpoint-blind full replay
  # still works — and the checkpointed one must apply strictly fewer
  # log bytes (the bounded-recovery claim, device-independent).
  "$CT" -mode recover -wal "$WAL" -partitions 4 -min-records 100 \
    | tee "$BASE/full.log"
  suffix=$(applied_bytes "$BASE/suffix.log")
  full=$(applied_bytes "$BASE/full.log")
  echo "suffix replay applied $suffix bytes; full replay $full bytes"
  [ "$suffix" -lt "$full" ] || { echo "checkpoint did not shrink the replay"; exit 1; }
  ;;
after-truncation)
  run_kill 6 -checkpoint-dir "$CKPT" -checkpoint-interval 100ms \
    -segment-bytes 65536 -truncate
  # Truncation is an unlink: partition 0 (the hot one) must have lost its
  # oldest segments, so the first on-disk segment no longer starts at 1.
  first=$(basename "$(ls "$WAL"/wal-000-*.seg | head -1)")
  seq=${first#wal-000-}
  seq=$((10#${seq%.seg}))
  echo "partition 0's oldest on-disk segment starts at seq $seq"
  [ "$seq" -gt 1 ] || { echo "truncation never dropped a segment"; exit 1; }
  "$CT" -mode recover -wal "$WAL" -checkpoint-dir "$CKPT" -partitions 4 \
    -min-records 1 -min-checkpoints 1 -max-wal-bytes 8000000
  # Bit-rot probe: flip one payload bit of a committed, CRC-covered
  # frame. Replay must refuse the log as corrupt — treating it as a torn
  # tail would silently drop a committed transaction.
  "$CT" -mode flip -wal "$WAL"
  "$CT" -mode recover -wal "$WAL" -checkpoint-dir "$CKPT" -partitions 4 \
    -expect-corrupt
  ;;
*)
  echo "unknown PHASE: $PHASE"
  exit 1
  ;;
esac

echo "PHASE $PHASE (fsync=$FSYNC) OK"
