#!/usr/bin/env bash
# Storage-lifecycle soak: repeated SIGKILL/recover cycles against ONE
# persistent WAL + checkpoint state with truncation on. Every cycle the
# survivor's logs and snapshots are replayed (crashtest run mode resumes
# before serving), killed again at a varying point, and verified:
# conservation oracle intact, on-disk log inside its byte budget. The
# per-cycle output accumulates in $SOAK_REPORT for the CI artifact.
#
#   go build -o crashtest ./cmd/crashtest
#   SOAK_MINUTES=10 ci/soak.sh
set -euo pipefail

MINUTES="${SOAK_MINUTES:-10}"
BASE="${TMPDIR_BASE:-${RUNNER_TEMP:-/tmp}}/soak"
WAL="$BASE/wal"
CKPT="$BASE/ckpt"
REPORT="${SOAK_REPORT:-soak-report.txt}"
CT="${CRASHTEST:-./crashtest}"
rm -rf "$BASE"
mkdir -p "$WAL" "$CKPT"
: > "$REPORT"

deadline=$(($(date +%s) + MINUTES * 60))
cycle=0
while [ "$(date +%s)" -lt "$deadline" ]; do
  cycle=$((cycle + 1))
  "$CT" -mode run -wal "$WAL" -checkpoint-dir "$CKPT" \
    -checkpoint-interval 100ms -segment-bytes 262144 -truncate \
    -partitions 4 -threads 4 -fsync batch > "$BASE/run.log" 2>&1 &
  pid=$!
  for _ in $(seq 1 200); do
    grep -q READY "$BASE/run.log" 2>/dev/null && break
    sleep 0.1
  done
  grep -q READY "$BASE/run.log" \
    || { echo "cycle $cycle: runner never became ready" | tee -a "$REPORT"; cat "$BASE/run.log"; exit 1; }
  # Vary the kill point so cycles die before, during and long after
  # checkpoints and truncations.
  sleep $(((cycle % 5) + 2))
  kill -9 "$pid" 2>/dev/null || true
  wait "$pid" || true
  {
    echo "=== cycle $cycle ($(date -u +%H:%M:%SZ)) ==="
    "$CT" -mode recover -wal "$WAL" -checkpoint-dir "$CKPT" -partitions 4 \
      -min-records 1 -max-wal-bytes 16000000
    du -sb "$WAL" "$CKPT"
  } | tee -a "$REPORT"
done

echo "soak complete: $cycle kill/recover cycles in ${MINUTES}m" | tee -a "$REPORT"
[ "$cycle" -ge 5 ] || { echo "fewer than 5 cycles completed"; exit 1; }
