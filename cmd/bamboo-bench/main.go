// Command bamboo-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	bamboo-bench -list
//	bamboo-bench -exp fig6
//	bamboo-bench -exp all -threads 1,2,4,8,16,32 -duration 1s
//
// Each experiment prints one block per x-axis value with one line per
// protocol: throughput, abort rate and the amortized per-transaction time
// breakdown (lock wait / commit wait / abort / useful), matching the
// series the paper plots. EXPERIMENTS.md records the measured shapes
// against the paper's.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"bamboo/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list     = flag.Bool("list", false, "list experiments")
		threads  = flag.String("threads", "", "comma-separated worker sweep (default: powers of two up to 2×GOMAXPROCS)")
		duration = flag.Duration("duration", 400*time.Millisecond, "wall-clock budget per data point (0 = fixed transaction count)")
		txns     = flag.Int("txns", 2000, "transactions per worker per point when -duration=0")
		rows     = flag.Int("rows", 100000, "table rows for synthetic/YCSB workloads")
		rtt      = flag.Duration("rtt", 100*time.Microsecond, "interactive-mode round trip per operation")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *exp == "" {
			os.Exit(0)
		}
	}

	s := bench.Full()
	s.Duration = *duration
	s.TxnsPerWorker = *txns
	s.Rows = *rows
	s.RTT = *rtt
	if *threads != "" {
		s.Threads = nil
		for _, part := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "bad -threads value %q\n", part)
				os.Exit(2)
			}
			s.Threads = append(s.Threads, n)
		}
	}

	var run []bench.Experiment
	if *exp == "all" {
		run = bench.All()
	} else {
		e := bench.Find(*exp)
		if e == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		run = []bench.Experiment{*e}
	}

	for _, e := range run {
		start := time.Now()
		rows := e.Run(s)
		bench.Print(os.Stdout, fmt.Sprintf("%s (%s, took %v)", e.ID, e.Title, time.Since(start).Round(time.Millisecond)), rows)
		fmt.Println()
	}
}
