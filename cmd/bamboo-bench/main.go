// Command bamboo-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	bamboo-bench -list
//	bamboo-bench -exp fig6
//	bamboo-bench -exp all -threads 1,2,4,8,16,32 -duration 1s
//	bamboo-bench -exp fig6 -quick -json -out BENCH_fig6.json
//	bamboo-bench -exp all -csv -out results.csv
//
// By default each experiment prints one block per x-axis value with one
// line per protocol: throughput, abort rate, the amortized per-
// transaction time breakdown (lock wait / commit wait / abort / useful)
// and latency percentiles, matching the series the paper plots.
// EXPERIMENTS.md records the measured shapes against the paper's.
//
// With -json the run is emitted as a schema-versioned document
// (internal/bench/report) carrying the full latency distribution
// (p50/p90/p95/p99/p99.9) per point — the BENCH_*.json trajectory
// artifact that cmd/bench-diff consumes as a CI regression gate. -csv
// emits the same points as one flat table. -out directs either format to
// a file; without it the document goes to stdout and the human-readable
// table moves to stderr so piping stays clean.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"bamboo/internal/bench"
	"bamboo/internal/bench/report"
	"bamboo/internal/telemetry"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list     = flag.Bool("list", false, "list experiments")
		threads  = flag.String("threads", "", "comma-separated worker sweep (default: powers of two up to 2×GOMAXPROCS)")
		duration = flag.Duration("duration", 400*time.Millisecond, "wall-clock budget per data point (0 = fixed transaction count)")
		txns     = flag.Int("txns", 2000, "transactions per worker per point when -duration=0")
		rows     = flag.Int("rows", 100000, "table rows for synthetic/YCSB workloads")
		rtt      = flag.Duration("rtt", 100*time.Microsecond, "interactive-mode round trip per operation")
		parts    = flag.Int("partitions", 0, "storage partition count for every point's tables (0/1 = flat single-partition layout; survives -quick)")
		roFrac   = flag.Float64("readonly-frac", 0, "pin the readmvcc experiment's read-only-fraction ladder to this value in (0,1] (0 = built-in 0.5/0.9/0.95/1.0 sweep; survives -quick)")
		seed     = flag.Int64("seed", 0, "fixed workload RNG seed for every point's loader and generators, so A/B runs see identical key streams (0 = built-in seeding; survives -quick)")
		repeat   = flag.Int("repeat", 0, "run every point this many times and report the median sample (0 = once, or the quick scale's built-in 5)")
		quick    = flag.Bool("quick", false, "use the small CI smoke scale (overrides -threads/-duration/-txns/-rows/-rtt)")
		jsonOut  = flag.Bool("json", false, "emit the schema-versioned JSON result document")
		csvOut   = flag.Bool("csv", false, "emit results as one flat CSV table")
		out      = flag.String("out", "", "write -json/-csv output to this file instead of stdout")
		metrics  = flag.String("metrics-addr", "", "serve live telemetry (/metrics, /debug/vars, /healthz) on this address for the whole run; \":0\" picks a free port (printed to stderr)")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *exp == "" {
			os.Exit(0)
		}
	}
	if *jsonOut && *csvOut {
		fmt.Fprintln(os.Stderr, "-json and -csv are mutually exclusive")
		os.Exit(2)
	}
	if *out != "" && !*jsonOut && !*csvOut {
		fmt.Fprintln(os.Stderr, "-out requires -json or -csv")
		os.Exit(2)
	}

	if *parts < 0 {
		fmt.Fprintf(os.Stderr, "bad -partitions value %d\n", *parts)
		os.Exit(2)
	}
	if *roFrac < 0 || *roFrac > 1 {
		fmt.Fprintf(os.Stderr, "bad -readonly-frac value %g (want 0..1)\n", *roFrac)
		os.Exit(2)
	}

	var s bench.Scale
	if *quick {
		s = bench.Quick()
	} else {
		s = bench.Full()
		s.Duration = *duration
		s.TxnsPerWorker = *txns
		s.Rows = *rows
		s.RTT = *rtt
		if *threads != "" {
			s.Threads = nil
			s.ThreadsExplicit = true
			for _, part := range strings.Split(*threads, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil || n < 1 {
					fmt.Fprintf(os.Stderr, "bad -threads value %q\n", part)
					os.Exit(2)
				}
				s.Threads = append(s.Threads, n)
			}
		}
	}
	// -partitions, -readonly-frac and -seed compose with -quick: the CI
	// routing-path smoke run is "quick scale, 2 partitions", the MVCC
	// gate pins a single read-heavy point the same way, and a pinned seed
	// makes quick-scale A/B comparisons key-stream-identical.
	s.Partitions = *parts
	s.ReadOnlyFrac = *roFrac
	s.Seed = *seed
	if *repeat > 0 {
		s.Repeat = *repeat
	}

	// One process-level registry outlives every benchmark point: each
	// point's DB attaches on creation and detaches on close, so a scraper
	// polling the address sees whichever point is live (bamboo_up 0 in
	// the gaps between points).
	if *metrics != "" {
		reg := telemetry.NewRegistry()
		addr, err := reg.Serve(*metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve -metrics-addr %s: %v\n", *metrics, err)
			os.Exit(1)
		}
		defer reg.Close()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", addr)
		s.Metrics = reg
	}

	var run []bench.Experiment
	if *exp == "all" {
		run = bench.All()
	} else {
		e := bench.Find(*exp)
		if e == nil {
			// List the valid ids right here: a typo'd -exp in a CI script
			// must fail loudly with the fix on screen, not no-op.
			fmt.Fprintf(os.Stderr, "unknown experiment %q; valid experiments:\n", *exp)
			for _, e := range bench.All() {
				fmt.Fprintf(os.Stderr, "  %-10s %s\n", e.ID, e.Title)
			}
			fmt.Fprintln(os.Stderr, "  all        run every experiment")
			os.Exit(2)
		}
		run = []bench.Experiment{*e}
	}

	// When machine-readable output shares stdout, the table moves to
	// stderr so `bamboo-bench -json | jq` works.
	table := io.Writer(os.Stdout)
	if (*jsonOut || *csvOut) && *out == "" {
		table = os.Stderr
	}

	doc := report.NewFile(s.ReportScale())
	for _, e := range run {
		start := time.Now()
		rows := e.Run(s)
		took := time.Since(start)
		doc.Experiments = append(doc.Experiments, bench.ToExperiment(e.ID, e.Title, took, rows))
		bench.Print(table, fmt.Sprintf("%s (%s, took %v)", e.ID, e.Title, took.Round(time.Millisecond)), rows)
		fmt.Fprintln(table)
	}

	if !*jsonOut && !*csvOut {
		return
	}
	var err error
	switch {
	case *out != "" && *jsonOut:
		err = report.Save(*out, doc)
	case *out != "" && *csvOut:
		err = writeCSVFile(*out, doc)
	case *jsonOut:
		err = report.WriteJSON(os.Stdout, doc)
	default:
		err = report.WriteCSV(os.Stdout, doc)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "write results: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(table, "wrote %s\n", *out)
	}
}

// writeCSVFile writes the CSV to path, surfacing the Close error so a
// short write cannot exit 0.
func writeCSVFile(path string, doc *report.File) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteCSV(f, doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
