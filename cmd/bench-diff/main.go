// Command bench-diff compares two benchmark result documents
// (BENCH_*.json, written by bamboo-bench -json) and exits non-zero when
// the second regresses against the first beyond configurable thresholds.
// It is the CI gate that makes "measurably faster" enforceable: every
// perf PR runs the bench, diffs against the stored baseline, and fails
// if throughput dropped or p99 latency rose too far on any point.
//
// Usage:
//
//	bench-diff old.json new.json
//	bench-diff -max-tps-drop 0.05 -max-p99-rise 0.50 old.json new.json
//
// Points are matched by (experiment id, x label, protocol). Points
// missing from the new run are reported but do not fail the gate — as
// long as at least one point still compared. If *nothing* compared and
// baseline points went missing, the gate has become vacuous (renamed
// experiment id or x-label format, wrong file) and bench-diff fails:
// a gate that silently compares zero points is exactly the self-diff
// failure mode the committed baselines exist to prevent. Baseline
// points below -min-commits are skipped as noise.
//
// Exit status: 0 = no regressions, 1 = regressions found, 2 = usage or
// I/O error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bamboo/internal/bench/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI — flag parsing, comparison, rendering — returning
// the process exit code so tests can drive the full matrix without
// spawning processes.
func run(args []string, stdout, stderr io.Writer) int {
	def := report.DefaultThresholds()
	fs := flag.NewFlagSet("bench-diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tpsDrop    = fs.Float64("max-tps-drop", def.ThroughputDrop, "fail when throughput drops by more than this fraction")
		p99Rise    = fs.Float64("max-p99-rise", def.P99Rise, "fail when p99 latency rises by more than this fraction")
		minCommits = fs.Uint64("min-commits", def.MinCommits, "skip baseline points with fewer committed transactions")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: bench-diff [flags] old.json new.json\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}

	old, err := report.Load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	cur, err := report.Load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	fmt.Fprintf(stdout, "baseline %s (%s)  vs  new %s (%s)\n",
		fs.Arg(0), shortSHA(old.GitSHA), fs.Arg(1), shortSHA(cur.GitSHA))
	d := report.Compare(old, cur, report.Thresholds{
		ThroughputDrop: *tpsDrop,
		P99Rise:        *p99Rise,
		MinCommits:     *minCommits,
	})
	d.Print(stdout)
	if d.Compared == 0 && len(d.MissingInNew) > 0 {
		fmt.Fprintln(stdout, "VACUOUS GATE: no baseline point matched the new run "+
			"(renamed experiment/x/protocol keys, or wrong file) — failing")
		return 1
	}
	if !d.OK() {
		return 1
	}
	return 0
}

func shortSHA(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}
