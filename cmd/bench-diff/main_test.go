package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"bamboo/internal/bench/report"
)

// doc builds a one-experiment document with a single point whose
// throughput, p99 and commit count are given.
func doc(tps float64, p99NS int64, commits uint64) *report.File {
	return &report.File{
		SchemaVersion: report.SchemaVersion,
		Experiments: []report.Experiment{{
			ID:    "fig6",
			Title: "test",
			Points: []report.Point{{
				X:             "threads=4",
				Protocol:      "BAMBOO",
				Commits:       commits,
				ThroughputTPS: tps,
				Latency:       report.Latency{P99: p99NS},
			}},
		}},
	}
}

func save(t *testing.T, name string, f *report.File) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := report.Save(path, f); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestExitCodeMatrix drives the full CLI through every gate outcome.
func TestExitCodeMatrix(t *testing.T) {
	base := doc(10000, 1_000_000, 5000)
	cases := []struct {
		name string
		old  *report.File
		new  *report.File
		args []string
		exit int
		want string // substring of stdout
	}{
		{
			name: "identical passes",
			old:  base, new: base,
			exit: 0, want: "no regressions",
		},
		{
			name: "small drop within threshold passes",
			old:  base, new: doc(9200, 1_000_000, 5000), // -8% < 10%
			exit: 0, want: "no regressions",
		},
		{
			name: "throughput drop fails",
			old:  base, new: doc(8000, 1_000_000, 5000), // -20%
			exit: 1, want: "throughput",
		},
		{
			name: "p99 rise fails",
			old:  base, new: doc(10000, 1_400_000, 5000), // +40% > 25%
			exit: 1, want: "p99",
		},
		{
			name: "both regress still exit 1",
			old:  base, new: doc(8000, 2_000_000, 5000),
			exit: 1, want: "2 regression(s)",
		},
		{
			name: "under-sampled baseline skipped",
			old:  doc(10000, 1_000_000, 10), new: doc(1, 9_000_000_000, 10), // 10 < min-commits 50
			exit: 0, want: "1 skipped below commit floor",
		},
		{
			// Every baseline point unmatched = the gate compares nothing.
			// That is the self-diff vacuousness the committed baselines
			// exist to prevent, so it fails rather than passing silently.
			name: "all points missing fails as vacuous",
			old:  base, new: &report.File{SchemaVersion: report.SchemaVersion},
			exit: 1, want: "VACUOUS GATE",
		},
		{
			name: "partially missing still passes while something compares",
			old: &report.File{SchemaVersion: report.SchemaVersion,
				Experiments: []report.Experiment{{
					ID: "fig6",
					Points: []report.Point{
						{X: "threads=4", Protocol: "BAMBOO", Commits: 5000, ThroughputTPS: 10000, Latency: report.Latency{P99: 1_000_000}},
						{X: "threads=4", Protocol: "GONE", Commits: 5000, ThroughputTPS: 10000, Latency: report.Latency{P99: 1_000_000}},
					}}}},
			new:  base,
			exit: 0, want: "missing: fig6 / threads=4 / GONE",
		},
		{
			name: "custom threshold flags flip the verdict",
			old:  base, new: doc(9200, 1_000_000, 5000), // -8% vs -max-tps-drop 0.05
			args: []string{"-max-tps-drop", "0.05"},
			exit: 1, want: "throughput",
		},
		{
			name: "custom min-commits flips skip into gating",
			old:  doc(10000, 1_000_000, 60), new: doc(100, 1_000_000, 60),
			args: []string{"-min-commits", "10"},
			exit: 1, want: "throughput",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			oldPath := save(t, "old.json", c.old)
			newPath := save(t, "new.json", c.new)
			var stdout, stderr bytes.Buffer
			code := run(append(c.args, oldPath, newPath), &stdout, &stderr)
			if code != c.exit {
				t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s",
					code, c.exit, stdout.String(), stderr.String())
			}
			if !strings.Contains(stdout.String(), c.want) {
				t.Fatalf("stdout missing %q:\n%s", c.want, stdout.String())
			}
		})
	}
}

// TestUsageAndIOErrors covers the exit-2 paths.
func TestUsageAndIOErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no args: exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "usage:") {
		t.Fatalf("no usage on stderr: %s", stderr.String())
	}

	stderr.Reset()
	if code := run([]string{"-bogus-flag", "a", "b"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag: exit = %d, want 2", code)
	}

	stderr.Reset()
	if code := run([]string{"/nonexistent/old.json", "/nonexistent/new.json"}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing files: exit = %d, want 2", code)
	}

	// A schema-version mismatch is an I/O-class error, not a regression.
	good := save(t, "good.json", doc(1000, 1000, 5000))
	bad := doc(1000, 1000, 5000)
	bad.SchemaVersion = report.SchemaVersion + 1
	badPath := save(t, "bad.json", bad)
	stderr.Reset()
	if code := run([]string{good, badPath}, &stdout, &stderr); code != 2 {
		t.Fatalf("schema mismatch: exit = %d, want 2\nstderr: %s", code, stderr.String())
	}
}
