// Command crashtest is the recovery smoke harness: it drives a
// conservation-oracle workload against a file-backed partitioned WAL so a
// supervisor (CI, a shell) can SIGKILL it mid-run and then verify that
// replay rebuilds a consistent store.
//
// Usage:
//
//	crashtest -mode run -wal /tmp/wal -partitions 4 &
//	# wait for "READY", let it commit for a while, then:
//	kill -9 $!
//	crashtest -mode recover -wal /tmp/wal -partitions 4
//
// The workload transfers amounts between two accounts of one storage
// partition per transaction (high-skew partition choice, the fig6 shape),
// so every transaction is atomic within a single partition log and every
// log prefix — which is exactly what a SIGKILL leaves, possibly with a
// torn record at each tail — must conserve each partition's total
// balance. recover reloads the deterministic base snapshot, replays the
// logs in parallel, and fails loudly if any invariant breaks:
//
//   - every partition's balance total equals its loaded total;
//   - the row count and partition routing are intact;
//   - at least -min-records commit records were replayed (a kill that
//     landed before any commit means the harness misfired);
//   - every lock entry is drained (replay bypasses the lock table).
//
// Storage lifecycle: -checkpoint-dir enables fuzzy checkpoints (and the
// segmented WAL layout); -truncate lets the checkpointer unlink log
// segments a durable snapshot covers. run mode replays any existing state
// before serving, so a kill→run→kill soak keeps the conservation oracle
// valid across cycles. -mode flip corrupts one payload byte of the last
// complete frame in partition 0's newest log file — the bit-rot probe —
// and recover -expect-corrupt then requires replay to fail with a
// corruption error rather than silently truncate. recover's
// -max-replay-bytes bounds the applied suffix (proof checkpoints bound
// recovery work) and -max-wal-bytes bounds the on-disk log (proof
// truncation reclaims space).
//
// Both modes must agree on -partitions and -rows: they define the
// deterministic snapshot the log was written over.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"bamboo/internal/core"
	"bamboo/internal/storage"
	"bamboo/internal/wal"
)

func main() {
	var (
		mode       = flag.String("mode", "", "run | recover | flip")
		walDir     = flag.String("wal", "", "WAL directory (one log file per partition)")
		partitions = flag.Int("partitions", 4, "storage partition count")
		rows       = flag.Int("rows", 1024, "accounts in the transfer table")
		threads    = flag.Int("threads", 4, "workers (run mode)")
		duration   = flag.Duration("duration", time.Hour, "maximum run time before a clean exit (run mode)")
		groupC     = flag.Bool("group-commit", true, "use per-partition group commit (run mode)")
		fsync      = flag.String("fsync", "batch", "fsync policy: none | batch | interval (run mode)")
		minRecords = flag.Int("min-records", 1, "fail recovery if fewer commit records replay")

		ckptDir      = flag.String("checkpoint-dir", "", "snapshot directory; non-empty enables checkpoints + segmented WAL")
		ckptInterval = flag.Duration("checkpoint-interval", 250*time.Millisecond, "background checkpoint interval (run mode)")
		segBytes     = flag.Int64("segment-bytes", 256<<10, "WAL segment rotation threshold (run mode, checkpoints on)")
		maxLogBytes  = flag.Int64("max-log-bytes", 0, "extra checkpoint trigger: live log bytes per partition (run mode)")
		truncate     = flag.Bool("truncate", false, "unlink checkpoint-covered log segments (run mode)")
		keep         = flag.Int("keep", 2, "snapshots to retain per partition (run mode)")

		metricsAddr = flag.String("metrics-addr", "", "serve live telemetry (/metrics, /debug/vars, /healthz) on this address while running (run mode; \":0\" picks a free port, printed before READY)")

		expectCorrupt  = flag.Bool("expect-corrupt", false, "recovery must FAIL with a corruption error (after -mode flip)")
		maxReplayBytes = flag.Int64("max-replay-bytes", 0, "fail recovery if more applied log bytes replay")
		maxWALBytes    = flag.Int64("max-wal-bytes", 0, "fail recovery if the WAL directory holds more bytes")
		minCkpts       = flag.Int("min-checkpoints", 0, "fail recovery if fewer snapshots restore (proof a checkpoint was taken)")
	)
	flag.Parse()
	if *walDir == "" {
		fatal("missing -wal directory")
	}
	switch *mode {
	case "run":
		runMode(runConfig{
			dir: *walDir, parts: *partitions, rows: *rows, threads: *threads,
			duration: *duration, gc: *groupC, fsync: *fsync,
			ckptDir: *ckptDir, ckptInterval: *ckptInterval, segBytes: *segBytes,
			maxLogBytes: *maxLogBytes, truncate: *truncate, keep: *keep,
			metricsAddr: *metricsAddr,
		})
	case "recover":
		recoverMode(*walDir, *ckptDir, *partitions, *rows, *minRecords, *minCkpts,
			*expectCorrupt, *maxReplayBytes, *maxWALBytes)
	case "flip":
		flipMode(*walDir)
	default:
		fatal("-mode must be run, recover, or flip")
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "crashtest: "+format+"\n", args...)
	os.Exit(1)
}

const initialBalance = 1000

func accountSchema() *storage.Schema {
	return storage.NewSchema("accounts",
		storage.Column{Name: "balance", Type: storage.ColInt64})
}

// load creates the deterministic base snapshot both modes agree on.
func load(db *core.DB, rows int) *storage.Table {
	schema := accountSchema()
	tbl, err := db.Catalog.CreateTablePartitioned(schema, rows,
		storage.HashPartitioner{N: db.Partitions()})
	if err != nil {
		fatal("create table: %v", err)
	}
	for k := 0; k < rows; k++ {
		img := schema.NewRowImage()
		schema.SetInt64(img, 0, initialBalance)
		tbl.MustInsertRow(uint64(k), img)
	}
	return tbl
}

// keysByPartition groups account keys by their owning partition.
func keysByPartition(tbl *storage.Table, parts, rows int) [][]uint64 {
	per := make([][]uint64, parts)
	for k := 0; k < rows; k++ {
		pid := tbl.PartitionFor(uint64(k))
		per[pid] = append(per[pid], uint64(k))
	}
	for p, keys := range per {
		if len(keys) < 2 {
			fatal("partition %d has %d keys; raise -rows", p, len(keys))
		}
	}
	return per
}

type runConfig struct {
	dir          string
	parts, rows  int
	threads      int
	duration     time.Duration
	gc           bool
	fsync        string
	ckptDir      string
	ckptInterval time.Duration
	segBytes     int64
	maxLogBytes  int64
	truncate     bool
	keep         int
	metricsAddr  string
}

func runMode(rc runConfig) {
	policy, err := wal.ParseFsyncPolicy(rc.fsync)
	if err != nil {
		fatal("%v", err)
	}
	cfg := core.Bamboo()
	cfg.Partitions = rc.parts
	cfg.WALDir = rc.dir
	cfg.WALFsync = policy
	cfg.GroupCommit = rc.gc
	if rc.gc {
		cfg.GroupCommitInterval = 200 * time.Microsecond
	}
	cfg.MetricsAddr = rc.metricsAddr
	if rc.ckptDir != "" {
		cfg.Checkpoint = core.CheckpointConfig{
			Dir:          rc.ckptDir,
			Interval:     rc.ckptInterval,
			MaxLogBytes:  rc.maxLogBytes,
			SegmentBytes: rc.segBytes,
			Truncate:     rc.truncate,
			Keep:         rc.keep,
		}
	}
	db := core.NewDB(cfg)
	tbl := load(db, rc.rows)
	per := keysByPartition(tbl, rc.parts, rc.rows)
	schema := tbl.Schema

	// Resume over whatever a previous cycle left behind (logs and
	// snapshots) BEFORE serving: new after-images are absolute values, so
	// committing against un-recovered state would break the conservation
	// oracle for every later replay. Only after the catalog is current is
	// the checkpointer safe to start — a snapshot of half-recovered state,
	// plus truncation, would discard committed records.
	st, err := db.ReplayDir(rc.dir, true)
	if err != nil {
		fatal("resume replay: %v", err)
	}
	db.StartCheckpointer()
	fmt.Printf("resumed: %d records, %d checkpoints (%d rows), %d bad snapshots\n",
		st.Records, st.Checkpoints, st.CheckpointRows, st.CheckpointsBad)

	gen := func(worker, seq int) core.TxnFunc {
		rng := rand.New(rand.NewSource(int64(worker)*1e9 + int64(seq)))
		// Skewed partition choice (hot partition 0) so kills land on busy
		// and idle logs alike.
		pid := 0
		if rng.Float64() > 0.5 {
			pid = rng.Intn(rc.parts)
		}
		keys := per[pid]
		i := rng.Intn(len(keys))
		j := rng.Intn(len(keys) - 1)
		if j >= i {
			j++
		}
		amount := int64(rng.Intn(50) + 1)
		return func(tx core.Tx) error {
			tx.DeclareOps(2)
			if err := tx.Update(tbl.Get(keys[i]), func(img []byte) {
				schema.AddInt64(img, 0, -amount)
			}); err != nil {
				return err
			}
			return tx.Update(tbl.Get(keys[j]), func(img []byte) {
				schema.AddInt64(img, 0, amount)
			})
		}
	}

	if addr := db.MetricsAddr(); addr != "" {
		fmt.Printf("metrics: http://%s/metrics\n", addr)
	}
	// The supervisor waits for this line before scheduling the kill, so
	// the SIGKILL always lands inside transaction processing.
	fmt.Println("READY")
	os.Stdout.Sync()
	res := core.RunFor(core.NewLockEngine(db), rc.threads, rc.duration, gen)
	if res.Err != nil {
		fatal("run: %v", res.Err)
	}
	// Only reached on a clean timeout (no kill): close cleanly.
	cst := db.CheckpointStats()
	if err := db.Close(); err != nil {
		fatal("close: %v", err)
	}
	fmt.Printf("clean exit: %d commits, %d checkpoints, %d truncations (%d bytes reclaimed)\n",
		res.Report.Commits, cst.Checkpoints, cst.Truncations, cst.TruncatedBytes)
}

// flipMode corrupts one payload byte of the LAST complete frame in
// partition 0's newest log file — a committed, CRC-covered record, not a
// torn tail. Replay must refuse the log with a corruption error; treating
// it as a torn tail would silently drop a committed transaction.
func flipMode(dir string) {
	segs, err := wal.ListSegments(dir, 0)
	if err != nil {
		fatal("list segments: %v", err)
	}
	path := wal.PartitionLogPath(dir, 0)
	if len(segs) > 0 {
		path = segs[len(segs)-1].Path
	}
	bounds, _, err := wal.FrameBounds(path)
	if err != nil {
		fatal("frame bounds: %v", err)
	}
	if len(bounds) == 0 {
		fatal("no complete frame to corrupt in %s", path)
	}
	last := bounds[len(bounds)-1]
	data, err := os.ReadFile(path)
	if err != nil {
		fatal("read: %v", err)
	}
	off := last[1] - 1 // final payload byte of the final complete frame
	data[off] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal("write: %v", err)
	}
	fmt.Printf("flipped bit at offset %d of %s (frame %d of %d)\n",
		off, path, len(bounds), len(bounds))
}

func walDirBytes(dir string) int64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		fatal("read wal dir: %v", err)
	}
	var total int64
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			fatal("stat %s: %v", e.Name(), err)
		}
		if !info.IsDir() {
			total += info.Size()
		}
	}
	return total
}

func recoverMode(dir, ckptDir string, parts, rows, minRecords, minCkpts int,
	expectCorrupt bool, maxReplayBytes, maxWALBytes int64) {
	if maxWALBytes > 0 {
		if got := walDirBytes(dir); got > maxWALBytes {
			fatal("WAL directory holds %d bytes, budget %d — truncation is not keeping up", got, maxWALBytes)
		} else {
			fmt.Printf("WAL directory: %d bytes (budget %d)\n", got, maxWALBytes)
		}
	}

	cfg := core.Bamboo()
	cfg.Partitions = parts
	db := core.NewDB(cfg)
	defer db.Close()
	tbl := load(db, rows)

	start := time.Now()
	st, err := db.ReplayDirCheckpointed(dir, ckptDir, true)
	if expectCorrupt {
		if err == nil {
			fatal("replay of a bit-flipped log succeeded (stats %+v); corruption went undetected", st)
		}
		if !errors.Is(err, wal.ErrCorrupt) && !errors.Is(err, storage.ErrSnapshotCorrupt) {
			fatal("replay failed, but not as corruption: %v", err)
		}
		fmt.Printf("CORRUPTION DETECTED (as required): %v\n", err)
		return
	}
	if err != nil {
		fatal("replay: %v", err)
	}
	fmt.Printf("replayed %d logs: %d records, %d writes, %d torn tails, %d applied bytes in %v\n",
		st.Logs, st.Records, st.Writes, st.Torn, st.Bytes, time.Since(start).Round(time.Millisecond))
	if ckptDir != "" {
		fmt.Printf("checkpoints: %d restored (%d rows), %d rejected; skipped %d records + %d whole segments\n",
			st.Checkpoints, st.CheckpointRows, st.CheckpointsBad, st.Skipped, st.SkippedSegments)
	}
	if st.Records < minRecords {
		fatal("only %d commit records replayed (want ≥ %d); the kill landed before the workload committed",
			st.Records, minRecords)
	}
	if maxReplayBytes > 0 && st.Bytes > maxReplayBytes {
		fatal("replay applied %d log bytes, budget %d — checkpoints are not bounding recovery", st.Bytes, maxReplayBytes)
	}
	if st.Checkpoints < minCkpts {
		fatal("only %d snapshots restored (want ≥ %d); the checkpointer never produced one", st.Checkpoints, minCkpts)
	}

	schema := tbl.Schema
	failed := false
	var totalRows int
	for p := 0; p < parts; p++ {
		var sum int64
		var count int
		drained := true
		tbl.Partition(p).Range(func(_ uint64, r *storage.Row) bool {
			sum += schema.GetInt64(r.Entry.CurrentData(), 0)
			count++
			if ret, own, wait := r.Entry.Snapshot(); ret+own+wait != 0 {
				drained = false
			}
			return true
		})
		want := int64(count) * initialBalance
		status := "ok"
		if sum != want || !drained {
			status = "VIOLATION"
			failed = true
		}
		fmt.Printf("partition %d: %d rows, balance %d (want %d), drained=%v — %s\n",
			p, count, sum, want, drained, status)
		totalRows += count
	}
	if totalRows != rows {
		fatal("recovered %d rows, want %d", totalRows, rows)
	}
	if err := core.RecoveredTable(tbl); err != nil {
		fatal("partition routing: %v", err)
	}
	if failed {
		fatal("invariants violated after replay")
	}
	fmt.Println("RECOVERY OK")
}
