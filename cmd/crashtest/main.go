// Command crashtest is the recovery smoke harness: it drives a
// conservation-oracle workload against a file-backed partitioned WAL so a
// supervisor (CI, a shell) can SIGKILL it mid-run and then verify that
// replay rebuilds a consistent store.
//
// Usage:
//
//	crashtest -mode run -wal /tmp/wal -partitions 4 &
//	# wait for "READY", let it commit for a while, then:
//	kill -9 $!
//	crashtest -mode recover -wal /tmp/wal -partitions 4
//
// The workload transfers amounts between two accounts of one storage
// partition per transaction (high-skew partition choice, the fig6 shape),
// so every transaction is atomic within a single partition log and every
// log prefix — which is exactly what a SIGKILL leaves, possibly with a
// torn record at each tail — must conserve each partition's total
// balance. recover reloads the deterministic base snapshot, replays the
// logs in parallel, and fails loudly if any invariant breaks:
//
//   - every partition's balance total equals its loaded total;
//   - the row count and partition routing are intact;
//   - at least -min-records commit records were replayed (a kill that
//     landed before any commit means the harness misfired);
//   - every lock entry is drained (replay bypasses the lock table).
//
// Both modes must agree on -partitions and -rows: they define the
// deterministic snapshot the log was written over.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"bamboo/internal/core"
	"bamboo/internal/storage"
	"bamboo/internal/wal"
)

func main() {
	var (
		mode       = flag.String("mode", "", "run | recover")
		walDir     = flag.String("wal", "", "WAL directory (one log file per partition)")
		partitions = flag.Int("partitions", 4, "storage partition count")
		rows       = flag.Int("rows", 1024, "accounts in the transfer table")
		threads    = flag.Int("threads", 4, "workers (run mode)")
		duration   = flag.Duration("duration", time.Hour, "maximum run time before a clean exit (run mode)")
		groupC     = flag.Bool("group-commit", true, "use per-partition group commit (run mode)")
		fsync      = flag.String("fsync", "batch", "fsync policy: none | batch | interval (run mode)")
		minRecords = flag.Int("min-records", 1, "fail recovery if fewer commit records replay")
	)
	flag.Parse()
	if *walDir == "" {
		fatal("missing -wal directory")
	}
	switch *mode {
	case "run":
		runMode(*walDir, *partitions, *rows, *threads, *duration, *groupC, *fsync)
	case "recover":
		recoverMode(*walDir, *partitions, *rows, *minRecords)
	default:
		fatal("-mode must be run or recover")
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "crashtest: "+format+"\n", args...)
	os.Exit(1)
}

const initialBalance = 1000

func accountSchema() *storage.Schema {
	return storage.NewSchema("accounts",
		storage.Column{Name: "balance", Type: storage.ColInt64})
}

// load creates the deterministic base snapshot both modes agree on.
func load(db *core.DB, rows int) *storage.Table {
	schema := accountSchema()
	tbl, err := db.Catalog.CreateTablePartitioned(schema, rows,
		storage.HashPartitioner{N: db.Partitions()})
	if err != nil {
		fatal("create table: %v", err)
	}
	for k := 0; k < rows; k++ {
		img := schema.NewRowImage()
		schema.SetInt64(img, 0, initialBalance)
		tbl.MustInsertRow(uint64(k), img)
	}
	return tbl
}

// keysByPartition groups account keys by their owning partition.
func keysByPartition(tbl *storage.Table, parts, rows int) [][]uint64 {
	per := make([][]uint64, parts)
	for k := 0; k < rows; k++ {
		pid := tbl.PartitionFor(uint64(k))
		per[pid] = append(per[pid], uint64(k))
	}
	for p, keys := range per {
		if len(keys) < 2 {
			fatal("partition %d has %d keys; raise -rows", p, len(keys))
		}
	}
	return per
}

func runMode(dir string, parts, rows, threads int, d time.Duration, gc bool, fsyncName string) {
	policy, err := wal.ParseFsyncPolicy(fsyncName)
	if err != nil {
		fatal("%v", err)
	}
	cfg := core.Bamboo()
	cfg.Partitions = parts
	cfg.WALDir = dir
	cfg.WALFsync = policy
	cfg.GroupCommit = gc
	if gc {
		cfg.GroupCommitInterval = 200 * time.Microsecond
	}
	db := core.NewDB(cfg)
	tbl := load(db, rows)
	per := keysByPartition(tbl, parts, rows)
	schema := tbl.Schema

	gen := func(worker, seq int) core.TxnFunc {
		rng := rand.New(rand.NewSource(int64(worker)*1e9 + int64(seq)))
		// Skewed partition choice (hot partition 0) so kills land on busy
		// and idle logs alike.
		pid := 0
		if rng.Float64() > 0.5 {
			pid = rng.Intn(parts)
		}
		keys := per[pid]
		i := rng.Intn(len(keys))
		j := rng.Intn(len(keys) - 1)
		if j >= i {
			j++
		}
		amount := int64(rng.Intn(50) + 1)
		return func(tx core.Tx) error {
			tx.DeclareOps(2)
			if err := tx.Update(tbl.Get(keys[i]), func(img []byte) {
				schema.AddInt64(img, 0, -amount)
			}); err != nil {
				return err
			}
			return tx.Update(tbl.Get(keys[j]), func(img []byte) {
				schema.AddInt64(img, 0, amount)
			})
		}
	}

	// The supervisor waits for this line before scheduling the kill, so
	// the SIGKILL always lands inside transaction processing.
	fmt.Println("READY")
	os.Stdout.Sync()
	res := core.RunFor(core.NewLockEngine(db), threads, d, gen)
	if res.Err != nil {
		fatal("run: %v", res.Err)
	}
	// Only reached on a clean timeout (no kill): close cleanly.
	if err := db.Close(); err != nil {
		fatal("close: %v", err)
	}
	fmt.Printf("clean exit: %d commits\n", res.Report.Commits)
}

func recoverMode(dir string, parts, rows, minRecords int) {
	cfg := core.Bamboo()
	cfg.Partitions = parts
	db := core.NewDB(cfg)
	defer db.Close()
	tbl := load(db, rows)

	start := time.Now()
	st, err := db.ReplayDir(dir, true)
	if err != nil {
		fatal("replay: %v", err)
	}
	fmt.Printf("replayed %d logs: %d records, %d writes, %d torn tails, %d bytes in %v\n",
		st.Logs, st.Records, st.Writes, st.Torn, st.Bytes, time.Since(start).Round(time.Millisecond))
	if st.Records < minRecords {
		fatal("only %d commit records replayed (want ≥ %d); the kill landed before the workload committed",
			st.Records, minRecords)
	}

	schema := tbl.Schema
	failed := false
	var totalRows int
	for p := 0; p < parts; p++ {
		var sum int64
		var count int
		drained := true
		tbl.Partition(p).Range(func(_ uint64, r *storage.Row) bool {
			sum += schema.GetInt64(r.Entry.CurrentData(), 0)
			count++
			if ret, own, wait := r.Entry.Snapshot(); ret+own+wait != 0 {
				drained = false
			}
			return true
		})
		want := int64(count) * initialBalance
		status := "ok"
		if sum != want || !drained {
			status = "VIOLATION"
			failed = true
		}
		fmt.Printf("partition %d: %d rows, balance %d (want %d), drained=%v — %s\n",
			p, count, sum, want, drained, status)
		totalRows += count
	}
	if totalRows != rows {
		fatal("recovered %d rows, want %d", totalRows, rows)
	}
	if err := core.RecoveredTable(tbl); err != nil {
		fatal("partition routing: %v", err)
	}
	if failed {
		fatal("invariants violated after replay")
	}
	fmt.Println("RECOVERY OK")
}
