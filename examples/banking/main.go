// Banking: concurrent transfers between accounts with business-rule
// aborts (insufficient funds), demonstrating atomicity and user-initiated
// aborts (the paper's §4.1 case 3) under Bamboo. Total money must be
// conserved no matter how aggressively transactions interleave, cascade
// and retry.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bamboo"
)

const (
	accounts = 64
	initial  = 1_000 // cents
)

func main() {
	db := bamboo.Open(bamboo.Options{Protocol: bamboo.Bamboo})
	defer db.Close()

	schema := bamboo.NewSchema("accounts",
		bamboo.Column{Name: "balance", Type: bamboo.ColInt64},
		bamboo.Column{Name: "transfers", Type: bamboo.ColInt64},
	)
	tbl := db.CreateTable(schema)
	for k := uint64(0); k < accounts; k++ {
		img := schema.NewRowImage()
		schema.SetInt64(img, 0, initial)
		if _, err := tbl.InsertRow(k, img); err != nil {
			log.Fatal(err)
		}
	}

	gen := func(worker, seq int) bamboo.TxnFunc {
		rng := rand.New(rand.NewSource(int64(worker)<<32 | int64(seq)))
		from := uint64(rng.Intn(accounts))
		to := uint64(rng.Intn(accounts - 1))
		if to >= from {
			to++
		}
		amount := int64(rng.Intn(400) + 1)
		return func(tx bamboo.Tx) error {
			tx.DeclareOps(2)
			insufficient := false
			if err := tx.Update(tbl.Get(from), func(img []byte) {
				if schema.GetInt64(img, 0) < amount {
					insufficient = true
					return
				}
				schema.AddInt64(img, 0, -amount)
				schema.AddInt64(img, 1, 1)
			}); err != nil {
				return err
			}
			if insufficient {
				return bamboo.ErrUserAbort // business rule: roll back
			}
			return tx.Update(tbl.Get(to), func(img []byte) {
				schema.AddInt64(img, 0, amount)
				schema.AddInt64(img, 1, 1)
			})
		}
	}

	rep, err := db.Run(8, 5_000, gen)
	if err != nil {
		log.Fatal(err)
	}

	var total, transfers int64
	for k := uint64(0); k < accounts; k++ {
		img := tbl.Get(k).Entry.CurrentData()
		total += schema.GetInt64(img, 0)
		transfers += schema.GetInt64(img, 1)
	}
	fmt.Printf("%s: %0.f txn/s, %d commits, %d declined (insufficient funds), %d retried aborts\n",
		db.Protocol(), rep.ThroughputTPS, rep.Commits, rep.AbortsBy["user"],
		rep.Aborts-rep.AbortsBy["user"])
	fmt.Printf("total balance: %d (expected %d) — conserved: %v\n",
		total, int64(accounts*initial), total == accounts*initial)
	if total != accounts*initial {
		log.Fatal("MONEY NOT CONSERVED")
	}
}
