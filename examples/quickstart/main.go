// Quickstart: open a Bamboo database, create a table, and run concurrent
// serializable transactions against a hotspot counter — the scenario of
// the paper's Figure 1. Compare the throughput printed for Bamboo against
// Wound-Wait to see early lock retiring at work.
package main

import (
	"fmt"
	"log"
	"time"

	"bamboo"
)

func main() {
	for _, proto := range []bamboo.Protocol{bamboo.Bamboo, bamboo.WoundWait} {
		db := bamboo.Open(bamboo.Options{Protocol: proto})

		// One hot counter plus a spread of cold rows.
		schema := bamboo.NewSchema("counters",
			bamboo.Column{Name: "value", Type: bamboo.ColInt64})
		tbl := db.CreateTable(schema)
		const rows = 1024
		for k := uint64(0); k < rows; k++ {
			if _, err := tbl.InsertRow(k, nil); err != nil {
				log.Fatal(err)
			}
		}

		// Every transaction bumps the hot counter first (the hotspot at
		// the beginning of the transaction — Bamboo's best case), then
		// reads 15 cold rows.
		gen := func(worker, seq int) bamboo.TxnFunc {
			return func(tx bamboo.Tx) error {
				tx.DeclareOps(16)
				if err := tx.Update(tbl.Get(0), func(img []byte) {
					schema.AddInt64(img, 0, 1)
				}); err != nil {
					return err
				}
				for i := 1; i <= 15; i++ {
					cold := uint64((worker*1000+seq*31+i*97)%(rows-1)) + 1
					if _, err := tx.Read(tbl.Get(cold)); err != nil {
						return err
					}
				}
				return nil
			}
		}

		rep, err := db.RunFor(8, 500*time.Millisecond, gen)
		if err != nil {
			log.Fatal(err)
		}
		hot := schema.GetInt64(tbl.Get(0).Entry.CurrentData(), 0)
		fmt.Printf("%-12s %8.0f txn/s  aborts=%4.1f%%  hot counter=%d (== commits: %v)\n",
			db.Protocol(), rep.ThroughputTPS, rep.AbortRate*100, hot,
			hot == int64(rep.Commits))
		db.Close()
	}
}
