// TPC-C interactive mode: runs the NewOrder+Payment mix in both execution
// modes of the paper's §5.1 — stored procedures (transaction logic
// co-located with the data) and interactive (every get_row/update_row
// pays a network round trip) — and prints the modes side by side,
// miniaturizing Figure 9. Bamboo's advantage grows in interactive mode
// because per-operation stalls stretch every lock-hold time, making early
// retiring more valuable.
package main

import (
	"fmt"
	"log"
	"time"

	"bamboo"
	"bamboo/internal/workload/tpcc"
)

func main() {
	for _, mode := range []struct {
		name string
		rtt  time.Duration
	}{
		{"stored-proc", 0},
		{"interactive (100µs RTT)", 100 * time.Microsecond},
	} {
		fmt.Printf("== %s ==\n", mode.name)
		for _, proto := range []bamboo.Protocol{bamboo.Bamboo, bamboo.WoundWait, bamboo.Silo} {
			db := bamboo.Open(bamboo.Options{Protocol: proto, InteractiveRTT: mode.rtt})
			cfg := tpcc.DefaultConfig() // 1 warehouse: the contended case
			w, err := tpcc.Load(db.Internal(), cfg)
			if err != nil {
				log.Fatal(err)
			}
			rep, err := db.RunFor(8, 500*time.Millisecond, w.Generator())
			if err != nil {
				log.Fatal(err)
			}
			if err := w.CheckConsistency(); err != nil {
				log.Fatalf("consistency: %v", err)
			}
			fmt.Printf("  %-12s %8.0f txn/s  aborts=%4.1f%%  (TPC-C books balance)\n",
				db.Protocol(), rep.ThroughputTPS, rep.AbortRate*100)
			db.Close()
		}
	}
}
