// YCSB contention sweep: drives the paper's §5.4 workload through the
// public API at increasing Zipfian skew, printing the throughput series
// for Bamboo, Wound-Wait and Silo side by side (a miniature Figure 8a).
// Bamboo's advantage should appear as theta crosses ~0.8.
package main

import (
	"fmt"
	"log"
	"time"

	"bamboo"
	"bamboo/internal/workload/ycsb"
)

func main() {
	fmt.Printf("%8s  %12s %12s %12s\n", "theta", "BAMBOO", "WOUND_WAIT", "SILO")
	for _, theta := range []float64{0.5, 0.7, 0.8, 0.9, 0.99} {
		var tps [3]float64
		for i, proto := range []bamboo.Protocol{bamboo.Bamboo, bamboo.WoundWait, bamboo.Silo} {
			db := bamboo.Open(bamboo.Options{Protocol: proto})
			cfg := ycsb.DefaultConfig()
			cfg.Rows = 100000
			cfg.Theta = theta
			w, err := ycsb.Load(db.Internal(), cfg)
			if err != nil {
				log.Fatal(err)
			}
			rep, err := db.RunFor(8, 300*time.Millisecond, w.Generator())
			if err != nil {
				log.Fatal(err)
			}
			tps[i] = rep.ThroughputTPS
			db.Close()
		}
		fmt.Printf("%8.2f  %12.0f %12.0f %12.0f\n", theta, tps[0], tps[1], tps[2])
	}
}
