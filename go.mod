module bamboo

go 1.24
