// Package adaptive is the runtime contention-control feedback loop: a
// background engine that samples the per-entry and per-partition
// access/conflict counters the executor already maintains, classifies
// entries hot or cold with a hysteresis EWMA, and switches the lock
// table's retire policy per entry — Bamboo's early release only where
// contention pays for it, wound-wait-style plain grants everywhere else.
//
// The engine is the sole writer of the per-entry policy word
// (lock.Entry.SetPolicy); the lock manager and executor only read it, so
// the sweep needs no synchronization beyond the entry counters' own
// atomics and adds nothing to the transaction hot path. Classification
// uses an EWMA of conflicts-per-access with separate enter/exit
// thresholds: an entry must climb above Enter to be classified hot and
// decay below Exit to fall back cold, so a rate sitting near one
// threshold cannot oscillate the policy every tick. Entries too cold to
// sample individually inherit their storage partition's classification,
// which is computed the same way from the partition counter deltas —
// that is what keeps the detector responsive on workloads whose heat is
// spread across a partition rather than concentrated on single keys.
package adaptive

import (
	"sync"
	"time"

	"bamboo/internal/lock"
	"bamboo/internal/stats"
)

// Config tunes the feedback loop. The zero value takes the defaults
// below; Enter must be ≥ Exit (enforced by normalization).
type Config struct {
	// Interval is the base sampling tick period. Default 10ms — fast
	// enough to converge within a bench warm-up, slow enough that
	// sweeping the registered working set (one atomic load per idle
	// entry) stays background noise. Conflict-free passes back the
	// interval off up to 8× (see maxBackoff), so a workload with no
	// contention is swept at ~80ms instead.
	Interval time.Duration
	// Enter is the EWMA conflicts-per-access threshold above which an
	// entry is classified hot (retire early). Default 0.05.
	Enter float64
	// Exit is the threshold below which a hot entry falls back cold
	// (plain wound-wait grants). Default 0.01. The band between Exit and
	// Enter is the hysteresis dead zone: inside it the policy keeps its
	// last classification.
	Exit float64
	// Alpha is the EWMA smoothing factor (weight of the newest window).
	// Default 0.5.
	Alpha float64
	// MinAccesses is the minimum window accesses before an entry (or
	// partition) is reclassified from its own counters; windows smaller
	// than this fall back to the partition class. Default 16.
	MinAccesses uint32
}

// DefaultInterval is the sampling tick period when Config.Interval is 0.
const DefaultInterval = 10 * time.Millisecond

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.Enter == 0 {
		c.Enter = 0.05
	}
	if c.Exit == 0 {
		c.Exit = 0.01
	}
	if c.Exit > c.Enter {
		c.Exit = c.Enter
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.5
	}
	if c.MinAccesses == 0 {
		c.MinAccesses = 16
	}
	return c
}

// Source names the telemetry the engine samples: Global carries the
// per-partition counters and receives the hot-entry gauge and policy-flip
// counter. The entries themselves arrive through Register — the executor
// hands each entry over on its first recorded access — so the sweep
// visits only the ever-accessed working set, not the whole table. (A
// full-catalog sweep was measured at ~15% of a 1-CPU host on a 20k-row
// table: hash-index iteration takes shard locks and walks map buckets
// for entries that were never touched.)
type Source struct {
	Global *stats.Global
}

// regEntry is one sweep-list slot: the entry and its storage partition
// (for the under-sampled fallback classification).
type regEntry struct {
	e    *lock.Entry
	part int
}

// partState is the engine-private classifier state for one partition.
type partState struct {
	prevAcc  uint64
	prevConf uint64
	ewma     float64
	class    uint32 // lock.PolicyDefault until decisively classified
}

// Engine runs the sampling loop. Create with New, then either Start a
// background ticker or drive Tick directly (tests do the latter — one
// Tick is one deterministic sampling pass).
type Engine struct {
	cfg   Config
	src   Source
	parts []partState
	hot   int64 // entries currently PolicyRetire (engine is sole writer)
	flips uint64

	// reg is the sweep list: every entry the executor has ever recorded
	// an access on, registered exactly once (Entry.MarkSeen latches).
	// Appends take regMu; Tick snapshots the length under regMu and then
	// iterates the prefix lock-free — append never mutates published
	// elements, so a concurrently growing slice is safe to read up to a
	// length observed under the mutex. Entries are never unregistered:
	// the list pins ever-accessed rows, bounded by table size.
	regMu sync.Mutex
	reg   []regEntry

	stop chan struct{}
	done chan struct{}
}

// New builds an engine over src. It does not start sampling.
func New(cfg Config, src Source) *Engine {
	return &Engine{cfg: cfg.withDefaults(), src: src}
}

// Start launches the background ticker goroutine. No-op if running.
func (en *Engine) Start() {
	if en.stop != nil {
		return
	}
	en.stop = make(chan struct{})
	en.done = make(chan struct{})
	go en.run()
}

// Stop halts the ticker and waits for the in-flight tick, if any. The
// policy words keep their last classification — a stopped engine leaves
// the lock table in its converged state rather than resetting it.
func (en *Engine) Stop() {
	if en.stop == nil {
		return
	}
	close(en.stop)
	<-en.done
	en.stop = nil
}

// maxBackoff bounds the idle-backoff interval multiplier: a
// conflict-free workload is swept at most this many times less often
// than Config.Interval, which also bounds how stale the detector can be
// when contention first appears (8× the 10ms default ⇒ ≤80ms to notice).
const maxBackoff = 8

func (en *Engine) run() {
	defer close(en.done)
	iv := en.cfg.Interval
	t := time.NewTimer(iv)
	defer t.Stop()
	for {
		select {
		case <-en.stop:
			return
		case <-t.C:
			// Idle backoff: a pass that saw no conflict anywhere doubles
			// the interval (up to maxBackoff×) so a contention-free
			// workload pays almost nothing for the sweep; the counters
			// accumulate independently of the tick, so a stretched
			// interval delays classification but loses no events, and
			// the first conflicting pass snaps back to the base rate.
			if en.Tick() {
				iv = en.cfg.Interval
			} else if iv < maxBackoff*en.cfg.Interval {
				iv *= 2
			}
			t.Reset(iv)
		}
	}
}

// Register adds an entry to the sweep list. The executor calls it exactly
// once per entry — on the first recorded access, gated by Entry.MarkSeen —
// so steady state never takes the mutex.
func (en *Engine) Register(e *lock.Entry, partition int) {
	en.regMu.Lock()
	en.reg = append(en.reg, regEntry{e: e, part: partition})
	en.regMu.Unlock()
}

// Registered returns the sweep-list length (entries ever accessed).
func (en *Engine) Registered() int {
	en.regMu.Lock()
	defer en.regMu.Unlock()
	return len(en.reg)
}

// HotEntries returns the number of entries currently classified hot.
func (en *Engine) HotEntries() uint64 {
	if en.hot < 0 {
		return 0
	}
	return uint64(en.hot)
}

// Flips returns the cumulative policy changes the engine has made.
func (en *Engine) Flips() uint64 { return en.flips }

// Tick runs one sampling pass: refresh the partition classifiers from
// the counter deltas since the last tick, then sweep the registered
// entries — entries with a full sample window are classified from their
// own EWMA, under-sampled ones inherit the partition class, idle ones
// are left untouched (their window check is one atomic load and no
// stores, so a sweep over a mostly-cold working set does not dirty its
// cachelines). It reports whether the pass observed any conflict, in
// any partition delta or entry window — the background loop's idle-
// backoff signal.
func (en *Engine) Tick() bool {
	cfg := en.cfg
	g := en.src.Global
	sawConflict := false
	if g != nil {
		n := g.NumPartitions()
		if len(en.parts) != n {
			en.parts = make([]partState, n)
		}
		for p := 0; p < n; p++ {
			a, c := g.PartitionAt(p)
			ps := &en.parts[p]
			da, dc := a-ps.prevAcc, c-ps.prevConf
			ps.prevAcc, ps.prevConf = a, c
			if dc > 0 {
				sawConflict = true
			}
			if da < uint64(cfg.MinAccesses) {
				continue
			}
			ps.ewma = cfg.Alpha*rateOf(dc, da) + (1-cfg.Alpha)*ps.ewma
			switch {
			case ps.ewma >= cfg.Enter:
				ps.class = lock.PolicyRetire
			case ps.ewma <= cfg.Exit:
				ps.class = lock.PolicyNoRetire
			}
		}
	}

	var flips uint64
	en.regMu.Lock()
	reg := en.reg[:len(en.reg)]
	en.regMu.Unlock()
	for i := range reg {
		e, partition := reg[i].e, reg[i].part
		acc, conf := e.TakeWindow()
		if acc == 0 {
			continue
		}
		if conf > 0 {
			sawConflict = true
		}
		if acc < cfg.MinAccesses {
			if partition >= 0 && partition < len(en.parts) {
				if cl := en.parts[partition].class; cl != lock.PolicyDefault && en.apply(e, cl) {
					flips++
				}
			}
			continue
		}
		w := cfg.Alpha*rateOf(uint64(conf), uint64(acc)) + (1-cfg.Alpha)*float64(e.EWMA())
		e.SetEWMA(float32(w))
		switch {
		case w >= cfg.Enter:
			if en.apply(e, lock.PolicyRetire) {
				flips++
			}
		case w <= cfg.Exit:
			if en.apply(e, lock.PolicyNoRetire) {
				flips++
			}
		}
	}
	en.flips += flips
	if g != nil {
		g.RecordPolicyFlips(flips)
		g.SetHotEntries(en.HotEntries())
	}
	return sawConflict
}

// apply switches e's policy word, maintaining the hot gauge. Reading then
// swapping is race-free because the engine is the only policy writer.
func (en *Engine) apply(e *lock.Entry, target uint32) bool {
	old := e.Policy()
	if old == target {
		return false
	}
	e.SetPolicy(target)
	if old == lock.PolicyRetire {
		en.hot--
	}
	if target == lock.PolicyRetire {
		en.hot++
	}
	return true
}

// rateOf is the clamped conflicts-per-access of one window. A spinning
// waiter can record several conflicts against one access, so the raw
// ratio may exceed 1; everything at or above "every access conflicts"
// classifies the same.
func rateOf(conflicts, accesses uint64) float64 {
	if conflicts >= accesses {
		return 1
	}
	return float64(conflicts) / float64(accesses)
}
