package adaptive

import (
	"testing"

	"bamboo/internal/lock"
	"bamboo/internal/stats"
)

// harness is a synthetic workload over in-memory entries: each round
// records a fixed access/conflict mix per entry, then runs one engine
// tick. Driving Tick directly makes every test deterministic — no
// ticker, no clock.
type harness struct {
	entries []*lock.Entry
	parts   []int // partition id per entry
	g       *stats.Global
	en      *Engine
}

func newHarness(cfg Config, n, partitions int) *harness {
	h := &harness{g: &stats.Global{}}
	if partitions > 0 {
		h.g.InitPartitions(partitions)
	}
	for i := 0; i < n; i++ {
		e := &lock.Entry{}
		e.Init(nil)
		h.entries = append(h.entries, e)
		if partitions > 0 {
			h.parts = append(h.parts, i%partitions)
		} else {
			h.parts = append(h.parts, 0)
		}
	}
	h.en = New(cfg, Source{Global: h.g})
	return h
}

// load records accesses and conflicts against entry i (and its
// partition counters, as the executor would — including the first-access
// registration with the engine's sweep list).
func (h *harness) load(i, accesses, conflicts int) {
	for k := 0; k < accesses; k++ {
		if h.entries[i].MarkSeen() {
			h.en.Register(h.entries[i], h.parts[i])
		}
		h.entries[i].RecordAccess()
		h.g.RecordPartAccess(h.parts[i])
	}
	for k := 0; k < conflicts; k++ {
		h.entries[i].RecordConflict()
		h.g.RecordPartConflict(h.parts[i])
	}
}

// cfg with MinAccesses low enough that the per-entry loads above are
// full sample windows.
func testCfg() Config {
	return Config{Enter: 0.05, Exit: 0.01, Alpha: 0.5, MinAccesses: 16}
}

// TestConstantWorkloadConverges is the hysteresis property test: under a
// constant workload the classifier converges and then never flips again.
func TestConstantWorkloadConverges(t *testing.T) {
	h := newHarness(testCfg(), 2, 0)
	const rounds = 50
	var flipsAt [rounds]uint64
	for r := 0; r < rounds; r++ {
		h.load(0, 100, 30) // hot: 30% conflict rate
		h.load(1, 100, 0)  // cold: conflict-free
		h.en.Tick()
		flipsAt[r] = h.en.Flips()
	}
	if p := h.entries[0].Policy(); p != lock.PolicyRetire {
		t.Fatalf("hot entry policy = %d, want PolicyRetire", p)
	}
	if p := h.entries[1].Policy(); p != lock.PolicyNoRetire {
		t.Fatalf("cold entry policy = %d, want PolicyNoRetire", p)
	}
	// Convergence: after the first quarter of the run, zero further flips.
	if flipsAt[rounds-1] != flipsAt[rounds/4] {
		t.Fatalf("classifier still flipping after convergence: %d flips at round %d, %d at round %d",
			flipsAt[rounds/4], rounds/4, flipsAt[rounds-1], rounds-1)
	}
	if h.en.HotEntries() != 1 {
		t.Fatalf("hot gauge = %d, want 1", h.en.HotEntries())
	}
	if h.g.HotEntries.Load() != 1 || h.g.PolicyFlips.Load() != flipsAt[rounds-1] {
		t.Fatalf("global mirror hot=%d flips=%d, want 1/%d",
			h.g.HotEntries.Load(), h.g.PolicyFlips.Load(), flipsAt[rounds-1])
	}
}

// TestDeadZoneNoOscillation: a conflict rate that lands between Exit and
// Enter after convergence must not flip the policy back and forth.
func TestDeadZoneNoOscillation(t *testing.T) {
	h := newHarness(testCfg(), 1, 0)
	// Converge hot first.
	for r := 0; r < 10; r++ {
		h.load(0, 100, 50)
		h.en.Tick()
	}
	if h.entries[0].Policy() != lock.PolicyRetire {
		t.Fatal("entry did not converge hot")
	}
	// Drop into the dead zone: 3% conflicts, between Exit 1% and Enter 5%.
	// The EWMA settles at 0.03 — inside the band — so the policy must
	// keep its last classification forever.
	flipsBefore := h.en.Flips()
	for r := 0; r < 50; r++ {
		h.load(0, 100, 3)
		h.en.Tick()
	}
	if h.entries[0].Policy() != lock.PolicyRetire {
		t.Fatal("dead-zone rate demoted the entry; hysteresis broken")
	}
	if got := h.en.Flips(); got != flipsBefore {
		t.Fatalf("dead-zone rate caused %d flips", got-flipsBefore)
	}
}

// TestPhaseChangeReconverges: when the hotspot migrates mid-run the
// classifier re-converges — both entries swap policies — within a
// bounded number of ticks.
func TestPhaseChangeReconverges(t *testing.T) {
	h := newHarness(testCfg(), 2, 0)
	for r := 0; r < 20; r++ {
		h.load(0, 100, 40)
		h.load(1, 100, 0)
		h.en.Tick()
	}
	if h.entries[0].Policy() != lock.PolicyRetire || h.entries[1].Policy() != lock.PolicyNoRetire {
		t.Fatal("initial phase did not converge")
	}

	// Hotspot migrates from entry 0 to entry 1.
	const maxTicks = 12
	converged := -1
	for r := 0; r < maxTicks; r++ {
		h.load(0, 100, 0)
		h.load(1, 100, 40)
		h.en.Tick()
		if h.entries[0].Policy() == lock.PolicyNoRetire && h.entries[1].Policy() == lock.PolicyRetire {
			converged = r
			break
		}
	}
	if converged < 0 {
		t.Fatalf("classifier did not re-converge within %d ticks after phase change (policies %d/%d)",
			maxTicks, h.entries[0].Policy(), h.entries[1].Policy())
	}
	if h.en.HotEntries() != 1 {
		t.Fatalf("hot gauge = %d after migration, want 1", h.en.HotEntries())
	}
}

// TestPartitionFallback: entries too cold to fill their own sample
// window inherit the classification of their storage partition.
func TestPartitionFallback(t *testing.T) {
	// Two partitions, two entries each. Partition 0 runs hot in
	// aggregate, partition 1 cold; every entry individually stays under
	// MinAccesses per window.
	h := newHarness(testCfg(), 4, 2) // entries 0,2 → part 0; 1,3 → part 1
	for r := 0; r < 10; r++ {
		h.load(0, 10, 4)
		h.load(2, 10, 4)
		h.load(1, 10, 0)
		h.load(3, 10, 0)
		h.en.Tick()
	}
	for _, i := range []int{0, 2} {
		if p := h.entries[i].Policy(); p != lock.PolicyRetire {
			t.Fatalf("entry %d on hot partition: policy = %d, want PolicyRetire", i, p)
		}
	}
	for _, i := range []int{1, 3} {
		if p := h.entries[i].Policy(); p != lock.PolicyNoRetire {
			t.Fatalf("entry %d on cold partition: policy = %d, want PolicyNoRetire", i, p)
		}
	}
}

// TestIdleEntriesUntouched: entries with no traffic keep PolicyDefault —
// the sweep must not write to cachelines nobody is using.
func TestIdleEntriesUntouched(t *testing.T) {
	h := newHarness(testCfg(), 3, 0)
	for r := 0; r < 10; r++ {
		h.load(0, 100, 50)
		h.en.Tick()
	}
	for _, i := range []int{1, 2} {
		if p := h.entries[i].Policy(); p != lock.PolicyDefault {
			t.Fatalf("idle entry %d reclassified to %d", i, p)
		}
	}
}

// TestTickConflictSignal: Tick reports whether the pass saw any
// conflict — the idle-backoff signal. Conflict-free traffic (and no
// traffic at all) must read false; a single conflict, in an entry
// window or a partition delta, must read true.
func TestTickConflictSignal(t *testing.T) {
	h := newHarness(testCfg(), 2, 2)
	if h.en.Tick() {
		t.Fatal("empty pass reported a conflict")
	}
	h.load(0, 100, 0)
	if h.en.Tick() {
		t.Fatal("conflict-free pass reported a conflict")
	}
	h.load(0, 100, 1)
	if !h.en.Tick() {
		t.Fatal("pass with an entry conflict reported idle")
	}
	// Partition-only conflict: recorded against the partition counter
	// without any entry window traffic (as a conflict on a never-
	// registered entry would be).
	h.g.RecordPartAccess(1)
	h.g.RecordPartConflict(1)
	if !h.en.Tick() {
		t.Fatal("pass with a partition conflict reported idle")
	}
	if h.en.Tick() {
		t.Fatal("quiescent pass after conflicts still reported a conflict")
	}
}

// TestStartStop exercises the background ticker lifecycle.
func TestStartStop(t *testing.T) {
	h := newHarness(Config{}, 1, 0)
	h.en.Start()
	h.en.Start() // idempotent
	h.en.Stop()
	h.en.Stop() // idempotent
}
