package adaptive

import (
	"testing"

	"bamboo/internal/lock"
	"bamboo/internal/stats"
)

// BenchmarkTickSweep20k prices one engine tick over a 20k-entry
// registered working set, all idle — the steady-state floor of the
// background loop (one atomic load per entry). The interval default is
// chosen against this number: tick cost / interval is the fraction of a
// core the engine steals from the workload.
func BenchmarkTickSweep20k(b *testing.B) {
	entries := make([]lock.Entry, 20000)
	g := &stats.Global{}
	g.InitPartitions(1)
	en := New(Config{}, Source{Global: g})
	for i := range entries {
		entries[i].MarkSeen()
		en.Register(&entries[i], 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		en.Tick()
	}
}

// BenchmarkTickSweep20kActive is the same sweep with every entry's
// window full — each entry takes the swap + EWMA + classify slow path.
func BenchmarkTickSweep20kActive(b *testing.B) {
	entries := make([]lock.Entry, 20000)
	g := &stats.Global{}
	g.InitPartitions(1)
	en := New(Config{}, Source{Global: g})
	for i := range entries {
		entries[i].MarkSeen()
		en.Register(&entries[i], 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := range entries {
			for k := 0; k < 20; k++ {
				entries[j].RecordAccess()
			}
			entries[j].RecordConflict()
		}
		b.StartTimer()
		en.Tick()
	}
}
