// Package bench contains the experiment runners that regenerate every
// table and figure of the paper's evaluation (§5). Each experiment
// produces the same series the paper plots — protocol × x-axis →
// throughput and, where the paper shows them, the amortized per-
// transaction runtime breakdowns (lock wait / abort / commit wait /
// useful work).
//
// The runners are used three ways: from unit-style smoke tests, from the
// root bench_test.go (go test -bench), and from cmd/bamboo-bench. Absolute
// numbers depend on the host; the reproduction target is each figure's
// shape (who wins, by what factor, where the crossover falls), recorded in
// EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"bamboo/internal/bench/report"
	"bamboo/internal/chop"
	"bamboo/internal/core"
	"bamboo/internal/occ"
	"bamboo/internal/rpcsim"
	"bamboo/internal/stats"
	"bamboo/internal/telemetry"
	"bamboo/internal/wal"
	"bamboo/internal/workload/synth"
	"bamboo/internal/workload/tpcc"
	"bamboo/internal/workload/ycsb"
)

// Scale bounds an experiment's cost.
type Scale struct {
	// Threads is the worker sweep; nil selects a default bounded by
	// GOMAXPROCS.
	Threads []int
	// TxnsPerWorker is the per-point transaction count when Duration is
	// zero.
	TxnsPerWorker int
	// Duration, when set, runs each point for a fixed wall-clock time.
	Duration time.Duration
	// Rows scales the workload tables.
	Rows int
	// RTT is the interactive-mode round trip.
	RTT time.Duration
	// Repeat runs every point this many times and reports the
	// median-throughput sample (<=1 means once). Medians make the
	// bench-diff regression gate usable on noisy shared runners, where
	// single samples of contended points can swing ±25%.
	Repeat int
	// Partitions is the storage partition count every point's tables are
	// created with (0/1 = the flat single-partition layout).
	Partitions int
	// ThreadsExplicit marks Threads as a user-requested sweep (the CLI
	// -threads flag). Experiments with their own ladders (scaling) honor
	// an explicit sweep verbatim but replace built-in defaults.
	ThreadsExplicit bool
	// ReadOnlyFrac, when positive, pins the readmvcc experiment's
	// read-only-fraction ladder to this single value (mirroring how
	// -partitions pins the partition ladder); 0 keeps the built-in
	// 0.5/0.9/0.95/1.0 sweep.
	ReadOnlyFrac float64
	// Seed, when nonzero, fixes the workload RNG seed every point's
	// loader and generators derive their per-worker streams from, so A/B
	// comparisons (adaptive vs static, before vs after) see identical
	// Zipfian key sequences. 0 keeps the workloads' built-in seeding.
	Seed int64
	// Metrics, when non-nil, is a live telemetry registry every point's
	// DB attaches to for the duration of its run (the bamboo-bench
	// -metrics-addr flag serves one process-wide registry): a scraper
	// sees whichever point is currently executing, and bamboo_up 0
	// between points. Nil keeps benchmark DBs metrics-free — the
	// baseline-comparable default.
	Metrics *telemetry.Registry
}

// Quick is the configuration used by tests: small but contentious.
// Points are repeated (median-of-5) because quick runs feed the CI
// regression gate.
func Quick() Scale {
	return Scale{Threads: []int{4}, TxnsPerWorker: 300, Rows: 20000, RTT: 20 * time.Microsecond, Repeat: 5}
}

// Full is the configuration used by the CLI and benchmarks.
func Full() Scale {
	maxT := runtime.GOMAXPROCS(0)
	var threads []int
	for _, t := range []int{1, 2, 4, 8, 16, 32, 64} {
		if t <= 2*maxT {
			threads = append(threads, t)
		}
	}
	return Scale{Threads: threads, Duration: 400 * time.Millisecond,
		TxnsPerWorker: 2000, Rows: 100000, RTT: 100 * time.Microsecond}
}

func (s Scale) threads() []int {
	if len(s.Threads) > 0 {
		return s.Threads
	}
	return []int{1, 4, 16}
}

// Row is one series point of an experiment.
type Row struct {
	X        string
	Protocol string
	Report   stats.Report
}

// Experiment names a runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(s Scale) []Row
}

// All returns every experiment keyed in DESIGN.md's experiment index.
func All() []Experiment {
	return []Experiment{
		{"fig1", "Fig 1: schedule makespan with one hotspot (2PL vs OCC vs Bamboo)", Fig1Schedules},
		{"sec5.2", "§5.2: single hotspot at the beginning, protocol comparison", Sec52SingleHotspot},
		{"fig3a", "Fig 3a: Bamboo/Wound-Wait speedup vs threads × txn length", Fig3aSpeedup},
		{"fig3b", "Fig 3b: throughput vs hotspot position", Fig3bHotspotPosition},
		{"fig4", "Fig 4: two hotspots, first fixed at beginning", Fig4SecondHotspot},
		{"fig5", "Fig 5: two hotspots, second fixed at end", Fig5FirstHotspot},
		{"fig6", "Fig 6: YCSB vs threads (theta=0.9)", Fig6YCSBThreads},
		{"fig7", "Fig 7: YCSB with 5% long read-only transactions", Fig7LongReadOnly},
		{"fig8", "Fig 8: YCSB vs Zipfian theta, stored-procedure + interactive", Fig8YCSBZipf},
		{"fig9", "Fig 9: TPC-C vs threads (1 warehouse), both modes", Fig9TPCCThreads},
		{"fig10", "Fig 10: TPC-C vs warehouses, both modes", Fig10TPCCWarehouses},
		{"fig11", "Fig 11: Bamboo vs IC3 on TPC-C (original and modified NewOrder)", Fig11IC3},
		{"delta", "§5.1: delta sweep for Optimization 2", DeltaSweep},
		{"ablation", "Ablation: Bamboo optimizations on/off", Ablation},
		{"scaling", "Scaling: thread ladder on the interactive hotspot workload", ScalingSweep},
		{"upgrade", "Upgrade: un-annotated RMW hotspot, SH→EX upgrade-rate sweep", UpgradeSweep},
		{"partition", "Partition: YCSB throughput and load time vs partition count (theta=0.9)", PartitionSweep},
		{"durability", "Durability: fsync policy × partitions on file-backed partition WALs (theta=0.6)", DurabilitySweep},
		{"readmvcc", "MVCC: lock-free snapshot reads vs shared-lock baseline, read-only fraction × theta (YCSB)", ReadMVCCSweep},
		{"adaptive", "Adaptive: runtime contention control vs static BAMBOO and WOUND_WAIT across Zipfian theta (YCSB)", AdaptiveSweep},
	}
}

// Find returns the experiment with the given id, or nil.
func Find(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			e := e
			return &e
		}
	}
	return nil
}

// ReportScale converts a Scale into the report schema's units.
func (s Scale) ReportScale() report.Scale {
	return report.Scale{
		Threads:       s.threads(),
		TxnsPerWorker: s.TxnsPerWorker,
		DurationNS:    int64(s.Duration),
		Rows:          s.Rows,
		RTTNS:         int64(s.RTT),
		Partitions:    s.Partitions,
		ReadOnlyFrac:  s.ReadOnlyFrac,
		Seed:          s.Seed,
	}
}

// ToExperiment flattens run rows into the report schema.
func ToExperiment(id, title string, elapsed time.Duration, rows []Row) report.Experiment {
	e := report.Experiment{ID: id, Title: title, ElapsedNS: int64(elapsed)}
	for _, r := range rows {
		e.Points = append(e.Points, report.PointFrom(r.X, r.Report))
	}
	return e
}

// Print renders rows grouped by X in the table format.
func Print(w io.Writer, title string, rows []Row) {
	report.WriteTable(w, ToExperiment("", title, 0, rows))
}

// engineFor builds a fresh engine (and DB) for a protocol configuration.
// siloCfg handles the OCC baseline, which is not lock-based. make receives
// the point's partition count so one builder serves every point of a
// partition sweep.
type engineBuilder struct {
	name string
	make func(partitions int) (core.Engine, *core.DB, func())
}

func lockBuilder(cfg core.Config) engineBuilder {
	nameDB := core.NewDB(cfg)
	name := nameDB.ProtocolName()
	nameDB.Close() // a group-commit config would otherwise leak its flusher
	return engineBuilder{name: name, make: func(partitions int) (core.Engine, *core.DB, func()) {
		c := cfg
		c.Partitions = partitions
		db := core.NewDB(c)
		return core.NewLockEngine(db), db, func() { db.Close() }
	}}
}

func siloBuilder() engineBuilder {
	return engineBuilder{name: "SILO", make: func(partitions int) (core.Engine, *core.DB, func()) {
		db := core.NewDB(core.Config{Partitions: partitions})
		e := occ.New(db)
		return e, db, e.Close
	}}
}

func standardBuilders() []engineBuilder {
	return []engineBuilder{
		lockBuilder(core.Bamboo()),
		lockBuilder(core.WoundWait()),
		lockBuilder(core.WaitDie()),
		lockBuilder(core.NoWait()),
		siloBuilder(),
	}
}

// runPoint loads a workload into a fresh engine and drives it, repeating
// the point s.Repeat times and keeping the median-throughput sample.
func runPoint(s Scale, b engineBuilder, interactive bool,
	load func(db *core.DB) (core.Generator, error), threads int) stats.Report {

	n := s.Repeat
	if n < 1 {
		n = 1
	}
	reports := make([]stats.Report, 0, n)
	for i := 0; i < n; i++ {
		reports = append(reports, runPointOnce(s, b, interactive, load, threads))
	}
	return medianReport(reports)
}

// runPointSteady runs one x-axis point for several builders on live,
// reused DBs: each builder gets one engine and one load up front, then
// the repeats run round-robin across the builders (A,B,C, A,B,C, …)
// against those same DBs. This differs from runPoint in two deliberate
// ways. First, interleaving: on shared hosts noise arrives in bursts
// longer than a single sample, and consecutive repeats let one burst
// poison an entire builder's median while its competitors run clean —
// rotating through the builders every round spreads a burst across all
// series, which is what a within-point A/B comparison needs. Second,
// reuse: a feedback engine pays a classification warm-up on every fresh
// DB, so fresh-per-repeat sampling would re-measure convergence five
// times instead of the converged steady state; the statics run on
// reused DBs too, keeping the comparison symmetric. Returns one median
// report per builder, in builder order.
func runPointSteady(s Scale, builders []engineBuilder,
	load func(db *core.DB) (core.Generator, error), threads int) []stats.Report {

	n := s.Repeat
	if n < 1 {
		n = 1
	}
	type liveDB struct {
		eng      core.Engine
		gen      core.Generator
		closer   func()
		loadTime time.Duration
	}
	live := make([]liveDB, len(builders))
	parts := s.Partitions
	if parts < 1 {
		parts = 1
	}
	for i, b := range builders {
		e, db, closer := b.make(parts)
		db.EnableMetrics(s.Metrics)
		loadStart := time.Now()
		gen, err := load(db)
		if err != nil {
			panic(fmt.Sprintf("bench: load: %v", err))
		}
		live[i] = liveDB{eng: e, gen: gen, closer: closer, loadTime: time.Since(loadStart)}
	}
	samples := make([][]stats.Report, len(builders))
	for r := 0; r < n; r++ {
		for i := range builders {
			runtime.GC()
			var res core.RunResult
			if s.Duration > 0 {
				res = core.RunFor(live[i].eng, threads, s.Duration, live[i].gen)
			} else {
				res = core.RunN(live[i].eng, threads, s.TxnsPerWorker, live[i].gen)
			}
			if res.Err != nil {
				panic(fmt.Sprintf("bench: run: %v", res.Err))
			}
			res.Report.Protocol = builders[i].name
			res.Report.LoadTime = live[i].loadTime
			samples[i] = append(samples[i], res.Report)
		}
	}
	for i := range live {
		live[i].closer()
	}
	out := make([]stats.Report, len(builders))
	for i := range builders {
		out[i] = medianReport(samples[i])
	}
	return out
}

// medianReport reduces repeated samples of one point to the
// throughput-median sample, with per-metric medians for the gated
// latency figures.
func medianReport(reports []stats.Report) stats.Report {
	sort.Slice(reports, func(i, j int) bool {
		return reports[i].ThroughputTPS < reports[j].ThroughputTPS
	})
	rep := reports[len(reports)/2]
	// Each gated metric gets its own median: the throughput-median sample
	// can carry an arbitrarily lucky or unlucky tail (p99 is ~the 12th
	// worst of 1200 samples at quick scale), and a gate comparing one
	// run's lucky tail against another's median fails on pure noise.
	medianDur := func(get func(*stats.Report) time.Duration) time.Duration {
		ds := make([]time.Duration, len(reports))
		for i := range reports {
			ds[i] = get(&reports[i])
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)/2]
	}
	rep.LoadTime = medianDur(func(r *stats.Report) time.Duration { return r.LoadTime })
	rep.LatencyMean = medianDur(func(r *stats.Report) time.Duration { return r.LatencyMean })
	rep.LatencyP50 = medianDur(func(r *stats.Report) time.Duration { return r.LatencyP50 })
	rep.LatencyP90 = medianDur(func(r *stats.Report) time.Duration { return r.LatencyP90 })
	rep.LatencyP95 = medianDur(func(r *stats.Report) time.Duration { return r.LatencyP95 })
	rep.LatencyP99 = medianDur(func(r *stats.Report) time.Duration { return r.LatencyP99 })
	rep.LatencyP999 = medianDur(func(r *stats.Report) time.Duration { return r.LatencyP999 })
	rep.LatencyMax = medianDur(func(r *stats.Report) time.Duration { return r.LatencyMax })
	// The adaptive telemetry is cumulative per DB (policy flips, batched
	// grants) or a point-in-time gauge (hot entries), and on a reused DB
	// the throughput-median sample can be the warm-up repeat from before
	// the engine's first classification pass — which would report zero
	// flips on a point that demonstrably classified. The point reports
	// the maximum observed across the samples instead: the final
	// cumulative count for the counters, the peak for the gauge.
	maxU64 := func(get func(*stats.Report) uint64) uint64 {
		var m uint64
		for i := range reports {
			if v := get(&reports[i]); v > m {
				m = v
			}
		}
		return m
	}
	rep.PolicyFlips = maxU64(func(r *stats.Report) uint64 { return r.PolicyFlips })
	rep.HotEntries = maxU64(func(r *stats.Report) uint64 { return r.HotEntries })
	rep.BatchedGrants = maxU64(func(r *stats.Report) uint64 { return r.BatchedGrants })
	return rep
}

func runPointOnce(s Scale, b engineBuilder, interactive bool,
	load func(db *core.DB) (core.Generator, error), threads int) stats.Report {

	// Start every measurement from a collected heap: without this, a
	// point's GC pacing depends on how much garbage the *previous*
	// protocols left behind, which couples measurements to run order.
	runtime.GC()
	parts := s.Partitions
	if parts < 1 {
		parts = 1
	}
	e, db, closer := b.make(parts)
	defer closer()
	db.EnableMetrics(s.Metrics)
	loadStart := time.Now()
	gen, err := load(db)
	loadTime := time.Since(loadStart)
	if err != nil {
		panic(fmt.Sprintf("bench: load: %v", err))
	}
	// Checkpoint-enabled builders measure the lifecycle's cost during the
	// run, so the background loop starts only once the base load is in
	// (the same ordering recovery requires). No-op otherwise.
	db.StartCheckpointer()
	eng := e
	if interactive {
		eng = rpcsim.New(e, rpcsim.Config{RTT: s.RTT})
	}
	var res core.RunResult
	if s.Duration > 0 {
		res = core.RunFor(eng, threads, s.Duration, gen)
	} else {
		res = core.RunN(eng, threads, s.TxnsPerWorker, gen)
	}
	if res.Err != nil {
		panic(fmt.Sprintf("bench: run: %v", res.Err))
	}
	// The builder's display name wins over the engine's protocol name, so
	// variant builders (BAMBOO d=0.15, -O1 reads, BAMBOO+gc, …) stay
	// distinguishable in tables and in the JSON document.
	res.Report.Protocol = b.name
	res.Report.LoadTime = loadTime
	// Durability telemetry from the DB's log devices, read before Close so
	// the numbers are the steady-state run's (no shutdown sync).
	ws := db.WALStats()
	res.Report.WALAppends = ws.Appends
	res.Report.WALBatches = ws.Batches
	res.Report.WALBytes = ws.Bytes
	res.Report.WALSyncs = ws.Syncs
	res.Report.WALSyncTime = ws.SyncTime
	cs := db.CheckpointStats()
	res.Report.CheckpointCount = cs.Checkpoints
	res.Report.CheckpointTime = cs.Time
	if cs.Checkpoints > 0 {
		res.Report.LogBytesLive = db.LogLiveBytes()
	}
	return res.Report
}

// The loader factories take the point's Scale so an explicit -seed
// reaches every workload's RNGs; a seed already set on the config (an
// experiment pinning its own streams) wins over the Scale's.

func synthLoader(s Scale, cfg synth.Config) func(db *core.DB) (core.Generator, error) {
	if cfg.Seed == 0 {
		cfg.Seed = s.Seed
	}
	return func(db *core.DB) (core.Generator, error) {
		w, err := synth.Load(db, cfg)
		if err != nil {
			return nil, err
		}
		return w.Generator(), nil
	}
}

func ycsbLoader(s Scale, cfg ycsb.Config) func(db *core.DB) (core.Generator, error) {
	if cfg.Seed == 0 {
		cfg.Seed = s.Seed
	}
	return func(db *core.DB) (core.Generator, error) {
		w, err := ycsb.Load(db, cfg)
		if err != nil {
			return nil, err
		}
		return w.Generator(), nil
	}
}

func tpccLoader(s Scale, cfg tpcc.Config) func(db *core.DB) (core.Generator, error) {
	if cfg.Seed == 0 {
		cfg.Seed = s.Seed
	}
	return func(db *core.DB) (core.Generator, error) {
		w, err := tpcc.Load(db, cfg)
		if err != nil {
			return nil, err
		}
		return w.Generator(), nil
	}
}

// Fig1Schedules demonstrates Figure 1: three transactions that write the
// hotspot A at their start and then do independent work. Under 2PL the
// makespan is ~3 transaction lengths; under Bamboo the hotspot serializes
// only for its own duration and the rest overlaps (the "ideal" schedule);
// OCC (Silo) aborts and restarts the laggards.
func Fig1Schedules(s Scale) []Row {
	var rows []Row
	cfg := synth.Config{Rows: 4096, TxnLen: 16, HotspotPos: []float64{0}}
	for _, b := range []engineBuilder{
		lockBuilder(core.WoundWait()),
		siloBuilder(),
		lockBuilder(core.Bamboo()),
	} {
		sc := s
		sc.Duration = 0
		sc.TxnsPerWorker = s.TxnsPerWorker
		rep := runPoint(sc, b, false, synthLoader(s, cfg), 3)
		rows = append(rows, Row{X: "3 concurrent writers of hotspot A", Protocol: b.name, Report: rep})
	}
	return rows
}

// Sec52SingleHotspot reproduces the §5.2 text numbers: one
// read-modify-write hotspot at the beginning plus random reads.
func Sec52SingleHotspot(s Scale) []Row {
	cfg := synth.Config{Rows: s.Rows, TxnLen: 16, HotspotPos: []float64{0}}
	threads := s.threads()
	t := threads[len(threads)-1]
	var rows []Row
	for _, b := range standardBuilders() {
		rep := runPoint(s, b, false, synthLoader(s, cfg), t)
		rows = append(rows, Row{X: fmt.Sprintf("%d threads", t), Protocol: b.name, Report: rep})
	}
	return rows
}

// Fig3aSpeedup sweeps thread count and transaction length, reporting
// Bamboo and Wound-Wait throughput (the paper plots their ratio).
func Fig3aSpeedup(s Scale) []Row {
	var rows []Row
	for _, txnLen := range []int{4, 16, 64} {
		cfg := synth.Config{Rows: s.Rows, TxnLen: txnLen, HotspotPos: []float64{0}}
		for _, t := range s.threads() {
			x := fmt.Sprintf("len=%d threads=%d", txnLen, t)
			for _, b := range []engineBuilder{lockBuilder(core.Bamboo()), lockBuilder(core.WoundWait())} {
				rep := runPoint(s, b, false, synthLoader(s, cfg), t)
				rows = append(rows, Row{X: x, Protocol: b.name, Report: rep})
			}
		}
	}
	return rows
}

// Fig3bHotspotPosition sweeps the hotspot position within the
// transaction.
func Fig3bHotspotPosition(s Scale) []Row {
	var rows []Row
	threads := maxThreads(s)
	for _, pos := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		cfg := synth.Config{Rows: s.Rows, TxnLen: 16, HotspotPos: []float64{pos}}
		x := fmt.Sprintf("position=%.2f", pos)
		for _, b := range []engineBuilder{lockBuilder(core.Bamboo()), lockBuilder(core.WoundWait())} {
			rep := runPoint(s, b, false, synthLoader(s, cfg), threads)
			rows = append(rows, Row{X: x, Protocol: b.name, Report: rep})
		}
	}
	return rows
}

// Fig4SecondHotspot fixes one hotspot at the beginning and sweeps the
// second one's distance; BAMBOO-base (no Optimization 2) is included as
// in the paper.
func Fig4SecondHotspot(s Scale) []Row {
	return twoHotspots(s, func(d float64) []float64 { return []float64{0, d} }, "distance")
}

// Fig5FirstHotspot fixes the second hotspot at the end and sweeps the
// first one's distance from it.
func Fig5FirstHotspot(s Scale) []Row {
	return twoHotspots(s, func(d float64) []float64 { return []float64{1 - d, 1} }, "distance")
}

func twoHotspots(s Scale, pos func(float64) []float64, label string) []Row {
	var rows []Row
	threads := maxThreads(s)
	for _, d := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		cfg := synth.Config{Rows: s.Rows, TxnLen: 16, HotspotPos: pos(d)}
		x := fmt.Sprintf("%s=%.2f", label, d)
		for _, b := range []engineBuilder{
			lockBuilder(core.BambooBase()),
			lockBuilder(core.Bamboo()),
			lockBuilder(core.WoundWait()),
		} {
			rep := runPoint(s, b, false, synthLoader(s, cfg), threads)
			rows = append(rows, Row{X: x, Protocol: b.name, Report: rep})
		}
	}
	return rows
}

// Fig6YCSBThreads sweeps threads on high-contention YCSB.
func Fig6YCSBThreads(s Scale) []Row {
	cfg := ycsb.DefaultConfig()
	cfg.Rows = s.Rows
	cfg.Theta = 0.9
	var rows []Row
	for _, t := range s.threads() {
		x := fmt.Sprintf("threads=%d", t)
		for _, b := range standardBuilders() {
			rep := runPoint(s, b, false, ycsbLoader(s, cfg), t)
			rows = append(rows, Row{X: x, Protocol: b.name, Report: rep})
		}
	}
	return rows
}

// Fig7LongReadOnly adds 5% read-only transactions of 1000 tuples.
func Fig7LongReadOnly(s Scale) []Row {
	cfg := ycsb.DefaultConfig()
	cfg.Rows = s.Rows
	cfg.Theta = 0.9
	cfg.LongReadFrac = 0.05
	cfg.LongReadOps = min(1000, s.Rows/4)
	var rows []Row
	for _, t := range s.threads() {
		x := fmt.Sprintf("threads=%d", t)
		for _, b := range standardBuilders() {
			rep := runPoint(s, b, false, ycsbLoader(s, cfg), t)
			rows = append(rows, Row{X: x, Protocol: b.name, Report: rep})
		}
	}
	return rows
}

// Fig8YCSBZipf sweeps the Zipfian theta in stored-procedure and
// interactive modes.
func Fig8YCSBZipf(s Scale) []Row {
	var rows []Row
	threads := maxThreads(s)
	for _, mode := range []bool{false, true} {
		for _, theta := range []float64{0.5, 0.7, 0.8, 0.9, 0.99} {
			cfg := ycsb.DefaultConfig()
			cfg.Rows = s.Rows
			cfg.Theta = theta
			label := "stored-proc"
			if mode {
				label = "interactive"
			}
			x := fmt.Sprintf("%s theta=%.2f", label, theta)
			for _, b := range standardBuilders() {
				rep := runPoint(s, b, mode, ycsbLoader(s, cfg), threads)
				rows = append(rows, Row{X: x, Protocol: b.name, Report: rep})
			}
		}
	}
	return rows
}

// Fig9TPCCThreads sweeps threads on 1-warehouse TPC-C in both modes.
func Fig9TPCCThreads(s Scale) []Row {
	cfg := tpcc.DefaultConfig()
	var rows []Row
	for _, mode := range []bool{false, true} {
		label := "stored-proc"
		if mode {
			label = "interactive"
		}
		for _, t := range s.threads() {
			x := fmt.Sprintf("%s threads=%d", label, t)
			for _, b := range standardBuilders() {
				rep := runPoint(s, b, mode, tpccLoader(s, cfg), t)
				rows = append(rows, Row{X: x, Protocol: b.name, Report: rep})
			}
		}
	}
	return rows
}

// Fig10TPCCWarehouses sweeps the warehouse count at fixed threads.
func Fig10TPCCWarehouses(s Scale) []Row {
	var rows []Row
	threads := maxThreads(s)
	for _, mode := range []bool{false, true} {
		label := "stored-proc"
		if mode {
			label = "interactive"
		}
		for _, wh := range []int{16, 8, 4, 2, 1} {
			cfg := tpcc.DefaultConfig()
			cfg.Warehouses = wh
			x := fmt.Sprintf("%s warehouses=%d", label, wh)
			for _, b := range standardBuilders() {
				rep := runPoint(s, b, mode, tpccLoader(s, cfg), threads)
				rows = append(rows, Row{X: x, Protocol: b.name, Report: rep})
			}
		}
	}
	return rows
}

// Fig11IC3 compares Bamboo, IC3, Wound-Wait and Silo on 1-warehouse TPC-C
// with the original and the modified (W_YTD-reading) NewOrder.
func Fig11IC3(s Scale) []Row {
	var rows []Row
	for _, modified := range []bool{false, true} {
		variant := "original"
		if modified {
			variant = "modified"
		}
		for _, t := range s.threads() {
			x := fmt.Sprintf("%s threads=%d", variant, t)
			cfg := tpcc.DefaultConfig()
			cfg.ModifiedNewOrder = modified
			for _, b := range []engineBuilder{
				lockBuilder(core.Bamboo()),
				lockBuilder(core.WoundWait()),
				siloBuilder(),
			} {
				rep := runPoint(s, b, false, tpccLoader(s, cfg), t)
				rows = append(rows, Row{X: x, Protocol: b.name, Report: rep})
			}
			rows = append(rows, Row{X: x, Protocol: "IC3", Report: runIC3Point(s, cfg, t)})
		}
	}
	return rows
}

func runIC3Point(s Scale, cfg tpcc.Config, threads int) stats.Report {
	// Same storage layout as the row-engine points of the figure, so the
	// document's scale block stays truthful for the IC3 series too.
	db := core.NewDB(core.Config{Partitions: s.Partitions})
	db.EnableMetrics(s.Metrics)
	if cfg.Seed == 0 {
		cfg.Seed = s.Seed
	}
	loadStart := time.Now()
	w, err := tpcc.Load(db, cfg)
	if err != nil {
		panic(err)
	}
	loadTime := time.Since(loadStart)
	reg, payment, neworder := w.ChopRegistry()
	e := chop.New(db, reg)
	per := s.TxnsPerWorker
	start := time.Now()
	cols, err := w.RunIC3(e, payment, neworder, threads, per)
	if err != nil {
		panic(err)
	}
	rep := stats.Summarize("IC3", time.Since(start), cols, db.Global)
	rep.LoadTime = loadTime
	return rep
}

// DeltaSweep measures the effect of Optimization 2's delta parameter
// (§5.1 reports <13% spread and settles on 0.15).
func DeltaSweep(s Scale) []Row {
	var rows []Row
	threads := maxThreads(s)
	cfg := synth.Config{Rows: s.Rows, TxnLen: 16, HotspotPos: []float64{0, 1}}
	for _, delta := range []float64{0, 0.05, 0.15, 0.3, 0.5, 1.0} {
		c := core.Bamboo()
		c.Delta = delta
		b := lockBuilder(c)
		b.name = fmt.Sprintf("BAMBOO d=%.2f", delta)
		rep := runPoint(s, b, false, synthLoader(s, cfg), threads)
		rows = append(rows, Row{X: "delta sweep", Protocol: b.name, Report: rep})
	}
	return rows
}

// Ablation toggles each Bamboo optimization off in turn on
// high-contention YCSB, quantifying the design choices of §3.5.
func Ablation(s Scale) []Row {
	cfg := ycsb.DefaultConfig()
	cfg.Rows = s.Rows
	cfg.Theta = 0.9
	threads := maxThreads(s)

	mk := func(name string, mod func(*core.Config)) engineBuilder {
		c := core.Bamboo()
		mod(&c)
		b := lockBuilder(c)
		b.name = name
		return b
	}
	builders := []engineBuilder{
		mk("BAMBOO(full)", func(*core.Config) {}),
		mk("-O1 reads", func(c *core.Config) { c.RetireReads = false; c.NoWoundRead = false }),
		mk("-O2 delta", func(c *core.Config) { c.Delta = 0 }),
		mk("-O3 nowound", func(c *core.Config) { c.NoWoundRead = false }),
		mk("-O4 dynts", func(c *core.Config) { c.DynamicTS = false }),
		mk("-retire(=WW)", func(c *core.Config) { c.RetireWrites = false; c.RetireReads = false; c.NoWoundRead = false }),
	}
	var rows []Row
	for _, b := range builders {
		rep := runPoint(s, b, false, ycsbLoader(s, cfg), threads)
		rows = append(rows, Row{X: fmt.Sprintf("ycsb theta=0.9 threads=%d", threads), Protocol: b.name, Report: rep})
	}
	return rows
}

// ScalingSweep stresses the runtime under maximum hotspot contention: a
// thread ladder on the one-hotspot workload — every transaction
// read-modify-writes one hot tuple at its start, then does independent
// work — in interactive mode (one RTT per operation), comparing Bamboo
// (with and without group-commit logging) against Wound-Wait. This is
// the setting of the paper's §5.2/Figure 8 story chosen for a reason:
// with per-operation stalls, 2PL holds the hotspot for the whole
// transaction (TxnLen × RTT) while Bamboo retires it after the first
// operation, so the winner is decided by the protocol rather than by
// scheduler luck and the series is stable enough to gate on regardless
// of the host's core count. Expect Bamboo to scale near-linearly up the
// ladder while Wound-Wait flattens at ~1/(TxnLen×RTT); the group-commit
// variant should track plain Bamboo (batching must not cost throughput
// at this commit rate).
func ScalingSweep(s Scale) []Row {
	// Contention requires concurrency: fixed-count points degenerate on
	// small hosts (a worker can finish its whole quota inside one
	// scheduling quantum, so nothing ever conflicts). Force wall-clock
	// points, which keep every worker alive for the whole window.
	if s.Duration == 0 {
		s.Duration = 150 * time.Millisecond
	}
	cfg := synth.Config{Rows: s.Rows, TxnLen: 32, HotspotPos: []float64{0}}

	gc := core.Bamboo()
	gc.GroupCommit = true
	gcBuilder := lockBuilder(gc)
	gcBuilder.name = "BAMBOO+gc"

	builders := []engineBuilder{
		lockBuilder(core.Bamboo()),
		gcBuilder,
		lockBuilder(core.WoundWait()),
	}
	var rows []Row
	for _, t := range scalingThreads(s) {
		x := fmt.Sprintf("threads=%d", t)
		for _, b := range builders {
			rep := runPoint(s, b, true, synthLoader(s, cfg), t)
			rows = append(rows, Row{X: x, Protocol: b.name, Report: rep})
		}
	}
	return rows
}

// UpgradeSweep measures the SH→EX upgrade path on the contended
// read-modify-write hotspot shape (the TXSQL-style pattern): high-skew
// YCSB where a swept fraction of the updates is issued un-annotated —
// the transaction reads the row and only then updates it, so the
// executor must upgrade the shared lock in place. BAMBOO (retiring the
// upgraded write early) is compared against WOUND_WAIT and NO_WAIT; at
// rmw=0 the series coincides with the declared-write workload, so the
// sweep isolates what upgrades themselves cost each protocol. All three
// builders get a small abort backoff (DBx1000's ABORT_PENALTY): no-wait
// upgrade conflicts are symmetric — two readers of the same row both
// fail their upgrade — and without jitter they can chase each other
// unproductively.
func UpgradeSweep(s Scale) []Row {
	threads := maxThreads(s)
	mk := func(cfg core.Config) engineBuilder {
		cfg.AbortBackoffMax = 100 * time.Microsecond
		return lockBuilder(cfg)
	}
	builders := []engineBuilder{
		mk(core.Bamboo()),
		mk(core.WoundWait()),
		mk(core.NoWait()),
	}
	var rows []Row
	for _, rmw := range []float64{0, 0.5, 1.0} {
		cfg := ycsb.DefaultConfig()
		cfg.Rows = s.Rows
		cfg.Theta = 0.9
		cfg.RMWFrac = rmw
		x := fmt.Sprintf("rmw=%.2f threads=%d", rmw, threads)
		for _, b := range builders {
			rep := runPoint(s, b, false, ycsbLoader(s, cfg), threads)
			rows = append(rows, Row{X: x, Protocol: b.name, Report: rep})
		}
	}
	return rows
}

// PartitionSweep measures throughput vs storage partition count on
// high-contention YCSB at fixed theta: the skew (and thus the protocol
// contention) is pinned while the table is split 1→8 ways, so the sweep
// isolates what partitioning itself buys — parallel loading (LoadTime in
// the JSON document), smaller per-partition indexes — from what it cannot
// (the hot tuples stay hot; partition routing must cost nothing). The
// per-partition access counters captured with each point show the hash
// partitioner keeping accesses balanced even at theta=0.9, because
// Zipfian-hot keys scatter across partitions.
//
// An explicit -partitions value pins the sweep to that single count
// (mirroring how an explicit -threads sweep replaces built-in ladders),
// so the flag is never silently overridden and the document's scale
// block stays truthful; the default is the 1→8 ladder.
func PartitionSweep(s Scale) []Row {
	threads := maxThreads(s)
	cfg := ycsb.DefaultConfig()
	cfg.Rows = s.Rows
	cfg.Theta = 0.9
	builders := []engineBuilder{
		lockBuilder(core.Bamboo()),
		lockBuilder(core.WoundWait()),
	}
	ladder := []int{1, 2, 4, 8}
	if s.Partitions > 0 {
		ladder = []int{s.Partitions}
	}
	var rows []Row
	for _, parts := range ladder {
		sc := s
		sc.Partitions = parts
		x := fmt.Sprintf("partitions=%d threads=%d", parts, threads)
		for _, b := range builders {
			rep := runPoint(sc, b, false, ycsbLoader(s, cfg), threads)
			rows = append(rows, Row{X: x, Protocol: b.name, Report: rep})
		}
	}
	return rows
}

// DurabilitySweep measures the durability pipeline on real file devices:
// YCSB at medium contention (theta 0.6, so the log — not the lock table —
// is the bottleneck under test) over per-partition WAL files, sweeping
// the fsync policy at 1, 2 and 4 partitions. The series isolate what each
// mechanism buys:
//
//   - fsync=commit   one fsync per commit record — the naive durable
//     baseline group commit exists to beat;
//   - fsync=group    per-partition group commit, one fsync per epoch
//     batch (200µs accumulation window): fsyncs/txn is WALSyncs/Commits
//     and must drop well below 1;
//   - fsync=interval at most one fsync per millisecond (bounded loss at
//     bounded sync rate), no batching of the writes themselves;
//   - fsync=none     page-cache writes only — the write-path cost floor.
//
// Partitions multiply the independent logs: at P partitions the
// per-commit-fsync configuration spreads its syncs over P files (devices
// sync concurrently from different workers), while group commit gets P
// independent flushers. Each point's wal_appends/wal_batches/wal_syncs/
// fsync_ns land in the JSON document. An explicit -partitions pins the
// ladder to that single count, as in the partition sweep.
//
// Absolute numbers depend on the device behind the temp dir (tmpfs vs
// SSD vs spinning disk — EXPERIMENTS.md records both ends); the shape to
// reproduce is group commit holding throughput near fsync=none while
// fsync=commit collapses with real fsync latency.
func DurabilitySweep(s Scale) []Row {
	threads := maxThreads(s)
	cfg := ycsb.DefaultConfig()
	cfg.Rows = s.Rows
	cfg.Theta = 0.6

	mk := func(name string, gc bool, policy wal.FsyncPolicy, interval time.Duration, ckpt bool) engineBuilder {
		return engineBuilder{name: name, make: func(partitions int) (core.Engine, *core.DB, func()) {
			dir, err := os.MkdirTemp("", "bamboo-durability-")
			if err != nil {
				panic(fmt.Sprintf("bench: wal temp dir: %v", err))
			}
			c := core.Bamboo()
			c.Partitions = partitions
			c.GroupCommit = gc
			if gc {
				// A real accumulation window, not pure piggyback: on
				// few-core hosts the flusher goroutines starve behind the
				// workers, so interval-0 epochs degenerate toward one
				// record each (measured 0.53 syncs/txn piggyback vs 0.27
				// with the window at one partition, and a 40ms p99 tail at
				// four partitions on the 1-CPU container).
				c.GroupCommitInterval = 200 * time.Microsecond
			}
			c.WALDir = dir
			c.WALFsync = policy
			c.WALFsyncInterval = interval
			if ckpt {
				// The full lifecycle: a tight interval so several fuzzy
				// snapshots land inside even a quick-scale point, small
				// segments so truncation has boundaries to cut at, and
				// truncation on — this point's checkpoint_ns and
				// log_bytes_live quantify what keeping the log bounded
				// costs over plain fsync=group.
				c.Checkpoint = core.CheckpointConfig{
					Dir:          filepath.Join(dir, "ckpt"),
					Interval:     100 * time.Millisecond,
					SegmentBytes: 1 << 20,
					Truncate:     true,
				}
			}
			db := core.NewDB(c)
			return core.NewLockEngine(db), db, func() {
				db.Close()
				os.RemoveAll(dir)
			}
		}}
	}
	builders := []engineBuilder{
		mk("fsync=commit", false, wal.FsyncBatch, 0, false),
		mk("fsync=group", true, wal.FsyncBatch, 0, false),
		mk("fsync=group+ckpt", true, wal.FsyncBatch, 0, true),
		mk("fsync=interval", false, wal.FsyncInterval, time.Millisecond, false),
		mk("fsync=none", false, wal.FsyncNone, 0, false),
	}
	ladder := []int{1, 2, 4}
	if s.Partitions > 0 {
		ladder = []int{s.Partitions}
	}
	var rows []Row
	for _, parts := range ladder {
		sc := s
		sc.Partitions = parts
		x := fmt.Sprintf("partitions=%d threads=%d", parts, threads)
		for _, b := range builders {
			rep := runPoint(sc, b, false, ycsbLoader(s, cfg), threads)
			rows = append(rows, Row{X: x, Protocol: b.name, Report: rep})
		}
	}
	return rows
}

// ReadMVCCSweep measures what the lock-free snapshot read path buys on
// read-heavy skewed YCSB: transactions are declared read-only with
// probability f (the swept fraction) and the rest keep the default 50/50
// read/update mix, at theta 0.6 (moderate skew) and 0.9 (the
// high-contention hot set). BAMBOO+mvcc serves the read-only
// transactions at a snapshot — zero lock acquisitions, zero aborts —
// while plain BAMBOO runs the identical plans through shared locks, so
// the gap between the two series is exactly the cost of read locking
// (acquire/release latching, wound-induced aborts of readers, and
// readers queueing behind writers' exclusive holds).
//
// Expected shape: the series converge at low f and theta 0.6 (few
// read-only transactions, little contention to dodge) and diverge as
// both rise; at f≥0.9, theta 0.9 MVCC wins on throughput and the
// writers' tail latency must not regress — the snapshot_reads /
// versions_pruned / version_chain_max fields in the document confirm
// the path actually served reads and pruning kept chains bounded. An
// explicit -readonly-frac pins the ladder to that single fraction.
func ReadMVCCSweep(s Scale) []Row {
	threads := maxThreads(s)
	mvccCfg := core.Bamboo()
	mvccCfg.MVCC = true
	mvccBuilder := lockBuilder(mvccCfg)
	mvccBuilder.name = "BAMBOO+mvcc"
	builders := []engineBuilder{
		mvccBuilder,
		lockBuilder(core.Bamboo()),
	}
	fracs := []float64{0.5, 0.9, 0.95, 1.0}
	if s.ReadOnlyFrac > 0 {
		fracs = []float64{s.ReadOnlyFrac}
	}
	var rows []Row
	for _, theta := range []float64{0.6, 0.9} {
		for _, frac := range fracs {
			cfg := ycsb.DefaultConfig()
			cfg.Rows = s.Rows
			cfg.Theta = theta
			cfg.ReadOnlyFrac = frac
			x := fmt.Sprintf("ro=%.2f theta=%.2f threads=%d", frac, theta, threads)
			for _, b := range builders {
				rep := runPoint(s, b, false, ycsbLoader(s, cfg), threads)
				rows = append(rows, Row{X: x, Protocol: b.name, Report: rep})
			}
		}
	}
	return rows
}

// AdaptiveSweep measures what runtime contention control buys across the
// skew spectrum: YCSB at theta 0.0 (uniform — retiring is pure overhead,
// Wound-Wait territory) through 0.99 (a handful of keys absorb most
// accesses — Bamboo's early release pays), comparing the adaptive engine
// against both static extremes. The adaptive series starts every entry on
// the static default and lets the feedback engine reclassify from live
// conflict rates, so the claim under test is "adaptive ≈ best static
// variant at every theta" — no manual protocol choice required. Each
// point's hot_entries / policy_flips / batched_grants land in the JSON
// document; the theta-0.9 point must show policy_flips > 0 (CI greps for
// it — a silent detector means the experiment measured nothing).
//
// The sweep runs at the default 10ms tick: each tick costs ~6ns/row
// (two atomic loads on idle entries — see BenchmarkTickSweep20k), so a
// faster tick buys convergence latency at a per-core cost that matters
// on the 1-CPU CI container; at 10ms even the first tick of a quick-
// scale point sees thousands of accesses, which is all the classifier
// needs.
func AdaptiveSweep(s Scale) []Row {
	threads := maxThreads(s)
	adaptiveCfg := core.Bamboo()
	adaptiveCfg.Adaptive = true
	adaptiveBuilder := lockBuilder(adaptiveCfg)
	adaptiveBuilder.name = "BAMBOO-adaptive"
	builders := []engineBuilder{
		adaptiveBuilder,
		lockBuilder(core.Bamboo()),
		lockBuilder(core.WoundWait()),
	}
	var rows []Row
	for _, theta := range []float64{0.0, 0.6, 0.8, 0.9, 0.99} {
		cfg := ycsb.DefaultConfig()
		cfg.Rows = s.Rows
		cfg.Theta = theta
		x := fmt.Sprintf("theta=%.2f threads=%d", theta, threads)
		for i, rep := range runPointSteady(s, builders, ycsbLoader(s, cfg), threads) {
			rows = append(rows, Row{X: x, Protocol: builders[i].name, Report: rep})
		}
	}
	return rows
}

// scalingThreads is the ladder for ScalingSweep: an explicit -threads
// sweep (or any multi-point one) wins; otherwise powers of two up to
// max(16, 2×GOMAXPROCS), so the sweep reaches contention territory even
// at Quick scale and on small CI hosts, where the default sweeps stop at
// a handful of workers.
func scalingThreads(s Scale) []int {
	if s.ThreadsExplicit || len(s.Threads) > 1 {
		return s.Threads
	}
	top := 2 * runtime.GOMAXPROCS(0)
	if top < 16 {
		top = 16
	}
	var ts []int
	for t := 1; t <= top; t *= 2 {
		ts = append(ts, t)
	}
	return ts
}

func maxThreads(s Scale) int {
	ts := append([]int(nil), s.threads()...)
	sort.Ints(ts)
	return ts[len(ts)-1]
}
