// Package bench contains the experiment runners that regenerate every
// table and figure of the paper's evaluation (§5). Each experiment
// produces the same series the paper plots — protocol × x-axis →
// throughput and, where the paper shows them, the amortized per-
// transaction runtime breakdowns (lock wait / abort / commit wait /
// useful work).
//
// The runners are used three ways: from unit-style smoke tests, from the
// root bench_test.go (go test -bench), and from cmd/bamboo-bench. Absolute
// numbers depend on the host; the reproduction target is each figure's
// shape (who wins, by what factor, where the crossover falls), recorded in
// EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"bamboo/internal/bench/report"
	"bamboo/internal/chop"
	"bamboo/internal/core"
	"bamboo/internal/occ"
	"bamboo/internal/rpcsim"
	"bamboo/internal/stats"
	"bamboo/internal/workload/synth"
	"bamboo/internal/workload/tpcc"
	"bamboo/internal/workload/ycsb"
)

// Scale bounds an experiment's cost.
type Scale struct {
	// Threads is the worker sweep; nil selects a default bounded by
	// GOMAXPROCS.
	Threads []int
	// TxnsPerWorker is the per-point transaction count when Duration is
	// zero.
	TxnsPerWorker int
	// Duration, when set, runs each point for a fixed wall-clock time.
	Duration time.Duration
	// Rows scales the workload tables.
	Rows int
	// RTT is the interactive-mode round trip.
	RTT time.Duration
}

// Quick is the configuration used by tests: small but contentious.
func Quick() Scale {
	return Scale{Threads: []int{4}, TxnsPerWorker: 300, Rows: 20000, RTT: 20 * time.Microsecond}
}

// Full is the configuration used by the CLI and benchmarks.
func Full() Scale {
	maxT := runtime.GOMAXPROCS(0)
	var threads []int
	for _, t := range []int{1, 2, 4, 8, 16, 32, 64} {
		if t <= 2*maxT {
			threads = append(threads, t)
		}
	}
	return Scale{Threads: threads, Duration: 400 * time.Millisecond,
		TxnsPerWorker: 2000, Rows: 100000, RTT: 100 * time.Microsecond}
}

func (s Scale) threads() []int {
	if len(s.Threads) > 0 {
		return s.Threads
	}
	return []int{1, 4, 16}
}

// Row is one series point of an experiment.
type Row struct {
	X        string
	Protocol string
	Report   stats.Report
}

// Experiment names a runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(s Scale) []Row
}

// All returns every experiment keyed in DESIGN.md's experiment index.
func All() []Experiment {
	return []Experiment{
		{"fig1", "Fig 1: schedule makespan with one hotspot (2PL vs OCC vs Bamboo)", Fig1Schedules},
		{"sec5.2", "§5.2: single hotspot at the beginning, protocol comparison", Sec52SingleHotspot},
		{"fig3a", "Fig 3a: Bamboo/Wound-Wait speedup vs threads × txn length", Fig3aSpeedup},
		{"fig3b", "Fig 3b: throughput vs hotspot position", Fig3bHotspotPosition},
		{"fig4", "Fig 4: two hotspots, first fixed at beginning", Fig4SecondHotspot},
		{"fig5", "Fig 5: two hotspots, second fixed at end", Fig5FirstHotspot},
		{"fig6", "Fig 6: YCSB vs threads (theta=0.9)", Fig6YCSBThreads},
		{"fig7", "Fig 7: YCSB with 5% long read-only transactions", Fig7LongReadOnly},
		{"fig8", "Fig 8: YCSB vs Zipfian theta, stored-procedure + interactive", Fig8YCSBZipf},
		{"fig9", "Fig 9: TPC-C vs threads (1 warehouse), both modes", Fig9TPCCThreads},
		{"fig10", "Fig 10: TPC-C vs warehouses, both modes", Fig10TPCCWarehouses},
		{"fig11", "Fig 11: Bamboo vs IC3 on TPC-C (original and modified NewOrder)", Fig11IC3},
		{"delta", "§5.1: delta sweep for Optimization 2", DeltaSweep},
		{"ablation", "Ablation: Bamboo optimizations on/off", Ablation},
	}
}

// Find returns the experiment with the given id, or nil.
func Find(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			e := e
			return &e
		}
	}
	return nil
}

// ReportScale converts a Scale into the report schema's units.
func (s Scale) ReportScale() report.Scale {
	return report.Scale{
		Threads:       s.threads(),
		TxnsPerWorker: s.TxnsPerWorker,
		DurationNS:    int64(s.Duration),
		Rows:          s.Rows,
		RTTNS:         int64(s.RTT),
	}
}

// ToExperiment flattens run rows into the report schema.
func ToExperiment(id, title string, elapsed time.Duration, rows []Row) report.Experiment {
	e := report.Experiment{ID: id, Title: title, ElapsedNS: int64(elapsed)}
	for _, r := range rows {
		e.Points = append(e.Points, report.PointFrom(r.X, r.Report))
	}
	return e
}

// Print renders rows grouped by X in the table format.
func Print(w io.Writer, title string, rows []Row) {
	report.WriteTable(w, ToExperiment("", title, 0, rows))
}

// protocol configuration sets used across figures.

func lockConfigs() []core.Config {
	return []core.Config{core.Bamboo(), core.WoundWait(), core.WaitDie(), core.NoWait()}
}

// engineFor builds a fresh engine (and DB) for a protocol configuration.
// siloCfg handles the OCC baseline, which is not lock-based.
type engineBuilder struct {
	name string
	make func() (core.Engine, *core.DB, func())
}

func lockBuilder(cfg core.Config) engineBuilder {
	name := core.NewDB(cfg).ProtocolName()
	return engineBuilder{name: name, make: func() (core.Engine, *core.DB, func()) {
		db := core.NewDB(cfg)
		return core.NewLockEngine(db), db, func() {}
	}}
}

func siloBuilder() engineBuilder {
	return engineBuilder{name: "SILO", make: func() (core.Engine, *core.DB, func()) {
		db := core.NewDB(core.Config{})
		e := occ.New(db)
		return e, db, e.Close
	}}
}

func standardBuilders() []engineBuilder {
	return []engineBuilder{
		lockBuilder(core.Bamboo()),
		lockBuilder(core.WoundWait()),
		lockBuilder(core.WaitDie()),
		lockBuilder(core.NoWait()),
		siloBuilder(),
	}
}

// runPoint loads a workload into a fresh engine and drives it.
func runPoint(s Scale, b engineBuilder, interactive bool,
	load func(db *core.DB) (core.Generator, error), threads int) stats.Report {

	e, db, closer := b.make()
	defer closer()
	gen, err := load(db)
	if err != nil {
		panic(fmt.Sprintf("bench: load: %v", err))
	}
	eng := e
	if interactive {
		eng = rpcsim.New(e, rpcsim.Config{RTT: s.RTT})
	}
	var res core.RunResult
	if s.Duration > 0 {
		res = core.RunFor(eng, threads, s.Duration, gen)
	} else {
		res = core.RunN(eng, threads, s.TxnsPerWorker, gen)
	}
	if res.Err != nil {
		panic(fmt.Sprintf("bench: run: %v", res.Err))
	}
	return res.Report
}

func synthLoader(cfg synth.Config) func(db *core.DB) (core.Generator, error) {
	return func(db *core.DB) (core.Generator, error) {
		w, err := synth.Load(db, cfg)
		if err != nil {
			return nil, err
		}
		return w.Generator(), nil
	}
}

func ycsbLoader(cfg ycsb.Config) func(db *core.DB) (core.Generator, error) {
	return func(db *core.DB) (core.Generator, error) {
		w, err := ycsb.Load(db, cfg)
		if err != nil {
			return nil, err
		}
		return w.Generator(), nil
	}
}

func tpccLoader(cfg tpcc.Config) func(db *core.DB) (core.Generator, error) {
	return func(db *core.DB) (core.Generator, error) {
		w, err := tpcc.Load(db, cfg)
		if err != nil {
			return nil, err
		}
		return w.Generator(), nil
	}
}

// Fig1Schedules demonstrates Figure 1: three transactions that write the
// hotspot A at their start and then do independent work. Under 2PL the
// makespan is ~3 transaction lengths; under Bamboo the hotspot serializes
// only for its own duration and the rest overlaps (the "ideal" schedule);
// OCC (Silo) aborts and restarts the laggards.
func Fig1Schedules(s Scale) []Row {
	var rows []Row
	cfg := synth.Config{Rows: 4096, TxnLen: 16, HotspotPos: []float64{0}}
	for _, b := range []engineBuilder{
		lockBuilder(core.WoundWait()),
		siloBuilder(),
		lockBuilder(core.Bamboo()),
	} {
		sc := s
		sc.Duration = 0
		sc.TxnsPerWorker = s.TxnsPerWorker
		rep := runPoint(sc, b, false, synthLoader(cfg), 3)
		rows = append(rows, Row{X: "3 concurrent writers of hotspot A", Protocol: b.name, Report: rep})
	}
	return rows
}

// Sec52SingleHotspot reproduces the §5.2 text numbers: one
// read-modify-write hotspot at the beginning plus random reads.
func Sec52SingleHotspot(s Scale) []Row {
	cfg := synth.Config{Rows: s.Rows, TxnLen: 16, HotspotPos: []float64{0}}
	threads := s.threads()
	t := threads[len(threads)-1]
	var rows []Row
	for _, b := range standardBuilders() {
		rep := runPoint(s, b, false, synthLoader(cfg), t)
		rows = append(rows, Row{X: fmt.Sprintf("%d threads", t), Protocol: b.name, Report: rep})
	}
	return rows
}

// Fig3aSpeedup sweeps thread count and transaction length, reporting
// Bamboo and Wound-Wait throughput (the paper plots their ratio).
func Fig3aSpeedup(s Scale) []Row {
	var rows []Row
	for _, txnLen := range []int{4, 16, 64} {
		cfg := synth.Config{Rows: s.Rows, TxnLen: txnLen, HotspotPos: []float64{0}}
		for _, t := range s.threads() {
			x := fmt.Sprintf("len=%d threads=%d", txnLen, t)
			for _, b := range []engineBuilder{lockBuilder(core.Bamboo()), lockBuilder(core.WoundWait())} {
				rep := runPoint(s, b, false, synthLoader(cfg), t)
				rows = append(rows, Row{X: x, Protocol: b.name, Report: rep})
			}
		}
	}
	return rows
}

// Fig3bHotspotPosition sweeps the hotspot position within the
// transaction.
func Fig3bHotspotPosition(s Scale) []Row {
	var rows []Row
	threads := maxThreads(s)
	for _, pos := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		cfg := synth.Config{Rows: s.Rows, TxnLen: 16, HotspotPos: []float64{pos}}
		x := fmt.Sprintf("position=%.2f", pos)
		for _, b := range []engineBuilder{lockBuilder(core.Bamboo()), lockBuilder(core.WoundWait())} {
			rep := runPoint(s, b, false, synthLoader(cfg), threads)
			rows = append(rows, Row{X: x, Protocol: b.name, Report: rep})
		}
	}
	return rows
}

// Fig4SecondHotspot fixes one hotspot at the beginning and sweeps the
// second one's distance; BAMBOO-base (no Optimization 2) is included as
// in the paper.
func Fig4SecondHotspot(s Scale) []Row {
	return twoHotspots(s, func(d float64) []float64 { return []float64{0, d} }, "distance")
}

// Fig5FirstHotspot fixes the second hotspot at the end and sweeps the
// first one's distance from it.
func Fig5FirstHotspot(s Scale) []Row {
	return twoHotspots(s, func(d float64) []float64 { return []float64{1 - d, 1} }, "distance")
}

func twoHotspots(s Scale, pos func(float64) []float64, label string) []Row {
	var rows []Row
	threads := maxThreads(s)
	for _, d := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		cfg := synth.Config{Rows: s.Rows, TxnLen: 16, HotspotPos: pos(d)}
		x := fmt.Sprintf("%s=%.2f", label, d)
		for _, b := range []engineBuilder{
			lockBuilder(core.BambooBase()),
			lockBuilder(core.Bamboo()),
			lockBuilder(core.WoundWait()),
		} {
			rep := runPoint(s, b, false, synthLoader(cfg), threads)
			rows = append(rows, Row{X: x, Protocol: b.name, Report: rep})
		}
	}
	return rows
}

// Fig6YCSBThreads sweeps threads on high-contention YCSB.
func Fig6YCSBThreads(s Scale) []Row {
	cfg := ycsb.DefaultConfig()
	cfg.Rows = s.Rows
	cfg.Theta = 0.9
	var rows []Row
	for _, t := range s.threads() {
		x := fmt.Sprintf("threads=%d", t)
		for _, b := range standardBuilders() {
			rep := runPoint(s, b, false, ycsbLoader(cfg), t)
			rows = append(rows, Row{X: x, Protocol: b.name, Report: rep})
		}
	}
	return rows
}

// Fig7LongReadOnly adds 5% read-only transactions of 1000 tuples.
func Fig7LongReadOnly(s Scale) []Row {
	cfg := ycsb.DefaultConfig()
	cfg.Rows = s.Rows
	cfg.Theta = 0.9
	cfg.LongReadFrac = 0.05
	cfg.LongReadOps = min(1000, s.Rows/4)
	var rows []Row
	for _, t := range s.threads() {
		x := fmt.Sprintf("threads=%d", t)
		for _, b := range standardBuilders() {
			rep := runPoint(s, b, false, ycsbLoader(cfg), t)
			rows = append(rows, Row{X: x, Protocol: b.name, Report: rep})
		}
	}
	return rows
}

// Fig8YCSBZipf sweeps the Zipfian theta in stored-procedure and
// interactive modes.
func Fig8YCSBZipf(s Scale) []Row {
	var rows []Row
	threads := maxThreads(s)
	for _, mode := range []bool{false, true} {
		for _, theta := range []float64{0.5, 0.7, 0.8, 0.9, 0.99} {
			cfg := ycsb.DefaultConfig()
			cfg.Rows = s.Rows
			cfg.Theta = theta
			label := "stored-proc"
			if mode {
				label = "interactive"
			}
			x := fmt.Sprintf("%s theta=%.2f", label, theta)
			for _, b := range standardBuilders() {
				rep := runPoint(s, b, mode, ycsbLoader(cfg), threads)
				rows = append(rows, Row{X: x, Protocol: b.name, Report: rep})
			}
		}
	}
	return rows
}

// Fig9TPCCThreads sweeps threads on 1-warehouse TPC-C in both modes.
func Fig9TPCCThreads(s Scale) []Row {
	cfg := tpcc.DefaultConfig()
	var rows []Row
	for _, mode := range []bool{false, true} {
		label := "stored-proc"
		if mode {
			label = "interactive"
		}
		for _, t := range s.threads() {
			x := fmt.Sprintf("%s threads=%d", label, t)
			for _, b := range standardBuilders() {
				rep := runPoint(s, b, mode, tpccLoader(cfg), t)
				rows = append(rows, Row{X: x, Protocol: b.name, Report: rep})
			}
		}
	}
	return rows
}

// Fig10TPCCWarehouses sweeps the warehouse count at fixed threads.
func Fig10TPCCWarehouses(s Scale) []Row {
	var rows []Row
	threads := maxThreads(s)
	for _, mode := range []bool{false, true} {
		label := "stored-proc"
		if mode {
			label = "interactive"
		}
		for _, wh := range []int{16, 8, 4, 2, 1} {
			cfg := tpcc.DefaultConfig()
			cfg.Warehouses = wh
			x := fmt.Sprintf("%s warehouses=%d", label, wh)
			for _, b := range standardBuilders() {
				rep := runPoint(s, b, mode, tpccLoader(cfg), threads)
				rows = append(rows, Row{X: x, Protocol: b.name, Report: rep})
			}
		}
	}
	return rows
}

// Fig11IC3 compares Bamboo, IC3, Wound-Wait and Silo on 1-warehouse TPC-C
// with the original and the modified (W_YTD-reading) NewOrder.
func Fig11IC3(s Scale) []Row {
	var rows []Row
	for _, modified := range []bool{false, true} {
		variant := "original"
		if modified {
			variant = "modified"
		}
		for _, t := range s.threads() {
			x := fmt.Sprintf("%s threads=%d", variant, t)
			cfg := tpcc.DefaultConfig()
			cfg.ModifiedNewOrder = modified
			for _, b := range []engineBuilder{
				lockBuilder(core.Bamboo()),
				lockBuilder(core.WoundWait()),
				siloBuilder(),
			} {
				rep := runPoint(s, b, false, tpccLoader(cfg), t)
				rows = append(rows, Row{X: x, Protocol: b.name, Report: rep})
			}
			rows = append(rows, Row{X: x, Protocol: "IC3", Report: runIC3Point(s, cfg, t)})
		}
	}
	return rows
}

func runIC3Point(s Scale, cfg tpcc.Config, threads int) stats.Report {
	db := core.NewDB(core.Config{})
	w, err := tpcc.Load(db, cfg)
	if err != nil {
		panic(err)
	}
	reg, payment, neworder := w.ChopRegistry()
	e := chop.New(db, reg)
	per := s.TxnsPerWorker
	start := time.Now()
	cols, err := w.RunIC3(e, payment, neworder, threads, per)
	if err != nil {
		panic(err)
	}
	return stats.Summarize("IC3", time.Since(start), cols, db.Global)
}

// DeltaSweep measures the effect of Optimization 2's delta parameter
// (§5.1 reports <13% spread and settles on 0.15).
func DeltaSweep(s Scale) []Row {
	var rows []Row
	threads := maxThreads(s)
	cfg := synth.Config{Rows: s.Rows, TxnLen: 16, HotspotPos: []float64{0, 1}}
	for _, delta := range []float64{0, 0.05, 0.15, 0.3, 0.5, 1.0} {
		c := core.Bamboo()
		c.Delta = delta
		b := lockBuilder(c)
		b.name = fmt.Sprintf("BAMBOO d=%.2f", delta)
		rep := runPoint(s, b, false, synthLoader(cfg), threads)
		rows = append(rows, Row{X: "delta sweep", Protocol: b.name, Report: rep})
	}
	return rows
}

// Ablation toggles each Bamboo optimization off in turn on
// high-contention YCSB, quantifying the design choices of §3.5.
func Ablation(s Scale) []Row {
	cfg := ycsb.DefaultConfig()
	cfg.Rows = s.Rows
	cfg.Theta = 0.9
	threads := maxThreads(s)

	mk := func(name string, mod func(*core.Config)) engineBuilder {
		c := core.Bamboo()
		mod(&c)
		b := lockBuilder(c)
		b.name = name
		return b
	}
	builders := []engineBuilder{
		mk("BAMBOO(full)", func(*core.Config) {}),
		mk("-O1 reads", func(c *core.Config) { c.RetireReads = false; c.NoWoundRead = false }),
		mk("-O2 delta", func(c *core.Config) { c.Delta = 0 }),
		mk("-O3 nowound", func(c *core.Config) { c.NoWoundRead = false }),
		mk("-O4 dynts", func(c *core.Config) { c.DynamicTS = false }),
		mk("-retire(=WW)", func(c *core.Config) { c.RetireWrites = false; c.RetireReads = false; c.NoWoundRead = false }),
	}
	var rows []Row
	for _, b := range builders {
		rep := runPoint(s, b, false, ycsbLoader(cfg), threads)
		rows = append(rows, Row{X: fmt.Sprintf("ycsb theta=0.9 threads=%d", threads), Protocol: b.name, Report: rep})
	}
	return rows
}

func maxThreads(s Scale) int {
	ts := append([]int(nil), s.threads()...)
	sort.Ints(ts)
	return ts[len(ts)-1]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
