package bench_test

import (
	"strings"
	"testing"
	"time"

	"bamboo/internal/bench"
)

// tiny returns a scale small enough for CI-style smoke runs.
func tiny() bench.Scale {
	return bench.Scale{Threads: []int{4}, TxnsPerWorker: 60, Rows: 4000, RTT: 5 * time.Microsecond}
}

// TestAllExperimentsSmoke runs every experiment at tiny scale, checking
// that each produces rows and every protocol commits work. The full
// sweep takes ~20 s, so it is skipped under -short (CI runs it in a
// separate non-race job); TestQuickSmoke keeps one experiment covered
// in the fast path.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	for _, e := range bench.All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			rows := e.Run(tiny())
			if len(rows) == 0 {
				t.Fatal("no rows produced")
			}
			for _, r := range rows {
				if r.Report.Commits == 0 {
					t.Errorf("%s at %s committed nothing", r.Protocol, r.X)
				}
			}
			var sb strings.Builder
			bench.Print(&sb, e.Title, rows)
			if !strings.Contains(sb.String(), "txn/s") {
				t.Error("printed output missing throughput")
			}
		})
	}
}

func TestFind(t *testing.T) {
	if bench.Find("fig6") == nil {
		t.Fatal("fig6 not found")
	}
	if bench.Find("nonsense") != nil {
		t.Fatal("unexpected experiment found")
	}
}

// TestQuickSmoke runs one real experiment end to end at micro scale and
// checks the run → report conversion carries the full latency
// distribution. It stays enabled under -short so the race job still
// executes a genuine multi-worker benchmark run.
func TestQuickSmoke(t *testing.T) {
	s := tiny()
	s.TxnsPerWorker = 30
	e := bench.Find("fig6")
	rows := e.Run(s)
	if len(rows) == 0 {
		t.Fatal("no rows produced")
	}
	rep := bench.ToExperiment(e.ID, e.Title, time.Second, rows)
	if rep.ID != "fig6" || len(rep.Points) != len(rows) {
		t.Fatalf("conversion lost points: %d != %d", len(rep.Points), len(rows))
	}
	for _, p := range rep.Points {
		if p.Commits == 0 {
			t.Errorf("%s at %s committed nothing", p.Protocol, p.X)
		}
		if p.ThroughputTPS <= 0 {
			t.Errorf("%s at %s has no throughput", p.Protocol, p.X)
		}
		l := p.Latency
		if l.P50 <= 0 || l.P90 < l.P50 || l.P95 < l.P90 || l.P99 < l.P95 || l.P999 < l.P99 || l.Max < l.P999 {
			t.Errorf("%s at %s latency distribution broken: %+v", p.Protocol, p.X, l)
		}
	}
}

// TestPartitionSweepSmoke runs the partition experiment at micro scale
// and checks the partition-specific telemetry flows end to end: every
// point carries a load time, the partitioned points carry per-partition
// access counts matching their partition count (the flat partitions=1
// point carries none — telemetry is off on the baseline-comparable
// layout), and the hash partitioner keeps the skew bounded even under
// theta=0.9 (hot Zipfian keys scatter across partitions).
func TestPartitionSweepSmoke(t *testing.T) {
	s := tiny()
	s.TxnsPerWorker = 30
	rows := bench.PartitionSweep(s)
	if len(rows) == 0 {
		t.Fatal("no rows produced")
	}
	byParts := map[string]int{
		"partitions=1 threads=4": 0,
		"partitions=2 threads=4": 2,
		"partitions=4 threads=4": 4,
		"partitions=8 threads=4": 8,
	}
	for _, r := range rows {
		if r.Report.Commits == 0 {
			t.Errorf("%s at %s committed nothing", r.Protocol, r.X)
		}
		if r.Report.LoadTime <= 0 {
			t.Errorf("%s at %s has no load time", r.Protocol, r.X)
		}
		want, ok := byParts[r.X]
		if !ok {
			t.Errorf("unexpected x value %q", r.X)
			continue
		}
		if got := len(r.Report.PartitionAccesses); got != want {
			t.Errorf("%s at %s: %d partition counters, want %d", r.Protocol, r.X, got, want)
		}
		if want > 1 && r.Report.PartitionSkew > float64(want)/2+1 {
			t.Errorf("%s at %s: partition skew %.2f implausibly high", r.Protocol, r.X, r.Report.PartitionSkew)
		}
	}
}

// TestDurabilitySweepSmoke runs the durability experiment at micro scale
// on real (temp-dir) files and asserts the mechanics the sweep exists to
// measure: every durable point actually fsyncs, the per-commit-fsync
// configuration pays one sync per record, and per-partition group commit
// cuts fsyncs per transaction well below it at every partition count —
// including the ≥2-partition points where each partition runs its own
// flusher. fsync=none must not sync at all.
func TestDurabilitySweepSmoke(t *testing.T) {
	s := tiny()
	s.TxnsPerWorker = 40
	rows := bench.DurabilitySweep(s)
	if len(rows) == 0 {
		t.Fatal("no rows produced")
	}
	type point struct{ syncsPerTxn float64 }
	byXProto := map[string]map[string]point{}
	for _, r := range rows {
		rep := r.Report
		if rep.Commits == 0 {
			t.Fatalf("%s at %s committed nothing", r.Protocol, r.X)
		}
		if rep.WALAppends == 0 || rep.WALBytes == 0 {
			t.Fatalf("%s at %s has no WAL telemetry: %+v", r.Protocol, r.X, rep)
		}
		switch r.Protocol {
		case "fsync=none":
			if rep.WALSyncs != 0 {
				t.Errorf("%s at %s synced %d times", r.Protocol, r.X, rep.WALSyncs)
			}
		case "fsync=commit", "fsync=group":
			if rep.WALSyncs == 0 || rep.WALSyncTime <= 0 {
				t.Errorf("%s at %s reports no fsyncs", r.Protocol, r.X)
			}
			// fsync=interval is deliberately unasserted: a micro run on a
			// fast machine can finish inside the interval window and
			// legitimately sync zero times before stats are read.
		}
		if byXProto[r.X] == nil {
			byXProto[r.X] = map[string]point{}
		}
		byXProto[r.X][r.Protocol] = point{syncsPerTxn: float64(rep.WALSyncs) / float64(rep.Commits)}
	}
	for x, protos := range byXProto {
		commit, okC := protos["fsync=commit"]
		group, okG := protos["fsync=group"]
		if !okC || !okG {
			t.Fatalf("%s: missing series: %+v", x, protos)
		}
		if commit.syncsPerTxn < 0.99 {
			t.Errorf("%s: per-commit fsync ran %.2f syncs/txn, want ~1", x, commit.syncsPerTxn)
		}
		if group.syncsPerTxn > 0.9*commit.syncsPerTxn {
			t.Errorf("%s: group commit did not amortize fsyncs: %.2f vs %.2f syncs/txn",
				x, group.syncsPerTxn, commit.syncsPerTxn)
		}
	}
}

// TestBambooBeatsWoundWaitOnHotspot asserts the paper's core claim at
// smoke scale, on the setup where the winner is decided by the protocol
// rather than by scheduler luck: the interactive single-hotspot ladder
// of the scaling experiment. With one RTT per operation, Wound-Wait
// holds the hotspot for the whole transaction while Bamboo retires it
// after the first write, so at 8 threads the expected gap is severalfold
// on any host — the stored-procedure variant of this comparison is a
// coin flip on few-core machines (both engines near-sequential, the
// margin pure noise) and cannot be gated on.
func TestBambooBeatsWoundWaitOnHotspot(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second hotspot comparison skipped in -short mode")
	}
	s := tiny()
	s.Threads = []int{1, 8} // multi-point ladder: honored by ScalingSweep
	s.Duration = 100 * time.Millisecond
	s.Repeat = 3
	rows := bench.ScalingSweep(s)
	var bb, ww float64
	for _, r := range rows {
		if r.X == "threads=8" {
			switch r.Protocol {
			case "BAMBOO":
				bb = r.Report.ThroughputTPS
			case "WOUND_WAIT":
				ww = r.Report.ThroughputTPS
			}
		}
	}
	if bb == 0 || ww == 0 {
		t.Fatalf("missing series: bb=%f ww=%f", bb, ww)
	}
	if bb < ww {
		t.Errorf("BAMBOO (%.0f tps) slower than WOUND_WAIT (%.0f tps) on its best-case workload", bb, ww)
	}
}
