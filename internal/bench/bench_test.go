package bench_test

import (
	"strings"
	"testing"
	"time"

	"bamboo/internal/bench"
)

// tiny returns a scale small enough for CI-style smoke runs.
func tiny() bench.Scale {
	return bench.Scale{Threads: []int{4}, TxnsPerWorker: 60, Rows: 4000, RTT: 5 * time.Microsecond}
}

// TestAllExperimentsSmoke runs every experiment at tiny scale, checking
// that each produces rows and every protocol commits work.
func TestAllExperimentsSmoke(t *testing.T) {
	for _, e := range bench.All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			rows := e.Run(tiny())
			if len(rows) == 0 {
				t.Fatal("no rows produced")
			}
			for _, r := range rows {
				if r.Report.Commits == 0 {
					t.Errorf("%s at %s committed nothing", r.Protocol, r.X)
				}
			}
			var sb strings.Builder
			bench.Print(&sb, e.Title, rows)
			if !strings.Contains(sb.String(), "txn/s") {
				t.Error("printed output missing throughput")
			}
		})
	}
}

func TestFind(t *testing.T) {
	if bench.Find("fig6") == nil {
		t.Fatal("fig6 not found")
	}
	if bench.Find("nonsense") != nil {
		t.Fatal("unexpected experiment found")
	}
}

// TestBambooBeatsWoundWaitOnHotspot asserts the paper's core claim at
// smoke scale: with a single hotspot at the beginning of long
// transactions, Bamboo outperforms Wound-Wait.
func TestBambooBeatsWoundWaitOnHotspot(t *testing.T) {
	s := tiny()
	s.Threads = []int{8}
	s.TxnsPerWorker = 250
	rows := bench.Fig3aSpeedup(s)
	// Find the 16-op pair at 8 threads.
	var bb, ww float64
	for _, r := range rows {
		if r.X == "len=16 threads=8" {
			switch r.Protocol {
			case "BAMBOO":
				bb = r.Report.ThroughputTPS
			case "WOUND_WAIT":
				ww = r.Report.ThroughputTPS
			}
		}
	}
	if bb == 0 || ww == 0 {
		t.Fatalf("missing series: bb=%f ww=%f", bb, ww)
	}
	if bb < ww {
		t.Errorf("BAMBOO (%.0f tps) slower than WOUND_WAIT (%.0f tps) on its best-case workload", bb, ww)
	}
}
