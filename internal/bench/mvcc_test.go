package bench_test

import (
	"sort"
	"testing"
	"time"

	"bamboo/internal/bench"
	"bamboo/internal/core"
	"bamboo/internal/stats"
	"bamboo/internal/workload/tpcc"
)

// TestReadMVCCSweepSmoke runs the readmvcc experiment at micro scale with
// a pinned read-only fraction and asserts the MVCC-specific telemetry
// flows end to end: the BAMBOO+mvcc series actually serves reads from
// the snapshot path (snapshot_reads > 0), the plain BAMBOO baseline
// never does, and both series commit work at every point.
func TestReadMVCCSweepSmoke(t *testing.T) {
	s := tiny()
	s.TxnsPerWorker = 40
	s.ReadOnlyFrac = 0.9
	rows := bench.ReadMVCCSweep(s)
	if len(rows) != 4 { // 2 thetas × 1 pinned fraction × 2 builders
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Report.Commits == 0 {
			t.Errorf("%s at %s committed nothing", r.Protocol, r.X)
		}
		switch r.Protocol {
		case "BAMBOO+mvcc":
			if r.Report.SnapshotReads == 0 {
				t.Errorf("%s at %s served no snapshot reads", r.Protocol, r.X)
			}
		case "BAMBOO":
			if r.Report.SnapshotReads != 0 {
				t.Errorf("%s at %s reports %d snapshot reads on the lock-only engine",
					r.Protocol, r.X, r.Report.SnapshotReads)
			}
		default:
			t.Errorf("unexpected series %q", r.Protocol)
		}
	}
}

// TestStockLevelSnapshotInterference is the writer-interference probe for
// the MVCC tentpole claim: TPC-C's StockLevel — a long read-only scan of
// the district's recent orders, sharing the district row with NewOrder's
// hot write — must stop blocking writers once it runs on the snapshot
// path. The probe runs the same stock-level-heavy mix on an MVCC engine
// and on the plain locking engine and asserts (a) the scans actually used
// the snapshot path, and (b) the MVCC run's commit p99 did not regress
// past a generous multiple of the locking run's. The factor is loose
// because 1-CPU CI hosts schedule noisily; the regression this probe
// exists to catch — scans serializing behind (and wounding) writers —
// inflates p99 by an order of magnitude, not tens of percent. Medians of
// three runs per engine absorb single-run scheduler luck.
func TestStockLevelSnapshotInterference(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run interference probe skipped in -short mode")
	}
	cfg := tpcc.DefaultConfig()
	cfg.Warehouses = 1
	cfg.Items = 200
	cfg.CustomersPerDistrict = 60
	cfg.StockLevelFraction = 0.3

	runOnce := func(mvcc bool) stats.Report {
		cc := core.Bamboo()
		if mvcc {
			cc.MVCC = true
			cc.MVCCPruneInterval = time.Millisecond
		}
		db := core.NewDB(cc)
		defer db.Close()
		w, err := tpcc.Load(db, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := core.RunN(core.NewLockEngine(db), 4, 150, w.Generator())
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		return res.Report
	}
	median := func(mvcc bool) (p99 time.Duration, snaps uint64) {
		var p99s []time.Duration
		for i := 0; i < 3; i++ {
			rep := runOnce(mvcc)
			p99s = append(p99s, rep.LatencyP99)
			snaps += rep.SnapshotReads
		}
		sort.Slice(p99s, func(i, j int) bool { return p99s[i] < p99s[j] })
		return p99s[1], snaps
	}

	lockP99, lockSnaps := median(false)
	mvccP99, mvccSnaps := median(true)
	t.Logf("commit p99: locking %v, mvcc %v; snapshot reads: %d", lockP99, mvccP99, mvccSnaps)
	if lockSnaps != 0 {
		t.Fatalf("locking run reports %d snapshot reads", lockSnaps)
	}
	if mvccSnaps == 0 {
		t.Fatal("stock-level scans never used the snapshot path")
	}
	if mvccP99 > 4*lockP99 {
		t.Errorf("MVCC run's p99 (%v) regressed past 4x the locking run's (%v): "+
			"snapshot scans are interfering with writers", mvccP99, lockP99)
	}
}
