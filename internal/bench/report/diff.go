package report

import (
	"fmt"
	"io"
	"time"
)

// Thresholds configures what Compare counts as a regression. Fractions
// are relative: 0.10 means "10% worse than the baseline".
type Thresholds struct {
	// ThroughputDrop flags a point whose throughput fell by more than
	// this fraction of the baseline.
	ThroughputDrop float64
	// P99Rise flags a point whose p99 latency rose by more than this
	// fraction of the baseline.
	P99Rise float64
	// MinCommits skips points whose baseline committed fewer
	// transactions than this — tiny samples are all noise.
	MinCommits uint64
}

// DefaultThresholds matches the CI gate: 10% throughput, 25% p99.
// Latency gets the looser bound because tail percentiles are noisier
// than means at smoke-bench sample sizes.
func DefaultThresholds() Thresholds {
	return Thresholds{ThroughputDrop: 0.10, P99Rise: 0.25, MinCommits: 50}
}

// Regression is one point-metric pair that crossed a threshold.
type Regression struct {
	Experiment string
	X          string
	Protocol   string
	Metric     string // "throughput" or "p99"
	Old, New   float64
	// Change is the signed relative delta, negative for drops:
	// (new-old)/old.
	Change float64
}

func (r Regression) String() string {
	if r.Metric == "throughput" {
		return fmt.Sprintf("%s / %s / %s: throughput %.0f -> %.0f txn/s (%+.1f%%)",
			r.Experiment, r.X, r.Protocol, r.Old, r.New, r.Change*100)
	}
	return fmt.Sprintf("%s / %s / %s: p99 %v -> %v (%+.1f%%)",
		r.Experiment, r.X, r.Protocol,
		time.Duration(r.Old).Round(time.Microsecond),
		time.Duration(r.New).Round(time.Microsecond),
		r.Change*100)
}

// Diff is the outcome of comparing two result documents.
type Diff struct {
	// Compared counts the points present in both documents.
	Compared int
	// Skipped counts points below the MinCommits floor.
	Skipped int
	// MissingInNew lists baseline points with no counterpart in the new
	// document (experiment/x/protocol keys). Coverage loss is reported
	// but does not fail the gate — experiments legitimately come and go.
	MissingInNew []string
	// Regressions holds every threshold crossing, worst first is NOT
	// guaranteed; order follows the baseline document.
	Regressions []Regression
}

// OK reports whether the gate passes.
func (d Diff) OK() bool { return len(d.Regressions) == 0 }

type pointKey struct{ exp, x, protocol string }

// Compare evaluates new against the old baseline point by point. Points
// are matched by (experiment id, x label, protocol); unmatched new
// points are ignored (they are new coverage, not regressions).
func Compare(old, new *File, th Thresholds) Diff {
	idx := make(map[pointKey]Point)
	for _, e := range new.Experiments {
		for _, p := range e.Points {
			idx[pointKey{e.ID, p.X, p.Protocol}] = p
		}
	}
	var d Diff
	for _, e := range old.Experiments {
		for _, op := range e.Points {
			key := pointKey{e.ID, op.X, op.Protocol}
			np, ok := idx[key]
			if !ok {
				d.MissingInNew = append(d.MissingInNew,
					fmt.Sprintf("%s / %s / %s", key.exp, key.x, key.protocol))
				continue
			}
			if op.Commits < th.MinCommits {
				d.Skipped++
				continue
			}
			d.Compared++
			if op.ThroughputTPS > 0 {
				change := (np.ThroughputTPS - op.ThroughputTPS) / op.ThroughputTPS
				if change < -th.ThroughputDrop {
					d.Regressions = append(d.Regressions, Regression{
						Experiment: key.exp, X: key.x, Protocol: key.protocol,
						Metric: "throughput",
						Old:    op.ThroughputTPS, New: np.ThroughputTPS, Change: change,
					})
				}
			}
			if op.Latency.P99 > 0 {
				change := float64(np.Latency.P99-op.Latency.P99) / float64(op.Latency.P99)
				if change > th.P99Rise {
					d.Regressions = append(d.Regressions, Regression{
						Experiment: key.exp, X: key.x, Protocol: key.protocol,
						Metric: "p99",
						Old:    float64(op.Latency.P99), New: float64(np.Latency.P99), Change: change,
					})
				}
			}
		}
	}
	return d
}

// Print renders the diff for humans: coverage summary, then every
// regression one per line.
func (d Diff) Print(w io.Writer) {
	fmt.Fprintf(w, "compared %d points (%d skipped below commit floor, %d missing in new)\n",
		d.Compared, d.Skipped, len(d.MissingInNew))
	for _, m := range d.MissingInNew {
		fmt.Fprintf(w, "  missing: %s\n", m)
	}
	if d.OK() {
		fmt.Fprintln(w, "no regressions")
		return
	}
	fmt.Fprintf(w, "%d regression(s):\n", len(d.Regressions))
	for _, r := range d.Regressions {
		fmt.Fprintf(w, "  REGRESSION %s\n", r)
	}
}
