// Package report defines the machine-readable result schema the
// benchmark pipeline emits and the tools that consume it. It is the
// boundary between *running* experiments (internal/bench) and
// *reporting* them: runners produce stats.Report values, this package
// turns them into a versioned JSON document (plus CSV and the
// human-readable table), and cmd/bench-diff compares two such documents
// to gate regressions in CI.
//
// The schema is versioned so stored trajectory artifacts (BENCH_*.json)
// stay parseable as the pipeline evolves: readers accept only matching
// SchemaVersion values and fail loudly otherwise.
package report

import (
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"bamboo/internal/stats"
)

// SchemaVersion identifies the JSON layout. Bump it on any
// backwards-incompatible change to the structs below.
const SchemaVersion = 1

// File is the top-level result document: one benchmark invocation,
// covering one or more experiments at a single scale, annotated with
// enough environment detail to interpret absolute numbers later.
type File struct {
	SchemaVersion int    `json:"schema_version"`
	CreatedAt     string `json:"created_at"` // RFC 3339, UTC
	GitSHA        string `json:"git_sha"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	NumCPU        int    `json:"num_cpu"`

	Scale       Scale        `json:"scale"`
	Experiments []Experiment `json:"experiments"`
}

// Scale mirrors bench.Scale in JSON-friendly units (nanoseconds for
// durations). It is duplicated here rather than imported so the schema
// has no dependency on runner internals.
type Scale struct {
	Threads       []int `json:"threads"`
	TxnsPerWorker int   `json:"txns_per_worker"`
	DurationNS    int64 `json:"duration_ns"`
	Rows          int   `json:"rows"`
	RTTNS         int64 `json:"rtt_ns"`
	// Partitions is the storage partition count (0/absent = 1, the flat
	// pre-partitioning layout). Additive since the field's introduction,
	// so schema-version-1 documents without it stay parseable.
	Partitions int `json:"partitions,omitempty"`
	// ReadOnlyFrac is the pinned read-only-transaction fraction of the
	// readmvcc experiment (0/absent = the experiment's built-in ladder).
	// Additive + omitempty like Partitions.
	ReadOnlyFrac float64 `json:"readonly_frac,omitempty"`
	// Seed is the fixed workload RNG seed (-seed; 0/absent = the
	// workloads' built-in per-worker seeding). Recorded so A/B documents
	// state whether their key streams were identical. Additive + omitempty.
	Seed int64 `json:"seed,omitempty"`
}

// Experiment is one runner's full series.
type Experiment struct {
	ID        string  `json:"id"`
	Title     string  `json:"title"`
	ElapsedNS int64   `json:"elapsed_ns"` // wall time of the whole run
	Points    []Point `json:"points"`
}

// Point is one protocol at one x-axis value — the unit bench-diff
// compares across runs.
type Point struct {
	X        string `json:"x"`
	Protocol string `json:"protocol"`
	Workers  int    `json:"workers"`

	Commits       uint64            `json:"commits"`
	Aborts        uint64            `json:"aborts"`
	AbortRate     float64           `json:"abort_rate"`
	AbortsBy      map[string]uint64 `json:"aborts_by,omitempty"`
	ThroughputTPS float64           `json:"throughput_tps"`

	Latency   Latency   `json:"latency_ns"`
	Breakdown Breakdown `json:"breakdown_ns"`

	Wounds   uint64  `json:"wounds,omitempty"`
	Cascades uint64  `json:"cascades,omitempty"`
	AvgChain float64 `json:"avg_chain,omitempty"`
	MaxChain uint64  `json:"max_chain,omitempty"`

	// Lock-upgrade telemetry (additive + omitempty, absent in documents
	// predating the counters): successful SH→EX promotions and retires
	// (writes released early, Bamboo's core mechanism).
	Upgrades uint64 `json:"upgrades,omitempty"`
	Retires  uint64 `json:"retires,omitempty"`

	// LoadNS is the workload load wall time for the point's fresh DB —
	// the number the partition sweep's parallel-loader claim is gated on.
	// PartitionAccesses/Conflicts and PartitionSkew (hottest partition's
	// share relative to balanced, 1.0 = balanced) carry the per-partition
	// telemetry. All additive + omitempty: absent in pre-partitioning
	// schema-version-1 documents, which remain comparable.
	LoadNS             int64    `json:"load_ns,omitempty"`
	PartitionAccesses  []uint64 `json:"partition_accesses,omitempty"`
	PartitionConflicts []uint64 `json:"partition_conflicts,omitempty"`
	PartitionSkew      float64  `json:"partition_skew,omitempty"`

	// WAL durability telemetry for the point's DB (additive + omitempty,
	// absent in pre-durability documents): records appended, device write
	// operations (what group commit amortizes), payload bytes, and the
	// fsync count and total nanoseconds a real device charged. Fsyncs/
	// commit — the quantity the durability experiment sweeps — is
	// WALSyncs over Commits.
	WALAppends int64 `json:"wal_appends,omitempty"`
	WALBatches int64 `json:"wal_batches,omitempty"`
	WALBytes   int64 `json:"wal_bytes,omitempty"`
	WALSyncs   int64 `json:"wal_syncs,omitempty"`
	FsyncNS    int64 `json:"fsync_ns,omitempty"`

	// Storage-lifecycle telemetry (additive + omitempty, absent when
	// checkpoints are off): fuzzy snapshots written, their cumulative
	// capture+write nanoseconds, and the live WAL bytes left on disk at
	// the end of the run — what the truncation policy bounds.
	Checkpoints  int64 `json:"checkpoints,omitempty"`
	CheckpointNS int64 `json:"checkpoint_ns,omitempty"`
	LogBytesLive int64 `json:"log_bytes_live,omitempty"`

	// MVCC snapshot-read telemetry (additive + omitempty, absent on
	// non-MVCC runs): row reads served lock-free at a snapshot, version
	// nodes reclaimed (install-time reuse + background sweeps), and the
	// longest version chain the pruner observed.
	SnapshotReads   uint64 `json:"snapshot_reads,omitempty"`
	VersionsPruned  uint64 `json:"versions_pruned,omitempty"`
	VersionChainMax uint64 `json:"version_chain_max,omitempty"`

	// Row-image buffer telemetry (additive + omitempty, absent in
	// documents predating the shared-image protocol): fresh image
	// allocations on the write path, and write copies served from
	// recycled spare buffers instead.
	ImageCopies       uint64 `json:"image_copies,omitempty"`
	ImagePoolRecycled uint64 `json:"image_pool_recycled,omitempty"`

	// Adaptive contention-control telemetry (additive + omitempty, absent
	// on non-adaptive runs): entries classified hot at the end of the
	// run, per-entry policy changes the feedback engine made, and readers
	// granted by hot-entry batched grant passes.
	HotEntries    uint64 `json:"hot_entries,omitempty"`
	PolicyFlips   uint64 `json:"policy_flips,omitempty"`
	BatchedGrants uint64 `json:"batched_grants,omitempty"`

	ElapsedNS int64 `json:"elapsed_ns"`
}

// Latency is the commit-latency distribution in nanoseconds.
type Latency struct {
	Mean int64 `json:"mean"`
	P50  int64 `json:"p50"`
	P90  int64 `json:"p90"`
	P95  int64 `json:"p95"`
	P99  int64 `json:"p99"`
	P999 int64 `json:"p999"`
	Max  int64 `json:"max"`
}

// Breakdown is the amortized per-committed-transaction runtime split
// (the paper's stacked-bar figures), in nanoseconds.
type Breakdown struct {
	LockWait   int64 `json:"lock_wait"`
	Abort      int64 `json:"abort"`
	CommitWait int64 `json:"commit_wait"`
	Useful     int64 `json:"useful"`
}

// NewFile returns a File stamped with the current environment.
func NewFile(s Scale) *File {
	return &File{
		SchemaVersion: SchemaVersion,
		CreatedAt:     time.Now().UTC().Format(time.RFC3339),
		GitSHA:        gitSHA(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Scale:         s,
	}
}

// gitSHA resolves the commit the binary was built from: an explicit
// BAMBOO_GIT_SHA (set by CI) wins, then the VCS stamp Go embeds in
// binaries built inside a git checkout.
func gitSHA() string {
	if sha := os.Getenv("BAMBOO_GIT_SHA"); sha != "" {
		return sha
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return "unknown"
}

// PointFrom flattens a stats.Report into the schema.
func PointFrom(x string, r stats.Report) Point {
	return Point{
		X:             x,
		Protocol:      r.Protocol,
		Workers:       r.Workers,
		Commits:       r.Commits,
		Aborts:        r.Aborts,
		AbortRate:     r.AbortRate,
		AbortsBy:      r.AbortsBy,
		ThroughputTPS: r.ThroughputTPS,
		Latency: Latency{
			Mean: int64(r.LatencyMean),
			P50:  int64(r.LatencyP50),
			P90:  int64(r.LatencyP90),
			P95:  int64(r.LatencyP95),
			P99:  int64(r.LatencyP99),
			P999: int64(r.LatencyP999),
			Max:  int64(r.LatencyMax),
		},
		Breakdown: Breakdown{
			LockWait:   int64(r.PerTxnLockWait),
			Abort:      int64(r.PerTxnAbort),
			CommitWait: int64(r.PerTxnCommitWait),
			Useful:     int64(r.PerTxnUseful),
		},
		Wounds:             r.Wounds,
		Cascades:           r.Cascades,
		AvgChain:           r.AvgChain,
		MaxChain:           r.MaxChain,
		Upgrades:           r.Upgrades,
		Retires:            r.Retires,
		LoadNS:             int64(r.LoadTime),
		PartitionAccesses:  r.PartitionAccesses,
		PartitionConflicts: r.PartitionConflicts,
		PartitionSkew:      r.PartitionSkew,
		WALAppends:         int64(r.WALAppends),
		WALBatches:         int64(r.WALBatches),
		WALBytes:           int64(r.WALBytes),
		WALSyncs:           int64(r.WALSyncs),
		FsyncNS:            int64(r.WALSyncTime),
		Checkpoints:        int64(r.CheckpointCount),
		CheckpointNS:       int64(r.CheckpointTime),
		LogBytesLive:       r.LogBytesLive,
		SnapshotReads:      r.SnapshotReads,
		VersionsPruned:     r.VersionsPruned,
		VersionChainMax:    r.VersionChainMax,
		ImageCopies:        r.ImageCopies,
		ImagePoolRecycled:  r.ImagePoolRecycled,
		HotEntries:         r.HotEntries,
		PolicyFlips:        r.PolicyFlips,
		BatchedGrants:      r.BatchedGrants,
		ElapsedNS:          int64(r.Elapsed),
	}
}
