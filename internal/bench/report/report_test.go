package report

import (
	"bytes"
	"encoding/csv"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"bamboo/internal/stats"
	"bamboo/internal/txn"
)

// sample builds a two-experiment document with realistic values.
func sample() *File {
	f := NewFile(Scale{Threads: []int{4, 8}, TxnsPerWorker: 300, Rows: 20000, RTTNS: 20000})
	c := &stats.Collector{}
	for i := 0; i < 1000; i++ {
		c.RecordCommit(time.Duration(i)*time.Microsecond, time.Microsecond, 0)
	}
	c.RecordAbort(txn.CauseWound, time.Millisecond, 0, 0)
	rep := stats.Summarize("BAMBOO", time.Second, []*stats.Collector{c}, nil)
	f.Experiments = append(f.Experiments, Experiment{
		ID: "fig6", Title: "Fig 6: YCSB vs threads", ElapsedNS: int64(3 * time.Second),
		Points: []Point{
			PointFrom("threads=4", rep),
			{X: "threads=8", Protocol: "WOUND_WAIT", Workers: 8,
				Commits: 900, Aborts: 100, AbortRate: 0.1, ThroughputTPS: 900,
				Latency: Latency{Mean: 1000, P50: 800, P90: 1500, P95: 1800, P99: 2500, P999: 4000, Max: 9000}},
		},
	})
	f.Experiments = append(f.Experiments, Experiment{
		ID: "fig9", Title: "Fig 9: TPC-C vs threads",
		Points: []Point{
			{X: "threads=4", Protocol: "BAMBOO", Commits: 5000, ThroughputTPS: 5000,
				Latency: Latency{P50: 700, P99: 2000}},
		},
	})
	return f
}

func TestJSONRoundTrip(t *testing.T) {
	f := sample()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("round trip mismatch:\nwrote %+v\nread  %+v", f, got)
	}
	if got.SchemaVersion != SchemaVersion {
		t.Fatalf("schema version %d", got.SchemaVersion)
	}
	if got.GOMAXPROCS == 0 || got.GoVersion == "" || got.CreatedAt == "" || got.GitSHA == "" {
		t.Fatalf("environment fields missing: %+v", got)
	}
	p := got.Experiments[0].Points[0]
	for _, v := range []int64{p.Latency.P50, p.Latency.P90, p.Latency.P95, p.Latency.P99, p.Latency.P999} {
		if v <= 0 {
			t.Fatalf("missing percentile in %+v", p.Latency)
		}
	}
}

func TestReadJSONRejectsWrongSchema(t *testing.T) {
	in := strings.NewReader(`{"schema_version": 999, "experiments": []}`)
	if _, err := ReadJSON(in); err == nil {
		t.Fatal("wrong schema version accepted")
	}
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	f := sample()
	if err := Save(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatal("load mismatch")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 { // header + 3 points
		t.Fatalf("rows = %d, want 4", len(recs))
	}
	if recs[0][0] != "experiment" || len(recs[0]) != len(csvHeader) {
		t.Fatalf("header = %v", recs[0])
	}
	if recs[1][0] != "fig6" || recs[3][0] != "fig9" {
		t.Fatalf("experiment column wrong: %v / %v", recs[1][0], recs[3][0])
	}
}

func TestWriteTable(t *testing.T) {
	var buf bytes.Buffer
	WriteTables(&buf, sample())
	out := buf.String()
	for _, want := range []string{"== Fig 6", "-- threads=4", "-- threads=8", "BAMBOO", "WOUND_WAIT", "txn/s", "p50=", "p99="} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestCompareSelfIsClean(t *testing.T) {
	f := sample()
	d := Compare(f, f, DefaultThresholds())
	if !d.OK() {
		t.Fatalf("self-diff found regressions: %+v", d.Regressions)
	}
	if d.Compared == 0 || len(d.MissingInNew) != 0 {
		t.Fatalf("compared=%d missing=%v", d.Compared, d.MissingInNew)
	}
}

func TestCompareFindsThroughputRegression(t *testing.T) {
	old := sample()
	cur := sample()
	// Inject a 15% throughput drop on one point (> the 10% threshold).
	cur.Experiments[0].Points[1].ThroughputTPS *= 0.85
	d := Compare(old, cur, DefaultThresholds())
	if d.OK() || len(d.Regressions) != 1 {
		t.Fatalf("regressions = %+v", d.Regressions)
	}
	r := d.Regressions[0]
	if r.Metric != "throughput" || r.Protocol != "WOUND_WAIT" || r.Experiment != "fig6" {
		t.Fatalf("wrong regression: %+v", r)
	}
	if r.Change > -0.14 || r.Change < -0.16 {
		t.Fatalf("change = %f, want ~-0.15", r.Change)
	}
	if !strings.Contains(r.String(), "throughput") {
		t.Fatalf("String() = %q", r.String())
	}
	// A 9% drop stays under the default threshold.
	cur2 := sample()
	cur2.Experiments[0].Points[1].ThroughputTPS *= 0.91
	if d := Compare(old, cur2, DefaultThresholds()); !d.OK() {
		t.Fatalf("9%% drop flagged: %+v", d.Regressions)
	}
}

func TestCompareFindsP99Regression(t *testing.T) {
	old := sample()
	cur := sample()
	cur.Experiments[1].Points[0].Latency.P99 *= 2 // +100% > 25% threshold
	d := Compare(old, cur, DefaultThresholds())
	if len(d.Regressions) != 1 || d.Regressions[0].Metric != "p99" {
		t.Fatalf("regressions = %+v", d.Regressions)
	}
	if !strings.Contains(d.Regressions[0].String(), "p99") {
		t.Fatalf("String() = %q", d.Regressions[0].String())
	}
}

func TestCompareSkipsAndMissing(t *testing.T) {
	old := sample()
	// Tiny baseline sample: below the commit floor, regressions ignored.
	old.Experiments[1].Points[0].Commits = 3
	cur := sample()
	cur.Experiments[1].Points[0].Commits = 3
	cur.Experiments[1].Points[0].ThroughputTPS = 1 // huge drop, but noise
	// Drop a point from the new run entirely.
	cur.Experiments[0].Points = cur.Experiments[0].Points[:1]
	d := Compare(old, cur, DefaultThresholds())
	if !d.OK() {
		t.Fatalf("noise point flagged: %+v", d.Regressions)
	}
	if d.Skipped != 1 || len(d.MissingInNew) != 1 {
		t.Fatalf("skipped=%d missing=%v", d.Skipped, d.MissingInNew)
	}
	var buf bytes.Buffer
	d.Print(&buf)
	if !strings.Contains(buf.String(), "missing:") {
		t.Fatalf("Print missing coverage note:\n%s", buf.String())
	}
	// Regressions also render through Print.
	bad := Compare(old, func() *File {
		f := sample()
		f.Experiments[0].Points[1].ThroughputTPS = 1
		return f
	}(), DefaultThresholds())
	buf.Reset()
	bad.Print(&buf)
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("Print missing regression line:\n%s", buf.String())
	}
}
