package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"
)

// WriteJSON emits the document as indented JSON (the BENCH_*.json
// trajectory artifact format).
func WriteJSON(w io.Writer, f *File) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadJSON parses a document and rejects unknown schema versions.
func ReadJSON(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("report: parse: %w", err)
	}
	if f.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("report: schema version %d, this build reads %d",
			f.SchemaVersion, SchemaVersion)
	}
	return &f, nil
}

// Load reads a document from a file path.
func Load(path string) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	f, err := ReadJSON(fh)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// Save writes the document to path atomically enough for CI use.
func Save(path string, f *File) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSON(fh, f); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}

// csvHeader is the flat column set, one row per point.
var csvHeader = []string{
	"experiment", "x", "protocol", "workers",
	"throughput_tps", "commits", "aborts", "abort_rate",
	"lat_mean_ns", "lat_p50_ns", "lat_p90_ns", "lat_p95_ns", "lat_p99_ns", "lat_p999_ns", "lat_max_ns",
	"lock_wait_ns", "abort_ns", "commit_wait_ns", "useful_ns",
	"wounds", "cascades", "avg_chain", "max_chain",
	"load_ns", "partition_skew",
}

// WriteCSV emits every point of every experiment as one flat table.
func WriteCSV(w io.Writer, f *File) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, e := range f.Experiments {
		for _, p := range e.Points {
			rec := []string{
				e.ID, p.X, p.Protocol, strconv.Itoa(p.Workers),
				strconv.FormatFloat(p.ThroughputTPS, 'f', 1, 64),
				strconv.FormatUint(p.Commits, 10),
				strconv.FormatUint(p.Aborts, 10),
				strconv.FormatFloat(p.AbortRate, 'f', 4, 64),
				strconv.FormatInt(p.Latency.Mean, 10),
				strconv.FormatInt(p.Latency.P50, 10),
				strconv.FormatInt(p.Latency.P90, 10),
				strconv.FormatInt(p.Latency.P95, 10),
				strconv.FormatInt(p.Latency.P99, 10),
				strconv.FormatInt(p.Latency.P999, 10),
				strconv.FormatInt(p.Latency.Max, 10),
				strconv.FormatInt(p.Breakdown.LockWait, 10),
				strconv.FormatInt(p.Breakdown.Abort, 10),
				strconv.FormatInt(p.Breakdown.CommitWait, 10),
				strconv.FormatInt(p.Breakdown.Useful, 10),
				strconv.FormatUint(p.Wounds, 10),
				strconv.FormatUint(p.Cascades, 10),
				strconv.FormatFloat(p.AvgChain, 'f', 2, 64),
				strconv.FormatUint(p.MaxChain, 10),
				strconv.FormatInt(p.LoadNS, 10),
				strconv.FormatFloat(p.PartitionSkew, 'f', 3, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders a point in the classic one-line table format.
func (p Point) String() string {
	line := fmt.Sprintf("%-12s %8.0f txn/s  aborts=%5.1f%%  wait=%s commitWait=%s abortTime=%s useful=%s",
		p.Protocol, p.ThroughputTPS, p.AbortRate*100,
		time.Duration(p.Breakdown.LockWait).Round(time.Microsecond),
		time.Duration(p.Breakdown.CommitWait).Round(time.Microsecond),
		time.Duration(p.Breakdown.Abort).Round(time.Microsecond),
		time.Duration(p.Breakdown.Useful).Round(time.Microsecond))
	if p.Latency.P50 > 0 {
		line += fmt.Sprintf("  p50=%s p99=%s",
			time.Duration(p.Latency.P50).Round(time.Microsecond),
			time.Duration(p.Latency.P99).Round(time.Microsecond))
	}
	if p.Cascades > 0 {
		line += fmt.Sprintf("  chains(avg=%.1f max=%d)", p.AvgChain, p.MaxChain)
	}
	return line
}

// WriteTable renders one experiment in the human-readable block format
// (the output bamboo-bench has always printed): a title header, then one
// group per x-axis value with one line per protocol.
func WriteTable(w io.Writer, e Experiment) {
	fmt.Fprintf(w, "== %s ==\n", e.Title)
	lastX := ""
	for _, p := range e.Points {
		if p.X != lastX {
			fmt.Fprintf(w, "-- %s\n", p.X)
			lastX = p.X
		}
		fmt.Fprintf(w, "   %s\n", p)
	}
}

// WriteTables renders every experiment in the document.
func WriteTables(w io.Writer, f *File) {
	for i, e := range f.Experiments {
		if i > 0 {
			fmt.Fprintln(w)
		}
		WriteTable(w, e)
	}
}
