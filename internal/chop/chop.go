// Package chop implements IC3 (Wang et al., "Scaling Multicore Databases
// via Constrained Parallel Execution", SIGMOD 2016), the transaction
// chopping baseline of the paper's §5.6.
//
// Transactions are registered as templates chopped into pieces, each
// declaring the tables and *columns* it reads or writes. A static analysis
// pass (Analyze) builds column-level C-edges between piece templates and
// merges pieces whose C-edges would cross — the chopping constraint that
// avoids deadlock (§2.2). At runtime, pieces pipeline: a piece may execute
// as soon as the conflicting pieces of earlier transactions have finished
// (not committed), its writes become visible when the piece completes, and
// commit order follows the accumulated dependencies. Aborts cascade to
// dependent transactions, as with any scheme exposing uncommitted writes.
//
// Deviation from the original: IC3's optional optimistic piece execution
// (validate instead of wait) is not implemented; pieces always wait for
// conflicting predecessors to finish. The column-level analysis — the
// mechanism responsible for Figure 11's shape — is implemented in full.
//
// Extension beyond the original: access modes are optional. A piece
// whose declarations carry no Write flag is analyzed conservatively
// (every declared access a potential write) and discovers its modes at
// runtime — an Update after a Read of the same row promotes the access
// SH→EX in place, the same upgrade semantics the lock engines expose —
// so a workload's un-annotated read-then-update bodies run under IC3
// without per-piece write-set declarations.
package chop

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"bamboo/internal/core"
	"bamboo/internal/lock"
	"bamboo/internal/stats"
	"bamboo/internal/storage"
	"bamboo/internal/txn"
	"bamboo/internal/wal"
)

// AccessDecl declares one table/column-set access of a piece.
type AccessDecl struct {
	Table string
	// Cols are the column indexes touched (≤64 columns per table).
	Cols []int
	// Write marks the access as an update. The mode is optional: a piece
	// none of whose accesses declares Write is un-annotated — the
	// analysis treats every one of its accesses as a potential write
	// (conservative C-edges), and the actual mode is discovered at
	// runtime, where an Update after a Read of the same row promotes the
	// access SH→EX in place (see Tx.promote). Declaring modes buys the
	// precise column-level analysis; omitting them buys not having to
	// know the write set per piece.
	Write bool
}

func (d AccessDecl) mask() uint64 {
	var m uint64
	for _, c := range d.Cols {
		if c < 0 || c >= 64 {
			panic(fmt.Sprintf("chop: column index %d out of range", c))
		}
		m |= 1 << uint(c)
	}
	return m
}

// Piece is one piece template: its declared accesses and its body.
type Piece struct {
	Accesses []AccessDecl
	// Body executes the piece. Returning core.ErrUserAbort aborts the
	// whole transaction finally; other errors abort and retry.
	Body func(pt *PieceTx) error

	masks map[string]uint64 // table → column mask, from Analyze
	// lastConflict[t] is the highest piece index of template t that
	// conflicts with this piece (-1 if none), from Analyze. Used to
	// inherit dependency order across pieces: a transaction must not
	// execute this piece until every transaction it depends on has
	// finished its conflicting pieces, which keeps the commit-dependency
	// graph acyclic (IC3's piece-ordering enforcement).
	lastConflict map[*Template]int
}

// annotated reports whether the piece declares any access mode. An
// un-annotated piece's accesses must be analyzed as potential writes:
// the runtime may promote any of them to a write in place.
func (p *Piece) annotated() bool {
	for _, a := range p.Accesses {
		if a.Write {
			return true
		}
	}
	return false
}

// conflictsWith reports whether two piece templates have a column-level
// conflict: same table, overlapping columns, at least one side writing —
// where an access of an un-annotated piece counts as writing, since
// nothing rules the write out statically.
func (p *Piece) conflictsWith(q *Piece) bool {
	pAnn, qAnn := p.annotated(), q.annotated()
	for _, a := range p.Accesses {
		for _, b := range q.Accesses {
			if a.Table != b.Table || !(a.Write || !pAnn || b.Write || !qAnn) {
				continue
			}
			if a.mask()&b.mask() != 0 {
				return true
			}
		}
	}
	return false
}

// Template is a chopped transaction type.
type Template struct {
	Name   string
	Pieces []*Piece
}

// Registry holds the workload's templates; IC3 requires the full workload
// to be known before execution (the paper's §2.2 critique).
type Registry struct {
	templates []*Template
	analyzed  bool
	merges    int
}

// Register adds a template. Must precede Analyze.
func (r *Registry) Register(t *Template) {
	if r.analyzed {
		panic("chop: Register after Analyze")
	}
	r.templates = append(r.templates, t)
}

// Merges reports how many piece merges Analyze performed (0 for TPC-C's
// NewOrder+Payment mix, whose table orders agree).
func (r *Registry) Merges() int { return r.merges }

// Analyze performs the static chopping analysis: pieces of different
// templates whose C-edges cross (template A touches conflicting tables in
// one order, template B in the other) are merged until no crossing
// remains, exactly as transaction chopping requires to stay
// deadlock-free.
func (r *Registry) Analyze() {
	for {
		if !r.mergeOneCrossing() {
			break
		}
		r.merges++
	}
	for _, t := range r.templates {
		for _, p := range t.Pieces {
			p.masks = make(map[string]uint64, len(p.Accesses))
			for _, a := range p.Accesses {
				p.masks[a.Table] |= a.mask()
			}
		}
	}
	for _, t := range r.templates {
		for _, p := range t.Pieces {
			p.lastConflict = make(map[*Template]int, len(r.templates))
			for _, u := range r.templates {
				last := -1
				for j, q := range u.Pieces {
					if p.conflictsWith(q) {
						last = j
					}
				}
				p.lastConflict[u] = last
			}
		}
	}
	r.analyzed = true
}

func (r *Registry) mergeOneCrossing() bool {
	for _, ta := range r.templates {
		for _, tb := range r.templates {
			if ta == tb {
				continue
			}
			// C-edges (a_i, b_k) and (a_j, b_l) cross when i<j but k>l.
			for i := 0; i < len(ta.Pieces); i++ {
				for j := i + 1; j < len(ta.Pieces); j++ {
					for k := 0; k < len(tb.Pieces); k++ {
						for l := 0; l < k; l++ {
							if ta.Pieces[i].conflictsWith(tb.Pieces[k]) &&
								ta.Pieces[j].conflictsWith(tb.Pieces[l]) {
								mergeRange(ta, i, j)
								mergeRange(tb, l, k)
								return true
							}
						}
					}
				}
			}
		}
	}
	return false
}

// mergeRange fuses pieces [i..j] of t into one piece executing their
// bodies in order with the union of their access declarations.
func mergeRange(t *Template, i, j int) {
	if i == j {
		return
	}
	parts := append([]*Piece(nil), t.Pieces[i:j+1]...)
	merged := &Piece{
		Body: func(pt *PieceTx) error {
			for _, p := range parts {
				if err := p.Body(pt); err != nil {
					return err
				}
			}
			return nil
		},
	}
	for _, p := range parts {
		merged.Accesses = append(merged.Accesses, p.Accesses...)
	}
	t.Pieces = append(t.Pieces[:i], append([]*Piece{merged}, t.Pieces[j+1:]...)...)
}

// rowState is the per-row accessor list hung on Row.Aux.
type rowState struct {
	mu   chan struct{} // 1-buffered channel used as a latch
	accs []*access
	seq  uint64 // never-reused install counter (see internal/lock)
}

func newRowState() *rowState {
	rs := &rowState{mu: make(chan struct{}, 1)}
	return rs
}

func (rs *rowState) lock()   { rs.mu <- struct{}{} }
func (rs *rowState) unlock() { <-rs.mu }

// access is one transaction-piece's access to one row.
type access struct {
	t     *txn.Txn
	owner *Tx
	mask  uint64
	write bool
	done  bool // the owning piece finished

	// write bookkeeping
	local      []byte
	installed  bool
	installSeq uint64
	unwound    bool
	prev       *[]byte
	row        *storage.Row
	rs         *rowState
}

func conflict(a, b *access) bool {
	return a.mask&b.mask != 0 && (a.write || b.write)
}

// errTimeout triggers a defensive retry when a piece waits implausibly
// long (a liveness valve; chopping guarantees should prevent it).
var errTimeout = errors.New("chop: piece wait timeout")

// Engine executes chopped transactions. It is created over a core.DB for
// the catalog, WAL and commit hooks.
type Engine struct {
	db  *core.DB
	reg *Registry
	// WaitTimeout aborts a piece stuck waiting (defensive, default 50ms).
	WaitTimeout time.Duration
}

// New creates an IC3 engine; reg must already be Analyzed. Prepare row
// state for all existing tables before running.
func New(db *core.DB, reg *Registry) *Engine {
	if !reg.analyzed {
		reg.Analyze()
	}
	e := &Engine{db: db, reg: reg, WaitTimeout: 50 * time.Millisecond}
	for _, name := range db.Catalog.Tables() {
		tbl := db.Catalog.Table(name)
		tbl.Range(func(_ uint64, r *storage.Row) bool {
			prepareRow(r)
			return true
		})
	}
	return e
}

// Name returns the protocol display name.
func (e *Engine) Name() string { return "IC3" }

// Database returns the underlying DB.
func (e *Engine) Database() *core.DB { return e.db }

func prepareRow(r *storage.Row) {
	if r.Aux == nil {
		r.Aux = newRowState()
	}
	if r.OCCImage.Load() == nil {
		d := r.Entry.CurrentData()
		r.OCCImage.Store(&d)
	}
}

// Session executes chopped transactions for one worker.
type Session struct {
	e      *Engine
	worker int
	col    *stats.Collector
	rng    *rand.Rand
}

// NewSession creates a session.
func (e *Engine) NewSession(worker int, col *stats.Collector) *Session {
	col.AttachLive(e.db.LiveStats())
	return &Session{e: e, worker: worker, col: col,
		rng: rand.New(rand.NewSource(int64(worker)*6553 + 17))}
}

// retryBackoff sleeps a jittered, attempt-scaled amount before retrying
// an aborted transaction. Retrying immediately can livelock on few-core
// hosts: two transactions that cascade-abort (or timeout) each other
// restart in lockstep and re-create the same conflict forever — the
// jitter breaks the symmetry, and the escalation yields the CPU to
// whichever transaction can actually finish. The cap is the same knob
// the lock engine's retry path uses (core.Config.AbortBackoffMax,
// DBx1000's ABORT_PENALTY); unlike there, an unset knob falls back to a
// small default rather than no backoff, because for IC3 the jitter is a
// liveness requirement, not a tuning option.
func (s *Session) retryBackoff(attempt int) {
	runtime.Gosched()
	max := s.e.db.Config().AbortBackoffMax
	if max <= 0 {
		max = 200 * time.Microsecond
	}
	scale := attempt
	if scale > 8 {
		scale = 8
	}
	if d := max / 8 * time.Duration(scale); d > 0 {
		time.Sleep(time.Duration(s.rng.Int63n(int64(d))))
	}
}

// Tx is the running transaction state shared by its pieces.
type Tx struct {
	e        *Engine
	t        *txn.Txn
	tmpl     *Template
	env      any
	col      *stats.Collector
	workerID int
	deps     map[*Tx]struct{}
	accs     []*access
	inserts  []insertOp
	// progress is the number of pieces completed, read by dependents
	// enforcing piece order.
	progress atomic.Int32
	// timing
	waited time.Duration
}

type insertOp struct {
	tbl *storage.Table
	key uint64
	img []byte
}

// PieceTx is the access interface a piece body sees.
type PieceTx struct {
	tx    *Tx
	piece *Piece
}

// Env returns the per-transaction environment value supplied to Run.
func (pt *PieceTx) Env() any { return pt.tx.env }

// Worker returns the session's worker index.
func (pt *PieceTx) Worker() int { return pt.tx.workerID }

// ID returns the logical transaction id.
func (pt *PieceTx) ID() uint64 { return pt.tx.t.ID }

// DeclareOps is a no-op: IC3's scheduling derives from the registered
// templates, not per-transaction declarations. Present so PieceTx
// satisfies core.Tx and piece bodies can share code with the row engines.
func (pt *PieceTx) DeclareOps(int) {}

// Read returns the row image visible to this piece, waiting for
// conflicting pieces of earlier transactions to finish.
func (pt *PieceTx) Read(row *storage.Row) ([]byte, error) {
	a, err := pt.tx.attach(row, pt.piece, false)
	if err != nil {
		return nil, err
	}
	return a.local, nil
}

// Update applies mutate to the transaction's private copy; the result
// becomes visible when the piece completes.
func (pt *PieceTx) Update(row *storage.Row, mutate func(img []byte)) error {
	a, err := pt.tx.attach(row, pt.piece, true)
	if err != nil {
		return err
	}
	mutate(a.local)
	return nil
}

// Insert buffers an insert applied at commit.
func (pt *PieceTx) Insert(tbl *storage.Table, key uint64, img []byte) error {
	pt.tx.inserts = append(pt.tx.inserts, insertOp{tbl, key, img})
	return nil
}

// attach waits for conflicting unfinished accesses, records dependencies,
// and registers this transaction's access.
func (tx *Tx) attach(row *storage.Row, piece *Piece, write bool) (*access, error) {
	rs, _ := row.Aux.(*rowState)
	if rs == nil {
		return nil, fmt.Errorf("chop: row of table %s not prepared", row.Table.Schema.Name)
	}
	mask := piece.masks[row.Table.Schema.Name]
	if mask == 0 {
		return nil, fmt.Errorf("chop: piece accesses undeclared table %s", row.Table.Schema.Name)
	}
	// Re-access within the running piece: reuse the existing access so
	// earlier mutations are not lost. A write after a read of the same
	// row promotes the read access in place rather than stacking a
	// second access next to it — the chop-side analogue of the lock
	// manager's SH→EX upgrade, and what lets un-annotated piece bodies
	// run read-then-update without pre-declaring their write set.
	for i := len(tx.accs) - 1; i >= 0; i-- {
		if a := tx.accs[i]; a.row == row && !a.done {
			if !write || a.write {
				return a, nil
			}
			return tx.promote(a)
		}
	}
	mine := &access{t: tx.t, owner: tx, mask: mask, write: write, row: row, rs: rs}

	deadline := time.Now().Add(tx.e.WaitTimeout)
	// One escalating backoff counter for the whole attach: resetting it
	// per blocker keeps the loop in the busy-yield phase forever when
	// blockers keep trading places, which on a 1-CPU host (worse under
	// -race, which serializes goroutines further) can starve the very
	// goroutine that would resolve the conflict. Carrying the counter
	// across blockers escalates to real sleeps and lets it run.
	spin := 0
	rs.lock()
	for {
		if tx.t.Aborting() {
			rs.unlock()
			return nil, lock.ErrAborting
		}
		var blocker *access
		for _, a := range rs.accs {
			if a.t == tx.t || a.done || a.unwound {
				continue
			}
			if conflict(a, mine) {
				blocker = a
				break
			}
		}
		if blocker == nil {
			break
		}
		rs.unlock()
		waitStart := time.Now()
		for ; ; spin++ {
			if tx.t.Aborting() {
				tx.waited += time.Since(waitStart)
				return nil, lock.ErrAborting
			}
			if blockerResolved(rs, blocker) {
				break
			}
			if time.Now().After(deadline) {
				tx.waited += time.Since(waitStart)
				return nil, errTimeout
			}
			lock.Backoff(spin)
		}
		tx.waited += time.Since(waitStart)
		rs.lock()
	}
	// Record commit-order dependencies on every conflicting accessor
	// still present (their pieces finished; they have not committed).
	for _, a := range rs.accs {
		if a.t != tx.t && !a.unwound && conflict(a, mine) {
			if tx.deps == nil {
				tx.deps = make(map[*Tx]struct{}, 8)
			}
			tx.deps[a.owner] = struct{}{}
		}
	}
	cur := *row.OCCImage.Load()
	if write {
		mine.local = bytes.Clone(cur)
	} else {
		mine.local = cur
	}
	rs.accs = append(rs.accs, mine)
	tx.accs = append(tx.accs, mine)
	rs.unlock()
	return mine, nil
}

// promote upgrades a same-piece read access to a write in place,
// mirroring the lock manager's SH→EX upgrade semantics: the read hold is
// never given up, so an upgraded read-modify-write cannot lose an
// update. Becoming a writer creates conflicts with the plain readers the
// access previously commuted with, so promote first waits for every
// unfinished overlapping access of other transactions to finish its
// piece, then records commit dependencies on all overlapping accessors
// and re-clones the row image — the read path aliases the published
// image, which a writer must never mutate in place. Two running pieces
// promoting against each other on the same row are a symmetric upgrade
// deadlock; the attach deadline converts it into an abort-and-retry, the
// same resolution the lock engine reaches by wounding.
func (tx *Tx) promote(a *access) (*access, error) {
	rs := a.rs
	deadline := time.Now().Add(tx.e.WaitTimeout)
	spin := 0
	rs.lock()
	for {
		if tx.t.Aborting() {
			rs.unlock()
			return nil, lock.ErrAborting
		}
		var blocker *access
		for _, b := range rs.accs {
			if b.t == tx.t || b.done || b.unwound {
				continue
			}
			if b.mask&a.mask != 0 {
				blocker = b
				break
			}
		}
		if blocker == nil {
			break
		}
		rs.unlock()
		waitStart := time.Now()
		for ; ; spin++ {
			if tx.t.Aborting() {
				tx.waited += time.Since(waitStart)
				return nil, lock.ErrAborting
			}
			if blockerResolved(rs, blocker) {
				break
			}
			if time.Now().After(deadline) {
				tx.waited += time.Since(waitStart)
				return nil, errTimeout
			}
			lock.Backoff(spin)
		}
		tx.waited += time.Since(waitStart)
		rs.lock()
	}
	for _, b := range rs.accs {
		if b.t != tx.t && !b.unwound && b.mask&a.mask != 0 {
			if tx.deps == nil {
				tx.deps = make(map[*Tx]struct{}, 8)
			}
			tx.deps[b.owner] = struct{}{}
		}
	}
	a.write = true
	a.local = bytes.Clone(*a.row.OCCImage.Load())
	rs.unlock()
	if tx.col != nil {
		tx.col.RecordUpgrade()
	}
	return a, nil
}

// blockerResolved reports whether the blocking access finished or left.
func blockerResolved(rs *rowState, b *access) bool {
	rs.lock()
	defer rs.unlock()
	if b.done || b.unwound {
		return true
	}
	for _, a := range rs.accs {
		if a == b {
			return false
		}
	}
	return true // removed (its transaction terminated)
}

// finishPiece publishes the piece's writes and marks its accesses done.
// Installs are column-granular: only the piece's declared columns are
// merged into the row image, so writers of disjoint columns — which IC3's
// analysis deliberately does not order — commute instead of clobbering
// each other.
func (tx *Tx) finishPiece(from int) {
	for _, a := range tx.accs[from:] {
		a.rs.lock()
		if a.write && !a.unwound {
			a.rs.seq++
			a.installSeq = a.rs.seq
			cur := a.row.OCCImage.Load()
			a.prev = cur
			merged := bytes.Clone(*cur)
			a.row.Table.Schema.CopyCols(merged, a.local, a.mask)
			a.row.OCCImage.Store(&merged)
			a.installed = true
		}
		a.done = true
		a.rs.unlock()
	}
}

// rollback restores installed writes, cascades aborts to conflicting
// successors, and removes the transaction's accesses.
func (tx *Tx) rollback() {
	for i := len(tx.accs) - 1; i >= 0; i-- {
		a := tx.accs[i]
		rs := a.rs
		rs.lock()
		pos := -1
		for j, x := range rs.accs {
			if x == a {
				pos = j
				break
			}
		}
		if a.write && pos >= 0 {
			// Cascade: conflicting accessors after this write observed it.
			for _, x := range rs.accs[pos+1:] {
				if x.t != tx.t && conflict(a, x) {
					x.t.SetAbort(txn.CauseCascade)
				}
			}
		}
		if a.installed && !a.unwound {
			// Column-granular restore: copy this access's columns' pre-
			// values back, leaving concurrent disjoint-column installs
			// intact. Later *conflicting* installs are marked unwound so
			// an out-of-order cascade never resurrects a dirty column
			// (they form a suffix of the same-column chain).
			cur := a.row.OCCImage.Load()
			merged := bytes.Clone(*cur)
			a.row.Table.Schema.CopyCols(merged, *a.prev, a.mask)
			a.row.OCCImage.Store(&merged)
			for _, x := range rs.accs {
				if x != a && x.installed && x.installSeq > a.installSeq &&
					x.mask&a.mask != 0 && x.write {
					x.unwound = true
				}
			}
		}
		if pos >= 0 {
			rs.accs = append(rs.accs[:pos], rs.accs[pos+1:]...)
		}
		rs.unlock()
	}
	tx.accs = nil
	tx.t.FinishAbort()
}

// detach removes a committed transaction's accesses.
func (tx *Tx) detach() {
	for _, a := range tx.accs {
		a.rs.lock()
		for j, x := range a.rs.accs {
			if x == a {
				a.rs.accs = append(a.rs.accs[:j], a.rs.accs[j+1:]...)
				break
			}
		}
		a.rs.unlock()
	}
}

// Run executes one logical chopped transaction, retrying protocol aborts
// with a jittered backoff between attempts.
func (s *Session) Run(t *Template, env any) error {
	id := s.e.db.NextTxnID()
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			s.retryBackoff(attempt)
		}
		tt := txn.New(id)
		tx := &Tx{e: s.e, t: tt, tmpl: t, env: env, col: s.col, workerID: s.worker}
		start := time.Now()
		err := s.execute(tx, t)
		exec := time.Since(start) - tx.waited

		switch {
		case err == nil && !tt.Aborting():
			commitWait, ok := s.commitWait(tx)
			if ok && tt.BeginCommit() {
				if rec := tx.commitRecord(id); rec != nil {
					if _, err := s.e.db.Log.Commit(rec); err != nil {
						return fmt.Errorf("chop: wal: %w", err)
					}
				}
				for _, ins := range tx.inserts {
					row, err := ins.tbl.InsertRow(ins.key, ins.img)
					if err != nil {
						return fmt.Errorf("chop: insert: %w", err)
					}
					img := ins.img
					prepareRow(row)
					row.OCCImage.Store(&img)
				}
				if h := s.e.db.OnCommit(); h != nil {
					h(s.worker, id, 0, tx.accessInfo(), len(tx.inserts))
				}
				tx.detach()
				tt.FinishCommit()
				s.col.RecordCommit(exec, tx.waited, commitWait)
				return nil
			}
			tx.rollback()
			s.col.RecordAbort(tt.Cause(), exec, tx.waited, commitWait)
		case errors.Is(err, core.ErrUserAbort):
			tt.SetCause(txn.CauseUser)
			tx.rollback()
			s.col.RecordAbort(txn.CauseUser, exec, tx.waited, 0)
			return nil
		case err == nil || errors.Is(err, lock.ErrAborting) || errors.Is(err, errTimeout):
			cause := tt.Cause()
			if cause == txn.CauseNone {
				cause = txn.CauseValidation
			}
			tx.rollback()
			s.col.RecordAbort(cause, exec, tx.waited, 0)
		default:
			tx.rollback()
			return err
		}
	}
}

func (s *Session) execute(tx *Tx, t *Template) error {
	for _, p := range t.Pieces {
		// IC3's piece-order enforcement: inherit the dependency order
		// established by earlier conflicts. Every transaction we depend
		// on must have finished its pieces that conflict with p before p
		// executes; this keeps the commit-dependency graph acyclic.
		if err := tx.enforcePieceOrder(p); err != nil {
			return err
		}
		from := len(tx.accs)
		pt := &PieceTx{tx: tx, piece: p}
		if err := p.Body(pt); err != nil {
			return err
		}
		tx.finishPiece(from)
		tx.progress.Add(1)
		if tx.t.Aborting() {
			return lock.ErrAborting
		}
	}
	return nil
}

func (tx *Tx) enforcePieceOrder(p *Piece) error {
	if len(tx.deps) == 0 {
		return nil
	}
	deadline := time.Now().Add(tx.e.WaitTimeout)
	// As in attach: one escalating counter across all dependencies, so a
	// transaction polling several slow dependencies reaches the sleeping
	// phase instead of busy-yielding against them round-robin.
	spin := 0
	for d := range tx.deps {
		need, ok := p.lastConflict[d.tmpl]
		if !ok || need < 0 {
			continue
		}
		start := time.Now()
		for ; int(d.progress.Load()) <= need; spin++ {
			if s := d.t.State(); s == txn.StateCommitted || s == txn.StateAborted {
				break
			}
			if tx.t.Aborting() {
				tx.waited += time.Since(start)
				return lock.ErrAborting
			}
			if time.Now().After(deadline) {
				tx.waited += time.Since(start)
				return errTimeout
			}
			lock.Backoff(spin)
		}
		tx.waited += time.Since(start)
	}
	return nil
}

// commitWait blocks until every dependency reached a terminal state,
// failing if any aborted (or this transaction was cascade-aborted). A
// defensive timeout converts any residual ordering anomaly into an abort
// and retry rather than a hang.
func (s *Session) commitWait(tx *Tx) (time.Duration, bool) {
	if len(tx.deps) == 0 {
		return 0, !tx.t.Aborting()
	}
	start := time.Now()
	deadline := start.Add(10 * tx.e.WaitTimeout)
	for dep := range tx.deps {
		for i := 0; ; i++ {
			if tx.t.Aborting() {
				return time.Since(start), false
			}
			switch dep.t.State() {
			case txn.StateCommitted:
			case txn.StateAborted:
				tx.t.SetAbort(txn.CauseCascade)
				return time.Since(start), false
			default:
				if time.Now().After(deadline) {
					tx.t.SetAbort(txn.CauseValidation)
					return time.Since(start), false
				}
				lock.Backoff(i)
				continue
			}
			break
		}
	}
	return time.Since(start), !tx.t.Aborting()
}

func (tx *Tx) commitRecord(id uint64) *wal.Record {
	var writes []wal.Write
	for _, a := range tx.accs {
		if a.write {
			writes = append(writes, wal.Write{
				Table: a.row.Table.Schema.Name, Key: a.row.Key, Image: a.local,
			})
		}
	}
	for _, ins := range tx.inserts {
		writes = append(writes, wal.Write{Table: ins.tbl.Schema.Name, Key: ins.key, Image: ins.img})
	}
	if len(writes) == 0 {
		return nil
	}
	return &wal.Record{TxnID: id, Writes: writes}
}

func (tx *Tx) accessInfo() []core.AccessInfo {
	out := make([]core.AccessInfo, 0, len(tx.accs))
	for _, a := range tx.accs {
		info := core.AccessInfo{
			Table: a.row.Table.Schema.Name, Key: a.row.Key,
		}
		if a.write {
			info.Mode = lock.EX
			info.Wrote = a.local
		} else {
			info.Mode = lock.SH
			info.Read = a.local
		}
		out = append(out, info)
	}
	return out
}
