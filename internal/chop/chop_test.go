package chop_test

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"bamboo/internal/chop"
	"bamboo/internal/core"
	"bamboo/internal/lock"
	"bamboo/internal/stats"
	"bamboo/internal/storage"
	"bamboo/internal/verify"
)

func kvSchema() *storage.Schema {
	return storage.NewSchema("kv",
		storage.Column{Name: "stamp", Type: storage.ColInt64},
		storage.Column{Name: "val", Type: storage.ColInt64},
		storage.Column{Name: "other", Type: storage.ColInt64},
	)
}

func buildKV(db *core.DB, rows int) *storage.Table {
	tbl := db.Catalog.MustCreateTable(kvSchema(), rows)
	for k := 0; k < rows; k++ {
		tbl.MustInsertRow(uint64(k), nil)
	}
	return tbl
}

func TestAnalyzeMergesCrossingEdges(t *testing.T) {
	// Template A: writes table X then table Y; template B: Y then X.
	// The C-edges cross, so both templates must collapse to one piece.
	mk := func(tables ...string) *chop.Template {
		tt := &chop.Template{Name: tables[0] + "-first"}
		for _, tb := range tables {
			tt.Pieces = append(tt.Pieces, &chop.Piece{
				Accesses: []chop.AccessDecl{{Table: tb, Cols: []int{0}, Write: true}},
				Body:     func(*chop.PieceTx) error { return nil },
			})
		}
		return tt
	}
	a := mk("X", "Y")
	b := mk("Y", "X")
	var reg chop.Registry
	reg.Register(a)
	reg.Register(b)
	reg.Analyze()
	if reg.Merges() == 0 {
		t.Fatal("crossing C-edges not merged")
	}
	if len(a.Pieces) != 1 || len(b.Pieces) != 1 {
		t.Fatalf("pieces after merge: %d and %d, want 1 and 1", len(a.Pieces), len(b.Pieces))
	}
}

func TestAnalyzeKeepsDisjointColumns(t *testing.T) {
	// Conflicts on disjoint columns of the same table are not C-edges —
	// the IC3 advantage of Figure 11a.
	a := &chop.Template{Name: "a", Pieces: []*chop.Piece{{
		Accesses: []chop.AccessDecl{{Table: "T", Cols: []int{0}, Write: true}},
		Body:     func(*chop.PieceTx) error { return nil },
	}, {
		Accesses: []chop.AccessDecl{{Table: "U", Cols: []int{0}, Write: true}},
		Body:     func(*chop.PieceTx) error { return nil },
	}}}
	b := &chop.Template{Name: "b", Pieces: []*chop.Piece{{
		Accesses: []chop.AccessDecl{{Table: "U", Cols: []int{1}, Write: true}},
		Body:     func(*chop.PieceTx) error { return nil },
	}, {
		Accesses: []chop.AccessDecl{{Table: "T", Cols: []int{1}, Write: true}},
		Body:     func(*chop.PieceTx) error { return nil },
	}}}
	var reg chop.Registry
	reg.Register(a)
	reg.Register(b)
	reg.Analyze()
	if reg.Merges() != 0 {
		t.Fatalf("disjoint-column templates merged %d times", reg.Merges())
	}
}

// TestAnalyzeUnannotatedConservative: pieces declaring no access modes
// must be analyzed as potential writers — two mode-less templates whose
// table orders cross merge exactly as annotated writers would, where a
// read-only reading of the same declarations would see no C-edge at all.
func TestAnalyzeUnannotatedConservative(t *testing.T) {
	mk := func(tables ...string) *chop.Template {
		tt := &chop.Template{Name: tables[0] + "-first"}
		for _, tb := range tables {
			tt.Pieces = append(tt.Pieces, &chop.Piece{
				Accesses: []chop.AccessDecl{{Table: tb, Cols: []int{0}}},
				Body:     func(*chop.PieceTx) error { return nil },
			})
		}
		return tt
	}
	a := mk("X", "Y")
	b := mk("Y", "X")
	var reg chop.Registry
	reg.Register(a)
	reg.Register(b)
	reg.Analyze()
	if reg.Merges() == 0 {
		t.Fatal("un-annotated crossing templates not merged; analysis trusted absent mode declarations")
	}
	if len(a.Pieces) != 1 || len(b.Pieces) != 1 {
		t.Fatalf("pieces after merge: %d and %d, want 1 and 1", len(a.Pieces), len(b.Pieces))
	}
}

// TestInPlacePromotion: an un-annotated read-then-update piece promotes
// its read access SH→EX in place — one access per row, counted as an
// upgrade, and the concurrent increments it performs conserve.
func TestInPlacePromotion(t *testing.T) {
	db := core.NewDB(core.Config{})
	tbl := buildKV(db, 4)
	valCol := tbl.Schema.ColIndex("val")

	var maxAccs atomic.Int64
	tmpl := &chop.Template{Name: "rmw", Pieces: []*chop.Piece{{
		Accesses: []chop.AccessDecl{{Table: "kv", Cols: []int{valCol}}}, // no mode declared
		Body: func(pt *chop.PieceTx) error {
			k := pt.Env().(uint64)
			row := tbl.Get(k)
			if _, err := pt.Read(row); err != nil {
				return err
			}
			return pt.Update(row, func(img []byte) {
				tbl.Schema.AddInt64(img, valCol, 1)
			})
		},
	}}}
	var reg chop.Registry
	reg.Register(tmpl)
	e := chop.New(db, &reg)

	db.SetOnCommit(func(_ int, _, _ uint64, accesses []core.AccessInfo, _ int) {
		if n := int64(len(accesses)); n > maxAccs.Load() {
			maxAccs.Store(n)
		}
		for _, a := range accesses {
			if a.Mode != lock.EX {
				panic("promoted access committed as SH")
			}
		}
	})

	const workers, per = 8, 150
	cols := make([]*stats.Collector, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		cols[w] = &stats.Collector{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := e.NewSession(w, cols[w])
			rng := rand.New(rand.NewSource(int64(w)*17 + 3))
			for i := 0; i < per; i++ {
				if err := sess.Run(tmpl, uint64(rng.Intn(4))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	var total int64
	for k := uint64(0); k < 4; k++ {
		total += tbl.Schema.GetInt64(*tbl.Get(k).OCCImage.Load(), valCol)
	}
	if total != workers*per {
		t.Fatalf("total = %d, want %d (lost or doubled updates through promotion)", total, workers*per)
	}
	if got := maxAccs.Load(); got != 1 {
		t.Fatalf("%d accesses recorded for a single-row read-then-update, want 1 promoted access", got)
	}
	var upgrades uint64
	for _, c := range cols {
		upgrades += c.Upgrades
	}
	if upgrades == 0 {
		t.Fatal("no upgrades recorded; promotion path not taken")
	}
}

func TestIC3CounterConservation(t *testing.T) {
	db := core.NewDB(core.Config{})
	tbl := buildKV(db, 4)
	valCol := tbl.Schema.ColIndex("val")

	tmpl := &chop.Template{Name: "incr", Pieces: []*chop.Piece{{
		Accesses: []chop.AccessDecl{{Table: "kv", Cols: []int{valCol}, Write: true}},
		Body: func(pt *chop.PieceTx) error {
			rows := pt.Env().([]uint64)
			for _, k := range rows {
				if err := pt.Update(tbl.Get(k), func(img []byte) {
					tbl.Schema.AddInt64(img, valCol, 1)
				}); err != nil {
					return err
				}
			}
			return nil
		},
	}}}
	var reg chop.Registry
	reg.Register(tmpl)
	e := chop.New(db, &reg)

	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := e.NewSession(w, &stats.Collector{})
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				keys := []uint64{uint64(rng.Intn(4))}
				if err := sess.Run(tmpl, keys); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	var total int64
	for k := uint64(0); k < 4; k++ {
		total += tbl.Schema.GetInt64(*tbl.Get(k).OCCImage.Load(), valCol)
	}
	if total != workers*per {
		t.Fatalf("total = %d, want %d", total, workers*per)
	}
}

func TestIC3Serializability(t *testing.T) {
	db := core.NewDB(core.Config{})
	tbl := buildKV(db, 6)
	stampCol := tbl.Schema.ColIndex("stamp")

	hist := verify.New()
	db.SetOnCommit(func(worker int, txnID, ts uint64, accesses []core.AccessInfo, inserts int) {
		var reads []verify.Read
		var wrote []string
		var myStamp uint64
		for _, a := range accesses {
			rowKey := a.Table + "/" + string(rune('0'+a.Key))
			if a.Mode == lock.EX {
				wrote = append(wrote, rowKey)
				myStamp = uint64(tbl.Schema.GetInt64(a.Wrote, stampCol))
			} else {
				reads = append(reads, verify.Read{
					Row: rowKey, Stamp: uint64(tbl.Schema.GetInt64(a.Read, stampCol)),
				})
			}
		}
		id := txnID
		if myStamp != 0 {
			id = myStamp
		}
		hist.RecordCommit(id, reads, wrote)
	})

	var stampCtr atomic.Uint64
	stampCtr.Store(1 << 32)
	type env struct {
		keys   []uint64
		writes []bool
	}
	tmpl := &chop.Template{Name: "rw", Pieces: []*chop.Piece{{
		Accesses: []chop.AccessDecl{{Table: "kv", Cols: []int{0, 1}, Write: true}},
		Body: func(pt *chop.PieceTx) error {
			ev := pt.Env().(*env)
			stamp := stampCtr.Add(1)
			for i, k := range ev.keys {
				row := tbl.Get(k)
				if ev.writes[i] {
					err := pt.Update(row, func(img []byte) {
						tbl.Schema.SetInt64(img, 0, int64(stamp))
					})
					if err != nil {
						return err
					}
				} else if _, err := pt.Read(row); err != nil {
					return err
				}
			}
			return nil
		},
	}}}
	var reg chop.Registry
	reg.Register(tmpl)
	e := chop.New(db, &reg)

	const workers, per = 8, 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := e.NewSession(w, &stats.Collector{})
			rng := rand.New(rand.NewSource(int64(w)*31 + 5))
			for i := 0; i < per; i++ {
				ev := &env{}
				perm := rng.Perm(6)[:3]
				// Keys are accessed in sorted order: a valid chopping's
				// pieces never self-deadlock (IC3 assumes the chopped
				// program is deadlock-free; arbitrary in-piece orders are
				// not valid choppings).
				sort.Ints(perm)
				for _, k := range perm {
					ev.keys = append(ev.keys, uint64(k))
					ev.writes = append(ev.writes, rng.Float64() < 0.5)
				}
				if err := sess.Run(tmpl, ev); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if hist.Commits() != workers*per {
		t.Fatalf("commits = %d, want %d", hist.Commits(), workers*per)
	}
	if err := hist.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestIC3UserAbortRollsBack(t *testing.T) {
	db := core.NewDB(core.Config{})
	tbl := buildKV(db, 1)
	valCol := tbl.Schema.ColIndex("val")
	tmpl := &chop.Template{Name: "abort", Pieces: []*chop.Piece{{
		Accesses: []chop.AccessDecl{{Table: "kv", Cols: []int{valCol}, Write: true}},
		Body: func(pt *chop.PieceTx) error {
			return pt.Update(tbl.Get(0), func(img []byte) {
				tbl.Schema.SetInt64(img, valCol, 99)
			})
		},
	}, {
		Accesses: []chop.AccessDecl{{Table: "kv", Cols: []int{valCol}}},
		Body:     func(pt *chop.PieceTx) error { return core.ErrUserAbort },
	}}}
	var reg chop.Registry
	reg.Register(tmpl)
	e := chop.New(db, &reg)
	col := &stats.Collector{}
	if err := e.NewSession(0, col).Run(tmpl, nil); err != nil {
		t.Fatal(err)
	}
	if col.Commits != 0 || col.Aborts != 1 {
		t.Fatalf("commits=%d aborts=%d", col.Commits, col.Aborts)
	}
	if got := tbl.Schema.GetInt64(*tbl.Get(0).OCCImage.Load(), valCol); got != 0 {
		t.Fatalf("value = %d after user abort, want 0", got)
	}
}
