package core_test

import (
	"testing"

	"bamboo/internal/core"
	"bamboo/internal/stats"
	"bamboo/internal/workload/ycsb"
)

func benchTxn(b *testing.B, cfg core.Config) {
	db := core.NewDB(cfg)
	defer db.Close()
	w, err := ycsb.Load(db, ycsb.Config{
		Rows: 20000, OpsPerTxn: 16, Theta: 0.0, ReadRatio: 0.5,
		Columns: 10, ColumnBytes: 100,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng := core.NewLockEngine(db)
	sess := eng.NewSession(0, &stats.Collector{})
	gen := w.Generator()
	const txns = 512
	fns := make([]core.TxnFunc, txns)
	for i := range fns {
		fns[i] = gen(0, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sess.Run(fns[i%txns]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTxnStatic(b *testing.B) { benchTxn(b, core.Bamboo()) }
func BenchmarkTxnAdaptive(b *testing.B) {
	cfg := core.Bamboo()
	cfg.Adaptive = true
	benchTxn(b, cfg)
}
