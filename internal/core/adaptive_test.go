package core_test

import (
	"testing"

	"bamboo/internal/core"
	"bamboo/internal/lock"
	"bamboo/internal/storage"
	"bamboo/internal/workload/ycsb"
)

// TestAdaptiveEndToEnd drives a skewed multi-worker YCSB run with the
// adaptive engine on and checks the whole feedback loop fired: the
// detector classified entries (policy flips recorded), transactions kept
// committing, and the serializable executor stayed correct under
// mid-run policy switches (verified transfers below).
func TestAdaptiveEndToEnd(t *testing.T) {
	cfg := core.Bamboo()
	cfg.Adaptive = true
	cfg.AdaptiveInterval = 1e6 // 1ms: converge within the short run
	db := core.NewDB(cfg)
	defer db.Close()

	w, err := ycsb.Load(db, ycsb.Config{
		Rows: 2000, OpsPerTxn: 16, Theta: 0.9, ReadRatio: 0.5,
		Columns: 4, ColumnBytes: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := core.RunN(core.NewLockEngine(db), 4, 400, w.Generator())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Report.Commits == 0 {
		t.Fatal("no commits on the adaptive run")
	}
	if db.Global.PolicyFlips.Load() == 0 {
		t.Fatal("adaptive engine made no classifications on a theta-0.9 run")
	}
	if db.AdaptiveEngine() == nil {
		t.Fatal("AdaptiveEngine() nil with Config.Adaptive set")
	}
	// Adaptive mode opts the flat layout into partition counters — the
	// detector must not be blind on unpartitioned tables.
	if db.Global.NumPartitions() != 1 {
		t.Fatalf("flat adaptive layout has %d partition counters, want 1", db.Global.NumPartitions())
	}
	if acc := db.Global.PartitionAccesses(); len(acc) != 1 || acc[0] == 0 {
		t.Fatalf("flat-layout partition counter not fed: %v", acc)
	}
	// The report mirrors the counters the engine maintains.
	if res.Report.PolicyFlips == 0 {
		t.Fatal("report missing policy flips")
	}
	t.Logf("flips=%d hot=%d batched=%d commits=%d abort-rate=%.2f",
		res.Report.PolicyFlips, res.Report.HotEntries,
		res.Report.BatchedGrants, res.Report.Commits, res.Report.AbortRate)
}

// TestAdaptiveConsistency runs verified balance transfers (the invariant
// checker pattern of the checkpoint tests) under adaptive mode: policy
// switches mid-run must never produce a non-serializable interleaving.
func TestAdaptiveConsistency(t *testing.T) {
	cfg := core.Bamboo()
	cfg.Adaptive = true
	cfg.AdaptiveInterval = 1e6
	db := core.NewDB(cfg)
	defer db.Close()

	schema := storage.NewSchema("acct", storage.Column{Name: "balance", Type: storage.ColInt64})
	tbl := db.Catalog.MustCreateTable(schema, 0)
	const rows = 16
	const per = int64(100)
	for k := uint64(0); k < rows; k++ {
		img := schema.NewRowImage()
		schema.SetInt64(img, 0, per)
		tbl.MustInsertRow(k, img)
	}

	res := core.RunN(core.NewLockEngine(db), 4, 300, func(worker, seq int) core.TxnFunc {
		src := uint64((worker*7 + seq) % rows)
		dst := uint64((worker*13 + seq*5 + 1) % rows)
		if src == dst {
			dst = (dst + 1) % rows
		}
		return func(tx core.Tx) error {
			if err := tx.Update(tbl.Get(src), func(img []byte) {
				schema.AddInt64(img, 0, -1)
			}); err != nil {
				return err
			}
			return tx.Update(tbl.Get(dst), func(img []byte) {
				schema.AddInt64(img, 0, 1)
			})
		}
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	var total int64
	for k := uint64(0); k < rows; k++ {
		total += schema.GetInt64(tbl.Get(k).Entry.CurrentData(), 0)
	}
	if want := per * rows; total != want {
		t.Fatalf("balance sum = %d, want %d (adaptive run lost money)", total, want)
	}
	// Cold-converged entries should have left the retire path by the end
	// of a run this uniform only if classified; either way the policy
	// words must hold valid values.
	tbl.Range(func(_ uint64, r *storage.Row) bool {
		if p := r.Entry.Policy(); p > lock.PolicyNoRetire {
			t.Fatalf("invalid policy word %d", p)
		}
		return true
	})
}
