package core_test

import (
	"testing"

	"bamboo/internal/core"
	"bamboo/internal/stats"
	"bamboo/internal/workload/ycsb"
)

// Pre-refactor baselines, measured at the PR-1 tree (slice-based entry
// lists, per-acquire Request allocation, per-attempt lockTx/byRow/accesses
// allocation, per-commit WAL encode buffer) with the exact harness below.
// The allocation-gate CI job enforces that the zero-allocation hot path
// stays at least 50% below these.
const (
	seedAllocsBamboo    = 76.0
	seedAllocsWoundWait = 78.0
)

// measureAllocsPerTxn reports the average heap allocations per committed
// transaction on the YCSB medium-contention stored-procedure path, driven
// by a single session so the count is deterministic (no aborts, no
// concurrent noise).
func measureAllocsPerTxn(t *testing.T, cfg core.Config) float64 {
	t.Helper()
	db := core.NewDB(cfg)
	defer db.Close()
	w, err := ycsb.Load(db, ycsb.Config{
		Rows: 20000, OpsPerTxn: 16, Theta: 0.6, ReadRatio: 0.5,
		Columns: 10, ColumnBytes: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewLockEngine(db)
	sess := eng.NewSession(0, &stats.Collector{})
	gen := w.Generator()

	// Pre-plan the transactions so workload-side planning allocations
	// (key plans, dedup maps) are excluded from the executor measurement.
	const txns = 200
	fns := make([]core.TxnFunc, txns)
	for i := range fns {
		fns[i] = gen(0, i)
	}
	i := 0
	return testing.AllocsPerRun(txns, func() {
		if err := sess.Run(fns[i%txns]); err != nil {
			t.Fatal(err)
		}
		i++
	})
}

// TestAllocBudget is the allocation gate: the per-transaction allocation
// count on the YCSB medium-contention path must stay at least 50% below
// the pre-refactor baseline. The bulk of what remains is the per-write
// private image clone (8 EX accesses/txn on average), which is inherent
// to the install-by-pointer-swap design: published images must be fresh
// allocations because committed readers hold references to the old ones.
func TestAllocBudget(t *testing.T) {
	cases := []struct {
		name     string
		cfg      core.Config
		baseline float64
	}{
		{"bamboo", core.Bamboo(), seedAllocsBamboo},
		{"woundwait", core.WoundWait(), seedAllocsWoundWait},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := measureAllocsPerTxn(t, c.cfg)
			budget := c.baseline * 0.5
			t.Logf("%s: %.1f allocs/txn (seed baseline %.0f, budget %.0f)",
				c.name, got, c.baseline, budget)
			if got > budget {
				t.Fatalf("allocs/txn = %.1f exceeds budget %.1f (seed baseline %.0f; "+
					"the hot path regressed — look for per-attempt or per-acquire allocations)",
					got, budget, c.baseline)
			}
		})
	}
}

// TestAllocBudgetGroupCommit keeps the group-commit commit path inside
// the same budget: batching must not reintroduce per-commit allocation.
func TestAllocBudgetGroupCommit(t *testing.T) {
	cfg := core.Bamboo()
	cfg.GroupCommit = true
	got := measureAllocsPerTxn(t, cfg)
	budget := seedAllocsBamboo * 0.5
	t.Logf("bamboo+gc: %.1f allocs/txn (budget %.0f)", got, budget)
	if got > budget {
		t.Fatalf("group-commit allocs/txn = %.1f exceeds budget %.1f", got, budget)
	}
}
