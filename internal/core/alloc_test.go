package core_test

import (
	"testing"

	"bamboo/internal/core"
	"bamboo/internal/stats"
	"bamboo/internal/workload/ycsb"
)

// Pre-refactor baselines, measured at the PR-1 tree (slice-based entry
// lists, per-acquire Request allocation, per-attempt lockTx/byRow/accesses
// allocation, per-commit WAL encode buffer) with the exact harness below,
// kept for the log line's sake. The gate itself is the absolute
// allocBudget ratchet below.
const (
	seedAllocsBamboo    = 76.0
	seedAllocsWoundWait = 78.0
)

// allocBudget is the ratcheted allocs/txn ceiling. Measured steady state
// on this harness is ~1 alloc/txn: the shared-image protocol recycles
// superseded committed images into the writers' private-copy buffers
// (capture at commit release, consumption at the next exclusive grant),
// so the ~8 average per-txn write-image clones that dominated the
// previous ~17 now allocate only at warm-up and when a row image grows;
// the workload's per-write mutate closure is hoisted for the same
// reason. What remains is the recording in-memory WAL device's record
// copy — a harness artifact, not an engine cost. 12 (ratcheted down
// from 20, originally 24) leaves headroom for Go-version and map-growth
// noise while catching any reintroduced per-attempt, per-acquire or
// per-write-clone allocation (each costs ≥8/txn on this workload).
const allocBudget = 12.0

// measureAllocsPerTxn reports the average heap allocations per committed
// transaction on the YCSB medium-contention stored-procedure path, driven
// by a single session so the count is deterministic (no aborts, no
// concurrent noise).
func measureAllocsPerTxn(t *testing.T, cfg core.Config) float64 {
	return measureAllocsPerTxnRMW(t, cfg, 0)
}

// measureAllocsPerTxnRMW is measureAllocsPerTxn with a fraction of the
// updates issued as un-annotated read-modify-writes (SH→EX upgrades).
func measureAllocsPerTxnRMW(t *testing.T, cfg core.Config, rmwFrac float64) float64 {
	t.Helper()
	db := core.NewDB(cfg)
	defer db.Close()
	w, err := ycsb.Load(db, ycsb.Config{
		Rows: 20000, OpsPerTxn: 16, Theta: 0.6, ReadRatio: 0.5,
		Columns: 10, ColumnBytes: 100, RMWFrac: rmwFrac,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewLockEngine(db)
	sess := eng.NewSession(0, &stats.Collector{})
	gen := w.Generator()

	// Pre-plan the transactions so workload-side planning allocations
	// (key plans, dedup maps) are excluded from the executor measurement.
	const txns = 200
	fns := make([]core.TxnFunc, txns)
	for i := range fns {
		fns[i] = gen(0, i)
	}
	i := 0
	return testing.AllocsPerRun(txns, func() {
		if err := sess.Run(fns[i%txns]); err != nil {
			t.Fatal(err)
		}
		i++
	})
}

// TestAllocBudget is the allocation gate: the per-transaction allocation
// count on the YCSB medium-contention path must stay under the ratcheted
// absolute ceiling (allocBudget, down from the original ≤50%-of-seed
// rule). The per-write private image copies that used to dominate are
// now served from recycled spare buffers (superseded committed images
// captured at commit release); what remains is bookkeeping growth and
// the occasional fresh copy when a spare is missing or too small.
func TestAllocBudget(t *testing.T) {
	cases := []struct {
		name     string
		cfg      core.Config
		baseline float64
	}{
		{"bamboo", core.Bamboo(), seedAllocsBamboo},
		{"woundwait", core.WoundWait(), seedAllocsWoundWait},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := measureAllocsPerTxn(t, c.cfg)
			t.Logf("%s: %.1f allocs/txn (seed baseline %.0f, budget %.0f)",
				c.name, got, c.baseline, allocBudget)
			if got > allocBudget {
				t.Fatalf("allocs/txn = %.1f exceeds budget %.1f (seed baseline %.0f; "+
					"the hot path regressed — look for per-attempt or per-acquire allocations)",
					got, allocBudget, c.baseline)
			}
		})
	}
}

// TestAllocBudgetReadOnly is the snapshot-path allocation gate: a
// transaction running entirely on the MVCC read path — snapshot
// acquisition, version-chain walks, the lock-free commit — must allocate
// NOTHING in steady state. The measurement drives declared-read-only
// YCSB transactions (every access a Read, core.MarkReadOnly up front) on
// an MVCC engine; the plans are pre-built so only the executor is
// measured. The 0.5 tolerance absorbs AllocsPerRun jitter from the
// background pruner's occasional sweep, not any per-txn allocation.
func TestAllocBudgetReadOnly(t *testing.T) {
	cfg := core.Bamboo()
	cfg.MVCC = true
	db := core.NewDB(cfg)
	defer db.Close()
	w, err := ycsb.Load(db, ycsb.Config{
		Rows: 20000, OpsPerTxn: 16, Theta: 0.6, ReadRatio: 0.5,
		Columns: 10, ColumnBytes: 100, ReadOnlyFrac: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewLockEngine(db)
	col := &stats.Collector{}
	sess := eng.NewSession(0, col)
	gen := w.Generator()
	const txns = 200
	fns := make([]core.TxnFunc, txns)
	for i := range fns {
		fns[i] = gen(0, i)
	}
	// Warm up once: the first transactions grow the latency histogram and
	// the session's access scratch to steady-state capacity.
	for i := 0; i < txns; i++ {
		if err := sess.Run(fns[i]); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	got := testing.AllocsPerRun(txns, func() {
		if err := sess.Run(fns[i%txns]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	t.Logf("read-only snapshot path: %.2f allocs/txn (budget 0)", got)
	if got > 0.5 {
		t.Fatalf("read-only snapshot path allocates %.2f allocs/txn, want 0", got)
	}
	if col.SnapshotReads == 0 {
		t.Fatal("no snapshot reads recorded — the transactions did not run on the MVCC path")
	}
}

// TestAllocBudgetPartitioned asserts partition routing adds zero
// steady-state allocations: the same workload over a 4-partition hash-
// partitioned table (routing on every access, per-partition counters fed
// on every acquire) allocates exactly what the flat layout does.
func TestAllocBudgetPartitioned(t *testing.T) {
	flat := measureAllocsPerTxn(t, core.Bamboo())
	cfg := core.Bamboo()
	cfg.Partitions = 4
	parted := measureAllocsPerTxn(t, cfg)
	t.Logf("flat %.1f, 4-partition %.1f allocs/txn (budget %.0f)", flat, parted, allocBudget)
	if parted > allocBudget {
		t.Fatalf("partitioned allocs/txn = %.1f exceeds budget %.1f", parted, allocBudget)
	}
	if parted > flat+0.5 {
		t.Fatalf("partition routing allocates: %.1f vs %.1f allocs/txn flat", parted, flat)
	}
}

// TestAllocBudgetPartitionedWAL asserts the partition-routed commit path
// adds zero steady-state allocations: splitting each commit record by
// owning partition and submitting to per-partition logs reuses
// session-owned records, appenders, ticket and touched-partition scratch.
// Measured both on the in-memory partition devices and on real file
// devices (FsyncNone so the measurement is not fsync-bound).
func TestAllocBudgetPartitionedWAL(t *testing.T) {
	flat := measureAllocsPerTxn(t, core.Bamboo())
	mem := core.Bamboo()
	mem.Partitions = 4
	memAllocs := measureAllocsPerTxn(t, mem)
	file := core.Bamboo()
	file.Partitions = 4
	file.WALDir = t.TempDir()
	fileAllocs := measureAllocsPerTxn(t, file)
	t.Logf("flat %.1f, 4-partition mem-WAL %.1f, 4-partition file-WAL %.1f allocs/txn (budget %.0f)",
		flat, memAllocs, fileAllocs, allocBudget)
	for name, got := range map[string]float64{"mem": memAllocs, "file": fileAllocs} {
		if got > allocBudget {
			t.Fatalf("%s-WAL allocs/txn = %.1f exceeds budget %.1f", name, got, allocBudget)
		}
		if got > flat+0.5 {
			t.Fatalf("%s-WAL partition-routed commit allocates: %.1f vs %.1f allocs/txn flat", name, got, flat)
		}
	}
}

// TestAllocBudgetGroupCommit keeps the group-commit commit path inside
// the same budget: batching must not reintroduce per-commit allocation.
func TestAllocBudgetGroupCommit(t *testing.T) {
	cfg := core.Bamboo()
	cfg.GroupCommit = true
	got := measureAllocsPerTxn(t, cfg)
	t.Logf("bamboo+gc: %.1f allocs/txn (budget %.0f)", got, allocBudget)
	if got > allocBudget {
		t.Fatalf("group-commit allocs/txn = %.1f exceeds budget %.1f", got, allocBudget)
	}
}

// TestAllocBudgetAdaptive asserts adaptive contention control adds zero
// steady-state allocations to the transaction path: the per-entry
// access/conflict recording is atomic adds on the entry's own cacheline,
// the policy consult is one atomic load, and the feedback engine's sweep
// runs on its own goroutine (excluded from AllocsPerRun by definition —
// what is measured here is the executor).
func TestAllocBudgetAdaptive(t *testing.T) {
	flat := measureAllocsPerTxn(t, core.Bamboo())
	cfg := core.Bamboo()
	cfg.Adaptive = true
	adaptiveAllocs := measureAllocsPerTxn(t, cfg)
	t.Logf("static %.1f, adaptive %.1f allocs/txn (budget %.0f)", flat, adaptiveAllocs, allocBudget)
	if adaptiveAllocs > allocBudget {
		t.Fatalf("adaptive allocs/txn = %.1f exceeds budget %.1f", adaptiveAllocs, allocBudget)
	}
	if adaptiveAllocs > flat+0.5 {
		t.Fatalf("adaptive mode allocates: %.1f vs %.1f allocs/txn static", adaptiveAllocs, flat)
	}
}

// TestAllocBudgetUpgradePath asserts the SH→EX upgrade path adds zero
// steady-state allocations: with every update issued as an un-annotated
// read-modify-write, the only allocation the upgrade performs is the
// private write-image clone — the same clone a declared exclusive
// acquisition would have made — so allocs/txn must stay inside the same
// budget and within noise of the fully annotated run.
func TestAllocBudgetUpgradePath(t *testing.T) {
	for _, c := range []struct {
		name string
		cfg  core.Config
	}{
		{"bamboo", core.Bamboo()},
		{"woundwait", core.WoundWait()},
	} {
		t.Run(c.name, func(t *testing.T) {
			annotated := measureAllocsPerTxnRMW(t, c.cfg, 0)
			upgraded := measureAllocsPerTxnRMW(t, c.cfg, 1.0)
			t.Logf("%s: annotated %.1f, upgraded %.1f allocs/txn (budget %.0f)",
				c.name, annotated, upgraded, allocBudget)
			if upgraded > allocBudget {
				t.Fatalf("upgrade-path allocs/txn = %.1f exceeds budget %.1f", upgraded, allocBudget)
			}
			// Zero steady-state delta, with a half-alloc tolerance for
			// AllocsPerRun jitter.
			if upgraded > annotated+0.5 {
				t.Fatalf("upgrade path allocates: %.1f vs %.1f allocs/txn annotated",
					upgraded, annotated)
			}
		})
	}
}
