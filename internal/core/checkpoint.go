package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bamboo/internal/storage"
)

// CheckpointConfig enables the storage lifecycle: a background
// checkpointer that snapshots each partition's committed rows without
// stopping writers, and the log-truncation policy that keeps the WAL
// bounded once checkpoints make its prefix redundant.
//
// Checkpoints require WALDir (there is nothing to truncate, and no
// durable LSN to stamp, without file-backed logs) and switch the WAL to
// the segmented file layout. They cover the lock-engine commit path
// (Bamboo and the 2PL baselines), whose commit window coordinates with
// the checkpointer through the DB's checkpoint gate; the OCC and IC3
// engines log through DB.Log directly and are not checkpoint-safe.
type CheckpointConfig struct {
	// Dir is where snapshot files live; non-empty enables checkpointing.
	Dir string
	// Interval is the per-partition time trigger (default 1s).
	Interval time.Duration
	// MaxLogBytes additionally triggers a checkpoint whenever a
	// partition's live log exceeds it (0 = time trigger only).
	MaxLogBytes int64
	// SegmentBytes is the WAL segment rotation threshold (0 = the
	// wal.DefaultSegmentBytes default). Truncation reclaims whole
	// segments, so this bounds both truncation granularity and how much
	// already-checkpointed log can linger.
	SegmentBytes int64
	// Truncate unlinks log segments a durable checkpoint has made
	// redundant. The cut is the second-newest retained snapshot's LSN,
	// so the newest checkpoint being corrupt still leaves a previous
	// snapshot plus the full log suffix it needs.
	Truncate bool
	// Keep is how many snapshots per partition to retain (default 2).
	Keep int
}

// Enabled reports whether checkpointing is configured.
func (c CheckpointConfig) Enabled() bool { return c.Dir != "" }

// DefaultCheckpointInterval is used when CheckpointConfig.Interval ≤ 0.
const DefaultCheckpointInterval = time.Second

// CheckpointStats is the checkpointer's cumulative telemetry.
type CheckpointStats struct {
	// Checkpoints is the number of snapshot files written.
	Checkpoints uint64
	// SkippedRounds counts rounds skipped because the partition's
	// durable sequence had not advanced since its last snapshot.
	SkippedRounds uint64
	// Time is cumulative capture+write+prune time.
	Time time.Duration
	// Truncations counts truncation passes that dropped segments;
	// TruncatedBytes is what they reclaimed.
	Truncations    uint64
	TruncatedBytes int64
	// Errors counts failed background rounds (the loop keeps going; the
	// last error is also retained and returned by DB.CheckpointNow).
	Errors uint64
}

// checkpointer is the background storage-lifecycle loop: per partition,
// capture a fuzzy snapshot stamped with the durable WAL sequence, prune
// old snapshots, and truncate the log below the second-newest retained
// snapshot.
type checkpointer struct {
	db *DB

	mu      sync.Mutex // serializes rounds; guards everything below
	lastSeq []uint64   // newest snapshot seq per partition (0 = none)
	lastRun []time.Time
	buf     []byte // snapshot build buffer, reused across rounds
	stats   CheckpointStats
	lastErr error

	runMu   sync.Mutex
	stopCh  chan struct{}
	doneCh  chan struct{}
	running bool
}

func newCheckpointer(db *DB) *checkpointer {
	n := db.Partitions()
	return &checkpointer{db: db, lastSeq: make([]uint64, n), lastRun: make([]time.Time, n)}
}

// start launches the loop. Idempotent. Called via DB.StartCheckpointer —
// never from NewDB: a checkpointer running during base load or replay
// would snapshot half-loaded state and then truncate away the only
// complete copy of the records.
func (c *checkpointer) start() {
	c.runMu.Lock()
	defer c.runMu.Unlock()
	if c.running {
		return
	}
	c.mu.Lock()
	for p := range c.lastSeq {
		// Resume from what is on disk: a restarted process must not
		// re-snapshot sequences already covered, nor trust in-memory
		// state it does not have.
		if snaps, err := storage.ListSnapshots(c.db.cfg.Checkpoint.Dir, p); err == nil && len(snaps) > 0 {
			c.lastSeq[p] = snaps[0].Seq
		}
		c.lastRun[p] = time.Now()
	}
	c.mu.Unlock()
	c.stopCh = make(chan struct{})
	c.doneCh = make(chan struct{})
	c.running = true
	go c.loop(c.stopCh, c.doneCh)
}

func (c *checkpointer) stop() {
	c.runMu.Lock()
	defer c.runMu.Unlock()
	if !c.running {
		return
	}
	close(c.stopCh)
	<-c.doneCh
	c.running = false
}

func (c *checkpointer) loop(stopCh, doneCh chan struct{}) {
	defer close(doneCh)
	cfg := &c.db.cfg.Checkpoint
	interval := cfg.Interval
	if interval <= 0 {
		interval = DefaultCheckpointInterval
	}
	// The size trigger needs to be noticed faster than the time trigger
	// fires, so the loop polls at the smaller of the two scales.
	poll := interval
	if cfg.MaxLogBytes > 0 && poll > 100*time.Millisecond {
		poll = 100 * time.Millisecond
	}
	tick := time.NewTicker(poll)
	defer tick.Stop()
	for {
		select {
		case <-stopCh:
			return
		case <-tick.C:
			c.mu.Lock()
			for p := 0; p < c.db.Partitions(); p++ {
				due := time.Since(c.lastRun[p]) >= interval ||
					(cfg.MaxLogBytes > 0 && c.db.PLog.LiveBytes(p) >= cfg.MaxLogBytes)
				if !due {
					continue
				}
				if err := c.partitionRoundLocked(p); err != nil {
					c.stats.Errors++
					c.lastErr = err
				}
			}
			c.mu.Unlock()
		}
	}
}

// runAll checkpoints every partition now, regardless of triggers.
func (c *checkpointer) runAll() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for p := 0; p < c.db.Partitions(); p++ {
		if err := c.partitionRoundLocked(p); err != nil && first == nil {
			first = err
		}
	}
	if first == nil {
		first = c.lastErr
		c.lastErr = nil
	}
	return first
}

func (c *checkpointer) partitionRoundLocked(p int) error {
	cfg := &c.db.cfg.Checkpoint
	// Capture the checkpoint sequence under the gate's write lock: every
	// in-flight commit window (record durable at some seq … effects
	// installed) drains first, so all records ≤ seq have their writes
	// installed and a snapshot taken from here on cannot miss them. The
	// snapshot itself runs after the gate is released — writers proceed
	// concurrently, which is what makes the checkpoint fuzzy: it may
	// additionally contain effects of records > seq, and replay
	// re-applying those after-images is idempotent.
	c.db.ckptGate.Lock()
	seq := c.db.PLog.Seq(p)
	c.db.ckptGate.Unlock()
	c.lastRun[p] = time.Now()
	if seq == c.lastSeq[p] {
		c.stats.SkippedRounds++
		return nil
	}
	start := time.Now()
	var err error
	c.buf, err = storage.WriteSnapshot(cfg.Dir, c.db.Catalog, p, seq, c.buf)
	if err != nil {
		return fmt.Errorf("core: checkpoint partition %d: %w", p, err)
	}
	c.lastSeq[p] = seq
	c.stats.Checkpoints++
	keep := cfg.Keep
	if keep < 2 {
		keep = 2
	}
	if _, err := storage.PruneSnapshots(cfg.Dir, p, keep); err != nil {
		return fmt.Errorf("core: prune checkpoints partition %d: %w", p, err)
	}
	c.stats.Time += time.Since(start)
	if cfg.Truncate {
		snaps, err := storage.ListSnapshots(cfg.Dir, p)
		if err != nil {
			return err
		}
		if len(snaps) >= 2 {
			// Cut below the second-newest snapshot: both retained
			// recovery points keep their full log suffix, so a corrupt
			// newest snapshot still recovers from the previous one.
			dropped, err := c.db.PLog.TruncateBelow(p, snaps[1].Seq)
			if err != nil {
				return fmt.Errorf("core: truncate partition %d: %w", p, err)
			}
			if dropped > 0 {
				c.stats.Truncations++
				c.stats.TruncatedBytes += dropped
			}
		}
	}
	return nil
}

func (c *checkpointer) statsSnapshot() CheckpointStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// StartCheckpointer launches the background checkpoint/truncation loop.
// Call it only after the base state is loaded and any crash replay has
// finished — a checkpoint of a half-recovered catalog, followed by
// truncation, would discard the only complete copy of committed records.
// No-op when checkpoints are disabled; idempotent when they are not.
func (db *DB) StartCheckpointer() {
	if db.ckpt != nil {
		db.ckpt.start()
	}
}

// CheckpointNow synchronously runs one checkpoint round over every
// partition, regardless of the interval and size triggers, and returns
// the first error (including any pending background-round error). Tools
// and tests use it to force a recovery point.
func (db *DB) CheckpointNow() error {
	if db.ckpt == nil {
		return errors.New("core: checkpoints are not enabled")
	}
	return db.ckpt.runAll()
}

// CheckpointStats returns the checkpointer's cumulative telemetry; zero
// when checkpoints are disabled.
func (db *DB) CheckpointStats() CheckpointStats {
	if db.ckpt == nil {
		return CheckpointStats{}
	}
	return db.ckpt.statsSnapshot()
}

// LogLiveBytes sums the live (not yet truncated) WAL bytes across all
// partition devices — the quantity the truncation policy bounds.
func (db *DB) LogLiveBytes() int64 {
	var total int64
	for p := 0; p < db.Partitions(); p++ {
		total += db.PLog.LiveBytes(p)
	}
	return total
}
