package core_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bamboo/internal/core"
	"bamboo/internal/storage"
	"bamboo/internal/wal"
)

// lifecycleCfg is the storage-lifecycle test configuration: segmented WAL
// with small segments so rotation and truncation trigger quickly, and an
// hour-long interval so checkpoints happen only when the test asks.
func lifecycleCfg(walDir, ckptDir string, parts int, truncate bool) core.Config {
	cfg := core.Bamboo()
	cfg.Partitions = parts
	cfg.WALDir = walDir
	cfg.WALFsync = wal.FsyncNone
	cfg.Checkpoint = core.CheckpointConfig{
		Dir:          ckptDir,
		Interval:     time.Hour,
		SegmentBytes: 4 << 10,
		Truncate:     truncate,
	}
	return cfg
}

// runXferLifecycle runs `rounds` batches of transfers with a forced
// checkpoint after each, then closes the DB and returns the survivor's
// final images.
func runXferLifecycle(t *testing.T, cfg core.Config, rounds, perRound int) map[uint64]int64 {
	t.Helper()
	db := core.NewDB(cfg)
	tbl := loadXfer(t, db)
	per := partitionKeys(tbl, cfg.Partitions)
	db.StartCheckpointer()
	for r := 0; r < rounds; r++ {
		if res := core.RunN(core.NewLockEngine(db), 2, perRound, xferGen(tbl, per)); res.Err != nil {
			t.Fatal(res.Err)
		}
		if err := db.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	final := make(map[uint64]int64)
	tbl.Range(func(k uint64, r *storage.Row) bool {
		final[k] = tbl.Schema.GetInt64(r.Entry.CurrentData(), 0)
		return true
	})
	return final
}

// recoverLifecycle loads the base snapshot into a fresh checkpoint-aware
// DB and replays.
func recoverLifecycle(t *testing.T, cfg core.Config) (*storage.Table, core.ReplayStats) {
	t.Helper()
	db := core.NewDB(cfg)
	t.Cleanup(func() { db.Close() })
	tbl := loadXfer(t, db)
	st, err := db.ReplayDir(cfg.WALDir, true)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return tbl, st
}

func requireImages(t *testing.T, tbl *storage.Table, want map[uint64]int64) {
	t.Helper()
	seen := 0
	tbl.Range(func(k uint64, r *storage.Row) bool {
		seen++
		if got := tbl.Schema.GetInt64(r.Entry.CurrentData(), 0); got != want[k] {
			t.Errorf("row %d: recovered %d, survivor %d", k, got, want[k])
		}
		return true
	})
	if seen != len(want) {
		t.Fatalf("recovered %d rows, want %d", seen, len(want))
	}
	if err := core.RecoveredTable(tbl); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointRecoverySuffixOnly is the headline property: recovery
// restores the newest snapshot and replays only the log suffix past its
// LSN — fewer records and fewer bytes than a full replay of the same
// logs, same final state.
func TestCheckpointRecoverySuffixOnly(t *testing.T) {
	const parts = 2
	walDir := filepath.Join(t.TempDir(), "wal")
	ckptDir := filepath.Join(t.TempDir(), "ckpt")
	cfg := lifecycleCfg(walDir, ckptDir, parts, false)
	final := runXferLifecycle(t, cfg, 3, 30)

	tbl, st := recoverLifecycle(t, cfg)
	requireImages(t, tbl, final)
	if st.Checkpoints != parts {
		t.Fatalf("restored %d checkpoints, want %d (stats %+v)", st.Checkpoints, parts, st)
	}
	if st.CheckpointsBad != 0 || st.CheckpointRows == 0 {
		t.Fatalf("stats %+v", st)
	}

	// Full replay of the same segmented logs (no checkpoint config) is
	// the baseline the suffix must beat.
	fullCfg := core.Bamboo()
	fullCfg.Partitions = parts
	fdb := core.NewDB(fullCfg)
	defer fdb.Close()
	loadXfer(t, fdb)
	full, err := fdb.ReplayDir(walDir, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records >= full.Records {
		t.Fatalf("suffix replay applied %d records, full replay %d", st.Records, full.Records)
	}
	if st.Bytes >= full.Bytes {
		t.Fatalf("suffix replay read %d applied bytes, full replay %d", st.Bytes, full.Bytes)
	}
	if st.Skipped == 0 && st.SkippedSegments == 0 {
		t.Fatalf("suffix replay skipped nothing: %+v", st)
	}
}

// TestCheckpointCorruptNewestFallsBack flips one byte in partition 0's
// newest snapshot: recovery must reject it (CheckpointsBad), restore the
// previous snapshot, and still reproduce the survivor exactly — the
// truncation policy is required to have kept that older snapshot's full
// log suffix.
func TestCheckpointCorruptNewestFallsBack(t *testing.T) {
	const parts = 2
	walDir := filepath.Join(t.TempDir(), "wal")
	ckptDir := filepath.Join(t.TempDir(), "ckpt")
	cfg := lifecycleCfg(walDir, ckptDir, parts, true)
	final := runXferLifecycle(t, cfg, 4, 30)

	snaps, err := storage.ListSnapshots(ckptDir, 0)
	if err != nil || len(snaps) < 2 {
		t.Fatalf("want ≥2 retained snapshots for partition 0, have %v (%v)", snaps, err)
	}
	data, err := os.ReadFile(snaps[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(snaps[0].Path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	tbl, st := recoverLifecycle(t, cfg)
	requireImages(t, tbl, final)
	if st.CheckpointsBad != 1 {
		t.Fatalf("CheckpointsBad = %d, want 1 (stats %+v)", st.CheckpointsBad, st)
	}
	if st.Checkpoints != parts {
		t.Fatalf("restored %d checkpoints, want %d despite the corrupt newest", st.Checkpoints, parts)
	}
}

// TestCheckpointTruncationBoundsLog drives enough rounds that the
// truncation policy must unlink whole segments, then checks the three
// consequences: the oldest on-disk segment no longer starts at seq 1,
// checkpoint-aware recovery still reproduces the survivor, and a replay
// WITHOUT the checkpoint (which would need the truncated prefix) fails
// loudly with ErrCorrupt instead of silently resurrecting stale state.
func TestCheckpointTruncationBoundsLog(t *testing.T) {
	const parts = 2
	walDir := filepath.Join(t.TempDir(), "wal")
	ckptDir := filepath.Join(t.TempDir(), "ckpt")
	cfg := lifecycleCfg(walDir, ckptDir, parts, true)

	db := core.NewDB(cfg)
	tbl := loadXfer(t, db)
	per := partitionKeys(tbl, parts)
	db.StartCheckpointer()
	for r := 0; r < 8; r++ {
		if res := core.RunN(core.NewLockEngine(db), 2, 40, xferGen(tbl, per)); res.Err != nil {
			t.Fatal(res.Err)
		}
		if err := db.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
	}
	cst := db.CheckpointStats()
	live := db.LogLiveBytes()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	final := make(map[uint64]int64)
	tbl.Range(func(k uint64, r *storage.Row) bool {
		final[k] = tbl.Schema.GetInt64(r.Entry.CurrentData(), 0)
		return true
	})

	if cst.Truncations == 0 || cst.TruncatedBytes == 0 {
		t.Fatalf("no truncation after 8 checkpointed rounds: %+v", cst)
	}
	var onDisk int64
	truncated := false
	for p := 0; p < parts; p++ {
		segs, err := wal.ListSegments(walDir, p)
		if err != nil || len(segs) == 0 {
			t.Fatalf("partition %d segments: %v %v", p, segs, err)
		}
		if segs[0].FirstSeq > 1 {
			truncated = true
		}
		for _, s := range segs {
			onDisk += s.Bytes
		}
	}
	if !truncated {
		t.Fatalf("%d truncations reported but every partition still holds seq 1", cst.Truncations)
	}
	if onDisk != live {
		t.Fatalf("LiveBytes %d disagrees with on-disk segment bytes %d", live, onDisk)
	}

	tbl2, st := recoverLifecycle(t, cfg)
	requireImages(t, tbl2, final)
	if st.Checkpoints != parts {
		t.Fatalf("stats %+v", st)
	}

	fullCfg := core.Bamboo()
	fullCfg.Partitions = parts
	fdb := core.NewDB(fullCfg)
	defer fdb.Close()
	loadXfer(t, fdb)
	if _, err := fdb.ReplayDir(walDir, false); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("full replay of truncated logs: err = %v, want ErrCorrupt", err)
	}
}

// TestCheckpointConcurrentWithWriters runs the background checkpointer at
// a tight interval underneath a live transfer workload: fuzzy snapshots
// are taken while commits are in flight, and whichever snapshot recovery
// lands on, replaying the suffix must conserve every partition's total —
// the end-to-end form of the committed-images-only contract.
func TestCheckpointConcurrentWithWriters(t *testing.T) {
	const parts = 2
	walDir := filepath.Join(t.TempDir(), "wal")
	ckptDir := filepath.Join(t.TempDir(), "ckpt")
	cfg := lifecycleCfg(walDir, ckptDir, parts, true)
	cfg.Checkpoint.Interval = 5 * time.Millisecond

	db := core.NewDB(cfg)
	tbl := loadXfer(t, db)
	per := partitionKeys(tbl, parts)
	db.StartCheckpointer()
	perWorker := 400
	if testing.Short() {
		perWorker = 100
	}
	if res := core.RunN(core.NewLockEngine(db), 4, perWorker, xferGen(tbl, per)); res.Err != nil {
		t.Fatal(res.Err)
	}
	// On a 1-CPU -race run the short workload can finish before the
	// ticker goroutine is ever scheduled; the checkpointer keeps running
	// until Close, so give it a bounded window to take its round.
	cst := db.CheckpointStats()
	for wait := 0; cst.Checkpoints == 0 && wait < 400; wait++ {
		time.Sleep(5 * time.Millisecond)
		cst = db.CheckpointStats()
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if cst.Checkpoints == 0 {
		t.Fatalf("background checkpointer never ran: %+v", cst)
	}
	if cst.Errors != 0 {
		t.Fatalf("background rounds failed: %+v", cst)
	}

	tbl2, st := recoverLifecycle(t, cfg)
	sums, counts := partitionSums(tbl2, parts)
	var total int64
	for p := 0; p < parts; p++ {
		total += sums[p]
		if counts[p] == 0 {
			t.Fatalf("partition %d lost its rows", p)
		}
	}
	if want := int64(xferRows * xferInitial); total != want {
		t.Fatalf("total %d, want %d (stats %+v)", total, want, st)
	}
}

// TestCheckpointRequiresWALDir pins the guard: a checkpoint config with
// no file-backed WAL is a programming error, not a silent no-op.
func TestCheckpointRequiresWALDir(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDB accepted Checkpoint without WALDir")
		}
	}()
	cfg := core.Bamboo()
	cfg.Checkpoint.Dir = t.TempDir()
	core.NewDB(cfg)
}

// TestCheckpointNowDisabled pins the API error for a non-checkpoint DB.
func TestCheckpointNowDisabled(t *testing.T) {
	db := core.NewDB(core.Bamboo())
	defer db.Close()
	if err := db.CheckpointNow(); err == nil {
		t.Fatal("CheckpointNow on a checkpoint-less DB must error")
	}
	if st := db.CheckpointStats(); st != (core.CheckpointStats{}) {
		t.Fatalf("stats %+v", st)
	}
	db.StartCheckpointer() // must be a harmless no-op
}
