package core_test

import (
	"testing"

	"bamboo/internal/core"
	"bamboo/internal/stats"
	"bamboo/internal/workload/ycsb"
)

// benchCommit drives the full single-session commit path — lock
// acquisition, private write-image copy (served from the recycled-image
// pool in steady state), WAL encode+append, version install, release —
// one committed YCSB transaction per benchmark op, on the same
// medium-contention profile the alloc-budget gates measure. Run with
// -benchmem: the CI alloc-gate job parses allocs/op and B/op from
// BenchmarkCommit and fails on regression (see .github/workflows/ci.yml).
func benchCommit(b *testing.B, cfg core.Config) {
	db := core.NewDB(cfg)
	defer db.Close()
	w, err := ycsb.Load(db, ycsb.Config{
		Rows: 20000, OpsPerTxn: 16, Theta: 0.6, ReadRatio: 0.5,
		Columns: 10, ColumnBytes: 100,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng := core.NewLockEngine(db)
	sess := eng.NewSession(0, &stats.Collector{})
	gen := w.Generator()
	const txns = 512
	fns := make([]core.TxnFunc, txns)
	for i := range fns {
		fns[i] = gen(0, i)
	}
	// Warm up: grow the session scratch, histogram and image pool to
	// steady state so the measured ops see the recycled-buffer path.
	for i := 0; i < txns; i++ {
		if err := sess.Run(fns[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sess.Run(fns[i%txns]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCommit(b *testing.B) { benchCommit(b, core.Bamboo()) }

func BenchmarkCommitWoundWait(b *testing.B) { benchCommit(b, core.WoundWait()) }
