package core_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"bamboo/internal/core"
	"bamboo/internal/stats"
	"bamboo/internal/storage"
	"bamboo/internal/verify/verifytest"
	"bamboo/internal/wal"
)

func newCollector() *stats.Collector { return &stats.Collector{} }

// protocolConfigs enumerates every lock-based configuration under test.
func protocolConfigs() map[string]core.Config {
	return map[string]core.Config{
		"BAMBOO":       core.Bamboo(),
		"BAMBOO-base":  core.BambooBase(),
		"BAMBOO-noopt": {Variant: core.Bamboo().Variant, RetireWrites: true}, // no O1–O4
		"WOUND_WAIT":   core.WoundWait(),
		"WAIT_DIE":     core.WaitDie(),
		"NO_WAIT":      core.NoWait(),
		"WW-dynTS":     {Variant: core.WoundWait().Variant, DynamicTS: true},
	}
}

func TestSerializabilityAllProtocols(t *testing.T) {
	for name, cfg := range protocolConfigs() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg.CaptureReads = true
			db := core.NewDB(cfg)
			verifytest.RunSerializability(t, core.NewLockEngine(db), verifytest.DefaultOptions())
		})
	}
}

func TestSerializabilityHighContention(t *testing.T) {
	// A 2-row table maximizes dirty-read chains and cascades for Bamboo.
	for _, name := range []string{"BAMBOO", "BAMBOO-base"} {
		cfg := protocolConfigs()[name]
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg.CaptureReads = true
			db := core.NewDB(cfg)
			opts := verifytest.DefaultOptions()
			opts.Rows = 2
			opts.OpsPerTxn = 2
			opts.WriteRatio = 0.8
			opts.Workers = 12
			opts.PerWorker = 200
			verifytest.RunSerializability(t, core.NewLockEngine(db), opts)
		})
	}
}

func TestBankConservationAllProtocols(t *testing.T) {
	for name, cfg := range protocolConfigs() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			db := core.NewDB(cfg)
			verifytest.RunBankConservation(t, core.NewLockEngine(db), 10, 8, 150)
		})
	}
}

func testTable(db *core.DB, rows int) *storage.Table {
	schema := storage.NewSchema("t",
		storage.Column{Name: "v", Type: storage.ColInt64})
	tbl := db.Catalog.MustCreateTable(schema, rows)
	for k := 0; k < rows; k++ {
		tbl.MustInsertRow(uint64(k), nil)
	}
	return tbl
}

func TestUserAbortIsFinalAndRollsBack(t *testing.T) {
	db := core.NewDB(core.Bamboo())
	tbl := testTable(db, 1)
	e := core.NewLockEngine(db)

	calls := 0
	res := core.RunN(e, 1, 1, func(_, _ int) core.TxnFunc {
		return func(tx core.Tx) error {
			calls++
			if err := tx.Update(tbl.Get(0), func(img []byte) {
				tbl.Schema.SetInt64(img, 0, 99)
			}); err != nil {
				return err
			}
			return core.ErrUserAbort
		}
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if calls != 1 {
		t.Fatalf("user abort retried: %d calls", calls)
	}
	if res.Report.Commits != 0 || res.Report.Aborts != 1 {
		t.Fatalf("commits=%d aborts=%d, want 0/1", res.Report.Commits, res.Report.Aborts)
	}
	if got := tbl.Schema.GetInt64(tbl.Get(0).Entry.CurrentData(), 0); got != 0 {
		t.Fatalf("value = %d after user abort, want rollback to 0", got)
	}
	if res.Report.AbortsBy["user"] != 1 {
		t.Fatalf("aborts by cause = %v, want user:1", res.Report.AbortsBy)
	}
}

// TestUpgradeReadThenUpdate covers the un-annotated read-modify-write
// shape on every lock-based protocol: read a row, then update it based on
// the value read. The executor upgrades the shared lock in place.
func TestUpgradeReadThenUpdate(t *testing.T) {
	for name, cfg := range protocolConfigs() {
		t.Run(name, func(t *testing.T) {
			db := core.NewDB(cfg)
			tbl := testTable(db, 1)
			e := core.NewLockEngine(db)
			sess := e.NewSession(0, newCollector())
			err := sess.Run(func(tx core.Tx) error {
				img, err := tx.Read(tbl.Get(0))
				if err != nil {
					return err
				}
				seen := tbl.Schema.GetInt64(img, 0)
				return tx.Update(tbl.Get(0), func(img []byte) {
					tbl.Schema.SetInt64(img, 0, seen+41)
				})
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := tbl.Schema.GetInt64(tbl.Get(0).Entry.CurrentData(), 0); got != 41 {
				t.Fatalf("value = %d, want 41", got)
			}
		})
	}
}

// TestUpgradeConcurrentIncrements is the classic upgrade lost-update
// test: many workers read a counter and then update it through an SH→EX
// upgrade. Two readers of the same value upgrading concurrently must
// serialize (the younger aborts and retries on the fresh value), so the
// final counter equals the committed increment count exactly.
func TestUpgradeConcurrentIncrements(t *testing.T) {
	for name, cfg := range protocolConfigs() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			// Jittered retry backoff: No-Wait upgrade conflicts are
			// symmetric (both readers fail), and without it two workers
			// can chase each other in lockstep.
			cfg.AbortBackoffMax = 200 * time.Microsecond
			db := core.NewDB(cfg)
			tbl := testTable(db, 1)
			e := core.NewLockEngine(db)
			const workers, perWorker = 8, 100
			res := core.RunN(e, workers, perWorker, func(_, _ int) core.TxnFunc {
				return func(tx core.Tx) error {
					img, err := tx.Read(tbl.Get(0))
					if err != nil {
						return err
					}
					seen := tbl.Schema.GetInt64(img, 0)
					return tx.Update(tbl.Get(0), func(img []byte) {
						tbl.Schema.SetInt64(img, 0, seen+1)
					})
				}
			})
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			want := int64(workers * perWorker)
			if got := tbl.Schema.GetInt64(tbl.Get(0).Entry.CurrentData(), 0); got != want {
				t.Fatalf("counter = %d, want %d (lost update through an upgrade)", got, want)
			}
		})
	}
}

// TestUpgradeThenRetireVisible checks the Bamboo-specific composition:
// an upgraded write retires like a declared one, making the dirty value
// visible to a dependent reader before the writer commits.
func TestUpgradeThenRetireVisible(t *testing.T) {
	db := core.NewDB(core.BambooBase()) // every write retires eagerly
	tbl := testTable(db, 1)
	e := core.NewLockEngine(db)
	sess := e.NewSession(0, newCollector())
	if err := sess.Run(func(tx core.Tx) error {
		if _, err := tx.Read(tbl.Get(0)); err != nil {
			return err
		}
		return tx.Update(tbl.Get(0), func(img []byte) {
			tbl.Schema.SetInt64(img, 0, 7)
		})
	}); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Schema.GetInt64(tbl.Get(0).Entry.CurrentData(), 0); got != 7 {
		t.Fatalf("value = %d, want 7", got)
	}
}

// TestUpgradeSerializability runs the randomized history checker with a
// read-modify-write fraction so upgrade interleavings (wounds mid-wait,
// cascades through upgraded writers, upgrade-upgrade conflicts) are
// covered by the full serializability oracle.
func TestUpgradeSerializability(t *testing.T) {
	for name, cfg := range protocolConfigs() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg.CaptureReads = true
			db := core.NewDB(cfg)
			opts := verifytest.DefaultOptions()
			opts.RMWRatio = 0.5
			verifytest.RunSerializability(t, core.NewLockEngine(db), opts)
		})
	}
}

func TestRepeatedUpdateSameRowWithinWindow(t *testing.T) {
	// With declared ops and δ, the executor holds back the last writes,
	// so a second Update of the same row inside the unretired window
	// mutates the same private copy.
	cfg := core.Bamboo()
	cfg.Delta = 1.0 // retire nothing eagerly
	db := core.NewDB(cfg)
	tbl := testTable(db, 1)
	e := core.NewLockEngine(db)
	sess := e.NewSession(0, newCollector())
	err := sess.Run(func(tx core.Tx) error {
		tx.DeclareOps(2)
		for i := 0; i < 2; i++ {
			if err := tx.Update(tbl.Get(0), func(img []byte) {
				tbl.Schema.AddInt64(img, 0, 5)
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Schema.GetInt64(tbl.Get(0).Entry.CurrentData(), 0); got != 10 {
		t.Fatalf("value = %d, want 10", got)
	}
}

func TestSecondWriteAfterRetireIsFatal(t *testing.T) {
	db := core.NewDB(core.BambooBase()) // every write retires eagerly
	tbl := testTable(db, 1)
	e := core.NewLockEngine(db)
	sess := e.NewSession(0, newCollector())
	err := sess.Run(func(tx core.Tx) error {
		tx.DeclareOps(2)
		if err := tx.Update(tbl.Get(0), func([]byte) {}); err != nil {
			return err
		}
		return tx.Update(tbl.Get(0), func([]byte) {})
	})
	if err == nil || !strings.Contains(err.Error(), "retired") {
		t.Fatalf("err = %v, want retired-row write rejection", err)
	}
}

func TestInsertVisibleAfterCommit(t *testing.T) {
	db := core.NewDB(core.Bamboo())
	tbl := testTable(db, 1)
	e := core.NewLockEngine(db)
	sess := e.NewSession(0, newCollector())

	img := tbl.Schema.NewRowImage()
	tbl.Schema.SetInt64(img, 0, 7)
	if err := sess.Run(func(tx core.Tx) error {
		return tx.Insert(tbl, 100, img)
	}); err != nil {
		t.Fatal(err)
	}
	row := tbl.Get(100)
	if row == nil {
		t.Fatal("inserted row not found after commit")
	}
	if got := tbl.Schema.GetInt64(row.Entry.CurrentData(), 0); got != 7 {
		t.Fatalf("inserted value = %d, want 7", got)
	}

	// Aborted inserts never become visible.
	if err := sess.Run(func(tx core.Tx) error {
		if err := tx.Insert(tbl, 101, tbl.Schema.NewRowImage()); err != nil {
			return err
		}
		return core.ErrUserAbort
	}); err != nil {
		t.Fatal(err)
	}
	if tbl.Get(101) != nil {
		t.Fatal("aborted insert became visible")
	}
}

func TestWALRecordsCommittedWrites(t *testing.T) {
	dev := wal.NewMemDevice(true)
	cfg := core.Bamboo()
	cfg.LogDevice = dev
	db := core.NewDB(cfg)
	tbl := testTable(db, 2)
	e := core.NewLockEngine(db)
	sess := e.NewSession(0, newCollector())

	if err := sess.Run(func(tx core.Tx) error {
		return tx.Update(tbl.Get(1), func(img []byte) {
			tbl.Schema.SetInt64(img, 0, 42)
		})
	}); err != nil {
		t.Fatal(err)
	}
	recs, err := dev.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("wal has %d records, want 1", len(recs))
	}
	w := recs[0].Writes
	if len(w) != 1 || w[0].Table != "t" || w[0].Key != 1 {
		t.Fatalf("record writes = %+v", w)
	}
	if got := tbl.Schema.GetInt64(w[0].Image, 0); got != 42 {
		t.Fatalf("logged image value = %d, want 42", got)
	}

	// Read-only transactions log nothing.
	if err := sess.Run(func(tx core.Tx) error {
		_, err := tx.Read(tbl.Get(0))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if dev.Len() != 1 {
		t.Fatalf("wal grew on read-only commit: %d records", dev.Len())
	}
}

func TestProtocolNames(t *testing.T) {
	cases := map[string]core.Config{
		"BAMBOO":      core.Bamboo(),
		"BAMBOO-base": core.BambooBase(),
		"WOUND_WAIT":  core.WoundWait(),
		"WAIT_DIE":    core.WaitDie(),
		"NO_WAIT":     core.NoWait(),
	}
	for want, cfg := range cases {
		if got := core.NewDB(cfg).ProtocolName(); got != want {
			t.Errorf("ProtocolName = %q, want %q", got, want)
		}
	}
}

func TestFatalErrorPropagates(t *testing.T) {
	db := core.NewDB(core.Bamboo())
	e := core.NewLockEngine(db)
	sess := e.NewSession(0, newCollector())
	boom := errors.New("boom")
	if err := sess.Run(func(tx core.Tx) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}
