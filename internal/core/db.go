// Package core implements the paper's primary contribution: the Bamboo
// transaction executor (Algorithm 1) over the lock table of
// internal/lock, together with the 2PL baselines that share the same code
// path (Wound-Wait, Wait-Die, No-Wait).
//
// The package exposes the engine-neutral interfaces (Engine, Session, Tx,
// TxnFunc) that the workloads and the benchmark harness program against,
// so that the OCC baseline (internal/occ) and the interactive-mode wrapper
// (internal/rpcsim) are drop-in replacements.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bamboo/internal/adaptive"
	"bamboo/internal/lock"
	"bamboo/internal/stats"
	"bamboo/internal/storage"
	"bamboo/internal/telemetry"
	"bamboo/internal/txn"
	"bamboo/internal/wal"
)

// ErrUserAbort is returned by transaction logic to request a final,
// user-initiated abort (paper §4.1 case 3, e.g. TPC-C's 1% rollbacks).
// The session aborts the transaction and does not retry it.
var ErrUserAbort = errors.New("core: user-initiated abort")

// Config selects the protocol variant and Bamboo's optimization toggles.
type Config struct {
	// Variant is the lock-table discipline.
	Variant lock.Variant

	// RetireWrites enables early lock retiring for writes (Bamboo's core
	// mechanism). Disabled it degenerates Bamboo to Wound-Wait (§3.4).
	RetireWrites bool
	// RetireReads is Optimization 1 (reads retire at grant).
	RetireReads bool
	// NoWoundRead is Optimization 3 (reads never wound).
	NoWoundRead bool
	// DynamicTS is Optimization 4 (timestamp on first conflict).
	DynamicTS bool
	// Delta is Optimization 2: writes in the last Delta fraction of a
	// transaction's declared accesses are not retired eagerly (they are
	// still retired adaptively if the transaction ends up commit-waiting
	// longer than Delta of its execution time). The paper uses 0.15.
	Delta float64

	// Partitions is the storage partition count workload loaders create
	// their tables with (TPC-C ranges by warehouse, YCSB hashes by key)
	// and the size of the per-partition access/conflict counters the
	// executor feeds. 0 or 1 keeps the flat single-partition layout — the
	// pre-partitioning behavior, bit for bit.
	Partitions int

	// AbortBackoffMax bounds the randomized retry backoff after an abort
	// (DBx1000's ABORT_PENALTY). Zero disables backoff on the lock-engine
	// path; the IC3/chop executor instead falls back to a small default
	// (see chop.Session.retryBackoff), where the jitter is a liveness
	// requirement rather than a tuning option.
	AbortBackoffMax time.Duration

	// ManualRetire disables the executor's automatic write retiring;
	// retire points are then chosen by the caller through the Retirer
	// interface. Used by the §3.3 program-analysis package, which
	// synthesizes retire conditions.
	ManualRetire bool

	// CaptureReads makes Update record the pre-mutation image so the
	// serializability verifier can extract read observations. Off for
	// benchmarks.
	CaptureReads bool

	// LogDevice overrides the WAL device (nil = in-memory, not recording).
	// It only applies to the single-partition, in-memory layout: a
	// partitioned DB owns one device per partition and a WALDir-backed DB
	// owns its file devices, so NewDB panics on either combination to
	// fail loudly.
	LogDevice wal.Device

	// GroupCommit batches commit-record device writes through the WAL's
	// epoch-based group committer: committing workers block until the
	// epoch containing their record is durable, and one device write
	// covers the whole batch. Off (the default) keeps the paper's
	// per-transaction append. With Partitions > 1 every partition log
	// gets its own flusher.
	GroupCommit bool
	// GroupCommitInterval is the epoch accumulation window; zero flushes
	// as soon as the flusher sees pending records (piggyback batching).
	// Only meaningful with GroupCommit set.
	GroupCommitInterval time.Duration

	// WALDir, when set, puts the commit log on real files: one
	// append-only log per storage partition under this directory
	// (wal.FileDevice at wal.PartitionLogPath), opened without
	// truncation. Empty keeps the in-memory devices. DB.Close syncs and
	// closes the files; DB.ReplayDir rebuilds state from such a
	// directory after a crash.
	WALDir string
	// WALFsync selects when the file devices fsync (per batch, per
	// interval, or never); only meaningful with WALDir set.
	WALFsync wal.FsyncPolicy
	// WALFsyncInterval is the window for wal.FsyncInterval.
	WALFsyncInterval time.Duration

	// Checkpoint configures the storage lifecycle — fuzzy checkpoints
	// and WAL truncation (see CheckpointConfig). Requires WALDir and
	// switches the log files to the segmented layout; the zero value
	// (disabled) keeps the single-file layout bit for bit.
	Checkpoint CheckpointConfig

	// MVCC enables the multi-version read path: commits install their
	// after-images into per-row version chains, and transactions marked
	// read-only (core.MarkReadOnly) execute at a snapshot timestamp with
	// zero lock acquisitions, zero aborts and zero steady-state
	// allocations. Versions are volatile — only the newest committed
	// image is logged and checkpointed, so recovery is unchanged. Off
	// (the default) keeps the locking path statement-identical to the
	// pre-MVCC engine.
	MVCC bool
	// MVCCPruneInterval is the background version-pruner tick: each tick
	// advances the reclaim watermark (what install-time node reuse keys
	// off), and every few ticks sweeps cold rows' chains. Zero defaults
	// to 2ms. Only meaningful with MVCC.
	MVCCPruneInterval time.Duration

	// Adaptive enables runtime contention control (Bamboo variants only;
	// ignored otherwise): a background feedback engine samples per-entry
	// and per-partition conflict rates and switches the retire policy per
	// entry — early release on entries classified hot, wound-wait-style
	// plain grants on cold ones — plus batched reader grants on hot
	// entries. Off (the default) keeps the locking path statement-
	// identical to the static engine: the policy word is never read.
	Adaptive bool
	// AdaptiveInterval is the feedback engine's sampling tick; zero
	// defaults to adaptive.DefaultInterval. Only meaningful with Adaptive.
	AdaptiveInterval time.Duration

	// MetricsAddr, when non-empty, serves the live telemetry endpoints
	// (/metrics Prometheus text exposition, /debug/vars JSON, /healthz)
	// on this address for the DB's lifetime; ":0" binds a free port
	// (DB.MetricsAddr returns the bound address). The DB owns a
	// telemetry.Registry, started in NewDB and stopped in Close. NewDB
	// panics if the address cannot be bound — a DB whose operator asked
	// for observability and silently lost it must not come up. Empty
	// (the default) disables the endpoint and keeps the hot path free of
	// atomic mirror writes; to share one registry (and port) across
	// several DBs, leave this empty and call DB.EnableMetrics instead.
	MetricsAddr string
	// MetricsInterval is the periodic rate-collector tick (aborts/sec
	// etc. are derived from successive counter samples outside the hot
	// path); zero defaults to telemetry.DefaultCollectInterval. Only
	// meaningful with MetricsAddr.
	MetricsInterval time.Duration
}

// Bamboo returns the paper's full configuration: all four optimizations
// with δ = 0.15.
func Bamboo() Config {
	return Config{
		Variant:      lock.Bamboo,
		RetireWrites: true,
		RetireReads:  true,
		NoWoundRead:  true,
		DynamicTS:    true,
		Delta:        0.15,
	}
}

// BambooBase is Bamboo without Optimization 2 (every write retires
// eagerly) — the BAMBOO-base line of Figures 4 and 5.
func BambooBase() Config {
	c := Bamboo()
	c.Delta = 0
	return c
}

// WoundWait, WaitDie and NoWait return baseline 2PL configurations.
func WoundWait() Config { return Config{Variant: lock.WoundWait} }

// WaitDie returns the Wait-Die 2PL baseline configuration.
func WaitDie() Config { return Config{Variant: lock.WaitDie} }

// NoWait returns the No-Wait 2PL baseline configuration.
func NoWait() Config { return Config{Variant: lock.NoWait} }

// DB is a database instance: catalog, lock manager, log and the protocol
// configuration. One DB hosts one protocol at a time.
type DB struct {
	Catalog *storage.Catalog
	Lock    *lock.Manager
	// Log is partition 0's log — the full shared-log API, and the only
	// log of the single-partition layout (bit for bit the
	// pre-partitioning commit path). Engines that are not
	// partition-aware (Silo, IC3) append their whole records here.
	Log *wal.Log
	// PLog is the partition-routed durability pipeline: one group
	// committer + device per storage partition. The lock engine routes
	// each commit record's writes to their owning partition's log.
	PLog   *wal.PartitionedLog
	Global *stats.Global

	// Snap coordinates MVCC snapshot timestamps (in-flight commit
	// windows, active snapshots, the reclaim watermark). Nil — a single
	// pointer test on the commit path — when MVCC is off.
	Snap *txn.SnapshotTable

	cfg      Config
	txnIDs   atomic.Uint64
	onCommit OnCommitHook
	pruner   *pruner

	// adapt is the contention-control feedback engine; nil when adaptive
	// mode is off, which is also the executor's hot-path gate (a single
	// pointer test) for the per-entry access/conflict recording.
	adapt *adaptive.Engine

	// live is the atomic telemetry mirror every session's collector
	// writes through when metrics are enabled (nil otherwise — the
	// collectors then pay one nil check per record and nothing else).
	live        *stats.Live
	metrics     *telemetry.Registry
	metricsSrc  *telemetry.Sources
	ownMetrics  bool
	metricsAddr string

	// ckptGate closes the fuzzy-checkpoint race: commit windows hold it
	// shared from log append through lock release, and the checkpointer
	// takes it exclusively — only for the instant it reads the partition
	// sequence — so a checkpoint LSN never lands between "record durable
	// at seq" and "effects installed". Nil (a single pointer test on the
	// commit path) when checkpoints are disabled.
	ckptGate *sync.RWMutex
	ckpt     *checkpointer
}

// NewDB creates a database with the given protocol configuration.
func NewDB(cfg Config) *DB {
	db := &DB{
		Catalog: storage.NewCatalog(),
		Global:  &stats.Global{},
		cfg:     cfg,
	}
	// Partition telemetry only for actually-partitioned runs: with the
	// flat layout every worker would hammer one shared counter cacheline
	// per row access, perturbing exactly the single-partition baselines
	// that must stay bit-for-bit comparable. RecordPartAccess no-ops on
	// the empty slice. Adaptive mode opts in even on the flat layout
	// (like EnableMetrics): without the counters the feedback engine's
	// partition classifier is blind on unpartitioned tables.
	adaptiveOn := cfg.Adaptive && cfg.Variant == lock.Bamboo
	if cfg.Partitions > 1 || adaptiveOn {
		db.Global.InitPartitions(db.Partitions())
	}
	lockCfg := lock.Config{
		Variant:     cfg.Variant,
		RetireReads: cfg.Variant == lock.Bamboo && cfg.RetireReads,
		NoWoundRead: cfg.Variant == lock.Bamboo && cfg.NoWoundRead,
		DynamicTS:   cfg.DynamicTS,
		OnWound:     db.Global.RecordWound,
		OnCascade:   db.Global.RecordCascade,
		// Superseded committed images are recycled into the write path's
		// buffer pool only when nothing outside the lock entry can still
		// reference them: MVCC version chains adopt every committed image
		// (their own displaced nodes are harvested separately in
		// installVersions), and CaptureReads hands read images to the
		// verifier, which retains them past release. SetOnCommit also
		// disables recycling at runtime for the same reason.
		RecycleImages: !cfg.MVCC && !cfg.CaptureReads,
	}
	if adaptiveOn {
		lockCfg.Adaptive = true
		lockCfg.OnBatchedGrant = db.Global.RecordBatchedGrant
	}
	db.Lock = lock.NewManager(lockCfg)
	if adaptiveOn {
		db.adapt = adaptive.New(
			adaptive.Config{Interval: cfg.AdaptiveInterval},
			adaptive.Source{Global: db.Global},
		)
		db.adapt.Start()
	}
	db.PLog = wal.NewPartitioned(db.walDevices(), cfg.GroupCommit, cfg.GroupCommitInterval)
	db.Log = db.PLog.Log(0)
	if cfg.Checkpoint.Enabled() {
		db.ckptGate = &sync.RWMutex{}
		db.ckpt = newCheckpointer(db)
	}
	if cfg.MVCC {
		db.Catalog.SetMVCC(true)
		db.Snap = txn.NewSnapshotTable()
		db.pruner = startPruner(db)
	}
	if cfg.MetricsAddr != "" {
		reg := telemetry.NewRegistry()
		reg.StartCollector(cfg.MetricsInterval)
		addr, err := reg.Serve(cfg.MetricsAddr)
		if err != nil {
			panic(fmt.Sprintf("core: serve metrics on %s: %v", cfg.MetricsAddr, err))
		}
		db.ownMetrics = true
		db.metricsAddr = addr
		db.EnableMetrics(reg)
	}
	return db
}

// EnableMetrics attaches this DB's counters to reg, making it a live
// scrape source: the sessions' stats collectors start mirroring into an
// atomic stats.Live, and per-partition counters are initialized even on
// the flat single-partition layout (the mirror is opt-in, so the
// shared-cacheline cost the plain bench path avoids is accepted here).
// Call before any NewSession — sessions created earlier keep a nil
// mirror and their transactions stay invisible to the endpoint. No-op on
// a nil registry or a DB that already has one. Close detaches.
func (db *DB) EnableMetrics(reg *telemetry.Registry) {
	if reg == nil || db.metrics != nil {
		return
	}
	if db.Global.NumPartitions() == 0 {
		db.Global.InitPartitions(db.Partitions())
	}
	db.live = &stats.Live{}
	db.metrics = reg
	db.metricsSrc = &telemetry.Sources{
		Protocol: db.ProtocolName(),
		Live:     db.live,
		Global:   db.Global,
		WAL:      db.WALStats,
		Lifecycle: func() telemetry.LifecycleStats {
			cs := db.CheckpointStats()
			return telemetry.LifecycleStats{
				Checkpoints:    cs.Checkpoints,
				CheckpointTime: cs.Time,
				Truncations:    cs.Truncations,
				TruncatedBytes: cs.TruncatedBytes,
				LogLiveBytes:   db.LogLiveBytes(),
			}
		},
	}
	reg.Attach(db.metricsSrc)
}

// AdaptiveEngine returns the contention-control feedback engine, or nil
// when adaptive mode is off (tests and the bench harness inspect it).
func (db *DB) AdaptiveEngine() *adaptive.Engine { return db.adapt }

// LiveStats returns the atomic telemetry mirror sessions record into, or
// nil when metrics are disabled. Engines outside this package pass it to
// their collectors via stats.Collector.AttachLive.
func (db *DB) LiveStats() *stats.Live { return db.live }

// Metrics returns the attached telemetry registry (nil when disabled).
func (db *DB) Metrics() *telemetry.Registry { return db.metrics }

// MetricsAddr returns the bound address of the DB-owned metrics endpoint
// ("" when Config.MetricsAddr was empty — including when metrics were
// enabled on a shared registry, whose address the caller already knows).
func (db *DB) MetricsAddr() string { return db.metricsAddr }

// walDevices builds one log device per storage partition. The
// single-partition layout keeps the original semantics exactly: the
// caller's LogDevice, or a recording in-memory device. Partitioned
// layouts get file devices under WALDir, or non-recording in-memory
// devices (the benchmark configuration — serialization cost without
// unbounded history). NewDB panics on device-open failure: a DB that
// silently lost its durability directory must not come up.
func (db *DB) walDevices() []wal.Device {
	n := db.Partitions()
	if db.cfg.WALDir != "" && db.cfg.LogDevice != nil {
		panic("core: Config.LogDevice and Config.WALDir are mutually exclusive")
	}
	if db.cfg.Checkpoint.Enabled() && db.cfg.WALDir == "" {
		panic("core: Config.Checkpoint requires Config.WALDir (checkpoints stamp and truncate file-backed logs)")
	}
	if db.cfg.WALDir != "" {
		var files []*wal.FileDevice
		var err error
		if db.cfg.Checkpoint.Enabled() {
			// The lifecycle layout: segmented logs, so truncation can
			// unlink whole prefix files.
			files, err = wal.OpenPartitionSegmentedDevices(db.cfg.WALDir, n,
				db.cfg.WALFsync, db.cfg.WALFsyncInterval, db.cfg.Checkpoint.SegmentBytes)
		} else {
			files, err = wal.OpenPartitionDevices(db.cfg.WALDir, n, db.cfg.WALFsync, db.cfg.WALFsyncInterval)
		}
		if err != nil {
			panic(fmt.Sprintf("core: open WAL dir %s: %v", db.cfg.WALDir, err))
		}
		devs := make([]wal.Device, n)
		for i, f := range files {
			devs[i] = f
		}
		return devs
	}
	if n == 1 {
		return []wal.Device{db.cfg.LogDevice}
	}
	if db.cfg.LogDevice != nil {
		panic("core: Config.LogDevice is single-partition only; use WALDir for partitioned logs")
	}
	devs := make([]wal.Device, n)
	for i := range devs {
		devs[i] = wal.NewMemDevice(false)
	}
	return devs
}

// Close stops the checkpointer (if started), drains and stops every
// partition's group-commit flusher and syncs+closes file-backed log
// devices. Safe to call on any DB; required when GroupCommit, WALDir or
// checkpointing is enabled.
func (db *DB) Close() error {
	if db.adapt != nil {
		db.adapt.Stop()
	}
	if db.ckpt != nil {
		db.ckpt.stop()
	}
	if db.pruner != nil {
		db.pruner.stop()
	}
	if db.metrics != nil {
		// Detach is conditional (only if this DB is still the attached
		// source) so closing an old DB never silences a newer one that
		// re-attached the shared registry.
		db.metrics.Detach(db.metricsSrc)
		if db.ownMetrics {
			db.metrics.Close()
		}
		db.metrics, db.metricsSrc = nil, nil
	}
	return db.PLog.Close()
}

// WALStats sums the durability telemetry of every partition log device:
// records and bytes appended, device write operations (what group commit
// amortizes) and fsync count/time (what a real device charges).
func (db *DB) WALStats() wal.DeviceStats { return db.PLog.Stats() }

// Config returns the DB's protocol configuration.
func (db *DB) Config() Config { return db.cfg }

// Partitions returns the configured storage partition count, normalized
// to ≥ 1. Workload loaders create their tables with this many partitions.
func (db *DB) Partitions() int {
	if db.cfg.Partitions < 1 {
		return 1
	}
	return db.cfg.Partitions
}

// PartitionOf returns the partition id tbl routes key to — the key→
// partition routing hook a multi-node dispatcher would use to pick an
// execution site.
func (db *DB) PartitionOf(tbl *storage.Table, key uint64) int {
	return tbl.PartitionFor(key)
}

// ProtocolName returns the display name used in reports, matching the
// paper's legends.
func (db *DB) ProtocolName() string {
	if db.cfg.Variant == lock.Bamboo {
		if db.cfg.Delta == 0 {
			return "BAMBOO-base"
		}
		return "BAMBOO"
	}
	return db.cfg.Variant.String()
}

// NextTxnID draws a fresh transaction id.
func (db *DB) NextTxnID() uint64 { return db.txnIDs.Add(1) }

// Engine abstracts a concurrency-control engine so workloads and the
// bench harness can drive Bamboo, the 2PL baselines, Silo and the
// interactive-mode wrapper identically.
type Engine interface {
	// Name is the protocol display name.
	Name() string
	// NewSession creates a per-worker session reporting into col.
	NewSession(worker int, col *stats.Collector) Session
	// Database returns the underlying DB (catalog access for workloads).
	Database() *DB
}

// Session executes logical transactions for one worker.
type Session interface {
	// Run executes fn as one logical transaction, retrying aborted
	// attempts until it commits or aborts finally (user abort). The
	// returned error is nil for commits and user aborts; anything else is
	// a programming error that poisons the run.
	Run(fn TxnFunc) error
}

// TxnFunc is the body of a transaction.
type TxnFunc func(tx Tx) error

// Tx is the operation interface transaction bodies use. Implementations:
// the lock-based executor here, the Silo executor in internal/occ, the
// IC3 piece executor in internal/chop, and the latency-charging wrapper
// in internal/rpcsim.
type Tx interface {
	// Read returns the image of row visible to this transaction. The
	// caller must not mutate it, and must not retain it past the end of
	// the transaction body: once the transaction releases its locks the
	// engine may recycle the image's storage for a later write.
	Read(row *storage.Row) ([]byte, error)
	// Update applies mutate to this transaction's private copy of row. A
	// row this transaction previously Read is upgraded SH→EX in place
	// (un-annotated read-modify-write), so workloads need not declare
	// read vs. write intent up front.
	Update(row *storage.Row, mutate func(img []byte)) error
	// Insert buffers a row insert that becomes visible at commit.
	Insert(tbl *storage.Table, key uint64, img []byte) error
	// DeclareOps tells the executor how many row accesses the transaction
	// will perform; Bamboo's Optimization 2 (δ) needs it. Zero (never
	// declared) means "retire everything", which matches the paper's
	// interactive mode where every write is treated as the last write.
	DeclareOps(n int)
	// Worker returns the worker index of the owning session (workload
	// generators key per-worker state off it).
	Worker() int
	// ID returns the logical transaction id (stable across retries).
	ID() uint64
}

// fatalf wraps a programming error so sessions can distinguish it from
// protocol aborts.
func fatalf(format string, args ...any) error {
	return fmt.Errorf("core: fatal: "+format, args...)
}
