package core

import (
	"sync"
	"time"

	"bamboo/internal/stats"
)

// RunResult is the outcome of a parallel run.
type RunResult struct {
	Collectors []*stats.Collector
	Elapsed    time.Duration
	Report     stats.Report
	// Err is the first fatal (non-protocol) error any worker hit.
	Err error
}

// Generator produces the logical transactions of a workload: worker is the
// executing worker index and seq the per-worker sequence number.
type Generator func(worker, seq int) TxnFunc

// RunN executes perWorker logical transactions on each of workers
// concurrent sessions of e and returns merged statistics.
func RunN(e Engine, workers, perWorker int, gen Generator) RunResult {
	return run(e, workers, gen, func(seq int, _ time.Time) bool { return seq < perWorker })
}

// RunFor executes transactions on workers concurrent sessions of e until d
// has elapsed.
func RunFor(e Engine, workers int, d time.Duration, gen Generator) RunResult {
	return run(e, workers, gen, func(_ int, start time.Time) bool { return time.Since(start) < d })
}

func run(e Engine, workers int, gen Generator, more func(seq int, start time.Time) bool) RunResult {
	cols := make([]*stats.Collector, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		cols[w] = &stats.Collector{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := e.NewSession(w, cols[w])
			for seq := 0; more(seq, start); seq++ {
				if err := sess.Run(gen(w, seq)); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := RunResult{Collectors: cols, Elapsed: elapsed}
	for _, err := range errs {
		if err != nil {
			res.Err = err
			break
		}
	}
	res.Report = stats.Summarize(e.Name(), elapsed, cols, e.Database().Global)
	return res
}
