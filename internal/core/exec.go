package core

import (
	"errors"
	"math/rand"
	"time"

	"bamboo/internal/lock"
	"bamboo/internal/stats"
	"bamboo/internal/storage"
	"bamboo/internal/txn"
	"bamboo/internal/wal"
)

// LockEngine is the executor for the lock-based protocols (Bamboo and the
// three 2PL baselines). It implements Engine.
type LockEngine struct{ db *DB }

// NewLockEngine wraps db in an Engine.
func NewLockEngine(db *DB) *LockEngine { return &LockEngine{db: db} }

// Name implements Engine.
func (e *LockEngine) Name() string { return e.db.ProtocolName() }

// Database implements Engine.
func (e *LockEngine) Database() *DB { return e.db }

// NewSession implements Engine. A session owns every piece of per-worker
// state the transaction hot path needs — request freelist, timestamp
// block allocator, reusable transaction/access/commit-record storage and
// the WAL appender(s) — so steady-state execution does not allocate. On a
// partitioned DB the session holds one appender and one record scratch
// per partition log, created once here.
func (e *LockEngine) NewSession(worker int, col *stats.Collector) Session {
	col.AttachLive(e.db.live)
	s := &lockSession{
		db:     e.db,
		worker: worker,
		col:    col,
		rng:    rand.New(rand.NewSource(int64(worker)*7919 + 1)),
		t:      txn.New(0),
	}
	if n := e.db.PLog.Partitions(); n > 1 {
		s.apps = make([]*wal.Appender, n)
		for p := range s.apps {
			s.apps[p] = e.db.PLog.Log(p).NewAppender()
		}
		s.precs = make([]wal.Record, n)
	} else {
		s.wal = e.db.Log.NewAppender()
	}
	s.alloc = e.db.Lock.NewTSAlloc(worker)
	s.t.SetTSAlloc(s.alloc)
	if e.db.Snap != nil {
		e.db.Snap.Register(worker)
	}
	s.tx.s = s
	s.tx.t = s.t
	s.tx.db = e.db
	return s
}

type lockSession struct {
	db     *DB
	worker int
	col    *stats.Collector
	rng    *rand.Rand

	// Reused across logical transactions (see Run).
	pool  lock.Pool
	t     *txn.Txn
	tx    lockTx
	wal   *wal.Appender
	rec   wal.Record
	alloc *txn.TSAlloc

	// Partition-routed commit scratch, nil on the single-log layout: one
	// appender and one record per partition log, plus the touched-
	// partition and ticket lists of the current commit. All reused — the
	// partitioned commit path allocates nothing in steady state.
	apps    []*wal.Appender
	precs   []wal.Record
	touched []int
	tickets []wal.Ticket
}

// access is one row access of the running attempt.
type access struct {
	row     *storage.Row
	req     *lock.Request
	mode    lock.Mode
	retired bool
	// readImage is the pre-mutation image captured for the verifier.
	readImage []byte
}

// AccessInfo is the verifier-visible view of one access of a committed
// transaction.
type AccessInfo struct {
	Table string
	Key   uint64
	Mode  lock.Mode
	// Read is the image observed (for EX: the pre-mutation image if
	// CaptureReads was set, else nil).
	Read []byte
	// Wrote is the installed after-image (EX only).
	Wrote []byte
	// Dirty reports whether the observed image was uncommitted at grant.
	Dirty bool
}

// lockTx implements Tx over the lock table. One lockTx lives inside each
// session and is reset between attempts instead of reallocated.
type lockTx struct {
	s  *lockSession
	t  *txn.Txn
	db *DB

	accesses []access
	byRow    map[*storage.Row]int
	inserts  []insertOp

	declaredOps int
	opIndex     int
	lockWait    time.Duration

	// MVCC snapshot-read state. snap is the attempt's snapshot timestamp
	// (nonzero iff the attempt runs on the lock-free snapshot path);
	// roFallback records that a snapshot attempt of this logical
	// transaction needed the locking path (it wrote, or read a row with
	// no visible version), so retries stop re-entering snapshot mode.
	snap       uint64
	roFallback bool
	snapReads  uint64

	// Image-copy telemetry accumulated from released requests
	// (recycleReq) and flushed to the collector at attempt end.
	imgCopies uint64
	imgReuses uint64
}

type insertOp struct {
	tbl *storage.Table
	key uint64
	img []byte
}

// reset prepares the lockTx for the next attempt, keeping the backing
// storage of the access list, row index and insert buffer.
func (tx *lockTx) reset() {
	for i := range tx.accesses {
		tx.accesses[i] = access{}
	}
	tx.accesses = tx.accesses[:0]
	clear(tx.byRow)
	tx.inserts = tx.inserts[:0]
	tx.declaredOps = 0
	tx.opIndex = 0
	tx.lockWait = 0
	tx.snapReads = 0
}

// Worker implements Tx.
func (tx *lockTx) Worker() int { return tx.s.worker }

// ID implements Tx.
func (tx *lockTx) ID() uint64 { return tx.t.ID }

// DeclareOps implements Tx.
func (tx *lockTx) DeclareOps(n int) { tx.declaredOps = n }

// ReadOnly is implemented by transactions that support the MVCC snapshot
// read mode. Use the MarkReadOnly helper rather than asserting directly.
type ReadOnly interface {
	// MarkReadOnly switches the current attempt to lock-free snapshot
	// reads, returning false when it cannot: MVCC is off, a previous
	// attempt of this transaction fell back to the locking path, or
	// accesses were already made. After a true return, every Read is
	// served from the row's version chain with zero lock acquisitions,
	// and a write restarts the transaction on the locking path.
	MarkReadOnly() bool
}

// MarkReadOnly marks tx read-only if its engine supports snapshot reads;
// it returns whether the attempt is on the snapshot path. Transaction
// bodies call it first thing and must tolerate false (the locking path
// executes the same statements correctly).
func MarkReadOnly(tx Tx) bool {
	if ro, ok := tx.(ReadOnly); ok {
		return ro.MarkReadOnly()
	}
	return false
}

// MarkReadOnly implements ReadOnly.
func (tx *lockTx) MarkReadOnly() bool {
	if tx.snap != 0 {
		return true
	}
	if tx.db.Snap == nil || tx.roFallback || len(tx.accesses) > 0 || len(tx.inserts) > 0 {
		return false
	}
	tx.snap = tx.db.Snap.AcquireSnapshot(tx.s.worker, tx.s.alloc)
	return true
}

// errSnapshotFallback restarts a snapshot attempt on the locking path: a
// write inside a transaction marked read-only, or a read of a row with no
// version visible at the snapshot (e.g. inserted after it). The restart
// is internal — not an abort, not retried via backoff — and the retry
// refuses snapshot mode (roFallback).
var errSnapshotFallback = errors.New("core: snapshot attempt falls back to locking path")

// endSnapshot retires the attempt's snapshot, if any.
func (tx *lockTx) endSnapshot() {
	if tx.snap != 0 {
		tx.db.Snap.EndSnapshot(tx.s.worker)
		tx.snap = 0
	}
}

// acquire obtains a lock with wait-time accounting, drawing the request
// from the session freelist. On failure the request is quiescent (the
// manager guarantees it is detached) and goes straight back to the pool.
func (tx *lockTx) acquire(row *storage.Row, mode lock.Mode) (*lock.Request, error) {
	req := tx.s.pool.Get()
	start := time.Now()
	err := tx.db.Lock.AcquireInto(req, tx.t, mode, &row.Entry)
	tx.lockWait += time.Since(start)
	tx.db.Global.RecordPartAccess(row.PartitionID)
	if ad := tx.db.adapt; ad != nil {
		if row.Entry.RecordAccess() == 1 && row.Entry.MarkSeen() {
			ad.Register(&row.Entry, row.PartitionID)
		}
	}
	if err != nil {
		tx.db.Global.RecordPartConflict(row.PartitionID)
		if tx.db.adapt != nil {
			row.Entry.RecordConflict()
		}
		tx.recycleReq(req)
		return nil, err
	}
	return req, nil
}

// recycleReq harvests the request's image-copy telemetry and returns it
// to the session freelist. The spare image buffer rides along: Pool.Put
// keeps it attached, so the storage captured from a superseded image at
// release seeds the next write grant's private copy.
func (tx *lockTx) recycleReq(req *lock.Request) {
	c, ru := req.ImageStats()
	tx.imgCopies += uint64(c)
	tx.imgReuses += uint64(ru)
	tx.s.pool.Put(req)
}

// flushImageStats records the attempt's accumulated image-copy counters.
func (tx *lockTx) flushImageStats() {
	if tx.imgCopies > 0 {
		tx.s.col.RecordImageCopies(tx.imgCopies)
		tx.imgCopies = 0
	}
	if tx.imgReuses > 0 {
		tx.s.col.RecordImagesRecycled(tx.imgReuses)
		tx.imgReuses = 0
	}
}

// Read implements Tx.
func (tx *lockTx) Read(row *storage.Row) ([]byte, error) {
	if row == nil {
		return nil, fatalf("read of nil row")
	}
	if tx.snap != 0 {
		// Snapshot path: resolve the newest version committed at or
		// before the snapshot with a latch-free chain walk. No lock
		// manager, no request, no allocation.
		tx.db.Global.RecordPartAccess(row.PartitionID)
		if img, ok := row.Versions.ReadAt(tx.snap); ok {
			tx.snapReads++
			return img, nil
		}
		return nil, errSnapshotFallback
	}
	if i, ok := tx.byRow[row]; ok {
		return tx.accesses[i].req.Data, nil
	}
	req, err := tx.acquire(row, lock.SH)
	if err != nil {
		return nil, err
	}
	tx.opIndex++
	tx.record(row, req, lock.SH)
	return req.Data, nil
}

// Update implements Tx.
func (tx *lockTx) Update(row *storage.Row, mutate func(img []byte)) error {
	if row == nil {
		return fatalf("update of nil row")
	}
	if tx.snap != 0 {
		// A write inside a read-only attempt: restart on the locking path.
		return errSnapshotFallback
	}
	if i, ok := tx.byRow[row]; ok {
		a := &tx.accesses[i]
		if a.mode != lock.EX {
			// SH→EX upgrade: promote the existing request in place. The
			// access entry, byRow index and (for Bamboo) any dirty-read
			// dependency the shared grant took all carry over; only the
			// mode and the retire decision are new. On error the request
			// is still a granted shared lock and the normal rollback
			// releases it.
			//
			// A write the executor would retire anyway takes the fused
			// UpgradeRetire path: promotion and retire-install happen in
			// one entry-latch pass, and readers queued behind the upgrade
			// are granted in that same critical section. The after-image
			// is built latch-free here — the shared grant's image is an
			// installed, immutable version, so cloning and mutating it
			// before the call reads the same bytes the upgrade would have
			// cloned, and no user callback ever runs under an entry
			// latch. The retire decision (shouldRetire) depends only on
			// declared-ops bookkeeping, so it can be taken up front.
			if tx.shouldRetire(&row.Entry) {
				if tx.db.cfg.CaptureReads && a.readImage == nil {
					// One reference, not a clone: the shared grant's image
					// is installed and immutable, and CaptureReads forces
					// image recycling off, so it stays valid past release.
					a.readImage = a.req.Data
				}
				img := a.req.CloneImage()
				mutate(img)
				start := time.Now()
				err := tx.db.Lock.UpgradeRetire(a.req, img)
				tx.lockWait += time.Since(start)
				if err != nil {
					// The after-image was never installed and nobody else
					// saw it; donate its storage back as the spare.
					a.req.StashBuf(img)
					tx.db.Global.RecordPartConflict(row.PartitionID)
					if tx.db.adapt != nil {
						row.Entry.RecordConflict()
					}
					return err
				}
				a.mode = lock.EX
				a.retired = true
				tx.s.col.RecordUpgrade()
				tx.s.col.RecordRetire()
				return nil
			}
			start := time.Now()
			err := tx.db.Lock.Upgrade(a.req)
			tx.lockWait += time.Since(start)
			if err != nil {
				tx.db.Global.RecordPartConflict(row.PartitionID)
				if tx.db.adapt != nil {
					row.Entry.RecordConflict()
				}
				return err
			}
			a.mode = lock.EX
			tx.s.col.RecordUpgrade()
			// No opIndex increment: the row was already counted at its
			// Read, and workloads declare an RMW row as one access — a
			// second count would skew the δ-retire cutoff.
			if tx.db.cfg.CaptureReads && a.readImage == nil {
				// Upgrade saved the observed installed image in req.Read;
				// reference it (immutable, recycling off under CaptureReads).
				a.readImage = a.req.Read
			}
			mutate(a.req.Data)
			return nil
		}
		if a.retired {
			return fatalf("second write to a retired row (table %s key %d); "+
				"declare accesses so the last write is known (§3.3)",
				row.Table.Schema.Name, row.Key)
		}
		mutate(a.req.Data)
		return nil
	}
	req, err := tx.acquire(row, lock.EX)
	if err != nil {
		return err
	}
	tx.opIndex++
	i := tx.record(row, req, lock.EX)
	if tx.db.cfg.CaptureReads {
		// The grant saved the observed installed image in req.Read;
		// reference it (immutable, recycling off under CaptureReads).
		tx.accesses[i].readImage = req.Read
	}
	mutate(req.Data)
	if tx.shouldRetire(&row.Entry) {
		tx.db.Lock.Retire(req)
		tx.accesses[i].retired = true
		tx.s.col.RecordRetire()
	}
	return nil
}

// shouldRetire applies Optimization 2 (paper §3.5): retire unless the
// write falls in the last δ fraction of the transaction's declared
// accesses. With no declaration every write retires — the paper's
// interactive-mode behavior where each write is treated as the last.
// With adaptive contention control, entries the feedback engine
// classified cold never retire — on an uncontended entry the early
// release buys nothing and the retired-list bookkeeping (and the
// cascade exposure) is pure cost.
func (tx *lockTx) shouldRetire(e *lock.Entry) bool {
	cfg := &tx.db.cfg
	if cfg.Variant != lock.Bamboo || !cfg.RetireWrites || cfg.ManualRetire {
		return false
	}
	if tx.db.adapt != nil && e.Policy() == lock.PolicyNoRetire {
		return false
	}
	if cfg.Delta <= 0 || tx.declaredOps == 0 {
		return true
	}
	cutoff := float64(tx.declaredOps) * (1 - cfg.Delta)
	return float64(tx.opIndex) <= cutoff
}

// Retirer is implemented by transactions that support explicit retire
// points (the lock engine). The §3.3 analysis interpreter type-asserts it
// to place synthesized LockRetire calls.
type Retirer interface {
	// RetireRow retires this transaction's exclusive lock on row, making
	// its dirty write visible. A no-op if the row is not write-locked by
	// the transaction or already retired.
	RetireRow(row *storage.Row)
}

// RetireRow implements Retirer.
func (tx *lockTx) RetireRow(row *storage.Row) {
	if tx.db.cfg.Variant != lock.Bamboo {
		return
	}
	if i, ok := tx.byRow[row]; ok {
		a := &tx.accesses[i]
		if a.mode == lock.EX && !a.retired {
			tx.db.Lock.Retire(a.req)
			a.retired = true
			tx.s.col.RecordRetire()
		}
	}
}

// retireRemaining retires every unretired write; the adaptive part of
// Optimization 2 invokes it when commit-waiting exceeds δ of execution.
func (tx *lockTx) retireRemaining() {
	for i := range tx.accesses {
		a := &tx.accesses[i]
		if a.mode == lock.EX && !a.retired {
			tx.db.Lock.Retire(a.req)
			a.retired = true
			tx.s.col.RecordRetire()
		}
	}
}

func (tx *lockTx) record(row *storage.Row, req *lock.Request, mode lock.Mode) int {
	if tx.byRow == nil {
		tx.byRow = make(map[*storage.Row]int, 16)
	}
	tx.accesses = append(tx.accesses, access{row: row, req: req, mode: mode})
	i := len(tx.accesses) - 1
	tx.byRow[row] = i
	return i
}

// Insert implements Tx: inserts are buffered and applied at the commit
// point, so aborting needs no index undo. The paper's workloads (TPC-C
// new-order/payment) never read rows inserted by concurrent uncommitted
// transactions, so deferred visibility preserves their semantics; phantom
// protection via next-key locking (§3.4) is out of scope here.
func (tx *lockTx) Insert(tbl *storage.Table, key uint64, img []byte) error {
	if tbl == nil {
		return fatalf("insert into nil table")
	}
	if tx.snap != 0 {
		return errSnapshotFallback
	}
	tx.inserts = append(tx.inserts, insertOp{tbl: tbl, key: key, img: img})
	return nil
}

// rollback releases every lock with is_abort, recycles the requests and
// drops buffered inserts.
func (tx *lockTx) rollback() {
	tx.endSnapshot()
	for i := range tx.accesses {
		tx.db.Lock.Release(tx.accesses[i].req, true)
		tx.recycleReq(tx.accesses[i].req)
		tx.accesses[i].req = nil
	}
	tx.flushImageStats()
	tx.t.FinishAbort()
}

// releaseCommitted releases every lock after the commit point and
// recycles the requests.
func (tx *lockTx) releaseCommitted() {
	for i := range tx.accesses {
		tx.db.Lock.Release(tx.accesses[i].req, false)
		tx.recycleReq(tx.accesses[i].req)
		tx.accesses[i].req = nil
	}
	tx.flushImageStats()
}

// Accesses returns the verifier view of the attempt's accesses. Must be
// called before the locks are released.
func (tx *lockTx) Accesses() []AccessInfo {
	out := make([]AccessInfo, 0, len(tx.accesses))
	for i := range tx.accesses {
		a := &tx.accesses[i]
		info := AccessInfo{
			Table: a.row.Table.Schema.Name,
			Key:   a.row.Key,
			Mode:  a.mode,
			Dirty: a.req.Dirty,
		}
		if a.mode == lock.EX {
			info.Wrote = a.req.Data
			info.Read = a.readImage
		} else {
			info.Read = a.req.Data
		}
		out = append(out, info)
	}
	return out
}

// OnCommitHook receives every committed lock-engine transaction when
// installed on the DB via SetOnCommit; the verifier uses it. ts is the
// transaction's priority timestamp at commit.
type OnCommitHook func(worker int, txnID, ts uint64, accesses []AccessInfo, inserts int)

// SetOnCommit installs a commit hook (testing/verification only; it runs
// inside the commit critical path). Hooks receive AccessInfo slices that
// reference installed images and may retain them past lock release (the
// verifier stores whole access lists), so installing a hook disables
// superseded-image recycling on both the lock side (SetImageRecycling)
// and the MVCC install path (installVersions checks db.onCommit before
// harvesting detached version images).
//
// Neither store is synchronized with concurrent releases: a transaction
// already past its hook check may still capture a spare while the flag
// flips. SetOnCommit must therefore be called before any transactions
// run (or with all workers quiesced); mid-run installs are not supported.
// The recycle flag is stored before the hook pointer so a transaction
// that observes the hook never races a stale recycle==true on its own
// release path.
func (db *DB) SetOnCommit(h OnCommitHook) {
	if h != nil {
		db.Lock.SetImageRecycling(false)
	}
	db.onCommit = h
}

// OnCommit returns the installed commit hook (nil if none). Alternate
// engines (Silo, IC3) call it at their own commit points.
func (db *DB) OnCommit() OnCommitHook { return db.onCommit }

// Run implements Session: the transaction lifecycle of Algorithm 1.
//
// The session's Txn, lockTx, lock requests and WAL buffers are recycled
// from one logical transaction to the next; this is safe because by the
// time Run returns every request has been released, and after release no
// other goroutine can reach the transaction (the lock.Pool quiescence
// rule).
func (s *lockSession) Run(fn TxnFunc) error {
	t := s.t
	t.Renew(s.db.NextTxnID())
	cfg := &s.db.cfg
	tx := &s.tx
	tx.roFallback = false
	for {
		if !cfg.DynamicTS && !t.HasTS() {
			s.db.Lock.AssignTS(t)
		}
		tx.reset()
		attemptStart := time.Now()

		err := fn(tx)

		execTime := time.Since(attemptStart) - tx.lockWait
		switch {
		case err == nil && !t.Aborting():
			// Proceed to commit below.
		case errors.Is(err, ErrUserAbort):
			t.SetCause(txn.CauseUser)
			tx.rollback()
			s.col.RecordAbort(txn.CauseUser, execTime, tx.lockWait, 0)
			return nil // final: user aborts are not retried
		case errors.Is(err, errSnapshotFallback):
			// Internal restart: the snapshot attempt held no locks and
			// logged nothing, so this is neither a commit nor an abort.
			// Retry immediately on the locking path.
			tx.endSnapshot()
			tx.roFallback = true
			continue
		case err == nil || isProtocolAbort(err):
			cause := t.Cause()
			if cause == txn.CauseNone {
				cause = causeOf(err)
			}
			tx.rollback()
			s.col.RecordAbort(cause, execTime, tx.lockWait, 0)
			s.backoff()
			t.Reset()
			continue
		default:
			tx.rollback()
			return err // programming error
		}

		// A snapshot attempt commits by just retiring its snapshot: it
		// holds no locks, wrote nothing, and nothing can wound it (zero
		// lock presence), so the semaphore wait, the commit CAS and the
		// whole logging window do not apply. Zero allocations.
		if tx.snap != 0 {
			tx.endSnapshot()
			t.FinishCommit()
			s.col.RecordSnapshotReads(tx.snapReads)
			s.col.RecordCommit(execTime, 0, 0)
			return nil
		}

		// Wait for transactions this one depends on (commit_semaphore),
		// adaptively retiring held-back writes if the wait exceeds δ of
		// the execution time (Optimization 2's second half).
		commitWait, ok := s.semWait(tx, execTime)
		if !ok || !t.BeginCommit() {
			cause := t.Cause()
			tx.rollback()
			s.col.RecordAbort(cause, execTime, tx.lockWait, commitWait)
			s.backoff()
			t.Reset()
			continue
		}
		// Readers using Optimization 3 may have retroactively ordered
		// themselves before this transaction's uncommitted writes in the
		// race window between the semaphore check and the commit CAS.
		// Waiting for such a holder here can deadlock (the holder may be
		// blocked on one of our other locks), so back out voluntarily —
		// nothing has been logged yet — and retry. External wounds still
		// cannot abort a committing transaction; only the transaction
		// itself may revert its commit decision.
		if t.Sem() != 0 {
			t.SetCause(txn.CauseWound)
			tx.rollback()
			s.col.RecordAbort(txn.CauseWound, execTime, tx.lockWait, commitWait)
			// Jittered backoff breaks the symmetry with the reader that
			// keeps re-taking the hold; without it the pair can chase
			// each other for many rounds.
			time.Sleep(time.Duration(s.rng.Int63n(int64(100 * time.Microsecond))))
			t.Reset()
			continue
		}

		// Commit point: log, apply inserts, release. With an active
		// checkpointer the whole window holds the checkpoint gate in
		// shared mode, so a checkpoint LSN is never captured between
		// "the record is durable at seq" and "its effects are
		// installed" — the gap in which a fuzzy snapshot stamped ≥ seq
		// could miss the transaction entirely. The gate-less path keeps
		// the commit statements inline rather than calling commitPoint:
		// the extra call in this lock-holding window is measurably above
		// the wait-die livelock threshold on small hosts (0% → 99%
		// abort storms at 4 oversubscribed workers).
		if g := s.db.ckptGate; g != nil {
			g.RLock()
			err = s.commitPoint(tx)
			g.RUnlock()
			if err != nil {
				return err
			}
		} else {
			if s.apps == nil {
				if rec := tx.commitRecord(); rec != nil {
					if _, err := s.wal.Commit(rec); err != nil {
						return fatalf("wal append: %v", err)
					}
				}
			} else if err := s.commitPartitioned(tx); err != nil {
				return err
			}
			if s.db.Snap != nil {
				if err := s.installVersions(tx); err != nil {
					return err
				}
			} else {
				for _, ins := range tx.inserts {
					if _, err := ins.tbl.InsertRow(ins.key, ins.img); err != nil {
						return fatalf("apply insert: %v", err)
					}
				}
			}
			if h := s.db.onCommit; h != nil {
				h(s.worker, t.ID, t.TS(), tx.Accesses(), len(tx.inserts))
			}
			tx.releaseCommitted()
		}
		t.FinishCommit()
		s.col.RecordCommit(execTime, tx.lockWait, commitWait)
		return nil
	}
}

// semWait spins until the commit semaphore drains (Algorithm 1 lines
// 4–5), returning false if the transaction was aborted while waiting.
func (s *lockSession) semWait(tx *lockTx, execTime time.Duration) (time.Duration, bool) {
	t := tx.t
	if t.Sem() == 0 && !t.Aborting() {
		return 0, !t.Aborting()
	}
	start := time.Now()
	delta := s.db.cfg.Delta
	adaptiveDone := delta <= 0
	threshold := time.Duration(float64(execTime) * delta)
	for i := 0; ; i++ {
		if t.Aborting() {
			return time.Since(start), false
		}
		if t.Sem() == 0 {
			return time.Since(start), true
		}
		if !adaptiveDone && time.Since(start) > threshold {
			tx.retireRemaining()
			adaptiveDone = true
		}
		lock.Backoff(i)
	}
}

// commitPoint runs the post-decision commit work: append the commit
// record(s) to the durable log, apply buffered inserts, fire the commit
// hook and release every lock. It mirrors the inline gate-less block in
// Run statement for statement and is called only on the checkpointed
// path, with the checkpoint gate held in shared mode across the call.
func (s *lockSession) commitPoint(tx *lockTx) error {
	t := s.t
	if s.apps == nil {
		if rec := tx.commitRecord(); rec != nil {
			if _, err := s.wal.Commit(rec); err != nil {
				return fatalf("wal append: %v", err)
			}
		}
	} else if err := s.commitPartitioned(tx); err != nil {
		return err
	}
	if s.db.Snap != nil {
		if err := s.installVersions(tx); err != nil {
			return err
		}
	} else {
		for _, ins := range tx.inserts {
			if _, err := ins.tbl.InsertRow(ins.key, ins.img); err != nil {
				return fatalf("apply insert: %v", err)
			}
		}
	}
	if h := s.db.onCommit; h != nil {
		h(s.worker, t.ID, t.TS(), tx.Accesses(), len(tx.inserts))
	}
	tx.releaseCommitted()
	return nil
}

// installVersions publishes the attempt's after-images into the row
// version chains and applies buffered inserts (MVCC path of the commit
// point; the non-MVCC insert loop stays inline for statement identity).
// Everything is stamped with one commit timestamp drawn inside the
// snapshot table's in-flight window, so snapshot readers observe the
// whole commit or none of it. Version tails superseded below the reclaim
// watermark are detached with one node reused — steady-state version
// turnover on hot rows allocates nothing. Read-only locking-path attempts
// skip the window entirely.
func (s *lockSession) installVersions(tx *lockTx) error {
	wrote := len(tx.inserts) > 0
	if !wrote {
		for i := range tx.accesses {
			if tx.accesses[i].mode == lock.EX {
				wrote = true
				break
			}
		}
	}
	if !wrote {
		return nil
	}
	st := s.db.Snap
	cts := st.BeginCommit(s.worker, s.alloc)
	rts := st.Reclaim()
	reclaimed := 0
	for i := range tx.accesses {
		a := &tx.accesses[i]
		if a.mode == lock.EX {
			// Install adopts the committed image by reference — the chain
			// and the lock entry share one buffer per committed version.
			_, rec, freed := a.row.Versions.Install(a.req.Data, cts, rts)
			reclaimed += rec
			if freed != nil && s.db.onCommit == nil {
				// Harvest: the detached version's image is unreachable by
				// any snapshot reader (it is below the reclaim watermark)
				// and by the lock side (only the newest committed image can
				// still be referenced there; this one was superseded at
				// least one committed generation ago). Reuse its storage as
				// the request's spare so the next write copy allocates
				// nothing even with MVCC on. A commit hook forfeits this:
				// hooks retain AccessInfo that references installed images
				// indefinitely (SetOnCommit), so no image may ever be
				// recycled while one is installed — the lock-side flag only
				// covers releaseLocked's capture, not this harvest.
				a.req.StashBuf(freed)
			}
		}
	}
	for _, ins := range tx.inserts {
		if _, err := ins.tbl.InsertRowAt(ins.key, ins.img, cts); err != nil {
			st.EndCommit(s.worker)
			return fatalf("apply insert: %v", err)
		}
	}
	st.EndCommit(s.worker)
	s.col.RecordVersionsPruned(uint64(reclaimed))
	return nil
}

// commitPartitioned is the commit-point logging of a partitioned DB: the
// attempt's writes are split by owning partition — updates carry their
// partition on the row, inserts route through DB.PartitionOf — and one
// commit record per touched partition is appended to that partition's
// log. Records are submitted to every touched log before waiting on any,
// so the partition group commits (and their fsyncs) overlap instead of
// stacking. All scratch (per-partition records, touched list, tickets)
// is session-owned and reused: zero steady-state allocations.
//
// A transaction whose writes span partitions commits one record per
// partition with the same TxnID; each partition's log remains a
// self-contained, prefix-consistent history of that partition's rows,
// which is what makes partition-parallel replay race-free. Cross-
// partition atomicity at the log level is the distributed follow-on's
// problem (path-sensitive atomic commit), not this layer's.
func (s *lockSession) commitPartitioned(tx *lockTx) error {
	touched := s.touched[:0]
	put := func(pid int, w wal.Write) {
		rec := &s.precs[pid]
		if len(rec.Writes) == 0 {
			touched = append(touched, pid)
			rec.TxnID = tx.t.ID
		}
		rec.Writes = append(rec.Writes, w)
	}
	for i := range tx.accesses {
		a := &tx.accesses[i]
		if a.mode == lock.EX {
			put(a.row.PartitionID, wal.Write{
				Table: a.row.Table.Schema.Name,
				Key:   a.row.Key,
				Image: a.req.Data,
			})
		}
	}
	for _, ins := range tx.inserts {
		put(s.db.PartitionOf(ins.tbl, ins.key),
			wal.Write{Table: ins.tbl.Schema.Name, Key: ins.key, Image: ins.img})
	}
	s.touched = touched
	if len(touched) == 0 {
		return nil
	}
	tickets := s.tickets[:0]
	for _, pid := range touched {
		tickets = append(tickets, s.apps[pid].Submit(&s.precs[pid]))
	}
	s.tickets = tickets
	var firstErr error
	for _, tk := range tickets {
		if _, err := tk.Wait(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, pid := range touched {
		s.precs[pid].Writes = s.precs[pid].Writes[:0]
	}
	s.touched = touched[:0]
	if firstErr != nil {
		return fatalf("wal append: %v", firstErr)
	}
	return nil
}

// commitRecord builds the WAL record for the attempt in the session's
// reusable record (nil if read-only).
func (tx *lockTx) commitRecord() *wal.Record {
	rec := &tx.s.rec
	rec.Writes = rec.Writes[:0]
	for i := range tx.accesses {
		a := &tx.accesses[i]
		if a.mode == lock.EX {
			rec.Writes = append(rec.Writes, wal.Write{
				Table: a.row.Table.Schema.Name,
				Key:   a.row.Key,
				Image: a.req.Data,
			})
		}
	}
	for _, ins := range tx.inserts {
		rec.Writes = append(rec.Writes, wal.Write{Table: ins.tbl.Schema.Name, Key: ins.key, Image: ins.img})
	}
	if len(rec.Writes) == 0 {
		return nil
	}
	rec.TxnID = tx.t.ID
	return rec
}

func (s *lockSession) backoff() {
	max := s.db.cfg.AbortBackoffMax
	if max <= 0 {
		return
	}
	time.Sleep(time.Duration(s.rng.Int63n(int64(max))))
}

// isProtocolAbort reports whether err is one of the lock manager's abort
// requests (retryable).
func isProtocolAbort(err error) bool {
	return errors.Is(err, lock.ErrWound) || errors.Is(err, lock.ErrDie) ||
		errors.Is(err, lock.ErrNoWait) || errors.Is(err, lock.ErrAborting)
}

func causeOf(err error) txn.AbortCause {
	switch {
	case errors.Is(err, lock.ErrDie):
		return txn.CauseDie
	case errors.Is(err, lock.ErrNoWait):
		return txn.CauseDie
	case errors.Is(err, lock.ErrWound), errors.Is(err, lock.ErrAborting):
		return txn.CauseWound
	default:
		return txn.CauseNone
	}
}
