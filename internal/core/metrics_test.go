package core_test

import (
	"bytes"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"bamboo/internal/core"
	"bamboo/internal/stats"
	"bamboo/internal/telemetry"
	"bamboo/internal/workload/ycsb"
)

// TestMetricsScrapeDuringRun is the concurrency proof for the live
// observability layer: scrapers hammer the registry — both the direct
// WriteMetrics/Snapshot path and real HTTP GETs — while workers run a
// contended workload. Under -race this asserts the whole collection path
// is data-race-free; the final scrape asserts it is not vacuous and that
// the endpoint's commit count agrees with the run's merged report.
func TestMetricsScrapeDuringRun(t *testing.T) {
	cfg := core.Bamboo()
	cfg.Partitions = 4
	cfg.MetricsAddr = "127.0.0.1:0"
	cfg.MetricsInterval = time.Millisecond
	db := core.NewDB(cfg)
	defer db.Close()

	addr := db.MetricsAddr()
	if addr == "" {
		t.Fatal("MetricsAddr empty with Config.MetricsAddr set")
	}
	w, err := ycsb.Load(db, ycsb.Config{
		Rows: 5000, OpsPerTxn: 16, Theta: 0.9, ReadRatio: 0.5,
		Columns: 4, ColumnBytes: 40, RMWFrac: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Direct scrapers: no HTTP stack between the race detector and the
	// counter loads.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					db.Metrics().WriteMetrics(io.Discard)
					db.Metrics().Snapshot()
				}
			}
		}()
	}
	// One HTTP scraper: the path operators actually use.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				resp, err := http.Get("http://" + addr + "/metrics")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}
	}()

	res := core.RunN(core.NewLockEngine(db), 4, 200, w.Generator())
	close(stop)
	wg.Wait()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Report.Upgrades == 0 {
		t.Error("no upgrades reported on an RMW-heavy run")
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"bamboo_up 1",
		`bamboo_info{protocol="BAMBOO"} 1`,
		`bamboo_partition_conflicts_total{partition="0"}`,
		`bamboo_txn_latency_seconds{quantile="0.99"}`,
		"bamboo_txn_upgrades_total",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("final scrape missing %q", want)
		}
	}
	// Every committed transaction went through the Live mirror, so the
	// endpoint's counter must equal the merged report exactly.
	var commits uint64
	found := false
	for _, line := range strings.Split(string(body), "\n") {
		if v, ok := strings.CutPrefix(line, "bamboo_txn_commits_total "); ok {
			commits, err = strconv.ParseUint(v, 10, 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("final scrape missing bamboo_txn_commits_total")
	}
	if commits != res.Report.Commits {
		t.Errorf("endpoint commits = %d, run report = %d", commits, res.Report.Commits)
	}
}

// TestMetricsSharedRegistry covers the bench-harness lifecycle: a
// process-level registry, EnableMetrics on a flat-layout DB (which must
// still initialize per-partition series — the scrape contract does not
// depend on Config.Partitions), then Close detaching it so the endpoint
// reports bamboo_up 0 instead of stale counters.
func TestMetricsSharedRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	db := core.NewDB(core.Bamboo())
	db.EnableMetrics(reg)
	if db.LiveStats() == nil {
		t.Fatal("LiveStats nil after EnableMetrics")
	}
	if db.MetricsAddr() != "" {
		t.Fatal("shared registry should not report a DB-owned address")
	}

	// Run a few transactions so counters are nonzero.
	w, err := ycsb.Load(db, ycsb.Config{
		Rows: 1000, OpsPerTxn: 8, Theta: 0.6, ReadRatio: 0.5,
		Columns: 2, ColumnBytes: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess := core.NewLockEngine(db).NewSession(0, &stats.Collector{})
	gen := w.Generator()
	for i := 0; i < 50; i++ {
		if err := sess.Run(gen(0, i)); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	reg.WriteMetrics(&buf)
	out := buf.String()
	if !strings.Contains(out, `bamboo_partition_accesses_total{partition="0"}`) {
		t.Fatalf("flat-layout metrics missing partition series:\n%s", out)
	}
	if !strings.Contains(out, "bamboo_txn_commits_total 50") {
		t.Fatalf("metrics missing commits:\n%s", out)
	}

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	reg.WriteMetrics(&buf)
	if !strings.Contains(buf.String(), "bamboo_up 0") {
		t.Fatalf("closed DB still attached:\n%s", buf.String())
	}
}

// TestAllocBudgetMetricsEnabled is the observability alloc gate: with the
// endpoint serving, the rate collector ticking and the Live mirror
// attached, the hot path must allocate exactly what it does with metrics
// off — the mirror is plain atomic adds into preallocated memory.
// testing.AllocsPerRun counts allocations from ALL goroutines, so this
// also proves the background collector's sampling loop is alloc-free.
func TestAllocBudgetMetricsEnabled(t *testing.T) {
	plain := measureAllocsPerTxn(t, core.Bamboo())

	reg := telemetry.NewRegistry()
	addr, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	db := core.NewDB(core.Bamboo())
	defer db.Close()
	db.EnableMetrics(reg)
	w, err := ycsb.Load(db, ycsb.Config{
		Rows: 20000, OpsPerTxn: 16, Theta: 0.6, ReadRatio: 0.5,
		Columns: 10, ColumnBytes: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess := core.NewLockEngine(db).NewSession(0, &stats.Collector{})
	gen := w.Generator()
	const txns = 200
	fns := make([]core.TxnFunc, txns)
	for i := range fns {
		fns[i] = gen(0, i)
	}
	// Warm up to steady-state capacity, as the other alloc gates do.
	for i := 0; i < txns; i++ {
		if err := sess.Run(fns[i]); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	got := testing.AllocsPerRun(txns, func() {
		if err := sess.Run(fns[i%txns]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	t.Logf("metrics off %.1f, metrics on %.1f allocs/txn (budget %.0f)", plain, got, allocBudget)
	if got > allocBudget {
		t.Fatalf("metrics-enabled allocs/txn = %.1f exceeds budget %.1f", got, allocBudget)
	}
	if got > plain+0.5 {
		t.Fatalf("metrics enablement allocates: %.1f vs %.1f allocs/txn plain", got, plain)
	}

	// The gate must not pass vacuously: the endpoint saw those commits.
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(body, []byte("bamboo_txn_commits_total")) ||
		bytes.Contains(body, []byte("bamboo_txn_commits_total 0\n")) {
		t.Fatalf("endpoint did not observe the measured transactions:\n%s", body)
	}
}
