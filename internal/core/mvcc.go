package core

import (
	"sync"
	"time"

	"bamboo/internal/storage"
	"bamboo/internal/txn"
)

// Background version pruning for the MVCC read path.
//
// Hot rows reclaim their own version tails: every commit-time install
// detaches (and reuses a node of) the tail superseded below the reclaim
// watermark, so turnover on contended rows allocates nothing in steady
// state. What installs cannot do is advance the watermark or trim rows
// that stopped being written — that is this goroutine's job. Each tick it
// advances the watermark (SnapshotTable.AdvanceReclaim, keyed off the
// oldest active snapshot and in-flight commit); every sweepEvery ticks it
// also walks the catalog and prunes cold rows' chains, feeding the
// versions_pruned / version_chain_max telemetry.

// defaultPruneInterval is the watermark-advance tick when
// Config.MVCCPruneInterval is zero.
const defaultPruneInterval = 2 * time.Millisecond

// sweepEvery is the number of watermark ticks per full catalog sweep.
// Watermark advance is cheap and keeps install-time reuse effective;
// whole-table sweeps are not, so they run at a coarser cadence.
const sweepEvery = 25

// prunerSlot is the TSAlloc slot the pruner draws watermark candidates
// from: the last slot of the folded worker-id space, which no benchmark
// or test session uses (sessions would need 1024 concurrent workers to
// collide).
const prunerSlot = txn.TSWorkerSlots - 1

type pruner struct {
	db    *DB
	alloc *txn.TSAlloc
	quit  chan struct{}
	done  chan struct{}
	once  sync.Once
}

func startPruner(db *DB) *pruner {
	p := &pruner{
		db:    db,
		alloc: txn.NewTSAlloc(prunerSlot),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	db.Snap.Register(prunerSlot)
	go p.run()
	return p
}

func (p *pruner) stop() {
	p.once.Do(func() { close(p.quit) })
	<-p.done
}

func (p *pruner) run() {
	defer close(p.done)
	interval := p.db.cfg.MVCCPruneInterval
	if interval <= 0 {
		interval = defaultPruneInterval
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for n := 0; ; n++ {
		select {
		case <-p.quit:
			return
		case <-tick.C:
		}
		w := p.db.Snap.AdvanceReclaim(p.alloc)
		if n%sweepEvery == sweepEvery-1 {
			p.sweep(w)
		}
	}
}

// sweep prunes every row's chain against watermark w and records the
// telemetry. Row visits take only the index shards' read locks; chain
// pruning itself is latch-free and arbitration with concurrent installs
// is a CAS on the detach link.
func (p *pruner) sweep(w uint64) {
	var pruned, maxLen uint64
	for _, tbl := range p.db.Catalog.AllTables() {
		tbl.Range(func(_ uint64, r *storage.Row) bool {
			n, rec := r.Versions.Prune(w)
			pruned += uint64(rec)
			if uint64(n) > maxLen {
				maxLen = uint64(n)
			}
			return true
		})
	}
	p.db.Global.RecordVersionsPruned(pruned)
	p.db.Global.RecordVersionChainLen(maxLen)
}
