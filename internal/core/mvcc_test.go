package core_test

import (
	"testing"
	"time"

	"bamboo/internal/core"
	"bamboo/internal/stats"
	"bamboo/internal/storage"
	"bamboo/internal/txn"
	"bamboo/internal/verify/verifytest"
)

func mvccConfig(base core.Config) core.Config {
	base.MVCC = true
	// A tight pruner tick so short tests actually exercise watermark
	// advance and background sweeps, not just install-time reuse.
	base.MVCCPruneInterval = 500 * time.Microsecond
	return base
}

// TestMVCCSnapshotConsistency runs the snapshot oracle against every lock
// variant with MVCC on: concurrent transfers on the locking path, read-
// only sums on the snapshot path, and every observed sum must equal the
// invariant — a torn (non-transaction-consistent) snapshot fails fast.
func TestMVCCSnapshotConsistency(t *testing.T) {
	configs := map[string]core.Config{
		"BAMBOO":     core.Bamboo(),
		"WOUND_WAIT": core.WoundWait(),
		"WAIT_DIE":   core.WaitDie(),
		"NO_WAIT":    core.NoWait(),
	}
	for name, cfg := range configs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			db := core.NewDB(mvccConfig(cfg))
			defer db.Close()
			verifytest.RunSnapshotConsistency(t, core.NewLockEngine(db), 16, 4, 200)
		})
	}
}

// TestMVCCSnapshotConsistencyPartitioned repeats the oracle over a
// partitioned table: snapshot reads must stay transaction-consistent
// across partition boundaries (one commit timestamp covers a transfer
// whose legs live in different partitions).
func TestMVCCSnapshotConsistencyPartitioned(t *testing.T) {
	cfg := mvccConfig(core.Bamboo())
	cfg.Partitions = 4
	db := core.NewDB(cfg)
	defer db.Close()
	verifytest.RunSnapshotConsistency(t, core.NewLockEngine(db), 16, 4, 200)
}

// TestMVCCReadOnlyFallback pins the write-inside-read-only contract: a
// transaction that opts into the snapshot path and then writes restarts
// transparently through the locking path, commits exactly once, and is
// not counted as an abort.
func TestMVCCReadOnlyFallback(t *testing.T) {
	db := core.NewDB(mvccConfig(core.Bamboo()))
	defer db.Close()
	schema := storage.NewSchema("kv", storage.Column{Name: "v", Type: storage.ColInt64})
	tbl := db.Catalog.MustCreateTable(schema, 4)
	for k := 0; k < 4; k++ {
		tbl.MustInsertRow(uint64(k), schema.NewRowImage())
	}
	eng := core.NewLockEngine(db)
	col := &stats.Collector{}
	sess := eng.NewSession(0, col)

	attempts := 0
	marked := make([]bool, 0, 2)
	err := sess.Run(func(tx core.Tx) error {
		attempts++
		marked = append(marked, core.MarkReadOnly(tx))
		if _, err := tx.Read(tbl.Get(0)); err != nil {
			return err
		}
		return tx.Update(tbl.Get(1), func(img []byte) {
			schema.SetInt64(img, 0, 42)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("ran %d attempts, want 2 (snapshot attempt + locking retry)", attempts)
	}
	if !marked[0] || marked[1] {
		t.Fatalf("MarkReadOnly returned %v, want [true false] "+
			"(snapshot granted first, refused on the locking retry)", marked)
	}
	if col.Commits != 1 || col.Aborts != 0 {
		t.Fatalf("commits=%d aborts=%d, want 1 commit and 0 aborts "+
			"(the fallback restart must not count as an abort)", col.Commits, col.Aborts)
	}
	if got := schema.GetInt64(tbl.Get(1).Entry.CurrentData(), 0); got != 42 {
		t.Fatalf("update lost: v=%d, want 42", got)
	}

	// A subsequent declared-read-only transaction sees the committed write
	// from its snapshot.
	var seen int64
	if err := sess.Run(func(tx core.Tx) error {
		if !core.MarkReadOnly(tx) {
			t.Error("MarkReadOnly refused a fresh read-only transaction")
		}
		img, err := tx.Read(tbl.Get(1))
		if err != nil {
			return err
		}
		seen = schema.GetInt64(img, 0)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 42 {
		t.Fatalf("snapshot read saw %d, want 42", seen)
	}
	if col.SnapshotReads == 0 {
		t.Fatal("no snapshot reads recorded")
	}
}

// TestMVCCCommitHookRetainedImages pins the recycling opt-out across the
// MVCC install path: commit hooks retain AccessInfo whose Wrote/Read
// slices reference installed images, so no superseded version-chain
// image may be harvested into a request's spare buffer while a hook is
// installed — the lock-side SetImageRecycling flag covers only the
// release-time capture, not installVersions' harvest. Without the gate,
// each update to one hot row recycles the image a hook retained two
// commits earlier and the next write copy overwrites its bytes.
//
// The reclaim watermark is advanced by hand between commits (the
// background pruner is parked on an hour-long tick) so the very next
// Install deterministically detaches the superseded version instead of
// racing the pruner's sweep for it.
func TestMVCCCommitHookRetainedImages(t *testing.T) {
	cfg := core.Bamboo()
	cfg.MVCC = true
	cfg.MVCCPruneInterval = time.Hour // keep the sweep out of the race
	db := core.NewDB(cfg)
	defer db.Close()
	schema := storage.NewSchema("kv", storage.Column{Name: "v", Type: storage.ColInt64})
	tbl := db.Catalog.MustCreateTable(schema, 1)
	tbl.MustInsertRow(0, schema.NewRowImage())

	type retained struct {
		img  []byte // referenced, not copied — exactly what the verifier keeps
		want int64
	}
	var kept []retained
	db.SetOnCommit(func(_ int, _, _ uint64, accesses []core.AccessInfo, _ int) {
		for _, a := range accesses {
			if a.Wrote != nil {
				kept = append(kept, retained{img: a.Wrote, want: schema.GetInt64(a.Wrote, 0)})
			}
		}
	})

	// Watermark-advance allocator on its own slot (the session runs on
	// worker 0, the parked pruner on TSWorkerSlots-1).
	alloc := txn.NewTSAlloc(1)
	db.Snap.Register(1)

	const commits = 64
	eng := core.NewLockEngine(db)
	sess := eng.NewSession(0, &stats.Collector{})
	for i := 0; i < commits; i++ {
		v := int64(i + 1)
		if err := sess.Run(func(tx core.Tx) error {
			tx.DeclareOps(1)
			return tx.Update(tbl.Get(0), func(img []byte) {
				schema.SetInt64(img, 0, v)
			})
		}); err != nil {
			t.Fatal(err)
		}
		db.Snap.AdvanceReclaim(alloc)
	}
	if len(kept) != commits {
		t.Fatalf("hook saw %d writes, want %d", len(kept), commits)
	}
	for i, r := range kept {
		if got := schema.GetInt64(r.img, 0); got != r.want {
			t.Fatalf("retained image from commit %d corrupted: v=%d, want %d "+
				"(a superseded version image was recycled while a commit hook held it)",
				i, got, r.want)
		}
	}
}

// TestMVCCMarkReadOnlyOff: without MVCC, MarkReadOnly is a refusal, not
// an error — the transaction runs through the locking path unchanged.
func TestMVCCMarkReadOnlyOff(t *testing.T) {
	db := core.NewDB(core.Bamboo())
	defer db.Close()
	schema := storage.NewSchema("kv", storage.Column{Name: "v", Type: storage.ColInt64})
	tbl := db.Catalog.MustCreateTable(schema, 1)
	tbl.MustInsertRow(0, schema.NewRowImage())
	eng := core.NewLockEngine(db)
	col := &stats.Collector{}
	sess := eng.NewSession(0, col)
	if err := sess.Run(func(tx core.Tx) error {
		if core.MarkReadOnly(tx) {
			t.Error("MarkReadOnly granted snapshot mode on a non-MVCC engine")
		}
		_, err := tx.Read(tbl.Get(0))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if col.Commits != 1 || col.SnapshotReads != 0 {
		t.Fatalf("commits=%d snapshotReads=%d, want 1 and 0", col.Commits, col.SnapshotReads)
	}
}

// TestMVCCRecoveryReseed: after a crash and WAL replay, snapshot reads
// must serve the *recovered* images, not the loader's base seed — replay
// applies images beneath the version chains, and the post-replay reseed
// pass is what re-anchors them.
func TestMVCCRecoveryReseed(t *testing.T) {
	dir := t.TempDir()
	run := mvccConfig(core.Bamboo())
	run.WALDir = dir

	db := core.NewDB(run)
	tbl := loadXfer(t, db)
	schema := tbl.Schema
	eng := core.NewLockEngine(db)
	sess := eng.NewSession(0, &stats.Collector{})
	for i := 0; i < 10; i++ {
		if err := sess.Run(func(tx core.Tx) error {
			tx.DeclareOps(1)
			return tx.Update(tbl.Get(0), func(img []byte) {
				schema.AddInt64(img, 0, 7)
			})
		}); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()

	// Recover into a fresh MVCC instance: same deterministic loader, then
	// replay. (No WALDir on the recovering config — replay reads the files
	// directly, as the recovery tooling does.)
	rec := mvccConfig(core.Bamboo())
	db2 := core.NewDB(rec)
	defer db2.Close()
	tbl2 := loadXfer(t, db2)
	if _, err := db2.ReplayDir(dir, false); err != nil {
		t.Fatal(err)
	}

	want := int64(xferInitial + 10*7)
	eng2 := core.NewLockEngine(db2)
	col := &stats.Collector{}
	sess2 := eng2.NewSession(0, col)
	var got int64
	if err := sess2.Run(func(tx core.Tx) error {
		if !core.MarkReadOnly(tx) {
			t.Error("MarkReadOnly refused on the recovered MVCC instance")
		}
		img, err := tx.Read(tbl2.Get(0))
		if err != nil {
			return err
		}
		got = tbl2.Schema.GetInt64(img, 0)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("post-recovery snapshot read saw %d, want %d (stale version chain)", got, want)
	}
	if col.SnapshotReads == 0 {
		t.Fatal("post-recovery read did not use the snapshot path")
	}
}
