package core

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"

	"bamboo/internal/storage"
	"bamboo/internal/wal"
)

// ReplayStats summarizes a WAL replay.
type ReplayStats struct {
	// Logs is the number of partition log files replayed (missing files —
	// partitions that never committed — are skipped, not errors).
	Logs int
	// Records is the number of commit records applied. A transaction
	// whose writes spanned k partitions appears as k records (one per
	// partition log, same TxnID).
	Records int
	// Writes is the number of row after-images applied.
	Writes int
	// Torn counts logs that ended in an incomplete record — the normal
	// shape after a crash mid-append; the partial tail is discarded and
	// the log replays to its last complete record.
	Torn int
	// Bytes is the total log bytes of records actually applied — with a
	// checkpoint, the post-checkpoint suffix only. This is the number a
	// bounded-recovery claim is about.
	Bytes int64
	// Skipped counts records (and SkippedSegments whole segment files)
	// that a checkpoint made redundant; skipped records read from disk
	// are still CRC-verified.
	Skipped         int
	SkippedSegments int
	// Checkpoints is the number of snapshot files restored (≤ 1 per
	// partition); CheckpointRows the rows they installed. CheckpointsBad
	// counts corrupt snapshots that were rejected and fallen back from.
	Checkpoints    int
	CheckpointRows int
	CheckpointsBad int
}

// ReplayDir rebuilds row state from the per-partition WAL files a
// Config.WALDir-backed DB wrote: every logged after-image is re-applied
// (updates in place, transactional inserts re-inserted) through
// storage.Partition.ApplyRecord. The receiver must hold the same catalog
// the crashed instance had — schemas created and the base snapshot loaded
// by the same deterministic loader — since loaders do not write the WAL;
// the log holds only transactional writes.
//
// With parallel set, partition logs replay concurrently, one goroutine
// per log. This is race-free for logs the lock engine wrote, because its
// commit path splits every record by owning partition: log p only ever
// touches partition p's rows. (Logs written by the non-partition-aware
// engines — Silo, IC3 append whole records to log 0 — replay correctly
// too, since rows still route to their owning partition, but must use
// serial mode.)
//
// A torn record at a log's tail is tolerated and counted; corruption
// anywhere else fails the replay.
func (db *DB) ReplayDir(dir string, parallel bool) (ReplayStats, error) {
	return db.ReplayDirCheckpointed(dir, db.cfg.Checkpoint.Dir, parallel)
}

// ReplayDirCheckpointed is ReplayDir with an explicit snapshot directory,
// for recovery tooling that inspects a crashed instance's state without
// configuring (and thus opening) its WAL devices. Empty ckptDir means a
// full replay from the first retained record.
func (db *DB) ReplayDirCheckpointed(dir, ckptDir string, parallel bool) (ReplayStats, error) {
	n := db.Partitions()
	stats := make([]ReplayStats, n)
	errs := make([]error, n)
	replayOne := func(p int) {
		stats[p], errs[p] = db.replayLog(dir, ckptDir, p)
	}
	if parallel {
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				replayOne(p)
			}(p)
		}
		wg.Wait()
	} else {
		for p := 0; p < n; p++ {
			replayOne(p)
		}
	}
	var total ReplayStats
	for p := 0; p < n; p++ {
		if errs[p] != nil {
			return total, fmt.Errorf("core: replay partition %d: %w", p, errs[p])
		}
		total.Logs += stats[p].Logs
		total.Records += stats[p].Records
		total.Writes += stats[p].Writes
		total.Torn += stats[p].Torn
		total.Bytes += stats[p].Bytes
		total.Skipped += stats[p].Skipped
		total.SkippedSegments += stats[p].SkippedSegments
		total.Checkpoints += stats[p].Checkpoints
		total.CheckpointRows += stats[p].CheckpointRows
		total.CheckpointsBad += stats[p].CheckpointsBad
	}
	if db.Snap != nil {
		db.reseedVersions()
	}
	return total, nil
}

// reseedVersions resets every row's version chain to its recovered
// committed image at ts 0. Versions are volatile — the log and
// checkpoints carry only the newest committed image — so recovery
// rebuilds a single-version chain per row and snapshot history restarts
// fresh. Replay applies images through Entry.Init, which bypasses the
// chains; without this pass a post-recovery snapshot would read the
// loader's stale seed. Runs single-threaded after replay completes.
func (db *DB) reseedVersions() {
	for _, tbl := range db.Catalog.AllTables() {
		tbl.Range(func(_ uint64, r *storage.Row) bool {
			r.Versions.Seed(0, r.Entry.CurrentData())
			return true
		})
	}
}

func (db *DB) replayLog(dir, ckptDir string, p int) (ReplayStats, error) {
	var st ReplayStats
	// Checkpoint-aware start: restore the newest valid snapshot and
	// replay only the log suffix past its LSN. A corrupt snapshot falls
	// back to the next-older one (LoadSnapshot verifies the whole file
	// before applying anything, so a rejected snapshot installs
	// nothing); no usable snapshot at all falls back to a full replay —
	// which the log can satisfy unless truncation already ran, in which
	// case ReplayPartition fails loudly rather than resurrect a state
	// missing committed records.
	fromSeq := uint64(0)
	if ckptDir != "" {
		snaps, err := storage.ListSnapshots(ckptDir, p)
		if err != nil {
			return st, err
		}
		for _, sn := range snaps {
			sp, seq, rows, err := storage.LoadSnapshot(sn.Path, db.Catalog)
			if err != nil {
				if errors.Is(err, storage.ErrSnapshotCorrupt) {
					st.CheckpointsBad++
					continue
				}
				return st, err
			}
			if sp != p || seq != sn.Seq {
				// The file's self-description disagrees with its name:
				// treat exactly like a corrupt snapshot. (Rows may have
				// been applied, but they are committed images of *some*
				// partition state; the older snapshot plus a longer
				// replay still converges via idempotent after-images.)
				st.CheckpointsBad++
				continue
			}
			st.Checkpoints++
			st.CheckpointRows += rows
			fromSeq = seq
			break
		}
	}
	rst, err := wal.ReplayPartition(dir, p, fromSeq, func(rec *wal.Record) error {
		st.Records++
		for _, w := range rec.Writes {
			tbl := db.Catalog.Table(w.Table)
			if tbl == nil {
				return fmt.Errorf("log references unknown table %q (txn %d)", w.Table, rec.TxnID)
			}
			pid := tbl.PartitionFor(w.Key)
			if _, err := tbl.Partition(pid).ApplyRecord(tbl, w.Key, w.Image); err != nil {
				return err
			}
			st.Writes++
		}
		return nil
	})
	if errors.Is(err, fs.ErrNotExist) {
		// A partition that never logged; with a checkpoint restored the
		// snapshot alone is its recovered state.
		return st, nil
	}
	st.Logs = 1
	st.Bytes = rst.Bytes
	st.Skipped = rst.Skipped
	st.SkippedSegments = rst.SkippedSegments
	if rst.Torn {
		st.Torn++
	}
	return st, err
}

// RecoveredTable is a convenience assertion for recovery tests and
// tooling: it checks that every partition's row count matches the
// partitioner's routing (each row indexed exactly where its key routes).
func RecoveredTable(tbl *storage.Table) error {
	for p := 0; p < tbl.NumPartitions(); p++ {
		var bad error
		tbl.Partition(p).Range(func(key uint64, r *storage.Row) bool {
			if want := tbl.PartitionFor(key); want != p {
				bad = fmt.Errorf("row %d indexed in partition %d, routes to %d", key, p, want)
				return false
			}
			if r.PartitionID != p {
				bad = fmt.Errorf("row %d carries PartitionID %d in partition %d", key, r.PartitionID, p)
				return false
			}
			return true
		})
		if bad != nil {
			return bad
		}
	}
	return nil
}
