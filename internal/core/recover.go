package core

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"

	"bamboo/internal/storage"
	"bamboo/internal/wal"
)

// ReplayStats summarizes a WAL replay.
type ReplayStats struct {
	// Logs is the number of partition log files replayed (missing files —
	// partitions that never committed — are skipped, not errors).
	Logs int
	// Records is the number of commit records applied. A transaction
	// whose writes spanned k partitions appears as k records (one per
	// partition log, same TxnID).
	Records int
	// Writes is the number of row after-images applied.
	Writes int
	// Torn counts logs that ended in an incomplete record — the normal
	// shape after a crash mid-append; the partial tail is discarded and
	// the log replays to its last complete record.
	Torn int
	// Bytes is the total log bytes of complete records replayed.
	Bytes int64
}

// ReplayDir rebuilds row state from the per-partition WAL files a
// Config.WALDir-backed DB wrote: every logged after-image is re-applied
// (updates in place, transactional inserts re-inserted) through
// storage.Partition.ApplyRecord. The receiver must hold the same catalog
// the crashed instance had — schemas created and the base snapshot loaded
// by the same deterministic loader — since loaders do not write the WAL;
// the log holds only transactional writes.
//
// With parallel set, partition logs replay concurrently, one goroutine
// per log. This is race-free for logs the lock engine wrote, because its
// commit path splits every record by owning partition: log p only ever
// touches partition p's rows. (Logs written by the non-partition-aware
// engines — Silo, IC3 append whole records to log 0 — replay correctly
// too, since rows still route to their owning partition, but must use
// serial mode.)
//
// A torn record at a log's tail is tolerated and counted; corruption
// anywhere else fails the replay.
func (db *DB) ReplayDir(dir string, parallel bool) (ReplayStats, error) {
	n := db.Partitions()
	stats := make([]ReplayStats, n)
	errs := make([]error, n)
	replayOne := func(p int) {
		stats[p], errs[p] = db.replayLog(dir, p)
	}
	if parallel {
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				replayOne(p)
			}(p)
		}
		wg.Wait()
	} else {
		for p := 0; p < n; p++ {
			replayOne(p)
		}
	}
	var total ReplayStats
	for p := 0; p < n; p++ {
		if errs[p] != nil {
			return total, fmt.Errorf("core: replay partition %d: %w", p, errs[p])
		}
		total.Logs += stats[p].Logs
		total.Records += stats[p].Records
		total.Writes += stats[p].Writes
		total.Torn += stats[p].Torn
		total.Bytes += stats[p].Bytes
	}
	return total, nil
}

func (db *DB) replayLog(dir string, p int) (ReplayStats, error) {
	var st ReplayStats
	path := wal.PartitionLogPath(dir, p)
	if _, err := os.Stat(path); errors.Is(err, fs.ErrNotExist) {
		return st, nil
	}
	rst, err := wal.ReplayFile(path, func(rec *wal.Record) error {
		st.Records++
		for _, w := range rec.Writes {
			tbl := db.Catalog.Table(w.Table)
			if tbl == nil {
				return fmt.Errorf("log references unknown table %q (txn %d)", w.Table, rec.TxnID)
			}
			pid := tbl.PartitionFor(w.Key)
			if _, err := tbl.Partition(pid).ApplyRecord(tbl, w.Key, w.Image); err != nil {
				return err
			}
			st.Writes++
		}
		return nil
	})
	st.Logs = 1
	st.Bytes = rst.Bytes
	if rst.Torn {
		st.Torn++
	}
	return st, err
}

// RecoveredTable is a convenience assertion for recovery tests and
// tooling: it checks that every partition's row count matches the
// partitioner's routing (each row indexed exactly where its key routes).
func RecoveredTable(tbl *storage.Table) error {
	for p := 0; p < tbl.NumPartitions(); p++ {
		var bad error
		tbl.Partition(p).Range(func(key uint64, r *storage.Row) bool {
			if want := tbl.PartitionFor(key); want != p {
				bad = fmt.Errorf("row %d indexed in partition %d, routes to %d", key, p, want)
				return false
			}
			if r.PartitionID != p {
				bad = fmt.Errorf("row %d carries PartitionID %d in partition %d", key, r.PartitionID, p)
				return false
			}
			return true
		})
		if bad != nil {
			return bad
		}
	}
	return nil
}
