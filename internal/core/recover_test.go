package core_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"bamboo/internal/core"
	"bamboo/internal/storage"
	"bamboo/internal/wal"
)

const (
	xferRows    = 64
	xferInitial = 1000
)

func xferSchema() *storage.Schema {
	return storage.NewSchema("accounts",
		storage.Column{Name: "balance", Type: storage.ColInt64})
}

// loadXfer deterministically creates the hash-partitioned transfer table:
// the base snapshot both the "crashed" instance and the recovering one
// load, since loaders do not write the WAL.
func loadXfer(t *testing.T, db *core.DB) *storage.Table {
	t.Helper()
	schema := xferSchema()
	tbl, err := db.Catalog.CreateTablePartitioned(schema, xferRows,
		storage.HashPartitioner{N: db.Partitions()})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < xferRows; k++ {
		img := schema.NewRowImage()
		schema.SetInt64(img, 0, xferInitial)
		tbl.MustInsertRow(uint64(k), img)
	}
	return tbl
}

// partitionKeys groups the table's keys by owning partition.
func partitionKeys(tbl *storage.Table, parts int) [][]uint64 {
	per := make([][]uint64, parts)
	for k := 0; k < xferRows; k++ {
		pid := tbl.PartitionFor(uint64(k))
		per[pid] = append(per[pid], uint64(k))
	}
	return per
}

// xferGen generates partition-local transfers: both rows of a transfer
// live in one partition, so each transaction is atomic within a single
// partition log and every log prefix conserves that partition's total.
func xferGen(tbl *storage.Table, per [][]uint64) core.Generator {
	schema := tbl.Schema
	return func(worker, seq int) core.TxnFunc {
		rng := rand.New(rand.NewSource(int64(worker)*1e6 + int64(seq)))
		pid := rng.Intn(len(per))
		for len(per[pid]) < 2 {
			pid = (pid + 1) % len(per)
		}
		keys := per[pid]
		i := rng.Intn(len(keys))
		j := rng.Intn(len(keys) - 1)
		if j >= i {
			j++
		}
		amount := int64(rng.Intn(50) + 1)
		return func(tx core.Tx) error {
			tx.DeclareOps(2)
			if err := tx.Update(tbl.Get(keys[i]), func(img []byte) {
				schema.AddInt64(img, 0, -amount)
			}); err != nil {
				return err
			}
			return tx.Update(tbl.Get(keys[j]), func(img []byte) {
				schema.AddInt64(img, 0, amount)
			})
		}
	}
}

// partitionSums returns each partition's balance total and row count.
func partitionSums(tbl *storage.Table, parts int) ([]int64, []int) {
	schema := tbl.Schema
	sums := make([]int64, parts)
	counts := make([]int, parts)
	for p := 0; p < parts; p++ {
		tbl.Partition(p).Range(func(_ uint64, r *storage.Row) bool {
			sums[p] += schema.GetInt64(r.Entry.CurrentData(), 0)
			counts[p]++
			return true
		})
	}
	return sums, counts
}

// runXferToWAL runs the transfer workload on a WALDir-backed partitioned
// DB and returns the final row images (key → balance) for comparison.
func runXferToWAL(t *testing.T, dir string, parts, workers, perWorker int) map[uint64]int64 {
	t.Helper()
	cfg := core.Bamboo()
	cfg.Partitions = parts
	cfg.WALDir = dir
	cfg.WALFsync = wal.FsyncNone // durability policy is irrelevant to replay logic
	db := core.NewDB(cfg)
	tbl := loadXfer(t, db)
	per := partitionKeys(tbl, parts)
	res := core.RunN(core.NewLockEngine(db), workers, perWorker, xferGen(tbl, per))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	final := make(map[uint64]int64)
	tbl.Range(func(k uint64, r *storage.Row) bool {
		final[k] = tbl.Schema.GetInt64(r.Entry.CurrentData(), 0)
		return true
	})
	return final
}

// replayFresh loads the base snapshot into a fresh DB and replays dir.
func replayFresh(t *testing.T, dir string, parts int, parallel bool) (*core.DB, *storage.Table, core.ReplayStats) {
	t.Helper()
	cfg := core.Bamboo()
	cfg.Partitions = parts
	db := core.NewDB(cfg)
	t.Cleanup(func() { db.Close() })
	tbl := loadXfer(t, db)
	st, err := db.ReplayDir(dir, parallel)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return db, tbl, st
}

// TestReplayRebuildsState runs transfers against a file-backed
// partitioned WAL, then replays the logs into a fresh store — serially
// and in parallel — and requires both to reproduce the survivor's exact
// row images.
func TestReplayRebuildsState(t *testing.T) {
	const parts = 4
	dir := filepath.Join(t.TempDir(), "wal")
	final := runXferToWAL(t, dir, parts, 4, 40)

	for _, parallel := range []bool{false, true} {
		name := "serial"
		if parallel {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			_, tbl, st := replayFresh(t, dir, parts, parallel)
			if st.Records == 0 || st.Writes == 0 || st.Logs != parts {
				t.Fatalf("replay stats %+v", st)
			}
			if st.Torn != 0 {
				t.Fatalf("cleanly closed logs reported %d torn tails", st.Torn)
			}
			seen := 0
			tbl.Range(func(k uint64, r *storage.Row) bool {
				seen++
				if got := tbl.Schema.GetInt64(r.Entry.CurrentData(), 0); got != final[k] {
					t.Errorf("row %d: replayed balance %d, survivor %d", k, got, final[k])
				}
				return true
			})
			if seen != xferRows {
				t.Fatalf("replayed table has %d rows, want %d", seen, xferRows)
			}
			if err := core.RecoveredTable(tbl); err != nil {
				t.Fatal(err)
			}
			sums, _ := partitionSums(tbl, parts)
			var total int64
			for _, s := range sums {
				total += s
			}
			if want := int64(xferRows * xferInitial); total != want {
				t.Fatalf("total = %d, want %d", total, want)
			}
		})
	}
}

// TestPartitionedCommitRouting pins the split: every record in partition
// p's log contains only writes whose keys route to p, and a transaction
// spanning partitions appears in each touched log under the same TxnID.
func TestPartitionedCommitRouting(t *testing.T) {
	const parts = 4
	dir := filepath.Join(t.TempDir(), "wal")
	cfg := core.Bamboo()
	cfg.Partitions = parts
	cfg.WALDir = dir
	db := core.NewDB(cfg)
	tbl := loadXfer(t, db)
	per := partitionKeys(tbl, parts)
	// Cross-partition transfers: one row from partition 0's key list, one
	// from partition 1's.
	gen := func(worker, seq int) core.TxnFunc {
		a, b := per[0][seq%len(per[0])], per[1][seq%len(per[1])]
		return func(tx core.Tx) error {
			tx.DeclareOps(2)
			if err := tx.Update(tbl.Get(a), func(img []byte) { tbl.Schema.AddInt64(img, 0, -1) }); err != nil {
				return err
			}
			return tx.Update(tbl.Get(b), func(img []byte) { tbl.Schema.AddInt64(img, 0, 1) })
		}
	}
	res := core.RunN(core.NewLockEngine(db), 2, 10, gen)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	txnLogs := map[uint64]int{} // TxnID → number of logs it appears in
	for p := 0; p < parts; p++ {
		_, err := wal.ReplayFile(wal.PartitionLogPath(dir, p), func(rec *wal.Record) error {
			txnLogs[rec.TxnID]++
			for _, w := range rec.Writes {
				if got := tbl.PartitionFor(w.Key); got != p {
					t.Errorf("log %d holds write for key %d (partition %d)", p, w.Key, got)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("log %d: %v", p, err)
		}
	}
	if len(txnLogs) != 20 {
		t.Fatalf("%d distinct transactions logged, want 20", len(txnLogs))
	}
	for id, n := range txnLogs {
		if n != 2 {
			t.Errorf("txn %d appears in %d logs, want 2 (one per touched partition)", id, n)
		}
	}
	// Logs for partitions 2 and 3 must be empty: nothing wrote there.
	for p := 2; p < parts; p++ {
		st, err := wal.ReplayFile(wal.PartitionLogPath(dir, p), func(*wal.Record) error { return nil })
		if err != nil || st.Records != 0 {
			t.Errorf("untouched partition %d log: %d records, err %v", p, st.Records, err)
		}
	}
}

// TestReplayCutAtEveryOffset is the crash-replay property test: the
// partition-0 log is truncated at every byte offset (every possible crash
// point) and replayed; every prefix must yield a prefix-consistent store
// — partition sums conserved (transfers are partition-local and each
// record is applied atomically or not at all), row counts intact, and the
// torn tail tolerated without error.
func TestReplayCutAtEveryOffset(t *testing.T) {
	const parts = 2
	srcDir := filepath.Join(t.TempDir(), "wal")
	runXferToWAL(t, srcDir, parts, 2, 25)

	log0, err := os.ReadFile(wal.PartitionLogPath(srcDir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(log0) == 0 {
		t.Fatal("partition 0 log is empty; workload did not touch it")
	}
	// The replay dir shares the untouched partition logs; only log 0 is
	// rewritten per cut.
	cutDir := filepath.Join(t.TempDir(), "cut")
	if err := os.MkdirAll(cutDir, 0o755); err != nil {
		t.Fatal(err)
	}
	var otherBytes int64
	for p := 1; p < parts; p++ {
		b, err := os.ReadFile(wal.PartitionLogPath(srcDir, p))
		if err != nil {
			t.Fatal(err)
		}
		otherBytes += int64(len(b))
		if err := os.WriteFile(wal.PartitionLogPath(cutDir, p), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	step := 1
	if testing.Short() {
		// Every offset is ~len(log0) replays; sample under -short but
		// always include the interesting region around each boundary.
		step = 7
	}
	wantTotal := int64(xferRows * xferInitial)
	for cut := 0; cut <= len(log0); cut += step {
		if err := os.WriteFile(wal.PartitionLogPath(cutDir, 0), log0[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, tbl, st := replayFresh(t, cutDir, parts, cut%2 == 0) // alternate serial/parallel
		sums, counts := partitionSums(tbl, parts)
		var total int64
		for p := 0; p < parts; p++ {
			total += sums[p]
			if counts[p] == 0 {
				t.Fatalf("cut %d: partition %d lost its rows", cut, p)
			}
		}
		if total != wantTotal {
			t.Fatalf("cut %d: total balance %d, want %d (prefix not conserved; stats %+v)",
				cut, total, wantTotal, st)
		}
		// Bytes aggregates all logs; log 0 can contribute at most the cut.
		if max := int64(cut) + otherBytes; st.Bytes > max {
			t.Fatalf("cut %d: replay claims %d complete bytes, max %d", cut, st.Bytes, max)
		}
	}
}

// TestReplayInserts covers transactional inserts through the partitioned
// log: buffered inserts are logged in their owning partition's record and
// replay re-creates the rows.
func TestReplayInserts(t *testing.T) {
	const parts = 2
	dir := filepath.Join(t.TempDir(), "wal")
	cfg := core.Bamboo()
	cfg.Partitions = parts
	cfg.WALDir = dir
	db := core.NewDB(cfg)
	tbl := loadXfer(t, db)
	const inserts = 10
	gen := func(worker, seq int) core.TxnFunc {
		key := uint64(xferRows + worker*inserts + seq)
		return func(tx core.Tx) error {
			img := tbl.Schema.NewRowImage()
			tbl.Schema.SetInt64(img, 0, int64(key))
			return tx.Insert(tbl, key, img)
		}
	}
	if res := core.RunN(core.NewLockEngine(db), 2, inserts, gen); res.Err != nil {
		t.Fatal(res.Err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	_, tbl2, st := replayFresh(t, dir, parts, true)
	if st.Records != 2*inserts {
		t.Fatalf("replayed %d records, want %d", st.Records, 2*inserts)
	}
	if got := tbl2.Rows(); got != xferRows+2*inserts {
		t.Fatalf("replayed table has %d rows, want %d", got, xferRows+2*inserts)
	}
	for w := 0; w < 2; w++ {
		for s := 0; s < inserts; s++ {
			key := uint64(xferRows + w*inserts + s)
			r := tbl2.Get(key)
			if r == nil {
				t.Fatalf("inserted row %d not replayed", key)
			}
			if got := tbl2.Schema.GetInt64(r.Entry.CurrentData(), 0); got != int64(key) {
				t.Fatalf("row %d image = %d", key, got)
			}
		}
	}
	if err := core.RecoveredTable(tbl2); err != nil {
		t.Fatal(err)
	}
}

// TestWALDirSinglePartition exercises the degenerate case: one partition,
// one file log — the shared-Log API over a FileDevice, replayable.
func TestWALDirSinglePartition(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	final := runXferToWAL(t, dir, 1, 2, 20)
	_, tbl, st := replayFresh(t, dir, 1, false)
	if st.Logs != 1 || st.Records == 0 {
		t.Fatalf("stats %+v", st)
	}
	tbl.Range(func(k uint64, r *storage.Row) bool {
		if got := tbl.Schema.GetInt64(r.Entry.CurrentData(), 0); got != final[k] {
			t.Errorf("row %d: %d != %d", k, got, final[k])
		}
		return true
	})
}

// TestGroupCommitPartitionedWAL drives the per-partition group committers
// over file devices: concurrent committers on every partition, one
// flusher per log, and the batch amortization visible in the stats.
func TestGroupCommitPartitionedWAL(t *testing.T) {
	const parts = 2
	dir := filepath.Join(t.TempDir(), "wal")
	cfg := core.Bamboo()
	cfg.Partitions = parts
	cfg.WALDir = dir
	cfg.WALFsync = wal.FsyncBatch
	cfg.GroupCommit = true
	db := core.NewDB(cfg)
	tbl := loadXfer(t, db)
	per := partitionKeys(tbl, parts)
	res := core.RunN(core.NewLockEngine(db), 4, 25, xferGen(tbl, per))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// Stats before Close: commits block until durable, so all appends are
	// visible, while Close would add its per-device shutdown fsync (on a
	// few-core host piggyback epochs can be single-record, making
	// post-Close syncs exceed appends and the bound meaningless).
	st := db.WALStats()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Appends != 100 {
		t.Fatalf("appended %d records, want 100", st.Appends)
	}
	if st.Syncs == 0 || st.Syncs > st.Appends {
		t.Fatalf("syncs = %d for %d appends", st.Syncs, st.Appends)
	}
	_, tbl2, _ := replayFresh(t, dir, parts, true)
	sums, _ := partitionSums(tbl2, parts)
	var total int64
	for _, s := range sums {
		total += s
	}
	if want := int64(xferRows * xferInitial); total != want {
		t.Fatalf("total %d, want %d", total, want)
	}
}

func ExampleDB_ReplayDir() {
	dir, _ := os.MkdirTemp("", "wal")
	defer os.RemoveAll(dir)
	cfg := core.Bamboo()
	cfg.Partitions = 2
	cfg.WALDir = dir
	cfg.WALFsync = wal.FsyncBatch
	db := core.NewDB(cfg)
	schema := storage.NewSchema("kv", storage.Column{Name: "v", Type: storage.ColInt64})
	tbl, _ := db.Catalog.CreateTablePartitioned(schema, 4, storage.HashPartitioner{N: 2})
	for k := uint64(0); k < 4; k++ {
		tbl.MustInsertRow(k, schema.NewRowImage())
	}
	eng := core.NewLockEngine(db)
	res := core.RunN(eng, 1, 1, func(int, int) core.TxnFunc {
		return func(tx core.Tx) error {
			return tx.Update(tbl.Get(2), func(img []byte) { schema.SetInt64(img, 0, 42) })
		}
	})
	if res.Err != nil {
		fmt.Println(res.Err)
	}
	db.Close()

	// After a crash: reload the base snapshot, then replay the logs.
	db2 := core.NewDB(core.Config{Partitions: 2})
	defer db2.Close()
	tbl2, _ := db2.Catalog.CreateTablePartitioned(schema, 4, storage.HashPartitioner{N: 2})
	for k := uint64(0); k < 4; k++ {
		tbl2.MustInsertRow(k, schema.NewRowImage())
	}
	st, _ := db2.ReplayDir(dir, true)
	fmt.Println(st.Records, schema.GetInt64(tbl2.Get(2).Entry.CurrentData(), 0))
	// Output: 1 42
}
