package lock

import (
	"testing"
)

// adaptiveMgr is the full-Bamboo configuration with the adaptive policy
// hooks enabled, counting batched grants into *count.
func adaptiveMgr(count *int) *Manager {
	return NewManager(Config{
		Variant: Bamboo, RetireReads: true, NoWoundRead: true,
		Adaptive:       true,
		OnBatchedGrant: func(n int) { *count += n },
	})
}

// TestAdaptiveColdSHGrantsAsOwner: on an entry classified PolicyNoRetire
// a shared grant skips the positioned retire-read path and joins owners,
// exactly like plain Wound-Wait — the retired-list bookkeeping only pays
// for itself under contention.
func TestAdaptiveColdSHGrantsAsOwner(t *testing.T) {
	var n int
	m := adaptiveMgr(&n)
	e := newEntry()
	e.SetPolicy(PolicyNoRetire)
	r := mustAcquire(t, m, newTxnTS(1, 1), SH, e)
	if r.Retired() {
		t.Fatal("cold-entry SH grant landed in retired; want plain owner grant")
	}
	if re, ow, _ := e.Snapshot(); re != 0 || ow != 1 {
		t.Fatalf("retired=%d owners=%d, want 0/1", re, ow)
	}
	m.Release(r, false)
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptivePolicyIgnoredWhenOff: a manager built without
// Config.Adaptive never reads the policy word — a stray classification
// cannot change the static protocol.
func TestAdaptivePolicyIgnoredWhenOff(t *testing.T) {
	m := bambooMgr() // Adaptive off
	e := newEntry()
	e.SetPolicy(PolicyNoRetire)
	r := mustAcquire(t, m, newTxnTS(1, 1), SH, e)
	if !r.Retired() {
		t.Fatal("static RetireReads grant should land in retired regardless of policy word")
	}
	m.Release(r, false)
}

// TestAdaptiveHotDefaultUnchanged: PolicyRetire and PolicyDefault keep
// the static full-Bamboo grant behavior on the read path.
func TestAdaptiveHotDefaultUnchanged(t *testing.T) {
	var n int
	for _, p := range []uint32{PolicyDefault, PolicyRetire} {
		m := adaptiveMgr(&n)
		e := newEntry()
		e.SetPolicy(p)
		r := mustAcquire(t, m, newTxnTS(1, 1), SH, e)
		if !r.Retired() {
			t.Fatalf("policy %d: SH grant not retired", p)
		}
		m.Release(r, false)
	}
}

// TestBatchedGrantReaders drives the hot-entry batched grant directly:
// with an exclusive owner active, queued readers *older* than that owner
// are all granted positioned in one promote pass (they read the version
// at their timestamp slot and the younger writer is commit-ordered after
// them), while a reader younger than the owner stays queued — bypassing
// an older writer would break the younger-waits-for-older invariant.
func TestBatchedGrantReaders(t *testing.T) {
	var batched int
	m := adaptiveMgr(&batched)
	e := newEntry()
	e.SetPolicy(PolicyRetire)

	hold := mustAcquire(t, m, newTxnTS(35, 35), EX, e)

	// Queue readers around the owner's timestamp. The head (SH 30) stops
	// the normal promote loop on the owner conflict; the batch pass must
	// pick up both readers older than the owner.
	r30 := &Request{Txn: newTxnTS(30, 30), Mode: SH, entry: e}
	r32 := &Request{Txn: newTxnTS(32, 32), Mode: SH, entry: e}
	r40 := &Request{Txn: newTxnTS(40, 40), Mode: SH, entry: e}
	e.latch.Lock()
	e.waiters.insertByTS(r30)
	e.waiters.insertByTS(r32)
	e.waiters.insertByTS(r40)
	m.promoteWaiters(e)
	e.latch.Unlock()

	if !r30.Retired() || !r32.Retired() {
		t.Fatalf("older readers not batch-granted: r30=%v r32=%v", r30.stateLoad(), r32.stateLoad())
	}
	if r40.Granted() {
		t.Fatal("reader younger than the active writer must stay queued")
	}
	if batched != 2 {
		t.Fatalf("OnBatchedGrant counted %d, want 2", batched)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// The bypassed writer was commit-ordered after the readers.
	if hold.Txn.Sem() == 0 {
		t.Fatal("bypassed writer holds no commit-semaphore increment")
	}
	m.Release(r30, false)
	m.Release(r32, false)
	// Releasing the writer promotes the remaining younger reader.
	m.Release(hold, false)
	if !r40.Granted() {
		t.Fatal("younger reader not granted after the writer released")
	}
	m.Release(r40, false)
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchedGrantSkipsColdEntries: the same stranded-reader shape on an
// entry not classified hot leaves the queue untouched — the batch scan
// is hot-entry-only overhead.
func TestBatchedGrantSkipsColdEntries(t *testing.T) {
	var batched int
	m := adaptiveMgr(&batched)
	e := newEntry()
	e.SetPolicy(PolicyDefault) // unclassified: no batching

	hold := mustAcquire(t, m, newTxnTS(35, 35), EX, e)
	r30 := &Request{Txn: newTxnTS(30, 30), Mode: SH, entry: e}
	e.latch.Lock()
	e.waiters.insertByTS(r30)
	m.promoteWaiters(e)
	e.latch.Unlock()

	if r30.Granted() || batched != 0 {
		t.Fatalf("unclassified entry batch-granted (granted=%v count=%d)", r30.Granted(), batched)
	}
	m.Release(hold, false)
	if !r30.Granted() {
		t.Fatal("reader not granted after writer release")
	}
	m.Release(r30, false)
}

// TestEntryWindowAndPolicy covers the sampling-window primitives the
// adaptive engine builds on.
func TestEntryWindowAndPolicy(t *testing.T) {
	e := newEntry()
	if a, c := e.TakeWindow(); a != 0 || c != 0 {
		t.Fatalf("fresh window = %d/%d", a, c)
	}
	for i := 0; i < 5; i++ {
		e.RecordAccess()
	}
	e.RecordConflict()
	if a, c := e.TakeWindow(); a != 5 || c != 1 {
		t.Fatalf("window = %d/%d, want 5/1", a, c)
	}
	if a, c := e.TakeWindow(); a != 0 || c != 0 {
		t.Fatalf("window not reset: %d/%d", a, c)
	}
	if e.Policy() != PolicyDefault {
		t.Fatal("fresh entry not PolicyDefault")
	}
	if !e.SetPolicy(PolicyRetire) {
		t.Fatal("first classification should report a flip")
	}
	if e.SetPolicy(PolicyRetire) {
		t.Fatal("same policy should not report a flip")
	}
	if !e.SetPolicy(PolicyNoRetire) {
		t.Fatal("policy change should report a flip")
	}
	e.SetEWMA(0.25)
	if got := e.EWMA(); got != 0.25 {
		t.Fatalf("EWMA = %v, want 0.25", got)
	}
}
