package lock

import (
	"bytes"
	"testing"
)

// TestAppendCommittedData pins the fuzzy-checkpoint read: while dirty
// installs sit in the retired list the committed image must be the
// pre-install one; it advances only as the writers actually commit, and
// an abort must never drag it backwards past a committed value.
func TestAppendCommittedData(t *testing.T) {
	committed := func(e *Entry) []byte { return e.AppendCommittedData(nil) }

	m := bambooMgr()
	e := newEntry(1)
	if got := committed(e); !bytes.Equal(got, []byte{1}) {
		t.Fatalf("idle entry committed image = %v", got)
	}

	// Writer 1 retires a dirty install: Data is now 10, committed still 1.
	w1 := newTxnTS(1, 1)
	r1 := mustAcquire(t, m, w1, EX, e)
	r1.Data[0] = 10
	m.Retire(r1)
	if got := e.CurrentData(); got[0] != 10 {
		t.Fatalf("dirty install not published: %v", got)
	}
	if got := committed(e); !bytes.Equal(got, []byte{1}) {
		t.Fatalf("committed image with one dirty install = %v, want [1]", got)
	}

	// Writer 2 chains a second dirty install on top: committed image must
	// still be the original.
	w2 := newTxnTS(2, 2)
	r2 := mustAcquire(t, m, w2, EX, e)
	r2.Data[0] = 20
	m.Retire(r2)
	if got := committed(e); !bytes.Equal(got, []byte{1}) {
		t.Fatalf("committed image with two dirty installs = %v, want [1]", got)
	}

	// Writer 1 commits: its image (10) is now the committed frontier even
	// though writer 2's install (20) is still dirty in Data.
	m.Release(r1, false)
	if got := committed(e); !bytes.Equal(got, []byte{10}) {
		t.Fatalf("committed image after w1 commit = %v, want [10]", got)
	}
	if got := e.CurrentData(); got[0] != 20 {
		t.Fatalf("dirty frontier lost: %v", got)
	}

	// Writer 2 aborts: its install unwinds and the committed image stays
	// at writer 1's value.
	m.Release(r2, true)
	if got := committed(e); !bytes.Equal(got, []byte{10}) {
		t.Fatalf("committed image after w2 abort = %v, want [10]", got)
	}
	if got := e.CurrentData(); got[0] != 10 {
		t.Fatalf("abort did not rewind Data: %v", got)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// A retired read between dirty installs must not perturb the verdict.
	e2 := newEntry(5)
	wa := newTxnTS(10, 10)
	ra := mustAcquire(t, m, wa, EX, e2)
	ra.Data[0] = 50
	m.Retire(ra)
	rd := newTxnTS(11, 11)
	rr := mustAcquire(t, m, rd, SH, e2)
	if got := committed(e2); !bytes.Equal(got, []byte{5}) {
		t.Fatalf("committed image with dirty install + retired read = %v, want [5]", got)
	}
	m.Release(ra, false)
	m.Release(rr, false)
	if got := committed(e2); !bytes.Equal(got, []byte{50}) {
		t.Fatalf("committed image after commit = %v, want [50]", got)
	}

	// AppendCommittedData must append, not replace.
	buf := []byte{0xEE}
	buf = e2.AppendCommittedData(buf)
	if !bytes.Equal(buf, []byte{0xEE, 50}) {
		t.Fatalf("append semantics broken: %v", buf)
	}
}
