// Package lock implements the pluggable lock table at the core of this
// reproduction: a per-tuple lock entry with the three lists of the Bamboo
// paper's Figure 2 (owners, waiters, and — Bamboo only — retired), plus a
// Manager that implements four 2PL deadlock-handling variants behind one
// interface:
//
//   - NoWait    — any conflict aborts the requester immediately;
//   - WaitDie   — older requesters wait, younger self-abort;
//   - WoundWait — younger holders are wounded, otherwise the requester waits;
//   - Bamboo    — WoundWait plus early lock retiring (the paper's §3.2
//     Algorithm 2), dirty reads, commit-semaphore dependency
//     tracking and cascading aborts.
//
// The entry also owns the tuple's data image. Installed images are treated
// as immutable: writers mutate a private copy and publish it with a pointer
// swap at retire (Bamboo) or commit (2PL), so readers can hold references
// without copying and aborts restore pre-images by swapping pointers back.
package lock

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"bamboo/internal/txn"
)

// Mode is a lock mode.
type Mode uint8

const (
	// SH is a shared (read) lock.
	SH Mode = iota
	// EX is an exclusive (write) lock.
	EX
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == SH {
		return "SH"
	}
	return "EX"
}

// Conflict reports whether two lock modes conflict: everything conflicts
// with EX, SH is compatible with SH.
func Conflict(a, b Mode) bool { return a == EX || b == EX }

// Variant selects the deadlock-handling discipline of a Manager.
type Variant uint8

const (
	// NoWait aborts the requester on any conflict.
	NoWait Variant = iota
	// WaitDie lets older transactions wait and aborts younger requesters.
	WaitDie
	// WoundWait aborts younger lock holders and lets younger requesters wait.
	WoundWait
	// Bamboo is WoundWait extended with lock retiring (the paper's protocol).
	Bamboo
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case NoWait:
		return "NO_WAIT"
	case WaitDie:
		return "WAIT_DIE"
	case WoundWait:
		return "WOUND_WAIT"
	case Bamboo:
		return "BAMBOO"
	default:
		return fmt.Sprintf("variant(%d)", uint8(v))
	}
}

// Sentinel errors returned by Acquire. Each maps to an abort cause; the
// caller rolls the transaction back and retries.
var (
	// ErrWound means this transaction was wounded by a higher-priority
	// transaction (possibly while waiting for this very lock).
	ErrWound = errors.New("lock: wounded by higher-priority transaction")
	// ErrDie means the Wait-Die rule requires the requester to self-abort.
	ErrDie = errors.New("lock: wait-die self-abort")
	// ErrNoWait means the No-Wait rule requires the requester to self-abort.
	ErrNoWait = errors.New("lock: no-wait conflict")
	// ErrAborting means the transaction was already marked aborting when it
	// requested the lock (e.g. a cascading abort landed between operations).
	ErrAborting = errors.New("lock: transaction already aborting")
)

// reqState is the lifecycle of a single lock request.
type reqState int32

const (
	reqWaiting  reqState = iota
	reqOwner             // granted, in owners
	reqRetired           // granted, in retired (Bamboo)
	reqDropped           // removed from waiters because the txn is aborting
	reqReleased          // terminal
)

// Request is one transaction's lock request on one entry. It doubles as
// the access handle: the granted data image (Data), the pre-image saved at
// install time (prev) and the commit-semaphore bookkeeping live here.
type Request struct {
	Txn  *txn.Txn
	Mode Mode

	// Data is the data image visible to this request once granted. For SH
	// it references an installed (immutable) image; for EX it is a private
	// mutable copy that will be installed at retire or commit.
	Data []byte

	// Dirty reports whether the image read by this request was produced by
	// a transaction that had not committed at grant time.
	Dirty bool

	entry      *Entry
	state      atomic.Int32
	semHeld    bool   // this request holds one commit_semaphore increment
	installed  bool   // EX image has been published into the entry
	installSeq uint64 // never-reused sequence number of the install
	unwound    bool   // a predecessor's abort rewound past this install
	prev       []byte // image replaced at install (for abort restore)
}

// State snapshot helpers (the canonical state lives behind the entry latch;
// these atomics let waiters poll without the latch).

func (r *Request) stateLoad() reqState { return reqState(r.state.Load()) }

// Granted reports whether the request currently holds the lock (as owner
// or retired).
func (r *Request) Granted() bool {
	s := r.stateLoad()
	return s == reqOwner || s == reqRetired
}

// Retired reports whether the request is in the retired list.
func (r *Request) Retired() bool { return r.stateLoad() == reqRetired }

// Entry is the per-tuple lock entry of Figure 2 plus the tuple's data
// image and a version counter used to make abort restores idempotent.
//
// The zero value is NOT ready to use: initialize Data with Init (or leave
// nil for keyless tuples).
type Entry struct {
	latch sync.Mutex

	// Data is the newest installed image (possibly dirty under Bamboo).
	// Guarded by latch for the lock-based protocols.
	Data []byte

	// seq hands out never-reused install sequence numbers; cur is the
	// sequence position of the image currently in Data (restores rewind
	// cur but never seq, so a stale install can always be told apart from
	// a fresh one). Guarded by latch.
	seq uint64
	cur uint64

	retired []*Request // sorted by ascending timestamp
	owners  []*Request // mutually compatible
	waiters []*Request // sorted by ascending timestamp
}

// Init sets the initial committed image.
func (e *Entry) Init(data []byte) { e.Data = data }

// Snapshot returns the sizes of the three lists; used by tests and stats.
func (e *Entry) Snapshot() (retired, owners, waiters int) {
	e.latch.Lock()
	defer e.latch.Unlock()
	return len(e.retired), len(e.owners), len(e.waiters)
}

// CurrentData returns the newest installed image under the latch. Intended
// for tests and for single-threaded inspection.
func (e *Entry) CurrentData() []byte {
	e.latch.Lock()
	defer e.latch.Unlock()
	return e.Data
}

// remove deletes r from list, returning the new slice and whether found.
func remove(list []*Request, r *Request) ([]*Request, bool) {
	for i, x := range list {
		if x == r {
			return append(list[:i], list[i+1:]...), true
		}
	}
	return list, false
}

// insertByTS inserts r into a timestamp-sorted list.
func insertByTS(list []*Request, r *Request) []*Request {
	ts := r.Txn.TS()
	i := len(list)
	for j, x := range list {
		if x.Txn.TS() > ts {
			i = j
			break
		}
	}
	list = append(list, nil)
	copy(list[i+1:], list[i:])
	list[i] = r
	return list
}

// CheckInvariants verifies structural invariants of the entry under the
// latch; tests call it after randomized histories. It returns an error
// describing the first violation found.
func (e *Entry) CheckInvariants() error {
	e.latch.Lock()
	defer e.latch.Unlock()
	// owners must be mutually compatible.
	for i, a := range e.owners {
		for _, b := range e.owners[i+1:] {
			if Conflict(a.Mode, b.Mode) {
				return fmt.Errorf("owners %s and %s conflict", a.Txn, b.Txn)
			}
		}
	}
	// retired must be timestamp-sorted (waiters are sorted for all
	// variants except Wait-Die, which uses FIFO order; the entry does not
	// know its manager's variant, so only retired is checked here).
	for i := 1; i < len(e.retired); i++ {
		if e.retired[i-1].Txn.TS() > e.retired[i].Txn.TS() {
			return fmt.Errorf("retired not sorted at %d", i)
		}
	}
	// request states must match list membership.
	for _, r := range e.retired {
		if r.stateLoad() != reqRetired {
			return fmt.Errorf("retired list holds request in state %d", r.stateLoad())
		}
	}
	for _, r := range e.owners {
		if r.stateLoad() != reqOwner {
			return fmt.Errorf("owners list holds request in state %d", r.stateLoad())
		}
	}
	return nil
}

// DebugString renders the entry's lists with transaction details; used by
// tests to diagnose stalls.
func (e *Entry) DebugString() string {
	e.latch.Lock()
	defer e.latch.Unlock()
	var b strings.Builder
	dump := func(name string, list []*Request) {
		fmt.Fprintf(&b, "  %s:", name)
		for _, r := range list {
			fmt.Fprintf(&b, " {%s %s sem=%d st=%d semHeld=%v inst=%v unw=%v}",
				r.Mode, r.Txn, r.Txn.Sem(), r.stateLoad(), r.semHeld, r.installed, r.unwound)
		}
		b.WriteString("\n")
	}
	dump("retired", e.retired)
	dump("owners", e.owners)
	dump("waiters", e.waiters)
	return b.String()
}
