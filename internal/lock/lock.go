// Package lock implements the pluggable lock table at the core of this
// reproduction: a per-tuple lock entry with the three lists of the Bamboo
// paper's Figure 2 (owners, waiters, and — Bamboo only — retired), plus a
// Manager that implements four 2PL deadlock-handling variants behind one
// interface:
//
//   - NoWait    — any conflict aborts the requester immediately;
//   - WaitDie   — older requesters wait, younger self-abort;
//   - WoundWait — younger holders are wounded, otherwise the requester waits;
//   - Bamboo    — WoundWait plus early lock retiring (the paper's §3.2
//     Algorithm 2), dirty reads, commit-semaphore dependency
//     tracking and cascading aborts.
//
// The entry also owns the tuple's data image. Installed images are treated
// as immutable: writers mutate a private copy and publish it with a pointer
// swap at retire (Bamboo) or commit (2PL), so readers can hold references
// without copying and aborts restore pre-images by swapping pointers back.
//
// Hot-path memory discipline: the three lists are intrusive doubly-linked
// lists threaded through the Request itself, so list surgery (grant,
// retire, release, promote) never allocates. Requests are recycled through
// per-worker freelists (Pool); see the quiescence rule on Pool.Put.
package lock

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"bamboo/internal/txn"
)

// Mode is a lock mode.
type Mode uint8

const (
	// SH is a shared (read) lock.
	SH Mode = iota
	// EX is an exclusive (write) lock.
	EX
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == SH {
		return "SH"
	}
	return "EX"
}

// Conflict reports whether two lock modes conflict: everything conflicts
// with EX, SH is compatible with SH.
func Conflict(a, b Mode) bool { return a == EX || b == EX }

// Variant selects the deadlock-handling discipline of a Manager.
type Variant uint8

const (
	// NoWait aborts the requester on any conflict.
	NoWait Variant = iota
	// WaitDie lets older transactions wait and aborts younger requesters.
	WaitDie
	// WoundWait aborts younger lock holders and lets younger requesters wait.
	WoundWait
	// Bamboo is WoundWait extended with lock retiring (the paper's protocol).
	Bamboo
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case NoWait:
		return "NO_WAIT"
	case WaitDie:
		return "WAIT_DIE"
	case WoundWait:
		return "WOUND_WAIT"
	case Bamboo:
		return "BAMBOO"
	default:
		return fmt.Sprintf("variant(%d)", uint8(v))
	}
}

// Sentinel errors returned by Acquire. Each maps to an abort cause; the
// caller rolls the transaction back and retries.
var (
	// ErrWound means this transaction was wounded by a higher-priority
	// transaction (possibly while waiting for this very lock).
	ErrWound = errors.New("lock: wounded by higher-priority transaction")
	// ErrDie means the Wait-Die rule requires the requester to self-abort.
	ErrDie = errors.New("lock: wait-die self-abort")
	// ErrNoWait means the No-Wait rule requires the requester to self-abort.
	ErrNoWait = errors.New("lock: no-wait conflict")
	// ErrAborting means the transaction was already marked aborting when it
	// requested the lock (e.g. a cascading abort landed between operations).
	ErrAborting = errors.New("lock: transaction already aborting")
)

// Per-entry adaptive contention-control policies. The policy word is
// written only by the feedback engine (internal/adaptive) and read
// lock-free by the executor's retire decision and the Manager's grant
// paths; PolicyDefault means "follow the static configuration".
const (
	// PolicyDefault follows the manager's static configuration.
	PolicyDefault uint32 = iota
	// PolicyRetire marks a hot entry: Bamboo retires early here and
	// exclusive releases grant all compatible queued readers in one
	// latch pass (batched grant).
	PolicyRetire
	// PolicyNoRetire marks a cold entry: retiring is suppressed and
	// grants behave like plain Wound-Wait, skipping the retired-list
	// bookkeeping that only pays for itself under contention.
	PolicyNoRetire
)

// reqState is the lifecycle of a single lock request.
type reqState int32

const (
	reqWaiting  reqState = iota
	reqOwner             // granted, in owners
	reqRetired           // granted, in retired (Bamboo)
	reqDropped           // removed from waiters because the txn is aborting
	reqReleased          // terminal
)

// Request is one transaction's lock request on one entry. It doubles as
// the access handle: the granted data image (Data), the pre-image saved at
// install time (prevImg) and the commit-semaphore bookkeeping live here.
//
// A Request is a member of at most one entry list at a time (waiters →
// owners → retired); the intrusive next/prev links and the onList back
// pointer are guarded by the entry latch.
type Request struct {
	Txn  *txn.Txn
	Mode Mode

	// Data is the data image visible to this request once granted. For SH
	// it references an installed (immutable) image; for EX it is a private
	// mutable copy that will be installed at retire or commit.
	Data []byte

	// Dirty reports whether the image read by this request was produced by
	// a transaction that had not committed at grant time.
	Dirty bool

	// Intrusive list node. Guarded by the entry latch.
	next, prev *Request
	onList     *reqList

	// Read is the installed image an exclusive grant or upgrade observed
	// — the immutable pre-image its private copy (Data) was built from.
	// Executors that capture read images use it as a reference instead of
	// cloning; it is meaningful only while the request is held, and only
	// safe to retain past release when image recycling is off (installed
	// images are then never overwritten).
	Read []byte

	// gen counts recycles through a Pool; tests use it to detect
	// reuse-after-release (a request whose generation changed while a
	// caller still held it was recycled under that caller's feet).
	gen uint64

	// buf is the request's spare image buffer: storage captured from a
	// provably unreferenced superseded image at commit release (or donated
	// by the MVCC version-chain harvest), consumed by the next private
	// write copy (takeBuf). Like gen it survives reset()/Pool.Put, so the
	// spare rides the freelist and steady-state write grants stop
	// allocating.
	buf []byte

	// imgCopies/imgReuses count private image copies built for this
	// request since Get: fresh allocations vs. spare-buffer reuses.
	// Harvested by the executor (ImageStats) after Release, before
	// Pool.Put.
	imgCopies uint32
	imgReuses uint32

	entry      *Entry
	state      atomic.Int32
	semHeld    bool   // this request holds one commit_semaphore increment
	installed  bool   // EX image has been published into the entry
	installSeq uint64 // never-reused sequence number of the install
	unwound    bool   // a predecessor's abort rewound past this install
	prevImg    []byte // image replaced at install (for abort restore)
}

// State snapshot helpers (the canonical state lives behind the entry latch;
// these atomics let waiters poll without the latch).

func (r *Request) stateLoad() reqState { return reqState(r.state.Load()) }

// Granted reports whether the request currently holds the lock (as owner
// or retired).
func (r *Request) Granted() bool {
	s := r.stateLoad()
	return s == reqOwner || s == reqRetired
}

// Retired reports whether the request is in the retired list.
func (r *Request) Retired() bool { return r.stateLoad() == reqRetired }

// Gen returns the request's recycle generation. It changes only inside
// Pool.Put, so a holder that observes a changed generation has witnessed a
// reuse-after-release bug.
func (r *Request) Gen() uint64 { return r.gen }

// reset returns the request to its zero state, keeping the generation
// counter and the spare image buffer. Called by Pool.Put on quiescent
// requests only.
func (r *Request) reset() {
	r.Txn = nil
	r.Mode = SH
	r.Data = nil
	r.Read = nil
	r.Dirty = false
	r.next, r.prev, r.onList = nil, nil, nil
	r.entry = nil
	r.semHeld = false
	r.installed = false
	r.installSeq = 0
	r.unwound = false
	r.prevImg = nil
	r.imgCopies = 0
	r.imgReuses = 0
	r.state.Store(int32(reqWaiting))
}

// takeBuf builds a private copy of src, drawing storage from the
// request's spare buffer when it fits. The spare slot is consumed either
// way, so a capture at release can never alias an image that is still
// someone's private copy. A nil src stays nil (keyless entries) and the
// spare is kept.
func (r *Request) takeBuf(src []byte) []byte {
	if src == nil {
		return nil
	}
	b := r.buf
	r.buf = nil
	if cap(b) < len(src) {
		r.imgCopies++
		b = make([]byte, len(src))
	} else {
		r.imgReuses++
		b = b[:len(src)]
	}
	copy(b, src)
	return b
}

// captureSpare stashes img as the request's spare buffer. Callers must
// prove img is unreachable by every other holder, reader, version chain
// and WAL batch — see the release-time capture rules in releaseLocked.
// The capacity clamp keeps a capture from ever growing into a neighbor's
// storage (loader images may be sliced from larger allocations).
func (r *Request) captureSpare(img []byte) {
	if len(img) > 0 {
		r.buf = img[:len(img):len(img)]
	}
}

// CloneImage returns a private mutable copy of the request's current
// image, drawing storage from the request's spare buffer when possible.
// The executor uses it to build the after-image for UpgradeRetire; a
// caller whose copy ends up never installed may donate the storage back
// with StashBuf.
func (r *Request) CloneImage() []byte { return r.takeBuf(r.Data) }

// StashBuf donates b as the request's spare image buffer. b must be
// unreachable by any other component (a failed UpgradeRetire after-image
// that was never installed, or a version-chain image detached below the
// reclaim watermark). Only the holding session may call it.
func (r *Request) StashBuf(b []byte) {
	if len(b) > 0 {
		r.buf = b[:len(b):len(b)]
	}
}

// ImageStats returns and resets the request's image-copy counters: fresh
// after-image allocations and spare-buffer reuses since Get. Executors
// harvest them after Release (or an Acquire error) into their per-worker
// stats collector.
func (r *Request) ImageStats() (copies, reuses uint32) {
	c, u := r.imgCopies, r.imgReuses
	r.imgCopies, r.imgReuses = 0, 0
	return c, u
}

// Pool is a per-worker freelist of Requests. It is NOT safe for concurrent
// use: each worker session owns one. The zero value is ready to use.
type Pool struct {
	free []*Request
}

// Get returns a zeroed Request, recycling a quiescent one if available.
func (p *Pool) Get() *Request {
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return r
	}
	return &Request{}
}

// Put recycles r.
//
// Quiescence rule: a Request may be recycled only once it is detached from
// every entry list and no other goroutine can reach it. Both conditions
// hold exactly when AcquireInto returned an error for r, or Release(r)
// returned: list membership changes only under the entry latch, and every
// cross-request reference the protocol takes (wound scans, cascade scans,
// versionAt, orderSuccessors, notifyHeads) is derived from list membership
// inside one latch critical section and never retained past it — wounds
// and semaphore operations target the Txn, not the Request. Put panics if
// r is still on a list, which would be a caller bug.
func (p *Pool) Put(r *Request) {
	if r.onList != nil {
		panic("lock: Pool.Put of a request still on an entry list")
	}
	r.gen++
	r.reset()
	p.free = append(p.free, r)
}

// reqList is an intrusive doubly-linked list of Requests, guarded by the
// owning entry's latch.
type reqList struct {
	head, tail *Request
	n          int
}

func (l *reqList) len() int { return l.n }

func (l *reqList) pushBack(r *Request) { l.insertBefore(r, nil) }

func (l *reqList) pushFront(r *Request) { l.insertBefore(r, l.head) }

// insertBefore links r into the list immediately before at; at == nil
// appends at the tail. r must be detached.
func (l *reqList) insertBefore(r, at *Request) {
	if r.onList != nil {
		panic("lock: insert of a request already on a list")
	}
	r.onList = l
	if at == nil {
		r.prev = l.tail
		r.next = nil
		if l.tail != nil {
			l.tail.next = r
		} else {
			l.head = r
		}
		l.tail = r
	} else {
		r.prev = at.prev
		r.next = at
		if at.prev != nil {
			at.prev.next = r
		} else {
			l.head = r
		}
		at.prev = r
	}
	l.n++
}

// insertByTS inserts r in ascending timestamp order (after any equal
// timestamps, preserving arrival order).
func (l *reqList) insertByTS(r *Request) {
	ts := r.Txn.TS()
	at := l.head
	for at != nil && at.Txn.TS() <= ts {
		at = at.next
	}
	l.insertBefore(r, at)
}

// remove unlinks r; it must be a member of this list.
func (l *reqList) remove(r *Request) {
	if r.onList != l {
		panic("lock: remove of a request not on this list")
	}
	if r.prev != nil {
		r.prev.next = r.next
	} else {
		l.head = r.next
	}
	if r.next != nil {
		r.next.prev = r.prev
	} else {
		l.tail = r.prev
	}
	r.next, r.prev, r.onList = nil, nil, nil
	l.n--
}

// Entry is the per-tuple lock entry of Figure 2 plus the tuple's data
// image and a version counter used to make abort restores idempotent.
//
// The zero value is NOT ready to use: initialize Data with Init (or leave
// nil for keyless tuples).
type Entry struct {
	latch sync.Mutex

	// Data is the newest installed image (possibly dirty under Bamboo).
	// Guarded by latch for the lock-based protocols.
	Data []byte

	// seq hands out never-reused install sequence numbers; cur is the
	// sequence position of the image currently in Data (restores rewind
	// cur but never seq, so a stale install can always be told apart from
	// a fresh one). Guarded by latch.
	seq uint64
	cur uint64

	retired reqList // sorted by ascending timestamp
	owners  reqList // mutually compatible
	waiters reqList // sorted by ascending timestamp (FIFO under Wait-Die)

	// upgrading marks a pending SH→EX upgrade (the oldest one, if several
	// race). Grant paths treat it as an exclusive request at its holder's
	// timestamp so younger readers queue instead of being granted and
	// immediately wounded again — without it an upgrade could be starved
	// by reader churn, since the upgrader never joins the waiters list.
	// Guarded by latch.
	upgrading *Request

	// scratch is reused by orderSuccessorsLocked to track applied
	// semaphore increments without allocating. Guarded by latch.
	scratch []*Request

	// Adaptive contention-control state. policy is the per-entry override
	// (PolicyDefault/PolicyRetire/PolicyNoRetire), written only by the
	// adaptive engine and read lock-free on grant and retire paths. ewma
	// is the engine's per-entry conflicts-per-access EWMA (float32 bits),
	// engine-owned so classification state needs no side table. window
	// packs the engine's sampling window — accesses in the low half,
	// conflicts in the high half — so the executor feeds it with a single
	// atomic add (only when adaptive mode is on) and each engine tick
	// swaps it back to zero in one operation. seen marks the entry as
	// registered with the engine's sweep list; it latches to 1 on the
	// entry's first recorded access and is never reset.
	policy atomic.Uint32
	ewma   atomic.Uint32
	seen   atomic.Uint32
	window atomic.Uint64
}

// Init sets the initial committed image.
func (e *Entry) Init(data []byte) { e.Data = data }

// Policy returns the entry's adaptive policy word (PolicyDefault when no
// adaptive engine has classified it).
func (e *Entry) Policy() uint32 { return e.policy.Load() }

// SetPolicy installs a policy word. Only the adaptive engine calls this;
// it returns true when the word actually changed (a policy flip).
func (e *Entry) SetPolicy(p uint32) bool { return e.policy.Swap(p) != p }

// RecordAccess counts one access in the adaptive sampling window and
// returns the window's new access count. Callers gate this on adaptive
// mode being enabled so the default hot path pays nothing; a return of 1
// (the window's first access — once per tick) is the cue to check
// MarkSeen, keeping first-access registration off the per-access path.
func (e *Entry) RecordAccess() uint32 { return uint32(e.window.Add(1)) }

// RecordConflict counts one conflicted access (the requester waited, was
// wounded, or aborted) in the adaptive sampling window.
func (e *Entry) RecordConflict() { e.window.Add(1 << 32) }

// MarkSeen latches the entry's registration flag, returning true exactly
// once — on the entry's first recorded access — so the caller can hand it
// to the adaptive engine's sweep list. The fast path after that is a
// single mostly-cached atomic load.
func (e *Entry) MarkSeen() bool {
	if e.seen.Load() != 0 {
		return false
	}
	return e.seen.CompareAndSwap(0, 1)
}

// TakeWindow returns and resets the sampling window. Only the adaptive
// engine calls this, once per tick. The cheap Load-first check keeps idle
// entries' cachelines clean during scans.
func (e *Entry) TakeWindow() (accesses, conflicts uint32) {
	if e.window.Load() == 0 {
		return 0, 0
	}
	w := e.window.Swap(0)
	return uint32(w), uint32(w >> 32)
}

// EWMA returns the engine-maintained conflicts-per-access EWMA.
func (e *Entry) EWMA() float32 { return math.Float32frombits(e.ewma.Load()) }

// SetEWMA stores the engine-maintained EWMA.
func (e *Entry) SetEWMA(v float32) { e.ewma.Store(math.Float32bits(v)) }

// Snapshot returns the sizes of the three lists; used by tests and stats.
func (e *Entry) Snapshot() (retired, owners, waiters int) {
	e.latch.Lock()
	defer e.latch.Unlock()
	return e.retired.len(), e.owners.len(), e.waiters.len()
}

// CurrentData returns the newest installed image under the latch. Intended
// for tests and for single-threaded inspection.
func (e *Entry) CurrentData() []byte {
	e.latch.Lock()
	defer e.latch.Unlock()
	return e.Data
}

// AppendCommittedData appends the entry's newest *committed* image onto
// buf under the latch and returns the extended slice. Under Bamboo the
// entry's current image may be a dirty install published by a retired —
// not yet committed — writer; checkpointing that image would persist
// state a later abort unwinds. The committed image is the version a
// reader inserted before every retired request would observe: the
// pre-image of the first live exclusive install in the retired list, or
// Data itself when no uncommitted install exists. Fuzzy checkpoints use
// this to snapshot rows without stopping writers.
func (e *Entry) AppendCommittedData(buf []byte) []byte {
	e.latch.Lock()
	defer e.latch.Unlock()
	return append(buf, versionAt(e, e.retired.head)...)
}

// CheckInvariants verifies structural invariants of the entry under the
// latch; tests call it after randomized histories. It returns an error
// describing the first violation found.
func (e *Entry) CheckInvariants() error {
	e.latch.Lock()
	defer e.latch.Unlock()
	// intrusive links must be consistent.
	for _, l := range []*reqList{&e.retired, &e.owners, &e.waiters} {
		n := 0
		var prev *Request
		for x := l.head; x != nil; x = x.next {
			if x.onList != l {
				return fmt.Errorf("list node %s has wrong back pointer", x.Txn)
			}
			if x.prev != prev {
				return fmt.Errorf("broken prev link at %s", x.Txn)
			}
			prev = x
			n++
		}
		if l.tail != prev {
			return fmt.Errorf("tail pointer mismatch")
		}
		if n != l.n {
			return fmt.Errorf("list length %d, counted %d", l.n, n)
		}
	}
	// owners must be mutually compatible.
	for a := e.owners.head; a != nil; a = a.next {
		for b := a.next; b != nil; b = b.next {
			if Conflict(a.Mode, b.Mode) {
				return fmt.Errorf("owners %s and %s conflict", a.Txn, b.Txn)
			}
		}
	}
	// retired must be timestamp-sorted (waiters are sorted for all
	// variants except Wait-Die, which uses FIFO order; the entry does not
	// know its manager's variant, so only retired is checked here).
	for x := e.retired.head; x != nil && x.next != nil; x = x.next {
		if x.Txn.TS() > x.next.Txn.TS() {
			return fmt.Errorf("retired not sorted at %s", x.next.Txn)
		}
	}
	// a pending upgrade must reference a granted member of this entry.
	if u := e.upgrading; u != nil {
		if u.onList != &e.owners && u.onList != &e.retired {
			return fmt.Errorf("pending upgrade %s is not a holder", u.Txn)
		}
	}
	// request states must match list membership.
	for x := e.retired.head; x != nil; x = x.next {
		if x.stateLoad() != reqRetired {
			return fmt.Errorf("retired list holds request in state %d", x.stateLoad())
		}
	}
	for x := e.owners.head; x != nil; x = x.next {
		if x.stateLoad() != reqOwner {
			return fmt.Errorf("owners list holds request in state %d", x.stateLoad())
		}
	}
	return nil
}

// DebugString renders the entry's lists with transaction details; used by
// tests to diagnose stalls.
func (e *Entry) DebugString() string {
	e.latch.Lock()
	defer e.latch.Unlock()
	var b strings.Builder
	dump := func(name string, l *reqList) {
		fmt.Fprintf(&b, "  %s:", name)
		for r := l.head; r != nil; r = r.next {
			fmt.Fprintf(&b, " {%s %s sem=%d st=%d semHeld=%v inst=%v unw=%v}",
				r.Mode, r.Txn, r.Txn.Sem(), r.stateLoad(), r.semHeld, r.installed, r.unwound)
		}
		b.WriteString("\n")
	}
	dump("retired", &e.retired)
	dump("owners", &e.owners)
	dump("waiters", &e.waiters)
	return b.String()
}
