package lock

import (
	"testing"

	"bamboo/internal/txn"
)

func TestConflictMatrix(t *testing.T) {
	cases := []struct {
		a, b Mode
		want bool
	}{
		{SH, SH, false},
		{SH, EX, true},
		{EX, SH, true},
		{EX, EX, true},
	}
	for _, c := range cases {
		if got := Conflict(c.a, c.b); got != c.want {
			t.Errorf("Conflict(%s,%s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestStrings(t *testing.T) {
	if SH.String() != "SH" || EX.String() != "EX" {
		t.Errorf("mode strings: %s %s", SH, EX)
	}
	for v, want := range map[Variant]string{
		NoWait: "NO_WAIT", WaitDie: "WAIT_DIE", WoundWait: "WOUND_WAIT", Bamboo: "BAMBOO",
	} {
		if v.String() != want {
			t.Errorf("variant %d string = %q, want %q", v, v.String(), want)
		}
	}
}

func newTxnTS(id, ts uint64) *txn.Txn {
	t := txn.New(id)
	t.SetTS(ts)
	return t
}

func newEntry(data ...byte) *Entry {
	e := &Entry{}
	if data == nil {
		data = []byte{0}
	}
	e.Init(data)
	return e
}

func bambooMgr() *Manager {
	return NewManager(Config{Variant: Bamboo, RetireReads: true, NoWoundRead: true})
}

func mustAcquire(t *testing.T, m *Manager, tx *txn.Txn, mode Mode, e *Entry) *Request {
	t.Helper()
	r, err := m.Acquire(tx, mode, e)
	if err != nil {
		t.Fatalf("acquire %s for %v: %v", mode, tx, err)
	}
	return r
}

func TestInsertByTS(t *testing.T) {
	var list reqList
	for _, ts := range []uint64{5, 1, 3, 9, 2} {
		list.insertByTS(&Request{Txn: newTxnTS(ts, ts)})
	}
	var got []uint64
	for r := list.head; r != nil; r = r.next {
		got = append(got, r.Txn.TS())
	}
	want := []uint64{1, 2, 3, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted order = %v, want %v", got, want)
		}
	}
}

func TestNoWaitConflict(t *testing.T) {
	m := NewManager(Config{Variant: NoWait})
	e := newEntry()
	t1 := newTxnTS(1, 1)
	r1 := mustAcquire(t, m, t1, EX, e)
	t2 := newTxnTS(2, 2)
	if _, err := m.Acquire(t2, EX, e); err != ErrNoWait {
		t.Fatalf("second EX: err = %v, want ErrNoWait", err)
	}
	if _, err := m.Acquire(t2, SH, e); err != ErrNoWait {
		t.Fatalf("SH over EX: err = %v, want ErrNoWait", err)
	}
	m.Release(r1, false)
	// SH + SH is compatible.
	r2 := mustAcquire(t, m, t2, SH, e)
	t3 := newTxnTS(3, 3)
	r3 := mustAcquire(t, m, t3, SH, e)
	m.Release(r2, false)
	m.Release(r3, false)
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitDieYoungerDies(t *testing.T) {
	m := NewManager(Config{Variant: WaitDie})
	e := newEntry()
	old := newTxnTS(1, 1)
	young := newTxnTS(2, 2)
	rOld := mustAcquire(t, m, old, EX, e)
	if _, err := m.Acquire(young, EX, e); err != ErrDie {
		t.Fatalf("younger requester: err = %v, want ErrDie", err)
	}
	m.Release(rOld, false)
}

func TestWaitDieOlderWaits(t *testing.T) {
	m := NewManager(Config{Variant: WaitDie})
	e := newEntry()
	young := newTxnTS(2, 10)
	old := newTxnTS(1, 1)
	rYoung := mustAcquire(t, m, young, EX, e)
	done := make(chan *Request)
	go func() {
		r, err := m.Acquire(old, EX, e)
		if err != nil {
			t.Errorf("older requester should wait, got %v", err)
		}
		done <- r
	}()
	// The older transaction must not be granted while the younger owns.
	select {
	case <-done:
		t.Fatal("older transaction granted while younger still owns")
	default:
	}
	m.Release(rYoung, false)
	rOld := <-done
	if rOld == nil {
		t.Fatal("older transaction was not granted after release")
	}
	m.Release(rOld, false)
}

func TestWaitDieDiesOnOlderWaiter(t *testing.T) {
	// A requester younger than a queued conflicting waiter must die, or
	// FIFO queuing could produce young-waits-for-old edges and deadlock.
	m := NewManager(Config{Variant: WaitDie})
	e := newEntry()
	owner := newTxnTS(3, 30)
	rOwner := mustAcquire(t, m, owner, EX, e)
	waiter := newTxnTS(1, 1)
	granted := make(chan *Request)
	go func() {
		r, _ := m.Acquire(waiter, EX, e)
		granted <- r
	}()
	waitForWaiters(t, e, 1)
	mid := newTxnTS(2, 5) // older than owner, younger than queued waiter
	if _, err := m.Acquire(mid, EX, e); err != ErrDie {
		t.Fatalf("requester younger than queued waiter: err = %v, want ErrDie", err)
	}
	m.Release(rOwner, false)
	if r := <-granted; r != nil {
		m.Release(r, false)
	}
}

func waitForWaiters(t *testing.T, e *Entry, n int) {
	t.Helper()
	for i := 0; ; i++ {
		if _, _, w := e.Snapshot(); w >= n {
			return
		}
		if i > 1e7 {
			t.Fatal("timed out waiting for waiter to enqueue")
		}
		Backoff(i)
	}
}

func TestWoundWaitWoundsYounger(t *testing.T) {
	m := NewManager(Config{Variant: WoundWait})
	e := newEntry()
	young := newTxnTS(2, 10)
	rYoung := mustAcquire(t, m, young, EX, e)

	old := newTxnTS(1, 1)
	granted := make(chan *Request)
	go func() {
		r, err := m.Acquire(old, EX, e)
		if err != nil {
			t.Errorf("older requester: %v", err)
		}
		granted <- r
	}()
	// The younger owner must be wounded.
	for i := 0; !young.Aborting(); i++ {
		if i > 1e7 {
			t.Fatal("younger owner was never wounded")
		}
		Backoff(i)
	}
	if young.Cause() != txn.CauseWound {
		t.Fatalf("cause = %v, want wound", young.Cause())
	}
	// The wounded owner's worker rolls back, releasing the lock.
	m.Release(rYoung, true)
	rOld := <-granted
	m.Release(rOld, false)
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWoundWaitYoungerWaits(t *testing.T) {
	m := NewManager(Config{Variant: WoundWait})
	e := newEntry()
	old := newTxnTS(1, 1)
	rOld := mustAcquire(t, m, old, EX, e)
	young := newTxnTS(2, 10)
	granted := make(chan *Request)
	go func() {
		r, err := m.Acquire(young, EX, e)
		if err != nil {
			t.Errorf("younger requester should wait: %v", err)
		}
		granted <- r
	}()
	waitForWaiters(t, e, 1)
	if old.Aborting() {
		t.Fatal("older owner must not be wounded by younger requester")
	}
	m.Release(rOld, false)
	rYoung := <-granted
	m.Release(rYoung, false)
}

func TestBambooRetireAndDirtyRead(t *testing.T) {
	m := bambooMgr()
	e := newEntry(0)
	w := newTxnTS(1, 1)
	rw := mustAcquire(t, m, w, EX, e)
	rw.Data[0] = 42
	m.Retire(rw)
	if !rw.Retired() {
		t.Fatal("write lock not retired")
	}

	// A later reader sees the dirty value and picks up a dependency.
	rd := newTxnTS(2, 2)
	rr := mustAcquire(t, m, rd, SH, e)
	if rr.Data[0] != 42 {
		t.Fatalf("dirty read got %d, want 42", rr.Data[0])
	}
	if !rr.Dirty {
		t.Fatal("read not flagged dirty")
	}
	if rd.Sem() != 1 {
		t.Fatalf("reader semaphore = %d, want 1", rd.Sem())
	}
	if !rr.Retired() {
		t.Fatal("read should retire at grant (Optimization 1)")
	}

	// Writer commits: reader's dependency clears.
	m.Release(rw, false)
	if rd.Sem() != 0 {
		t.Fatalf("reader semaphore after writer commit = %d, want 0", rd.Sem())
	}
	m.Release(rr, false)
	if got := e.CurrentData()[0]; got != 42 {
		t.Fatalf("committed data = %d, want 42", got)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBambooWriteAfterRetiredWrite(t *testing.T) {
	// Two writers chain on the same tuple: the second reads the first's
	// dirty image as its read-modify-write base.
	m := bambooMgr()
	e := newEntry(1)
	w1 := newTxnTS(1, 1)
	r1 := mustAcquire(t, m, w1, EX, e)
	r1.Data[0] = 10
	m.Retire(r1)

	w2 := newTxnTS(2, 2)
	r2 := mustAcquire(t, m, w2, EX, e)
	if r2.Data[0] != 10 {
		t.Fatalf("RMW base = %d, want dirty 10", r2.Data[0])
	}
	if !r2.Dirty {
		t.Fatal("second writer should be flagged dirty")
	}
	if w2.Sem() != 1 {
		t.Fatalf("w2 semaphore = %d, want 1", w2.Sem())
	}
	r2.Data[0] = 20
	m.Retire(r2)

	m.Release(r1, false)
	if w2.Sem() != 0 {
		t.Fatalf("w2 semaphore after w1 commit = %d, want 0", w2.Sem())
	}
	m.Release(r2, false)
	if got := e.CurrentData()[0]; got != 20 {
		t.Fatalf("final data = %d, want 20", got)
	}
}

func TestBambooCascadingAbort(t *testing.T) {
	var chains []int
	m := NewManager(Config{
		Variant: Bamboo, RetireReads: true, NoWoundRead: true,
		OnCascade: func(n int) { chains = append(chains, n) },
	})
	e := newEntry(1)

	w1 := newTxnTS(1, 1)
	r1 := mustAcquire(t, m, w1, EX, e)
	r1.Data[0] = 10
	m.Retire(r1)

	w2 := newTxnTS(2, 2)
	r2 := mustAcquire(t, m, w2, EX, e)
	r2.Data[0] = 20
	m.Retire(r2)

	rd := newTxnTS(3, 3)
	rr := mustAcquire(t, m, rd, SH, e)
	if rr.Data[0] != 20 {
		t.Fatalf("reader sees %d, want 20", rr.Data[0])
	}

	// w1 aborts: w2 and the reader must cascade.
	w1.SetAbort(txn.CauseUser)
	m.Release(r1, true)
	if !w2.Aborting() || !rd.Aborting() {
		t.Fatal("cascade did not abort successors")
	}
	if w2.Cause() != txn.CauseCascade || rd.Cause() != txn.CauseCascade {
		t.Fatalf("causes = %v, %v; want cascade", w2.Cause(), rd.Cause())
	}
	if len(chains) != 1 || chains[0] != 2 {
		t.Fatalf("chains = %v, want [2]", chains)
	}

	// Their rollbacks arrive in an arbitrary order; data must rewind to
	// the pre-w1 image.
	m.Release(r2, true)
	m.Release(rr, true)
	if got := e.CurrentData()[0]; got != 1 {
		t.Fatalf("restored data = %d, want 1", got)
	}
	if w1.Sem() != 0 || w2.Sem() != 0 || rd.Sem() != 0 {
		t.Fatal("semaphores not drained after cascade")
	}
	if ret, own, wait := e.Snapshot(); ret+own+wait != 0 {
		t.Fatalf("entry not empty: %d/%d/%d", ret, own, wait)
	}
}

func TestVersionGuardedRestoreAllOrders(t *testing.T) {
	// Three chained dirty writers all abort; every release order must
	// rewind the entry to the initial image.
	perms := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, p := range perms {
		m := bambooMgr()
		e := newEntry(9)
		var reqs [3]*Request
		for i := 0; i < 3; i++ {
			tx := newTxnTS(uint64(i+1), uint64(i+1))
			r := mustAcquire(t, m, tx, EX, e)
			r.Data[0] = byte(10 * (i + 1))
			m.Retire(r)
			reqs[i] = r
		}
		// Abort the head: everyone cascades.
		reqs[0].Txn.SetAbort(txn.CauseUser)
		reqs[1].Txn.SetAbort(txn.CauseCascade)
		reqs[2].Txn.SetAbort(txn.CauseCascade)
		for _, i := range p {
			m.Release(reqs[i], true)
		}
		if got := e.CurrentData()[0]; got != 9 {
			t.Fatalf("order %v: restored data = %d, want 9", p, got)
		}
	}
}

func TestSuffixAbortRestoresToCommittedPrefix(t *testing.T) {
	// w1 commits, w2 and w3 abort: the image must rewind to w1's write.
	m := bambooMgr()
	e := newEntry(9)
	var reqs [3]*Request
	for i := 0; i < 3; i++ {
		tx := newTxnTS(uint64(i+1), uint64(i+1))
		r := mustAcquire(t, m, tx, EX, e)
		r.Data[0] = byte(10 * (i + 1))
		m.Retire(r)
		reqs[i] = r
	}
	m.Release(reqs[0], false) // w1 commits
	reqs[1].Txn.SetAbort(txn.CauseUser)
	m.Release(reqs[1], true)
	m.Release(reqs[2], true)
	if got := e.CurrentData()[0]; got != 10 {
		t.Fatalf("data = %d, want w1's 10", got)
	}
}

func TestOpt3ReaderDoesNotWoundYoungerWriter(t *testing.T) {
	// An older reader arriving after a younger writer retired reads the
	// pre-image instead of wounding (Optimization 3).
	m := bambooMgr()
	e := newEntry(7)
	w := newTxnTS(2, 10)
	rw := mustAcquire(t, m, w, EX, e)
	rw.Data[0] = 42
	m.Retire(rw)

	rd := newTxnTS(1, 5) // older than the writer
	rr := mustAcquire(t, m, rd, SH, e)
	if w.Aborting() {
		t.Fatal("younger writer was wounded despite Optimization 3")
	}
	if rr.Data[0] != 7 {
		t.Fatalf("older reader sees %d, want pre-image 7", rr.Data[0])
	}
	if rr.Dirty {
		t.Fatal("pre-image read must not be flagged dirty")
	}
	if rd.Sem() != 0 {
		t.Fatalf("older reader semaphore = %d, want 0", rd.Sem())
	}
	// The bypassed younger writer is retroactively commit-ordered after
	// the reader: it must not reach its commit point first.
	if w.Sem() != 1 {
		t.Fatalf("bypassed writer semaphore = %d, want 1 (retroactive hold)", w.Sem())
	}
	m.Release(rr, false)
	if w.Sem() != 0 {
		t.Fatalf("writer semaphore after reader left = %d, want 0", w.Sem())
	}
	m.Release(rw, false)
	if got := e.CurrentData()[0]; got != 42 {
		t.Fatalf("final data = %d, want 42", got)
	}
}

func TestBaseReaderWoundsYoungerWriter(t *testing.T) {
	// Without Optimization 3 the same schedule wounds the younger writer
	// (Algorithm 2 lines 2–7).
	m := NewManager(Config{Variant: Bamboo, RetireReads: true})
	e := newEntry(7)
	w := newTxnTS(2, 10)
	rw := mustAcquire(t, m, w, EX, e)
	rw.Data[0] = 42
	m.Retire(rw)

	rd := newTxnTS(1, 5)
	got := make(chan *Request)
	go func() {
		r, err := m.Acquire(rd, SH, e)
		if err != nil {
			t.Errorf("older reader: %v", err)
		}
		got <- r
	}()
	for i := 0; !w.Aborting(); i++ {
		if i > 1e7 {
			t.Fatal("younger writer never wounded")
		}
		Backoff(i)
	}
	m.Release(rw, true) // wounded writer rolls back
	rr := <-got
	if rr.Data[0] != 7 {
		t.Fatalf("reader sees %d, want restored 7", rr.Data[0])
	}
	m.Release(rr, false)
}

func TestOpt3ReaderWaitsForOlderOwner(t *testing.T) {
	m := bambooMgr()
	e := newEntry(7)
	w := newTxnTS(1, 1)
	rw := mustAcquire(t, m, w, EX, e)
	rw.Data[0] = 42

	rd := newTxnTS(2, 5)
	got := make(chan *Request)
	go func() {
		r, err := m.Acquire(rd, SH, e)
		if err != nil {
			t.Errorf("reader: %v", err)
		}
		got <- r
	}()
	waitForWaiters(t, e, 1)
	m.Retire(rw) // writer retires: reader promoted, sees dirty 42
	rr := <-got
	if rr.Data[0] != 42 {
		t.Fatalf("reader sees %d, want dirty 42", rr.Data[0])
	}
	if !rr.Dirty || rd.Sem() != 1 {
		t.Fatalf("dirty=%v sem=%d, want true/1", rr.Dirty, rd.Sem())
	}
	m.Release(rw, false)
	m.Release(rr, false)
}

func TestSharedAbortDoesNotCascade(t *testing.T) {
	m := bambooMgr()
	e := newEntry(7)
	rd := newTxnTS(1, 1)
	rr := mustAcquire(t, m, rd, SH, e)

	w := newTxnTS(2, 2)
	rw := mustAcquire(t, m, w, EX, e)
	if w.Sem() != 1 {
		// The writer follows a retired reader: commit order is enforced
		// for the rw edge as in Algorithm 2.
		t.Fatalf("writer semaphore = %d, want 1", w.Sem())
	}
	rd.SetAbort(txn.CauseUser)
	m.Release(rr, true)
	if w.Aborting() {
		t.Fatal("reader abort must not cascade")
	}
	if w.Sem() != 0 {
		t.Fatalf("writer semaphore after reader left = %d, want 0", w.Sem())
	}
	m.Release(rw, false)
}

func TestPromoteWaitersTimestampOrder(t *testing.T) {
	// A younger compatible waiter must not leapfrog an older conflicting
	// one.
	m := NewManager(Config{Variant: WoundWait})
	e := newEntry(7)
	h := newTxnTS(1, 1)
	rh := mustAcquire(t, m, h, SH, e)

	// EX waiter (ts 5) blocks behind the SH owner.
	wEX := newTxnTS(2, 5)
	exCh := make(chan *Request)
	go func() {
		r, _ := m.Acquire(wEX, EX, e)
		exCh <- r
	}()
	waitForWaiters(t, e, 1)

	// SH waiter (ts 9) is compatible with the owner but must queue behind
	// the EX waiter.
	wSH := newTxnTS(3, 9)
	shCh := make(chan *Request)
	go func() {
		r, _ := m.Acquire(wSH, SH, e)
		shCh <- r
	}()
	waitForWaiters(t, e, 2)
	select {
	case <-shCh:
		t.Fatal("younger SH leapfrogged older EX waiter")
	default:
	}

	m.Release(rh, false)
	rEX := <-exCh
	m.Release(rEX, false)
	rSH := <-shCh
	m.Release(rSH, false)
}

func TestDynamicTSAssignment(t *testing.T) {
	m := NewManager(Config{Variant: Bamboo, RetireReads: true, NoWoundRead: true, DynamicTS: true})
	e1, e2 := newEntry(0), newEntry(0)
	t1, t2 := txn.New(1), txn.New(2)

	// Non-conflicting accesses leave timestamps unassigned... except that
	// entering the retired list requires one (sorted order), so the read
	// gets a timestamp while the EX owner of a different entry does not.
	r1 := mustAcquire(t, m, t1, EX, e1)
	if t1.HasTS() {
		t.Fatal("EX grant without conflict must not assign a timestamp")
	}
	r2 := mustAcquire(t, m, t2, SH, e2)
	_ = r2

	// A conflicting request assigns timestamps to all parties in list
	// order, then to the requester: the holder becomes older.
	t3 := txn.New(3)
	got := make(chan error, 1)
	go func() {
		r, err := m.Acquire(t3, EX, e1)
		if err == nil {
			m.Release(r, false)
		}
		got <- err
	}()
	for i := 0; !t3.HasTS(); i++ {
		if i > 1e7 {
			t.Fatal("requester never got a timestamp")
		}
		Backoff(i)
	}
	if !t1.HasTS() {
		t.Fatal("holder must be assigned a timestamp on first conflict")
	}
	if !(t1.TS() < t3.TS()) {
		t.Fatalf("holder ts %d must precede requester ts %d", t1.TS(), t3.TS())
	}
	m.Retire(r1)
	m.Release(r1, false)
	if err := <-got; err != nil {
		t.Fatalf("conflicting request failed: %v", err)
	}
}

func TestWoundInterruptsWaiter(t *testing.T) {
	m := NewManager(Config{Variant: WoundWait})
	e := newEntry(0)
	h := newTxnTS(1, 1)
	rh := mustAcquire(t, m, h, EX, e)

	w := newTxnTS(2, 5)
	res := make(chan error)
	go func() {
		_, err := m.Acquire(w, EX, e)
		res <- err
	}()
	waitForWaiters(t, e, 1)
	// Wound the waiter from the side (as an older transaction elsewhere
	// would); its Acquire must return ErrWound.
	w.SetAbort(txn.CauseWound)
	if err := <-res; err != ErrWound {
		t.Fatalf("wounded waiter got %v, want ErrWound", err)
	}
	if _, _, waiters := e.Snapshot(); waiters != 0 {
		t.Fatal("dropped waiter still queued")
	}
	m.Release(rh, false)
}

func TestReleaseWaitingRequestIsSafe(t *testing.T) {
	m := NewManager(Config{Variant: WoundWait})
	e := newEntry(0)
	h := newTxnTS(1, 1)
	rh := mustAcquire(t, m, h, EX, e)
	w := newTxnTS(2, 5)
	go func() {
		r, err := m.Acquire(w, EX, e)
		if err == nil {
			m.Release(r, false)
		}
	}()
	waitForWaiters(t, e, 1)
	m.Release(rh, false)
}
