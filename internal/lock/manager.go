package lock

import (
	"runtime"
	"sync/atomic"
	"time"

	"bamboo/internal/txn"
)

// Config selects a Manager's protocol variant and, for Bamboo, the
// optimization toggles of paper §3.5. The zero value is plain No-Wait.
type Config struct {
	Variant Variant

	// RetireReads (Optimization 1) moves shared locks straight into the
	// retired list at grant time, inside the same critical section, so
	// reads never need a second latch acquisition to retire.
	RetireReads bool

	// NoWoundRead (Optimization 3) makes shared requests never wound:
	// instead of aborting conflicting writers the reader is inserted into
	// the retired list at its timestamp position and reads the data
	// version belonging to that position (possibly a pre-image of a
	// younger uncommitted writer). Readers then only ever wait for
	// *older* exclusive owners, which preserves the invariant that every
	// wait/dependency edge points from a younger to an older timestamp.
	NoWoundRead bool

	// DynamicTS (Optimization 4) defers timestamp assignment to a
	// transaction's first conflict (Algorithm 3).
	DynamicTS bool

	// RecycleImages enables superseded-image recycling: when an exclusive
	// request releases at commit, the committed image its install (or
	// 2PL publish) superseded is captured into the request's spare buffer,
	// and the next exclusive grant builds its private copy in that storage
	// instead of allocating. Safe only while nothing outside the lock
	// table retains references to installed images past release:
	// core.NewDB enables it exactly when MVCC version chains, CaptureReads
	// and commit hooks are all off. Off (the zero value), images are
	// never overwritten after publication and behavior is identical to
	// previous releases.
	RecycleImages bool

	// Adaptive makes the grant paths consult each entry's policy word
	// (written at runtime by the adaptive contention engine,
	// internal/adaptive): entries classified PolicyNoRetire skip the
	// positioned retire-read bookkeeping and grant like plain Wound-Wait,
	// while PolicyRetire entries additionally batch-grant compatible
	// queued readers past blocked writers on release. Off (the default),
	// no policy word is ever read and behavior is statement-identical to
	// the static configuration.
	Adaptive bool

	// OnBatchedGrant, if non-nil, is called with the number of readers
	// granted by one batched-grant pass on a hot entry.
	OnBatchedGrant func(n int)

	// OnWound, if non-nil, is called once per transaction newly wounded by
	// an Acquire on this manager.
	OnWound func()

	// OnCascade, if non-nil, is called with the number of transactions
	// newly aborted by one cascading abort (the paper's abort chain
	// length metric, §4.2).
	OnCascade func(chain int)
}

// Manager implements lock acquisition, retiring and release for one of the
// four protocol variants. A Manager is shared by all entries of a database
// instance and is safe for concurrent use.
type Manager struct {
	cfg       Config
	tsCounter atomic.Uint64
	// recycle gates superseded-image capture at release (Config.
	// RecycleImages). Atomic so SetImageRecycling can revoke it race-free
	// when a commit hook is installed after construction.
	recycle atomic.Bool
}

// NewManager returns a manager with the given configuration.
// Optimization 3 requires the positioned-read machinery of Optimization 1,
// so NoWoundRead implies RetireReads.
func NewManager(cfg Config) *Manager {
	if cfg.NoWoundRead {
		cfg.RetireReads = true
	}
	m := &Manager{cfg: cfg}
	m.recycle.Store(cfg.RecycleImages)
	return m
}

// ImageRecycling reports whether superseded-image recycling is enabled.
func (m *Manager) ImageRecycling() bool { return m.recycle.Load() }

// SetImageRecycling toggles superseded-image recycling at runtime.
// Turning it off is immediate and permanent in practice — core.DB.
// SetOnCommit forces it off because hooks retain image references past
// release; images already captured into spares before the flip were
// provably unreferenced at capture time, so they stay valid.
func (m *Manager) SetImageRecycling(on bool) { m.recycle.Store(on) }

// Variant returns the configured protocol variant.
func (m *Manager) Variant() Variant { return m.cfg.Variant }

// DynamicTS reports whether dynamic timestamp assignment is enabled.
func (m *Manager) DynamicTS() bool { return m.cfg.DynamicTS }

// NextTS draws the next timestamp directly from the manager's global
// counter (a shared cacheline — executors on the hot path should draw from
// a per-worker allocator instead, see NewTSAlloc).
func (m *Manager) NextTS() uint64 { return m.tsCounter.Add(1) }

// NewTSAlloc returns the sharded (worker-local, clock-based) timestamp
// allocator for the given worker index; see txn.TSAlloc for the ordering
// discussion. Sessions attach it to their transactions so both static
// start-time assignment and DynamicTS conflict-time assignment stop
// touching the manager's shared counter.
func (m *Manager) NewTSAlloc(worker int) *txn.TSAlloc {
	return txn.NewTSAlloc(worker)
}

// AssignTS assigns a start timestamp to t (static assignment mode),
// drawing from t's allocator when one is attached.
func (m *Manager) AssignTS(t *txn.Txn) { t.AssignTSIfUnassigned(&m.tsCounter) }

// Acquire requests a lock of the given mode on entry e for transaction t,
// blocking until granted or until the variant's deadlock-prevention rule
// decides the transaction must abort. On success the returned Request
// carries the data image visible to the transaction.
//
// Acquire allocates its Request; the zero-allocation path is AcquireInto
// with a Pool-recycled request.
func (m *Manager) Acquire(t *txn.Txn, mode Mode, e *Entry) (*Request, error) {
	r := &Request{}
	if err := m.AcquireInto(r, t, mode, e); err != nil {
		return nil, err
	}
	return r, nil
}

// AcquireInto is Acquire with a caller-provided request, which must be
// zeroed (freshly allocated or from Pool.Get). On error the request is
// guaranteed detached from every entry list and may be recycled
// immediately; on success it must not be recycled until Release(r) has
// returned.
func (m *Manager) AcquireInto(r *Request, t *txn.Txn, mode Mode, e *Entry) error {
	if t.Aborting() {
		return ErrAborting
	}
	r.Txn = t
	r.Mode = mode
	r.entry = e

	e.latch.Lock()
	if m.cfg.DynamicTS {
		m.assignOnConflictLocked(t, mode, e)
	}

	switch m.cfg.Variant {
	case NoWait:
		if m.conflictsWithHolders(e, mode) {
			e.latch.Unlock()
			return ErrNoWait
		}
	case WaitDie:
		// Older transactions wait; younger requesters die. The check must
		// cover waiters as well as owners: Wait-Die queues are FIFO (an
		// older transaction cutting ahead of a younger waiter — fine under
		// Wound-Wait, where wounds break the resulting cycles — deadlocks
		// under Wait-Die), so a requester will wait behind every already
		// queued conflicting transaction and must be older than all of
		// them.
		die := false
		// A pending upgrade is exclusive intent at its holder's timestamp:
		// without this clause a younger compatible reader would be admitted
		// and then blocked behind the upgrade marker in promoteWaiters — a
		// younger-waits-for-older edge that Wait-Die's deadlock-freedom
		// argument forbids (and that closes real cross-entry cycles).
		if u := e.upgrading; u != nil && u.Txn != t && u.Txn.TS() < t.TS() {
			die = true
		}
		for _, l := range []*reqList{&e.retired, &e.owners, &e.waiters} {
			for h := l.head; h != nil; h = h.next {
				if Conflict(mode, h.Mode) && h.Txn.TS() < t.TS() {
					die = true
					break
				}
			}
			if die {
				break
			}
		}
		if die {
			e.latch.Unlock()
			return ErrDie
		}
	case WoundWait:
		m.woundLocked(t, mode, e)
	case Bamboo:
		if mode == SH && m.cfg.NoWoundRead && m.retireReadsOn(e) {
			// Optimization 3: reads never wound. If no conflicting *older*
			// owner or waiter exists, try to grant immediately into the
			// retired list at the reader's timestamp position; younger
			// uncommitted writers the reader bypasses are retroactively
			// commit-ordered after it (see grantLocked). The grant can
			// fail if such a writer is already past its commit point, in
			// which case the reader queues briefly until it drains.
			if !m.olderConflicting(e, t, mode) && m.grantLocked(e, r, true) {
				e.latch.Unlock()
				return nil
			}
			// Otherwise wait (without wounding).
		} else {
			m.woundLocked(t, mode, e)
		}
	}

	if m.cfg.Variant == WaitDie {
		// FIFO: with the admission rule above, queue order is oldest-last
		// and every wait edge points from an older to a younger
		// transaction, which keeps Wait-Die deadlock-free.
		e.waiters.pushBack(r)
	} else {
		e.waiters.insertByTS(r)
	}
	m.promoteWaiters(e)
	granted := r.Granted()
	e.latch.Unlock()
	if granted {
		return nil
	}
	return m.waitGranted(r)
}

// Upgrade promotes r — a granted shared request — to exclusive mode in
// place, without ever giving up the shared hold (so the image the
// transaction read stays protected through the upgrade; an upgraded
// read-modify-write can never lose an update to a concurrent writer).
// With intrusive lists the upgrade itself is a relink plus a wound check:
// no second Request, no release/re-acquire window.
//
// Deadlock handling follows each variant's discipline, treating the
// upgrade as an exclusive request at r's own timestamp:
//
//   - NoWait: any other holder aborts the upgrader (ErrNoWait).
//   - WaitDie: an older conflicting holder makes the upgrader self-abort
//     (ErrDie); otherwise it waits for the younger holders to drain (they
//     release, or die when they attempt their own upgrade against us).
//   - WoundWait/Bamboo: younger holders — shared owners and, for Bamboo,
//     retired readers that bypassed us — are wounded; the upgrader waits
//     only for older holders to leave. Two upgraders of the same entry
//     therefore resolve like any other wound: the older one wounds the
//     younger, which observes Aborting and returns ErrWound. Every wait
//     edge an upgrade introduces points from a younger to an older
//     timestamp (or older to younger under Wait-Die), so the variant's
//     deadlock-freedom argument carries over unchanged.
//
// On success r is an exclusive member of the owners list (a retired
// shared request is un-retired: unlike a retired write it has installed
// nothing yet) and r.Data is a private mutable copy of the image the
// request was reading, exactly as if the lock had been acquired EX. Under
// Bamboo the upgrader commit-orders itself behind every remaining retiree
// (all older and live at that point, or it could not have completed).
//
// On error r is STILL a granted shared request, attached to its entry:
// the caller's normal rollback path releases it along with the rest of
// the access list. This differs from AcquireInto's detached-on-error
// contract and is what keeps the executor's bookkeeping trivial.
func (m *Manager) Upgrade(r *Request) error {
	return m.upgrade(r, false, nil)
}

// UpgradeRetire is Upgrade fused with Retire for the Bamboo
// upgrade-then-retire path (an un-annotated read-modify-write whose write
// the executor would retire immediately): the promotion and the
// retire-install happen inside the final critical section, so the
// upgraded writer retires directly into its old retired slot — every
// other retiree is older when the upgrade completes, making that slot its
// timestamp slot — instead of taking the un-retire→owners→re-retire hop,
// and readers queued behind the upgrade are granted in the same latch
// pass (one entry-latch acquisition where Upgrade+Retire took two).
//
// img is the ready after-image to install: a fresh private buffer the
// caller derived from the image the shared grant was reading (r.Data,
// which is an installed — immutable — version, so it can be cloned and
// mutated latch-free before calling; nil clones r.Data unmodified). No
// caller code runs under the entry latch: a mutation callback here could
// reach other entries and hand-craft an ABBA latch deadlock the
// protocol's wound machinery cannot see.
//
// On error the contract matches Upgrade: img is not installed and r is
// still a granted shared request, released by the caller's rollback.
func (m *Manager) UpgradeRetire(r *Request, img []byte) error {
	return m.upgrade(r, true, img)
}

func (m *Manager) upgrade(r *Request, retire bool, img []byte) error {
	if r.Mode == EX {
		return nil
	}
	t := r.Txn
	e := r.entry
	if t.Aborting() {
		return ErrAborting
	}
	complete := func() {
		if retire {
			m.completeUpgradeRetireLocked(e, r, img)
			// The pending-upgrade marker must drop before promoting:
			// promoteWaiters holds back every waiter younger than a
			// marked upgrade, and the readers the fresh dirty install can
			// serve are exactly such waiters.
			dropUpgradeLocked(e, r)
			m.promoteWaiters(e)
		} else {
			m.completeUpgradeLocked(e, r)
			dropUpgradeLocked(e, r)
		}
	}
	for i := 0; ; i++ {
		e.latch.Lock()
		if h := testHookLatchPass; h != nil {
			h()
		}
		if t.Aborting() {
			dropUpgradeLocked(e, r)
			e.latch.Unlock()
			return ErrWound
		}
		// Fast path: the upgrader is the entry's only holder and nobody is
		// queued — the common uncontended read-modify-write. Every variant
		// agrees on the outcome (no conflict to abort on, wound, or wait
		// for), DynamicTS would assign nothing (no other request exists),
		// and the pending-upgrade slot never needs claiming because there
		// is no grant race to fence off. Complete in place and return.
		if e.waiters.head == nil && (e.upgrading == nil || e.upgrading == r) &&
			!otherHolder(e, r) {
			complete()
			e.latch.Unlock()
			return nil
		}
		if m.cfg.DynamicTS {
			m.assignOnUpgradeLocked(t, e, r)
		}
		claimUpgradeLocked(e, r)
		switch m.cfg.Variant {
		case NoWait:
			if otherHolder(e, r) {
				dropUpgradeLocked(e, r)
				e.latch.Unlock()
				return ErrNoWait
			}
		case WaitDie:
			if olderOtherHolder(e, r) {
				dropUpgradeLocked(e, r)
				e.latch.Unlock()
				return ErrDie
			}
		case WoundWait, Bamboo:
			m.woundForUpgradeLocked(e, r)
		}
		if !upgradeBlockedLocked(e, r) {
			complete()
			e.latch.Unlock()
			return nil
		}
		e.latch.Unlock()
		Backoff(i)
	}
}

// testHookLatchPass, when non-nil, is invoked once per entry-latch
// critical section entered by the upgrade and retire paths; the
// latch-pass gate test (TestUpgradeRetireLatchPasses) counts with it.
// Always nil outside tests.
var testHookLatchPass func()

// claimUpgradeLocked registers r as the entry's pending upgrade unless an
// older upgrade already holds the slot (in which case r is doomed anyway:
// the older upgrader wounds it under Wound-Wait/Bamboo, or r dies on the
// older holder under Wait-Die).
func claimUpgradeLocked(e *Entry, r *Request) {
	if e.upgrading == nil || e.upgrading.Txn.TS() > r.Txn.TS() {
		e.upgrading = r
	}
}

// dropUpgradeLocked clears the pending-upgrade slot if r holds it.
func dropUpgradeLocked(e *Entry, r *Request) {
	if e.upgrading == r {
		e.upgrading = nil
	}
}

// otherHolder reports whether any granted request besides r exists on the
// entry. An upgrade conflicts with every other holder regardless of mode.
func otherHolder(e *Entry, r *Request) bool {
	for x := e.owners.head; x != nil; x = x.next {
		if x != r {
			return true
		}
	}
	for x := e.retired.head; x != nil; x = x.next {
		if x != r {
			return true
		}
	}
	return false
}

// olderOtherHolder reports whether a holder besides r with a strictly
// smaller timestamp exists (the Wait-Die upgrade self-abort condition).
func olderOtherHolder(e *Entry, r *Request) bool {
	ts := r.Txn.TS()
	for x := e.owners.head; x != nil; x = x.next {
		if x != r && x.Txn.TS() < ts {
			return true
		}
	}
	for x := e.retired.head; x != nil; x = x.next {
		if x != r && x.Txn.TS() < ts {
			return true
		}
	}
	return false
}

// woundForUpgradeLocked wounds every holder besides r with a larger
// timestamp. Unlike woundLocked there is no conflict-point scan: the
// upgrade is exclusive, so every other holder conflicts.
func (m *Manager) woundForUpgradeLocked(e *Entry, r *Request) {
	ts := r.Txn.TS()
	wound := func(x *Request) {
		if x != r && x.Txn.TS() > ts {
			if x.Txn.SetAbort(txn.CauseWound) && m.cfg.OnWound != nil {
				m.cfg.OnWound()
			}
		}
	}
	for x := e.retired.head; x != nil; x = x.next {
		wound(x)
	}
	for x := e.owners.head; x != nil; x = x.next {
		wound(x)
	}
}

// upgradeBlockedLocked reports whether the upgrade must keep waiting:
// any other owner (exclusive conflicts with everything), or a retiree
// that is younger than r or doomed. Older live retirees do not block —
// the completed upgrade commit-orders behind them instead. A younger
// retiree past its commit point cannot be wounded and simply drains;
// completing after it has left is safe because its read preceded r's
// install, so it serializes before r and no later arrival can observe
// the two in conflicting order.
func upgradeBlockedLocked(e *Entry, r *Request) bool {
	for x := e.owners.head; x != nil; x = x.next {
		if x != r {
			return true
		}
	}
	ts := r.Txn.TS()
	for x := e.retired.head; x != nil; x = x.next {
		if x == r {
			continue
		}
		if x.Txn.TS() > ts || x.unwound || x.Txn.Aborting() {
			return true
		}
	}
	return false
}

// completeUpgradeLocked performs the in-place promotion once the entry
// has quiesced around r: relink out of retired if the shared grant was
// positioned there, switch the mode, and take a private mutable copy of
// the image the request was reading (the installed image itself stays
// referenced by concurrent committed readers and must not be mutated).
func (m *Manager) completeUpgradeLocked(e *Entry, r *Request) {
	if r.stateLoad() == reqRetired {
		// A retired *read* installed nothing, so un-retiring it is pure
		// list surgery; the semHeld increment it may carry (dirty
		// positioned read) remains valid — its source is among the older
		// retirees the write must now also commit-order behind.
		e.retired.remove(r)
		e.owners.pushBack(r)
		r.state.Store(int32(reqOwner))
	}
	r.Mode = EX
	r.Read = r.Data
	r.Data = r.takeBuf(r.Data)
	if m.cfg.Variant == Bamboo && !r.semHeld && e.retired.len() > 0 {
		// Every remaining retiree is older and live (upgradeBlockedLocked),
		// conflicts with the now-exclusive hold, and must commit first.
		r.semHeld = true
		r.Txn.SemIncr()
	}
}

// completeUpgradeRetireLocked fuses completeUpgradeLocked with Retire for
// the upgrade-then-retire path: promote in place and publish the caller's
// pre-built after-image as the entry's newest (dirty) version — all in
// one critical section. A positioned shared grant keeps its retired-list
// slot: on upgrade completion every other retiree is older and live
// (upgradeBlockedLocked), so the slot it read at IS its timestamp slot
// and the un-retire→owners→re-retire hop of the two-step path is pure
// overhead.
func (m *Manager) completeUpgradeRetireLocked(e *Entry, r *Request, img []byte) {
	r.Mode = EX
	r.Read = r.Data
	if img == nil {
		img = r.takeBuf(r.Data)
	}
	r.Data = img
	if m.cfg.DynamicTS {
		// Retired entries must carry a timestamp so future conflicts can
		// be ordered against them (as in Retire).
		r.Txn.AssignTSIfUnassigned(&m.tsCounter)
	}
	// Commit-order behind the remaining older retirees exactly as the
	// two-step path would: they all conflict with the now-exclusive hold.
	others := e.retired.len()
	wasRetired := r.stateLoad() == reqRetired
	if wasRetired {
		others--
	}
	if m.cfg.Variant == Bamboo && !r.semHeld && others > 0 {
		r.semHeld = true
		r.Txn.SemIncr()
	}
	// Retire's install: publish the mutated image as the newest version.
	e.seq++
	r.installSeq = e.seq
	r.prevImg = e.Data
	e.Data = r.Data
	e.cur = r.installSeq
	r.installed = true
	if !wasRetired {
		e.owners.remove(r)
		e.retired.insertByTS(r)
		r.state.Store(int32(reqRetired))
	}
	// The caller promotes waiters after dropping the pending-upgrade
	// marker (a still-set marker would hold back the very readers the
	// fresh dirty install can serve).
}

// assignOnUpgradeLocked is Algorithm 3's conflict-time assignment for the
// upgrade path: the promotion to exclusive is a conflict with every other
// request on the entry, so if any exists, all parties (r's transaction
// included) receive timestamps.
func (m *Manager) assignOnUpgradeLocked(t *txn.Txn, e *Entry, r *Request) {
	other := false
	for _, l := range []*reqList{&e.retired, &e.owners, &e.waiters} {
		for x := l.head; x != nil; x = x.next {
			if x != r {
				other = true
				break
			}
		}
		if other {
			break
		}
	}
	if !other {
		return
	}
	for _, l := range []*reqList{&e.retired, &e.owners, &e.waiters} {
		for x := l.head; x != nil; x = x.next {
			x.Txn.AssignTSIfUnassigned(&m.tsCounter)
		}
	}
	t.AssignTSIfUnassigned(&m.tsCounter)
}

// Retire moves t's exclusive lock from owners to retired (LockRetire in
// Algorithm 2), publishing the transaction's private image as the entry's
// newest — dirty — version so that successors may read it. Retiring a
// shared lock is also permitted (it is a no-op on the data image).
// Retire is optional: if never called, Bamboo degenerates to Wound-Wait.
func (m *Manager) Retire(r *Request) {
	e := r.entry
	e.latch.Lock()
	defer e.latch.Unlock()
	if h := testHookLatchPass; h != nil {
		h()
	}
	if r.stateLoad() != reqOwner {
		return // dropped, already retired, or released
	}
	if m.cfg.DynamicTS {
		// Entries in the retired list must carry a timestamp so that
		// future conflicts can be ordered against them.
		r.Txn.AssignTSIfUnassigned(&m.tsCounter)
	}
	if r.Mode == EX {
		e.seq++
		r.installSeq = e.seq
		r.prevImg = e.Data
		e.Data = r.Data
		e.cur = r.installSeq
		r.installed = true
	}
	e.owners.remove(r)
	e.retired.insertByTS(r)
	r.state.Store(int32(reqRetired))
	m.promoteWaiters(e)
}

// Release removes the request from the entry (LockRelease in Algorithm 2).
// With isAbort set and an exclusive mode it triggers cascading aborts of
// every transaction positioned after r in retired∪owners, and restores the
// entry's data image to r's pre-image. With isAbort unset it publishes a
// not-yet-installed exclusive image (the 2PL commit path). In all cases it
// then notifies transactions whose dependencies became clear and promotes
// waiters.
func (m *Manager) Release(r *Request, isAbort bool) {
	e := r.entry
	e.latch.Lock()
	defer e.latch.Unlock()
	m.releaseLocked(e, r, isAbort)
}

func (m *Manager) releaseLocked(e *Entry, r *Request, isAbort bool) {
	st := r.stateLoad()
	switch st {
	case reqDropped, reqReleased:
		return
	case reqWaiting:
		e.waiters.remove(r)
		r.state.Store(int32(reqReleased))
		return
	}

	if isAbort && r.Mode == EX && st == reqRetired {
		// Cascading aborts: all transactions after r in retired∪owners
		// have (directly or transitively) observed r's dirty write.
		chain := 0
		for x := r.next; x != nil; x = x.next {
			if x.Txn.SetAbort(txn.CauseCascade) {
				chain++
			}
		}
		for x := e.owners.head; x != nil; x = x.next {
			if x.Txn.SetAbort(txn.CauseCascade) {
				chain++
			}
		}
		if chain > 0 && m.cfg.OnCascade != nil {
			m.cfg.OnCascade(chain)
		}
	}

	// Superseded-image capture (RecycleImages): the storage of an image
	// that provably has no remaining reference is stashed as the leaving
	// request's spare buffer, to be reused by its next private write copy.
	// The capture rules and why each is safe:
	//
	//   - Commit of an installed (retired) write: the pre-image r.prevImg
	//     was superseded by r's install. Every reader or writer that could
	//     reference it conflicts with r (all images come from EX installs,
	//     and SH conflicts with EX), so Bamboo's commit ordering — the
	//     semaphore taken at grant, orderSuccessorsLocked for positioned
	//     readers, and the post-CAS Sem recheck — guarantees they all
	//     released before r reached its commit point. A chain predecessor
	//     writer W1 (whose Data is r's prevImg) likewise released first,
	//     and captured only its *own* prevImg. The !unwound guard keeps the
	//     rewind path sound: !unwound implies e.cur ≥ r.installSeq, so
	//     e.Data is r's image or a newer install, never r.prevImg.
	//   - Commit of a non-installed write (2PL publish): the old e.Data is
	//     superseded. Mutual exclusion at grant (2PL) or the semaphore
	//     ordering (Bamboo) drained every conflicting holder first.
	//   - Abort of a non-installed write: r.Data is a private copy that was
	//     never published; nobody else ever saw it.
	//   - Abort of an installed write captures nothing: cascaded readers
	//     may still hold r.Data, and the restored pre-image is live again.
	//
	// Capture is gated on the manager flag because components outside the
	// lock table (MVCC chains, CaptureReads, commit hooks) may retain
	// image references past release; core.NewDB enables recycling only
	// when none of them are active.
	if r.Mode == EX {
		if isAbort {
			// Sequence-guarded restore: cascaded aborts arrive in
			// arbitrary order but always form a suffix of the exclusive
			// chain. Rewind to r's pre-image unless a predecessor's abort
			// already rewound past r's install (then r's image is gone
			// and r was marked unwound). Rewinding marks every later,
			// still-present install as unwound so it never restores a
			// dead image later.
			if r.installed && !r.unwound && e.cur >= r.installSeq {
				e.Data = r.prevImg
				e.cur = r.installSeq - 1
				for x := e.retired.head; x != nil; x = x.next {
					if x != r && x.installed && x.installSeq > r.installSeq {
						x.unwound = true
					}
				}
			} else if !r.installed && m.recycle.Load() {
				r.captureSpare(r.Data)
			}
		} else if !r.installed {
			// 2PL (or non-retired Bamboo write): publish at commit.
			old := e.Data
			e.seq++
			e.cur = e.seq
			e.Data = r.Data
			if m.recycle.Load() {
				r.captureSpare(old)
			}
		} else if !r.unwound && m.recycle.Load() {
			r.captureSpare(r.prevImg)
		}
	}

	if st == reqRetired {
		e.retired.remove(r)
	} else {
		e.owners.remove(r)
	}
	if r.semHeld {
		// The request leaves with an unresolved dependency (abort path);
		// give the increment back so the semaphore stays balanced.
		r.semHeld = false
		r.Txn.SemDecr()
	}
	r.state.Store(int32(reqReleased))

	if m.cfg.Variant == Bamboo {
		m.notifyHeads(e)
	}
	m.promoteWaiters(e)
}

// woundLocked applies the Wound-Wait rule over retired∪owners exactly as
// in Algorithm 2 lines 2–7: once a conflict has been seen, every
// lower-priority (younger) transaction at or after the conflict point is
// wounded.
func (m *Manager) woundLocked(t *txn.Txn, mode Mode, e *Entry) {
	ts := t.TS()
	hasConflict := false
	wound := func(r *Request) {
		if Conflict(mode, r.Mode) {
			hasConflict = true
		}
		if hasConflict && ts < r.Txn.TS() {
			if r.Txn.SetAbort(txn.CauseWound) && m.cfg.OnWound != nil {
				m.cfg.OnWound()
			}
		}
	}
	for r := e.retired.head; r != nil; r = r.next {
		wound(r)
	}
	for r := e.owners.head; r != nil; r = r.next {
		wound(r)
	}
}

// olderConflicting reports whether a conflicting request with a strictly
// smaller timestamp than t exists among owners or waiters. Used by the
// Optimization-3 read path: such a request must be waited for (it will
// install a version the reader has to see), whereas younger writers can be
// bypassed by reading the pre-image at the reader's position.
func (m *Manager) olderConflicting(e *Entry, t *txn.Txn, mode Mode) bool {
	ts := t.TS()
	// A pending upgrade is an exclusive request at its holder's timestamp
	// even though the holder's mode still reads SH.
	if u := e.upgrading; u != nil && u.Txn != t && u.Txn.TS() < ts {
		return true
	}
	for r := e.owners.head; r != nil; r = r.next {
		if Conflict(mode, r.Mode) && r.Txn.TS() < ts {
			return true
		}
	}
	for r := e.waiters.head; r != nil; r = r.next {
		if Conflict(mode, r.Mode) && r.Txn.TS() < ts {
			return true
		}
	}
	return false
}

// conflictsWithHolders reports a conflict against retired∪owners.
func (m *Manager) conflictsWithHolders(e *Entry, mode Mode) bool {
	for r := e.retired.head; r != nil; r = r.next {
		if Conflict(mode, r.Mode) {
			return true
		}
	}
	return conflictsWithOwners(e, mode)
}

func conflictsWithOwners(e *Entry, mode Mode) bool {
	for r := e.owners.head; r != nil; r = r.next {
		if Conflict(mode, r.Mode) {
			return true
		}
	}
	return false
}

// promoteWaiters implements PromoteWaiters of Algorithm 2: scan waiters in
// ascending timestamp order, granting each that does not conflict with the
// current owners, stopping at the first conflict. Waiters whose
// transactions are already aborting are dropped.
func (m *Manager) promoteWaiters(e *Entry) {
	for {
		w := e.waiters.head
		if w == nil {
			return
		}
		if w.Txn.Aborting() {
			e.waiters.remove(w)
			w.state.Store(int32(reqDropped))
			continue
		}
		if conflictsWithOwners(e, w.Mode) {
			m.batchGrantReadersLocked(e)
			return
		}
		// A pending upgrade blocks every younger waiter: granting one
		// would only feed the upgrade's wound loop (Wound-Wait/Bamboo) or
		// extend its drain wait (Wait-Die). Older waiters pass — the
		// upgrader waits for them (or was wounded by them) instead.
		if u := e.upgrading; u != nil && u.Txn != w.Txn && w.Txn.TS() > u.Txn.TS() {
			return
		}
		// A non-positioned grant reads the entry's newest image, so it
		// must not consume a version installed by a *younger* conflicting
		// retiree: that writer is necessarily doomed (it was wounded when
		// the older waiter arrived, or this waiter could not have been
		// admitted), and granting now would let the consumer retire ahead
		// of its source in timestamp order, escaping both the cascade
		// ("abort everything after me") and the sequence-guarded restore.
		// Positioned shared grants (Optimization 1) are exempt: they read
		// the version belonging to their timestamp slot.
		positioned := m.cfg.Variant == Bamboo && w.Mode == SH && m.retireReadsOn(e)
		if !positioned && m.cfg.Variant == Bamboo && youngerConflictingRetired(e, w) {
			m.batchGrantReadersLocked(e)
			return
		}
		// grantLocked moves the request onto owners or retired, so it
		// must leave waiters first; re-queue at the front if the grant
		// has to be retried (a bypassed writer is mid-commit).
		e.waiters.remove(w)
		if !m.grantLocked(e, w, positioned) {
			e.waiters.pushFront(w)
			m.batchGrantReadersLocked(e)
			return
		}
	}
}

// retireReadsOn reports whether positioned retire-reads apply on e: the
// static RetireReads toggle, minus entries the adaptive engine classified
// cold — on a PolicyNoRetire entry the retired-list bookkeeping costs
// more than the contention it avoids, so shared grants fall back to plain
// Wound-Wait owner grants.
func (m *Manager) retireReadsOn(e *Entry) bool {
	return m.cfg.RetireReads && !(m.cfg.Adaptive && e.policy.Load() == PolicyNoRetire)
}

// batchGrantReadersLocked is the hot-entry batched grant: when the
// head-first promote loop stops (a blocked writer at the head, or a
// mid-commit drain), scan the remaining waiters once and grant — in this
// same latch pass — every shared request that has no conflicting *older*
// owner or waiter. That is exactly the Optimization-3 fast-path admission
// rule, so every bypass edge still points from a younger writer to an
// older reader and the variant's deadlock-freedom argument is unchanged;
// the readers are granted positioned (into retired at their timestamp
// slot) and any writer they bypass is retroactively commit-ordered after
// them by grantLocked. Applied only on entries the adaptive engine
// classified hot: on cold entries the scan is pure overhead.
func (m *Manager) batchGrantReadersLocked(e *Entry) {
	if !m.cfg.Adaptive || m.cfg.Variant != Bamboo || !m.cfg.RetireReads {
		return
	}
	if e.upgrading != nil || e.policy.Load() != PolicyRetire {
		return
	}
	granted := 0
	w := e.waiters.head
	for w != nil {
		next := w.next
		if w.Mode == SH && !w.Txn.Aborting() && !m.olderConflicting(e, w.Txn, SH) {
			e.waiters.remove(w)
			if m.grantLocked(e, w, true) {
				granted++
			} else {
				// A bypassed writer is mid-commit: requeue at the
				// timestamp position and stop — every later reader would
				// trip over the same drain.
				e.waiters.insertByTS(w)
				break
			}
		}
		w = next
	}
	if granted > 0 && m.cfg.OnBatchedGrant != nil {
		m.cfg.OnBatchedGrant(granted)
	}
}

// youngerConflictingRetired reports whether a conflicting retiree exists
// that is either younger than w's transaction or already doomed. Waiting
// for such retirees to drain (they are aborting, or were wounded the
// moment the older waiter arrived) keeps every dependency edge pointing
// from an older to a younger timestamp and keeps a fresh grant from
// basing its read-modify-write on a dead image.
func youngerConflictingRetired(e *Entry, w *Request) bool {
	ts := w.Txn.TS()
	for x := e.retired.head; x != nil; x = x.next {
		if !Conflict(x.Mode, w.Mode) {
			continue
		}
		if x.Txn.TS() > ts || x.unwound || x.Txn.Aborting() {
			return true
		}
	}
	return false
}

// grantLocked makes r a lock holder, returning false if the grant must be
// retried later. r must be detached from the waiters list. With
// positioned set (Bamboo shared requests with RetireReads, on entries
// not classified PolicyNoRetire — callers compute this once per latch
// section so a concurrent policy flip cannot split the decision) the
// request goes straight into the retired list at its timestamp position
// and reads the version belonging to that position; otherwise the
// request joins owners with the newest image (a private mutable copy for
// EX). Bamboo increments the commit semaphore when the new holder
// conflicts with a retired transaction (Algorithm 2, lines 29–30).
func (m *Manager) grantLocked(e *Entry, r *Request, positioned bool) bool {
	if positioned {
		if m.cfg.DynamicTS {
			r.Txn.AssignTSIfUnassigned(&m.tsCounter)
		}
		at := retiredInsertPos(e, r.Txn.TS())
		if !m.orderSuccessorsLocked(e, at, r) {
			return false
		}
		r.Data = versionAt(e, at)
		r.Dirty = exBefore(e, at)
		if r.Dirty {
			// The version read was produced by an uncommitted writer:
			// commit-order after it (paper §3.2.1).
			r.semHeld = true
			r.Txn.SemIncr()
		}
		e.retired.insertBefore(r, at)
		r.state.Store(int32(reqRetired))
		return true
	}

	if m.cfg.Variant == Bamboo {
		for x := e.retired.head; x != nil; x = x.next {
			if Conflict(x.Mode, r.Mode) {
				r.semHeld = true
				r.Txn.SemIncr()
				break
			}
		}
	}
	dirty := false
	for x := e.retired.head; x != nil; x = x.next {
		if x.Mode == EX {
			dirty = true
			break
		}
	}
	r.Dirty = dirty
	if r.Mode == EX {
		r.Read = e.Data
		r.Data = r.takeBuf(e.Data)
	} else {
		r.Data = e.Data
	}
	e.owners.pushBack(r)
	r.state.Store(int32(reqOwner))
	return true
}

// orderSuccessorsLocked retroactively commit-orders every live conflicting
// request positioned after the insertion point at (the retired tail plus
// conflicting owners) behind the reader about to be inserted there: each
// such successor must hold a commit-semaphore increment so it cannot reach
// its commit point before the reader leaves, or the rw anti-dependency
// (reader before writer in the version order) would not imply commit-point
// ordering and Lemma 1 would break.
//
// It returns false when a successor is already past its commit point —
// too late to order it — in which case the reader must wait for it to
// drain. A successor racing into its commit point after the increment is
// handled on the committing side: transactions re-check their semaphore
// once after winning the commit CAS and wait for retroactive holders to
// leave before logging.
func (m *Manager) orderSuccessorsLocked(e *Entry, at *Request, r *Request) bool {
	committed := func(x *Request) bool {
		s := x.Txn.State()
		return s == txn.StateCommitting || s == txn.StateCommitted
	}
	for x := at; x != nil; x = x.next {
		if Conflict(x.Mode, r.Mode) && committed(x) {
			return false
		}
	}
	for x := e.owners.head; x != nil; x = x.next {
		if Conflict(x.Mode, r.Mode) && committed(x) {
			return false
		}
	}
	// Apply increments, tracking them in the entry's scratch list (reused
	// across calls; guarded by the latch) so a lost race can be undone.
	applied := e.scratch[:0]
	apply := func(x *Request) bool {
		if !Conflict(x.Mode, r.Mode) || x.semHeld || x.Txn.Aborting() {
			return true // already ordered behind a predecessor, or doomed
		}
		x.semHeld = true
		x.Txn.SemIncr()
		if committed(x) {
			// Lost the race: undo and let the reader wait instead.
			x.semHeld = false
			x.Txn.SemDecr()
			return false
		}
		applied = append(applied, x)
		return true
	}
	ok := true
	for x := at; ok && x != nil; x = x.next {
		ok = apply(x)
	}
	for x := e.owners.head; ok && x != nil; x = x.next {
		ok = apply(x)
	}
	if !ok {
		for _, y := range applied {
			y.semHeld = false
			y.Txn.SemDecr()
		}
	}
	for i := range applied {
		applied[i] = nil
	}
	e.scratch = applied[:0]
	return ok
}

// retiredInsertPos returns the first retired request with a strictly
// greater timestamp (insert before it); nil means append at the tail.
func retiredInsertPos(e *Entry, ts uint64) *Request {
	for x := e.retired.head; x != nil; x = x.next {
		if x.Txn.TS() > ts {
			return x
		}
	}
	return nil
}

// versionAt returns the data image a reader inserted before at (nil = at
// the retired tail) must observe: the image installed by the nearest
// preceding exclusive retiree, or — if none — the pre-image of the first
// exclusive retiree at or after the position, or the entry's current image
// when no uncommitted installs exist.
func versionAt(e *Entry, at *Request) []byte {
	// Nearest exclusive install before the position: its image is the
	// version at this slot. (If that writer is doomed, a reader here is
	// doomed with it — the read stays consistent and the cascade covers
	// the reader.)
	before := e.retired.tail
	if at != nil {
		before = at.prev
	}
	for x := before; x != nil; x = x.prev {
		if x.Mode == EX {
			return x.Data
		}
	}
	// No exclusive install precedes the position: the version here is the
	// image from before the first *live* install at or after it. Unwound
	// installs are skipped — their pre-images point into an abort-rewound
	// chain that no longer exists.
	for x := at; x != nil; x = x.next {
		if x.Mode == EX && !x.unwound {
			return x.prevImg
		}
	}
	return e.Data
}

// exBefore reports whether an exclusive retiree precedes the insertion
// point at (nil = the retired tail).
func exBefore(e *Entry, at *Request) bool {
	before := e.retired.tail
	if at != nil {
		before = at.prev
	}
	for x := before; x != nil; x = x.prev {
		if x.Mode == EX {
			return true
		}
	}
	return false
}

// notifyHeads recomputes the heads — the leading mutually-compatible
// prefix of retired∪owners — and clears the dependency of every head that
// still holds a commit-semaphore increment. Called after each removal;
// this subsumes Algorithm 2's "old head departed and conflicted with the
// new head" condition and also handles removals from the middle of the
// list (e.g. wounded transactions).
func (m *Manager) notifyHeads(e *Entry) {
	anySH, anyEX := false, false
	visit := func(r *Request) bool {
		if anyEX || (anySH && r.Mode == EX) {
			return false
		}
		if r.semHeld {
			r.semHeld = false
			r.Txn.SemDecr()
		}
		if r.Mode == EX {
			anyEX = true
		} else {
			anySH = true
		}
		return true
	}
	for r := e.retired.head; r != nil; r = r.next {
		if !visit(r) {
			return
		}
	}
	for r := e.owners.head; r != nil; r = r.next {
		if !visit(r) {
			return
		}
	}
}

// assignOnConflictLocked implements Algorithm 3: when the incoming request
// conflicts with any transaction already on the entry, assign timestamps
// to every transaction in the three lists (in list order) and then to the
// requester.
func (m *Manager) assignOnConflictLocked(t *txn.Txn, mode Mode, e *Entry) {
	conflict := false
	for _, l := range []*reqList{&e.retired, &e.owners, &e.waiters} {
		for r := l.head; r != nil; r = r.next {
			if Conflict(mode, r.Mode) {
				conflict = true
				break
			}
		}
		if conflict {
			break
		}
	}
	if !conflict {
		return
	}
	for _, l := range []*reqList{&e.retired, &e.owners, &e.waiters} {
		for r := l.head; r != nil; r = r.next {
			r.Txn.AssignTSIfUnassigned(&m.tsCounter)
		}
	}
	t.AssignTSIfUnassigned(&m.tsCounter)
}

// waitGranted spins until the request is granted, the request is dropped,
// or the transaction is marked aborting. It mirrors DBx1000's pause loop:
// a short Gosched phase followed by escalating sleeps so oversubscribed
// hosts do not burn cores.
func (m *Manager) waitGranted(r *Request) error {
	for i := 0; ; i++ {
		switch r.stateLoad() {
		case reqOwner, reqRetired:
			return nil
		case reqDropped:
			return ErrWound
		}
		if r.Txn.Aborting() {
			e := r.entry
			e.latch.Lock()
			switch r.stateLoad() {
			case reqWaiting:
				e.waiters.remove(r)
				r.state.Store(int32(reqDropped))
			case reqOwner, reqRetired:
				// Granted concurrently with the wound: give the lock
				// straight back so the caller sees a clean abort.
				m.releaseLocked(e, r, true)
			}
			e.latch.Unlock()
			return ErrWound
		}
		Backoff(i)
	}
}

// Backoff yields the processor, escalating from busy yields to short
// sleeps. Exported for use by the executor's commit-semaphore wait loop.
func Backoff(i int) {
	if i < 64 {
		runtime.Gosched()
		return
	}
	shift := (i - 64) / 64
	if shift > 5 {
		shift = 5
	}
	time.Sleep(time.Microsecond << uint(shift))
}
