package lock

import (
	"bytes"
	"runtime"
	"sync/atomic"
	"time"

	"bamboo/internal/txn"
)

// Config selects a Manager's protocol variant and, for Bamboo, the
// optimization toggles of paper §3.5. The zero value is plain No-Wait.
type Config struct {
	Variant Variant

	// RetireReads (Optimization 1) moves shared locks straight into the
	// retired list at grant time, inside the same critical section, so
	// reads never need a second latch acquisition to retire.
	RetireReads bool

	// NoWoundRead (Optimization 3) makes shared requests never wound:
	// instead of aborting conflicting writers the reader is inserted into
	// the retired list at its timestamp position and reads the data
	// version belonging to that position (possibly a pre-image of a
	// younger uncommitted writer). Readers then only ever wait for
	// *older* exclusive owners, which preserves the invariant that every
	// wait/dependency edge points from a younger to an older timestamp.
	NoWoundRead bool

	// DynamicTS (Optimization 4) defers timestamp assignment to a
	// transaction's first conflict (Algorithm 3).
	DynamicTS bool

	// OnWound, if non-nil, is called once per transaction newly wounded by
	// an Acquire on this manager.
	OnWound func()

	// OnCascade, if non-nil, is called with the number of transactions
	// newly aborted by one cascading abort (the paper's abort chain
	// length metric, §4.2).
	OnCascade func(chain int)
}

// Manager implements lock acquisition, retiring and release for one of the
// four protocol variants. A Manager is shared by all entries of a database
// instance and is safe for concurrent use.
type Manager struct {
	cfg       Config
	tsCounter atomic.Uint64
}

// NewManager returns a manager with the given configuration.
// Optimization 3 requires the positioned-read machinery of Optimization 1,
// so NoWoundRead implies RetireReads.
func NewManager(cfg Config) *Manager {
	if cfg.NoWoundRead {
		cfg.RetireReads = true
	}
	return &Manager{cfg: cfg}
}

// Variant returns the configured protocol variant.
func (m *Manager) Variant() Variant { return m.cfg.Variant }

// DynamicTS reports whether dynamic timestamp assignment is enabled.
func (m *Manager) DynamicTS() bool { return m.cfg.DynamicTS }

// NextTS draws the next timestamp from the manager's global counter.
// Executors call this at transaction start when DynamicTS is off.
func (m *Manager) NextTS() uint64 { return m.tsCounter.Add(1) }

// AssignTS assigns a start timestamp to t (static assignment mode).
func (m *Manager) AssignTS(t *txn.Txn) { t.SetTS(m.NextTS()) }

// Acquire requests a lock of the given mode on entry e for transaction t,
// blocking until granted or until the variant's deadlock-prevention rule
// decides the transaction must abort. On success the returned Request
// carries the data image visible to the transaction.
func (m *Manager) Acquire(t *txn.Txn, mode Mode, e *Entry) (*Request, error) {
	if t.Aborting() {
		return nil, ErrAborting
	}
	r := &Request{Txn: t, Mode: mode, entry: e}

	e.latch.Lock()
	if m.cfg.DynamicTS {
		m.assignOnConflictLocked(t, mode, e)
	}

	switch m.cfg.Variant {
	case NoWait:
		if m.conflictsWithHolders(e, mode) {
			e.latch.Unlock()
			return nil, ErrNoWait
		}
	case WaitDie:
		// Older transactions wait; younger requesters die. The check must
		// cover waiters as well as owners: Wait-Die queues are FIFO (an
		// older transaction cutting ahead of a younger waiter — fine under
		// Wound-Wait, where wounds break the resulting cycles — deadlocks
		// under Wait-Die), so a requester will wait behind every already
		// queued conflicting transaction and must be older than all of
		// them.
		die := false
		for _, h := range holders(e) {
			if Conflict(mode, h.Mode) && h.Txn.TS() < t.TS() {
				die = true
				break
			}
		}
		if !die {
			for _, w := range e.waiters {
				if Conflict(mode, w.Mode) && w.Txn.TS() < t.TS() {
					die = true
					break
				}
			}
		}
		if die {
			e.latch.Unlock()
			return nil, ErrDie
		}
	case WoundWait:
		m.woundLocked(t, mode, e)
	case Bamboo:
		if mode == SH && m.cfg.NoWoundRead {
			// Optimization 3: reads never wound. If no conflicting *older*
			// owner or waiter exists, try to grant immediately into the
			// retired list at the reader's timestamp position; younger
			// uncommitted writers the reader bypasses are retroactively
			// commit-ordered after it (see grantLocked). The grant can
			// fail if such a writer is already past its commit point, in
			// which case the reader queues briefly until it drains.
			if !m.olderConflicting(e, t, mode) && m.grantLocked(e, r) {
				e.latch.Unlock()
				return r, nil
			}
			// Otherwise wait (without wounding).
		} else {
			m.woundLocked(t, mode, e)
		}
	}

	if m.cfg.Variant == WaitDie {
		// FIFO: with the admission rule above, queue order is oldest-last
		// and every wait edge points from an older to a younger
		// transaction, which keeps Wait-Die deadlock-free.
		e.waiters = append(e.waiters, r)
	} else {
		e.waiters = insertByTS(e.waiters, r)
	}
	m.promoteWaiters(e)
	granted := r.Granted()
	e.latch.Unlock()
	if granted {
		return r, nil
	}
	return m.waitGranted(r)
}

// Retire moves t's exclusive lock from owners to retired (LockRetire in
// Algorithm 2), publishing the transaction's private image as the entry's
// newest — dirty — version so that successors may read it. Retiring a
// shared lock is also permitted (it is a no-op on the data image).
// Retire is optional: if never called, Bamboo degenerates to Wound-Wait.
func (m *Manager) Retire(r *Request) {
	e := r.entry
	e.latch.Lock()
	defer e.latch.Unlock()
	if r.stateLoad() != reqOwner {
		return // dropped, already retired, or released
	}
	if m.cfg.DynamicTS {
		// Entries in the retired list must carry a timestamp so that
		// future conflicts can be ordered against them.
		r.Txn.AssignTSIfUnassigned(&m.tsCounter)
	}
	if r.Mode == EX {
		e.seq++
		r.installSeq = e.seq
		r.prev = e.Data
		e.Data = r.Data
		e.cur = r.installSeq
		r.installed = true
	}
	e.owners, _ = remove(e.owners, r)
	e.retired = insertByTS(e.retired, r)
	r.state.Store(int32(reqRetired))
	m.promoteWaiters(e)
}

// Release removes the request from the entry (LockRelease in Algorithm 2).
// With isAbort set and an exclusive mode it triggers cascading aborts of
// every transaction positioned after r in retired∪owners, and restores the
// entry's data image to r's pre-image. With isAbort unset it publishes a
// not-yet-installed exclusive image (the 2PL commit path). In all cases it
// then notifies transactions whose dependencies became clear and promotes
// waiters.
func (m *Manager) Release(r *Request, isAbort bool) {
	e := r.entry
	e.latch.Lock()
	defer e.latch.Unlock()
	m.releaseLocked(e, r, isAbort)
}

func (m *Manager) releaseLocked(e *Entry, r *Request, isAbort bool) {
	st := r.stateLoad()
	switch st {
	case reqDropped, reqReleased:
		return
	case reqWaiting:
		e.waiters, _ = remove(e.waiters, r)
		r.state.Store(int32(reqReleased))
		return
	}

	if isAbort && r.Mode == EX && st == reqRetired {
		// Cascading aborts: all transactions after r in retired∪owners
		// have (directly or transitively) observed r's dirty write.
		chain := 0
		seen := false
		for _, x := range e.retired {
			if x == r {
				seen = true
				continue
			}
			if seen && x.Txn.SetAbort(txn.CauseCascade) {
				chain++
			}
		}
		if seen {
			for _, x := range e.owners {
				if x.Txn.SetAbort(txn.CauseCascade) {
					chain++
				}
			}
		}
		if chain > 0 && m.cfg.OnCascade != nil {
			m.cfg.OnCascade(chain)
		}
	}

	if r.Mode == EX {
		if isAbort {
			// Sequence-guarded restore: cascaded aborts arrive in
			// arbitrary order but always form a suffix of the exclusive
			// chain. Rewind to r's pre-image unless a predecessor's abort
			// already rewound past r's install (then r's image is gone
			// and r was marked unwound). Rewinding marks every later,
			// still-present install as unwound so it never restores a
			// dead image later.
			if r.installed && !r.unwound && e.cur >= r.installSeq {
				e.Data = r.prev
				e.cur = r.installSeq - 1
				for _, x := range e.retired {
					if x != r && x.installed && x.installSeq > r.installSeq {
						x.unwound = true
					}
				}
			}
		} else if !r.installed {
			// 2PL (or non-retired Bamboo write): publish at commit.
			e.seq++
			e.cur = e.seq
			e.Data = r.Data
		}
	}

	if st == reqRetired {
		e.retired, _ = remove(e.retired, r)
	} else {
		e.owners, _ = remove(e.owners, r)
	}
	if r.semHeld {
		// The request leaves with an unresolved dependency (abort path);
		// give the increment back so the semaphore stays balanced.
		r.semHeld = false
		r.Txn.SemDecr()
	}
	r.state.Store(int32(reqReleased))

	if m.cfg.Variant == Bamboo {
		m.notifyHeads(e)
	}
	m.promoteWaiters(e)
}

// woundLocked applies the Wound-Wait rule over retired∪owners exactly as
// in Algorithm 2 lines 2–7: once a conflict has been seen, every
// lower-priority (younger) transaction at or after the conflict point is
// wounded.
func (m *Manager) woundLocked(t *txn.Txn, mode Mode, e *Entry) {
	ts := t.TS()
	hasConflict := false
	wound := func(r *Request) {
		if Conflict(mode, r.Mode) {
			hasConflict = true
		}
		if hasConflict && ts < r.Txn.TS() {
			if r.Txn.SetAbort(txn.CauseWound) && m.cfg.OnWound != nil {
				m.cfg.OnWound()
			}
		}
	}
	for _, r := range e.retired {
		wound(r)
	}
	for _, r := range e.owners {
		wound(r)
	}
}

// olderConflicting reports whether a conflicting request with a strictly
// smaller timestamp than t exists among owners or waiters. Used by the
// Optimization-3 read path: such a request must be waited for (it will
// install a version the reader has to see), whereas younger writers can be
// bypassed by reading the pre-image at the reader's position.
func (m *Manager) olderConflicting(e *Entry, t *txn.Txn, mode Mode) bool {
	ts := t.TS()
	for _, r := range e.owners {
		if Conflict(mode, r.Mode) && r.Txn.TS() < ts {
			return true
		}
	}
	for _, r := range e.waiters {
		if Conflict(mode, r.Mode) && r.Txn.TS() < ts {
			return true
		}
	}
	return false
}

func holders(e *Entry) []*Request {
	if len(e.retired) == 0 {
		return e.owners
	}
	hs := make([]*Request, 0, len(e.retired)+len(e.owners))
	hs = append(hs, e.retired...)
	hs = append(hs, e.owners...)
	return hs
}

func (m *Manager) conflictsWithHolders(e *Entry, mode Mode) bool {
	for _, r := range holders(e) {
		if Conflict(mode, r.Mode) {
			return true
		}
	}
	return false
}

func conflictsWithOwners(e *Entry, mode Mode) bool {
	for _, r := range e.owners {
		if Conflict(mode, r.Mode) {
			return true
		}
	}
	return false
}

// promoteWaiters implements PromoteWaiters of Algorithm 2: scan waiters in
// ascending timestamp order, granting each that does not conflict with the
// current owners, stopping at the first conflict. Waiters whose
// transactions are already aborting are dropped.
func (m *Manager) promoteWaiters(e *Entry) {
	for len(e.waiters) > 0 {
		w := e.waiters[0]
		if w.Txn.Aborting() {
			e.waiters = e.waiters[1:]
			w.state.Store(int32(reqDropped))
			continue
		}
		if conflictsWithOwners(e, w.Mode) {
			break
		}
		// A non-positioned grant reads the entry's newest image, so it
		// must not consume a version installed by a *younger* conflicting
		// retiree: that writer is necessarily doomed (it was wounded when
		// the older waiter arrived, or this waiter could not have been
		// admitted), and granting now would let the consumer retire ahead
		// of its source in timestamp order, escaping both the cascade
		// ("abort everything after me") and the sequence-guarded restore.
		// Positioned shared grants (Optimization 1) are exempt: they read
		// the version belonging to their timestamp slot.
		positioned := m.cfg.Variant == Bamboo && w.Mode == SH && m.cfg.RetireReads
		if !positioned && m.cfg.Variant == Bamboo && youngerConflictingRetired(e, w) {
			break
		}
		if !m.grantLocked(e, w) {
			// A bypassed writer is mid-commit; retry after it drains.
			break
		}
		e.waiters = e.waiters[1:]
	}
}

// youngerConflictingRetired reports whether a conflicting retiree exists
// that is either younger than w's transaction or already doomed. Waiting
// for such retirees to drain (they are aborting, or were wounded the
// moment the older waiter arrived) keeps every dependency edge pointing
// from an older to a younger timestamp and keeps a fresh grant from
// basing its read-modify-write on a dead image.
func youngerConflictingRetired(e *Entry, w *Request) bool {
	ts := w.Txn.TS()
	for _, x := range e.retired {
		if !Conflict(x.Mode, w.Mode) {
			continue
		}
		if x.Txn.TS() > ts || x.unwound || x.Txn.Aborting() {
			return true
		}
	}
	return false
}

// grantLocked makes r a lock holder, returning false if the grant must be
// retried later. For Bamboo shared requests with RetireReads the request
// goes straight into the retired list at its timestamp position and reads
// the version belonging to that position; otherwise the request joins
// owners with the newest image (a private mutable copy for EX). Bamboo
// increments the commit semaphore when the new holder conflicts with a
// retired transaction (Algorithm 2, lines 29–30).
func (m *Manager) grantLocked(e *Entry, r *Request) bool {
	if m.cfg.Variant == Bamboo && r.Mode == SH && m.cfg.RetireReads {
		if m.cfg.DynamicTS {
			r.Txn.AssignTSIfUnassigned(&m.tsCounter)
		}
		pos := retiredPos(e, r.Txn.TS())
		if !m.orderSuccessorsLocked(e, pos, r) {
			return false
		}
		r.Data = versionAt(e, pos)
		r.Dirty = exBefore(e, pos)
		if r.Dirty {
			// The version read was produced by an uncommitted writer:
			// commit-order after it (paper §3.2.1).
			r.semHeld = true
			r.Txn.SemIncr()
		}
		e.retired = insertAt(e.retired, pos, r)
		r.state.Store(int32(reqRetired))
		return true
	}

	if m.cfg.Variant == Bamboo {
		for _, x := range e.retired {
			if Conflict(x.Mode, r.Mode) {
				r.semHeld = true
				r.Txn.SemIncr()
				break
			}
		}
	}
	dirty := false
	for _, x := range e.retired {
		if x.Mode == EX {
			dirty = true
			break
		}
	}
	r.Dirty = dirty
	if r.Mode == EX {
		r.Data = bytes.Clone(e.Data)
	} else {
		r.Data = e.Data
	}
	e.owners = append(e.owners, r)
	r.state.Store(int32(reqOwner))
	return true
}

// orderSuccessorsLocked retroactively commit-orders every live conflicting
// request positioned after pos (the retired tail plus conflicting owners)
// behind the reader about to be inserted at pos: each such successor must
// hold a commit-semaphore increment so it cannot reach its commit point
// before the reader leaves, or the rw anti-dependency (reader before
// writer in the version order) would not imply commit-point ordering and
// Lemma 1 would break.
//
// It returns false when a successor is already past its commit point —
// too late to order it — in which case the reader must wait for it to
// drain. A successor racing into its commit point after the increment is
// handled on the committing side: transactions re-check their semaphore
// once after winning the commit CAS and wait for retroactive holders to
// leave before logging.
func (m *Manager) orderSuccessorsLocked(e *Entry, pos int, r *Request) bool {
	var targets []*Request
	for _, x := range e.retired[pos:] {
		if Conflict(x.Mode, r.Mode) {
			targets = append(targets, x)
		}
	}
	for _, x := range e.owners {
		if Conflict(x.Mode, r.Mode) {
			targets = append(targets, x)
		}
	}
	for _, x := range targets {
		if s := x.Txn.State(); s == txn.StateCommitting || s == txn.StateCommitted {
			return false
		}
	}
	var applied []*Request
	for _, x := range targets {
		if x.semHeld || x.Txn.Aborting() {
			continue // already ordered behind a predecessor, or doomed
		}
		x.semHeld = true
		x.Txn.SemIncr()
		if s := x.Txn.State(); s == txn.StateCommitting || s == txn.StateCommitted {
			// Lost the race: undo and let the reader wait instead.
			for _, y := range applied {
				y.semHeld = false
				y.Txn.SemDecr()
			}
			x.semHeld = false
			x.Txn.SemDecr()
			return false
		}
		applied = append(applied, x)
	}
	return true
}

// retiredPos returns the timestamp-sorted insertion position in retired.
func retiredPos(e *Entry, ts uint64) int {
	for i, x := range e.retired {
		if x.Txn.TS() > ts {
			return i
		}
	}
	return len(e.retired)
}

func insertAt(list []*Request, i int, r *Request) []*Request {
	list = append(list, nil)
	copy(list[i+1:], list[i:])
	list[i] = r
	return list
}

// versionAt returns the data image a reader positioned at index pos of the
// retired list must observe: the image installed by the nearest preceding
// exclusive retiree, or — if none — the pre-image of the first exclusive
// retiree at or after pos, or the entry's current image when no
// uncommitted installs exist.
func versionAt(e *Entry, pos int) []byte {
	// Nearest exclusive install before pos: its image is the version at
	// this slot. (If that writer is doomed, a reader here is doomed with
	// it — the read stays consistent and the cascade covers the reader.)
	for i := pos - 1; i >= 0; i-- {
		if x := e.retired[i]; x.Mode == EX {
			return x.Data
		}
	}
	// No exclusive install precedes pos: the version here is the image
	// from before the first *live* install at or after pos. Unwound
	// installs are skipped — their pre-images point into an abort-rewound
	// chain that no longer exists.
	for i := pos; i < len(e.retired); i++ {
		if x := e.retired[i]; x.Mode == EX && !x.unwound {
			return x.prev
		}
	}
	return e.Data
}

// exBefore reports whether an exclusive retiree precedes position pos.
func exBefore(e *Entry, pos int) bool {
	for i := pos - 1; i >= 0; i-- {
		if e.retired[i].Mode == EX {
			return true
		}
	}
	return false
}

// notifyHeads recomputes the heads — the leading mutually-compatible
// prefix of retired∪owners — and clears the dependency of every head that
// still holds a commit-semaphore increment. Called after each removal;
// this subsumes Algorithm 2's "old head departed and conflicted with the
// new head" condition and also handles removals from the middle of the
// list (e.g. wounded transactions).
func (m *Manager) notifyHeads(e *Entry) {
	anySH, anyEX := false, false
	visit := func(r *Request) bool {
		if anyEX || (anySH && r.Mode == EX) {
			return false
		}
		if r.semHeld {
			r.semHeld = false
			r.Txn.SemDecr()
		}
		if r.Mode == EX {
			anyEX = true
		} else {
			anySH = true
		}
		return true
	}
	for _, r := range e.retired {
		if !visit(r) {
			return
		}
	}
	for _, r := range e.owners {
		if !visit(r) {
			return
		}
	}
}

// assignOnConflictLocked implements Algorithm 3: when the incoming request
// conflicts with any transaction already on the entry, assign timestamps
// to every transaction in the three lists (in list order) and then to the
// requester.
func (m *Manager) assignOnConflictLocked(t *txn.Txn, mode Mode, e *Entry) {
	conflict := false
	scan := func(list []*Request) {
		for _, r := range list {
			if Conflict(mode, r.Mode) {
				conflict = true
				return
			}
		}
	}
	scan(e.retired)
	if !conflict {
		scan(e.owners)
	}
	if !conflict {
		scan(e.waiters)
	}
	if !conflict {
		return
	}
	for _, r := range e.retired {
		r.Txn.AssignTSIfUnassigned(&m.tsCounter)
	}
	for _, r := range e.owners {
		r.Txn.AssignTSIfUnassigned(&m.tsCounter)
	}
	for _, r := range e.waiters {
		r.Txn.AssignTSIfUnassigned(&m.tsCounter)
	}
	t.AssignTSIfUnassigned(&m.tsCounter)
}

// waitGranted spins until the request is granted, the request is dropped,
// or the transaction is marked aborting. It mirrors DBx1000's pause loop:
// a short Gosched phase followed by escalating sleeps so oversubscribed
// hosts do not burn cores.
func (m *Manager) waitGranted(r *Request) (*Request, error) {
	for i := 0; ; i++ {
		switch r.stateLoad() {
		case reqOwner, reqRetired:
			return r, nil
		case reqDropped:
			return nil, ErrWound
		}
		if r.Txn.Aborting() {
			e := r.entry
			e.latch.Lock()
			switch r.stateLoad() {
			case reqWaiting:
				e.waiters, _ = remove(e.waiters, r)
				r.state.Store(int32(reqDropped))
			case reqOwner, reqRetired:
				// Granted concurrently with the wound: give the lock
				// straight back so the caller sees a clean abort.
				m.releaseLocked(e, r, true)
			}
			e.latch.Unlock()
			return nil, ErrWound
		}
		Backoff(i)
	}
}

// Backoff yields the processor, escalating from busy yields to short
// sleeps. Exported for use by the executor's commit-semaphore wait loop.
func Backoff(i int) {
	if i < 64 {
		runtime.Gosched()
		return
	}
	shift := (i - 64) / 64
	if shift > 5 {
		shift = 5
	}
	time.Sleep(time.Microsecond << uint(shift))
}
