package lock

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"bamboo/internal/txn"
)

// TestPropertyRandomSchedules drives randomized concurrent transactions
// (mixed reads/writes over a handful of entries, random retire points,
// random external wounds) through the full Bamboo machinery and checks:
//
//   - entries drain completely and invariants hold afterwards;
//   - every committed transaction's semaphore was balanced (zero at
//     commit, zero after);
//   - each entry's final image equals the value of its last committed
//     writer (commit order captured at release time), i.e. no aborted
//     write survives and no committed write is lost.
func TestPropertyRandomSchedules(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			Variant:     Bamboo,
			RetireReads: true,
			NoWoundRead: rng.Intn(2) == 0,
			DynamicTS:   rng.Intn(2) == 0,
		}
		m := NewManager(cfg)
		const nEntries = 3
		entries := make([]*Entry, nEntries)
		for i := range entries {
			entries[i] = &Entry{}
			entries[i].Init([]byte{0})
		}
		var logMu sync.Mutex
		lastCommitted := make([]byte, nEntries)

		const workers = 4
		const perWorker = 20
		var wg sync.WaitGroup
		var idGen sync.Mutex
		nextID := uint64(0)
		newID := func() uint64 {
			idGen.Lock()
			defer idGen.Unlock()
			nextID++
			return nextID
		}

		stall := make(chan struct{})
		go func() {
			select {
			case <-stall:
			case <-time.After(20 * time.Second):
				for ei, e := range entries {
					t.Logf("STALL seed %d entry %d:\n%s", seed, ei, e.DebugString())
				}
			}
		}()
		defer close(stall)

		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wrng := rand.New(rand.NewSource(seed ^ int64(w)*7919))
				for i := 0; i < perWorker; i++ {
					tx := txn.New(newID())
					// Plan: 1-3 distinct entries, random modes, random
					// retire decisions, occasional self-wound mid-flight.
					n := wrng.Intn(nEntries) + 1
					perm := wrng.Perm(nEntries)[:n]
					for {
						if !cfg.DynamicTS && !tx.HasTS() {
							m.AssignTS(tx)
						}
						var reqs []*Request
						values := map[int]byte{}
						aborted := false
						for _, ei := range perm {
							mode := SH
							if wrng.Intn(2) == 0 {
								mode = EX
							}
							r, err := m.Acquire(tx, mode, entries[ei])
							if err != nil {
								aborted = true
								break
							}
							reqs = append(reqs, r)
							if mode == EX {
								v := byte(wrng.Intn(250) + 1)
								r.Data[0] = v
								values[ei] = v
								if wrng.Intn(2) == 0 {
									m.Retire(r)
								}
							}
						}
						if !aborted && wrng.Intn(20) == 0 {
							tx.SetAbort(txn.CauseUser) // simulated user abort
						}
						if !aborted {
							// Commit protocol: drain semaphore, CAS, re-check.
							for it := 0; ; it++ {
								if tx.Aborting() {
									aborted = true
									break
								}
								if tx.Sem() == 0 {
									break
								}
								Backoff(it)
							}
						}
						if !aborted && tx.BeginCommit() {
							if tx.Sem() != 0 {
								// A retroactive hold raced our commit CAS:
								// back out and retry (see core executor).
								for _, r := range reqs {
									m.Release(r, true)
								}
								tx.FinishAbort()
								tx.Reset()
								continue
							}
							logMu.Lock()
							for ei, v := range values {
								lastCommitted[ei] = v
							}
							for _, r := range reqs {
								m.Release(r, false)
							}
							logMu.Unlock()
							tx.FinishCommit()
							if tx.Sem() != 0 {
								t.Logf("seed %d: semaphore nonzero after commit", seed)
							}
							break
						}
						for _, r := range reqs {
							m.Release(r, true)
						}
						tx.FinishAbort()
						tx.Reset()
						// Randomized backoff damps wound storms on
						// pathological seeds (DBx1000's abort penalty).
						time.Sleep(time.Duration(wrng.Intn(120)) * time.Microsecond)
					}
				}
			}(w)
		}
		wg.Wait()

		for ei, e := range entries {
			if err := e.CheckInvariants(); err != nil {
				t.Logf("seed %d: entry %d: %v", seed, ei, err)
				return false
			}
			if ret, own, wait := e.Snapshot(); ret+own+wait != 0 {
				t.Logf("seed %d: entry %d not drained (%d/%d/%d)", seed, ei, ret, own, wait)
				return false
			}
			if got := e.CurrentData()[0]; got != lastCommitted[ei] {
				t.Logf("seed %d: entry %d image %d != last committed %d",
					seed, ei, got, lastCommitted[ei])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyWaitDieNeverDeadlocks scripts two-entry cross acquisition
// patterns under Wait-Die concurrently and asserts completion (the
// regression shape for the FIFO-queue deadlock found during development).
func TestPropertyWaitDieNeverDeadlocks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewManager(Config{Variant: WaitDie})
		e1, e2 := &Entry{}, &Entry{}
		e1.Init([]byte{0})
		e2.Init([]byte{0})

		done := make(chan bool, 4)
		for w := 0; w < 4; w++ {
			order := []*Entry{e1, e2}
			if rng.Intn(2) == 0 {
				order[0], order[1] = order[1], order[0]
			}
			go func(w int, order []*Entry) {
				for i := 0; i < 50; i++ {
					tx := txn.New(uint64(w*1000 + i + 1))
					for {
						if !tx.HasTS() {
							m.AssignTS(tx)
						}
						r1, err := m.Acquire(tx, EX, order[0])
						if err != nil {
							tx.FinishAbort()
							tx.Reset()
							continue
						}
						r2, err := m.Acquire(tx, EX, order[1])
						if err != nil {
							m.Release(r1, true)
							tx.FinishAbort()
							tx.Reset()
							continue
						}
						if tx.BeginCommit() {
							m.Release(r1, false)
							m.Release(r2, false)
							tx.FinishCommit()
							break
						}
						m.Release(r1, true)
						m.Release(r2, true)
						tx.FinishAbort()
						tx.Reset()
					}
				}
				done <- true
			}(w, order)
		}
		for i := 0; i < 4; i++ {
			<-done // a deadlock hangs the test; -timeout catches it
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
