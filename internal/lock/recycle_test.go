package lock

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"

	"bamboo/internal/txn"
)

// TestImageCaptureRecycle pins the capture/consume protocol
// deterministically: a committing exclusive release captures the
// superseded image's storage into the request's spare buffer, and the
// request's next exclusive grant serves its private copy from that exact
// array instead of allocating. Covers the 2PL publish path, Bamboo's
// retired-install path, and the gate (no capture with recycling off).
func TestImageCaptureRecycle(t *testing.T) {
	run := func(t *testing.T, cfg Config, retire bool) {
		m := NewManager(cfg)
		e := &Entry{}
		orig := make([]byte, 8)
		e.Init(orig)
		var pool Pool

		// Txn 1: exclusive write, commit. The grant copies the committed
		// image into a fresh private buffer (first copy ever: nothing to
		// recycle yet) and records the old image as the Read reference.
		tx := txn.New(1)
		tx.SetTSAlloc(m.NewTSAlloc(0))
		m.AssignTS(tx)
		r := pool.Get()
		if err := m.AcquireInto(r, tx, EX, e); err != nil {
			t.Fatalf("acquire: %v", err)
		}
		if &r.Data[0] == &orig[0] {
			t.Fatal("exclusive grant aliased the committed image instead of copying")
		}
		if &r.Read[0] != &orig[0] {
			t.Fatal("Read does not reference the superseded committed image")
		}
		if c, u := r.ImageStats(); c != 1 || u != 0 {
			t.Fatalf("first grant: copies=%d reuses=%d, want 1/0", c, u)
		}
		binary.LittleEndian.PutUint64(r.Data, 7)
		if retire {
			m.Retire(r)
		}
		if tx.Sem() != 0 || !tx.BeginCommit() {
			t.Fatal("single transaction failed to commit")
		}
		m.Release(r, false)
		tx.FinishCommit()

		if m.recycle.Load() {
			if r.buf == nil || &r.buf[0] != &orig[0] {
				t.Fatal("commit release did not capture the superseded image into the spare buffer")
			}
		} else if r.buf != nil {
			t.Fatal("captured a spare buffer with recycling off")
		}
		pool.Put(r)

		// Txn 2: the same pooled request's next exclusive grant. With
		// recycling on, its private copy must reuse the captured array —
		// same backing storage, fresh contents from the committed image.
		tx2 := txn.New(2)
		tx2.SetTSAlloc(m.NewTSAlloc(0))
		m.AssignTS(tx2)
		r2 := pool.Get()
		if r2 != r {
			t.Fatal("pool did not return the recycled request")
		}
		if err := m.AcquireInto(r2, tx2, EX, e); err != nil {
			t.Fatalf("second acquire: %v", err)
		}
		if got := binary.LittleEndian.Uint64(r2.Data); got != 7 {
			t.Fatalf("second grant sees image %d, want 7", got)
		}
		if m.recycle.Load() {
			if &r2.Data[0] != &orig[0] {
				t.Fatal("second grant allocated instead of consuming the recycled spare")
			}
			if c, u := r2.ImageStats(); c != 0 || u != 1 {
				t.Fatalf("second grant: copies=%d reuses=%d, want 0/1", c, u)
			}
		} else if c, u := r2.ImageStats(); c != 1 || u != 0 {
			t.Fatalf("second grant with recycling off: copies=%d reuses=%d, want 1/0", c, u)
		}
		m.Release(r2, true)
		tx2.FinishAbort()
		pool.Put(r2)
		if err := e.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("woundwait-publish", func(t *testing.T) {
		run(t, Config{Variant: WoundWait, RecycleImages: true}, false)
	})
	t.Run("bamboo-retired", func(t *testing.T) {
		run(t, Config{Variant: Bamboo, RetireReads: true, NoWoundRead: true, RecycleImages: true}, true)
	})
	t.Run("gated-off", func(t *testing.T) {
		run(t, Config{Variant: WoundWait}, false)
	})
	t.Run("runtime-disable", func(t *testing.T) {
		cfg := Config{Variant: WoundWait, RecycleImages: true}
		m := NewManager(cfg)
		if !m.ImageRecycling() {
			t.Fatal("RecycleImages config did not arm the manager")
		}
		m.SetImageRecycling(false)
		if m.ImageRecycling() {
			t.Fatal("SetImageRecycling(false) did not stick")
		}
	})
}

// TestImageRecycleStress is the reuse-after-release property test for the
// shared-image protocol, run under -race in CI: with image recycling on,
// a superseded committed image may be recycled into a later writer's
// private buffer ONLY once no lock holder can still reference it. Every
// shared holder snapshots its granted image's contents and re-verifies
// them just before release — a buffer recycled while reachable gets
// overwritten by the next writer's copy under the holder's feet, failing
// the comparison, and the concurrent read/write is itself a data race the
// race detector flags. The per-entry counter conservation and generation
// oracles of the pooled-reuse stress tests ride along, and the run must
// actually serve recycled buffers (a zero reuse count would make the
// property vacuous).
func TestImageRecycleStress(t *testing.T) {
	variants := []struct {
		name string
		cfg  Config
	}{
		{"bamboo-full", Config{Variant: Bamboo, RetireReads: true, NoWoundRead: true, RecycleImages: true}},
		{"bamboo-dynts", Config{Variant: Bamboo, RetireReads: true, NoWoundRead: true, DynamicTS: true, RecycleImages: true}},
		{"bamboo-plain", Config{Variant: Bamboo, RecycleImages: true}},
		{"woundwait", Config{Variant: WoundWait, RecycleImages: true}},
		{"waitdie", Config{Variant: WaitDie, RecycleImages: true}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			m := NewManager(v.cfg)
			const nEntries = 3
			entries := make([]*Entry, nEntries)
			for i := range entries {
				entries[i] = &Entry{}
				entries[i].Init(make([]byte, 8))
			}

			const workers = 8
			perWorker := 300
			if testing.Short() {
				perWorker = 120
			}
			var committedWrites [workers]uint64
			var reused [workers]uint64
			var wg sync.WaitGroup
			retire := v.cfg.Variant == Bamboo
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					var pool Pool
					alloc := m.NewTSAlloc(w)
					rng := rand.New(rand.NewSource(int64(w)*733 + 11))
					tx := txn.New(0)
					tx.SetTSAlloc(alloc)
					reqs := make([]*Request, 0, nEntries)
					gens := make([]uint64, 0, nEntries)
					seen := make([]uint64, 0, nEntries)
					for i := 0; i < perWorker; i++ {
						tx.Renew(uint64(w*perWorker+i) + 1)
						n := 1 + rng.Intn(nEntries)
						for {
							if !v.cfg.DynamicTS && !tx.HasTS() {
								m.AssignTS(tx)
							}
							reqs, gens, seen = reqs[:0], gens[:0], seen[:0]
							aborted := false
							writes := uint64(0)
							for ei := 0; ei < n && !aborted; ei++ {
								r := pool.Get()
								gens = append(gens, r.Gen())
								if err := m.AcquireInto(r, tx, SH, entries[ei]); err != nil {
									if r.Gen() != gens[len(gens)-1] {
										t.Errorf("request recycled while held (gen %d -> %d)", gens[len(gens)-1], r.Gen())
									}
									pool.Put(r)
									gens = gens[:len(gens)-1]
									aborted = true
									break
								}
								reqs = append(reqs, r)
								val := binary.LittleEndian.Uint64(r.Data)
								seen = append(seen, val)
								if rng.Intn(2) == 0 { // read-modify-write: upgrade in place
									if err := m.Upgrade(r); err != nil {
										aborted = true
										break
									}
									binary.LittleEndian.PutUint64(r.Data, val+1)
									writes++
									if retire && rng.Intn(2) == 0 {
										m.Retire(r)
									}
								}
							}
							commit := false
							if !aborted {
								ok := true
								for it := 0; ; it++ {
									if tx.Aborting() {
										ok = false
										break
									}
									if tx.Sem() == 0 {
										break
									}
									Backoff(it)
								}
								commit = ok && tx.BeginCommit()
							}
							for ri, r := range reqs {
								// The shared-image property: a granted SH
								// holder's image is immutable until its
								// release. A wrongful recycle overwrites it.
								if r.Mode == SH {
									if got := binary.LittleEndian.Uint64(r.Data); got != seen[ri] {
										t.Errorf("held shared image mutated: read %d at grant, %d at release (buffer recycled while reachable)", seen[ri], got)
									}
								}
								m.Release(r, !commit)
								if r.Gen() != gens[ri] {
									t.Errorf("request recycled while held (gen %d -> %d)", gens[ri], r.Gen())
								}
								_, u := r.ImageStats()
								reused[w] += uint64(u)
								pool.Put(r)
							}
							if commit {
								tx.FinishCommit()
								committedWrites[w] += writes
								break
							}
							tx.FinishAbort()
							tx.Reset()
						}
					}
				}(w)
			}
			wg.Wait()

			var want, got, totalReused uint64
			for w := range committedWrites {
				want += committedWrites[w]
				totalReused += reused[w]
			}
			for _, e := range entries {
				got += binary.LittleEndian.Uint64(e.CurrentData())
				if ret, own, wait := e.Snapshot(); ret+own+wait != 0 {
					t.Fatalf("entry not drained: %d/%d/%d\n%s", ret, own, wait, e.DebugString())
				}
				if err := e.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			}
			if got != want {
				t.Fatalf("summed counters = %d, committed increments = %d (lost/phantom updates through recycled images)", got, want)
			}
			if want == 0 {
				t.Fatal("no committed upgraded writes observed")
			}
			if totalReused == 0 {
				t.Fatal("no write copies served from recycled buffers — the property run was vacuous")
			}
		})
	}
}
