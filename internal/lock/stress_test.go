package lock

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"

	"bamboo/internal/txn"
)

// TestPooledReuseStress hammers the pooled-request path (AcquireInto +
// Pool recycling, the zero-allocation hot path) under wounds and
// cascading aborts across multiple hot entries, exactly the condition the
// quiescence rule on Pool.Put must survive: Bamboo's retired list and
// wound/cascade scans may reference a request right up to the moment it
// is released, and recycling one instant too early is a use-after-free.
//
// Detection is two-pronged: under -race, any protocol-side access to a
// recycled request races with Pool.Put's non-atomic field reset; and each
// worker snapshots its request generations at Get time and verifies they
// are unchanged before Put — a changed generation means someone recycled
// a request the worker still held.
func TestPooledReuseStress(t *testing.T) {
	variants := []struct {
		name string
		cfg  Config
	}{
		{"bamboo-full", Config{Variant: Bamboo, RetireReads: true, NoWoundRead: true}},
		{"bamboo-dynts", Config{Variant: Bamboo, RetireReads: true, NoWoundRead: true, DynamicTS: true}},
		{"woundwait", Config{Variant: WoundWait}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			m := NewManager(v.cfg)
			const nEntries = 4
			entries := make([]*Entry, nEntries)
			for i := range entries {
				entries[i] = &Entry{}
				entries[i].Init(make([]byte, 8))
			}

			const workers = 8
			perWorker := 400
			if testing.Short() {
				perWorker = 150
			}
			var committedWrites [workers]uint64
			var wg sync.WaitGroup
			retire := v.cfg.Variant == Bamboo
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					var pool Pool
					alloc := m.NewTSAlloc(w)
					rng := rand.New(rand.NewSource(int64(w)*599 + 7))
					tx := txn.New(0)
					tx.SetTSAlloc(alloc)
					reqs := make([]*Request, 0, nEntries)
					gens := make([]uint64, 0, nEntries)
					for i := 0; i < perWorker; i++ {
						tx.Renew(uint64(w*perWorker+i) + 1)
						// Each transaction touches 2–4 entries in index
						// order (index order avoids latch-free deadlock
						// only; ts-order conflicts still wound/cascade).
						n := 2 + rng.Intn(nEntries-1)
						for {
							if !v.cfg.DynamicTS && !tx.HasTS() {
								m.AssignTS(tx)
							}
							reqs, gens = reqs[:0], gens[:0]
							aborted := false
							for ei := 0; ei < n; ei++ {
								mode := EX
								if rng.Intn(2) == 0 {
									mode = SH
								}
								r := pool.Get()
								gens = append(gens, r.Gen())
								if err := m.AcquireInto(r, tx, mode, entries[ei]); err != nil {
									if r.Gen() != gens[len(gens)-1] {
										t.Errorf("request recycled while held (gen %d -> %d)", gens[len(gens)-1], r.Gen())
									}
									pool.Put(r)
									gens = gens[:len(gens)-1]
									aborted = true
									break
								}
								reqs = append(reqs, r)
								if mode == EX {
									binary.LittleEndian.PutUint64(r.Data,
										binary.LittleEndian.Uint64(r.Data)+1)
									if retire {
										m.Retire(r)
									}
								}
							}
							commit := false
							if !aborted {
								// Commit protocol: drain semaphore, CAS.
								ok := true
								for it := 0; ; it++ {
									if tx.Aborting() {
										ok = false
										break
									}
									if tx.Sem() == 0 {
										break
									}
									Backoff(it)
								}
								commit = ok && tx.BeginCommit()
							}
							writes := uint64(0)
							for ri, r := range reqs {
								if r.Mode == EX {
									writes++
								}
								m.Release(r, !commit)
								if r.Gen() != gens[ri] {
									t.Errorf("request recycled while held (gen %d -> %d)", gens[ri], r.Gen())
								}
								pool.Put(r)
							}
							if commit {
								tx.FinishCommit()
								committedWrites[w] += writes
								break
							}
							tx.FinishAbort()
							tx.Reset()
						}
					}
				}(w)
			}
			wg.Wait()

			var want, got uint64
			for _, c := range committedWrites {
				want += c
			}
			for _, e := range entries {
				got += binary.LittleEndian.Uint64(e.CurrentData())
				if ret, own, wait := e.Snapshot(); ret+own+wait != 0 {
					t.Fatalf("entry not drained: %d/%d/%d\n%s", ret, own, wait, e.DebugString())
				}
				if err := e.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			}
			if got != want {
				t.Fatalf("summed counters = %d, committed increments = %d (lost/phantom updates through recycled requests)", got, want)
			}
			if want == 0 {
				t.Fatal("no committed increments observed")
			}
		})
	}
}

// TestUpgradePooledReuseStress mixes SH→EX upgrades into the pooled-
// request hammer: every transaction touches several hot entries, reads
// them, upgrades a random subset in place, and retires the upgraded
// writes — under wounds, cascades and freelist recycling. This is the
// nastiest interaction surface of the upgrade path: an upgrade relinks a
// request between intrusive lists while wound scans and cascade scans
// walk them, and the quiescence rule must still hold when the recycled
// request spent part of its life in each list under each mode.
//
// Correctness oracle: per-entry counters must equal the committed
// increments (upgrades that lose updates or double-apply break it), the
// generation snapshots must be stable (reuse-after-release), and the
// entries must drain.
func TestUpgradePooledReuseStress(t *testing.T) {
	variants := []struct {
		name string
		cfg  Config
	}{
		{"bamboo-full", Config{Variant: Bamboo, RetireReads: true, NoWoundRead: true}},
		{"bamboo-dynts", Config{Variant: Bamboo, RetireReads: true, NoWoundRead: true, DynamicTS: true}},
		{"bamboo-plain", Config{Variant: Bamboo}},
		{"woundwait", Config{Variant: WoundWait}},
		{"waitdie", Config{Variant: WaitDie}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			m := NewManager(v.cfg)
			const nEntries = 3
			entries := make([]*Entry, nEntries)
			for i := range entries {
				entries[i] = &Entry{}
				entries[i].Init(make([]byte, 8))
			}

			const workers = 8
			perWorker := 300
			if testing.Short() {
				perWorker = 120
			}
			var committedWrites [workers]uint64
			var wg sync.WaitGroup
			retire := v.cfg.Variant == Bamboo
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					var pool Pool
					alloc := m.NewTSAlloc(w)
					rng := rand.New(rand.NewSource(int64(w)*881 + 3))
					tx := txn.New(0)
					tx.SetTSAlloc(alloc)
					reqs := make([]*Request, 0, nEntries)
					gens := make([]uint64, 0, nEntries)
					for i := 0; i < perWorker; i++ {
						tx.Renew(uint64(w*perWorker+i) + 1)
						n := 1 + rng.Intn(nEntries)
						for {
							if !v.cfg.DynamicTS && !tx.HasTS() {
								m.AssignTS(tx)
							}
							reqs, gens = reqs[:0], gens[:0]
							aborted := false
							writes := uint64(0)
							for ei := 0; ei < n && !aborted; ei++ {
								r := pool.Get()
								gens = append(gens, r.Gen())
								if err := m.AcquireInto(r, tx, SH, entries[ei]); err != nil {
									if r.Gen() != gens[len(gens)-1] {
										t.Errorf("request recycled while held (gen %d -> %d)", gens[len(gens)-1], r.Gen())
									}
									pool.Put(r)
									gens = gens[:len(gens)-1]
									aborted = true
									break
								}
								reqs = append(reqs, r)
								seen := binary.LittleEndian.Uint64(r.Data)
								if rng.Intn(2) == 0 { // read-modify-write: upgrade in place
									if err := m.Upgrade(r); err != nil {
										aborted = true
										break
									}
									binary.LittleEndian.PutUint64(r.Data, seen+1)
									writes++
									if retire && rng.Intn(2) == 0 {
										m.Retire(r)
									}
								}
							}
							commit := false
							if !aborted {
								ok := true
								for it := 0; ; it++ {
									if tx.Aborting() {
										ok = false
										break
									}
									if tx.Sem() == 0 {
										break
									}
									Backoff(it)
								}
								commit = ok && tx.BeginCommit()
							}
							for ri, r := range reqs {
								m.Release(r, !commit)
								if r.Gen() != gens[ri] {
									t.Errorf("request recycled while held (gen %d -> %d)", gens[ri], r.Gen())
								}
								pool.Put(r)
							}
							if commit {
								tx.FinishCommit()
								committedWrites[w] += writes
								break
							}
							tx.FinishAbort()
							tx.Reset()
						}
					}
				}(w)
			}
			wg.Wait()

			var want, got uint64
			for _, c := range committedWrites {
				want += c
			}
			for _, e := range entries {
				got += binary.LittleEndian.Uint64(e.CurrentData())
				if ret, own, wait := e.Snapshot(); ret+own+wait != 0 {
					t.Fatalf("entry not drained: %d/%d/%d\n%s", ret, own, wait, e.DebugString())
				}
				if err := e.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			}
			if got != want {
				t.Fatalf("summed counters = %d, committed increments = %d (lost/phantom updates through upgrades)", got, want)
			}
			if want == 0 {
				t.Fatal("no committed upgraded writes observed")
			}
		})
	}
}

// TestCounterStress drives concurrent read-modify-write increments of a
// single hot entry through the full wound/retire/cascade machinery and
// checks that the committed count equals the final value — a lock-level
// lost-update/phantom-install detector.
func TestCounterStress(t *testing.T) {
	variants := []struct {
		name string
		cfg  Config
	}{
		{"bamboo-full", Config{Variant: Bamboo, RetireReads: true, NoWoundRead: true}},
		{"bamboo-dynts", Config{Variant: Bamboo, RetireReads: true, NoWoundRead: true, DynamicTS: true}},
		{"bamboo-plain", Config{Variant: Bamboo}},
		{"woundwait", Config{Variant: WoundWait}},
		{"waitdie", Config{Variant: WaitDie}},
		{"nowait", Config{Variant: NoWait}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			m := NewManager(v.cfg)
			e := &Entry{}
			e.Init(make([]byte, 8))

			const workers = 8
			const perWorker = 300
			var commits [workers]uint64
			var wg sync.WaitGroup
			retire := v.cfg.Variant == Bamboo
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						tx := txn.New(uint64(w*perWorker+i) + 1)
						for {
							if !v.cfg.DynamicTS && !tx.HasTS() {
								m.AssignTS(tx)
							}
							r, err := m.Acquire(tx, EX, e)
							if err != nil {
								tx.FinishAbort()
								tx.Reset()
								continue
							}
							binary.LittleEndian.PutUint64(r.Data,
								binary.LittleEndian.Uint64(r.Data)+1)
							if retire {
								m.Retire(r)
							}
							// Commit protocol: drain semaphore, CAS commit.
							ok := true
							for it := 0; ; it++ {
								if tx.Aborting() {
									ok = false
									break
								}
								if tx.Sem() == 0 {
									break
								}
								Backoff(it)
							}
							if ok && tx.BeginCommit() {
								m.Release(r, false)
								tx.FinishCommit()
								commits[w]++
								break
							}
							m.Release(r, true)
							tx.FinishAbort()
							tx.Reset()
						}
					}
				}(w)
			}
			wg.Wait()

			var total uint64
			for _, c := range commits {
				total += c
			}
			got := binary.LittleEndian.Uint64(e.CurrentData())
			if got != total {
				t.Fatalf("final value = %d, committed increments = %d (lost/phantom updates)", got, total)
			}
			if want := uint64(workers * perWorker); total != want {
				t.Fatalf("commits = %d, want %d", total, want)
			}
			if ret, own, wait := e.Snapshot(); ret+own+wait != 0 {
				t.Fatalf("entry not drained: %d/%d/%d", ret, own, wait)
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
