package lock

import (
	"encoding/binary"
	"sync"
	"testing"

	"bamboo/internal/txn"
)

// TestCounterStress drives concurrent read-modify-write increments of a
// single hot entry through the full wound/retire/cascade machinery and
// checks that the committed count equals the final value — a lock-level
// lost-update/phantom-install detector.
func TestCounterStress(t *testing.T) {
	variants := []struct {
		name string
		cfg  Config
	}{
		{"bamboo-full", Config{Variant: Bamboo, RetireReads: true, NoWoundRead: true}},
		{"bamboo-dynts", Config{Variant: Bamboo, RetireReads: true, NoWoundRead: true, DynamicTS: true}},
		{"bamboo-plain", Config{Variant: Bamboo}},
		{"woundwait", Config{Variant: WoundWait}},
		{"waitdie", Config{Variant: WaitDie}},
		{"nowait", Config{Variant: NoWait}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			m := NewManager(v.cfg)
			e := &Entry{}
			e.Init(make([]byte, 8))

			const workers = 8
			const perWorker = 300
			var commits [workers]uint64
			var wg sync.WaitGroup
			retire := v.cfg.Variant == Bamboo
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						tx := txn.New(uint64(w*perWorker+i) + 1)
						for {
							if !v.cfg.DynamicTS && !tx.HasTS() {
								m.AssignTS(tx)
							}
							r, err := m.Acquire(tx, EX, e)
							if err != nil {
								tx.FinishAbort()
								tx.Reset()
								continue
							}
							binary.LittleEndian.PutUint64(r.Data,
								binary.LittleEndian.Uint64(r.Data)+1)
							if retire {
								m.Retire(r)
							}
							// Commit protocol: drain semaphore, CAS commit.
							ok := true
							for it := 0; ; it++ {
								if tx.Aborting() {
									ok = false
									break
								}
								if tx.Sem() == 0 {
									break
								}
								Backoff(it)
							}
							if ok && tx.BeginCommit() {
								m.Release(r, false)
								tx.FinishCommit()
								commits[w]++
								break
							}
							m.Release(r, true)
							tx.FinishAbort()
							tx.Reset()
						}
					}
				}(w)
			}
			wg.Wait()

			var total uint64
			for _, c := range commits {
				total += c
			}
			got := binary.LittleEndian.Uint64(e.CurrentData())
			if got != total {
				t.Fatalf("final value = %d, committed increments = %d (lost/phantom updates)", got, total)
			}
			if want := uint64(workers * perWorker); total != want {
				t.Fatalf("commits = %d, want %d", total, want)
			}
			if ret, own, wait := e.Snapshot(); ret+own+wait != 0 {
				t.Fatalf("entry not drained: %d/%d/%d", ret, own, wait)
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
