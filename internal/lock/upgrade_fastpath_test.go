package lock

import (
	"testing"

	"bamboo/internal/txn"
)

// TestUpgradeFastPathSoleReader covers the sole-holder upgrade fast path:
// a shared request that is the entry's only holder, with no waiters,
// promotes to exclusive under every variant without touching the
// wound/blocked machinery, and behaves exactly like a declared exclusive
// acquisition afterwards (private mutable copy, publish at release).
func TestUpgradeFastPathSoleReader(t *testing.T) {
	mgrs := map[string]*Manager{
		"nowait":    NewManager(Config{Variant: NoWait}),
		"waitdie":   NewManager(Config{Variant: WaitDie}),
		"woundwait": NewManager(Config{Variant: WoundWait}),
		"bamboo":    bambooMgr(),
		"dynts":     NewManager(Config{Variant: Bamboo, RetireReads: true, DynamicTS: true}),
	}
	for name, m := range mgrs {
		t.Run(name, func(t *testing.T) {
			e := newEntry(7)
			tx := newTxnTS(1, 1)
			r := mustAcquire(t, m, tx, SH, e)
			if err := m.Upgrade(r); err != nil {
				t.Fatalf("sole-reader upgrade: %v", err)
			}
			if r.Mode != EX || !r.Granted() || r.Retired() {
				t.Fatalf("after upgrade: mode=%s granted=%v retired=%v",
					r.Mode, r.Granted(), r.Retired())
			}
			if u := tx.Sem(); u != 0 {
				t.Fatalf("sole-holder upgrade took a commit dependency: sem=%d", u)
			}
			// The write image must be a private copy: mutating it must not
			// leak into the entry until release publishes it.
			r.Data[0] = 42
			if e.CurrentData()[0] != 7 {
				t.Fatalf("upgrade image is not private: entry data = %v", e.CurrentData())
			}
			m.Release(r, false)
			if e.CurrentData()[0] != 42 {
				t.Fatalf("commit did not publish the upgraded write: %v", e.CurrentData())
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestUpgradeFastPathNotTakenWithWaiter pins the fast path's guard: with a
// waiter queued the upgrade must go through the full path (here: the
// waiter is younger, so the Wound-Wait upgrader still completes — the
// queued EX conflicts with the shared hold, so it waits rather than being
// granted into the upgrader's critical section — and is granted only once
// the upgraded writer releases).
func TestUpgradeFastPathNotTakenWithWaiter(t *testing.T) {
	m := NewManager(Config{Variant: WoundWait})
	e := newEntry(7)
	older := newTxnTS(1, 1)
	r := mustAcquire(t, m, older, SH, e)

	younger := newTxnTS(2, 2)
	done := make(chan error, 1)
	go func() {
		w, err := m.Acquire(younger, EX, e)
		if err == nil {
			m.Release(w, false)
		}
		done <- err
	}()
	// Wait until the younger EX request is actually queued.
	for i := 0; ; i++ {
		if _, _, waiting := e.Snapshot(); waiting == 1 {
			break
		}
		Backoff(i)
	}
	if err := m.Upgrade(r); err != nil {
		t.Fatalf("upgrade with queued younger waiter: %v", err)
	}
	if r.Mode != EX {
		t.Fatalf("mode = %s after upgrade", r.Mode)
	}
	m.Release(r, false)
	if err := <-done; err != nil && err != ErrWound {
		t.Fatalf("younger waiter: %v", err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestUpgradeFastPathAllocs asserts the fast path adds zero allocations
// beyond the inherent private write-image clone: a full
// acquire-SH→upgrade→release cycle allocates exactly as much as the
// declared acquire-EX→release cycle it replaces.
func TestUpgradeFastPathAllocs(t *testing.T) {
	for _, variant := range []string{"bamboo", "woundwait"} {
		t.Run(variant, func(t *testing.T) {
			var m *Manager
			if variant == "bamboo" {
				m = bambooMgr()
			} else {
				m = NewManager(Config{Variant: WoundWait})
			}
			e := newEntry(7)
			tx := txn.New(1)
			tx.SetTS(1)
			var pool Pool

			cycle := func(upgrade bool) float64 {
				return testing.AllocsPerRun(200, func() {
					r := pool.Get()
					mode := EX
					if upgrade {
						mode = SH
					}
					if err := m.AcquireInto(r, tx, mode, e); err != nil {
						t.Fatal(err)
					}
					if upgrade {
						if err := m.Upgrade(r); err != nil {
							t.Fatal(err)
						}
					}
					m.Release(r, false)
					pool.Put(r)
				})
			}
			declared := cycle(false)
			upgraded := cycle(true)
			t.Logf("%s: declared EX %.1f allocs, SH→EX upgrade %.1f allocs", variant, declared, upgraded)
			// Each cycle's one allocation is the private write-image clone.
			if upgraded > declared {
				t.Fatalf("upgrade fast path allocates: %.1f vs %.1f for declared EX",
					upgraded, declared)
			}
			if upgraded > 1 {
				t.Fatalf("sole-reader upgrade cycle = %.1f allocs, want ≤1 (the image clone)", upgraded)
			}
		})
	}
}
