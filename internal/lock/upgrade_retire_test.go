package lock

import (
	"bytes"
	"testing"

	"bamboo/internal/txn"
)

// afterImage clones the installed image r is reading and sets its first
// byte — the latch-free after-image construction UpgradeRetire expects.
func afterImage(r *Request, b byte) []byte {
	img := bytes.Clone(r.Data)
	img[0] = b
	return img
}

// TestUpgradeRetireSoleReader covers the fused upgrade+retire on the
// sole-holder fast path: the promotion, mutation and retire-install all
// land in one critical section, the dirty image is immediately the
// entry's newest version, and commit/abort behave exactly as after the
// two-step Upgrade+Retire.
func TestUpgradeRetireSoleReader(t *testing.T) {
	for name, mk := range map[string]func() *Manager{
		"bamboo": bambooMgr,
		"dynts":  func() *Manager { return NewManager(Config{Variant: Bamboo, RetireReads: true, DynamicTS: true}) },
	} {
		t.Run(name, func(t *testing.T) {
			m := mk()
			e := newEntry(7)
			tx := newTxnTS(1, 1)
			r := mustAcquire(t, m, tx, SH, e)
			if err := m.UpgradeRetire(r, afterImage(r, 42)); err != nil {
				t.Fatalf("upgrade-retire: %v", err)
			}
			if r.Mode != EX || !r.Retired() {
				t.Fatalf("after upgrade-retire: mode=%s retired=%v", r.Mode, r.Retired())
			}
			if u := tx.Sem(); u != 0 {
				t.Fatalf("sole-holder upgrade-retire took a commit dependency: sem=%d", u)
			}
			// The retire installed the mutated image as the newest (dirty)
			// version.
			if got := e.CurrentData()[0]; got != 42 {
				t.Fatalf("retired write not installed: entry data = %d", got)
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			m.Release(r, false)
			if got := e.CurrentData()[0]; got != 42 {
				t.Fatalf("commit lost the installed write: %d", got)
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestUpgradeRetireAbortRestores pins the abort path: the fused install
// participates in the sequence-guarded restore exactly like a Retire'd
// write.
func TestUpgradeRetireAbortRestores(t *testing.T) {
	m := bambooMgr()
	e := newEntry(7)
	tx := newTxnTS(1, 1)
	r := mustAcquire(t, m, tx, SH, e)
	if err := m.UpgradeRetire(r, afterImage(r, 42)); err != nil {
		t.Fatal(err)
	}
	m.Release(r, true)
	if got := e.CurrentData()[0]; got != 7 {
		t.Fatalf("abort did not restore the pre-image: %d", got)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestUpgradeRetireDirtyReadable asserts the point of retiring in the
// same critical section: a reader arriving after UpgradeRetire returns
// observes the dirty image and commit-orders behind the writer.
func TestUpgradeRetireDirtyReadable(t *testing.T) {
	m := bambooMgr()
	e := newEntry(7)
	writer := newTxnTS(1, 1)
	r := mustAcquire(t, m, writer, SH, e)
	if err := m.UpgradeRetire(r, afterImage(r, 42)); err != nil {
		t.Fatal(err)
	}
	reader := newTxnTS(2, 2)
	rr := mustAcquire(t, m, reader, SH, e)
	if rr.Data[0] != 42 || !rr.Dirty {
		t.Fatalf("reader after upgrade-retire: data=%d dirty=%v", rr.Data[0], rr.Dirty)
	}
	if reader.Sem() != 1 {
		t.Fatalf("dirty reader must commit-order behind the writer: sem=%d", reader.Sem())
	}
	m.Release(r, false)
	if reader.Sem() != 0 {
		t.Fatalf("writer release did not clear the reader's dependency: sem=%d", reader.Sem())
	}
	m.Release(rr, false)
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestUpgradeRetireBehindOlderRetiree: with an older retired reader
// present, the fused path keeps the upgraded writer's retired-list slot
// (it is the youngest, so its old slot is its timestamp slot) and takes
// the same commit dependency the two-step path would.
func TestUpgradeRetireBehindOlderRetiree(t *testing.T) {
	m := bambooMgr()
	e := newEntry(7)
	older := newTxnTS(1, 1)
	or := mustAcquire(t, m, older, SH, e)
	younger := newTxnTS(2, 2)
	yr := mustAcquire(t, m, younger, SH, e)
	if err := m.UpgradeRetire(yr, afterImage(yr, 9)); err != nil {
		t.Fatalf("upgrade-retire behind older retiree: %v", err)
	}
	if younger.Sem() != 1 {
		t.Fatalf("upgraded writer must commit-order behind the older retiree: sem=%d", younger.Sem())
	}
	if ret, own, _ := e.Snapshot(); ret != 2 || own != 0 {
		t.Fatalf("retired=%d owners=%d after fused retire, want 2/0", ret, own)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	m.Release(or, false)
	if younger.Sem() != 0 {
		t.Fatalf("older release did not clear the writer's dependency: sem=%d", younger.Sem())
	}
	m.Release(yr, false)
	if got := e.CurrentData()[0]; got != 9 {
		t.Fatalf("committed upgraded write lost: %d", got)
	}
}

// TestUpgradeRetireGrantsQueuedReader drives the contended fused path:
// an upgrade blocked by a younger holder wounds it, and a reader that
// queued behind the pending upgrade is granted by the same critical
// section that installs the retired write — observing the dirty image
// and commit-ordering behind the upgraded writer.
func TestUpgradeRetireGrantsQueuedReader(t *testing.T) {
	m := bambooMgr()
	e := newEntry(7)
	upgrader := newTxnTS(1, 1)
	ur := mustAcquire(t, m, upgrader, SH, e)
	blocker := newTxnTS(2, 2)
	br := mustAcquire(t, m, blocker, SH, e)

	upDone := make(chan error, 1)
	go func() { upDone <- m.UpgradeRetire(ur, afterImage(ur, 42)) }()
	// The upgrade wounds the younger holder and spins until it drains.
	for i := 0; !blocker.Aborting(); i++ {
		Backoff(i)
	}

	// A younger reader arriving now queues behind the pending upgrade.
	reader := newTxnTS(3, 3)
	type got struct {
		r   *Request
		err error
	}
	readDone := make(chan got, 1)
	go func() {
		r, err := m.Acquire(reader, SH, e)
		readDone <- got{r, err}
	}()
	for i := 0; ; i++ {
		if _, _, waiting := e.Snapshot(); waiting == 1 {
			break
		}
		Backoff(i)
	}

	// Draining the wounded holder unblocks the upgrade; its completion
	// must install the write AND grant the queued reader.
	m.Release(br, true)
	if err := <-upDone; err != nil {
		t.Fatalf("upgrade-retire: %v", err)
	}
	g := <-readDone
	if g.err != nil {
		t.Fatalf("queued reader: %v", g.err)
	}
	if g.r.Data[0] != 42 || !g.r.Dirty {
		t.Fatalf("queued reader sees data=%d dirty=%v, want the dirty 42", g.r.Data[0], g.r.Dirty)
	}
	if reader.Sem() != 1 {
		t.Fatalf("queued reader must commit-order behind the writer: sem=%d", reader.Sem())
	}
	m.Release(ur, false)
	m.Release(g.r, false)
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestUpgradeRetireLatchPasses is the latch-pass gate of the
// upgrade-aware retire ordering: the two-step Upgrade+Retire costs two
// entry-latch critical sections, the fused UpgradeRetire exactly one.
func TestUpgradeRetireLatchPasses(t *testing.T) {
	count := 0
	testHookLatchPass = func() { count++ }
	defer func() { testHookLatchPass = nil }()

	m := bambooMgr()
	e := newEntry(7)

	tx1 := newTxnTS(1, 1)
	r1 := mustAcquire(t, m, tx1, SH, e)
	count = 0
	if err := m.Upgrade(r1); err != nil {
		t.Fatal(err)
	}
	m.Retire(r1)
	twoStep := count
	m.Release(r1, false)

	tx2 := newTxnTS(2, 2)
	r2 := mustAcquire(t, m, tx2, SH, e)
	count = 0
	if err := m.UpgradeRetire(r2, afterImage(r2, 1)); err != nil {
		t.Fatal(err)
	}
	fused := count
	m.Release(r2, false)

	if twoStep != 2 {
		t.Fatalf("two-step upgrade+retire took %d latch passes, expected 2", twoStep)
	}
	if fused != 1 {
		t.Fatalf("fused upgrade-retire took %d latch passes, want exactly 1", fused)
	}
}

// TestUpgradeRetireAllocs asserts the fused path allocates exactly what
// the declared-EX retire cycle does: the one private write-image clone.
func TestUpgradeRetireAllocs(t *testing.T) {
	m := bambooMgr()
	e := newEntry(7)
	tx := txn.New(1)
	tx.SetTS(1)
	var pool Pool
	mutate := func(img []byte) { img[0]++ }

	declared := testing.AllocsPerRun(200, func() {
		r := pool.Get()
		if err := m.AcquireInto(r, tx, EX, e); err != nil {
			t.Fatal(err)
		}
		mutate(r.Data)
		m.Retire(r)
		m.Release(r, false)
		pool.Put(r)
	})
	fused := testing.AllocsPerRun(200, func() {
		r := pool.Get()
		if err := m.AcquireInto(r, tx, SH, e); err != nil {
			t.Fatal(err)
		}
		img := bytes.Clone(r.Data) // the caller-built after-image: the one allocation
		mutate(img)
		if err := m.UpgradeRetire(r, img); err != nil {
			t.Fatal(err)
		}
		m.Release(r, false)
		pool.Put(r)
	})
	t.Logf("declared EX+retire %.1f allocs, fused upgrade-retire %.1f allocs", declared, fused)
	if fused > declared {
		t.Fatalf("fused upgrade-retire allocates: %.1f vs %.1f declared", fused, declared)
	}
	if fused > 1 {
		t.Fatalf("fused upgrade-retire cycle = %.1f allocs, want ≤1 (the image clone)", fused)
	}
}
