package lock

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"bamboo/internal/txn"
)

// upgradeVariants enumerates the manager configurations upgrade tests run
// against.
func upgradeVariants() []struct {
	name string
	cfg  Config
} {
	return []struct {
		name string
		cfg  Config
	}{
		{"bamboo-full", Config{Variant: Bamboo, RetireReads: true, NoWoundRead: true}},
		{"bamboo-dynts", Config{Variant: Bamboo, RetireReads: true, NoWoundRead: true, DynamicTS: true}},
		{"bamboo-plain", Config{Variant: Bamboo}},
		{"woundwait", Config{Variant: WoundWait}},
		{"waitdie", Config{Variant: WaitDie}},
		{"nowait", Config{Variant: NoWait}},
	}
}

// TestUpgradeUncontended: a sole shared holder upgrades in place, writes,
// and the write is published at release (2PL) or retire (Bamboo).
func TestUpgradeUncontended(t *testing.T) {
	for _, v := range upgradeVariants() {
		t.Run(v.name, func(t *testing.T) {
			m := NewManager(v.cfg)
			e := &Entry{}
			e.Init([]byte{1})

			tx := txn.New(1)
			m.AssignTS(tx)
			r, err := m.Acquire(tx, SH, e)
			if err != nil {
				t.Fatal(err)
			}
			shared := r.Data
			if err := m.Upgrade(r); err != nil {
				t.Fatal(err)
			}
			if r.Mode != EX {
				t.Fatalf("mode = %v after upgrade", r.Mode)
			}
			if !r.Granted() {
				t.Fatal("request not granted after upgrade")
			}
			if &r.Data[0] == &shared[0] {
				t.Fatal("upgrade did not take a private copy of the image")
			}
			r.Data[0] = 42
			if got := e.CurrentData()[0]; got != 1 {
				t.Fatalf("private write leaked into the entry: %d", got)
			}
			if v.cfg.Variant == Bamboo {
				m.Retire(r)
				if got := e.CurrentData()[0]; got != 42 {
					t.Fatalf("retired write not installed: %d", got)
				}
			}
			if !tx.BeginCommit() {
				t.Fatal("commit CAS failed")
			}
			m.Release(r, false)
			tx.FinishCommit()
			if got := e.CurrentData()[0]; got != 42 {
				t.Fatalf("entry = %d after commit, want 42", got)
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if ret, own, wait := e.Snapshot(); ret+own+wait != 0 {
				t.Fatalf("entry not drained: %d/%d/%d", ret, own, wait)
			}
		})
	}
}

// TestUpgradeIdempotent: upgrading an already-exclusive request is a
// no-op.
func TestUpgradeIdempotent(t *testing.T) {
	m := NewManager(Config{Variant: Bamboo, RetireReads: true})
	e := &Entry{}
	e.Init([]byte{0})
	tx := txn.New(1)
	m.AssignTS(tx)
	r, err := m.Acquire(tx, EX, e)
	if err != nil {
		t.Fatal(err)
	}
	data := r.Data
	if err := m.Upgrade(r); err != nil {
		t.Fatal(err)
	}
	if &r.Data[0] != &data[0] {
		t.Fatal("no-op upgrade replaced the private image")
	}
	m.Release(r, true)
	tx.FinishAbort()
}

// TestUpgradeWoundsYoungerReader: under Wound-Wait/Bamboo an upgrader
// wounds a younger shared holder and completes once it drains; the
// younger transaction aborts (the "upgrade-upgrade deadlocks abort the
// younger txn" rule in its simplest form).
func TestUpgradeWoundsYoungerReader(t *testing.T) {
	for _, v := range upgradeVariants() {
		if v.cfg.Variant != WoundWait && v.cfg.Variant != Bamboo {
			continue
		}
		t.Run(v.name, func(t *testing.T) {
			wounds := 0
			cfg := v.cfg
			cfg.OnWound = func() { wounds++ }
			m := NewManager(cfg)
			e := &Entry{}
			e.Init([]byte{0})

			older, younger := txn.New(1), txn.New(2)
			m.AssignTS(older)
			m.AssignTS(younger)
			r1, err := m.Acquire(older, SH, e)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := m.Acquire(younger, SH, e)
			if err != nil {
				t.Fatal(err)
			}

			done := make(chan error, 1)
			go func() { done <- m.Upgrade(r1) }()

			// The upgrade must wound the younger reader and then wait for
			// it to drain.
			for i := 0; !younger.Aborting(); i++ {
				if i > 1e7 {
					t.Fatal("younger reader never wounded")
				}
				Backoff(i)
			}
			m.Release(r2, true)
			younger.FinishAbort()

			if err := <-done; err != nil {
				t.Fatalf("upgrade failed: %v", err)
			}
			if wounds == 0 {
				t.Fatal("OnWound not called")
			}
			m.Release(r1, true)
			older.FinishAbort()
			if err := e.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestUpgradeYoungerAbortsAgainstOlderHolder: a younger upgrader facing
// an older shared holder must not wound it — it either waits for the
// older holder to leave (Wound-Wait/Bamboo) or self-aborts (Wait-Die,
// No-Wait).
func TestUpgradeYoungerAbortsAgainstOlderHolder(t *testing.T) {
	for _, v := range upgradeVariants() {
		t.Run(v.name, func(t *testing.T) {
			m := NewManager(v.cfg)
			e := &Entry{}
			e.Init([]byte{0})

			older, younger := txn.New(1), txn.New(2)
			m.AssignTS(older)
			m.AssignTS(younger)
			r1, err := m.Acquire(older, SH, e)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := m.Acquire(younger, SH, e)
			if err != nil {
				t.Fatal(err)
			}

			switch v.cfg.Variant {
			case WaitDie:
				if err := m.Upgrade(r2); !errors.Is(err, ErrDie) {
					t.Fatalf("err = %v, want ErrDie", err)
				}
				if older.Aborting() {
					t.Fatal("older holder was aborted by a younger upgrader")
				}
				m.Release(r2, true)
				younger.FinishAbort()
				m.Release(r1, false)
			case NoWait:
				if err := m.Upgrade(r2); !errors.Is(err, ErrNoWait) {
					t.Fatalf("err = %v, want ErrNoWait", err)
				}
				m.Release(r2, true)
				younger.FinishAbort()
				m.Release(r1, false)
			case Bamboo:
				if v.cfg.RetireReads {
					// The older holder is a *retired* reader: the upgrade
					// completes immediately and commit-orders behind it
					// instead of waiting — the early-release win.
					if err := m.Upgrade(r2); err != nil {
						t.Fatalf("upgrade failed: %v", err)
					}
					if older.Aborting() {
						t.Fatal("older retired reader was wounded by a younger upgrader")
					}
					if younger.Sem() != 1 {
						t.Fatalf("sem = %d, want commit-ordering behind the older reader", younger.Sem())
					}
					m.Release(r1, false) // older reader leaves
					if younger.Sem() != 0 {
						t.Fatalf("sem = %d after older reader left, want 0", younger.Sem())
					}
					if !younger.BeginCommit() {
						t.Fatal("commit CAS failed")
					}
					m.Release(r2, false)
					younger.FinishCommit()
					break
				}
				fallthrough
			default: // WoundWait, Bamboo without RetireReads: wait, don't wound
				done := make(chan error, 1)
				go func() { done <- m.Upgrade(r2) }()
				time.Sleep(2 * time.Millisecond)
				if older.Aborting() {
					t.Fatal("older holder was wounded by a younger upgrader")
				}
				select {
				case err := <-done:
					t.Fatalf("upgrade completed alongside an older shared holder: %v", err)
				default:
				}
				m.Release(r1, false) // older leaves; the upgrade may proceed
				if err := <-done; err != nil {
					t.Fatalf("upgrade failed after older holder left: %v", err)
				}
				m.Release(r2, true)
				younger.FinishAbort()
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestUpgradeUpgradeConflictYoungerAborts: two shared holders both
// upgrade; exactly the younger aborts while the older's upgrade
// completes, under every waiting variant.
func TestUpgradeUpgradeConflictYoungerAborts(t *testing.T) {
	for _, v := range upgradeVariants() {
		if v.cfg.Variant == NoWait {
			continue // no-wait upgrades never coexist with another holder
		}
		t.Run(v.name, func(t *testing.T) {
			m := NewManager(v.cfg)
			e := &Entry{}
			e.Init([]byte{0})

			older, younger := txn.New(1), txn.New(2)
			m.AssignTS(older)
			m.AssignTS(younger)
			r1, err := m.Acquire(older, SH, e)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := m.Acquire(younger, SH, e)
			if err != nil {
				t.Fatal(err)
			}

			oldDone := make(chan error, 1)
			go func() { oldDone <- m.Upgrade(r1) }()
			if v.cfg.Variant == WaitDie {
				// Wait-Die never wounds: give the older upgrade a moment to
				// claim the entry, then the younger upgrader self-aborts on
				// the older holder either way.
				time.Sleep(time.Millisecond)
			} else {
				// The older upgrade wounds the younger holder.
				for i := 0; !younger.Aborting(); i++ {
					if i > 1e7 {
						t.Fatal("younger holder never wounded by the older upgrader")
					}
					Backoff(i)
				}
			}
			if err := m.Upgrade(r2); err == nil {
				t.Fatal("younger upgrade succeeded against an older upgrader")
			}
			// On error the request is still attached; the worker's rollback
			// releases it.
			m.Release(r2, true)
			younger.FinishAbort()
			if err := <-oldDone; err != nil {
				t.Fatalf("older upgrade failed: %v", err)
			}
			m.Release(r1, true)
			older.FinishAbort()
			if err := e.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if ret, own, wait := e.Snapshot(); ret+own+wait != 0 {
				t.Fatalf("entry not drained: %d/%d/%d", ret, own, wait)
			}
		})
	}
}

// TestUpgradeFromRetiredRead: with Optimization 1 a shared grant sits in
// the retired list; upgrading must un-retire it (a retired read installed
// nothing) and move it to owners before the write image is taken.
func TestUpgradeFromRetiredRead(t *testing.T) {
	m := NewManager(Config{Variant: Bamboo, RetireReads: true, NoWoundRead: true})
	e := &Entry{}
	e.Init([]byte{9})

	tx := txn.New(1)
	m.AssignTS(tx)
	r, err := m.Acquire(tx, SH, e)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Retired() {
		t.Fatal("RetireReads grant not in retired list")
	}
	if err := m.Upgrade(r); err != nil {
		t.Fatal(err)
	}
	if r.Retired() {
		t.Fatal("upgraded request still reads as retired")
	}
	ret, own, _ := e.Snapshot()
	if ret != 0 || own != 1 {
		t.Fatalf("lists after upgrade: retired=%d owners=%d, want 0/1", ret, own)
	}
	r.Data[0] = 10
	m.Retire(r)
	if got := e.CurrentData()[0]; got != 10 {
		t.Fatalf("installed %d, want 10", got)
	}
	m.Release(r, false)
	tx.FinishCommit()
}

// TestUpgradeDirtyReadDependencyPreserved: a positioned read of an older
// writer's dirty image takes a commit-semaphore increment; the upgrade
// keeps that dependency (the writer must still commit first) and the
// upgraded write chains behind it.
func TestUpgradeDirtyReadDependencyPreserved(t *testing.T) {
	m := NewManager(Config{Variant: Bamboo, RetireReads: true, NoWoundRead: true})
	e := &Entry{}
	e.Init([]byte{0})

	writer := txn.New(1)
	m.AssignTS(writer)
	w, err := m.Acquire(writer, EX, e)
	if err != nil {
		t.Fatal(err)
	}
	w.Data[0] = 5
	m.Retire(w) // dirty install

	reader := txn.New(2)
	m.AssignTS(reader)
	r, err := m.Acquire(reader, SH, e)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Dirty || reader.Sem() != 1 {
		t.Fatalf("dirty=%v sem=%d, want dirty read with one dependency", r.Dirty, reader.Sem())
	}
	if err := m.Upgrade(r); err != nil {
		t.Fatal(err)
	}
	if reader.Sem() != 1 {
		t.Fatalf("sem = %d after upgrade, want the dependency kept", reader.Sem())
	}
	if r.Data[0] != 5 {
		t.Fatalf("upgraded image = %d, want the dirty value 5", r.Data[0])
	}

	// The writer commits; the dependency clears and the upgraded write
	// commits on top.
	if !writer.BeginCommit() {
		t.Fatal("writer commit CAS failed")
	}
	m.Release(w, false)
	writer.FinishCommit()
	if reader.Sem() != 0 {
		t.Fatalf("sem = %d after writer commit, want 0", reader.Sem())
	}
	r.Data[0]++
	m.Retire(r)
	if !reader.BeginCommit() {
		t.Fatal("reader commit CAS failed")
	}
	m.Release(r, false)
	reader.FinishCommit()
	if got := e.CurrentData()[0]; got != 6 {
		t.Fatalf("entry = %d, want 6", got)
	}
}

// TestUpgradeCascadeOnSourceAbort: a reader of a dirty image upgrades;
// when the source writer aborts, the cascade must still reach the
// upgraded transaction (its read — and now its write — are based on a
// dead image).
func TestUpgradeCascadeOnSourceAbort(t *testing.T) {
	cascades := 0
	m := NewManager(Config{Variant: Bamboo, RetireReads: true, NoWoundRead: true,
		OnCascade: func(n int) { cascades += n }})
	e := &Entry{}
	e.Init([]byte{1})

	writer := txn.New(1)
	m.AssignTS(writer)
	w, err := m.Acquire(writer, EX, e)
	if err != nil {
		t.Fatal(err)
	}
	w.Data[0] = 2
	m.Retire(w)

	reader := txn.New(2)
	m.AssignTS(reader)
	r, err := m.Acquire(reader, SH, e)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Upgrade(r); err != nil {
		t.Fatal(err)
	}
	r.Data[0]++ // 3, based on the dirty 2
	m.Retire(r)

	// Source aborts: the upgraded dependent must be cascade-aborted and
	// the entry must rewind to the pre-image.
	writer.SetAbort(txn.CauseUser)
	m.Release(w, true)
	writer.FinishAbort()
	if !reader.Aborting() {
		t.Fatal("upgraded dependent not cascade-aborted")
	}
	if cascades == 0 {
		t.Fatal("OnCascade not called")
	}
	m.Release(r, true)
	reader.FinishAbort()
	if got := e.CurrentData()[0]; got != 1 {
		t.Fatalf("entry = %d after cascading abort, want the pre-image 1", got)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestUpgradeErrorLeavesRequestAttached: a failed upgrade must leave the
// request a granted shared holder so the caller's normal rollback path
// (Release) still works — the contract exec.go relies on.
func TestUpgradeErrorLeavesRequestAttached(t *testing.T) {
	m := NewManager(Config{Variant: NoWait})
	e := &Entry{}
	e.Init([]byte{0})

	t1, t2 := txn.New(1), txn.New(2)
	m.AssignTS(t1)
	m.AssignTS(t2)
	r1, err := m.Acquire(t1, SH, e)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m.Acquire(t2, SH, e)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Upgrade(r2); !errors.Is(err, ErrNoWait) {
		t.Fatalf("err = %v, want ErrNoWait", err)
	}
	if !r2.Granted() || r2.Mode != SH {
		t.Fatalf("failed upgrade changed the request: granted=%v mode=%v", r2.Granted(), r2.Mode)
	}
	m.Release(r2, true)
	t2.FinishAbort()
	m.Release(r1, false)
	if ret, own, wait := e.Snapshot(); ret+own+wait != 0 {
		t.Fatalf("entry not drained: %d/%d/%d", ret, own, wait)
	}
}

// TestPropertyUpgradeNeverDeadlocks drives pure read-then-upgrade
// increment transactions on a single hot entry across all waiting
// variants concurrently and asserts completion (a deadlock hangs the
// test and is caught by -timeout) and exact counter conservation —
// upgrade-upgrade conflicts must always resolve by aborting the younger
// transaction, never by losing an update or waiting forever.
func TestPropertyUpgradeNeverDeadlocks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfgs := []Config{
			{Variant: Bamboo, RetireReads: true, NoWoundRead: true},
			{Variant: Bamboo, RetireReads: true, NoWoundRead: true, DynamicTS: true},
			{Variant: WoundWait},
			{Variant: WaitDie},
		}
		cfg := cfgs[rng.Intn(len(cfgs))]
		m := NewManager(cfg)
		e := &Entry{}
		e.Init(make([]byte, 8))

		const workers = 6
		const perWorker = 60
		var commits [workers]uint64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wrng := rand.New(rand.NewSource(seed ^ int64(w)*104729))
				alloc := m.NewTSAlloc(w)
				for i := 0; i < perWorker; i++ {
					tx := txn.New(uint64(w*perWorker+i) + 1)
					tx.SetTSAlloc(alloc)
					for {
						if !cfg.DynamicTS && !tx.HasTS() {
							m.AssignTS(tx)
						}
						r, err := m.Acquire(tx, SH, e)
						if err != nil {
							tx.FinishAbort()
							tx.Reset()
							continue
						}
						seen := binary.LittleEndian.Uint64(r.Data)
						if err := m.Upgrade(r); err != nil {
							m.Release(r, true)
							tx.FinishAbort()
							tx.Reset()
							time.Sleep(time.Duration(wrng.Intn(50)) * time.Microsecond)
							continue
						}
						binary.LittleEndian.PutUint64(r.Data, seen+1)
						if cfg.Variant == Bamboo {
							m.Retire(r)
						}
						ok := true
						for it := 0; ; it++ {
							if tx.Aborting() {
								ok = false
								break
							}
							if tx.Sem() == 0 {
								break
							}
							Backoff(it)
						}
						if ok && tx.BeginCommit() {
							m.Release(r, false)
							tx.FinishCommit()
							commits[w]++
							break
						}
						m.Release(r, true)
						tx.FinishAbort()
						tx.Reset()
						time.Sleep(time.Duration(wrng.Intn(50)) * time.Microsecond)
					}
				}
			}(w)
		}
		wg.Wait()

		var total uint64
		for _, c := range commits {
			total += c
		}
		if want := uint64(workers * perWorker); total != want {
			t.Logf("seed %d: commits = %d, want %d", seed, total, want)
			return false
		}
		if got := binary.LittleEndian.Uint64(e.CurrentData()); got != total {
			t.Logf("seed %d: counter = %d, committed = %d (lost update through an upgrade)",
				seed, got, total)
			return false
		}
		if err := e.CheckInvariants(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if ret, own, wait := e.Snapshot(); ret+own+wait != 0 {
			t.Logf("seed %d: entry not drained: %d/%d/%d", seed, ret, own, wait)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}
