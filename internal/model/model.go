// Package model implements the analytical throughput model of the paper's
// §4.2, which predicts when Bamboo's reduction in lock-wait time outweighs
// the cost of cascading aborts.
//
// With K lock requests per transaction, N concurrent transactions, D data
// items and t the time between lock requests, throughput is proportional
// to
//
//	N/((K+1)·t) · (1 − A·P_conflict − B·P_abort)
//
// where A is the waiting fraction given a conflict and B the fraction of
// time spent on aborted execution. The paper approximates
//
//	P_conflict ≈ N·K²/(2D)
//	P_deadlock ≈ N·K⁴/(4D²)
//	A_ww ≈ 1/2            (wait half the transaction)
//	A_bb ≈ 1/(K+1)        (wait one access)
//	P_cas_abort ≤ N·P_conflict·P_deadlock
//
// and Bamboo wins when (A_ww − A_bb)·P_conflict > B·P_cas_abort, which
// reduces to N²K⁴/(2D²) < (K−1)/(K+1).
package model

import "math"

// Params are the model inputs.
type Params struct {
	K int     // lock requests per transaction
	N int     // concurrent transactions
	D float64 // data items
}

// PConflict returns the probability a transaction encounters a conflict
// during its lifetime, ≈ N·K²/(2D).
func (p Params) PConflict() float64 {
	v := float64(p.N) * float64(p.K) * float64(p.K) / (2 * p.D)
	return math.Min(v, 1)
}

// PDeadlock returns the deadlock probability ≈ N·K⁴/(4D²).
func (p Params) PDeadlock() float64 {
	k := float64(p.K)
	v := float64(p.N) * k * k * k * k / (4 * p.D * p.D)
	return math.Min(v, 1)
}

// PCascade bounds the probability of a cascading abort:
// N·P_conflict·P_deadlock.
func (p Params) PCascade() float64 {
	return math.Min(float64(p.N)*p.PConflict()*p.PDeadlock(), 1)
}

// AWoundWait is the waiting fraction under Wound-Wait given a conflict
// (half the transaction on average).
func (p Params) AWoundWait() float64 { return 0.5 }

// ABamboo is the waiting fraction under Bamboo given a conflict (one
// access out of K+1).
func (p Params) ABamboo() float64 { return 1 / float64(p.K+1) }

// WaitSavings is the modeled reduction in waiting:
// (A_ww − A_bb)·P_conflict.
func (p Params) WaitSavings() float64 {
	return (p.AWoundWait() - p.ABamboo()) * p.PConflict()
}

// CascadeCost is the modeled upper bound on added abort time, with B
// bounded by 1: P_cas_abort.
func (p Params) CascadeCost() float64 { return p.PCascade() }

// Gain is WaitSavings − CascadeCost: the modeled net advantage of Bamboo
// over Wound-Wait as a fraction of execution time (≥ 0 means Bamboo
// wins).
func (p Params) Gain() float64 { return p.WaitSavings() - p.CascadeCost() }

// BambooWins evaluates the closed-form condition N²K⁴/(2D²) < (K−1)/(K+1).
func (p Params) BambooWins() bool {
	k := float64(p.K)
	n := float64(p.N)
	lhs := n * n * k * k * k * k / (2 * p.D * p.D)
	rhs := (k - 1) / (k + 1)
	return lhs < rhs
}

// SpeedupUpperBound is the idealized Bamboo-over-2PL speedup for a
// workload whose only contention is one hotspot at position pos in [0,1]
// of a K-op transaction: 2PL serializes transactions for the lock-hold
// duration (1−pos)·K+1 ops, Bamboo for ~1 op. Used to sanity-check the
// shapes of Figures 3a/3b.
func SpeedupUpperBound(k int, pos float64) float64 {
	hold := (1-pos)*float64(k) + 1
	return hold
}
