package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperExampleGainPositive(t *testing.T) {
	// "For most databases, the data size D is orders of magnitude larger
	// than N and K; so the equation will hold."
	p := Params{K: 16, N: 32, D: 1e7}
	if !p.BambooWins() {
		t.Fatal("model: Bamboo should win at database scale")
	}
	if p.Gain() <= 0 {
		t.Fatalf("gain = %f, want positive", p.Gain())
	}
}

func TestTinyDatabaseFavorsWoundWait(t *testing.T) {
	// With D comparable to N·K², deadlocks (and thus cascades) dominate.
	p := Params{K: 16, N: 64, D: 100}
	if p.BambooWins() {
		t.Fatal("model: Bamboo should not win when D is tiny")
	}
}

func TestProbabilitiesBounded(t *testing.T) {
	f := func(k, n uint8, d uint16) bool {
		p := Params{K: int(k%32) + 1, N: int(n%128) + 1, D: float64(d) + 1}
		for _, v := range []float64{p.PConflict(), p.PDeadlock(), p.PCascade()} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGainMonotoneInD(t *testing.T) {
	// More data items → less contention for the same N, K, but the gain
	// (a fraction of the *conflict* cost recovered) shrinks toward zero
	// from above once Bamboo wins; verify no sign flip back to negative.
	prevWin := false
	for _, d := range []float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7} {
		p := Params{K: 16, N: 32, D: d}
		win := p.Gain() > 0
		if prevWin && !win {
			t.Fatalf("gain flipped back negative at D=%g", d)
		}
		prevWin = win
	}
	if !prevWin {
		t.Fatal("Bamboo never wins even at large D")
	}
}

func TestWaitSavingsGrowWithK(t *testing.T) {
	// Longer transactions → larger A_ww − A_bb → more benefit (Fig 3a's
	// "greater speedup for longer transactions").
	g4 := Params{K: 4, N: 16, D: 1e6}.WaitSavings()
	g16 := Params{K: 16, N: 16, D: 1e6}.WaitSavings()
	g64 := Params{K: 64, N: 16, D: 1e6}.WaitSavings()
	if !(g4 < g16 && g16 < g64) {
		t.Fatalf("savings not monotone in K: %g %g %g", g4, g16, g64)
	}
}

func TestSpeedupUpperBoundShape(t *testing.T) {
	// Earlier hotspots give larger idealized speedups (Fig 3b's shape).
	prev := math.Inf(1)
	for _, pos := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		s := SpeedupUpperBound(16, pos)
		if s > prev {
			t.Fatalf("speedup bound not decreasing in position: %f at %f", s, pos)
		}
		prev = s
	}
	if SpeedupUpperBound(16, 0) != 17 {
		t.Fatalf("bound at pos 0 = %f, want 17", SpeedupUpperBound(16, 0))
	}
}
