// Package occ implements the Silo optimistic concurrency control protocol
// (Tu et al., "Speedy Transactions in Multicore In-Memory Databases",
// SOSP 2013), the OCC baseline the paper evaluates against (SILO in
// §5.1).
//
// Each row carries a TID word (lock bit + version). Reads are latch-free:
// a reader samples the TID, grabs the atomically-published image pointer,
// and re-samples the TID. Writes are buffered. At commit the write set is
// locked in a global (address) order, the read set is validated, a commit
// TID greater than every observed TID is chosen, and the new images are
// published with the TID store that also releases the locks. Epochs
// advance on a timer and form the TID high bits, as in the original.
package occ

import (
	"bytes"
	"sort"
	"sync/atomic"
	"time"
	"unsafe"

	"bamboo/internal/core"
	"bamboo/internal/lock"
	"bamboo/internal/stats"
	"bamboo/internal/storage"
	"bamboo/internal/txn"
	"bamboo/internal/wal"
)

const (
	lockBit    = uint64(1) << 63
	epochShift = 40
)

// Engine is the Silo engine. It implements core.Engine.
type Engine struct {
	db    *core.DB
	epoch atomic.Uint64
	stop  chan struct{}
}

// New wraps db in a Silo engine and starts the epoch advancer. Call Close
// when done (tests); leaking the goroutine for process-lifetime engines is
// also fine.
func New(db *core.DB) *Engine {
	e := &Engine{db: db, stop: make(chan struct{})}
	e.epoch.Store(1)
	go func() {
		t := time.NewTicker(10 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				e.epoch.Add(1)
			case <-e.stop:
				return
			}
		}
	}()
	return e
}

// Close stops the epoch advancer.
func (e *Engine) Close() { close(e.stop) }

// Name implements core.Engine.
func (e *Engine) Name() string { return "SILO" }

// Database implements core.Engine.
func (e *Engine) Database() *core.DB { return e.db }

// NewSession implements core.Engine.
func (e *Engine) NewSession(worker int, col *stats.Collector) core.Session {
	col.AttachLive(e.db.LiveStats())
	return &session{e: e, worker: worker, col: col}
}

type session struct {
	e       *Engine
	worker  int
	col     *stats.Collector
	lastTID uint64
}

type readEnt struct {
	row *storage.Row
	tid uint64
	img []byte
}

type writeEnt struct {
	row  *storage.Row
	tid  uint64 // tid observed when the base image was taken
	base []byte
	img  []byte
}

type siloTx struct {
	s      *session
	id     uint64
	reads  []readEnt
	writes []writeEnt
	byRow  map[*storage.Row]int // index+1 into writes; negative-1 none
	rbyRow map[*storage.Row]int
	insrts []insertEnt
}

type insertEnt struct {
	tbl *storage.Table
	key uint64
	img []byte
}

// image returns the row's current OCC image pointer, lazily adopting the
// loader-installed Entry image on first access.
func image(row *storage.Row) *[]byte {
	if p := row.OCCImage.Load(); p != nil {
		return p
	}
	d := row.Entry.CurrentData()
	row.OCCImage.CompareAndSwap(nil, &d)
	return row.OCCImage.Load()
}

// readStable samples a consistent (tid, image) pair.
//
// The sampled image reference outlives the seqlock window: read-set
// entries hold it until validation and write-set entries clone from it,
// with no lifetime tracking the installer could consult. Silo therefore
// opts out of the lock engine's image-recycling protocol — its commit
// path publishes freshly cloned images (below) and never recycles a
// superseded one, so a reference sampled here stays immutable forever.
func readStable(row *storage.Row) (uint64, []byte) {
	for i := 0; ; i++ {
		t1 := row.TID.Load()
		if t1&lockBit == 0 {
			img := *image(row)
			if row.TID.Load() == t1 {
				return t1, img
			}
		}
		lock.Backoff(i)
	}
}

// ID implements core.Tx.
func (tx *siloTx) ID() uint64 { return tx.id }

// Worker implements core.Tx.
func (tx *siloTx) Worker() int { return tx.s.worker }

// DeclareOps implements core.Tx (no-op for OCC).
func (tx *siloTx) DeclareOps(int) {}

// Read implements core.Tx.
func (tx *siloTx) Read(row *storage.Row) ([]byte, error) {
	if i, ok := tx.byRow[row]; ok {
		return tx.writes[i].img, nil
	}
	if i, ok := tx.rbyRow[row]; ok {
		return tx.reads[i].img, nil
	}
	tid, img := readStable(row)
	if tx.rbyRow == nil {
		tx.rbyRow = make(map[*storage.Row]int, 16)
	}
	tx.rbyRow[row] = len(tx.reads)
	tx.reads = append(tx.reads, readEnt{row: row, tid: tid, img: img})
	return img, nil
}

// Update implements core.Tx.
func (tx *siloTx) Update(row *storage.Row, mutate func(img []byte)) error {
	if i, ok := tx.byRow[row]; ok {
		mutate(tx.writes[i].img)
		return nil
	}
	if _, ok := tx.rbyRow[row]; ok {
		// Upgrade is trivially safe under OCC (the read stays in the read
		// set and is validated), but keep parity with the lock engine's
		// declared-mode discipline: promote the read entry to a write.
		i := tx.rbyRow[row]
		ent := tx.reads[i]
		// Private clones, deliberately not the lock engine's pooled
		// takeBuf copies: latch-free readers (readStable) may still hold
		// the base image, so no buffer here is ever provably unreferenced.
		w := writeEnt{row: row, tid: ent.tid, base: ent.img, img: bytes.Clone(ent.img)}
		if tx.byRow == nil {
			tx.byRow = make(map[*storage.Row]int, 8)
		}
		tx.byRow[row] = len(tx.writes)
		tx.writes = append(tx.writes, w)
		mutate(tx.writes[len(tx.writes)-1].img)
		return nil
	}
	tid, img := readStable(row)
	w := writeEnt{row: row, tid: tid, base: img, img: bytes.Clone(img)}
	if tx.byRow == nil {
		tx.byRow = make(map[*storage.Row]int, 8)
	}
	tx.byRow[row] = len(tx.writes)
	tx.writes = append(tx.writes, w)
	mutate(tx.writes[len(tx.writes)-1].img)
	return nil
}

// Insert implements core.Tx.
func (tx *siloTx) Insert(tbl *storage.Table, key uint64, img []byte) error {
	tx.insrts = append(tx.insrts, insertEnt{tbl: tbl, key: key, img: img})
	return nil
}

// Run implements core.Session.
func (s *session) Run(fn core.TxnFunc) error {
	id := s.e.db.NextTxnID()
	for {
		tx := &siloTx{s: s, id: id}
		start := time.Now()
		err := fn(tx)
		exec := time.Since(start)
		switch {
		case err == nil:
			// fall through to commit
		case err == core.ErrUserAbort:
			s.col.RecordAbort(txn.CauseUser, exec, 0, 0)
			return nil
		default:
			return err
		}

		vStart := time.Now()
		ok := s.commit(tx)
		vTime := time.Since(vStart)
		if ok {
			s.col.RecordCommit(exec, 0, vTime)
			return nil
		}
		s.col.RecordAbort(txn.CauseValidation, exec, 0, vTime)
	}
}

// commit runs Silo's commit protocol, returning false on validation
// failure (the attempt aborts and the caller retries).
func (s *session) commit(tx *siloTx) bool {
	// Phase 1: lock the write set in a global order.
	sort.Slice(tx.writes, func(i, j int) bool {
		return rowAddr(tx.writes[i].row) < rowAddr(tx.writes[j].row)
	})
	locked := 0
	for i := range tx.writes {
		row := tx.writes[i].row
		if !lockTID(row) {
			unlockAll(tx.writes[:locked])
			return false
		}
		locked++
		// Write-write validation: the row changed since we took our base.
		if row.TID.Load()&^lockBit != tx.writes[i].tid {
			unlockAll(tx.writes[:locked])
			return false
		}
	}

	// Phase 2: validate the read set.
	for i := range tx.reads {
		r := &tx.reads[i]
		cur := r.row.TID.Load()
		if cur&^lockBit != r.tid {
			unlockAll(tx.writes[:locked])
			return false
		}
		if cur&lockBit != 0 {
			if _, mine := tx.byRow[r.row]; !mine {
				unlockAll(tx.writes[:locked])
				return false
			}
		}
	}

	// Phase 3: pick the commit TID and install.
	tid := s.lastTID
	for i := range tx.reads {
		if tx.reads[i].tid > tid {
			tid = tx.reads[i].tid
		}
	}
	for i := range tx.writes {
		if tx.writes[i].tid > tid {
			tid = tx.writes[i].tid
		}
	}
	tid++
	if e := s.e.epoch.Load() << epochShift; tid < e {
		tid = e
	}
	s.lastTID = tid

	if rec := tx.commitRecord(); rec != nil {
		if _, err := s.e.db.Log.Commit(rec); err != nil {
			unlockAll(tx.writes[:locked])
			return false
		}
	}
	for _, ins := range tx.insrts {
		row, err := ins.tbl.InsertRow(ins.key, ins.img)
		if err != nil {
			// Duplicate key from a concurrent insert: treat as a
			// validation failure (the paper's workloads use unique keys
			// drawn from locked counters, so this is defensive).
			unlockAll(tx.writes[:locked])
			return false
		}
		img := ins.img
		row.OCCImage.Store(&img)
		row.TID.Store(tid)
	}
	if h := s.e.db.OnCommit(); h != nil {
		h(s.worker, tx.id, tid, tx.accessInfo(), len(tx.insrts))
	}
	for i := range tx.writes {
		w := &tx.writes[i]
		img := w.img
		w.row.OCCImage.Store(&img)
		w.row.TID.Store(tid) // clears the lock bit
	}
	return true
}

func (tx *siloTx) commitRecord() *wal.Record {
	var writes []wal.Write
	for i := range tx.writes {
		w := &tx.writes[i]
		writes = append(writes, wal.Write{
			Table: w.row.Table.Schema.Name, Key: w.row.Key, Image: w.img,
		})
	}
	for _, ins := range tx.insrts {
		writes = append(writes, wal.Write{Table: ins.tbl.Schema.Name, Key: ins.key, Image: ins.img})
	}
	if len(writes) == 0 {
		return nil
	}
	return &wal.Record{TxnID: tx.id, Writes: writes}
}

func (tx *siloTx) accessInfo() []core.AccessInfo {
	out := make([]core.AccessInfo, 0, len(tx.reads)+len(tx.writes))
	for i := range tx.reads {
		r := &tx.reads[i]
		out = append(out, core.AccessInfo{
			Table: r.row.Table.Schema.Name, Key: r.row.Key,
			Mode: lock.SH, Read: r.img,
		})
	}
	for i := range tx.writes {
		w := &tx.writes[i]
		out = append(out, core.AccessInfo{
			Table: w.row.Table.Schema.Name, Key: w.row.Key,
			Mode: lock.EX, Read: w.base, Wrote: w.img,
		})
	}
	return out
}

// rowAddr gives the global lock-acquisition order for write sets: row
// pointer addresses, as in the original Silo.
func rowAddr(r *storage.Row) uintptr { return uintptr(unsafe.Pointer(r)) }

func lockTID(row *storage.Row) bool {
	for i := 0; ; i++ {
		cur := row.TID.Load()
		if cur&lockBit == 0 {
			if row.TID.CompareAndSwap(cur, cur|lockBit) {
				return true
			}
		}
		if i > 1<<20 {
			return false // safety valve; Silo never deadlocks here
		}
		lock.Backoff(i)
	}
}

func unlockAll(ws []writeEnt) {
	for i := range ws {
		row := ws[i].row
		row.TID.Store(row.TID.Load() &^ lockBit)
	}
}
