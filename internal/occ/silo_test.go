package occ_test

import (
	"testing"

	"bamboo/internal/core"
	"bamboo/internal/occ"
	"bamboo/internal/stats"
	"bamboo/internal/verify/verifytest"
)

func newEngine(t *testing.T, captureReads bool) *occ.Engine {
	t.Helper()
	db := core.NewDB(core.Config{CaptureReads: captureReads})
	e := occ.New(db)
	t.Cleanup(e.Close)
	return e
}

func TestSiloSerializability(t *testing.T) {
	verifytest.RunSerializability(t, newEngine(t, true), verifytest.DefaultOptions())
}

func TestSiloSerializabilityHighContention(t *testing.T) {
	opts := verifytest.DefaultOptions()
	opts.Rows = 2
	opts.OpsPerTxn = 2
	opts.WriteRatio = 0.8
	opts.Workers = 12
	opts.PerWorker = 200
	verifytest.RunSerializability(t, newEngine(t, true), opts)
}

func TestSiloBankConservation(t *testing.T) {
	verifytest.RunBankConservation(t, newEngine(t, false), 10, 8, 200)
}

func TestSiloReadOnlyNeedsNoValidationRetry(t *testing.T) {
	e := newEngine(t, false)
	tbl := verifytest.BuildDB(e.Database(), 4)
	res := core.RunN(e, 4, 100, func(worker, seq int) core.TxnFunc {
		return func(tx core.Tx) error {
			for k := uint64(0); k < 4; k++ {
				if _, err := tx.Read(tbl.Get(k)); err != nil {
					return err
				}
			}
			return nil
		}
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Report.Aborts != 0 {
		t.Fatalf("read-only workload aborted %d times", res.Report.Aborts)
	}
}

func TestSiloUserAbort(t *testing.T) {
	e := newEngine(t, false)
	tbl := verifytest.BuildDB(e.Database(), 1)
	res := core.RunN(e, 1, 1, func(_, _ int) core.TxnFunc {
		return func(tx core.Tx) error {
			if err := tx.Update(tbl.Get(0), func(img []byte) {
				tbl.Schema.SetInt64(img, 0, 1)
			}); err != nil {
				return err
			}
			return core.ErrUserAbort
		}
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Report.Commits != 0 || res.Report.Aborts != 1 {
		t.Fatalf("commits=%d aborts=%d, want 0/1", res.Report.Commits, res.Report.Aborts)
	}
	if got := tbl.Schema.GetInt64(tbl.Get(0).Entry.CurrentData(), 0); got != 0 {
		t.Fatalf("aborted write visible: %d", got)
	}
}

func TestSiloInsert(t *testing.T) {
	e := newEngine(t, false)
	tbl := verifytest.BuildDB(e.Database(), 1)
	sess := e.NewSession(0, newCollector())
	img := tbl.Schema.NewRowImage()
	tbl.Schema.SetInt64(img, 1, 7)
	if err := sess.Run(func(tx core.Tx) error { return tx.Insert(tbl, 50, img) }); err != nil {
		t.Fatal(err)
	}
	row := tbl.Get(50)
	if row == nil {
		t.Fatal("insert not visible")
	}
	sess2 := e.NewSession(1, newCollector())
	if err := sess2.Run(func(tx core.Tx) error {
		got, err := tx.Read(row)
		if err != nil {
			return err
		}
		if v := tbl.Schema.GetInt64(got, 1); v != 7 {
			t.Errorf("read inserted value %d, want 7", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSiloUpgradeReadToWrite(t *testing.T) {
	// Unlike the lock engine, Silo supports read-then-update of the same
	// row: the read stays in the read set and is validated.
	e := newEngine(t, false)
	tbl := verifytest.BuildDB(e.Database(), 1)
	sess := e.NewSession(0, newCollector())
	if err := sess.Run(func(tx core.Tx) error {
		if _, err := tx.Read(tbl.Get(0)); err != nil {
			return err
		}
		return tx.Update(tbl.Get(0), func(img []byte) {
			tbl.Schema.SetInt64(img, 1, 5)
		})
	}); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Schema.GetInt64(tbl.Get(0).Entry.CurrentData(), 1); got != 0 {
		// OCC images are published via OCCImage, not Entry.Data.
		t.Fatalf("entry image unexpectedly mutated: %d", got)
	}
	if p := tbl.Get(0).OCCImage.Load(); p == nil || tbl.Schema.GetInt64(*p, 1) != 5 {
		t.Fatal("OCC image not installed")
	}
}

func newCollector() *stats.Collector { return &stats.Collector{} }
