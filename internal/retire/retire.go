// Package retire implements the paper's §3.3: deciding where a
// transaction program can retire its write locks. Transaction programs
// are expressed in a small IR (assignments of pure expressions, keyed
// table accesses, conditionals and fixed-count loops — the shapes of the
// paper's Listings 1 and 3). Analyze performs the control/data-flow
// analysis and synthesizes, for every write access, a retire condition:
//
//   - if the table is never accessed again, retire unconditionally
//     right after the write;
//   - if a later access is guarded or keyed by values computable at the
//     retire point, synthesize "!cond || key1 != key2" (Listing 2) —
//     purity of IR expressions makes the paper's "move the computation
//     to an earlier position" transformation implicit: the interpreter
//     evaluates the needed assignments on demand, which is legal exactly
//     because they are pure and single-assignment;
//   - inside fixed-count loops, apply loop fission (Listing 4): the
//     retire condition for iteration i checks that no later iteration
//     re-touches the same key.
//
// The Interpreter then executes the program against any core.Tx,
// inserting LockRetire calls (via core.Retirer) where the analysis
// decided. Engines without explicit retiring simply ignore them.
package retire

import (
	"fmt"

	"bamboo/internal/core"
	"bamboo/internal/storage"
)

// Env holds the runtime variable bindings of one program execution.
// Variables are single-assignment except loop indexes, which the
// interpreter scopes per iteration.
//
// Env also carries the program's pure assignment definitions: when a
// synthesized retire condition reads a variable whose Assign has not
// executed yet, Get evaluates the definition on demand and memoizes it.
// This realizes the paper's "move the computation on the data-dependency
// path to an earlier position" transformation — legal exactly because IR
// expressions are pure and single-assignment.
type Env struct {
	vars map[string]int64
	defs map[string]Expr
}

// NewEnv creates an environment from the transaction inputs.
func NewEnv(inputs map[string]int64) *Env {
	vars := make(map[string]int64, len(inputs)+8)
	for k, v := range inputs {
		vars[k] = v
	}
	return &Env{vars: vars}
}

// Get returns a variable, lazily evaluating its pure definition if the
// assignment has not executed yet; unbound names without definitions
// panic (an analysis bug).
func (e *Env) Get(name string) int64 {
	if v, ok := e.vars[name]; ok {
		return v
	}
	if def, ok := e.defs[name]; ok {
		v := def.Eval(e)
		e.vars[name] = v
		return v
	}
	panic(fmt.Sprintf("retire: unbound variable %q", name))
}

func (e *Env) set(name string, v int64) { e.vars[name] = v }

// Expr is a pure expression over environment variables.
type Expr struct {
	// Deps are the variables the expression reads (for the analysis).
	Deps []string
	// Eval computes the value. Must be pure.
	Eval func(env *Env) int64
}

// Var references a variable.
func Var(name string) Expr {
	return Expr{Deps: []string{name}, Eval: func(e *Env) int64 { return e.Get(name) }}
}

// Const is a constant expression.
func Const(v int64) Expr {
	return Expr{Eval: func(*Env) int64 { return v }}
}

// Fn builds an expression from named dependencies.
func Fn(deps []string, f func(vals ...int64) int64) Expr {
	return Expr{Deps: deps, Eval: func(e *Env) int64 {
		vals := make([]int64, len(deps))
		for i, d := range deps {
			vals[i] = e.Get(d)
		}
		return f(vals...)
	}}
}

// Stmt is a program statement.
type Stmt interface{ isStmt() }

// Assign binds Var to the value of Expr (single assignment).
type Assign struct {
	Var  string
	Expr Expr
}

func (Assign) isStmt() {}

// Access reads or writes one tuple of Table, keyed by Key.
type Access struct {
	// Name labels the access for plans and tests (e.g. "op1").
	Name  string
	Table *storage.Table
	Key   Expr
	Write bool
	// Mutate is applied to the row image for writes (nil reads).
	Mutate func(img []byte, env *Env)
}

func (*Access) isStmt() {}

// If executes Then when Cond evaluates non-zero.
type If struct {
	Cond Expr
	Then []Stmt
}

func (If) isStmt() {}

// For executes Body Count times with Idx bound to 0..Count-1. Count must
// not change inside the loop (the paper's fixed-count restriction; other
// loop forms do not retire inside the loop).
type For struct {
	Idx   string
	Count Expr
	Body  []Stmt
}

func (For) isStmt() {}

// Program is a transaction program.
type Program struct {
	Stmts []Stmt
}

// Plan is the analysis result: for every write access, its retire rule.
type Plan struct {
	// rules[accessName] decides, given the environment and (for loop
	// accesses) the current index, whether the lock may retire right
	// after the write.
	rules map[string]retireRule
}

type retireRule struct {
	// always retires unconditionally.
	always bool
	// cond, when non-nil, must evaluate true to retire (synthesized
	// "!guard || keys differ" conjunction).
	cond func(env *Env) bool
	// explain describes the synthesized condition for tests/logging.
	explain string
}

// Rule reports the retire decision string for an access ("always",
// "never", or the synthesized condition description).
func (p *Plan) Rule(access string) string {
	r, ok := p.rules[access]
	switch {
	case !ok:
		return "never"
	case r.always:
		return "always"
	default:
		return r.explain
	}
}

// accessSite is one access with its static context.
type accessSite struct {
	acc    *Access
	guards []Expr // enclosing If conditions
	loop   *For   // innermost loop, if any
}

// Analyze synthesizes retire conditions for every write access of prog.
func Analyze(prog *Program) *Plan {
	var sites []accessSite
	var collect func(stmts []Stmt, guards []Expr, loop *For)
	collect = func(stmts []Stmt, guards []Expr, loop *For) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *Access:
				sites = append(sites, accessSite{acc: s, guards: guards, loop: loop})
			case If:
				collect(s.Then, append(append([]Expr(nil), guards...), s.Cond), loop)
			case For:
				f := s
				collect(s.Body, guards, &f)
			}
		}
	}
	collect(prog.Stmts, nil, nil)

	plan := &Plan{rules: make(map[string]retireRule)}
	for i, site := range sites {
		if !site.acc.Write {
			continue // reads retire automatically (Optimization 1)
		}
		later := sites[i+1:]
		rule := synthesize(site, later)
		plan.rules[site.acc.Name] = rule
	}
	return plan
}

// synthesize builds the retire rule for one write site given the sites
// that execute after it.
func synthesize(site accessSite, later []accessSite) retireRule {
	var conds []func(env *Env) bool
	explain := ""

	// Future iterations of the site's own loop re-execute the access:
	// loop fission (Listing 4) — retire iteration i only if no later
	// iteration uses the same key.
	if site.loop != nil {
		loop := site.loop
		key := site.acc.Key
		conds = append(conds, func(env *Env) bool {
			i := env.Get(loop.Idx)
			n := loop.Count.Eval(env)
			mine := key.Eval(env)
			for j := i + 1; j < n; j++ {
				env.set(loop.Idx, j)
				other := key.Eval(env)
				env.set(loop.Idx, i)
				if other == mine {
					return false
				}
			}
			return true
		})
		explain = appendExplain(explain, "no later iteration reuses the key")
	}

	for _, l := range later {
		if l.acc.Table != site.acc.Table {
			continue
		}
		l := l
		if l.loop != nil && l.loop == site.loop {
			continue // same-loop future iterations already handled
		}
		key1 := site.acc.Key
		key2 := l.acc.Key
		guards := l.guards
		if l.loop != nil {
			// A later loop may touch the tuple in any iteration.
			loop := l.loop
			conds = append(conds, func(env *Env) bool {
				mine := key1.Eval(env)
				n := loop.Count.Eval(env)
				old, had := env.vars[loop.Idx]
				for j := int64(0); j < n; j++ {
					env.set(loop.Idx, j)
					same := key2.Eval(env) == mine && guardsHold(guards, env)
					if same {
						restoreIdx(env, loop.Idx, old, had)
						return false
					}
				}
				restoreIdx(env, loop.Idx, old, had)
				return true
			})
			explain = appendExplain(explain, fmt.Sprintf("no iteration of a later loop touches %s's key", site.acc.Name))
			continue
		}
		conds = append(conds, func(env *Env) bool {
			// !cond || keys differ (Listing 2).
			if !guardsHold(guards, env) {
				return true
			}
			return key2.Eval(env) != key1.Eval(env)
		})
		explain = appendExplain(explain, fmt.Sprintf("!guard(%s) || key(%s) != key(%s)", l.acc.Name, l.acc.Name, site.acc.Name))
	}

	if len(conds) == 0 {
		return retireRule{always: true, explain: "always"}
	}
	return retireRule{
		cond: func(env *Env) bool {
			for _, c := range conds {
				if !c(env) {
					return false
				}
			}
			return true
		},
		explain: explain,
	}
}

func guardsHold(guards []Expr, env *Env) bool {
	for _, g := range guards {
		if g.Eval(env) == 0 {
			return false
		}
	}
	return true
}

func restoreIdx(env *Env, idx string, old int64, had bool) {
	if had {
		env.set(idx, old)
	} else {
		delete(env.vars, idx)
	}
}

func appendExplain(cur, add string) string {
	if cur == "" {
		return add
	}
	return cur + " && " + add
}

// Interpreter executes analyzed programs against a transaction.
type Interpreter struct {
	prog *Program
	plan *Plan
}

// NewInterpreter pairs a program with its analysis.
func NewInterpreter(prog *Program, plan *Plan) *Interpreter {
	return &Interpreter{prog: prog, plan: plan}
}

// Run executes the program as one transaction body with the given
// inputs, retiring write locks at the synthesized points.
func (in *Interpreter) Run(tx core.Tx, inputs map[string]int64) error {
	env := NewEnv(inputs)
	env.defs = collectDefs(in.prog.Stmts)
	retirer, _ := tx.(core.Retirer)
	return in.exec(tx, retirer, env, in.prog.Stmts)
}

// collectDefs gathers the pure assignment definitions reachable outside
// loop bodies (loop-body assignments depend on the index and are
// evaluated in place).
func collectDefs(stmts []Stmt) map[string]Expr {
	defs := make(map[string]Expr)
	var walk func([]Stmt)
	walk = func(stmts []Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case Assign:
				defs[s.Var] = s.Expr
			case If:
				walk(s.Then)
			}
		}
	}
	walk(stmts)
	return defs
}

func (in *Interpreter) exec(tx core.Tx, retirer core.Retirer, env *Env, stmts []Stmt) error {
	for _, s := range stmts {
		switch s := s.(type) {
		case Assign:
			env.set(s.Var, s.Expr.Eval(env))
		case *Access:
			if err := in.access(tx, retirer, env, s); err != nil {
				return err
			}
		case If:
			if s.Cond.Eval(env) != 0 {
				if err := in.exec(tx, retirer, env, s.Then); err != nil {
					return err
				}
			}
		case For:
			n := s.Count.Eval(env)
			for i := int64(0); i < n; i++ {
				env.set(s.Idx, i)
				if err := in.exec(tx, retirer, env, s.Body); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("retire: unknown statement %T", s)
		}
	}
	return nil
}

func (in *Interpreter) access(tx core.Tx, retirer core.Retirer, env *Env, a *Access) error {
	row := a.Table.Get(uint64(a.Key.Eval(env)))
	if row == nil {
		return fmt.Errorf("retire: access %s: no row for key %d", a.Name, a.Key.Eval(env))
	}
	if !a.Write {
		_, err := tx.Read(row)
		return err
	}
	err := tx.Update(row, func(img []byte) {
		if a.Mutate != nil {
			a.Mutate(img, env)
		}
	})
	if err != nil {
		return err
	}
	if rule, ok := in.plan.rules[a.Name]; ok && retirer != nil {
		if rule.always || (rule.cond != nil && rule.cond(env)) {
			retirer.RetireRow(row)
		}
	}
	return nil
}
