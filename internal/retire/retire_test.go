package retire_test

import (
	"strings"
	"testing"

	"bamboo/internal/core"
	"bamboo/internal/retire"
	"bamboo/internal/stats"
	"bamboo/internal/storage"
)

func buildTable(db *core.DB, name string, rows int) *storage.Table {
	schema := storage.NewSchema(name,
		storage.Column{Name: "v", Type: storage.ColInt64})
	tbl := db.Catalog.MustCreateTable(schema, rows)
	for k := 0; k < rows; k++ {
		tbl.MustInsertRow(uint64(k), nil)
	}
	return tbl
}

func manualDB() *core.DB {
	cfg := core.Bamboo()
	cfg.ManualRetire = true
	return core.NewDB(cfg)
}

func incr(tbl *storage.Table) func(img []byte, env *retire.Env) {
	return func(img []byte, _ *retire.Env) { tbl.Schema.AddInt64(img, 0, 1) }
}

// TestListing1and2 reproduces the paper's Listings 1–2: op1 writes tup1 of
// table1; op2 may later write tup2 of the same table, guarded by cond.
// The synthesized retire condition is "!cond || tup1.key != tup2.key".
func TestListing1and2(t *testing.T) {
	db := manualDB()
	tbl := buildTable(db, "table1", 16)

	prog := &retire.Program{Stmts: []retire.Stmt{
		&retire.Access{Name: "op1", Table: tbl, Key: retire.Var("k1"), Write: true, Mutate: incr(tbl)},
		retire.Assign{Var: "k2", Expr: retire.Fn([]string{"input"}, func(v ...int64) int64 { return v[0] % 16 })},
		retire.If{Cond: retire.Var("cond"), Then: []retire.Stmt{
			&retire.Access{Name: "op2", Table: tbl, Key: retire.Var("k2"), Write: true, Mutate: incr(tbl)},
		}},
	}}
	plan := retire.Analyze(prog)
	if rule := plan.Rule("op1"); !strings.Contains(rule, "key(op2) != key(op1)") {
		t.Fatalf("op1 rule = %q, want synthesized key comparison", rule)
	}
	if rule := plan.Rule("op2"); rule != "always" {
		t.Fatalf("op2 rule = %q, want always (last access of the table)", rule)
	}

	in := retire.NewInterpreter(prog, plan)
	sess := core.NewLockEngine(db).NewSession(0, newCollector())

	// cond true, same key: op1 must NOT retire early (2nd write would hit
	// a retired lock); the interpreter must still execute correctly.
	if err := sess.Run(func(tx core.Tx) error {
		return in.Run(tx, map[string]int64{"k1": 3, "input": 3, "cond": 1})
	}); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Schema.GetInt64(tbl.Get(3).Entry.CurrentData(), 0); got != 2 {
		t.Fatalf("row 3 = %d, want 2 (both writes)", got)
	}

	// cond true, different keys: retire fires, both rows written once.
	if err := sess.Run(func(tx core.Tx) error {
		return in.Run(tx, map[string]int64{"k1": 4, "input": 5, "cond": 1})
	}); err != nil {
		t.Fatal(err)
	}
	if tbl.Schema.GetInt64(tbl.Get(4).Entry.CurrentData(), 0) != 1 ||
		tbl.Schema.GetInt64(tbl.Get(5).Entry.CurrentData(), 0) != 1 {
		t.Fatal("different-key case wrong")
	}

	// cond false: retire fires; op2 not executed.
	if err := sess.Run(func(tx core.Tx) error {
		return in.Run(tx, map[string]int64{"k1": 6, "input": 6, "cond": 0})
	}); err != nil {
		t.Fatal(err)
	}
	if tbl.Schema.GetInt64(tbl.Get(6).Entry.CurrentData(), 0) != 1 {
		t.Fatal("cond-false case wrong")
	}
}

// TestListing3and4 reproduces the loop-fission example: a fixed-count
// loop writing key[i] = f(input2[i]) retires iteration i's lock only when
// no later iteration reuses the key.
func TestListing3and4(t *testing.T) {
	db := manualDB()
	tbl := buildTable(db, "table", 16)

	// key(i) = input2_i (inputs passed as input2_0..input2_n-1).
	keyExpr := retire.Expr{
		Deps: []string{"i"},
		Eval: func(env *retire.Env) int64 {
			return env.Get("input2_" + itoa(env.Get("i")))
		},
	}
	prog := &retire.Program{Stmts: []retire.Stmt{
		retire.For{Idx: "i", Count: retire.Var("input1"), Body: []retire.Stmt{
			&retire.Access{Name: "loopw", Table: tbl, Key: keyExpr, Write: true, Mutate: incr(tbl)},
		}},
	}}
	plan := retire.Analyze(prog)
	if rule := plan.Rule("loopw"); !strings.Contains(rule, "later iteration") {
		t.Fatalf("loop rule = %q", rule)
	}

	in := retire.NewInterpreter(prog, plan)
	sess := core.NewLockEngine(db).NewSession(0, newCollector())

	// Keys 7, 9, 7: iteration 0 must NOT retire (key 7 reused at i=2);
	// iterations 1 and 2 retire. The repeated write works because the
	// lock stays unretired.
	err := sess.Run(func(tx core.Tx) error {
		return in.Run(tx, map[string]int64{
			"input1": 3, "input2_0": 7, "input2_1": 9, "input2_2": 7,
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Schema.GetInt64(tbl.Get(7).Entry.CurrentData(), 0); got != 2 {
		t.Fatalf("row 7 = %d, want 2", got)
	}
	if got := tbl.Schema.GetInt64(tbl.Get(9).Entry.CurrentData(), 0); got != 1 {
		t.Fatalf("row 9 = %d, want 1", got)
	}
}

// TestLastTableAccessRetiresAlways checks the simple case: a write to a
// table never touched again retires unconditionally.
func TestLastTableAccessRetiresAlways(t *testing.T) {
	db := manualDB()
	t1 := buildTable(db, "t1", 4)
	t2 := buildTable(db, "t2", 4)
	prog := &retire.Program{Stmts: []retire.Stmt{
		&retire.Access{Name: "w1", Table: t1, Key: retire.Const(0), Write: true, Mutate: incr(t1)},
		&retire.Access{Name: "w2", Table: t2, Key: retire.Const(1), Write: true, Mutate: incr(t2)},
		&retire.Access{Name: "r1", Table: t2, Key: retire.Const(2)},
	}}
	plan := retire.Analyze(prog)
	if plan.Rule("w1") != "always" {
		t.Fatalf("w1 = %q", plan.Rule("w1"))
	}
	// w2's table is read again later (reads of the same tuple would be
	// fine, but the key differs only at runtime): condition synthesized.
	if plan.Rule("w2") == "always" || plan.Rule("w2") == "never" {
		t.Fatalf("w2 = %q, want synthesized condition", plan.Rule("w2"))
	}
	in := retire.NewInterpreter(prog, plan)
	sess := core.NewLockEngine(db).NewSession(0, newCollector())
	if err := sess.Run(func(tx core.Tx) error { return in.Run(tx, nil) }); err != nil {
		t.Fatal(err)
	}
}

// TestRetireVisibleToConcurrentReader is the end-to-end §3.3 story: with
// the synthesized retire point, a concurrent transaction can read the
// dirty value before the writer commits.
func TestRetireVisibleToConcurrentReader(t *testing.T) {
	db := manualDB()
	tbl := buildTable(db, "hot", 4)
	prog := &retire.Program{Stmts: []retire.Stmt{
		&retire.Access{Name: "w", Table: tbl, Key: retire.Const(0), Write: true, Mutate: incr(tbl)},
	}}
	plan := retire.Analyze(prog)
	in := retire.NewInterpreter(prog, plan)

	e := core.NewLockEngine(db)
	writerDone := make(chan struct{})
	readerSaw := make(chan int64)
	go func() {
		sess := e.NewSession(0, newCollector())
		_ = sess.Run(func(tx core.Tx) error {
			if err := in.Run(tx, nil); err != nil {
				return err
			}
			// Lock retired: a concurrent reader sees the dirty value now,
			// before this transaction commits.
			go func() {
				sess2 := e.NewSession(1, newCollector())
				_ = sess2.Run(func(tx2 core.Tx) error {
					img, err := tx2.Read(tbl.Get(0))
					if err != nil {
						return err
					}
					readerSaw <- tbl.Schema.GetInt64(img, 0)
					return nil
				})
			}()
			if got := <-readerSaw; got != 1 {
				t.Errorf("concurrent reader saw %d, want dirty 1", got)
			}
			return nil
		})
		close(writerDone)
	}()
	<-writerDone
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

func newCollector() *stats.Collector { return &stats.Collector{} }

// TestReadThenWriteUpgradesInPlace covers the IR shape the executor used
// to hard-reject: a program that reads a tuple and later writes the same
// tuple. The write access now upgrades the SH lock in place and the
// synthesized retire point still applies to the upgraded lock.
func TestReadThenWriteUpgradesInPlace(t *testing.T) {
	db := manualDB()
	tbl := buildTable(db, "rmw", 8)

	prog := &retire.Program{Stmts: []retire.Stmt{
		&retire.Access{Name: "rd", Table: tbl, Key: retire.Var("k"), Write: false},
		&retire.Access{Name: "wr", Table: tbl, Key: retire.Var("k"), Write: true, Mutate: incr(tbl)},
	}}
	plan := retire.Analyze(prog)
	// The write is the table's last access: it retires unconditionally.
	if rule := plan.Rule("wr"); rule != "always" {
		t.Fatalf("wr rule = %q, want always", rule)
	}
	in := retire.NewInterpreter(prog, plan)

	e := core.NewLockEngine(db)
	sess := e.NewSession(0, newCollector())
	for k := int64(0); k < 4; k++ {
		if err := sess.Run(func(tx core.Tx) error {
			return in.Run(tx, map[string]int64{"k": k})
		}); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
	for k := int64(0); k < 4; k++ {
		if got := tbl.Schema.GetInt64(tbl.Get(uint64(k)).Entry.CurrentData(), 0); got != 1 {
			t.Fatalf("row %d = %d, want 1", k, got)
		}
	}
}
