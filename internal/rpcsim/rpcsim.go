// Package rpcsim implements the paper's interactive execution mode
// (§5.1): transaction logic runs on a client that issues one request per
// database operation — get_row(), update_row(), commit() — to the DB
// server, paying a network round trip each time. The paper uses gRPC
// between CloudLab machines; here the transport is an in-process wrapper
// that charges a configurable round-trip latency per call, preserving the
// cost model that makes interactive mode interesting: per-operation
// stalls lengthen lock hold times, and aborts waste whole chains of round
// trips.
//
// The wrapper composes with any core.Engine (the lock engines and Silo),
// so the interactive columns of Figures 8–10 run the same code as the
// stored-procedure columns plus latency.
//
// In interactive mode Bamboo cannot know a transaction's access list up
// front, so the server retires every write immediately (the paper treats
// every update_row as the last write); this falls out naturally because
// DeclareOps is never called.
package rpcsim

import (
	"runtime"
	"time"

	"bamboo/internal/core"
	"bamboo/internal/stats"
	"bamboo/internal/storage"
)

// Config tunes the simulated network.
type Config struct {
	// RTT is the round-trip latency charged per database call. The paper
	// measured gRPC on a LAN; 100µs is in that range.
	RTT time.Duration
	// CommitRTT is charged for the final commit (or abort) call; defaults
	// to RTT when zero.
	CommitRTT time.Duration
}

// DefaultConfig charges 100µs per operation.
func DefaultConfig() Config { return Config{RTT: 100 * time.Microsecond} }

// Engine wraps an inner engine with per-operation latency. It implements
// core.Engine.
type Engine struct {
	inner core.Engine
	cfg   Config
}

// New wraps inner.
func New(inner core.Engine, cfg Config) *Engine {
	if cfg.RTT <= 0 {
		cfg = DefaultConfig()
	}
	if cfg.CommitRTT <= 0 {
		cfg.CommitRTT = cfg.RTT
	}
	return &Engine{inner: inner, cfg: cfg}
}

// Name implements core.Engine.
func (e *Engine) Name() string { return e.inner.Name() + "/interactive" }

// Database implements core.Engine.
func (e *Engine) Database() *core.DB { return e.inner.Database() }

// NewSession implements core.Engine.
func (e *Engine) NewSession(worker int, col *stats.Collector) core.Session {
	return &session{inner: e.inner.NewSession(worker, col), cfg: e.cfg}
}

type session struct {
	inner core.Session
	cfg   Config
}

// Run implements core.Session: it wraps the transaction body so every Tx
// operation sleeps one round trip before reaching the real engine, and
// each attempt pays begin and commit round trips.
func (s *session) Run(fn core.TxnFunc) error {
	return s.inner.Run(func(tx core.Tx) error {
		sleep(s.cfg.RTT) // begin request
		err := fn(&latencyTx{Tx: tx, rtt: s.cfg.RTT})
		sleep(s.cfg.CommitRTT) // commit/abort request
		return err
	})
}

// latencyTx charges one round trip per operation.
type latencyTx struct {
	core.Tx
	rtt time.Duration
}

// Read implements core.Tx.
func (t *latencyTx) Read(row *storage.Row) ([]byte, error) {
	sleep(t.rtt)
	return t.Tx.Read(row)
}

// Update implements core.Tx.
func (t *latencyTx) Update(row *storage.Row, mutate func([]byte)) error {
	sleep(t.rtt)
	return t.Tx.Update(row, mutate)
}

// Insert implements core.Tx.
func (t *latencyTx) Insert(tbl *storage.Table, key uint64, img []byte) error {
	sleep(t.rtt)
	return t.Tx.Insert(tbl, key, img)
}

// DeclareOps is swallowed: interactive servers do not know access lists
// ahead of time (paper §5.1), so every write is treated as the last one
// and retires immediately.
func (t *latencyTx) DeclareOps(int) {}

// MarkReadOnly forwards the snapshot-mode opt-in to the wrapped engine.
// latencyTx embeds the Tx interface, whose method set does not include
// MarkReadOnly, so without this forward core.MarkReadOnly would never
// see the underlying transaction. Snapshot reads are lock-free on the
// server but still pay the per-operation round trip.
func (t *latencyTx) MarkReadOnly() bool { return core.MarkReadOnly(t.Tx) }

// sleep waits for very short durations by spinning (timer granularity on
// Linux makes time.Sleep overshoot badly below ~100µs) and sleeps
// otherwise. The spin yields the processor each iteration: a network
// stall must not consume a core, or on hosts with fewer cores than
// workers every protocol degenerates to the same CPU-bound throughput
// and the lock-holding differences interactive mode exists to expose
// (paper §5.1) disappear. On an unloaded host Gosched returns
// immediately and the spin stays wall-clock accurate.
func sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if d >= 500*time.Microsecond {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}
