package rpcsim_test

import (
	"testing"
	"time"

	"bamboo/internal/core"
	"bamboo/internal/rpcsim"
	"bamboo/internal/verify/verifytest"
)

func TestInteractiveSerializability(t *testing.T) {
	cfg := core.Bamboo()
	cfg.CaptureReads = true
	db := core.NewDB(cfg)
	e := rpcsim.New(core.NewLockEngine(db), rpcsim.Config{RTT: time.Microsecond})
	opts := verifytest.DefaultOptions()
	opts.PerWorker = 60
	verifytest.RunSerializability(t, e, opts)
}

func TestInteractiveBankConservation(t *testing.T) {
	db := core.NewDB(core.Bamboo())
	e := rpcsim.New(core.NewLockEngine(db), rpcsim.Config{RTT: time.Microsecond})
	verifytest.RunBankConservation(t, e, 10, 8, 60)
}

func TestLatencyIsCharged(t *testing.T) {
	db := core.NewDB(core.WoundWait())
	tbl := verifytest.BuildDB(db, 4)
	rtt := 200 * time.Microsecond
	e := rpcsim.New(core.NewLockEngine(db), rpcsim.Config{RTT: rtt})

	const txns = 50
	start := time.Now()
	res := core.RunN(e, 1, txns, func(_, _ int) core.TxnFunc {
		return func(tx core.Tx) error {
			for k := uint64(0); k < 4; k++ {
				if _, err := tx.Read(tbl.Get(k)); err != nil {
					return err
				}
			}
			return nil
		}
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	elapsed := time.Since(start)
	// 4 reads + begin + commit = 6 round trips per transaction.
	min := time.Duration(txns) * 6 * rtt
	if elapsed < min {
		t.Fatalf("elapsed %v < minimum %v implied by per-op latency", elapsed, min)
	}
	if got := e.Name(); got != "WOUND_WAIT/interactive" {
		t.Fatalf("name = %q", got)
	}
}

func TestInteractiveRetiresEveryWrite(t *testing.T) {
	// DeclareOps is swallowed, so δ-holdback cannot apply and every write
	// retires — observable as dirty reads flowing even for writes near
	// the end of a transaction. A smoke check: two-op RMW transactions on
	// one row still conserve the counter.
	db := core.NewDB(core.Bamboo())
	e := rpcsim.New(core.NewLockEngine(db), rpcsim.Config{RTT: time.Microsecond})
	verifytest.RunBankConservation(t, e, 2, 6, 50)
}
