package stats

import (
	"math/bits"
	"time"
)

// Hist is a fixed-bucket log-linear latency histogram in the style of
// HdrHistogram: values below 2^histSubBits nanoseconds are counted
// exactly, and every power-of-two range above that is split into
// 2^histSubBits linear sub-buckets, bounding the relative quantile error
// at 1/2^histSubBits (~1.6%) while keeping memory constant. Recording is
// O(1) with no allocation, so it can sit on the commit path of every
// worker; Merge folds worker histograms by adding bucket counts, which —
// unlike the capped reservoir it replaces — loses nothing when many
// workers each commit millions of transactions.
//
// The zero value is an empty histogram ready for use. Hist is not safe
// for concurrent use; give each worker its own and Merge at the end.
type Hist struct {
	counts [histBuckets]uint32
	// overflow counts values above histMaxValue (kept out of the bucket
	// array so quantiles stay well defined; reported as max).
	overflow uint64
	total    uint64
	sum      int64
	min, max int64
}

const (
	// histSubBits fixes the precision: 2^6 = 64 sub-buckets per octave,
	// ~1.6% worst-case relative error on any quantile.
	histSubBits  = 6
	histSubCount = 1 << histSubBits

	// histOctaves covers values up to ~2^36 ns ≈ 68 s, far beyond any
	// single-transaction latency in these benchmarks; larger values land
	// in the overflow counter.
	histOctaves  = 30
	histBuckets  = (histOctaves + 1) * histSubCount
	histMaxValue = int64(histSubCount) << histOctaves
)

// histIndex maps a non-negative value to its bucket. For v below
// histSubCount the mapping is the identity; above, the top histSubBits
// bits of v select the sub-bucket within v's octave.
func histIndex(v int64) int {
	if v < histSubCount {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 - histSubBits
	return e<<histSubBits + int(v>>uint(e))
}

// histValue returns the midpoint of bucket i's value range, the inverse
// of histIndex up to sub-bucket width.
func histValue(i int) int64 {
	if i < 2*histSubCount {
		return int64(i)
	}
	e := uint(i>>histSubBits - 1)
	sub := int64(i) - int64(e)<<histSubBits
	lo := sub << e
	return lo + (int64(1)<<e)/2
}

// Record adds one observation. Negative durations are clamped to zero.
func (h *Hist) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.total++
	h.sum += v
	if v >= histMaxValue {
		h.overflow++
		return
	}
	h.counts[histIndex(v)]++
}

// Merge folds other into h.
func (h *Hist) Merge(other *Hist) {
	if other.total == 0 {
		return
	}
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.total += other.total
	h.sum += other.sum
	h.overflow += other.overflow
	for i, n := range other.counts {
		if n != 0 {
			h.counts[i] += n
		}
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.total }

// Mean returns the exact mean of all observations (the sum is tracked
// outside the buckets, so the mean carries no bucketing error).
func (h *Hist) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.total))
}

// Min and Max are tracked exactly.
func (h *Hist) Min() time.Duration { return time.Duration(h.min) }
func (h *Hist) Max() time.Duration { return time.Duration(h.max) }

// Quantile returns the value at or below which a fraction q of the
// observations fall, accurate to one sub-bucket (~1.6% relative). q is
// clamped to [0, 1]; an empty histogram reports zero.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return time.Duration(h.min)
	}
	if q >= 1 {
		return time.Duration(h.max)
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen uint64
	for i, n := range h.counts {
		seen += uint64(n)
		if seen > rank {
			v := histValue(i)
			// Clamp to the exactly-tracked extremes so tiny samples
			// never report a quantile outside [min, max].
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	// Only overflow observations remain above the rank.
	return time.Duration(h.max)
}
