package stats

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// exactQuantile mirrors Hist.Quantile's rank convention on a sorted
// slice: the value whose cumulative count first exceeds q*n.
func exactQuantile(sorted []time.Duration, q float64) time.Duration {
	rank := int(q * float64(len(sorted)))
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// relErr returns |a-b| / max(b, 1ns).
func relErr(a, b time.Duration) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if b <= 0 {
		b = 1
	}
	return float64(d) / float64(b)
}

func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram not zero: %+v", h)
	}
}

func TestHistSingleValue(t *testing.T) {
	var h Hist
	h.Record(137 * time.Microsecond)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 137*time.Microsecond {
			t.Fatalf("q=%.2f = %v, want 137µs", q, got)
		}
	}
	if h.Mean() != 137*time.Microsecond {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistBucketRoundTrip(t *testing.T) {
	// Every representable value must land in a bucket whose midpoint is
	// within one sub-bucket width (1/64 relative) of the value.
	for _, v := range []int64{0, 1, 63, 64, 65, 127, 128, 1000, 4095, 4096,
		1e6, 1e9, 12345678901, histMaxValue - 1} {
		i := histIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("v=%d: index %d out of range", v, i)
		}
		got := histValue(i)
		if e := relErr(time.Duration(got), time.Duration(v)); e > 1.0/histSubCount {
			t.Errorf("v=%d: bucket midpoint %d, rel err %.4f", v, got, e)
		}
	}
}

func TestHistIndexMonotone(t *testing.T) {
	last := -1
	for v := int64(0); v < 1<<20; v += 7 {
		i := histIndex(v)
		if i < last {
			t.Fatalf("index not monotone at v=%d: %d < %d", v, i, last)
		}
		last = i
	}
}

// TestHistQuantileAccuracy checks the histogram against an exact
// full-sample sort on several random distributions: all reported
// percentiles must be within the log-linear error bound (one sub-bucket,
// ~1.6%, with slack for the rank-rounding difference).
func TestHistQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	distributions := map[string]func() time.Duration{
		"uniform": func() time.Duration {
			return time.Duration(rng.Int63n(int64(10 * time.Millisecond)))
		},
		"exponential": func() time.Duration {
			return time.Duration(rng.ExpFloat64() * float64(500*time.Microsecond))
		},
		"bimodal": func() time.Duration {
			if rng.Intn(10) == 0 {
				return time.Duration(rng.Int63n(int64(50*time.Millisecond))) + 10*time.Millisecond
			}
			return time.Duration(rng.Int63n(int64(200 * time.Microsecond)))
		},
	}
	for name, draw := range distributions {
		t.Run(name, func(t *testing.T) {
			var h Hist
			samples := make([]time.Duration, 0, 50000)
			for i := 0; i < 50000; i++ {
				d := draw()
				h.Record(d)
				samples = append(samples, d)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
				got := h.Quantile(q)
				want := exactQuantile(samples, q)
				if e := relErr(got, want); e > 2.5/histSubCount {
					t.Errorf("q=%.3f: hist=%v exact=%v rel err %.4f", q, got, want, e)
				}
			}
			if h.Mean() == 0 || h.Max() != samples[len(samples)-1] {
				t.Errorf("mean=%v max=%v want max=%v", h.Mean(), h.Max(), samples[len(samples)-1])
			}
		})
	}
}

// TestHistMerge verifies that merging per-worker histograms is
// indistinguishable from recording everything into one histogram.
func TestHistMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var whole Hist
	parts := make([]Hist, 8)
	for i := 0; i < 80000; i++ {
		d := time.Duration(rng.ExpFloat64() * float64(time.Millisecond))
		whole.Record(d)
		parts[i%len(parts)].Record(d)
	}
	var merged Hist
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged.Count() != whole.Count() || merged.Mean() != whole.Mean() ||
		merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merged summary differs: count %d vs %d, mean %v vs %v",
			merged.Count(), whole.Count(), merged.Mean(), whole.Mean())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 0.999} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Errorf("q=%.3f: merged %v != whole %v", q, merged.Quantile(q), whole.Quantile(q))
		}
	}
	// Merging an empty histogram must not disturb min/max.
	var empty Hist
	before := merged
	merged.Merge(&empty)
	if merged != before {
		t.Error("merging empty histogram changed state")
	}
}

func TestHistOverflow(t *testing.T) {
	var h Hist
	huge := time.Duration(histMaxValue) * 4
	h.Record(time.Millisecond)
	h.Record(huge)
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != huge {
		t.Fatalf("max = %v", h.Max())
	}
	if got := h.Quantile(0.999); got != huge {
		t.Fatalf("q999 = %v, want %v", got, huge)
	}
	if got := h.Quantile(0.25); relErr(got, time.Millisecond) > 1.0/histSubCount {
		t.Fatalf("q25 = %v, want ~1ms", got)
	}
}

func TestHistNegativeClamped(t *testing.T) {
	var h Hist
	h.Record(-time.Second)
	if h.Min() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("negative not clamped: min=%v p50=%v", h.Min(), h.Quantile(0.5))
	}
}

func BenchmarkHistRecord(b *testing.B) {
	var h Hist
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i%1000) * time.Microsecond)
	}
}
