package stats

import (
	"sync/atomic"
	"time"
)

// Live is the telemetry mirror of the per-worker collectors: a set of
// atomic counters shared by every worker of one DB that a scraper (the
// internal/telemetry registry) may read at any moment during a run.
//
// The per-worker Collector remains the source of truth for end-of-run
// reports — it is plain-field and contention-free — but it cannot be read
// while workers are running. Attaching a Live (Collector.AttachLive)
// makes every RecordCommit / RecordAbort / RecordUpgrade / RecordRetire /
// RecordSnapshotReads / RecordVersionsPruned additionally issue one
// atomic add per counter touched, which a concurrent reader can load
// without synchronization. With no Live attached the hot path pays one
// predictable nil check and nothing else.
//
// All fields are monotonically increasing over the lifetime of the runs
// that share them; readers must tolerate counters advancing between
// loads (no snapshot isolation across fields).
type Live struct {
	Commits  atomic.Uint64
	Aborts   atomic.Uint64
	AbortsBy [6]atomic.Uint64 // indexed by txn.AbortCause

	// Upgrades counts successful SH→EX lock promotions (including the
	// fused upgrade+retire path); Retires counts lock retires — writes
	// made visible before commit (Bamboo's early release).
	Upgrades atomic.Uint64
	Retires  atomic.Uint64

	// MVCC telemetry: reads served by the lock-free snapshot path and
	// version nodes reclaimed at install time (the background pruner's
	// reclaims live in Global.VersionsPruned).
	SnapshotReads  atomic.Uint64
	VersionsPruned atomic.Uint64

	// Row-image buffer telemetry: fresh image allocations on the write
	// path vs. copies served from recycled spare buffers.
	ImageCopies       atomic.Uint64
	ImagePoolRecycled atomic.Uint64

	// Lat accumulates the commit-latency distribution of every worker in
	// one concurrently-readable histogram.
	Lat AtomicHist
}

// AtomicHist is the concurrently-recordable, concurrently-readable
// counterpart of Hist: same log-linear bucket geometry (histIndex /
// histValue), atomic counters instead of plain ones. Record is a few
// atomic adds — safe on the commit path of every worker at once — and
// quantile reads are pure atomic loads, so a scraper never blocks a
// worker. Reads that race with writes see each bucket at some moment;
// quantiles are therefore approximate to the in-flight record count on
// top of the usual ~1.6% bucketing error.
type AtomicHist struct {
	counts   [histBuckets]atomic.Uint64
	overflow atomic.Uint64
	total    atomic.Uint64
	sum      atomic.Int64
}

// Record adds one observation. Negative durations are clamped to zero.
func (h *AtomicHist) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.total.Add(1)
	h.sum.Add(v)
	if v >= histMaxValue {
		h.overflow.Add(1)
		return
	}
	h.counts[histIndex(v)].Add(1)
}

// Count returns the number of recorded observations.
func (h *AtomicHist) Count() uint64 { return h.total.Load() }

// Sum returns the exact sum of all observations in nanoseconds.
func (h *AtomicHist) Sum() int64 { return h.sum.Load() }

// QuantilesInto fills out[i] with the value at quantile qs[i]. qs must be
// sorted ascending and len(out) must be at least len(qs); nothing
// allocates. It returns the observation count the quantiles were computed
// against (zero leaves out untouched beyond zeroing). Because records may
// race with the bucket walk, any quantile the walk cannot resolve — the
// racing tail, or ranks covered only by overflow observations — reports
// the highest bucket value seen.
func (h *AtomicHist) QuantilesInto(qs []float64, out []time.Duration) uint64 {
	total := h.total.Load()
	if total == 0 {
		for i := range qs {
			out[i] = 0
		}
		return 0
	}
	j := 0
	var seen uint64
	var last int64
	for i := 0; i < histBuckets && j < len(qs); i++ {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		seen += n
		last = histValue(i)
		for j < len(qs) {
			rank := uint64(qs[j] * float64(total))
			if rank >= total {
				rank = total - 1
			}
			if seen <= rank {
				break
			}
			out[j] = time.Duration(last)
			j++
		}
	}
	for ; j < len(qs); j++ {
		out[j] = time.Duration(last)
	}
	return total
}

// AttachLive points the collector's telemetry mirror at l (nil detaches).
// Call before the worker starts recording.
func (c *Collector) AttachLive(l *Live) { c.Live = l }

// RecordUpgrade counts one successful SH→EX lock promotion.
func (c *Collector) RecordUpgrade() {
	c.Upgrades++
	if c.Live != nil {
		c.Live.Upgrades.Add(1)
	}
}

// RecordRetire counts one lock retire (a write made visible pre-commit).
func (c *Collector) RecordRetire() {
	c.Retires++
	if c.Live != nil {
		c.Live.Retires.Add(1)
	}
}

// RecordSnapshotReads adds n reads served by the MVCC snapshot path.
func (c *Collector) RecordSnapshotReads(n uint64) {
	c.SnapshotReads += n
	if c.Live != nil && n > 0 {
		c.Live.SnapshotReads.Add(n)
	}
}

// RecordVersionsPruned adds n version nodes reclaimed at install time.
func (c *Collector) RecordVersionsPruned(n uint64) {
	c.VersionsPruned += n
	if c.Live != nil && n > 0 {
		c.Live.VersionsPruned.Add(n)
	}
}

// RecordImageCopies adds n fresh row-image buffer allocations.
func (c *Collector) RecordImageCopies(n uint64) {
	c.ImageCopies += n
	if c.Live != nil && n > 0 {
		c.Live.ImageCopies.Add(n)
	}
}

// RecordImagesRecycled adds n write copies served from recycled spares.
func (c *Collector) RecordImagesRecycled(n uint64) {
	c.ImagePoolRecycled += n
	if c.Live != nil && n > 0 {
		c.Live.ImagePoolRecycled.Add(n)
	}
}
