package stats

import (
	"sync"
	"testing"
	"time"
)

// TestAtomicHistMatchesHist: same observations, same quantiles — the
// atomic mirror must agree with the plain histogram it shadows.
func TestAtomicHistMatchesHist(t *testing.T) {
	var h Hist
	var a AtomicHist
	// A spread covering identity buckets and log-linear octaves (overflow
	// is exercised separately below — Hist reports exact-tracked max for
	// overflow-dominated quantiles, AtomicHist the highest bucket, so the
	// two disagree there by design).
	ds := []time.Duration{
		0, 1, 50, 63, 64, 100, 999,
		time.Microsecond, 17 * time.Microsecond,
		time.Millisecond, 42 * time.Millisecond,
		time.Second,
	}
	for _, d := range ds {
		for i := 0; i < 7; i++ {
			h.Record(d)
			a.Record(d)
		}
	}
	if h.Count() != a.Count() {
		t.Fatalf("count: hist %d, atomic %d", h.Count(), a.Count())
	}
	qs := []float64{0.5, 0.9, 0.95, 0.99, 0.999}
	out := make([]time.Duration, len(qs))
	a.QuantilesInto(qs, out)
	for i, q := range qs {
		want := h.Quantile(q)
		// Hist clamps quantiles to the exactly-tracked [min, max];
		// AtomicHist reports raw bucket midpoints (it cannot track
		// extremes atomically without a CAS loop on the record path), so
		// allow one sub-bucket of slack.
		diff := out[i] - want
		if diff < 0 {
			diff = -diff
		}
		if want > 0 && float64(diff) > 0.05*float64(want) {
			t.Errorf("q=%g: atomic %v, hist %v", q, out[i], want)
		}
	}

	// Overflow observations (histMaxValue ≈ 68s) count but stay out of
	// the bucket array.
	a.Record(90 * time.Second)
	if a.Count() != h.Count()+1 {
		t.Fatalf("overflow not counted: %d", a.Count())
	}
}

// TestAtomicHistConcurrentReads asserts a reader racing many writers
// always sees sane values (run under -race this is also the data-race
// proof for the scrape path).
func TestAtomicHistConcurrentReads(t *testing.T) {
	var a AtomicHist
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			d := time.Duration(seed+1) * 10 * time.Microsecond
			for {
				select {
				case <-stop:
					return
				default:
					a.Record(d)
				}
			}
		}(w)
	}
	qs := []float64{0.5, 0.99}
	out := make([]time.Duration, len(qs))
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		n := a.QuantilesInto(qs, out)
		if n > 0 {
			// Bounds widened by one sub-bucket: quantiles report bucket
			// midpoints, not exact extremes.
			for i, q := range out {
				if q < 9*time.Microsecond || q > 41*time.Microsecond {
					t.Fatalf("quantile %g out of recorded range: %v", qs[i], q)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestCollectorLiveMirror: with a Live attached, every Record* lands in
// both the plain fields and the atomic mirror; Merge/Summarize carry the
// new upgrade/retire counters through to the report.
func TestCollectorLiveMirror(t *testing.T) {
	live := &Live{}
	c := &Collector{}
	c.AttachLive(live)
	c.RecordCommit(time.Millisecond, 0, 0)
	c.RecordAbort(1, time.Millisecond, 0, 0) // cause 1 = wound
	c.RecordUpgrade()
	c.RecordRetire()
	c.RecordRetire()
	c.RecordSnapshotReads(5)
	c.RecordVersionsPruned(3)

	if live.Commits.Load() != 1 || live.Aborts.Load() != 1 {
		t.Fatalf("mirror commits/aborts = %d/%d", live.Commits.Load(), live.Aborts.Load())
	}
	if live.AbortsBy[1].Load() != 1 {
		t.Fatalf("mirror aborts_by[wound] = %d", live.AbortsBy[1].Load())
	}
	if live.Upgrades.Load() != 1 || live.Retires.Load() != 2 {
		t.Fatalf("mirror upgrades/retires = %d/%d", live.Upgrades.Load(), live.Retires.Load())
	}
	if live.SnapshotReads.Load() != 5 || live.VersionsPruned.Load() != 3 {
		t.Fatalf("mirror snapshot reads/pruned = %d/%d",
			live.SnapshotReads.Load(), live.VersionsPruned.Load())
	}
	if live.Lat.Count() != 1 {
		t.Fatalf("mirror latency count = %d", live.Lat.Count())
	}

	var merged Collector
	merged.Merge(c)
	rep := Summarize("test", time.Second, []*Collector{&merged}, nil)
	if rep.Upgrades != 1 || rep.Retires != 2 {
		t.Fatalf("report upgrades/retires = %d/%d", rep.Upgrades, rep.Retires)
	}
}
