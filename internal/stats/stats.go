// Package stats collects the per-transaction metrics the paper reports:
// throughput, abort rates by cause, the amortized runtime breakdown of the
// "runtime analysis" figures (lock wait / abort / commit wait / useful
// work), and abort-chain lengths (§4.2).
//
// Collection is per-worker and contention-free; Merge folds workers
// together at the end of a run. Counters recorded where no worker
// collector is in scope (the lock manager's wounds and cascades, the
// per-partition access/conflict counters, the background pruner) live in
// Global and are atomic. For live scraping during a run, AttachLive gives
// a collector an atomic mirror (Live, read by internal/telemetry) so the
// end-of-run path stays plain-field and a scraper never reads a
// non-atomic counter.
package stats

import (
	"sync/atomic"
	"time"

	"bamboo/internal/txn"
)

// Collector accumulates metrics for one worker. It is not safe for
// concurrent use; give each worker its own and Merge at the end.
type Collector struct {
	Commits uint64
	Aborts  uint64
	// AbortsBy counts aborted attempts by cause.
	AbortsBy [6]uint64

	// Time breakdown, summed over all attempts (committed and aborted).
	LockWait   time.Duration // waiting inside lock acquisition
	CommitWait time.Duration // waiting on the commit semaphore / validation
	AbortTime  time.Duration // execution time of attempts that aborted
	UsefulTime time.Duration // execution time of attempts that committed
	Elapsed    time.Duration // wall-clock span of the worker's run

	// Lat holds the latency of every committed transaction in a
	// fixed-bucket log-linear histogram (bounded memory, no sampling).
	Lat Hist

	// SnapshotReads counts row reads served by the MVCC snapshot path
	// (zero lock acquisitions); VersionsPruned counts version nodes this
	// worker reclaimed at install time. Both zero on non-MVCC runs.
	SnapshotReads  uint64
	VersionsPruned uint64

	// ImageCopies counts fresh row-image buffer allocations on the write
	// path (the GC-visible quantity the shared-image protocol eliminates);
	// ImagePoolRecycled counts write copies served from a recycled spare
	// buffer instead (a superseded committed image captured at release, or
	// a version-chain node displaced at install).
	ImageCopies       uint64
	ImagePoolRecycled uint64

	// Upgrades counts successful SH→EX promotions (including the fused
	// upgrade+retire path); Retires counts lock retires (writes made
	// visible before commit).
	Upgrades uint64
	Retires  uint64

	// Live, when non-nil (AttachLive), receives an atomic mirror of
	// every Record* call so a telemetry scraper can read the counters
	// mid-run. Nil on plain bench runs: the hot path then pays only a
	// predictable nil check per record.
	Live *Live
}

// Global holds the counters that are recorded from inside the shared lock
// manager — wounds, cascading-abort events and chain lengths — where no
// per-worker collector is in scope, plus the per-partition access and
// conflict counters the partition-aware executor feeds. All operations are
// atomic.
type Global struct {
	Wounds   atomic.Uint64
	Cascades atomic.Uint64
	ChainSum atomic.Uint64
	ChainMax atomic.Uint64

	// MVCC version telemetry recorded by the background pruner (which has
	// no per-worker collector): nodes reclaimed by sweeps and the longest
	// version chain observed.
	VersionsPruned  atomic.Uint64
	VersionChainMax atomic.Uint64

	// Adaptive contention-control telemetry: HotEntries is a gauge of
	// entries currently classified hot (PolicyRetire), PolicyFlips counts
	// per-entry policy-word changes, and BatchedGrants counts readers
	// granted by hot-entry batched grant passes. The first two are
	// written by the feedback engine's tick, the last by the lock
	// manager's OnBatchedGrant hook.
	HotEntries    atomic.Uint64
	PolicyFlips   atomic.Uint64
	BatchedGrants atomic.Uint64

	// parts is sized once at DB construction (InitPartitions) and never
	// resized, so the hot-path Record calls are a bounds check and an
	// atomic add — zero allocations.
	parts []PartitionCounter
}

// PartitionCounter counts one partition's row accesses and conflicts. The
// padding keeps neighbouring partitions' counters off one cacheline so
// workers hitting disjoint partitions do not false-share.
type PartitionCounter struct {
	Accesses  atomic.Uint64
	Conflicts atomic.Uint64
	_         [48]byte
}

// InitPartitions sizes the per-partition counters; called once before any
// Record. n < 1 leaves partition telemetry disabled.
func (g *Global) InitPartitions(n int) {
	if n > 0 {
		g.parts = make([]PartitionCounter, n)
	}
}

// RecordPartAccess counts one row access against partition pid.
func (g *Global) RecordPartAccess(pid int) {
	if pid >= 0 && pid < len(g.parts) {
		g.parts[pid].Accesses.Add(1)
	}
}

// RecordPartConflict counts one conflicted (aborted or upgrade-failed)
// access against partition pid.
func (g *Global) RecordPartConflict(pid int) {
	if pid >= 0 && pid < len(g.parts) {
		g.parts[pid].Conflicts.Add(1)
	}
}

// PartitionAccesses returns a snapshot of per-partition access counts, or
// nil when partition telemetry is disabled.
func (g *Global) PartitionAccesses() []uint64 { return snapshotParts(g.parts, accessOf) }

// PartitionConflicts returns a snapshot of per-partition conflict counts,
// or nil when partition telemetry is disabled.
func (g *Global) PartitionConflicts() []uint64 { return snapshotParts(g.parts, conflictOf) }

// NumPartitions returns how many partition counters are initialized
// (zero when partition telemetry is disabled).
func (g *Global) NumPartitions() int { return len(g.parts) }

// PartitionAt returns partition pid's access and conflict counts with no
// allocation; the telemetry exposition path iterates partitions with it.
func (g *Global) PartitionAt(pid int) (accesses, conflicts uint64) {
	if pid < 0 || pid >= len(g.parts) {
		return 0, 0
	}
	return g.parts[pid].Accesses.Load(), g.parts[pid].Conflicts.Load()
}

// PartitionTotals sums accesses and conflicts over all partitions with no
// allocation (the periodic telemetry collector's rate path).
func (g *Global) PartitionTotals() (accesses, conflicts uint64) {
	for i := range g.parts {
		accesses += g.parts[i].Accesses.Load()
		conflicts += g.parts[i].Conflicts.Load()
	}
	return
}

func accessOf(c *PartitionCounter) uint64   { return c.Accesses.Load() }
func conflictOf(c *PartitionCounter) uint64 { return c.Conflicts.Load() }

func snapshotParts(parts []PartitionCounter, get func(*PartitionCounter) uint64) []uint64 {
	if len(parts) == 0 {
		return nil
	}
	out := make([]uint64, len(parts))
	for i := range parts {
		out[i] = get(&parts[i])
	}
	return out
}

// RecordBatchedGrant adds n readers granted in one hot-entry batched
// grant pass (the lock.Config.OnBatchedGrant hook).
func (g *Global) RecordBatchedGrant(n int) {
	if n > 0 {
		g.BatchedGrants.Add(uint64(n))
	}
}

// RecordPolicyFlips adds n per-entry policy changes from one engine tick.
func (g *Global) RecordPolicyFlips(n uint64) {
	if n > 0 {
		g.PolicyFlips.Add(n)
	}
}

// SetHotEntries publishes the current hot-entry count (a gauge, stored by
// each engine tick).
func (g *Global) SetHotEntries(n uint64) { g.HotEntries.Store(n) }

// RecordVersionsPruned adds n reclaimed version nodes.
func (g *Global) RecordVersionsPruned(n uint64) {
	if n > 0 {
		g.VersionsPruned.Add(n)
	}
}

// RecordVersionChainLen folds one observed chain length into the maximum.
func (g *Global) RecordVersionChainLen(n uint64) {
	for {
		cur := g.VersionChainMax.Load()
		if n <= cur || g.VersionChainMax.CompareAndSwap(cur, n) {
			return
		}
	}
}

// RecordWound counts one wounded transaction.
func (g *Global) RecordWound() { g.Wounds.Add(1) }

// RecordCascade records one cascading-abort event with its chain length
// (the number of transactions aborted by one transaction's abort, §4.2).
func (g *Global) RecordCascade(chain int) {
	g.Cascades.Add(1)
	g.ChainSum.Add(uint64(chain))
	for {
		cur := g.ChainMax.Load()
		if uint64(chain) <= cur || g.ChainMax.CompareAndSwap(cur, uint64(chain)) {
			return
		}
	}
}

// RecordCommit records a committed attempt with its time breakdown.
func (c *Collector) RecordCommit(exec, lockWait, commitWait time.Duration) {
	c.Commits++
	c.UsefulTime += exec
	c.LockWait += lockWait
	c.CommitWait += commitWait
	c.Lat.Record(exec + lockWait + commitWait)
	if c.Live != nil {
		c.Live.Commits.Add(1)
		c.Live.Lat.Record(exec + lockWait + commitWait)
	}
}

// RecordAbort records an aborted attempt.
func (c *Collector) RecordAbort(cause txn.AbortCause, exec, lockWait, commitWait time.Duration) {
	c.Aborts++
	if int(cause) < len(c.AbortsBy) {
		c.AbortsBy[cause]++
	}
	c.AbortTime += exec
	c.LockWait += lockWait
	c.CommitWait += commitWait
	if c.Live != nil {
		c.Live.Aborts.Add(1)
		if int(cause) < len(c.Live.AbortsBy) {
			c.Live.AbortsBy[cause].Add(1)
		}
	}
}

// Merge folds other into c.
func (c *Collector) Merge(other *Collector) {
	c.Commits += other.Commits
	c.Aborts += other.Aborts
	for i := range c.AbortsBy {
		c.AbortsBy[i] += other.AbortsBy[i]
	}
	c.LockWait += other.LockWait
	c.CommitWait += other.CommitWait
	c.AbortTime += other.AbortTime
	c.UsefulTime += other.UsefulTime
	if other.Elapsed > c.Elapsed {
		c.Elapsed = other.Elapsed
	}
	c.SnapshotReads += other.SnapshotReads
	c.VersionsPruned += other.VersionsPruned
	c.ImageCopies += other.ImageCopies
	c.ImagePoolRecycled += other.ImagePoolRecycled
	c.Upgrades += other.Upgrades
	c.Retires += other.Retires
	c.Lat.Merge(&other.Lat)
}

// Report is an immutable summary of a run.
type Report struct {
	Protocol string
	Workers  int

	Commits uint64
	Aborts  uint64
	// AbortRate is aborted attempts / total attempts.
	AbortRate float64
	// AbortsBy maps cause name → count.
	AbortsBy map[string]uint64

	// ThroughputTPS is committed transactions per second of wall time.
	ThroughputTPS float64

	// Amortized per-committed-transaction runtime breakdown (the paper's
	// "amortized runtime per txn" figures).
	PerTxnLockWait   time.Duration
	PerTxnCommitWait time.Duration
	PerTxnAbort      time.Duration
	PerTxnUseful     time.Duration

	Wounds   uint64
	Cascades uint64
	AvgChain float64
	MaxChain uint64

	// Lock-upgrade and early-release telemetry: successful SH→EX
	// promotions and retires (writes made visible before commit).
	Upgrades uint64
	Retires  uint64

	// MVCC snapshot-read telemetry (zero on non-MVCC runs): reads served
	// lock-free at a snapshot, version nodes reclaimed (install-time
	// reuse plus background sweeps), and the longest version chain the
	// pruner observed.
	SnapshotReads   uint64
	VersionsPruned  uint64
	VersionChainMax uint64

	// Row-image buffer telemetry: fresh image allocations on the write
	// path and copies served from recycled spare buffers instead.
	ImageCopies       uint64
	ImagePoolRecycled uint64

	// Adaptive contention-control telemetry (adaptive runs only): entries
	// classified hot at the end of the run, per-entry policy changes, and
	// readers granted by hot-entry batched grant passes.
	HotEntries    uint64
	PolicyFlips   uint64
	BatchedGrants uint64

	// Per-partition telemetry (partition-aware runs only): accesses and
	// conflicts per partition id, and the access skew — the hottest
	// partition's share of accesses relative to a perfectly balanced
	// spread (1.0 = balanced, NumPartitions = everything on one).
	PartitionAccesses  []uint64
	PartitionConflicts []uint64
	PartitionSkew      float64

	// LoadTime is the workload load wall time; set by the bench harness
	// (zero when not measured).
	LoadTime time.Duration

	// WAL durability telemetry for the run's DB, set by the bench
	// harness from the log devices (zero when not measured): records and
	// device write operations (what group commit amortizes), payload
	// bytes, and fsync count/time (what a real device charges).
	WALAppends  uint64
	WALBatches  uint64
	WALBytes    uint64
	WALSyncs    uint64
	WALSyncTime time.Duration

	// Storage-lifecycle telemetry (checkpoint-enabled runs only): fuzzy
	// snapshots written and their cumulative capture+write time, and the
	// live (not yet truncated) WAL bytes at the end of the run — the
	// quantity log truncation bounds.
	CheckpointCount uint64
	CheckpointTime  time.Duration
	LogBytesLive    int64

	// Commit-latency distribution (lock wait + execution + commit wait),
	// from the merged worker histograms.
	LatencyMean time.Duration
	LatencyP50  time.Duration
	LatencyP90  time.Duration
	LatencyP95  time.Duration
	LatencyP99  time.Duration
	LatencyP999 time.Duration
	LatencyMax  time.Duration

	Elapsed      time.Duration
	TotalWorkers int
}

// Summarize merges the worker collectors and derives a report. g carries
// the manager-level wound/cascade counters and may be nil.
func Summarize(protocol string, elapsed time.Duration, workers []*Collector, g *Global) Report {
	var all Collector
	for _, w := range workers {
		all.Merge(w)
	}
	r := Report{
		Protocol: protocol,
		Workers:  len(workers),
		Commits:  all.Commits,
		Aborts:   all.Aborts,
		AbortsBy: make(map[string]uint64),
		Elapsed:  elapsed,
	}
	r.SnapshotReads = all.SnapshotReads
	r.VersionsPruned = all.VersionsPruned
	r.ImageCopies = all.ImageCopies
	r.ImagePoolRecycled = all.ImagePoolRecycled
	r.Upgrades = all.Upgrades
	r.Retires = all.Retires
	var cascades, chainSum uint64
	if g != nil {
		r.Wounds = g.Wounds.Load()
		cascades = g.Cascades.Load()
		chainSum = g.ChainSum.Load()
		r.Cascades = cascades
		r.MaxChain = g.ChainMax.Load()
		r.VersionsPruned += g.VersionsPruned.Load()
		r.VersionChainMax = g.VersionChainMax.Load()
		r.HotEntries = g.HotEntries.Load()
		r.PolicyFlips = g.PolicyFlips.Load()
		r.BatchedGrants = g.BatchedGrants.Load()
		r.PartitionAccesses = g.PartitionAccesses()
		r.PartitionConflicts = g.PartitionConflicts()
		r.PartitionSkew = skewOf(r.PartitionAccesses)
	}
	for cause, n := range all.AbortsBy {
		if n > 0 {
			r.AbortsBy[txn.AbortCause(cause).String()] = n
		}
	}
	if total := all.Commits + all.Aborts; total > 0 {
		r.AbortRate = float64(all.Aborts) / float64(total)
	}
	if elapsed > 0 {
		r.ThroughputTPS = float64(all.Commits) / elapsed.Seconds()
	}
	if all.Commits > 0 {
		n := time.Duration(all.Commits)
		r.PerTxnLockWait = all.LockWait / n
		r.PerTxnCommitWait = all.CommitWait / n
		r.PerTxnAbort = all.AbortTime / n
		r.PerTxnUseful = all.UsefulTime / n
	}
	if cascades > 0 {
		r.AvgChain = float64(chainSum) / float64(cascades)
	}
	if all.Lat.Count() > 0 {
		r.LatencyMean = all.Lat.Mean()
		r.LatencyP50 = all.Lat.Quantile(0.50)
		r.LatencyP90 = all.Lat.Quantile(0.90)
		r.LatencyP95 = all.Lat.Quantile(0.95)
		r.LatencyP99 = all.Lat.Quantile(0.99)
		r.LatencyP999 = all.Lat.Quantile(0.999)
		r.LatencyMax = all.Lat.Max()
	}
	return r
}

// skewOf returns max/mean of the access counts: 1.0 for a perfectly
// balanced spread, NumPartitions when one partition takes every access, 0
// when there is nothing to measure.
func skewOf(accesses []uint64) float64 {
	if len(accesses) == 0 {
		return 0
	}
	var sum, max uint64
	for _, a := range accesses {
		sum += a
		if a > max {
			max = a
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(accesses))
	return float64(max) / mean
}

// The one-line table rendering of a report lives in
// bench/report.Point.String, the single formatter on the reporting
// path; convert with report.PointFrom.

// BreakdownRow returns the four per-transaction time components in the
// order the paper's stacked bars use: lock wait, abort, commit wait,
// useful.
func (r Report) BreakdownRow() [4]time.Duration {
	return [4]time.Duration{r.PerTxnLockWait, r.PerTxnAbort, r.PerTxnCommitWait, r.PerTxnUseful}
}
