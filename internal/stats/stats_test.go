package stats

import (
	"testing"
	"time"

	"bamboo/internal/txn"
)

func TestCollectorAndSummarize(t *testing.T) {
	c1 := &Collector{}
	c1.RecordCommit(10*time.Millisecond, 2*time.Millisecond, time.Millisecond)
	c1.RecordCommit(10*time.Millisecond, 0, 0)
	c1.RecordAbort(txn.CauseWound, 5*time.Millisecond, time.Millisecond, 0)

	c2 := &Collector{}
	c2.RecordCommit(20*time.Millisecond, 0, 0)
	c2.RecordAbort(txn.CauseUser, time.Millisecond, 0, 0)

	g := &Global{}
	g.RecordWound()
	g.RecordCascade(3)
	g.RecordCascade(5)
	g.RecordCascade(2)

	r := Summarize("TEST", time.Second, []*Collector{c1, c2}, g)
	if r.Commits != 3 || r.Aborts != 2 {
		t.Fatalf("commits=%d aborts=%d", r.Commits, r.Aborts)
	}
	if r.ThroughputTPS != 3 {
		t.Fatalf("tps = %f", r.ThroughputTPS)
	}
	if r.AbortRate != 2.0/5.0 {
		t.Fatalf("abort rate = %f", r.AbortRate)
	}
	if r.AbortsBy["wound"] != 1 || r.AbortsBy["user"] != 1 {
		t.Fatalf("by cause: %v", r.AbortsBy)
	}
	if r.Wounds != 1 || r.Cascades != 3 || r.MaxChain != 5 {
		t.Fatalf("global: wounds=%d cascades=%d max=%d", r.Wounds, r.Cascades, r.MaxChain)
	}
	if r.AvgChain < 3.3 || r.AvgChain > 3.4 {
		t.Fatalf("avg chain = %f", r.AvgChain)
	}
	// Amortized per committed txn: useful = 40ms/3.
	if want := 40 * time.Millisecond / 3; r.PerTxnUseful != want {
		t.Fatalf("useful = %v, want %v", r.PerTxnUseful, want)
	}
	if r.LatencyP50 == 0 || r.LatencyP99 < r.LatencyP50 {
		t.Fatalf("latencies: p50=%v p99=%v", r.LatencyP50, r.LatencyP99)
	}
	b := r.BreakdownRow()
	if b[3] != r.PerTxnUseful {
		t.Fatal("breakdown order wrong")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	r := Summarize("EMPTY", 0, nil, nil)
	if r.Commits != 0 || r.ThroughputTPS != 0 || r.AbortRate != 0 {
		t.Fatalf("empty report: %+v", r)
	}
}

func TestGlobalChainMaxRace(t *testing.T) {
	g := &Global{}
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(i int) {
			for j := 0; j < 1000; j++ {
				g.RecordCascade(i*1000 + j)
			}
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if g.ChainMax.Load() != 7999 {
		t.Fatalf("max = %d", g.ChainMax.Load())
	}
	if g.Cascades.Load() != 8000 {
		t.Fatalf("cascades = %d", g.Cascades.Load())
	}
}

func TestLatencyHistogramInCollector(t *testing.T) {
	c := &Collector{}
	const n = 10000
	for i := 0; i < n; i++ {
		c.RecordCommit(time.Microsecond, 0, 0)
	}
	if got := c.Lat.Count(); got != n {
		t.Fatalf("count = %d, want %d", got, n)
	}
	other := &Collector{}
	other.RecordCommit(time.Millisecond, 0, 0)
	c.Merge(other)
	if got := c.Lat.Count(); got != n+1 {
		t.Fatalf("count after merge = %d, want %d", got, n+1)
	}
	if c.Lat.Max() != time.Millisecond {
		t.Fatalf("max after merge = %v", c.Lat.Max())
	}
	r := Summarize("HIST", time.Second, []*Collector{c}, nil)
	// p50 is accurate to one log-linear sub-bucket (~1.6%).
	if r.LatencyP50 < time.Microsecond || r.LatencyP50 > time.Microsecond*105/100 {
		t.Fatalf("p50 = %v, want ~1µs", r.LatencyP50)
	}
	if r.LatencyP999 < r.LatencyP99 || r.LatencyP99 < r.LatencyP95 ||
		r.LatencyP95 < r.LatencyP90 || r.LatencyP90 < r.LatencyP50 {
		t.Fatalf("percentiles not monotone: %+v", r)
	}
	if r.LatencyMax != time.Millisecond {
		t.Fatalf("max = %v", r.LatencyMax)
	}
}
