package storage

import "sync/atomic"

// MVCC version chains. Each row optionally carries a small, newest-first
// chain of committed images stamped with their commit timestamp, so
// snapshot readers resolve a row image with a latch-free pointer walk —
// the snapshot read path never touches the lock manager.
//
// Concurrency contract:
//
//   - Installs on one row are serialized by the lock protocol itself (a
//     committing writer holds the row's write authority: under 2PL the
//     exclusive lock, under Bamboo the retire/semaphore ordering that
//     admits writers to their commit points in dependency order), so
//     Install needs no latch of its own.
//   - Readers traverse concurrently with installs and pruning. A node's
//     ts/img are written only while the node is unreachable (before its
//     publishing store, or after a detach proved no reader can reach it);
//     reachable nodes are immutable.
//   - The pruner may run concurrently with installs; the two reclaim the
//     same tail at most once (a CAS on the detach point arbitrates).
//
// Reclamation rule: a version is dead once a newer version exists with
// ts ≤ the reclaim watermark (txn.SnapshotTable.AdvanceReclaim keeps the
// watermark ≤ every active and future snapshot). A reader's walk stops at
// the first version with ts ≤ its snapshot, so no reader ever follows the
// next pointer of a version with ts ≤ watermark — which is exactly the
// link Install and Prune sever. Install reuses the first detached node
// for the incoming version, so a hot row's chain reaches a steady state
// where version turnover allocates nothing.

// Version is one committed row image in a row's version chain.
type Version struct {
	next atomic.Pointer[Version]
	ts   uint64
	img  []byte
}

// TS returns the version's commit timestamp.
func (v *Version) TS() uint64 { return v.ts }

// Image returns the version's row image. Callers must not mutate it.
func (v *Version) Image() []byte { return v.img }

// Next returns the next-older version, or nil.
func (v *Version) Next() *Version { return v.next.Load() }

// VersionChain is a newest-first linked list of committed versions with
// an atomic head. The zero value is an empty chain.
type VersionChain struct {
	head atomic.Pointer[Version]
}

// Head returns the newest version, or nil.
func (c *VersionChain) Head() *Version { return c.head.Load() }

// ReadAt returns the newest image committed at or before snap, or
// (nil, false) if no version is visible (the row did not exist at snap,
// or the chain was never seeded). Latch-free and allocation-free.
func (c *VersionChain) ReadAt(snap uint64) ([]byte, bool) {
	for v := c.head.Load(); v != nil; v = v.next.Load() {
		if v.ts <= snap {
			return v.img, true
		}
	}
	return nil, false
}

// Len returns the current chain length (diagnostic; racy under writes).
func (c *VersionChain) Len() int {
	n := 0
	for v := c.head.Load(); v != nil; v = v.next.Load() {
		n++
	}
	return n
}

// Seed resets the chain to the single version (ts, img). Only for
// single-threaded contexts: loaders and crash recovery.
func (c *VersionChain) Seed(ts uint64, img []byte) {
	v := &Version{ts: ts, img: img}
	c.head.Store(v)
}

// Install publishes img as the newest version with commit timestamp ts,
// detaching (and reusing one node of) the tail of versions superseded at
// or below reclaimTS. img must be an immutable committed image that the
// chain adopts by reference; ts must be greater than every active
// snapshot's timestamp (guaranteed by drawing it inside the SnapshotTable
// in-flight window). Installs on one chain must be externally serialized;
// readers and the pruner may run concurrently. Returns the chain length
// after the install, the number of version nodes reclaimed, and — when a
// tail was detached — the displaced image of the reused node. That image
// is unreachable by every snapshot reader (a reader's walk stops at the
// first version at or above the watermark, which the detach keeps) and
// at least one committed generation older than anything the lock entry
// can still reference, so the caller owns it and may recycle its storage.
func (c *VersionChain) Install(img []byte, ts, reclaimTS uint64) (length, reclaimed int, freed []byte) {
	head := c.head.Load()
	// Find the newest version already visible at the watermark; every
	// older version is unreachable by any active or future reader.
	var keep *Version
	kept := 0
	for v := head; v != nil; v = v.next.Load() {
		kept++
		if v.ts <= reclaimTS {
			keep = v
			break
		}
	}
	var node *Version
	if keep != nil {
		if tail := keep.next.Load(); tail != nil {
			if keep.next.CompareAndSwap(tail, nil) {
				for v := tail; v != nil; v = v.next.Load() {
					reclaimed++
				}
				// The detached nodes are ours alone now; reuse the first
				// (node and displaced image) and let the (steady-state
				// length zero) rest be collected.
				node = tail
				freed = tail.img
			}
		}
	}
	if node == nil {
		node = &Version{}
	}
	node.ts = ts
	node.img = img
	if head == nil || head.ts < ts {
		node.next.Store(head)
		c.head.Store(node)
		return kept + 1, reclaimed, freed
	}
	// Defensive slow path for an out-of-order install (commit timestamps
	// per row arrive in order under the lock protocols; this guards rare
	// clock-resolution ties). Link the node at its sorted position; CAS
	// handles a concurrent pruner detaching at the same link.
	for {
		pred := c.head.Load()
		for {
			succ := pred.next.Load()
			if succ == nil || succ.ts < ts {
				node.next.Store(succ)
				if pred.next.CompareAndSwap(succ, node) {
					return kept + 1, reclaimed, freed
				}
				break // re-walk from the head
			}
			pred = succ
		}
	}
}

// Prune detaches every version superseded at or below reclaimTS. Safe
// concurrently with readers and with Install (the detach CAS arbitrates).
// Returns the chain length observed before pruning and the number of
// nodes reclaimed.
func (c *VersionChain) Prune(reclaimTS uint64) (length, reclaimed int) {
	var keep *Version
	for v := c.head.Load(); v != nil; v = v.next.Load() {
		length++
		if v.ts <= reclaimTS {
			keep = v
			break
		}
	}
	if keep == nil {
		return length, 0
	}
	tail := keep.next.Load()
	if tail == nil {
		return length, 0
	}
	if !keep.next.CompareAndSwap(tail, nil) {
		return length, 0
	}
	for v := tail; v != nil; v = v.next.Load() {
		reclaimed++
	}
	return length + reclaimed, reclaimed
}
