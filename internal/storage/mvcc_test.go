package storage

import (
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func img64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// TestVersionChainReadAt pins the visibility rule: ReadAt returns the
// newest image committed at or before the snapshot.
func TestVersionChainReadAt(t *testing.T) {
	var c VersionChain
	c.Seed(0, img64(0))
	c.Install(img64(10), 10, 0)
	c.Install(img64(20), 20, 0)

	cases := []struct {
		snap, want uint64
		ok         bool
	}{
		{0, 0, true}, {5, 0, true}, {9, 0, true},
		{10, 10, true}, {19, 10, true},
		{20, 20, true}, {100, 20, true},
	}
	for _, tc := range cases {
		img, ok := c.ReadAt(tc.snap)
		if ok != tc.ok {
			t.Fatalf("ReadAt(%d): ok=%v want %v", tc.snap, ok, tc.ok)
		}
		if got := binary.LittleEndian.Uint64(img); got != tc.want {
			t.Fatalf("ReadAt(%d) = image %d, want %d", tc.snap, got, tc.want)
		}
	}
	if n := c.Len(); n != 3 {
		t.Fatalf("chain length %d, want 3", n)
	}
}

// TestVersionChainUnseeded: a chain never seeded (MVCC off, or a row
// created at a commit ts above the snapshot) reports no visible version.
func TestVersionChainUnseeded(t *testing.T) {
	var c VersionChain
	if _, ok := c.ReadAt(100); ok {
		t.Fatal("empty chain returned a version")
	}
	c.Seed(50, img64(50))
	if _, ok := c.ReadAt(49); ok {
		t.Fatal("snapshot below the row's creation ts saw it")
	}
	if _, ok := c.ReadAt(50); !ok {
		t.Fatal("snapshot at the creation ts missed the row")
	}
}

// TestVersionChainInstallReclaims: with the watermark caught up, every
// install detaches the superseded tail and the chain stays at two
// versions (the new one plus the newest at-or-below-watermark one).
func TestVersionChainInstallReclaims(t *testing.T) {
	var c VersionChain
	c.Seed(0, img64(0))
	totalReclaimed := 0
	for ts := uint64(10); ts <= 100; ts += 10 {
		// Watermark = previous commit: everything older is superseded.
		_, rec, freed := c.Install(img64(ts), ts, ts-10)
		totalReclaimed += rec
		if rec > 0 && freed == nil {
			t.Fatalf("install at ts %d reclaimed %d nodes but returned no displaced image", ts, rec)
		}
	}
	if n := c.Len(); n > 2 {
		t.Fatalf("chain grew to %d versions despite a caught-up watermark", n)
	}
	if totalReclaimed == 0 {
		t.Fatal("no versions reclaimed at install time")
	}
	// The newest image must win at a high snapshot.
	img, ok := c.ReadAt(1000)
	if !ok || binary.LittleEndian.Uint64(img) != 100 {
		t.Fatalf("newest version lost: ok=%v img=%v", ok, img)
	}
}

// TestVersionChainInstallZeroAlloc: steady-state version turnover on a
// hot row reuses detached nodes — zero allocations per install.
func TestVersionChainInstallZeroAlloc(t *testing.T) {
	var c VersionChain
	c.Seed(0, img64(0))
	img := img64(1)
	ts := uint64(10)
	// Warm up: first install allocates the second node.
	c.Install(img, ts, ts-1)
	got := testing.AllocsPerRun(100, func() {
		ts += 10
		c.Install(img, ts, ts-1)
	})
	if got > 0 {
		t.Fatalf("steady-state install allocates %.1f/op, want 0", got)
	}
}

// TestVersionChainPrune: pruning keeps the newest version at or below
// the watermark (some snapshot may still need it) plus everything newer,
// and reclaims the rest.
func TestVersionChainPrune(t *testing.T) {
	var c VersionChain
	c.Seed(0, img64(0))
	for ts := uint64(10); ts <= 50; ts += 10 {
		c.Install(img64(ts), ts, 0) // watermark 0: nothing reclaimed yet
	}
	if n := c.Len(); n != 6 {
		t.Fatalf("precondition: chain length %d, want 6", n)
	}
	_, reclaimed := c.Prune(25)
	if reclaimed != 2 { // ts 10 and 0 are superseded by ts 20 ≤ 25
		t.Fatalf("reclaimed %d versions, want 2", reclaimed)
	}
	// ts 20 must survive: a snapshot at 25 reads it.
	img, ok := c.ReadAt(25)
	if !ok || binary.LittleEndian.Uint64(img) != 20 {
		t.Fatalf("prune reclaimed the version visible at the watermark: ok=%v img=%v", ok, img)
	}
	// Idempotent at the same watermark.
	if _, rec := c.Prune(25); rec != 0 {
		t.Fatalf("second prune at the same watermark reclaimed %d", rec)
	}
}

// TestVersionChainConcurrent is the property test for the chain's
// concurrency contract, run with -race: one writer installs versions with
// increasing timestamps (images encode their ts), readers pick snapshots
// and must always see the newest version at or below their snapshot and
// never a reclaimed one, while a pruner advances a trailing watermark.
func TestVersionChainConcurrent(t *testing.T) {
	var c VersionChain
	c.Seed(0, img64(0))

	var (
		latest    atomic.Uint64 // newest installed ts
		watermark atomic.Uint64 // published reclaim watermark
		stop      atomic.Bool
		fail      atomic.Value
		wg        sync.WaitGroup
	)

	// Writer: install ts 10, 20, 30, ... using the published watermark,
	// exactly as the commit path does.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ts := uint64(10); !stop.Load(); ts += 10 {
			c.Install(img64(ts), ts, watermark.Load())
			latest.Store(ts)
			runtime.Gosched()
		}
	}()

	// Pruner: trail the writer by a few versions, as AdvanceReclaim
	// (bounded by active snapshots) would.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if l := latest.Load(); l > 40 {
				watermark.Store(l - 40)
				c.Prune(l - 40)
			}
			runtime.Gosched()
		}
	}()

	// Readers: a snapshot between the watermark and the newest install
	// must resolve to the newest ts at or below it.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				// Order matters: read the watermark bound *after* the
				// newest ts so snap ≥ the watermark in effect during the
				// walk (mirrors AcquireSnapshot's ≥-watermark guarantee).
				lo := latest.Load()
				hi := latest.Load()
				for snap := lo; snap <= hi; snap += 5 {
					if snap < watermark.Load() {
						continue
					}
					img, ok := c.ReadAt(snap)
					if !ok {
						fail.Store("visible version missing")
						stop.Store(true)
						break
					}
					got := binary.LittleEndian.Uint64(img)
					want := snap / 10 * 10 // newest multiple of 10 ≤ snap
					if got != want {
						// The writer may have installed a newer version
						// after we sampled hi — but never one above snap,
						// and never an older-than-want one.
						fail.Store("wrong version visible")
						stop.Store(true)
						break
					}
				}
				runtime.Gosched()
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if v := fail.Load(); v != nil {
		t.Fatal(v)
	}
	if latest.Load() < 100 {
		t.Fatal("writer made no progress")
	}
}
