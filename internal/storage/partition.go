package storage

import "sync/atomic"

// Partitioner maps row keys to partition ids. Implementations must be
// pure functions of the key: every key routes to exactly one partition in
// [0, NumPartitions()) for the lifetime of the table. The routing decision
// is consulted on every Get/Insert, so implementations should be a handful
// of arithmetic instructions and must not allocate.
type Partitioner interface {
	// NumPartitions is the fixed partition count (≥ 1).
	NumPartitions() int
	// Partition returns the partition id for key, in [0, NumPartitions()).
	Partition(key uint64) int
}

// SinglePartition routes every key to partition 0 — the default layout,
// identical to the pre-partitioning flat table.
type SinglePartition struct{}

// NumPartitions implements Partitioner.
func (SinglePartition) NumPartitions() int { return 1 }

// Partition implements Partitioner.
func (SinglePartition) Partition(uint64) int { return 0 }

// HashPartitioner spreads keys uniformly over N partitions by Fibonacci
// hashing (the same multiplier the index shards use), so dense sequential
// keyspaces — YCSB's 0..Rows-1 — balance without coordination.
type HashPartitioner struct{ N int }

// NumPartitions implements Partitioner.
func (h HashPartitioner) NumPartitions() int { return h.N }

// Partition implements Partitioner.
func (h HashPartitioner) Partition(key uint64) int {
	return int(((key * 0x9E3779B97F4A7C15) >> 32) % uint64(h.N))
}

// FuncPartitioner adapts a key→partition function, for range partitioning
// over domain-specific key encodings (TPC-C partitions every
// warehouse-keyed table by the warehouse id packed into the key).
type FuncPartitioner struct {
	N  int
	Fn func(key uint64) int
}

// NumPartitions implements Partitioner.
func (f FuncPartitioner) NumPartitions() int { return f.N }

// Partition implements Partitioner.
func (f FuncPartitioner) Partition(key uint64) int { return f.Fn(key) }

// Partition is one horizontal shard of a Table: it owns its own primary
// hash index, row count and insert path, so partitions never share a
// mutable structure — loading and indexing scale with the partition count
// and a partition is the natural unit of multi-node placement.
type Partition struct {
	id    int
	index *HashIndex
	count atomic.Int64
}

// ID returns the partition's id within its table.
func (p *Partition) ID() int { return p.id }

// Rows returns the partition's row count.
func (p *Partition) Rows() int64 { return p.count.Load() }

// Get returns the row for key, or nil. The caller is responsible for key
// actually routing to this partition.
func (p *Partition) Get(key uint64) *Row { return p.index.Get(key) }

// Range iterates the partition's rows; see HashIndex.Range.
func (p *Partition) Range(fn func(key uint64, r *Row) bool) { p.index.Range(fn) }
