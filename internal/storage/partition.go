package storage

import (
	"fmt"
	"sync/atomic"
)

// Partitioner maps row keys to partition ids. Implementations must be
// pure functions of the key: every key routes to exactly one partition in
// [0, NumPartitions()) for the lifetime of the table. The routing decision
// is consulted on every Get/Insert, so implementations should be a handful
// of arithmetic instructions and must not allocate.
type Partitioner interface {
	// NumPartitions is the fixed partition count (≥ 1).
	NumPartitions() int
	// Partition returns the partition id for key, in [0, NumPartitions()).
	Partition(key uint64) int
}

// SinglePartition routes every key to partition 0 — the default layout,
// identical to the pre-partitioning flat table.
type SinglePartition struct{}

// NumPartitions implements Partitioner.
func (SinglePartition) NumPartitions() int { return 1 }

// Partition implements Partitioner.
func (SinglePartition) Partition(uint64) int { return 0 }

// HashPartitioner spreads keys uniformly over N partitions by Fibonacci
// hashing (the same multiplier the index shards use), so dense sequential
// keyspaces — YCSB's 0..Rows-1 — balance without coordination.
type HashPartitioner struct{ N int }

// NumPartitions implements Partitioner.
func (h HashPartitioner) NumPartitions() int { return h.N }

// Partition implements Partitioner.
func (h HashPartitioner) Partition(key uint64) int {
	return int(((key * 0x9E3779B97F4A7C15) >> 32) % uint64(h.N))
}

// FuncPartitioner adapts a key→partition function, for range partitioning
// over domain-specific key encodings (TPC-C partitions every
// warehouse-keyed table by the warehouse id packed into the key).
type FuncPartitioner struct {
	N  int
	Fn func(key uint64) int
}

// NumPartitions implements Partitioner.
func (f FuncPartitioner) NumPartitions() int { return f.N }

// Partition implements Partitioner.
func (f FuncPartitioner) Partition(key uint64) int { return f.Fn(key) }

// Partition is one horizontal shard of a Table: it owns its own primary
// hash index, row count and insert path, so partitions never share a
// mutable structure — loading and indexing scale with the partition count
// and a partition is the natural unit of multi-node placement.
type Partition struct {
	id    int
	index *HashIndex
	count atomic.Int64
}

// ID returns the partition's id within its table.
func (p *Partition) ID() int { return p.id }

// Rows returns the partition's row count.
func (p *Partition) Rows() int64 { return p.count.Load() }

// Get returns the row for key, or nil. The caller is responsible for key
// actually routing to this partition.
func (p *Partition) Get(key uint64) *Row { return p.index.Get(key) }

// Range iterates the partition's rows; see HashIndex.Range.
func (p *Partition) Range(fn func(key uint64, r *Row) bool) { p.index.Range(fn) }

// ApplyRecord applies one write of a decoded WAL commit record to this
// partition during recovery: an existing row's image is replaced with the
// logged after-image, a missing row (a replayed transactional insert) is
// created and indexed here. t must be the partition's owning table and
// must route key to this partition — replay hands each partition log's
// records to the partition that produced them, which is what makes
// partition-parallel replay race-free.
//
// ApplyRecord is a recovery-path operation: it assumes no concurrent
// transaction processing on the partition (concurrent replay of OTHER
// partitions is fine; partitions share no mutable state).
func (p *Partition) ApplyRecord(t *Table, key uint64, img []byte) (*Row, error) {
	if pid := t.part.Partition(key); pid != p.id {
		return nil, fmt.Errorf("storage: replay of key %d into partition %d of table %s, but it routes to %d",
			key, p.id, t.Schema.Name, pid)
	}
	if len(img) != t.Schema.RowSize() {
		return nil, fmt.Errorf("storage: replay image size %d != schema size %d for table %s key %d",
			len(img), t.Schema.RowSize(), t.Schema.Name, key)
	}
	// The logged image is the transaction's private after-image; clone it
	// so the row owns its storage (the caller may reuse decode buffers).
	cp := make([]byte, len(img))
	copy(cp, img)
	if r := p.index.Get(key); r != nil {
		r.Entry.Init(cp)
		return r, nil
	}
	// A replayed transactional insert: the normal insert path applies
	// (routing was verified above, so it lands in this partition).
	return t.InsertRow(key, cp)
}
