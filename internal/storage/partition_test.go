package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestHashIndexDeleteReinsert(t *testing.T) {
	idx := NewHashIndex(0)
	const n = 500
	for i := 0; i < n; i++ {
		if !idx.Insert(uint64(i), &Row{Key: uint64(i)}) {
			t.Fatalf("insert %d failed", i)
		}
	}
	// Delete every third key; the rest must survive untouched.
	for i := 0; i < n; i += 3 {
		if !idx.Delete(uint64(i)) {
			t.Fatalf("delete %d reported absent", i)
		}
		if idx.Delete(uint64(i)) {
			t.Fatalf("double delete %d reported present", i)
		}
	}
	for i := 0; i < n; i++ {
		got := idx.Get(uint64(i))
		if i%3 == 0 && got != nil {
			t.Fatalf("deleted key %d still present", i)
		}
		if i%3 != 0 && (got == nil || got.Key != uint64(i)) {
			t.Fatalf("surviving key %d lost", i)
		}
	}
	if idx.Delete(uint64(n + 7)) {
		t.Fatal("delete of never-inserted key reported present")
	}
	// Deleted keys can be re-inserted (fresh rows).
	for i := 0; i < n; i += 3 {
		if !idx.Insert(uint64(i), &Row{Key: uint64(i)}) {
			t.Fatalf("re-insert %d failed", i)
		}
	}
	if idx.Len() != n {
		t.Fatalf("len = %d, want %d", idx.Len(), n)
	}
}

// TestCatalogConcurrentCreateLookup races CreateTable against Table/Tables
// lookups: exactly one creator of each name must win, lookups must only
// ever observe fully registered tables, and the run must be -race clean.
func TestCatalogConcurrentCreateLookup(t *testing.T) {
	c := NewCatalog()
	const names = 8
	const workers = 4
	var wg sync.WaitGroup
	wins := make([][]bool, names)
	for n := range wins {
		wins[n] = make([]bool, workers)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < names; n++ {
				schema := NewSchema(fmt.Sprintf("t%d", n), Column{Name: "v", Type: ColInt64})
				if _, err := c.CreateTable(schema, 4); err == nil {
					wins[n][w] = true
				}
				// Interleaved lookups: either nil (not yet created) or a
				// usable table.
				if tbl := c.Table(fmt.Sprintf("t%d", n)); tbl != nil {
					if tbl.Schema.Name != fmt.Sprintf("t%d", n) {
						t.Errorf("lookup returned table %q for t%d", tbl.Schema.Name, n)
					}
				}
				_ = c.Tables()
			}
		}(w)
	}
	wg.Wait()
	for n := range wins {
		winners := 0
		for _, won := range wins[n] {
			if won {
				winners++
			}
		}
		if winners != 1 {
			t.Fatalf("table t%d created %d times", n, winners)
		}
		if c.Table(fmt.Sprintf("t%d", n)) == nil {
			t.Fatalf("table t%d missing after create race", n)
		}
	}
	if got := len(c.Tables()); got != names {
		t.Fatalf("catalog holds %d tables, want %d", got, names)
	}
}

// TestPartitionerInvariants is the partition property test: for any
// partitioner and any key, the key routes to exactly one partition in
// range, the routing is deterministic, and an inserted row lands in (and
// only in) the partition its key routes to.
func TestPartitionerInvariants(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    Partitioner
	}{
		{"single", SinglePartition{}},
		{"hash2", HashPartitioner{N: 2}},
		{"hash7", HashPartitioner{N: 7}},
		{"range", FuncPartitioner{N: 4, Fn: func(k uint64) int { return int(k>>32) & 3 }}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := func(key uint64) bool {
				pid := tc.p.Partition(key)
				return pid >= 0 && pid < tc.p.NumPartitions() && pid == tc.p.Partition(key)
			}
			if err := quick.Check(f, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPartitionedTableRouting inserts a keyspace into a partitioned table
// and checks: every key is present in exactly the partition it routes to,
// per-partition counts sum to the total, and Range visits each row exactly
// once across partitions.
func TestPartitionedTableRouting(t *testing.T) {
	const parts = 4
	const n = 2000
	tbl := NewPartitionedTable(testSchema(), n, HashPartitioner{N: parts})
	if tbl.NumPartitions() != parts {
		t.Fatalf("partitions = %d", tbl.NumPartitions())
	}
	rng := rand.New(rand.NewSource(1))
	keys := make(map[uint64]bool, n)
	for len(keys) < n {
		keys[rng.Uint64()] = true
	}
	var anyKey uint64
	for k := range keys {
		anyKey = k
		r := tbl.MustInsertRow(k, nil)
		if want := tbl.PartitionFor(k); r.PartitionID != want {
			t.Fatalf("row %d landed in partition %d, routed to %d", k, r.PartitionID, want)
		}
	}
	// Exactly one partition holds each key.
	for k := range keys {
		holders := 0
		for i := 0; i < parts; i++ {
			if tbl.Partition(i).Get(k) != nil {
				holders++
			}
		}
		if holders != 1 {
			t.Fatalf("key %d present in %d partitions", k, holders)
		}
		if tbl.Get(k) == nil {
			t.Fatalf("routed Get(%d) missed", k)
		}
	}
	var sum int64
	for _, c := range tbl.PartitionRows() {
		if c == 0 {
			t.Fatalf("empty partition in a %d-row hash-partitioned table: %v", n, tbl.PartitionRows())
		}
		sum += c
	}
	if sum != n || tbl.Rows() != n {
		t.Fatalf("partition counts sum to %d, Rows()=%d, want %d", sum, tbl.Rows(), n)
	}
	// Range visits each row exactly once.
	visited := make(map[uint64]int, n)
	tbl.Range(func(k uint64, r *Row) bool {
		visited[k]++
		return true
	})
	if len(visited) != n {
		t.Fatalf("Range visited %d distinct keys, want %d", len(visited), n)
	}
	for k, c := range visited {
		if c != 1 {
			t.Fatalf("Range visited key %d %d times", k, c)
		}
		if !keys[k] {
			t.Fatalf("Range invented key %d", k)
		}
	}
	// Early termination still works across the partition seam.
	seen := 0
	tbl.Range(func(uint64, *Row) bool { seen++; return seen < parts+1 })
	if seen != parts+1 {
		t.Fatalf("early-terminated Range visited %d", seen)
	}
	// Duplicate inserts are rejected partition-locally.
	if _, err := tbl.InsertRow(anyKey, nil); err == nil {
		t.Fatal("duplicate insert accepted")
	}
}

// TestTableOutOfRangeRouting pins the contract for keys a misbehaving
// (or domain-bounded) partitioner routes outside [0, NumPartitions()):
// Get misses cleanly, InsertRow errors rather than panicking.
func TestTableOutOfRangeRouting(t *testing.T) {
	// Routes keys ≥ 100 out of range, like a range partitioner probed
	// beyond its domain.
	p := FuncPartitioner{N: 2, Fn: func(k uint64) int { return int(k / 100) }}
	tbl := NewPartitionedTable(testSchema(), 8, p)
	tbl.MustInsertRow(5, nil)
	if tbl.Get(5) == nil {
		t.Fatal("in-range key missing")
	}
	if got := tbl.Get(250); got != nil {
		t.Fatalf("out-of-range Get returned %v, want nil", got)
	}
	if _, err := tbl.InsertRow(250, nil); err == nil {
		t.Fatal("out-of-range insert accepted")
	}
}

// TestSinglePartitionTableMatchesFlat pins the Partitions=1 compatibility
// contract at the storage layer: a default table has one partition, every
// key routes to it, and rows carry PartitionID 0.
func TestSinglePartitionTableMatchesFlat(t *testing.T) {
	tbl := NewTable(testSchema(), 8)
	if tbl.NumPartitions() != 1 {
		t.Fatalf("default table has %d partitions", tbl.NumPartitions())
	}
	for _, k := range []uint64{0, 1, 1 << 40, ^uint64(0)} {
		if tbl.PartitionFor(k) != 0 {
			t.Fatalf("key %d routed to partition %d", k, tbl.PartitionFor(k))
		}
	}
	r := tbl.MustInsertRow(99, nil)
	if r.PartitionID != 0 {
		t.Fatalf("PartitionID = %d", r.PartitionID)
	}
}

// TestApplyRecord covers the recovery apply path: replaying an
// after-image over an existing row replaces its image (with a private
// copy — the caller may reuse decode buffers), replaying a write for a
// missing row re-creates it in the partition, and misrouted keys or
// wrong-sized images fail loudly.
func TestApplyRecord(t *testing.T) {
	tbl := NewPartitionedTable(testSchema(), 16, HashPartitioner{N: 4})
	schema := tbl.Schema
	r := tbl.MustInsertRow(3, nil)
	pid := tbl.PartitionFor(3)
	p := tbl.Partition(pid)

	img := schema.NewRowImage()
	schema.SetInt64(img, 0, 42)
	applied, err := p.ApplyRecord(tbl, 3, img)
	if err != nil {
		t.Fatal(err)
	}
	if applied != r {
		t.Fatal("apply over an existing row must reuse the row")
	}
	img[0] = 0xFF // mutate the source buffer: the row must own a copy
	if got := schema.GetInt64(r.Entry.CurrentData(), 0); got != 42 {
		t.Fatalf("applied image = %d, want 42 (buffer not copied?)", got)
	}

	// Missing row: re-created in this partition with the image.
	key := uint64(0)
	for k := uint64(100); ; k++ {
		if tbl.PartitionFor(k) == pid {
			key = k
			break
		}
	}
	img2 := schema.NewRowImage()
	schema.SetInt64(img2, 0, 7)
	fresh, err := p.ApplyRecord(tbl, key, img2)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.PartitionID != pid || tbl.Get(key) != fresh {
		t.Fatalf("replayed insert not indexed: %+v", fresh)
	}
	if before := p.Rows(); before != 2 {
		t.Fatalf("partition rows = %d, want 2", before)
	}

	// Misrouted key: rejected.
	wrong := uint64(0)
	for k := uint64(200); ; k++ {
		if tbl.PartitionFor(k) != pid {
			wrong = k
			break
		}
	}
	if _, err := p.ApplyRecord(tbl, wrong, schema.NewRowImage()); err == nil {
		t.Fatal("misrouted replay accepted")
	}
	// Wrong image size: rejected.
	if _, err := p.ApplyRecord(tbl, 3, make([]byte, schema.RowSize()+1)); err == nil {
		t.Fatal("wrong-size replay image accepted")
	}
}
