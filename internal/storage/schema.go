// Package storage provides the in-memory row store substrate used by every
// protocol in this repository: fixed-width schemas, rows that embed a lock
// entry and an OCC timestamp word, partitioned tables, sharded hash
// indexes, and a catalog. It mirrors the role DBx1000's row/index/catalog
// layer plays for the paper's evaluation: data is stored row-oriented and
// accessed through hash indexes (paper §5.1).
//
// Every Table is a set of Partitions chosen by a pluggable Partitioner
// (hash by default; range over domain keys for TPC-C). Each partition owns
// its own index, row count and insert path, so loaders parallelize per
// partition and no table-wide structure is shared; a single-partition
// table is bit-for-bit the old flat layout.
package storage

import (
	"encoding/binary"
	"fmt"
)

// ColType is the type of a column.
type ColType uint8

const (
	// ColInt64 is a signed 64-bit integer column.
	ColInt64 ColType = iota
	// ColFloat64 is a 64-bit float column, stored as IEEE-754 bits.
	ColFloat64
	// ColBytes is a fixed-width byte-string column.
	ColBytes
)

// Column describes one fixed-width column.
type Column struct {
	Name string
	Type ColType
	// Size is the width in bytes; ignored (8) for ColInt64/ColFloat64.
	Size int
}

func (c Column) width() int {
	switch c.Type {
	case ColInt64, ColFloat64:
		return 8
	default:
		return c.Size
	}
}

// Schema is a fixed-width row layout with named columns. Fixed widths keep
// rows as flat byte slices, which is what makes Bamboo's pointer-swap
// version install/restore cheap.
type Schema struct {
	Name    string
	Columns []Column
	offsets []int
	size    int
	index   map[string]int
}

// NewSchema builds a schema, computing column offsets.
func NewSchema(name string, cols ...Column) *Schema {
	s := &Schema{Name: name, Columns: cols, index: make(map[string]int, len(cols))}
	off := 0
	for i, c := range cols {
		s.offsets = append(s.offsets, off)
		off += c.width()
		if _, dup := s.index[c.Name]; dup {
			panic(fmt.Sprintf("storage: duplicate column %q in schema %q", c.Name, name))
		}
		s.index[c.Name] = i
	}
	s.size = off
	return s
}

// RowSize returns the fixed row width in bytes.
func (s *Schema) RowSize() int { return s.size }

// NumColumns returns the number of columns.
func (s *Schema) NumColumns() int { return len(s.Columns) }

// ColIndex returns the index of the named column, panicking if absent
// (schemas are static; a miss is a programming error).
func (s *Schema) ColIndex(name string) int {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("storage: no column %q in schema %q", name, s.Name))
	}
	return i
}

// Offset returns the byte offset of column i.
func (s *Schema) Offset(i int) int { return s.offsets[i] }

// ColWidth returns the byte width of column i.
func (s *Schema) ColWidth(i int) int { return s.Columns[i].width() }

// CopyCols copies the columns selected by mask (bit i = column i) from
// src into dst. Both must be full row images of this schema. Used by the
// column-granular installs of the IC3 engine, where writers of disjoint
// columns of one row commute.
func (s *Schema) CopyCols(dst, src []byte, mask uint64) {
	for i := 0; mask != 0 && i < len(s.Columns); i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		mask &^= 1 << uint(i)
		off, w := s.offsets[i], s.Columns[i].width()
		copy(dst[off:off+w], src[off:off+w])
	}
}

// Typed accessors over a raw row image. Bounds are enforced by slicing.

// GetInt64 reads column col from image data.
func (s *Schema) GetInt64(data []byte, col int) int64 {
	off := s.offsets[col]
	return int64(binary.LittleEndian.Uint64(data[off : off+8]))
}

// SetInt64 writes column col in image data.
func (s *Schema) SetInt64(data []byte, col int, v int64) {
	off := s.offsets[col]
	binary.LittleEndian.PutUint64(data[off:off+8], uint64(v))
}

// AddInt64 adds delta to column col in image data and returns the result.
func (s *Schema) AddInt64(data []byte, col int, delta int64) int64 {
	v := s.GetInt64(data, col) + delta
	s.SetInt64(data, col, v)
	return v
}

// GetFloat64 reads a float column (stored as raw bits via math.Float64bits
// performed by the caller; the engine stores cents as int64 where money is
// involved, so float support is minimal).
func (s *Schema) GetFloat64(data []byte, col int) uint64 {
	off := s.offsets[col]
	return binary.LittleEndian.Uint64(data[off : off+8])
}

// SetFloat64 writes raw float bits.
func (s *Schema) SetFloat64(data []byte, col int, bits uint64) {
	off := s.offsets[col]
	binary.LittleEndian.PutUint64(data[off:off+8], bits)
}

// GetBytes returns the byte-string column as a sub-slice of data. The
// caller must not mutate it unless data is a private copy.
func (s *Schema) GetBytes(data []byte, col int) []byte {
	off := s.offsets[col]
	return data[off : off+s.Columns[col].width()]
}

// SetBytes copies v into the byte-string column, zero-padding or
// truncating to the column width.
func (s *Schema) SetBytes(data []byte, col int, v []byte) {
	off := s.offsets[col]
	w := s.Columns[col].width()
	n := copy(data[off:off+w], v)
	for i := off + n; i < off+w; i++ {
		data[i] = 0
	}
}

// NewRowImage allocates a zeroed image for this schema.
func (s *Schema) NewRowImage() []byte { return make([]byte, s.size) }
