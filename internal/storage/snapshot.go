package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Checkpoint snapshot file format (all integers little-endian):
//
//	"BCKP" | u32 version | u32 partition | u64 seq | u32 nTables
//	per table (sorted by name):
//	    u16 nameLen | name | u32 rowSize | u64 nRows
//	    nRows × (u64 key | rowSize image bytes)
//	u32 crc32c(everything before)
//
// The seq stamp is the partition's durable WAL sequence at capture: the
// snapshot plus the log suffix strictly above seq reconstructs the
// partition. Rows are captured through lock.Entry.AppendCommittedData, so
// a fuzzy snapshot taken while writers run never contains a dirty
// (retired-but-uncommitted) image; images committed after seq may slip
// in, which is harmless because replay reapplies idempotent after-images.
//
// The trailing CRC covers the whole file. Loading verifies it before
// applying anything, so a corrupt snapshot is rejected atomically —
// recovery falls back to an older snapshot or a longer replay rather
// than restoring half a checkpoint.

const snapshotMagic = "BCKP"

// SnapshotVersion is the current snapshot format version.
const SnapshotVersion = 1

// ErrSnapshotCorrupt marks a snapshot file recovery must not trust: a
// CRC mismatch, a truncated file, or structure that contradicts the
// catalog. errors.Is-matchable.
var ErrSnapshotCorrupt = errors.New("storage: snapshot corrupt")

// SnapshotPath returns the canonical snapshot file name for partition p
// at WAL sequence seq. The fixed-width sequence keeps lexicographic and
// numeric order identical, like WAL segment names.
func SnapshotPath(dir string, p int, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%03d-%020d.ckpt", p, seq))
}

// SnapshotInfo describes one on-disk snapshot file.
type SnapshotInfo struct {
	Path string
	Seq  uint64
}

// ListSnapshots returns partition p's snapshots in dir, newest (highest
// seq) first — the order recovery tries them in. A missing directory is
// an empty list.
func ListSnapshots(dir string, p int) ([]SnapshotInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("storage: list snapshots: %w", err)
	}
	prefix := fmt.Sprintf("ckpt-%03d-", p)
	var snaps []SnapshotInfo
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		seqStr := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".ckpt")
		seq, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			continue // foreign file; never trust it as a checkpoint
		}
		snaps = append(snaps, SnapshotInfo{Path: filepath.Join(dir, name), Seq: seq})
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Seq > snaps[j].Seq })
	return snaps, nil
}

// AppendSnapshot appends the snapshot encoding of partition p of every
// table in c (stamped with WAL sequence seq) onto buf and returns the
// extended slice — callers reuse the buffer across checkpoint rounds.
// Tables with fewer partitions than p contribute nothing: their rows
// belong to lower-numbered partitions' snapshots.
func AppendSnapshot(buf []byte, c *Catalog, p int, seq uint64) ([]byte, error) {
	start := len(buf)
	buf = append(buf, snapshotMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, SnapshotVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p))
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	names := c.Tables()
	sort.Strings(names)
	nTablesAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	nTables := uint32(0)
	for _, name := range names {
		tbl := c.Table(name)
		if p >= tbl.NumPartitions() {
			continue
		}
		nTables++
		rowSize := tbl.Schema.RowSize()
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
		buf = append(buf, name...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rowSize))
		nRowsAt := len(buf)
		buf = binary.LittleEndian.AppendUint64(buf, 0)
		var nRows uint64
		var err error
		tbl.Partition(p).Range(func(key uint64, r *Row) bool {
			buf = binary.LittleEndian.AppendUint64(buf, key)
			before := len(buf)
			buf = r.Entry.AppendCommittedData(buf)
			if len(buf)-before != rowSize {
				err = fmt.Errorf("storage: snapshot of %s key %d: committed image is %d bytes, schema says %d",
					name, key, len(buf)-before, rowSize)
				return false
			}
			nRows++
			return true
		})
		if err != nil {
			return buf[:start], err
		}
		binary.LittleEndian.PutUint64(buf[nRowsAt:], nRows)
	}
	binary.LittleEndian.PutUint32(buf[nTablesAt:], nTables)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[start:], snapCRC))
	return buf, nil
}

var snapCRC = crc32.MakeTable(crc32.Castagnoli)

// WriteSnapshot captures partition p of every table in c into the
// canonical snapshot file under dir, atomically: the bytes go to a
// temporary file that is fsynced and then renamed into place, with a
// directory sync after, so a crash leaves either the complete snapshot
// or none. buf is an optional reusable buffer; the (possibly grown)
// buffer is returned for the next round.
func WriteSnapshot(dir string, c *Catalog, p int, seq uint64, buf []byte) ([]byte, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return buf, fmt.Errorf("storage: create checkpoint dir: %w", err)
	}
	buf, err := AppendSnapshot(buf[:0], c, p, seq)
	if err != nil {
		return buf, err
	}
	path := SnapshotPath(dir, p, seq)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return buf, fmt.Errorf("storage: create snapshot: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return buf, fmt.Errorf("storage: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return buf, fmt.Errorf("storage: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return buf, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return buf, fmt.Errorf("storage: publish snapshot: %w", err)
	}
	if err := syncSnapshotDir(dir); err != nil {
		return buf, err
	}
	return buf, nil
}

// PruneSnapshots removes all but the keep newest snapshots of partition
// p in dir, returning how many were unlinked.
func PruneSnapshots(dir string, p, keep int) (int, error) {
	snaps, err := ListSnapshots(dir, p)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, sn := range snaps[min(keep, len(snaps)):] {
		if err := os.Remove(sn.Path); err != nil && !os.IsNotExist(err) {
			return removed, err
		}
		removed++
	}
	if removed > 0 {
		if err := syncSnapshotDir(dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// LoadSnapshot verifies and applies the snapshot at path into c,
// returning its partition, sequence stamp and the number of rows
// restored. The whole file is CRC-verified and parsed before the first
// row is applied: a snapshot that fails any check — checksum, structure,
// or disagreement with the catalog's schemas — returns
// ErrSnapshotCorrupt and leaves c untouched, so recovery can fall back
// to an older snapshot or a full replay. Tables must already exist in c
// (recovery loads the schema/base state first); rows are applied through
// Partition.ApplyRecord, the same idempotent insert-or-replace replay
// uses.
func LoadSnapshot(path string, c *Catalog) (partition int, seq uint64, rows int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, 0, err
	}
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("storage: snapshot %s: %w: %s", filepath.Base(path), ErrSnapshotCorrupt, fmt.Sprintf(format, args...))
	}
	if len(data) < len(snapshotMagic)+4+4+8+4+4 {
		return 0, 0, 0, corrupt("file too short (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, snapCRC) != binary.LittleEndian.Uint32(tail) {
		return 0, 0, 0, corrupt("checksum mismatch")
	}
	if string(body[:4]) != snapshotMagic {
		return 0, 0, 0, corrupt("bad magic %q", body[:4])
	}
	off := 4
	version := binary.LittleEndian.Uint32(body[off:])
	off += 4
	if version != SnapshotVersion {
		return 0, 0, 0, corrupt("unsupported version %d", version)
	}
	partition = int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	seq = binary.LittleEndian.Uint64(body[off:])
	off += 8
	nTables := binary.LittleEndian.Uint32(body[off:])
	off += 4

	// Parse every section completely before applying anything: a
	// structural inconsistency must not leave a half-restored catalog.
	type section struct {
		tbl  *Table
		rows []byte // nRows × (key | image)
		n    uint64
		size int
	}
	var secs []section
	for ti := uint32(0); ti < nTables; ti++ {
		if off+2 > len(body) {
			return 0, 0, 0, corrupt("truncated table header")
		}
		nameLen := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if off+nameLen+4+8 > len(body) {
			return 0, 0, 0, corrupt("truncated table header")
		}
		name := string(body[off : off+nameLen])
		off += nameLen
		rowSize := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		nRows := binary.LittleEndian.Uint64(body[off:])
		off += 8
		tbl := c.Table(name)
		if tbl == nil {
			return 0, 0, 0, corrupt("table %q not in catalog", name)
		}
		if tbl.Schema.RowSize() != rowSize {
			return 0, 0, 0, corrupt("table %q row size %d, schema says %d", name, rowSize, tbl.Schema.RowSize())
		}
		if partition >= tbl.NumPartitions() {
			return 0, 0, 0, corrupt("table %q has %d partitions, snapshot is for partition %d",
				name, tbl.NumPartitions(), partition)
		}
		per := uint64(8 + rowSize)
		need := nRows * per
		if per == 0 || uint64(len(body)-off) < need {
			return 0, 0, 0, corrupt("table %q claims %d rows, %d bytes left", name, nRows, len(body)-off)
		}
		secs = append(secs, section{tbl: tbl, rows: body[off : off+int(need)], n: nRows, size: rowSize})
		off += int(need)
	}
	if off != len(body) {
		return 0, 0, 0, corrupt("%d trailing bytes", len(body)-off)
	}

	for _, s := range secs {
		part := s.tbl.Partition(partition)
		rd := s.rows
		for i := uint64(0); i < s.n; i++ {
			key := binary.LittleEndian.Uint64(rd)
			img := rd[8 : 8+s.size]
			rd = rd[8+s.size:]
			if _, err := part.ApplyRecord(s.tbl, key, img); err != nil {
				return 0, 0, 0, corrupt("apply key %d of %s: %v", key, s.tbl.Schema.Name, err)
			}
			rows++
		}
	}
	return partition, seq, rows, nil
}

func syncSnapshotDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := f.Sync()
	cerr := f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
