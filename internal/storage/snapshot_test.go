package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"testing"
)

func snapCatalog(t *testing.T, parts int) *Catalog {
	t.Helper()
	c := NewCatalog()
	sch := NewSchema("acct", Column{Name: "bal", Type: ColInt64})
	tbl := c.MustCreateTablePartitioned(sch, 64, HashPartitioner{N: parts})
	for k := uint64(1); k <= 40; k++ {
		img := make([]byte, sch.RowSize())
		binary.LittleEndian.PutUint64(img, 1000+k)
		tbl.MustInsertRow(k, img)
	}
	return c
}

func catalogRows(c *Catalog, p int) map[uint64]uint64 {
	out := map[uint64]uint64{}
	tbl := c.Table("acct")
	tbl.Partition(p).Range(func(key uint64, r *Row) bool {
		out[key] = binary.LittleEndian.Uint64(r.Entry.CurrentData())
		return true
	})
	return out
}

func TestSnapshotRoundTrip(t *testing.T) {
	const parts = 3
	dir := t.TempDir()
	src := snapCatalog(t, parts)
	var buf []byte
	for p := 0; p < parts; p++ {
		var err error
		buf, err = WriteSnapshot(dir, src, p, uint64(100+p), buf)
		if err != nil {
			t.Fatal(err)
		}
	}
	dst := NewCatalog()
	dst.MustCreateTablePartitioned(NewSchema("acct", Column{Name: "bal", Type: ColInt64}), 64, HashPartitioner{N: parts})
	total := 0
	for p := 0; p < parts; p++ {
		snaps, err := ListSnapshots(dir, p)
		if err != nil || len(snaps) != 1 {
			t.Fatalf("partition %d snapshots: %v %v", p, snaps, err)
		}
		gotP, seq, n, err := LoadSnapshot(snaps[0].Path, dst)
		if err != nil {
			t.Fatal(err)
		}
		if gotP != p || seq != uint64(100+p) {
			t.Fatalf("loaded (p=%d seq=%d), want (%d, %d)", gotP, seq, p, 100+p)
		}
		total += n
	}
	if total != 40 {
		t.Fatalf("restored %d rows, want 40", total)
	}
	for p := 0; p < parts; p++ {
		want, got := catalogRows(src, p), catalogRows(dst, p)
		if len(want) != len(got) {
			t.Fatalf("partition %d: %d rows restored, want %d", p, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("partition %d key %d: %d != %d", p, k, got[k], v)
			}
		}
	}
}

// TestLoadSnapshotRejectsCorruption flips a byte at every offset of a
// valid snapshot: each variant must fail with ErrSnapshotCorrupt and
// leave the catalog's row count untouched (no partial restore).
func TestLoadSnapshotRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	src := snapCatalog(t, 1)
	if _, err := WriteSnapshot(dir, src, 0, 7, nil); err != nil {
		t.Fatal(err)
	}
	path := SnapshotPath(dir, 0, 7)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stride := 1
	if len(clean) > 512 {
		stride = len(clean) / 512
	}
	for off := 0; off < len(clean); off += stride {
		data := append([]byte(nil), clean...)
		data[off] ^= 0x20
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		fresh := NewCatalog()
		fresh.MustCreateTable(NewSchema("acct", Column{Name: "bal", Type: ColInt64}), 64)
		if _, _, _, err := LoadSnapshot(path, fresh); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("flip at %d: err = %v, want ErrSnapshotCorrupt", off, err)
		}
		if n := fresh.Table("acct").Rows(); n != 0 {
			t.Fatalf("flip at %d: %d rows applied from a corrupt snapshot", off, n)
		}
	}
	// Truncations too: a half-written file (no atomic rename completed)
	// must never load.
	for _, cut := range []int{0, 4, len(clean) / 2, len(clean) - 1} {
		if err := os.WriteFile(path, clean[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		fresh := NewCatalog()
		fresh.MustCreateTable(NewSchema("acct", Column{Name: "bal", Type: ColInt64}), 64)
		if _, _, _, err := LoadSnapshot(path, fresh); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("cut at %d: err = %v, want ErrSnapshotCorrupt", cut, err)
		}
	}
}

func TestLoadSnapshotSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	src := snapCatalog(t, 1)
	if _, err := WriteSnapshot(dir, src, 0, 3, nil); err != nil {
		t.Fatal(err)
	}
	// Catalog without the table.
	if _, _, _, err := LoadSnapshot(SnapshotPath(dir, 0, 3), NewCatalog()); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("missing table: %v", err)
	}
	// Catalog with a different row size.
	other := NewCatalog()
	other.MustCreateTable(NewSchema("acct",
		Column{Name: "bal", Type: ColInt64}, Column{Name: "pad", Type: ColInt64}), 4)
	if _, _, _, err := LoadSnapshot(SnapshotPath(dir, 0, 3), other); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("row size mismatch: %v", err)
	}
}

func TestPruneSnapshots(t *testing.T) {
	dir := t.TempDir()
	src := snapCatalog(t, 1)
	var buf []byte
	var err error
	for seq := uint64(1); seq <= 5; seq++ {
		if buf, err = WriteSnapshot(dir, src, 0, seq*10, buf); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := PruneSnapshots(dir, 0, 2)
	if err != nil || removed != 3 {
		t.Fatalf("removed %d (%v), want 3", removed, err)
	}
	snaps, err := ListSnapshots(dir, 0)
	if err != nil || len(snaps) != 2 {
		t.Fatalf("after prune: %v %v", snaps, err)
	}
	if snaps[0].Seq != 50 || snaps[1].Seq != 40 {
		t.Fatalf("kept %v, want seqs 50 and 40 newest-first", snaps)
	}
}

// TestSnapshotSkipsDirtyImages pins the fuzzy-checkpoint contract at the
// storage layer: a retired-but-uncommitted install must not be captured.
func TestSnapshotSkipsDirtyImages(t *testing.T) {
	// Direct Entry manipulation mirrors what the engine does mid-commit;
	// AppendCommittedData (tested in the lock package) resolves to the
	// committed version, so here it suffices to check the snapshot's
	// bytes carry the pre-install image.
	dir := t.TempDir()
	c := snapCatalog(t, 1)
	tbl := c.Table("acct")
	row := tbl.Get(1)
	before := append([]byte(nil), row.Entry.CurrentData()...)
	// Simulate a dirty publish: swap Data while keeping the committed
	// version reachable is the lock package's business; at this layer we
	// only verify the snapshot equals what AppendCommittedData yields.
	if _, err := WriteSnapshot(dir, c, 0, 9, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(SnapshotPath(dir, 0, 9))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, before) {
		t.Fatal("snapshot does not contain the committed image")
	}
}
