package storage

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testSchema() *Schema {
	return NewSchema("t",
		Column{Name: "id", Type: ColInt64},
		Column{Name: "name", Type: ColBytes, Size: 12},
		Column{Name: "score", Type: ColFloat64},
		Column{Name: "pad", Type: ColBytes, Size: 3},
	)
}

func TestSchemaLayout(t *testing.T) {
	s := testSchema()
	if s.RowSize() != 8+12+8+3 {
		t.Fatalf("row size = %d", s.RowSize())
	}
	if s.NumColumns() != 4 {
		t.Fatalf("columns = %d", s.NumColumns())
	}
	if s.Offset(0) != 0 || s.Offset(1) != 8 || s.Offset(2) != 20 || s.Offset(3) != 28 {
		t.Fatalf("offsets: %d %d %d %d", s.Offset(0), s.Offset(1), s.Offset(2), s.Offset(3))
	}
	if s.ColWidth(1) != 12 || s.ColWidth(0) != 8 {
		t.Fatal("widths wrong")
	}
	if s.ColIndex("score") != 2 {
		t.Fatal("ColIndex wrong")
	}
}

func TestSchemaDuplicateColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSchema("bad", Column{Name: "a", Type: ColInt64}, Column{Name: "a", Type: ColInt64})
}

func TestSchemaMissingColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	testSchema().ColIndex("nope")
}

func TestInt64RoundTrip(t *testing.T) {
	s := testSchema()
	f := func(v int64) bool {
		img := s.NewRowImage()
		s.SetInt64(img, 0, v)
		return s.GetInt64(img, 0) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddInt64(t *testing.T) {
	s := testSchema()
	img := s.NewRowImage()
	s.SetInt64(img, 0, 10)
	if got := s.AddInt64(img, 0, -3); got != 7 {
		t.Fatalf("AddInt64 = %d", got)
	}
	if s.GetInt64(img, 0) != 7 {
		t.Fatal("AddInt64 did not persist")
	}
}

func TestBytesPadAndTruncate(t *testing.T) {
	s := testSchema()
	img := s.NewRowImage()
	s.SetBytes(img, 1, []byte("hi"))
	got := s.GetBytes(img, 1)
	if !bytes.Equal(got[:2], []byte("hi")) || got[2] != 0 {
		t.Fatalf("padding wrong: %q", got)
	}
	s.SetBytes(img, 1, []byte("0123456789abcdefgh")) // longer than 12
	if !bytes.Equal(s.GetBytes(img, 1), []byte("0123456789ab")) {
		t.Fatalf("truncation wrong: %q", s.GetBytes(img, 1))
	}
}

func TestCopyCols(t *testing.T) {
	s := testSchema()
	src := s.NewRowImage()
	dst := s.NewRowImage()
	s.SetInt64(src, 0, 42)
	s.SetBytes(src, 1, []byte("abc"))
	s.SetFloat64(src, 2, 7)
	// Copy only columns 0 and 2.
	s.CopyCols(dst, src, 1<<0|1<<2)
	if s.GetInt64(dst, 0) != 42 || s.GetFloat64(dst, 2) != 7 {
		t.Fatal("selected columns not copied")
	}
	if !bytes.Equal(s.GetBytes(dst, 1), make([]byte, 12)) {
		t.Fatal("unselected column was copied")
	}
}

func TestTableInsertGet(t *testing.T) {
	tbl := NewTable(testSchema(), 16)
	img := tbl.Schema.NewRowImage()
	tbl.Schema.SetInt64(img, 0, 5)
	r, err := tbl.InsertRow(100, img)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Get(100) != r || tbl.Get(101) != nil {
		t.Fatal("Get wrong")
	}
	if _, err := tbl.InsertRow(100, nil); err == nil {
		t.Fatal("duplicate insert succeeded")
	}
	if tbl.Rows() != 1 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
	if r.Schema() != tbl.Schema || r.Key != 100 {
		t.Fatal("row back-references wrong")
	}
	if _, err := tbl.InsertRow(101, make([]byte, 3)); err == nil {
		t.Fatal("bad image size accepted")
	}
}

func TestHashIndexBasics(t *testing.T) {
	idx := NewHashIndex(8)
	rows := make([]*Row, 100)
	for i := range rows {
		rows[i] = &Row{Key: uint64(i)}
		if !idx.Insert(uint64(i), rows[i]) {
			t.Fatal("insert failed")
		}
	}
	if idx.Len() != 100 {
		t.Fatalf("len = %d", idx.Len())
	}
	for i := range rows {
		if idx.Get(uint64(i)) != rows[i] {
			t.Fatalf("get %d wrong", i)
		}
	}
	if !idx.Delete(50) || idx.Delete(50) {
		t.Fatal("delete semantics wrong")
	}
	if idx.Get(50) != nil {
		t.Fatal("deleted key still present")
	}
	seen := 0
	idx.Range(func(k uint64, r *Row) bool {
		seen++
		return true
	})
	if seen != 99 {
		t.Fatalf("range visited %d", seen)
	}
	// Early termination.
	seen = 0
	idx.Range(func(k uint64, r *Row) bool {
		seen++
		return false
	})
	if seen != 1 {
		t.Fatalf("range did not stop: %d", seen)
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	tbl, err := c.CreateTable(testSchema(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Table("t") != tbl || c.Table("missing") != nil {
		t.Fatal("lookup wrong")
	}
	if _, err := c.CreateTable(testSchema(), 4); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if names := c.Tables(); len(names) != 1 || names[0] != "t" {
		t.Fatalf("tables = %v", names)
	}
}
