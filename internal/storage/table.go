package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"bamboo/internal/lock"
)

// Row is one tuple. It embeds the protocol state every concurrency-control
// scheme in this repository needs:
//
//   - Entry: the 2PL/Bamboo lock entry (which also owns the data image);
//   - TID:   the Silo timestamp/lock word;
//   - Aux:   per-protocol extension state (IC3 hangs its per-column
//     accessor lists here).
type Row struct {
	Entry lock.Entry
	TID   atomic.Uint64
	Aux   any

	// OCCImage is the row image used by the OCC (Silo) engine, swapped
	// atomically at commit install so readers never need a latch. The
	// lock-based engines use Entry.Data instead.
	OCCImage atomic.Pointer[[]byte]

	// Key is the primary key the row was inserted under.
	Key uint64
	// Table is a back-reference to the owning table (schema access).
	Table *Table
}

// Schema returns the row's schema.
func (r *Row) Schema() *Schema { return r.Table.Schema }

// Table is a collection of rows with a schema and a primary hash index.
type Table struct {
	Schema *Schema
	// Primary is the primary-key hash index.
	Primary *HashIndex
	count   atomic.Int64
}

// NewTable creates an empty table with a primary index sized for the given
// expected row count (0 for default).
func NewTable(schema *Schema, expectRows int) *Table {
	return &Table{Schema: schema, Primary: NewHashIndex(expectRows)}
}

// InsertRow creates a row with the given key and image and registers it in
// the primary index. It returns an error if the key already exists.
func (t *Table) InsertRow(key uint64, image []byte) (*Row, error) {
	if image == nil {
		image = t.Schema.NewRowImage()
	}
	if len(image) != t.Schema.RowSize() {
		return nil, fmt.Errorf("storage: image size %d != schema size %d for table %s",
			len(image), t.Schema.RowSize(), t.Schema.Name)
	}
	r := &Row{Key: key, Table: t}
	r.Entry.Init(image)
	if !t.Primary.Insert(key, r) {
		return nil, fmt.Errorf("storage: duplicate key %d in table %s", key, t.Schema.Name)
	}
	t.count.Add(1)
	return r, nil
}

// MustInsertRow is InsertRow that panics on error; used by loaders.
func (t *Table) MustInsertRow(key uint64, image []byte) *Row {
	r, err := t.InsertRow(key, image)
	if err != nil {
		panic(err)
	}
	return r
}

// Get returns the row for key, or nil.
func (t *Table) Get(key uint64) *Row { return t.Primary.Get(key) }

// Range iterates all rows; see HashIndex.Range.
func (t *Table) Range(fn func(key uint64, r *Row) bool) { t.Primary.Range(fn) }

// Rows returns the number of rows.
func (t *Table) Rows() int64 { return t.count.Load() }

// HashIndex is a sharded hash index mapping uint64 keys to rows. Shards
// bound latch contention during TPC-C inserts while keeping reads cheap.
type HashIndex struct {
	shards [indexShards]indexShard
}

const indexShards = 64

type indexShard struct {
	mu sync.RWMutex
	m  map[uint64]*Row
}

// NewHashIndex creates an index sized for the expected number of keys.
func NewHashIndex(expect int) *HashIndex {
	idx := &HashIndex{}
	per := expect/indexShards + 1
	for i := range idx.shards {
		idx.shards[i].m = make(map[uint64]*Row, per)
	}
	return idx
}

func (idx *HashIndex) shard(key uint64) *indexShard {
	// Fibonacci hashing spreads sequential keys across shards.
	return &idx.shards[(key*0x9E3779B97F4A7C15)>>58&(indexShards-1)]
}

// Get returns the row for key, or nil.
func (idx *HashIndex) Get(key uint64) *Row {
	s := idx.shard(key)
	s.mu.RLock()
	r := s.m[key]
	s.mu.RUnlock()
	return r
}

// Insert adds key→row, returning false if the key already exists.
func (idx *HashIndex) Insert(key uint64, r *Row) bool {
	s := idx.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.m[key]; dup {
		return false
	}
	s.m[key] = r
	return true
}

// Delete removes key, reporting whether it was present.
func (idx *HashIndex) Delete(key uint64) bool {
	s := idx.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; !ok {
		return false
	}
	delete(s.m, key)
	return true
}

// Range calls fn for every (key, row) pair until fn returns false. The
// iteration order is unspecified. Concurrent inserts may or may not be
// observed; intended for loaders, checkers and statistics.
func (idx *HashIndex) Range(fn func(key uint64, r *Row) bool) {
	for i := range idx.shards {
		s := &idx.shards[i]
		s.mu.RLock()
		for k, r := range s.m {
			if !fn(k, r) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

// Len returns the number of indexed keys.
func (idx *HashIndex) Len() int {
	n := 0
	for i := range idx.shards {
		s := &idx.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Catalog is a named collection of tables.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{tables: make(map[string]*Table)} }

// CreateTable creates and registers a table.
func (c *Catalog) CreateTable(schema *Schema, expectRows int) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[schema.Name]; dup {
		return nil, fmt.Errorf("storage: table %q already exists", schema.Name)
	}
	t := NewTable(schema, expectRows)
	c.tables[schema.Name] = t
	return t, nil
}

// MustCreateTable is CreateTable that panics on error.
func (c *Catalog) MustCreateTable(schema *Schema, expectRows int) *Table {
	t, err := c.CreateTable(schema, expectRows)
	if err != nil {
		panic(err)
	}
	return t
}

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tables[name]
}

// Tables returns the table names in the catalog.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	return names
}
