package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"bamboo/internal/lock"
)

// Row is one tuple. It embeds the protocol state every concurrency-control
// scheme in this repository needs:
//
//   - Entry: the 2PL/Bamboo lock entry (which also owns the data image);
//   - TID:   the Silo timestamp/lock word;
//   - Aux:   per-protocol extension state (IC3 hangs its per-column
//     accessor lists here).
type Row struct {
	Entry lock.Entry
	TID   atomic.Uint64
	Aux   any

	// OCCImage is the row image used by the OCC (Silo) engine, swapped
	// atomically at commit install so readers never need a latch. The
	// lock-based engines use Entry.Data instead.
	OCCImage atomic.Pointer[[]byte]

	// Versions is the MVCC version chain: committed images stamped with
	// their commit timestamp, newest first, resolved latch-free by
	// snapshot readers. Maintained only on tables with versioning enabled
	// (Catalog.SetMVCC); otherwise stays the empty zero value.
	Versions VersionChain

	// Key is the primary key the row was inserted under.
	Key uint64
	// PartitionID is the id of the partition the row lives in — the seam
	// multi-node routing and per-partition telemetry key off.
	PartitionID int
	// Table is a back-reference to the owning table (schema access).
	Table *Table
}

// Schema returns the row's schema.
func (r *Row) Schema() *Schema { return r.Table.Schema }

// Table is a collection of rows with a schema, stored as a set of
// Partitions chosen by a Partitioner. Every partition owns its own primary
// index, row count and insert path; the table is only the router. A
// single-partition table (the default) behaves exactly like the old flat
// table.
type Table struct {
	Schema *Schema
	part   Partitioner
	parts  []*Partition
	// mvcc, set at creation from the owning catalog, makes inserts seed
	// each row's version chain so snapshot readers can see it.
	mvcc bool
}

// NewTable creates an empty single-partition table with a primary index
// sized for the given expected row count (0 for default).
func NewTable(schema *Schema, expectRows int) *Table {
	return NewPartitionedTable(schema, expectRows, SinglePartition{})
}

// NewPartitionedTable creates an empty table whose rows are split across
// p.NumPartitions() partitions by p; expectRows sizes the per-partition
// indexes in aggregate.
func NewPartitionedTable(schema *Schema, expectRows int, p Partitioner) *Table {
	if p == nil {
		p = SinglePartition{}
	}
	n := p.NumPartitions()
	if n < 1 {
		panic(fmt.Sprintf("storage: partitioner for table %s has %d partitions", schema.Name, n))
	}
	t := &Table{Schema: schema, part: p, parts: make([]*Partition, n)}
	per := expectRows / n
	for i := range t.parts {
		t.parts[i] = &Partition{id: i, index: NewHashIndex(per)}
	}
	return t
}

// NumPartitions returns the table's partition count.
func (t *Table) NumPartitions() int { return len(t.parts) }

// Partition returns partition i.
func (t *Table) Partition(i int) *Partition { return t.parts[i] }

// PartitionFor returns the partition id key routes to.
func (t *Table) PartitionFor(key uint64) int { return t.part.Partition(key) }

// InsertRow creates a row with the given key and image and registers it in
// its partition's primary index. It returns an error if the key already
// exists. Inserts into distinct partitions share no mutable state, which
// is what makes partition-parallel loading embarrassingly parallel.
func (t *Table) InsertRow(key uint64, image []byte) (*Row, error) {
	if image == nil {
		image = t.Schema.NewRowImage()
	}
	if len(image) != t.Schema.RowSize() {
		return nil, fmt.Errorf("storage: image size %d != schema size %d for table %s",
			len(image), t.Schema.RowSize(), t.Schema.Name)
	}
	pid := t.part.Partition(key)
	if pid < 0 || pid >= len(t.parts) {
		return nil, fmt.Errorf("storage: key %d routed to partition %d of %d in table %s",
			key, pid, len(t.parts), t.Schema.Name)
	}
	p := t.parts[pid]
	r := &Row{Key: key, PartitionID: pid, Table: t}
	r.Entry.Init(image)
	if t.mvcc {
		// Seeded at ts 0: a loaded row is visible to every snapshot.
		r.Versions.Seed(0, image)
	}
	if !p.index.Insert(key, r) {
		return nil, fmt.Errorf("storage: duplicate key %d in table %s", key, t.Schema.Name)
	}
	p.count.Add(1)
	return r, nil
}

// InsertRowAt is InsertRow for commit-time inserts on a versioned table:
// the new row's version chain is seeded at commit timestamp ts, so
// snapshots older than the inserting transaction do not see it. On a
// non-versioned table it behaves exactly like InsertRow.
func (t *Table) InsertRowAt(key uint64, image []byte, ts uint64) (*Row, error) {
	if image == nil {
		image = t.Schema.NewRowImage()
	}
	if len(image) != t.Schema.RowSize() {
		return nil, fmt.Errorf("storage: image size %d != schema size %d for table %s",
			len(image), t.Schema.RowSize(), t.Schema.Name)
	}
	pid := t.part.Partition(key)
	if pid < 0 || pid >= len(t.parts) {
		return nil, fmt.Errorf("storage: key %d routed to partition %d of %d in table %s",
			key, pid, len(t.parts), t.Schema.Name)
	}
	p := t.parts[pid]
	r := &Row{Key: key, PartitionID: pid, Table: t}
	r.Entry.Init(image)
	if t.mvcc {
		r.Versions.Seed(ts, image)
	}
	if !p.index.Insert(key, r) {
		return nil, fmt.Errorf("storage: duplicate key %d in table %s", key, t.Schema.Name)
	}
	p.count.Add(1)
	return r, nil
}

// MVCC reports whether the table maintains version chains.
func (t *Table) MVCC() bool { return t.mvcc }

// MustInsertRow is InsertRow that panics on error; used by loaders.
func (t *Table) MustInsertRow(key uint64, image []byte) *Row {
	r, err := t.InsertRow(key, image)
	if err != nil {
		panic(err)
	}
	return r
}

// Get returns the row for key, or nil — including when the partitioner
// routes the key out of range (a probe for a key outside the partitioned
// domain is a miss, not a crash; inserts of such keys fail loudly).
func (t *Table) Get(key uint64) *Row {
	pid := t.part.Partition(key)
	if pid < 0 || pid >= len(t.parts) {
		return nil
	}
	return t.parts[pid].index.Get(key)
}

// Range iterates all rows across every partition in partition-id order;
// each row is visited exactly once. Within a partition the order is the
// index's (unspecified); see HashIndex.Range.
func (t *Table) Range(fn func(key uint64, r *Row) bool) {
	for _, p := range t.parts {
		stopped := false
		p.index.Range(func(k uint64, r *Row) bool {
			if !fn(k, r) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}

// Rows returns the number of rows across all partitions.
func (t *Table) Rows() int64 {
	var n int64
	for _, p := range t.parts {
		n += p.count.Load()
	}
	return n
}

// PartitionRows returns the per-partition row counts (load-skew
// telemetry).
func (t *Table) PartitionRows() []int64 {
	counts := make([]int64, len(t.parts))
	for i, p := range t.parts {
		counts[i] = p.count.Load()
	}
	return counts
}

// HashIndex is a sharded hash index mapping uint64 keys to rows. Shards
// bound latch contention during TPC-C inserts while keeping reads cheap.
type HashIndex struct {
	shards [indexShards]indexShard
}

const indexShards = 64

type indexShard struct {
	mu sync.RWMutex
	m  map[uint64]*Row
}

// NewHashIndex creates an index sized for the expected number of keys.
func NewHashIndex(expect int) *HashIndex {
	idx := &HashIndex{}
	per := expect/indexShards + 1
	for i := range idx.shards {
		idx.shards[i].m = make(map[uint64]*Row, per)
	}
	return idx
}

func (idx *HashIndex) shard(key uint64) *indexShard {
	// Fibonacci hashing spreads sequential keys across shards.
	return &idx.shards[(key*0x9E3779B97F4A7C15)>>58&(indexShards-1)]
}

// Get returns the row for key, or nil.
func (idx *HashIndex) Get(key uint64) *Row {
	s := idx.shard(key)
	s.mu.RLock()
	r := s.m[key]
	s.mu.RUnlock()
	return r
}

// Insert adds key→row, returning false if the key already exists.
func (idx *HashIndex) Insert(key uint64, r *Row) bool {
	s := idx.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.m[key]; dup {
		return false
	}
	s.m[key] = r
	return true
}

// Delete removes key, reporting whether it was present.
func (idx *HashIndex) Delete(key uint64) bool {
	s := idx.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; !ok {
		return false
	}
	delete(s.m, key)
	return true
}

// Range calls fn for every (key, row) pair until fn returns false. The
// iteration order is unspecified. Concurrent inserts may or may not be
// observed; intended for loaders, checkers and statistics.
func (idx *HashIndex) Range(fn func(key uint64, r *Row) bool) {
	for i := range idx.shards {
		s := &idx.shards[i]
		s.mu.RLock()
		for k, r := range s.m {
			if !fn(k, r) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

// Len returns the number of indexed keys.
func (idx *HashIndex) Len() int {
	n := 0
	for i := range idx.shards {
		s := &idx.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Catalog is a named collection of tables.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	// mvcc makes every table created in this catalog maintain version
	// chains (SetMVCC; set before any table exists).
	mvcc bool
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{tables: make(map[string]*Table)} }

// CreateTable creates and registers a single-partition table.
func (c *Catalog) CreateTable(schema *Schema, expectRows int) (*Table, error) {
	return c.CreateTablePartitioned(schema, expectRows, SinglePartition{})
}

// CreateTablePartitioned creates and registers a table partitioned by p
// (nil = single partition). The catalog preserves the partition layout:
// lookups return the same routed table for the table's lifetime.
func (c *Catalog) CreateTablePartitioned(schema *Schema, expectRows int, p Partitioner) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[schema.Name]; dup {
		return nil, fmt.Errorf("storage: table %q already exists", schema.Name)
	}
	t := NewPartitionedTable(schema, expectRows, p)
	t.mvcc = c.mvcc
	c.tables[schema.Name] = t
	return t, nil
}

// SetMVCC makes tables created in this catalog maintain per-row version
// chains (and applies to already-registered tables, for tests). Call
// before loading any data.
func (c *Catalog) SetMVCC(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mvcc = on
	for _, t := range c.tables {
		t.mvcc = on
	}
}

// MustCreateTable is CreateTable that panics on error.
func (c *Catalog) MustCreateTable(schema *Schema, expectRows int) *Table {
	t, err := c.CreateTable(schema, expectRows)
	if err != nil {
		panic(err)
	}
	return t
}

// MustCreateTablePartitioned is CreateTablePartitioned that panics on
// error.
func (c *Catalog) MustCreateTablePartitioned(schema *Schema, expectRows int, p Partitioner) *Table {
	t, err := c.CreateTablePartitioned(schema, expectRows, p)
	if err != nil {
		panic(err)
	}
	return t
}

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tables[name]
}

// AllTables returns the tables in the catalog (unspecified order); the
// version pruner sweeps over this.
func (c *Catalog) AllTables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	return out
}

// Tables returns the table names in the catalog.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	return names
}
