package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"bamboo/internal/stats"
	"bamboo/internal/wal"
)

var update = flag.Bool("update", false, "rewrite the exposition golden file")

// fixedRegistry builds a registry over hand-set counters so the rendered
// exposition is byte-for-byte deterministic: the clock is pinned, and the
// latency observations (50ns) land in an identity bucket of the histogram
// (values below 64ns map to themselves), so quantiles are exact.
func fixedRegistry() *Registry {
	r := NewRegistry()
	at := time.Unix(1700000000, 0)
	r.start = at
	r.now = func() time.Time { return at.Add(90 * time.Second) }

	live := &stats.Live{}
	live.Commits.Store(1200)
	live.Aborts.Store(34)
	live.AbortsBy[1].Store(20) // wound
	live.AbortsBy[2].Store(10) // cascade
	live.AbortsBy[3].Store(4)  // die
	live.Upgrades.Store(77)
	live.Retires.Store(410)
	live.SnapshotReads.Store(5000)
	live.VersionsPruned.Store(42)
	for i := 0; i < 10; i++ {
		live.Lat.Record(50 * time.Nanosecond)
	}

	g := &stats.Global{}
	g.Wounds.Store(20)
	g.Cascades.Store(10)
	g.ChainMax.Store(3)
	g.VersionsPruned.Store(8)
	g.VersionChainMax.Store(4)
	g.SetHotEntries(12)
	g.RecordPolicyFlips(31)
	g.RecordBatchedGrant(64)
	g.InitPartitions(2)
	for i := 0; i < 30; i++ {
		g.RecordPartAccess(0)
	}
	for i := 0; i < 10; i++ {
		g.RecordPartAccess(1)
	}
	for i := 0; i < 7; i++ {
		g.RecordPartConflict(0)
	}

	r.Attach(&Sources{
		Protocol: "BAMBOO",
		Live:     live,
		Global:   g,
		WAL: func() wal.DeviceStats {
			return wal.DeviceStats{
				Appends: 900, Batches: 120, Bytes: 65536, Syncs: 118,
				SyncTime: 250 * time.Millisecond,
			}
		},
		Lifecycle: func() LifecycleStats {
			return LifecycleStats{
				Checkpoints:    6,
				CheckpointTime: 30 * time.Millisecond,
				Truncations:    2,
				TruncatedBytes: 4096,
				LogLiveBytes:   1024,
			}
		},
	})
	r.mu.Lock()
	r.rates = Rates{IntervalSeconds: 1, CommitsPerSec: 600, AbortsPerSec: 17,
		ConflictsPerSec: 3.5, WALSyncsPerSec: 59, SnapshotReadsPerSec: 2500}
	r.hasRates = true
	r.mu.Unlock()
	return r
}

// TestExpositionGolden pins the Prometheus text exposition byte for byte.
// Regenerate with: go test ./internal/telemetry -run Golden -update
func TestExpositionGolden(t *testing.T) {
	r := fixedRegistry()
	var buf bytes.Buffer
	r.WriteMetrics(&buf)

	const golden = "testdata/metrics.golden"
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition differs from %s (re-run with -update if the change is intended)\n--- got ---\n%s",
			golden, buf.String())
	}
}

// TestExpositionDetached pins the empty-registry rendering: bamboo_up 0,
// uptime, and nothing else a dashboard could mistake for a live DB.
func TestExpositionDetached(t *testing.T) {
	r := fixedRegistry()
	src := r.src.Load()
	r.Detach(src)
	var buf bytes.Buffer
	r.WriteMetrics(&buf)
	out := buf.String()
	if !strings.Contains(out, "bamboo_up 0\n") {
		t.Fatalf("detached registry should report bamboo_up 0:\n%s", out)
	}
	if strings.Contains(out, "bamboo_txn_commits_total") {
		t.Fatalf("detached registry should not report counters:\n%s", out)
	}
}

// TestDetachIsConditional: detaching a stale source must not clear a
// newer one (the bench harness closes point N's DB after point N+1
// attached).
func TestDetachIsConditional(t *testing.T) {
	r := NewRegistry()
	old := &Sources{Live: &stats.Live{}}
	next := &Sources{Live: &stats.Live{}}
	r.Attach(old)
	r.Attach(next)
	r.Detach(old)
	if r.src.Load() != next {
		t.Fatal("Detach(old) cleared the newer source")
	}
	r.Detach(next)
	if r.src.Load() != nil {
		t.Fatal("Detach(next) did not clear the current source")
	}
}

// TestEndpoints drives the HTTP mux: /metrics content type and payload,
// /debug/vars as decodable JSON matching the counters, /healthz.
func TestEndpoints(t *testing.T) {
	r := fixedRegistry()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(path string) (*http.Response, []byte) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	resp, body := get("/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	if !bytes.Contains(body, []byte("bamboo_txn_commits_total 1200")) {
		t.Fatalf("/metrics missing commit counter:\n%s", body)
	}

	_, body = get("/debug/vars")
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v\n%s", err, body)
	}
	if !snap.Up || snap.Commits != 1200 || snap.Protocol != "BAMBOO" {
		t.Fatalf("/debug/vars snapshot mismatch: %+v", snap)
	}
	if snap.AbortsBy["wound"] != 20 {
		t.Fatalf("aborts_by[wound] = %d, want 20", snap.AbortsBy["wound"])
	}
	if len(snap.PartitionConflicts) != 2 || snap.PartitionConflicts[0] != 7 {
		t.Fatalf("partition conflicts = %v", snap.PartitionConflicts)
	}
	if snap.Rates == nil || snap.Rates.CommitsPerSec != 600 {
		t.Fatalf("rates = %+v", snap.Rates)
	}

	_, body = get("/healthz")
	if string(body) != "ok\n" {
		t.Fatalf("/healthz = %q", body)
	}
}

// TestServeBindsAndCloses exercises the real listener path: Serve on a
// free port, scrape over TCP, Close, and confirm the port is released.
func TestServeBindsAndCloses(t *testing.T) {
	r := fixedRegistry()
	addr, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Addr(); got != addr {
		t.Fatalf("Addr() = %q, want %q", got, addr)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, err := r.Serve("127.0.0.1:0"); err == nil {
		t.Fatal("second Serve should fail")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if r.Addr() != "" {
		t.Fatal("Addr() nonempty after Close")
	}
}

// TestCollectorRates drives collect() with an injected clock and checks
// the derived rates, including the reset on source change.
func TestCollectorRates(t *testing.T) {
	r := NewRegistry()
	now := time.Unix(1700000000, 0)
	r.now = func() time.Time { return now }

	live := &stats.Live{}
	g := &stats.Global{}
	g.InitPartitions(1)
	src := &Sources{Protocol: "BAMBOO", Live: live, Global: g}
	r.Attach(src)

	live.Commits.Store(100)
	r.collect() // baseline sample: no rates yet
	if _, ok := snapshotRates(r); ok {
		t.Fatal("rates present after a single sample")
	}

	now = now.Add(2 * time.Second)
	live.Commits.Store(300)
	live.Aborts.Store(10)
	r.collect()
	rates, ok := snapshotRates(r)
	if !ok {
		t.Fatal("no rates after two samples")
	}
	if rates.CommitsPerSec != 100 || rates.AbortsPerSec != 5 {
		t.Fatalf("rates = %+v, want 100 commits/s, 5 aborts/s", rates)
	}

	// A new source resets the baseline: no rates from mixed samples.
	next := &Sources{Protocol: "BAMBOO", Live: &stats.Live{}}
	r.Attach(next)
	now = now.Add(time.Second)
	r.collect()
	if _, ok := snapshotRates(r); ok {
		t.Fatal("rates survived a source change")
	}
}

func snapshotRates(r *Registry) (Rates, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rates, r.hasRates
}
