package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"bamboo/internal/txn"
)

// WriteMetrics renders the current counters in Prometheus text exposition
// format (version 0.0.4). Every series is documented in docs/METRICS.md;
// the golden test in exposition_test.go pins the format.
func (r *Registry) WriteMetrics(w io.Writer) {
	up := 0
	src := r.src.Load()
	if src != nil && src.Live != nil {
		up = 1
	}
	counter(w, "bamboo_up", "Whether a database is attached to this registry.", "gauge", uint64(up))
	gauge(w, "bamboo_uptime_seconds", "Seconds since the registry was created.",
		r.now().Sub(r.start).Seconds())
	if up == 0 {
		return
	}

	fmt.Fprintf(w, "# HELP bamboo_info Build/protocol labels; value is always 1.\n"+
		"# TYPE bamboo_info gauge\nbamboo_info{protocol=%q} 1\n", src.Protocol)

	live := src.Live
	counter(w, "bamboo_txn_commits_total", "Committed transactions.", "counter", live.Commits.Load())
	counter(w, "bamboo_txn_aborts_total", "Aborted transaction attempts.", "counter", live.Aborts.Load())
	header(w, "bamboo_txn_aborts_by_cause_total", "Aborted attempts by cause.", "counter")
	for c := 1; c < len(live.AbortsBy); c++ {
		fmt.Fprintf(w, "bamboo_txn_aborts_by_cause_total{cause=%q} %d\n",
			txn.AbortCause(c).String(), live.AbortsBy[c].Load())
	}
	counter(w, "bamboo_txn_upgrades_total", "Successful SH-to-EX lock promotions.", "counter", live.Upgrades.Load())
	counter(w, "bamboo_txn_retires_total", "Lock retires (writes made visible before commit).", "counter", live.Retires.Load())

	versionsPruned := live.VersionsPruned.Load()
	if g := src.Global; g != nil {
		counter(w, "bamboo_txn_wounds_total", "Transactions wounded by a higher-priority conflicter.", "counter", g.Wounds.Load())
		counter(w, "bamboo_txn_cascades_total", "Cascading-abort events.", "counter", g.Cascades.Load())
		counter(w, "bamboo_txn_cascade_chain_max", "Longest cascading-abort chain observed.", "gauge", g.ChainMax.Load())
		if n := g.NumPartitions(); n > 0 {
			header(w, "bamboo_partition_accesses_total", "Row accesses per storage partition.", "counter")
			for p := 0; p < n; p++ {
				a, _ := g.PartitionAt(p)
				fmt.Fprintf(w, "bamboo_partition_accesses_total{partition=\"%d\"} %d\n", p, a)
			}
			header(w, "bamboo_partition_conflicts_total", "Conflicted (aborted or upgrade-failed) accesses per storage partition.", "counter")
			accTotals := make([]uint64, n)
			for p := 0; p < n; p++ {
				a, c := g.PartitionAt(p)
				accTotals[p] = a
				fmt.Fprintf(w, "bamboo_partition_conflicts_total{partition=\"%d\"} %d\n", p, c)
			}
			gauge(w, "bamboo_partition_skew", "Hottest partition's access share relative to a balanced spread (1 = balanced).",
				skewOf(accTotals))
		}
		versionsPruned += g.VersionsPruned.Load()
		counter(w, "bamboo_version_chain_max", "Longest MVCC version chain observed.", "gauge", g.VersionChainMax.Load())
		counter(w, "bamboo_adaptive_hot_entries", "Entries currently classified hot by the adaptive engine.", "gauge", g.HotEntries.Load())
		counter(w, "bamboo_adaptive_policy_flips_total", "Per-entry retire-policy changes made by the adaptive engine.", "counter", g.PolicyFlips.Load())
		counter(w, "bamboo_adaptive_batched_grants_total", "Readers granted by hot-entry batched grant passes.", "counter", g.BatchedGrants.Load())
	}

	if src.WAL != nil {
		ws := src.WAL()
		counter(w, "bamboo_wal_appends_total", "Commit records appended to the WAL.", "counter", ws.Appends)
		counter(w, "bamboo_wal_batches_total", "WAL device write operations (group commit amortizes these).", "counter", ws.Batches)
		counter(w, "bamboo_wal_bytes_total", "WAL payload bytes appended.", "counter", ws.Bytes)
		counter(w, "bamboo_wal_syncs_total", "WAL device fsyncs.", "counter", ws.Syncs)
		gauge(w, "bamboo_wal_fsync_seconds_total", "Cumulative time spent in WAL fsync.", ws.SyncTime.Seconds())
	}
	if src.Lifecycle != nil {
		ls := src.Lifecycle()
		counter(w, "bamboo_checkpoints_total", "Fuzzy checkpoint snapshots written.", "counter", ls.Checkpoints)
		gauge(w, "bamboo_checkpoint_seconds_total", "Cumulative checkpoint capture+write time.", ls.CheckpointTime.Seconds())
		counter(w, "bamboo_wal_truncations_total", "Truncation passes that unlinked log segments.", "counter", ls.Truncations)
		counter(w, "bamboo_wal_truncated_bytes_total", "Log bytes reclaimed by truncation.", "counter", uint64(ls.TruncatedBytes))
		header(w, "bamboo_log_live_bytes", "Live (not yet truncated) WAL bytes on disk.", "gauge")
		fmt.Fprintf(w, "bamboo_log_live_bytes %d\n", ls.LogLiveBytes)
	}

	counter(w, "bamboo_snapshot_reads_total", "Row reads served by the lock-free MVCC snapshot path.", "counter", live.SnapshotReads.Load())
	counter(w, "bamboo_versions_pruned_total", "MVCC version nodes reclaimed (install-time reuse plus background sweeps).", "counter", versionsPruned)
	counter(w, "bamboo_image_copies_total", "Fresh row-image buffer allocations on the write path.", "counter", live.ImageCopies.Load())
	counter(w, "bamboo_image_pool_recycled_total", "Write copies served from recycled spare image buffers.", "counter", live.ImagePoolRecycled.Load())

	var qv [8]time.Duration
	n := live.Lat.QuantilesInto(quantiles, qv[:len(quantiles)])
	header(w, "bamboo_txn_latency_seconds", "Committed-transaction latency (lock wait + execution + commit wait).", "summary")
	for i, lbl := range quantileLabels {
		fmt.Fprintf(w, "bamboo_txn_latency_seconds{quantile=%q} %s\n", lbl, fmtFloat(qv[i].Seconds()))
	}
	fmt.Fprintf(w, "bamboo_txn_latency_seconds_sum %s\n", fmtFloat(time.Duration(live.Lat.Sum()).Seconds()))
	fmt.Fprintf(w, "bamboo_txn_latency_seconds_count %d\n", n)

	r.mu.Lock()
	rates, ok := r.rates, r.hasRates
	r.mu.Unlock()
	if ok {
		gauge(w, "bamboo_txn_commits_per_second", "Commit rate over the last collector interval.", rates.CommitsPerSec)
		gauge(w, "bamboo_txn_aborts_per_second", "Abort rate over the last collector interval.", rates.AbortsPerSec)
		gauge(w, "bamboo_partition_conflicts_per_second", "Conflict rate over the last collector interval.", rates.ConflictsPerSec)
		gauge(w, "bamboo_wal_syncs_per_second", "WAL fsync rate over the last collector interval.", rates.WALSyncsPerSec)
		gauge(w, "bamboo_snapshot_reads_per_second", "Snapshot-read rate over the last collector interval.", rates.SnapshotReadsPerSec)
	}
}

func header(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func counter(w io.Writer, name, help, typ string, v uint64) {
	header(w, name, help, typ)
	fmt.Fprintf(w, "%s %d\n", name, v)
}

func gauge(w io.Writer, name, help string, v float64) {
	header(w, name, help, "gauge")
	fmt.Fprintf(w, "%s %s\n", name, fmtFloat(v))
}

// fmtFloat renders a float the way Prometheus clients expect: shortest
// round-trip representation, no exponent for typical magnitudes.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
