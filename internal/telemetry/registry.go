package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Registry is the scrape target: it holds at most one attached Sources
// (the current run's counters), the derived per-second rates, and the
// optional HTTP server and collector goroutine. All methods are safe for
// concurrent use. The zero value is not usable; call NewRegistry.
type Registry struct {
	start time.Time
	now   func() time.Time // injectable clock for tests

	src atomic.Pointer[Sources]

	mu       sync.Mutex // guards rates, prev, collector/server state below
	rates    Rates
	hasRates bool
	prev     rateSample
	prevSrc  *Sources
	interval time.Duration
	stopC    chan struct{}
	doneC    chan struct{}
	server   *metricsServer
}

// NewRegistry creates an empty registry. Until Attach it reports
// bamboo_up 0 and zeros.
func NewRegistry() *Registry {
	return &Registry{start: time.Now(), now: time.Now}
}

// Attach points the registry at src's counters; subsequent scrapes read
// them. Attaching replaces any previous source and resets the rate
// baseline. Call it before the run's workers start so no sample mixes two
// runs' counters.
func (r *Registry) Attach(src *Sources) {
	r.src.Store(src)
	r.mu.Lock()
	r.prevSrc = nil
	r.hasRates = false
	r.mu.Unlock()
}

// Detach clears the source, but only if src is still the attached one —
// so a finishing run cannot detach its successor's counters when runs
// overlap on one registry (the bench harness attaches the next point
// before closing the previous DB's registry handle).
func (r *Registry) Detach(src *Sources) {
	if src == nil {
		return
	}
	r.src.CompareAndSwap(src, nil)
}

// Close stops the collector goroutine and the HTTP server (if running).
// The registry remains scrapeable via Handler afterwards.
func (r *Registry) Close() error {
	r.mu.Lock()
	stop, done := r.stopC, r.doneC
	r.stopC, r.doneC = nil, nil
	srv := r.server
	r.server = nil
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	if srv != nil {
		return srv.close()
	}
	return nil
}

// DefaultCollectInterval is the collector tick used when StartCollector
// (or Serve) is given a non-positive interval.
const DefaultCollectInterval = time.Second

// Rates are the most recent collector-derived per-second deltas —
// computed outside the hot path from two successive counter samples.
type Rates struct {
	// IntervalSeconds is the measured wall time between the two samples.
	IntervalSeconds     float64 `json:"interval_seconds"`
	CommitsPerSec       float64 `json:"commits_per_sec"`
	AbortsPerSec        float64 `json:"aborts_per_sec"`
	ConflictsPerSec     float64 `json:"conflicts_per_sec"`
	WALSyncsPerSec      float64 `json:"wal_syncs_per_sec"`
	SnapshotReadsPerSec float64 `json:"snapshot_reads_per_sec"`
}

// rateSample is one counter reading; the collector keeps the previous one
// to difference against. Plain values, touched only by the collector
// goroutine (prev/prevSrc are additionally guarded by mu because Attach
// resets them).
type rateSample struct {
	at        time.Time
	commits   uint64
	aborts    uint64
	conflicts uint64
	walSyncs  uint64
	snapReads uint64
}

// StartCollector starts the periodic sampler deriving Rates every d
// (non-positive means DefaultCollectInterval). Idempotent; the first call
// wins. The sampling loop performs only atomic loads and mutex-guarded
// stat reads — no allocation — so it may run during alloc-budget
// measurements without skewing them.
func (r *Registry) StartCollector(d time.Duration) {
	if d <= 0 {
		d = DefaultCollectInterval
	}
	r.mu.Lock()
	if r.stopC != nil {
		r.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	r.stopC, r.doneC, r.interval = stop, done, d
	r.mu.Unlock()

	go func() {
		defer close(done)
		t := time.NewTicker(d)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				r.collect()
			}
		}
	}()
}

// collect takes one counter sample and folds it into Rates. A source
// change or a counter going backwards (a new run re-attached the same
// Live) resets the baseline instead of reporting a negative rate.
func (r *Registry) collect() {
	src := r.src.Load()
	if src == nil || src.Live == nil {
		r.mu.Lock()
		r.prevSrc = nil
		r.hasRates = false
		r.mu.Unlock()
		return
	}
	cur := rateSample{
		at:      r.now(),
		commits: src.Live.Commits.Load(),
		aborts:  src.Live.Aborts.Load(),
	}
	if src.Global != nil {
		_, cur.conflicts = src.Global.PartitionTotals()
	}
	if src.WAL != nil {
		cur.walSyncs = src.WAL().Syncs
	}
	cur.snapReads = src.Live.SnapshotReads.Load()

	r.mu.Lock()
	defer r.mu.Unlock()
	prev, ok := r.prev, r.prevSrc == src
	r.prev, r.prevSrc = cur, src
	if !ok || cur.commits < prev.commits || cur.aborts < prev.aborts {
		r.hasRates = false
		return
	}
	dt := cur.at.Sub(prev.at).Seconds()
	if dt <= 0 {
		return
	}
	r.rates = Rates{
		IntervalSeconds:     dt,
		CommitsPerSec:       float64(cur.commits-prev.commits) / dt,
		AbortsPerSec:        float64(cur.aborts-prev.aborts) / dt,
		ConflictsPerSec:     float64(cur.conflicts-prev.conflicts) / dt,
		WALSyncsPerSec:      float64(cur.walSyncs-prev.walSyncs) / dt,
		SnapshotReadsPerSec: float64(cur.snapReads-prev.snapReads) / dt,
	}
	r.hasRates = true
}
