package telemetry

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"time"
)

// metricsServer owns the listener + http.Server pair Serve creates.
type metricsServer struct {
	ln   net.Listener
	srv  *http.Server
	addr string
}

func (s *metricsServer) close() error { return s.srv.Close() }

// Handler returns the endpoint mux:
//
//	/metrics     Prometheus text exposition
//	/debug/vars  the Snapshot as JSON
//	/healthz     "ok"
//
// Usable directly (httptest, embedding in an existing server) without
// Serve.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteMetrics(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	return mux
}

// Serve starts the HTTP endpoint on addr (":0" binds a free port) and
// returns the bound address. It also starts the rate collector at the
// default interval if none is running — a served registry should always
// have fresh rates. Serving twice is an error; Close stops the server.
func (r *Registry) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: r.Handler(), ReadHeaderTimeout: 5 * time.Second}
	s := &metricsServer{ln: ln, srv: srv, addr: ln.Addr().String()}
	r.mu.Lock()
	if r.server != nil {
		r.mu.Unlock()
		ln.Close()
		return "", errAlreadyServing
	}
	r.server = s
	r.mu.Unlock()
	go srv.Serve(ln)
	r.StartCollector(0)
	return s.addr, nil
}

var errAlreadyServing = errors.New("telemetry: registry already serving")

// Addr returns the bound address of a served registry ("" if Serve was
// not called or the server was closed).
func (r *Registry) Addr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.server == nil {
		return ""
	}
	return r.server.addr
}
