// Package telemetry is the live observability layer: a registry that
// snapshots the counters the engine already maintains — transaction
// commits/aborts/upgrades/retires, wounds and cascades, per-partition
// accesses/conflicts/skew, WAL appends/batches/syncs/fsync time,
// checkpoint rounds and live log bytes, MVCC snapshot reads and pruned
// versions, and the commit-latency histogram — and serves them over an
// opt-in HTTP endpoint:
//
//	/metrics     Prometheus text exposition (see docs/METRICS.md)
//	/debug/vars  the same snapshot as JSON (expvar-style)
//	/healthz     liveness probe ("ok")
//
// The collection path is read-only atomic loads against stats.Live /
// stats.Global mirrors plus the already-synchronized WAL and checkpoint
// accessors, so a scrape never takes a lock a worker holds and never
// perturbs the zero-allocation hot path. The optional periodic collector
// (StartCollector) samples the counters on a ticker and derives
// per-second rates outside the hot path; its sampling loop does not
// allocate, so it can run during alloc-budget measurements.
//
// A Registry outlives any one DB: Attach points it at a run's counters,
// Detach (or attaching the next run's sources) ends that; scrapes between
// runs report bamboo_up 0. bamboo-bench uses exactly that shape — one
// process-level registry, re-attached per benchmark point.
package telemetry

import (
	"time"

	"bamboo/internal/stats"
	"bamboo/internal/txn"
	"bamboo/internal/wal"
)

// Sources names the counters one DB exposes. All fields are optional
// except Live; nil funcs report zeros. The registry only ever reads —
// Live and Global via atomic loads, WAL and Lifecycle via accessors that
// are themselves safe for concurrent use.
type Sources struct {
	// Protocol is the display name ("BAMBOO", "Wound-Wait", ...).
	Protocol string
	// Live is the workers' atomic counter mirror (stats.Collector.AttachLive).
	Live *stats.Live
	// Global carries the lock-manager and per-partition counters.
	Global *stats.Global
	// WAL returns the summed durability telemetry of the log devices.
	WAL func() wal.DeviceStats
	// Lifecycle returns checkpoint/truncation telemetry.
	Lifecycle func() LifecycleStats
}

// LifecycleStats is the storage-lifecycle slice of a snapshot (a
// telemetry-local mirror of core.CheckpointStats plus live log bytes,
// kept here so core can depend on telemetry without a cycle).
type LifecycleStats struct {
	Checkpoints    uint64
	CheckpointTime time.Duration
	Truncations    uint64
	TruncatedBytes int64
	LogLiveBytes   int64
}

// quantiles are the summary quantiles /metrics exports, with their label
// strings. Sorted ascending (AtomicHist.QuantilesInto requires it).
var (
	quantiles      = []float64{0.5, 0.9, 0.95, 0.99, 0.999}
	quantileLabels = []string{"0.5", "0.9", "0.95", "0.99", "0.999"}
)

// Snapshot is one point-in-time read of every exported counter, the
// payload of /debug/vars. Counters may advance between field loads; a
// snapshot is a consistent-enough view for operations, not a barrier.
type Snapshot struct {
	// Up reports whether a source is attached; every other field is zero
	// when it is not.
	Up            bool    `json:"up"`
	Protocol      string  `json:"protocol,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`

	Commits         uint64            `json:"commits"`
	Aborts          uint64            `json:"aborts"`
	AbortsBy        map[string]uint64 `json:"aborts_by,omitempty"`
	Upgrades        uint64            `json:"upgrades"`
	Retires         uint64            `json:"retires"`
	Wounds          uint64            `json:"wounds"`
	Cascades        uint64            `json:"cascades"`
	CascadeChainMax uint64            `json:"cascade_chain_max"`

	PartitionAccesses  []uint64 `json:"partition_accesses,omitempty"`
	PartitionConflicts []uint64 `json:"partition_conflicts,omitempty"`
	PartitionSkew      float64  `json:"partition_skew,omitempty"`

	WALAppends     uint64  `json:"wal_appends"`
	WALBatches     uint64  `json:"wal_batches"`
	WALBytes       uint64  `json:"wal_bytes"`
	WALSyncs       uint64  `json:"wal_syncs"`
	WALSyncSeconds float64 `json:"wal_sync_seconds"`

	Checkpoints       uint64  `json:"checkpoints"`
	CheckpointSeconds float64 `json:"checkpoint_seconds"`
	Truncations       uint64  `json:"truncations"`
	TruncatedBytes    int64   `json:"truncated_bytes"`
	LogLiveBytes      int64   `json:"log_live_bytes"`

	SnapshotReads   uint64 `json:"snapshot_reads"`
	VersionsPruned  uint64 `json:"versions_pruned"`
	VersionChainMax uint64 `json:"version_chain_max"`

	ImageCopies       uint64 `json:"image_copies"`
	ImagePoolRecycled uint64 `json:"image_pool_recycled"`

	HotEntries    uint64 `json:"hot_entries"`
	PolicyFlips   uint64 `json:"policy_flips"`
	BatchedGrants uint64 `json:"batched_grants"`

	LatencyCount            uint64             `json:"latency_count"`
	LatencySumSeconds       float64            `json:"latency_sum_seconds"`
	LatencyQuantilesSeconds map[string]float64 `json:"latency_quantiles_seconds,omitempty"`

	Rates *Rates `json:"rates,omitempty"`
}

// Snapshot reads every attached counter once. Allocates (maps, slices);
// meant for scrape handlers and tests, not the hot path.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{UptimeSeconds: r.now().Sub(r.start).Seconds()}
	src := r.src.Load()
	if src == nil || src.Live == nil {
		return s
	}
	s.Up = true
	s.Protocol = src.Protocol

	live := src.Live
	s.Commits = live.Commits.Load()
	s.Aborts = live.Aborts.Load()
	s.AbortsBy = make(map[string]uint64, len(live.AbortsBy))
	for c := range live.AbortsBy {
		if n := live.AbortsBy[c].Load(); n > 0 {
			s.AbortsBy[txn.AbortCause(c).String()] = n
		}
	}
	s.Upgrades = live.Upgrades.Load()
	s.Retires = live.Retires.Load()
	s.SnapshotReads = live.SnapshotReads.Load()
	s.VersionsPruned = live.VersionsPruned.Load()
	s.ImageCopies = live.ImageCopies.Load()
	s.ImagePoolRecycled = live.ImagePoolRecycled.Load()

	if g := src.Global; g != nil {
		s.Wounds = g.Wounds.Load()
		s.Cascades = g.Cascades.Load()
		s.CascadeChainMax = g.ChainMax.Load()
		s.VersionsPruned += g.VersionsPruned.Load()
		s.VersionChainMax = g.VersionChainMax.Load()
		s.HotEntries = g.HotEntries.Load()
		s.PolicyFlips = g.PolicyFlips.Load()
		s.BatchedGrants = g.BatchedGrants.Load()
		s.PartitionAccesses = g.PartitionAccesses()
		s.PartitionConflicts = g.PartitionConflicts()
		s.PartitionSkew = skewOf(s.PartitionAccesses)
	}
	if src.WAL != nil {
		ws := src.WAL()
		s.WALAppends = ws.Appends
		s.WALBatches = ws.Batches
		s.WALBytes = ws.Bytes
		s.WALSyncs = ws.Syncs
		s.WALSyncSeconds = ws.SyncTime.Seconds()
	}
	if src.Lifecycle != nil {
		ls := src.Lifecycle()
		s.Checkpoints = ls.Checkpoints
		s.CheckpointSeconds = ls.CheckpointTime.Seconds()
		s.Truncations = ls.Truncations
		s.TruncatedBytes = ls.TruncatedBytes
		s.LogLiveBytes = ls.LogLiveBytes
	}

	var qv [8]time.Duration
	if n := live.Lat.QuantilesInto(quantiles, qv[:len(quantiles)]); n > 0 {
		s.LatencyCount = n
		s.LatencySumSeconds = time.Duration(live.Lat.Sum()).Seconds()
		s.LatencyQuantilesSeconds = make(map[string]float64, len(quantiles))
		for i, lbl := range quantileLabels {
			s.LatencyQuantilesSeconds[lbl] = qv[i].Seconds()
		}
	}

	r.mu.Lock()
	if r.hasRates {
		rates := r.rates
		s.Rates = &rates
	}
	r.mu.Unlock()
	return s
}

// skewOf is max/mean of the per-partition access counts: 1.0 when
// balanced, NumPartitions when one partition takes everything, 0 when
// there is nothing to measure (same definition as the bench report).
func skewOf(accesses []uint64) float64 {
	if len(accesses) == 0 {
		return 0
	}
	var sum, max uint64
	for _, a := range accesses {
		sum += a
		if a > max {
			max = a
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(max) * float64(len(accesses)) / float64(sum)
}
