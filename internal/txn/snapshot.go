package txn

import (
	"runtime"
	"sync/atomic"
)

// Snapshot coordination for the MVCC read path.
//
// Read-only transactions execute at a snapshot timestamp drawn from the
// same time-sharded TSAlloc space as priority timestamps, with zero lock
// acquisitions. Three parties must agree on what a snapshot may observe:
//
//   - committing writers, which publish their commit timestamp while
//     their versions are being installed (the in-flight window);
//   - snapshot readers, which must not read "above" an in-flight commit
//     (its versions may be half installed across rows);
//   - the version pruner, which reclaims versions superseded below the
//     oldest timestamp any active or future snapshot can observe.
//
// SnapshotTable is the shared state: one padded slot per worker holding
// that worker's in-flight commit timestamp and active snapshot timestamp,
// plus the monotone reclaim watermark. All coordination is a handful of
// uncontended atomic stores per transaction — no locks, no allocation.
//
// # Protocol
//
// A committing writer stores snapPending in its commit slot, draws its
// commit timestamp, publishes it in the slot, installs its versions, and
// clears the slot (EndCommit) only after every version is visible.
//
// A snapshot reader stores snapPending in its snapshot slot, draws a
// fresh candidate timestamp, then scans the commit slots: any in-flight
// commit c ≤ candidate lowers the candidate to c−1 (spinning the couple
// of instructions a slot may be snapPending). The final snapshot is then
// published in the slot. Because the candidate is a fresh clock reading
// and in-flight commits cap it from below only, the snapshot is always ≥
// the reclaim watermark (see AdvanceReclaim) — acquisition never retries.
//
// The pruner draws a fresh candidate, rounds it down to a full clock
// tick (so every timestamp drawn later by anyone strictly exceeds it),
// then scans commit slots first, snapshot slots second — spinning past
// snapPending in both — taking the minimum of (commit−1) and snapshot
// values. The scan-order and pending-spin discipline close the race where
// a reader lowers its snapshot below an in-flight commit the pruner no
// longer sees; see snapshot_test.go for the adversarial interleavings.
const snapPending = ^uint64(0)

// snapSlot is one worker's published snapshot state, padded so
// neighbouring workers' slots do not false-share a cacheline.
type snapSlot struct {
	commit atomic.Uint64 // in-flight commit ts; 0 = none, snapPending = drawing
	snap   atomic.Uint64 // active snapshot ts; 0 = none, snapPending = drawing
	_      [48]byte
}

// SnapshotTable coordinates snapshot timestamps between committing
// writers, snapshot readers and the version pruner. One per DB; workers
// are identified by the same folded index space as TSAlloc (two
// concurrently active sessions must not share a slot).
type SnapshotTable struct {
	slots [TSWorkerSlots]snapSlot
	// maxSlot is the high-water mark of registered slot indexes + 1,
	// bounding every scan to the workers that actually exist.
	maxSlot atomic.Int64
	// reclaim is the monotone watermark: every version superseded by a
	// newer version with ts ≤ reclaim is unreachable by any active or
	// future snapshot and may be reclaimed.
	reclaim atomic.Uint64
}

// NewSnapshotTable returns an empty table.
func NewSnapshotTable() *SnapshotTable { return &SnapshotTable{} }

func (st *SnapshotTable) slot(worker int) *snapSlot {
	return &st.slots[uint64(worker)&(TSWorkerSlots-1)]
}

// Register notes that worker's slot is in use, bounding future scans.
// Called once per session at construction; idempotent.
func (st *SnapshotTable) Register(worker int) {
	idx := int64(uint64(worker)&(TSWorkerSlots-1)) + 1
	for {
		cur := st.maxSlot.Load()
		if idx <= cur || st.maxSlot.CompareAndSwap(cur, idx) {
			return
		}
	}
}

// BeginCommit opens worker's in-flight commit window and returns the
// commit timestamp for the whole transaction. The caller must install
// every version it commits before calling EndCommit.
func (st *SnapshotTable) BeginCommit(worker int, alloc *TSAlloc) uint64 {
	s := st.slot(worker)
	s.commit.Store(snapPending)
	cts := alloc.Next()
	s.commit.Store(cts)
	return cts
}

// EndCommit closes worker's in-flight commit window; every version of the
// commit must be installed first.
func (st *SnapshotTable) EndCommit(worker int) {
	st.slot(worker).commit.Store(0)
}

// AcquireSnapshot assigns worker a snapshot timestamp and publishes it as
// active. The snapshot observes every commit with ts ≤ snapshot and no
// in-flight or future commit; it is always ≥ the reclaim watermark, so a
// version chain always holds a visible version for rows that existed at
// the snapshot. Zero allocations; the caller must EndSnapshot when done.
func (st *SnapshotTable) AcquireSnapshot(worker int, alloc *TSAlloc) uint64 {
	s := st.slot(worker)
	s.snap.Store(snapPending)
	cand := alloc.Next()
	n := int(st.maxSlot.Load())
	for i := 0; i < n; i++ {
		c := st.slots[i].commit.Load()
		for spin := 0; c == snapPending; spin++ {
			if spin > 64 {
				runtime.Gosched()
			}
			c = st.slots[i].commit.Load()
		}
		if c != 0 && c <= cand {
			cand = c - 1
		}
	}
	s.snap.Store(cand)
	return cand
}

// EndSnapshot retires worker's active snapshot.
func (st *SnapshotTable) EndSnapshot(worker int) {
	st.slot(worker).snap.Store(0)
}

// Reclaim returns the current reclaim watermark: committing writers pass
// it to the version-chain install so superseded tails are reclaimed (and
// their nodes reused) on the spot.
func (st *SnapshotTable) Reclaim() uint64 { return st.reclaim.Load() }

// AdvanceReclaim recomputes and publishes the reclaim watermark, drawing
// a fresh upper-bound candidate from alloc (which must own a slot no
// concurrently allocating session uses). It returns the watermark in
// effect after the call. Monotone: the watermark never moves backward.
//
// Safety argument, sketched: the candidate is rounded down to a whole
// clock tick minus one, so every timestamp anyone draws after the
// candidate strictly exceeds it. Commit slots are scanned before
// snapshot slots. A reader active after the publish either (a) had
// published its final snapshot before the scan read its slot — the spin
// past snapPending guarantees the scan saw it — so the watermark is ≤
// that snapshot; or (b) drew its candidate after the scan's candidate,
// in which case its fresh draw exceeds the candidate, and any in-flight
// commit c that lowers it to c−1 was either seen by the commit-slot pass
// (watermark ≤ c−1) or begun after the candidate draw (c−1 ≥ candidate).
// Either way every active and future snapshot is ≥ the watermark.
func (st *SnapshotTable) AdvanceReclaim(alloc *TSAlloc) uint64 {
	raw := alloc.Next()
	cand := (raw >> tsWorkerBits << tsWorkerBits) - 1
	n := int(st.maxSlot.Load())
	for i := 0; i < n; i++ {
		s := &st.slots[i]
		c := s.commit.Load()
		for spin := 0; c == snapPending; spin++ {
			if spin > 64 {
				runtime.Gosched()
			}
			c = s.commit.Load()
		}
		if c != 0 && c-1 < cand {
			cand = c - 1
		}
	}
	for i := 0; i < n; i++ {
		s := &st.slots[i]
		sn := s.snap.Load()
		for spin := 0; sn == snapPending; spin++ {
			if spin > 64 {
				runtime.Gosched()
			}
			sn = s.snap.Load()
		}
		if sn != 0 && sn < cand {
			cand = sn
		}
	}
	for {
		cur := st.reclaim.Load()
		if cand <= cur {
			return cur
		}
		if st.reclaim.CompareAndSwap(cur, cand) {
			return cand
		}
	}
}
