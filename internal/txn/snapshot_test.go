package txn

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSnapshotSeesCompletedCommit: a snapshot drawn after a commit window
// closes must observe that commit (snap ≥ cts).
func TestSnapshotSeesCompletedCommit(t *testing.T) {
	st := NewSnapshotTable()
	st.Register(0)
	st.Register(1)
	w := NewTSAlloc(0)
	r := NewTSAlloc(1)

	cts := st.BeginCommit(0, w)
	st.EndCommit(0)
	snap := st.AcquireSnapshot(1, r)
	defer st.EndSnapshot(1)
	if snap < cts {
		t.Fatalf("snapshot %d below completed commit %d", snap, cts)
	}
}

// TestSnapshotExcludesInFlightCommit: a snapshot drawn while a commit
// window is open must land strictly below the in-flight commit timestamp,
// because that commit's versions may be half installed across rows.
func TestSnapshotExcludesInFlightCommit(t *testing.T) {
	st := NewSnapshotTable()
	st.Register(0)
	st.Register(1)
	w := NewTSAlloc(0)
	r := NewTSAlloc(1)

	cts := st.BeginCommit(0, w)
	snap := st.AcquireSnapshot(1, r)
	st.EndSnapshot(1)
	st.EndCommit(0)
	if snap >= cts {
		t.Fatalf("snapshot %d does not exclude in-flight commit %d", snap, cts)
	}
}

// TestReclaimMonotone: AdvanceReclaim never moves the watermark backward.
func TestReclaimMonotone(t *testing.T) {
	st := NewSnapshotTable()
	st.Register(0)
	a := NewTSAlloc(0)
	var last uint64
	for i := 0; i < 100; i++ {
		w := st.AdvanceReclaim(a)
		if w < last {
			t.Fatalf("watermark went backward: %d after %d", w, last)
		}
		last = w
	}
	if last == 0 {
		t.Fatal("watermark never advanced")
	}
}

// TestReclaimBoundedByActiveSnapshot: while a snapshot is held, the
// watermark must not pass it, no matter how many advances run.
func TestReclaimBoundedByActiveSnapshot(t *testing.T) {
	st := NewSnapshotTable()
	st.Register(0)
	st.Register(1)
	r := NewTSAlloc(0)
	p := NewTSAlloc(1)

	snap := st.AcquireSnapshot(0, r)
	for i := 0; i < 50; i++ {
		if w := st.AdvanceReclaim(p); w > snap {
			t.Fatalf("watermark %d passed active snapshot %d", w, snap)
		}
		time.Sleep(50 * time.Microsecond)
	}
	st.EndSnapshot(0)

	// With the snapshot retired the watermark must eventually pass it.
	deadline := time.Now().Add(2 * time.Second)
	for st.AdvanceReclaim(p) <= snap {
		if time.Now().After(deadline) {
			t.Fatal("watermark never advanced past a retired snapshot")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSnapshotReclaimStress is the adversarial interleaving test for the
// three-party protocol: concurrent committing writers, snapshot readers
// and a watermark-advancing pruner. The invariant under test is the one
// reclamation depends on — while a reader holds a snapshot, the reclaim
// watermark never exceeds it (a violated watermark would let the pruner
// reclaim a version the reader is about to read). Run with -race.
func TestSnapshotReclaimStress(t *testing.T) {
	st := NewSnapshotTable()
	const writers, readers = 3, 3
	prunerSlot := writers + readers
	for i := 0; i <= prunerSlot; i++ {
		st.Register(i)
	}

	var (
		stop      atomic.Bool
		violation atomic.Value // string
		wg        sync.WaitGroup
	)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			alloc := NewTSAlloc(worker)
			for !stop.Load() {
				st.BeginCommit(worker, alloc)
				runtime.Gosched() // widen the in-flight window
				st.EndCommit(worker)
			}
		}(i)
	}
	for i := writers; i < writers+readers; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			alloc := NewTSAlloc(worker)
			for !stop.Load() {
				snap := st.AcquireSnapshot(worker, alloc)
				for k := 0; k < 4; k++ {
					if w := st.Reclaim(); w > snap {
						violation.Store("watermark passed active snapshot")
						stop.Store(true)
					}
					runtime.Gosched()
				}
				st.EndSnapshot(worker)
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		alloc := NewTSAlloc(prunerSlot)
		for !stop.Load() {
			st.AdvanceReclaim(alloc)
		}
	}()

	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if v := violation.Load(); v != nil {
		t.Fatal(v)
	}
}
