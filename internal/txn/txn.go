// Package txn defines the transaction identity and synchronization state
// shared by every concurrency-control protocol in this repository.
//
// A Txn carries three pieces of protocol-visible state:
//
//   - a priority timestamp used by the Wound-Wait / Wait-Die deadlock
//     prevention rules (smaller timestamp = higher priority, paper §2.1);
//   - the commit_semaphore introduced by Bamboo (paper §3.2.1), counting
//     the number of unresolved dirty-read dependencies;
//   - an atomic lifecycle state used to implement wounds (set_abort in the
//     paper) without races against the commit point.
//
// The package deliberately knows nothing about rows, locks or logging so
// that the lock manager, the Bamboo executor and the OCC/IC3 baselines can
// all share it without import cycles.
package txn

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TSUnassigned is the sentinel timestamp of a transaction that has not yet
// been assigned a priority. With dynamic timestamp assignment (paper §3.5,
// Optimization 4) transactions start unassigned and receive a timestamp on
// their first conflict.
const TSUnassigned uint64 = 0

// State is the lifecycle state of a transaction attempt.
//
// The state machine is:
//
//	Running ──CommitCAS──▶ Committing ──▶ Committed
//	   │
//	   └──Wound/Die/SelfAbort──▶ Aborting ──▶ Aborted
//
// Both transitions out of Running are compare-and-swap so that a wound
// racing with the commit point resolves deterministically: once a
// transaction has won the CAS into Committing it is past its commit point
// (paper Definition 1) and subsequent wounds are no-ops; conversely a
// transaction that has been wounded can never enter Committing.
type State int32

const (
	// StateRunning is the normal executing state.
	StateRunning State = iota
	// StateCommitting means the transaction passed its commit check
	// (commit_semaphore == 0 and not wounded) and is writing its log
	// record. It can no longer be aborted by other transactions.
	StateCommitting
	// StateCommitted is terminal.
	StateCommitted
	// StateAborting means some party (a wound, a cascading abort, or the
	// transaction itself) has decided this attempt must abort; the owning
	// worker will observe the state and roll back.
	StateAborting
	// StateAborted is terminal for this attempt. The worker typically
	// resets the transaction and retries.
	StateAborted
)

// String implements fmt.Stringer for diagnostics.
func (s State) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateCommitting:
		return "committing"
	case StateCommitted:
		return "committed"
	case StateAborting:
		return "aborting"
	case StateAborted:
		return "aborted"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// AbortCause records why a transaction attempt aborted. It feeds the
// abort-rate breakdowns reported in the paper's runtime-analysis figures.
type AbortCause int32

const (
	// CauseNone means the attempt did not abort.
	CauseNone AbortCause = iota
	// CauseWound: aborted by a higher-priority transaction to prevent
	// deadlock (Wound-Wait rule; paper §4.1 case 1).
	CauseWound
	// CauseCascade: aborted because a transaction whose dirty data this
	// transaction read aborted (paper §4.1 case 2).
	CauseCascade
	// CauseDie: self-abort on conflict under Wait-Die or No-Wait.
	CauseDie
	// CauseUser: user/logic-initiated abort, e.g. the 1% of TPC-C
	// new-order transactions with an invalid item (paper §4.1 case 3).
	CauseUser
	// CauseValidation: OCC (Silo) read-set validation failure, or IC3
	// optimistic piece validation failure.
	CauseValidation
)

// String implements fmt.Stringer.
func (c AbortCause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseWound:
		return "wound"
	case CauseCascade:
		return "cascade"
	case CauseDie:
		return "die"
	case CauseUser:
		return "user"
	case CauseValidation:
		return "validation"
	default:
		return fmt.Sprintf("cause(%d)", int32(c))
	}
}

// Sharded timestamp allocation. Priority timestamps feed the Wound-Wait
// and Wait-Die rules, whose behavior depends on the order being a good
// proxy for arrival order: a transaction with an anomalously small
// timestamp wounds every hotspot holder it meets. That rules out the
// classic "per-worker blocks claimed off a global counter" sharding — a
// worker draining a low block outranks everything another worker starts
// for the whole block, which measurably turns a two-worker hotspot into a
// perpetual wound storm (~48% aborts where a global counter gives ~0%).
//
// TSAlloc therefore shards by *time*, not by counter range: a timestamp
// is the worker-private monotonic-clock reading shifted left, with the
// worker id in the low bits for uniqueness. No shared cacheline is ever
// touched, cross-worker order tracks real arrival order within clock
// resolution (ties broken by worker id), and the wound-ordering
// invariants survive: timestamps are unique (distinct low bits per
// worker, monotone per worker), retried transactions keep their original
// timestamp (starvation freedom, paper §2.1), and under DynamicTS the
// assignment still happens at first conflict, so assignment order still
// approximates conflict order as Algorithm 3 intends.
const (
	tsWorkerBits = 10
	// TSWorkerSlots is the number of distinct worker ids the sharded
	// allocator can disambiguate; at most this many sessions may allocate
	// timestamps concurrently against one lock manager.
	TSWorkerSlots = 1 << tsWorkerBits
)

// tsEpoch anchors the monotonic clock; only differences matter.
var tsEpoch = time.Now()

// TSAlloc hands out priority timestamps for one worker without touching
// any shared state.
//
// A TSAlloc is owned by one worker but must tolerate cross-worker Next
// calls: under dynamic timestamp assignment (Algorithm 3) the lock
// manager assigns timestamps to *other* workers' transactions inside its
// critical sections, through each transaction's attached allocator. A
// mutex (virtually uncontended — the owner is spinning or running user
// code at that point, not allocating) keeps that safe.
type TSAlloc struct {
	mu   sync.Mutex
	last uint64
}

// NewTSAlloc returns the timestamp allocator for the given worker index.
// Indexes are folded into TSWorkerSlots slots; two *concurrently
// allocating* sessions of one manager must not share a slot or uniqueness
// is no longer guaranteed.
func NewTSAlloc(worker int) *TSAlloc {
	return &TSAlloc{last: uint64(worker) & (TSWorkerSlots - 1)}
}

// Next returns the next timestamp: strictly increasing per worker, unique
// across workers, never TSUnassigned, and globally ordered by allocation
// time within clock resolution.
func (a *TSAlloc) Next() uint64 {
	a.mu.Lock()
	ts := uint64(time.Since(tsEpoch))<<tsWorkerBits | a.last&(TSWorkerSlots-1)
	if ts <= a.last {
		// Clock stall (or first call in the epoch's opening nanoseconds):
		// advance by one full slot stride, preserving the worker bits.
		ts = a.last + TSWorkerSlots
	}
	a.last = ts
	a.mu.Unlock()
	return ts
}

// Txn is the protocol-visible core of a transaction attempt.
//
// A Txn is owned by exactly one worker goroutine, but its fields are read
// and written by other workers through the lock table (wounds, semaphore
// increments), hence the atomics.
type Txn struct {
	// ID uniquely identifies the logical transaction across retries.
	ID uint64
	// Attempt counts retries of the same logical transaction.
	Attempt uint64

	// alloc, when set, overrides the counter passed to
	// AssignTSIfUnassigned so timestamps come from the owning worker's
	// block allocator. Written by the owner between transactions, read by
	// any assigner.
	alloc *TSAlloc

	ts    atomic.Uint64 // priority timestamp; TSUnassigned until assigned
	sem   atomic.Int64  // Bamboo commit_semaphore
	state atomic.Int32  // State
	cause atomic.Int32  // AbortCause of the current attempt
}

// New returns a transaction with the given ID in StateRunning and an
// unassigned timestamp.
func New(id uint64) *Txn {
	t := &Txn{ID: id}
	t.state.Store(int32(StateRunning))
	return t
}

// SetTSAlloc attaches a block allocator; subsequent timestamp assignments
// draw from it instead of the global counter. Must only be called by the
// owning worker while the transaction holds no locks.
func (t *Txn) SetTSAlloc(a *TSAlloc) { t.alloc = a }

// Renew re-initializes the transaction as a brand-new logical transaction
// with the given ID, keeping the attached allocator. It must only be
// called once every request of the previous transaction has been released
// (at that point no other goroutine holds a reference; see the quiescence
// rule on lock.Pool.Put).
func (t *Txn) Renew(id uint64) {
	t.ID = id
	t.Attempt = 0
	t.ts.Store(TSUnassigned)
	t.sem.Store(0)
	t.cause.Store(int32(CauseNone))
	t.state.Store(int32(StateRunning))
}

// Reset prepares the transaction for a retry of the same logical
// transaction. The priority timestamp is preserved: Wound-Wait (and
// therefore Bamboo) relies on restarted transactions keeping their original
// — hence oldest-wins — timestamp for starvation freedom (paper §2.1).
func (t *Txn) Reset() {
	t.Attempt++
	t.sem.Store(0)
	t.cause.Store(int32(CauseNone))
	t.state.Store(int32(StateRunning))
}

// ResetWithNewTS additionally clears the timestamp. Used by protocols or
// tests that want fresh priorities per attempt.
func (t *Txn) ResetWithNewTS() {
	t.Reset()
	t.ts.Store(TSUnassigned)
}

// TS returns the current priority timestamp (TSUnassigned if none).
func (t *Txn) TS() uint64 { return t.ts.Load() }

// SetTS unconditionally sets the timestamp. Used when timestamps are
// assigned at start (the paper's basic protocol).
func (t *Txn) SetTS(ts uint64) { t.ts.Store(ts) }

// AssignTSIfUnassigned implements set_ts_if_unassigned from Algorithm 3:
// a single compare-and-swap that draws the next value — from the
// transaction's block allocator when one is attached, else from counter —
// if and only if the transaction has no timestamp yet. It returns the
// resulting timestamp in either case.
func (t *Txn) AssignTSIfUnassigned(counter *atomic.Uint64) uint64 {
	if ts := t.ts.Load(); ts != TSUnassigned {
		return ts
	}
	var next uint64
	if a := t.alloc; a != nil {
		next = a.Next()
	} else {
		next = counter.Add(1)
	}
	if t.ts.CompareAndSwap(TSUnassigned, next) {
		return next
	}
	return t.ts.Load()
}

// HasTS reports whether a timestamp has been assigned.
func (t *Txn) HasTS() bool { return t.ts.Load() != TSUnassigned }

// Older reports whether t has higher priority than other (strictly smaller
// timestamp). Both transactions must have assigned timestamps; this is
// guaranteed by the lock manager, which assigns timestamps to all parties
// of a conflict before comparing them.
func (t *Txn) Older(other *Txn) bool { return t.ts.Load() < other.ts.Load() }

// State returns the current lifecycle state.
func (t *Txn) State() State { return State(t.state.Load()) }

// SetAbort requests that this transaction abort with the given cause
// (set_abort in Algorithm 2). It has no effect if the transaction has
// already passed its commit point (the wound is then a no-op, which is
// safe: the wounder simply keeps waiting until the target releases its
// locks at commit) or if an abort was already requested.
//
// SetAbort returns true only when this call performed the
// Running→Aborting transition, which makes it usable for wound and
// cascade counting; use WillAbort to test the resulting state.
func (t *Txn) SetAbort(cause AbortCause) bool {
	for {
		s := State(t.state.Load())
		switch s {
		case StateRunning:
			if t.state.CompareAndSwap(int32(StateRunning), int32(StateAborting)) {
				t.cause.CompareAndSwap(int32(CauseNone), int32(cause))
				return true
			}
		case StateAborting, StateAborted, StateCommitting, StateCommitted:
			return false
		}
	}
}

// WillAbort reports whether the current attempt is doomed: an abort has
// been requested or performed.
func (t *Txn) WillAbort() bool { return t.Aborting() }

// Aborting reports whether an abort has been requested or performed for
// the current attempt. The lock-wait and commit-semaphore spin loops poll
// this so that wounds interrupt any wait.
func (t *Txn) Aborting() bool {
	s := State(t.state.Load())
	return s == StateAborting || s == StateAborted
}

// BeginCommit attempts to move the transaction past its commit point
// (Definition 1 in the paper). It fails iff an abort was requested first.
func (t *Txn) BeginCommit() bool {
	return t.state.CompareAndSwap(int32(StateRunning), int32(StateCommitting))
}

// FinishCommit marks the attempt committed. Must follow BeginCommit.
func (t *Txn) FinishCommit() { t.state.Store(int32(StateCommitted)) }

// FinishAbort marks the attempt aborted.
func (t *Txn) FinishAbort() { t.state.Store(int32(StateAborted)) }

// Cause returns why the current attempt aborted (CauseNone if it did not).
func (t *Txn) Cause() AbortCause { return AbortCause(t.cause.Load()) }

// SetCause overrides the abort cause; used for self-aborts where the
// worker, not a remote wound, decides the cause.
func (t *Txn) SetCause(c AbortCause) { t.cause.Store(int32(c)) }

// Commit semaphore operations (paper §3.2.1). The semaphore is incremented
// when the transaction acquires a lock that conflicts with a retired
// transaction and decremented when that dependency clears. The transaction
// may reach its commit point only when the semaphore is zero.

// SemIncr increments the commit semaphore.
func (t *Txn) SemIncr() { t.sem.Add(1) }

// SemDecr decrements the commit semaphore.
func (t *Txn) SemDecr() { t.sem.Add(-1) }

// Sem returns the current commit semaphore value.
func (t *Txn) Sem() int64 { return t.sem.Load() }

// String implements fmt.Stringer for diagnostics.
func (t *Txn) String() string {
	return fmt.Sprintf("txn{id=%d attempt=%d ts=%d state=%s sem=%d}",
		t.ID, t.Attempt, t.TS(), t.State(), t.Sem())
}
