package txn

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestLifecycleCommit(t *testing.T) {
	tx := New(1)
	if tx.State() != StateRunning {
		t.Fatal("not running")
	}
	if !tx.BeginCommit() {
		t.Fatal("BeginCommit failed")
	}
	// Past the commit point wounds are no-ops.
	if tx.SetAbort(CauseWound) {
		t.Fatal("wound succeeded after commit point")
	}
	tx.FinishCommit()
	if tx.State() != StateCommitted {
		t.Fatal("not committed")
	}
}

func TestLifecycleWound(t *testing.T) {
	tx := New(1)
	if !tx.SetAbort(CauseWound) {
		t.Fatal("first wound must transition")
	}
	if tx.SetAbort(CauseCascade) {
		t.Fatal("second abort must not re-transition")
	}
	if tx.Cause() != CauseWound {
		t.Fatalf("cause = %v", tx.Cause())
	}
	if tx.BeginCommit() {
		t.Fatal("commit after wound")
	}
	if !tx.Aborting() || !tx.WillAbort() {
		t.Fatal("not aborting")
	}
	tx.FinishAbort()
	if tx.State() != StateAborted {
		t.Fatal("not aborted")
	}
}

func TestResetKeepsTimestamp(t *testing.T) {
	tx := New(1)
	tx.SetTS(42)
	tx.SetAbort(CauseDie)
	tx.FinishAbort()
	tx.Reset()
	if tx.State() != StateRunning || tx.TS() != 42 || tx.Attempt != 1 {
		t.Fatalf("after reset: %v", tx)
	}
	if tx.Cause() != CauseNone {
		t.Fatal("cause not cleared")
	}
	tx.ResetWithNewTS()
	if tx.HasTS() {
		t.Fatal("ResetWithNewTS kept timestamp")
	}
}

func TestCommitWoundRaceIsExclusive(t *testing.T) {
	// Exactly one of BeginCommit / SetAbort wins, under contention.
	for i := 0; i < 2000; i++ {
		tx := New(uint64(i))
		var commit, wound atomic.Int32
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			if tx.BeginCommit() {
				commit.Add(1)
			}
		}()
		go func() {
			defer wg.Done()
			if tx.SetAbort(CauseWound) {
				wound.Add(1)
			}
		}()
		wg.Wait()
		if commit.Load()+wound.Load() != 1 {
			t.Fatalf("iteration %d: commit=%d wound=%d", i, commit.Load(), wound.Load())
		}
	}
}

func TestDynamicTimestampAssignment(t *testing.T) {
	var counter atomic.Uint64
	tx := New(1)
	if tx.HasTS() {
		t.Fatal("fresh txn has timestamp")
	}
	ts := tx.AssignTSIfUnassigned(&counter)
	if ts != 1 || tx.TS() != 1 {
		t.Fatalf("ts = %d", ts)
	}
	if got := tx.AssignTSIfUnassigned(&counter); got != 1 {
		t.Fatalf("second assignment changed ts: %d", got)
	}
	// Concurrent assignment converges to one value.
	tx2 := New(2)
	var wg sync.WaitGroup
	results := make([]uint64, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = tx2.AssignTSIfUnassigned(&counter)
		}(i)
	}
	wg.Wait()
	for _, r := range results {
		if r != tx2.TS() {
			t.Fatalf("divergent assignment: %v vs %d", results, tx2.TS())
		}
	}
}

func TestOlder(t *testing.T) {
	a, b := New(1), New(2)
	a.SetTS(5)
	b.SetTS(9)
	if !a.Older(b) || b.Older(a) {
		t.Fatal("Older wrong")
	}
}

func TestSemaphore(t *testing.T) {
	tx := New(1)
	tx.SemIncr()
	tx.SemIncr()
	tx.SemDecr()
	if tx.Sem() != 1 {
		t.Fatalf("sem = %d", tx.Sem())
	}
}

func TestStrings(t *testing.T) {
	if StateRunning.String() != "running" || StateAborted.String() != "aborted" {
		t.Fatal("state strings")
	}
	if CauseWound.String() != "wound" || CauseCascade.String() != "cascade" ||
		CauseUser.String() != "user" || CauseValidation.String() != "validation" {
		t.Fatal("cause strings")
	}
	tx := New(7)
	if got := tx.String(); got == "" {
		t.Fatal("empty String()")
	}
}

// TestTSAllocUniqueOrdered checks the sharded allocator's contract:
// never TSUnassigned, strictly increasing per worker, unique across
// workers, and cross-worker order roughly tracking allocation time.
func TestTSAllocUniqueOrdered(t *testing.T) {
	const workers, perWorker = 8, 2000
	results := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a := NewTSAlloc(w)
			out := make([]uint64, perWorker)
			for i := range out {
				out[i] = a.Next()
			}
			results[w] = out
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]int, workers*perWorker)
	for w, out := range results {
		for i, ts := range out {
			if ts == TSUnassigned {
				t.Fatalf("worker %d drew TSUnassigned", w)
			}
			if ts&(TSWorkerSlots-1) != uint64(w) {
				t.Fatalf("worker %d ts %d carries wrong worker bits", w, ts)
			}
			if i > 0 && out[i-1] >= ts {
				t.Fatalf("worker %d not strictly increasing at %d: %d >= %d", w, i, out[i-1], ts)
			}
			if prev, dup := seen[ts]; dup {
				t.Fatalf("timestamp %d drawn by workers %d and %d", ts, prev, w)
			}
			seen[ts] = w
		}
	}
}

// TestTSAllocAttachedOverridesCounter checks that a transaction with an
// attached allocator ignores the fallback counter (the sharded path)
// while an unattached one still uses it.
func TestTSAllocAttachedOverridesCounter(t *testing.T) {
	var counter atomic.Uint64
	with := New(1)
	with.SetTSAlloc(NewTSAlloc(3))
	ts := with.AssignTSIfUnassigned(&counter)
	if ts == TSUnassigned || counter.Load() != 0 {
		t.Fatalf("allocator-backed assignment touched the counter (ts=%d counter=%d)", ts, counter.Load())
	}
	if ts&(TSWorkerSlots-1) != 3 {
		t.Fatalf("ts %d does not carry worker 3's bits", ts)
	}
	without := New(2)
	if got := without.AssignTSIfUnassigned(&counter); got != 1 {
		t.Fatalf("fallback assignment = %d, want 1", got)
	}
}

// TestTSAllocWorkerSlotFolding documents the folding of large worker
// indexes into the slot space.
func TestTSAllocWorkerSlotFolding(t *testing.T) {
	a := NewTSAlloc(TSWorkerSlots + 5)
	if got := a.Next() & (TSWorkerSlots - 1); got != 5 {
		t.Fatalf("worker bits = %d, want 5", got)
	}
}

// TestRenewClearsEverything checks Renew resets a recycled transaction
// to a brand-new logical transaction (fresh ts, sem, cause, state).
func TestRenewClearsEverything(t *testing.T) {
	tx := New(1)
	tx.SetTS(77)
	tx.SemIncr()
	tx.SetAbort(CauseWound)
	tx.FinishAbort()
	tx.Attempt = 9
	tx.Renew(42)
	if tx.ID != 42 || tx.Attempt != 0 || tx.HasTS() || tx.Sem() != 0 ||
		tx.Cause() != CauseNone || tx.State() != StateRunning {
		t.Fatalf("renew left state behind: %+v ts=%d sem=%d cause=%s state=%s",
			tx, tx.TS(), tx.Sem(), tx.Cause(), tx.State())
	}
}
