package txn

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestLifecycleCommit(t *testing.T) {
	tx := New(1)
	if tx.State() != StateRunning {
		t.Fatal("not running")
	}
	if !tx.BeginCommit() {
		t.Fatal("BeginCommit failed")
	}
	// Past the commit point wounds are no-ops.
	if tx.SetAbort(CauseWound) {
		t.Fatal("wound succeeded after commit point")
	}
	tx.FinishCommit()
	if tx.State() != StateCommitted {
		t.Fatal("not committed")
	}
}

func TestLifecycleWound(t *testing.T) {
	tx := New(1)
	if !tx.SetAbort(CauseWound) {
		t.Fatal("first wound must transition")
	}
	if tx.SetAbort(CauseCascade) {
		t.Fatal("second abort must not re-transition")
	}
	if tx.Cause() != CauseWound {
		t.Fatalf("cause = %v", tx.Cause())
	}
	if tx.BeginCommit() {
		t.Fatal("commit after wound")
	}
	if !tx.Aborting() || !tx.WillAbort() {
		t.Fatal("not aborting")
	}
	tx.FinishAbort()
	if tx.State() != StateAborted {
		t.Fatal("not aborted")
	}
}

func TestResetKeepsTimestamp(t *testing.T) {
	tx := New(1)
	tx.SetTS(42)
	tx.SetAbort(CauseDie)
	tx.FinishAbort()
	tx.Reset()
	if tx.State() != StateRunning || tx.TS() != 42 || tx.Attempt != 1 {
		t.Fatalf("after reset: %v", tx)
	}
	if tx.Cause() != CauseNone {
		t.Fatal("cause not cleared")
	}
	tx.ResetWithNewTS()
	if tx.HasTS() {
		t.Fatal("ResetWithNewTS kept timestamp")
	}
}

func TestCommitWoundRaceIsExclusive(t *testing.T) {
	// Exactly one of BeginCommit / SetAbort wins, under contention.
	for i := 0; i < 2000; i++ {
		tx := New(uint64(i))
		var commit, wound atomic.Int32
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			if tx.BeginCommit() {
				commit.Add(1)
			}
		}()
		go func() {
			defer wg.Done()
			if tx.SetAbort(CauseWound) {
				wound.Add(1)
			}
		}()
		wg.Wait()
		if commit.Load()+wound.Load() != 1 {
			t.Fatalf("iteration %d: commit=%d wound=%d", i, commit.Load(), wound.Load())
		}
	}
}

func TestDynamicTimestampAssignment(t *testing.T) {
	var counter atomic.Uint64
	tx := New(1)
	if tx.HasTS() {
		t.Fatal("fresh txn has timestamp")
	}
	ts := tx.AssignTSIfUnassigned(&counter)
	if ts != 1 || tx.TS() != 1 {
		t.Fatalf("ts = %d", ts)
	}
	if got := tx.AssignTSIfUnassigned(&counter); got != 1 {
		t.Fatalf("second assignment changed ts: %d", got)
	}
	// Concurrent assignment converges to one value.
	tx2 := New(2)
	var wg sync.WaitGroup
	results := make([]uint64, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = tx2.AssignTSIfUnassigned(&counter)
		}(i)
	}
	wg.Wait()
	for _, r := range results {
		if r != tx2.TS() {
			t.Fatalf("divergent assignment: %v vs %d", results, tx2.TS())
		}
	}
}

func TestOlder(t *testing.T) {
	a, b := New(1), New(2)
	a.SetTS(5)
	b.SetTS(9)
	if !a.Older(b) || b.Older(a) {
		t.Fatal("Older wrong")
	}
}

func TestSemaphore(t *testing.T) {
	tx := New(1)
	tx.SemIncr()
	tx.SemIncr()
	tx.SemDecr()
	if tx.Sem() != 1 {
		t.Fatalf("sem = %d", tx.Sem())
	}
}

func TestStrings(t *testing.T) {
	if StateRunning.String() != "running" || StateAborted.String() != "aborted" {
		t.Fatal("state strings")
	}
	if CauseWound.String() != "wound" || CauseCascade.String() != "cascade" ||
		CauseUser.String() != "user" || CauseValidation.String() != "validation" {
		t.Fatal("cause strings")
	}
	tx := New(7)
	if got := tx.String(); got == "" {
		t.Fatal("empty String()")
	}
}
