// Package verify checks serializability of committed histories.
//
// Workloads under verification stamp every write with the writing
// transaction's id; readers report the stamp they observed. At commit the
// engine reports, per transaction: the stamps read and the rows written.
// The checker then:
//
//  1. rejects reads of stamps that no committed transaction wrote
//     (catching dirty reads of aborted data leaking through Bamboo's
//     cascading-abort machinery);
//  2. builds the serialization graph with wr, ww and rw edges from the
//     per-row committed version orders;
//  3. rejects cycles (the classical serializability criterion the paper's
//     §3.6 proof is stated against).
package verify

import (
	"fmt"
	"sync"
)

// InitialStamp is the stamp of the pre-loaded version of every row.
const InitialStamp uint64 = 0

// Read is one observed row version.
type Read struct {
	Row   string
	Stamp uint64 // transaction id of the version's writer
}

// History accumulates committed transactions. Safe for concurrent use;
// RecordCommit must be called at the transaction's commit point while it
// still holds its locks (or equivalent), so that per-row arrival order
// equals commit-point order for conflicting writers.
type History struct {
	mu        sync.Mutex
	rows      map[string]*rowHist
	committed map[uint64]bool
	txns      []uint64
	reads     map[uint64][]Read
}

type rowHist struct {
	writers []uint64       // committed writer ids in commit-point order
	pos     map[uint64]int // writer id → index in writers
}

// New returns an empty history.
func New() *History {
	return &History{
		rows:      make(map[string]*rowHist),
		committed: make(map[uint64]bool),
		reads:     make(map[uint64][]Read),
	}
}

// RecordCommit registers a committed transaction with the stamps it read
// and the rows it wrote.
func (h *History) RecordCommit(txnID uint64, reads []Read, wroteRows []string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.committed[txnID] {
		panic(fmt.Sprintf("verify: duplicate commit of txn %d", txnID))
	}
	h.committed[txnID] = true
	h.txns = append(h.txns, txnID)
	h.reads[txnID] = append([]Read(nil), reads...)
	for _, row := range wroteRows {
		rh := h.rows[row]
		if rh == nil {
			rh = &rowHist{pos: make(map[uint64]int)}
			h.rows[row] = rh
		}
		if _, dup := rh.pos[txnID]; dup {
			continue // a transaction writes each row at most once
		}
		rh.pos[txnID] = len(rh.writers)
		rh.writers = append(rh.writers, txnID)
	}
}

// Commits returns the number of committed transactions recorded.
func (h *History) Commits() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.txns)
}

// Check validates the history, returning nil if it is serializable.
func (h *History) Check() error {
	h.mu.Lock()
	defer h.mu.Unlock()

	edges := make(map[uint64]map[uint64]string)
	addEdge := func(from, to uint64, kind, row string) {
		if from == to {
			return
		}
		m := edges[from]
		if m == nil {
			m = make(map[uint64]string)
			edges[from] = m
		}
		if _, dup := m[to]; !dup {
			m[to] = kind + "(" + row + ")"
		}
	}

	// ww edges: consecutive committed writers of each row.
	for row, rh := range h.rows {
		for i := 1; i < len(rh.writers); i++ {
			addEdge(rh.writers[i-1], rh.writers[i], "ww", row)
		}
	}

	// wr and rw edges from reads.
	for reader, rds := range h.reads {
		for _, rd := range rds {
			rh := h.rows[rd.Row]
			if rd.Stamp == InitialStamp {
				// Read the initial version: rw edge to the first writer.
				if rh != nil && len(rh.writers) > 0 {
					addEdge(reader, rh.writers[0], "rw", rd.Row)
				}
				continue
			}
			if !h.committed[rd.Stamp] {
				return fmt.Errorf("verify: txn %d read row %q version written by txn %d, which never committed (dirty read of aborted data)",
					reader, rd.Row, rd.Stamp)
			}
			if rh == nil {
				return fmt.Errorf("verify: txn %d read row %q stamp %d but no committed writer recorded for the row",
					reader, rd.Row, rd.Stamp)
			}
			p, ok := rh.pos[rd.Stamp]
			if !ok {
				return fmt.Errorf("verify: txn %d read row %q stamp %d not in the row's committed version order",
					reader, rd.Row, rd.Stamp)
			}
			addEdge(rd.Stamp, reader, "wr", rd.Row)
			if p+1 < len(rh.writers) {
				addEdge(reader, rh.writers[p+1], "rw", rd.Row)
			}
		}
	}

	// Cycle check via iterative three-color DFS.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[uint64]int, len(h.txns))
	for _, start := range h.txns {
		if color[start] != white {
			continue
		}
		type frame struct {
			node uint64
			next []uint64
		}
		stack := []frame{{start, neighbors(edges, start)}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if len(f.next) == 0 {
				color[f.node] = black
				stack = stack[:len(stack)-1]
				continue
			}
			n := f.next[0]
			f.next = f.next[1:]
			switch color[n] {
			case white:
				color[n] = gray
				stack = append(stack, frame{n, neighbors(edges, n)})
			case gray:
				// Reconstruct the cycle from the gray stack for diagnosis.
				var cyc []uint64
				started := false
				for i := range stack {
					if stack[i].node == n {
						started = true
					}
					if started {
						cyc = append(cyc, stack[i].node)
					}
				}
				cyc = append(cyc, n)
				var withEdges []string
				for i := 0; i+1 < len(cyc); i++ {
					withEdges = append(withEdges,
						fmt.Sprintf("%d -%s-> %d", cyc[i], edges[cyc[i]][cyc[i+1]], cyc[i+1]))
				}
				return fmt.Errorf("verify: serialization graph cycle: %v", withEdges)
			}
		}
	}
	return nil
}

func neighbors(edges map[uint64]map[uint64]string, n uint64) []uint64 {
	m := edges[n]
	if len(m) == 0 {
		return nil
	}
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
