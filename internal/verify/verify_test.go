package verify

import (
	"strings"
	"testing"
)

func TestSerialHistoryPasses(t *testing.T) {
	h := New()
	h.RecordCommit(1, nil, []string{"x"})
	h.RecordCommit(2, []Read{{Row: "x", Stamp: 1}}, []string{"x", "y"})
	h.RecordCommit(3, []Read{{Row: "x", Stamp: 2}, {Row: "y", Stamp: 2}}, nil)
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
	if h.Commits() != 3 {
		t.Fatalf("commits = %d", h.Commits())
	}
}

func TestInitialReadsPass(t *testing.T) {
	h := New()
	h.RecordCommit(1, []Read{{Row: "x", Stamp: InitialStamp}}, nil)
	h.RecordCommit(2, nil, []string{"x"})
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyReadOfAbortedDetected(t *testing.T) {
	h := New()
	// Txn 2 read a version written by txn 99, which never committed.
	h.RecordCommit(2, []Read{{Row: "x", Stamp: 99}}, nil)
	err := h.Check()
	if err == nil || !strings.Contains(err.Error(), "never committed") {
		t.Fatalf("err = %v", err)
	}
}

func TestWrWrCycleDetected(t *testing.T) {
	// T1 read T2's write on x; T2 read T1's write on y.
	h := New()
	h.RecordCommit(1, []Read{{Row: "x", Stamp: 2}}, []string{"y"})
	h.RecordCommit(2, []Read{{Row: "y", Stamp: 1}}, []string{"x"})
	err := h.Check()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteSkewCycleDetected(t *testing.T) {
	// Classic G2: both read the initial versions of each other's write
	// target, then write — rw edges both ways.
	h := New()
	h.RecordCommit(1, []Read{{Row: "x", Stamp: InitialStamp}}, []string{"y"})
	h.RecordCommit(2, []Read{{Row: "y", Stamp: InitialStamp}}, []string{"x"})
	err := h.Check()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v", err)
	}
}

func TestRwWrMixedCycleDetected(t *testing.T) {
	// T1 reads pre-T2 on x (rw T1→T2); T1's write on y is read by...
	// T2 committed before but read T1's y write — wr T1→T2 conflicts:
	// build the inverse: T2 reads y initial, T1 writes y (rw T2→T1);
	// T1 reads x written by T2 (wr T2→T1 is fine); add ww to close:
	// T1 writes x after T2 → ww T2→T1; and T2 reads pre-T1 y → rw T2→T1.
	// For a true cycle: T1 → T2 via reading initial of T2's row.
	h := New()
	h.RecordCommit(1, []Read{{Row: "z", Stamp: InitialStamp}}, []string{"y"})
	h.RecordCommit(2, []Read{{Row: "y", Stamp: 1}}, []string{"z"})
	// T1 before T2 via wr(y); T1 read initial z and T2 wrote z → rw T1→T2.
	// Consistent (T1 then T2): must pass.
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestVersionOrderFromCommitOrder(t *testing.T) {
	h := New()
	h.RecordCommit(10, nil, []string{"x"})
	h.RecordCommit(11, nil, []string{"x"})
	// A reader of version 10 that also wrote x after 11 forms
	// rw(10-reader → 11) plus ww(11 → reader) — a cycle.
	h.RecordCommit(12, []Read{{Row: "x", Stamp: 10}}, []string{"x"})
	err := h.Check()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateCommitPanics(t *testing.T) {
	h := New()
	h.RecordCommit(1, nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.RecordCommit(1, nil, nil)
}
