// Package verifytest provides reusable randomized correctness harnesses
// run against every concurrency-control engine in the repository: a
// serializability check built on internal/verify and a bank-transfer
// conservation check. The engines under test only need to implement
// core.Engine.
package verifytest

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"bamboo/internal/core"
	"bamboo/internal/lock"
	"bamboo/internal/storage"
	"bamboo/internal/verify"
)

// stampSchema is the row layout of the verification table: a writer stamp
// and a payload value.
var stampSchema = func() *storage.Schema {
	return storage.NewSchema("vrows",
		storage.Column{Name: "stamp", Type: storage.ColInt64},
		storage.Column{Name: "val", Type: storage.ColInt64},
	)
}

// Options tunes the randomized serializability run.
type Options struct {
	Rows       int
	Workers    int
	PerWorker  int
	OpsPerTxn  int
	WriteRatio float64 // probability an op is an update
	// RMWRatio is the probability an update is performed un-annotated —
	// a Read of the row followed by an Update, driving the executor's
	// SH→EX upgrade path instead of a declared exclusive acquisition.
	RMWRatio float64
	Seed     int64
}

// DefaultOptions is a contentious configuration that exercises dirty
// reads, cascades and wounds heavily (few rows, many workers).
func DefaultOptions() Options {
	return Options{Rows: 8, Workers: 8, PerWorker: 150, OpsPerTxn: 4, WriteRatio: 0.5, Seed: 1}
}

// BuildDB creates the verification table inside db.
func BuildDB(db *core.DB, rows int) *storage.Table {
	tbl := db.Catalog.MustCreateTable(stampSchema(), rows)
	for k := 0; k < rows; k++ {
		img := tbl.Schema.NewRowImage()
		// stamp 0 = verify.InitialStamp
		tbl.MustInsertRow(uint64(k), img)
	}
	return tbl
}

// RunSerializability drives a random contentious workload through the
// engine and checks the committed history for serializability. The engine
// must have been created over a DB configured with CaptureReads and must
// expose SetOnCommit (i.e. a core.DB-backed engine).
func RunSerializability(t *testing.T, e core.Engine, opts Options) {
	t.Helper()
	db := e.Database()
	tbl := db.Catalog.Table("vrows")
	if tbl == nil {
		tbl = BuildDB(db, opts.Rows)
	}
	schema := tbl.Schema
	stampCol := schema.ColIndex("stamp")
	valCol := schema.ColIndex("val")

	hist := verify.New()
	var stampCtr atomic.Uint64
	stampCtr.Store(1 << 32) // keep stamps disjoint from txn ids

	// Per-attempt stamps: fn bodies draw a fresh stamp every invocation,
	// so an aborted attempt's dirty writes can never be confused with the
	// committed retry's.
	type commitInfo struct {
		ts       uint64
		worker   int
		accesses []core.AccessInfo
	}
	var mu sync.Mutex
	commitLog := make(map[uint64]commitInfo)

	db.SetOnCommit(func(worker int, txnID, ts uint64, accesses []core.AccessInfo, inserts int) {
		var reads []verify.Read
		var wrote []string
		var myStamp uint64
		for _, a := range accesses {
			if a.Mode == lock.EX {
				wrote = append(wrote, a.Table+"/"+itoa(a.Key))
				myStamp = uint64(schema.GetInt64(a.Wrote, stampCol))
				if a.Read != nil {
					reads = append(reads, verify.Read{
						Row:   a.Table + "/" + itoa(a.Key),
						Stamp: uint64(schema.GetInt64(a.Read, stampCol)),
					})
				}
			} else {
				reads = append(reads, verify.Read{
					Row:   a.Table + "/" + itoa(a.Key),
					Stamp: uint64(schema.GetInt64(a.Read, stampCol)),
				})
			}
		}
		id := txnID
		if myStamp != 0 {
			id = myStamp
		}
		mu.Lock()
		commitLog[id] = commitInfo{ts: ts, worker: worker, accesses: accesses}
		mu.Unlock()
		hist.RecordCommit(id, reads, wrote)
	})
	dumpTxn := func(t *testing.T, id uint64) {
		mu.Lock()
		defer mu.Unlock()
		ci, ok := commitLog[id]
		if !ok {
			t.Logf("  txn %d: not in commit log", id)
			return
		}
		t.Logf("  txn %d: ts=%d worker=%d", id, ci.ts, ci.worker)
		for _, a := range ci.accesses {
			var rd, wr int64 = -1, -1
			if a.Read != nil {
				rd = schema.GetInt64(a.Read, stampCol)
			}
			if a.Wrote != nil {
				wr = schema.GetInt64(a.Wrote, stampCol)
			}
			t.Logf("    %s key=%d mode=%v dirty=%v readStamp=%d wroteStamp=%d",
				a.Table, a.Key, a.Mode, a.Dirty, rd, wr)
		}
	}

	gen := func(worker, seq int) core.TxnFunc {
		rng := rand.New(rand.NewSource(opts.Seed + int64(worker)*1e6 + int64(seq)))
		keys := pickDistinct(rng, opts.Rows, opts.OpsPerTxn)
		writes := make([]bool, len(keys))
		rmw := make([]bool, len(keys))
		for i := range keys {
			writes[i] = rng.Float64() < opts.WriteRatio
			rmw[i] = writes[i] && rng.Float64() < opts.RMWRatio
		}
		return func(tx core.Tx) error {
			tx.DeclareOps(len(keys))
			stamp := stampCtr.Add(1)
			for i, k := range keys {
				row := tbl.Get(uint64(k))
				if writes[i] {
					if rmw[i] {
						// Un-annotated read-modify-write: the Update below
						// upgrades the shared lock in place.
						if _, err := tx.Read(row); err != nil {
							return err
						}
					}
					err := tx.Update(row, func(img []byte) {
						schema.SetInt64(img, stampCol, int64(stamp))
						schema.AddInt64(img, valCol, 1)
					})
					if err != nil {
						return err
					}
				} else {
					if _, err := tx.Read(row); err != nil {
						return err
					}
				}
			}
			return nil
		}
	}

	res := core.RunN(e, opts.Workers, opts.PerWorker, gen)
	if res.Err != nil {
		t.Fatalf("%s: run failed: %v", e.Name(), res.Err)
	}
	want := uint64(opts.Workers * opts.PerWorker)
	if res.Report.Commits != want {
		t.Fatalf("%s: commits = %d, want %d", e.Name(), res.Report.Commits, want)
	}
	if hist.Commits() != int(want) {
		t.Fatalf("%s: history has %d commits, want %d", e.Name(), hist.Commits(), want)
	}
	if err := hist.Check(); err != nil {
		for _, id := range extractIDs(err.Error()) {
			dumpTxn(t, id)
		}
		t.Fatalf("%s: %v", e.Name(), err)
	}
	checkEntriesDrained(t, e, tbl, opts.Rows)
}

// RunBankConservation transfers money between accounts concurrently and
// checks the total is conserved — an end-to-end atomicity+isolation check
// that also exercises rollback restore paths.
func RunBankConservation(t *testing.T, e core.Engine, accounts, workers, perWorker int) {
	t.Helper()
	db := e.Database()
	schema := storage.NewSchema("accounts",
		storage.Column{Name: "balance", Type: storage.ColInt64})
	tbl := db.Catalog.MustCreateTable(schema, accounts)
	const initial = 1000
	for k := 0; k < accounts; k++ {
		img := schema.NewRowImage()
		schema.SetInt64(img, 0, initial)
		tbl.MustInsertRow(uint64(k), img)
	}

	gen := func(worker, seq int) core.TxnFunc {
		rng := rand.New(rand.NewSource(int64(worker)*1e6 + int64(seq)))
		from := rng.Intn(accounts)
		to := rng.Intn(accounts - 1)
		if to >= from {
			to++
		}
		amount := int64(rng.Intn(50) + 1)
		return func(tx core.Tx) error {
			tx.DeclareOps(2)
			if err := tx.Update(tbl.Get(uint64(from)), func(img []byte) {
				schema.AddInt64(img, 0, -amount)
			}); err != nil {
				return err
			}
			return tx.Update(tbl.Get(uint64(to)), func(img []byte) {
				schema.AddInt64(img, 0, amount)
			})
		}
	}
	res := core.RunN(e, workers, perWorker, gen)
	if res.Err != nil {
		t.Fatalf("%s: run failed: %v", e.Name(), res.Err)
	}
	// Sum via the partition-aware Range: the conservation total does not
	// depend on iteration order, and Range visits every row exactly once
	// regardless of how the table is partitioned.
	var total int64
	var counted int
	tbl.Range(func(_ uint64, row *storage.Row) bool {
		total += schema.GetInt64(RowImage(row), 0)
		counted++
		return true
	})
	if counted != accounts {
		t.Fatalf("%s: Range visited %d rows, want %d", e.Name(), counted, accounts)
	}
	if want := int64(accounts * initial); total != want {
		t.Fatalf("%s: total balance = %d, want %d (money not conserved)", e.Name(), total, want)
	}
	checkEntriesDrained(t, e, tbl, accounts)
}

// RunSnapshotConsistency is the MVCC snapshot-read oracle: transfer
// writers run through the locking path while read-only transactions sum
// every account at a snapshot timestamp. Because a transfer moves money
// between two rows under one commit timestamp, a snapshot observing a
// transaction-consistent prefix of history sums to exactly the invariant
// at *every* snapshot — a torn read (one leg of a transfer visible, the
// other not) breaks the sum immediately. The engine must be backed by an
// MVCC-enabled DB; the run fails if no read was actually served from the
// snapshot path (the oracle would be vacuous).
func RunSnapshotConsistency(t *testing.T, e core.Engine, accounts, workers, perWorker int) {
	t.Helper()
	db := e.Database()
	schema := storage.NewSchema("accounts",
		storage.Column{Name: "balance", Type: storage.ColInt64})
	tbl := db.Catalog.MustCreateTable(schema, accounts)
	const initial = 1000
	for k := 0; k < accounts; k++ {
		img := schema.NewRowImage()
		schema.SetInt64(img, 0, initial)
		tbl.MustInsertRow(uint64(k), img)
	}
	want := int64(accounts * initial)

	var torn atomic.Int64 // first inconsistent sum observed (0 = none)
	gen := func(worker, seq int) core.TxnFunc {
		if worker%2 == 0 {
			// Writer: a two-account transfer on the locking path.
			rng := rand.New(rand.NewSource(int64(worker)*1e6 + int64(seq)))
			from := rng.Intn(accounts)
			to := rng.Intn(accounts - 1)
			if to >= from {
				to++
			}
			amount := int64(rng.Intn(50) + 1)
			return func(tx core.Tx) error {
				tx.DeclareOps(2)
				if err := tx.Update(tbl.Get(uint64(from)), func(img []byte) {
					schema.AddInt64(img, 0, -amount)
				}); err != nil {
					return err
				}
				return tx.Update(tbl.Get(uint64(to)), func(img []byte) {
					schema.AddInt64(img, 0, amount)
				})
			}
		}
		// Reader: sum every account at one snapshot.
		return func(tx core.Tx) error {
			core.MarkReadOnly(tx)
			tx.DeclareOps(accounts)
			var sum int64
			for k := 0; k < accounts; k++ {
				img, err := tx.Read(tbl.Get(uint64(k)))
				if err != nil {
					return err
				}
				sum += schema.GetInt64(img, 0)
			}
			if sum != want {
				torn.CompareAndSwap(0, sum)
			}
			return nil
		}
	}
	res := core.RunN(e, workers, perWorker, gen)
	if res.Err != nil {
		t.Fatalf("%s: run failed: %v", e.Name(), res.Err)
	}
	if s := torn.Load(); s != 0 {
		t.Fatalf("%s: snapshot read observed a torn total %d, want %d "+
			"(a transfer was half visible — the snapshot is not transaction-consistent)",
			e.Name(), s, want)
	}
	if res.Report.SnapshotReads == 0 {
		t.Fatalf("%s: no reads served from the snapshot path — the oracle ran vacuously", e.Name())
	}
	var total int64
	tbl.Range(func(_ uint64, row *storage.Row) bool {
		total += schema.GetInt64(RowImage(row), 0)
		return true
	})
	if total != want {
		t.Fatalf("%s: final total = %d, want %d (money not conserved)", e.Name(), total, want)
	}
	checkEntriesDrained(t, e, tbl, accounts)
}

// RowImage returns the row's committed image regardless of engine: the
// OCC-published image when present, else the lock entry's image.
func RowImage(row *storage.Row) []byte {
	if p := row.OCCImage.Load(); p != nil {
		return *p
	}
	return row.Entry.CurrentData()
}

func checkEntriesDrained(t *testing.T, e core.Engine, tbl *storage.Table, rows int) {
	t.Helper()
	seen := 0
	tbl.Range(func(k uint64, row *storage.Row) bool {
		seen++
		if ret, own, wait := row.Entry.Snapshot(); ret+own+wait != 0 {
			t.Errorf("%s: row %d entry not drained: retired=%d owners=%d waiters=%d",
				e.Name(), k, ret, own, wait)
		}
		if err := row.Entry.CheckInvariants(); err != nil {
			t.Errorf("%s: row %d: %v", e.Name(), k, err)
		}
		return true
	})
	if seen != rows {
		t.Errorf("%s: Range visited %d rows, want %d", e.Name(), seen, rows)
	}
}

func pickDistinct(rng *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	perm := rng.Perm(n)
	keys := perm[:k]
	return keys
}

// extractIDs pulls the txn ids out of a verify error message for dumping.
func extractIDs(s string) []uint64 {
	var ids []uint64
	seen := map[uint64]bool{}
	cur, in := uint64(0), false
	flush := func() {
		if in && cur > 1<<30 && !seen[cur] {
			seen[cur] = true
			ids = append(ids, cur)
		}
		cur, in = 0, false
	}
	for _, c := range s {
		if c >= '0' && c <= '9' {
			cur = cur*10 + uint64(c-'0')
			in = true
		} else {
			flush()
		}
	}
	flush()
	return ids
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
