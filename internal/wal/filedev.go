package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// FsyncPolicy selects when a FileDevice forces its appends to stable
// storage.
type FsyncPolicy int

const (
	// FsyncNone never syncs: appends go to the OS page cache only. The
	// data survives a process crash (the kernel has it) but not a power
	// loss; the policy isolates the cost of the write path itself.
	FsyncNone FsyncPolicy = iota
	// FsyncBatch syncs once per device write operation — per record
	// without group commit, per epoch batch with it. This is the durable
	// configuration whose cost group commit exists to amortize.
	FsyncBatch
	// FsyncInterval syncs at most once per Interval, piggybacked on the
	// next append after the interval elapses: bounded data loss at a
	// bounded sync rate.
	FsyncInterval
)

// String implements fmt.Stringer.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncNone:
		return "none"
	case FsyncBatch:
		return "batch"
	case FsyncInterval:
		return "interval"
	default:
		return fmt.Sprintf("fsync(%d)", int(p))
	}
}

// ParseFsyncPolicy parses the String form (flag values).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "none", "":
		return FsyncNone, nil
	case "batch":
		return FsyncBatch, nil
	case "interval":
		return FsyncInterval, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want none, batch or interval)", s)
	}
}

// FileDevice is a log device over append-only files, framing records
// exactly like WriterDevice (see frame.go) so Replay reads both. Each
// record (or batch) is written with a single Write call, which means a
// crash leaves at most one torn frame — and only at the tail.
//
// The device runs in one of two layouts:
//
//   - Legacy single file (OpenFileDevice): one O_APPEND file, opened
//     without truncation or scanning — a device pointed at an existing
//     log continues it. A log that may end in a torn frame must be
//     replayed (and truncated to the last complete frame) before reuse.
//     This is the checkpoints-off layout; it is byte-compatible with
//     what every prior benchmark baseline measured.
//
//   - Segments (OpenSegmentedDevice): the log is a chain of files named
//     by the sequence number of their first frame. Appends roll to a
//     fresh segment once the active one crosses the size threshold, and
//     TruncateBelow drops whole prefix segments by unlinking them — log
//     truncation never rewrites bytes. Opening scans only the newest
//     segment, repairing a torn tail in place so the device can append
//     after a crash.
type FileDevice struct {
	policy   FsyncPolicy
	interval time.Duration

	// Segment layout state; zero/nil under the legacy single-file layout.
	dir    string
	part   int
	segMax int64

	mu        sync.Mutex
	f         *os.File
	scratch   []byte // frame assembly buffer, one Write syscall per batch
	lsn       uint64
	segStart  uint64       // sequence of the active segment's first frame
	segBytes  int64        // bytes in the active segment
	liveBytes int64        // bytes across all live segments
	segs      []segmentRef // closed (sealed) segments, oldest first
	stats     DeviceStats
	lastSync  time.Time
	closed    bool
}

type segmentRef struct {
	path     string
	firstSeq uint64
	bytes    int64
}

// DefaultFsyncInterval is the FsyncInterval window used when none is
// configured: without it a zero interval would make every append sync —
// silently measuring the per-batch (worst-case) policy under the
// bounded-loss policy's name.
const DefaultFsyncInterval = time.Millisecond

// DefaultSegmentBytes is the segment size threshold used when a
// segmented device is opened without one. Small enough that truncation
// reclaims space promptly at benchmark write rates, large enough that
// rotation (a close + create + dir sync) stays off the hot path.
const DefaultSegmentBytes = 4 << 20

// OpenFileDevice opens (creating if needed, never truncating) path as a
// legacy single-file log device with the given fsync policy. interval is
// only meaningful for FsyncInterval (≤ 0 falls back to
// DefaultFsyncInterval).
func OpenFileDevice(path string, policy FsyncPolicy, interval time.Duration) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open log: %w", err)
	}
	if policy == FsyncInterval && interval <= 0 {
		interval = DefaultFsyncInterval
	}
	return &FileDevice{f: f, policy: policy, interval: interval, lastSync: time.Now()}, nil
}

// OpenSegmentedDevice opens partition p's segmented log in dir, creating
// the first segment if none exists. An existing chain is continued: the
// newest segment is scanned, a torn tail (crash mid-append) is repaired
// in place by truncating to the last complete frame, and the device
// resumes at the sequence after the last durable frame. A CRC-invalid
// frame anywhere in the newest segment fails the open — that is bit rot,
// and appending past it would bury the evidence. A legacy single-file
// log in the same directory also fails the open: the two layouts do not
// mix, and silently ignoring the old file would drop its records from
// recovery.
func OpenSegmentedDevice(dir string, p int, policy FsyncPolicy, interval time.Duration, segMax int64) (*FileDevice, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create log dir: %w", err)
	}
	if _, err := os.Stat(PartitionLogPath(dir, p)); err == nil {
		return nil, fmt.Errorf("wal: partition %d has a legacy log in %s; segmented and single-file layouts do not mix", p, dir)
	}
	if segMax <= 0 {
		segMax = DefaultSegmentBytes
	}
	if policy == FsyncInterval && interval <= 0 {
		interval = DefaultFsyncInterval
	}
	d := &FileDevice{policy: policy, interval: interval, dir: dir, part: p, segMax: segMax, lastSync: time.Now()}
	segs, err := ListSegments(dir, p)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		f, err := os.OpenFile(SegmentPath(dir, p, 1), os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: create segment: %w", err)
		}
		if err := syncDir(dir); err != nil {
			f.Close()
			return nil, err
		}
		d.f, d.segStart = f, 1
		return d, nil
	}
	newest := segs[len(segs)-1]
	bounds, torn, err := FrameBounds(newest.Path)
	if err != nil {
		return nil, fmt.Errorf("wal: open segment %s: %w", newest.Path, err)
	}
	var valid int64
	if len(bounds) > 0 {
		valid = bounds[len(bounds)-1][1]
	}
	if torn {
		if err := os.Truncate(newest.Path, valid); err != nil {
			return nil, fmt.Errorf("wal: repair torn segment tail: %w", err)
		}
	}
	f, err := os.OpenFile(newest.Path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open segment: %w", err)
	}
	d.f = f
	d.segStart = newest.FirstSeq
	d.segBytes = valid
	d.lsn = newest.FirstSeq - 1 + uint64(len(bounds))
	for _, sg := range segs[:len(segs)-1] {
		d.segs = append(d.segs, segmentRef{path: sg.Path, firstSeq: sg.FirstSeq, bytes: sg.Bytes})
		d.liveBytes += sg.Bytes
	}
	d.liveBytes += valid
	return d, nil
}

// PartitionLogPath returns the canonical file name of partition p's log
// inside dir under the legacy single-file layout; writers
// (OpenPartitionDevices) and recovery agree on it.
func PartitionLogPath(dir string, p int) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%03d.log", p))
}

// OpenPartitionDevices creates dir if needed and opens one legacy
// single-file FileDevice per partition at the canonical paths. On any
// error the already-opened devices are closed.
func OpenPartitionDevices(dir string, n int, policy FsyncPolicy, interval time.Duration) ([]*FileDevice, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create log dir: %w", err)
	}
	devs := make([]*FileDevice, n)
	for p := range devs {
		d, err := OpenFileDevice(PartitionLogPath(dir, p), policy, interval)
		if err != nil {
			for _, o := range devs[:p] {
				o.Close()
			}
			return nil, err
		}
		devs[p] = d
	}
	return devs, nil
}

// OpenPartitionSegmentedDevices opens one segmented FileDevice per
// partition in dir; see OpenSegmentedDevice. On any error the
// already-opened devices are closed.
func OpenPartitionSegmentedDevices(dir string, n int, policy FsyncPolicy, interval time.Duration, segMax int64) ([]*FileDevice, error) {
	devs := make([]*FileDevice, n)
	for p := range devs {
		d, err := OpenSegmentedDevice(dir, p, policy, interval, segMax)
		if err != nil {
			for _, o := range devs[:p] {
				o.Close()
			}
			return nil, err
		}
		devs[p] = d
	}
	return devs, nil
}

// Path returns the file the device currently appends to.
func (d *FileDevice) Path() string { return d.f.Name() }

// Append implements Device.
func (d *FileDevice) Append(rec []byte) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	d.scratch = appendFrame(d.scratch[:0], rec)
	if _, err := d.f.Write(d.scratch); err != nil {
		return 0, err
	}
	d.lsn++
	d.segBytes += int64(len(d.scratch))
	d.liveBytes += int64(len(d.scratch))
	d.stats.Appends++
	d.stats.Batches++
	d.stats.Bytes += uint64(len(rec))
	if err := d.maybeSyncLocked(); err != nil {
		return 0, err
	}
	if err := d.maybeRotateLocked(); err != nil {
		return 0, err
	}
	return d.lsn, nil
}

// AppendBatch implements BatchDevice: every frame of the batch goes out
// in one Write call and — under FsyncBatch — one fsync, which is the
// whole point of group commit on a real device.
func (d *FileDevice) AppendBatch(recs [][]byte) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	d.scratch = d.scratch[:0]
	for _, rec := range recs {
		d.scratch = appendFrame(d.scratch, rec)
		d.stats.Bytes += uint64(len(rec))
	}
	if _, err := d.f.Write(d.scratch); err != nil {
		return 0, err
	}
	d.lsn += uint64(len(recs))
	d.segBytes += int64(len(d.scratch))
	d.liveBytes += int64(len(d.scratch))
	d.stats.Appends += uint64(len(recs))
	d.stats.Batches++
	if err := d.maybeSyncLocked(); err != nil {
		return 0, err
	}
	if err := d.maybeRotateLocked(); err != nil {
		return 0, err
	}
	return d.lsn, nil
}

func (d *FileDevice) maybeSyncLocked() error {
	switch d.policy {
	case FsyncBatch:
	case FsyncInterval:
		if time.Since(d.lastSync) < d.interval {
			return nil
		}
	default:
		return nil
	}
	start := time.Now()
	err := d.f.Sync()
	d.stats.Syncs++
	d.stats.SyncTime += time.Since(start)
	d.lastSync = time.Now()
	return err
}

// maybeRotateLocked seals the active segment and starts a fresh one once
// the size threshold is crossed. Rotation happens between batches, so a
// frame never spans segment files (a batch larger than the threshold
// simply overshoots). The sealed segment is synced first — a closed
// segment is immutable and must be fully durable before truncation
// decisions are made against it.
func (d *FileDevice) maybeRotateLocked() error {
	if d.segMax == 0 || d.segBytes < d.segMax {
		return nil
	}
	if d.policy != FsyncNone {
		start := time.Now()
		if err := d.f.Sync(); err != nil {
			return err
		}
		d.stats.Syncs++
		d.stats.SyncTime += time.Since(start)
		d.lastSync = time.Now()
	}
	if err := d.f.Close(); err != nil {
		return err
	}
	d.segs = append(d.segs, segmentRef{path: d.f.Name(), firstSeq: d.segStart, bytes: d.segBytes})
	next := d.lsn + 1
	f, err := os.OpenFile(SegmentPath(d.dir, d.part, next), os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rotate segment: %w", err)
	}
	if err := syncDir(d.dir); err != nil {
		f.Close()
		return err
	}
	d.f = f
	d.segStart = next
	d.segBytes = 0
	return nil
}

// Seq returns the sequence number of the last appended frame (the
// partition-local LSN). On a freshly opened segmented device it reflects
// the durable chain on disk, not just this process's appends.
func (d *FileDevice) Seq() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lsn
}

// LiveBytes returns the bytes held by all live (not yet truncated)
// segments, the quantity a size-triggered checkpoint policy watches. On
// a legacy device it counts only this process's appends.
func (d *FileDevice) LiveBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.liveBytes
}

// TruncateBelow unlinks every closed segment whose frames all have
// sequence ≤ seq, returning the bytes reclaimed. The active segment is
// never touched — truncation is unlink-only, so it can at worst leave a
// little extra prefix, never lose a record above seq. Only segmented
// devices truncate.
func (d *FileDevice) TruncateBelow(seq uint64) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.segMax == 0 {
		return 0, fmt.Errorf("wal: truncate: device is not segmented")
	}
	var dropped int64
	for len(d.segs) > 0 {
		next := d.segStart
		if len(d.segs) > 1 {
			next = d.segs[1].firstSeq
		}
		if next > seq+1 { // segment holds frames above seq: keep it and stop
			break
		}
		if err := os.Remove(d.segs[0].path); err != nil && !os.IsNotExist(err) {
			return dropped, fmt.Errorf("wal: truncate segment: %w", err)
		}
		dropped += d.segs[0].bytes
		d.liveBytes -= d.segs[0].bytes
		d.segs = d.segs[1:]
	}
	if dropped > 0 {
		if err := syncDir(d.dir); err != nil {
			return dropped, err
		}
	}
	return dropped, nil
}

// Segments returns the number of live segment files (including the
// active one); 0 for a legacy device.
func (d *FileDevice) Segments() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.segMax == 0 {
		return 0
	}
	return len(d.segs) + 1
}

// Stats implements StatsDevice.
func (d *FileDevice) Stats() DeviceStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Close syncs (unless the policy is FsyncNone) and closes the file.
// Appends after Close fail with ErrClosed.
func (d *FileDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	var syncErr error
	if d.policy != FsyncNone {
		start := time.Now()
		syncErr = d.f.Sync()
		d.stats.Syncs++
		d.stats.SyncTime += time.Since(start)
	}
	if err := d.f.Close(); err != nil {
		return err
	}
	return syncErr
}

// syncDir fsyncs a directory so renames, creations and unlinks inside it
// are durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := f.Sync()
	cerr := f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
