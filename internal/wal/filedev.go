package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// FsyncPolicy selects when a FileDevice forces its appends to stable
// storage.
type FsyncPolicy int

const (
	// FsyncNone never syncs: appends go to the OS page cache only. The
	// data survives a process crash (the kernel has it) but not a power
	// loss; the policy isolates the cost of the write path itself.
	FsyncNone FsyncPolicy = iota
	// FsyncBatch syncs once per device write operation — per record
	// without group commit, per epoch batch with it. This is the durable
	// configuration whose cost group commit exists to amortize.
	FsyncBatch
	// FsyncInterval syncs at most once per Interval, piggybacked on the
	// next append after the interval elapses: bounded data loss at a
	// bounded sync rate.
	FsyncInterval
)

// String implements fmt.Stringer.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncNone:
		return "none"
	case FsyncBatch:
		return "batch"
	case FsyncInterval:
		return "interval"
	default:
		return fmt.Sprintf("fsync(%d)", int(p))
	}
}

// ParseFsyncPolicy parses the String form (flag values).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "none", "":
		return FsyncNone, nil
	case "batch":
		return FsyncBatch, nil
	case "interval":
		return FsyncInterval, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want none, batch or interval)", s)
	}
}

// FileDevice is a log device over one append-only file, framing records
// exactly like WriterDevice (u32 length prefix + payload) so Replay reads
// both. Each record (or batch) is written with a single Write call, which
// means a crash leaves at most one torn frame — and only at the tail.
//
// The file is opened O_APPEND without truncation: a device pointed at an
// existing log continues it. A log that may end in a torn frame must be
// replayed (and, if it is to be appended to again, truncated to the last
// complete frame) before reuse; Replay reports the torn tail's offset for
// exactly that.
type FileDevice struct {
	policy   FsyncPolicy
	interval time.Duration

	mu       sync.Mutex
	f        *os.File
	scratch  []byte // frame assembly buffer, one Write syscall per batch
	lsn      uint64
	stats    DeviceStats
	lastSync time.Time
	closed   bool
}

// DefaultFsyncInterval is the FsyncInterval window used when none is
// configured: without it a zero interval would make every append sync —
// silently measuring the per-batch (worst-case) policy under the
// bounded-loss policy's name.
const DefaultFsyncInterval = time.Millisecond

// OpenFileDevice opens (creating if needed, never truncating) path as a
// log device with the given fsync policy. interval is only meaningful for
// FsyncInterval (≤ 0 falls back to DefaultFsyncInterval).
func OpenFileDevice(path string, policy FsyncPolicy, interval time.Duration) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open log: %w", err)
	}
	if policy == FsyncInterval && interval <= 0 {
		interval = DefaultFsyncInterval
	}
	return &FileDevice{f: f, policy: policy, interval: interval, lastSync: time.Now()}, nil
}

// PartitionLogPath returns the canonical file name of partition p's log
// inside dir; writers (OpenPartitionDevices) and recovery agree on it.
func PartitionLogPath(dir string, p int) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%03d.log", p))
}

// OpenPartitionDevices creates dir if needed and opens one FileDevice per
// partition at the canonical paths. On any error the already-opened
// devices are closed.
func OpenPartitionDevices(dir string, n int, policy FsyncPolicy, interval time.Duration) ([]*FileDevice, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create log dir: %w", err)
	}
	devs := make([]*FileDevice, n)
	for p := range devs {
		d, err := OpenFileDevice(PartitionLogPath(dir, p), policy, interval)
		if err != nil {
			for _, o := range devs[:p] {
				o.Close()
			}
			return nil, err
		}
		devs[p] = d
	}
	return devs, nil
}

// Path returns the file the device appends to.
func (d *FileDevice) Path() string { return d.f.Name() }

// Append implements Device.
func (d *FileDevice) Append(rec []byte) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	d.scratch = appendFrame(d.scratch[:0], rec)
	if _, err := d.f.Write(d.scratch); err != nil {
		return 0, err
	}
	d.lsn++
	d.stats.Appends++
	d.stats.Batches++
	d.stats.Bytes += uint64(len(rec))
	if err := d.maybeSyncLocked(); err != nil {
		return 0, err
	}
	return d.lsn, nil
}

// AppendBatch implements BatchDevice: every frame of the batch goes out
// in one Write call and — under FsyncBatch — one fsync, which is the
// whole point of group commit on a real device.
func (d *FileDevice) AppendBatch(recs [][]byte) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	d.scratch = d.scratch[:0]
	for _, rec := range recs {
		d.scratch = appendFrame(d.scratch, rec)
		d.stats.Bytes += uint64(len(rec))
	}
	if _, err := d.f.Write(d.scratch); err != nil {
		return 0, err
	}
	d.lsn += uint64(len(recs))
	d.stats.Appends += uint64(len(recs))
	d.stats.Batches++
	if err := d.maybeSyncLocked(); err != nil {
		return 0, err
	}
	return d.lsn, nil
}

func (d *FileDevice) maybeSyncLocked() error {
	switch d.policy {
	case FsyncBatch:
	case FsyncInterval:
		if time.Since(d.lastSync) < d.interval {
			return nil
		}
	default:
		return nil
	}
	start := time.Now()
	err := d.f.Sync()
	d.stats.Syncs++
	d.stats.SyncTime += time.Since(start)
	d.lastSync = time.Now()
	return err
}

// Stats implements StatsDevice.
func (d *FileDevice) Stats() DeviceStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Close syncs (unless the policy is FsyncNone) and closes the file.
// Appends after Close fail with ErrClosed.
func (d *FileDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	var syncErr error
	if d.policy != FsyncNone {
		start := time.Now()
		syncErr = d.f.Sync()
		d.stats.Syncs++
		d.stats.SyncTime += time.Since(start)
	}
	if err := d.f.Close(); err != nil {
		return err
	}
	return syncErr
}

// appendFrame appends the length-prefixed framing of rec onto buf.
func appendFrame(buf, rec []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec)))
	return append(buf, rec...)
}
