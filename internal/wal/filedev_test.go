package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func replayAll(t *testing.T, path string) ([]*Record, ReplayStats) {
	t.Helper()
	var recs []*Record
	st, err := ReplayFile(path, func(r *Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("replay %s: %v", path, err)
	}
	return recs, st
}

func TestFileDeviceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	dev, err := OpenFileDevice(path, FsyncBatch, 0)
	if err != nil {
		t.Fatal(err)
	}
	l := New(dev)
	want := []*Record{sample(), {TxnID: 9}, sample()}
	for i, r := range want {
		lsn, err := l.Commit(r)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
	}
	st := dev.Stats()
	if st.Appends != 3 || st.Batches != 3 || st.Bytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Syncs != 3 || st.SyncTime <= 0 {
		t.Fatalf("FsyncBatch must sync per append: %+v", st)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Append([]byte{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	got, rst := replayAll(t, path)
	if rst.Torn || rst.Records != 3 || !reflect.DeepEqual(got, want) {
		t.Fatalf("replay: %+v, stats %+v", got, rst)
	}
}

func TestFileDeviceFsyncPolicies(t *testing.T) {
	t.Run("none", func(t *testing.T) {
		dev, err := OpenFileDevice(filepath.Join(t.TempDir(), "w.log"), FsyncNone, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if _, err := dev.Append(Encode(sample())); err != nil {
				t.Fatal(err)
			}
		}
		if s := dev.Stats(); s.Syncs != 0 {
			t.Fatalf("FsyncNone synced %d times", s.Syncs)
		}
		dev.Close()
	})
	t.Run("interval", func(t *testing.T) {
		dev, err := OpenFileDevice(filepath.Join(t.TempDir(), "w.log"), FsyncInterval, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if _, err := dev.Append(Encode(sample())); err != nil {
				t.Fatal(err)
			}
		}
		if s := dev.Stats(); s.Syncs != 0 {
			t.Fatalf("interval=1h synced %d times within the window", s.Syncs)
		}
		dev.Close()
	})
	t.Run("interval-zero-defaults", func(t *testing.T) {
		// A zero window must fall back to DefaultFsyncInterval, not
		// degenerate to an fsync on every append.
		dev, err := OpenFileDevice(filepath.Join(t.TempDir(), "w.log"), FsyncInterval, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if _, err := dev.Append(Encode(sample())); err != nil {
				t.Fatal(err)
			}
		}
		if s := dev.Stats(); s.Syncs >= 10 {
			t.Fatalf("zero interval synced per append (%d syncs for 10 appends)", s.Syncs)
		}
		dev.Close()
	})
	t.Run("batch-amortized", func(t *testing.T) {
		dev, err := OpenFileDevice(filepath.Join(t.TempDir(), "w.log"), FsyncBatch, 0)
		if err != nil {
			t.Fatal(err)
		}
		batch := [][]byte{Encode(sample()), Encode(sample()), Encode(sample())}
		if _, err := dev.AppendBatch(batch); err != nil {
			t.Fatal(err)
		}
		s := dev.Stats()
		if s.Appends != 3 || s.Batches != 1 || s.Syncs != 1 {
			t.Fatalf("one batch of three must cost one sync: %+v", s)
		}
		dev.Close()
	})
}

func TestFileDeviceGroupCommitConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	dev, err := OpenFileDevice(path, FsyncBatch, 0)
	if err != nil {
		t.Fatal(err)
	}
	l := NewGroupCommit(dev, 0)
	const workers, perWorker = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a := l.NewAppender()
			for i := 0; i < perWorker; i++ {
				rec := &Record{TxnID: uint64(w*perWorker + i + 1),
					Writes: []Write{{Table: "t", Key: uint64(i), Image: []byte{byte(w), byte(i)}}}}
				if _, err := a.Commit(rec); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	recs, st := replayAll(t, path)
	if st.Torn || len(recs) != workers*perWorker {
		t.Fatalf("replayed %d records (torn=%v), want %d", len(recs), st.Torn, workers*perWorker)
	}
	s := dev.Stats()
	if s.Syncs >= uint64(workers*perWorker) {
		t.Fatalf("group commit did not amortize fsyncs: %d syncs for %d records", s.Syncs, s.Appends)
	}
	seen := map[uint64]bool{}
	for _, r := range recs {
		if seen[r.TxnID] {
			t.Fatalf("duplicate record %d", r.TxnID)
		}
		seen[r.TxnID] = true
	}
}

// TestReplayTornTail cuts a three-record log at every byte offset and
// replays each prefix: the result must always be the longest record
// prefix the cut preserves, with the partial frame reported as torn, and
// never an error — the framing makes every crash point recoverable.
func TestReplayTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	dev, err := OpenFileDevice(path, FsyncNone, 0)
	if err != nil {
		t.Fatal(err)
	}
	l := New(dev)
	want := []*Record{sample(), {TxnID: 7, Writes: []Write{{Table: "x", Key: 1, Image: bytes.Repeat([]byte{3}, 40)}}}, sample()}
	var bounds []int64 // cumulative end offset of each frame
	for _, r := range want {
		if _, err := l.Commit(r); err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, frameSize(len(Encode(r)))+prevBound(bounds))
	}
	dev.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != bounds[len(bounds)-1] {
		t.Fatalf("file is %d bytes, frames end at %d", len(full), bounds[len(bounds)-1])
	}
	for cut := 0; cut <= len(full); cut++ {
		wantN := 0
		for _, b := range bounds {
			if int64(cut) >= b {
				wantN++
			}
		}
		var got int
		st, err := Replay(bytes.NewReader(full[:cut]), func(r *Record) error {
			if !reflect.DeepEqual(r, want[got]) {
				t.Fatalf("cut %d: record %d mismatch: %+v", cut, got, r)
			}
			got++
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: replay error: %v", cut, err)
		}
		if got != wantN {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, got, wantN)
		}
		onBoundary := cut == 0
		for _, b := range bounds {
			if int64(cut) == b {
				onBoundary = true
			}
		}
		if st.Torn == onBoundary {
			t.Fatalf("cut %d: torn=%v, on frame boundary=%v", cut, st.Torn, onBoundary)
		}
		if st.Bytes != prefixBound(bounds, int64(cut)) {
			t.Fatalf("cut %d: last complete frame at %d, want %d", cut, st.Bytes, prefixBound(bounds, int64(cut)))
		}
	}
}

func prevBound(bounds []int64) int64 {
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}

func prefixBound(bounds []int64, cut int64) int64 {
	var last int64
	for _, b := range bounds {
		if cut >= b {
			last = b
		}
	}
	return last
}

// TestReplayRejectsCorruptMiddle pins the torn/corrupt distinction: a
// complete frame whose content is garbage is corruption, not a tolerated
// torn tail.
func TestReplayRejectsCorruptMiddle(t *testing.T) {
	var buf bytes.Buffer
	d := NewWriterDevice(&buf)
	if _, err := d.Append(Encode(sample())); err != nil {
		t.Fatal(err)
	}
	// A complete, CRC-consistent 5-byte frame of garbage, followed by a
	// valid frame: the checksums pass, the decode must not.
	buf.Write(appendFrame(nil, []byte{1, 2, 3, 4, 5}))
	if _, err := d.Append(Encode(sample())); err != nil {
		t.Fatal(err)
	}
	n := 0
	_, err := Replay(bytes.NewReader(buf.Bytes()), func(*Record) error { n++; return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt middle frame: err=%v, want ErrCorrupt", err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records before the corruption, want 1", n)
	}
}

// TestReplayRejectsOverflowingFramePrefix pins the MaxFrameBytes guard: a
// corrupted-in-place length prefix claiming an implausible frame must
// fail the replay as corruption — not read to EOF, report a benign torn
// tail, and silently drop every committed record after it.
func TestReplayRejectsOverflowingFramePrefix(t *testing.T) {
	var buf bytes.Buffer
	d := NewWriterDevice(&buf)
	if _, err := d.Append(Encode(sample())); err != nil {
		t.Fatal(err)
	}
	// A header whose length words agree (so the complement check passes)
	// but claim a ~4 GiB frame: only the MaxFrameBytes cap stands between
	// this and a huge allocation plus a bogus torn-tail verdict.
	hdr := binary.LittleEndian.AppendUint32(nil, 0xFFFFFFF0)
	hdr = binary.LittleEndian.AppendUint32(hdr, ^uint32(0xFFFFFFF0))
	hdr = binary.LittleEndian.AppendUint32(hdr, 0)
	buf.Write(hdr)
	if _, err := d.Append(Encode(sample())); err != nil {
		t.Fatal(err)
	}
	n := 0
	st, err := Replay(bytes.NewReader(buf.Bytes()), func(*Record) error { n++; return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("overflowing frame prefix: err=%v torn=%v, want ErrCorrupt", err, st.Torn)
	}
	if n != 1 {
		t.Fatalf("replayed %d records before the corruption, want 1", n)
	}
}

func TestOpenPartitionDevices(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	devs, err := OpenPartitionDevices(dir, 3, FsyncNone, 0)
	if err != nil {
		t.Fatal(err)
	}
	for p, d := range devs {
		if d.Path() != PartitionLogPath(dir, p) {
			t.Fatalf("device %d at %s", p, d.Path())
		}
		if _, err := d.Append(Encode(&Record{TxnID: uint64(p + 1)})); err != nil {
			t.Fatal(err)
		}
		d.Close()
	}
	for p := 0; p < 3; p++ {
		recs, _ := replayAll(t, PartitionLogPath(dir, p))
		if len(recs) != 1 || recs[0].TxnID != uint64(p+1) {
			t.Fatalf("partition %d log: %+v", p, recs)
		}
	}
}

// TestFileDeviceAppendContinues pins the no-truncate contract: reopening
// an existing log appends after its current contents.
func TestFileDeviceAppendContinues(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	for i := 1; i <= 2; i++ {
		dev, err := OpenFileDevice(path, FsyncNone, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dev.Append(Encode(&Record{TxnID: uint64(i)})); err != nil {
			t.Fatal(err)
		}
		dev.Close()
	}
	recs, _ := replayAll(t, path)
	if len(recs) != 2 || recs[0].TxnID != 1 || recs[1].TxnID != 2 {
		t.Fatalf("reopen did not append: %+v", recs)
	}
}
