package wal

import (
	"encoding/binary"
	"hash/crc32"
)

// Frame format of the file-backed logs (FileDevice, WriterDevice):
//
//	len u32 | ^len u32 | crc32c(payload) u32 | payload
//
// The 12-byte header exists to make the torn/corrupt distinction
// decidable from the bytes alone:
//
//   - the length complement (^len) self-checks the length prefix, so a
//     bit flipped inside either length word is detected immediately as
//     ErrCorrupt — without it a corrupted-in-place length that happens to
//     point past EOF is indistinguishable from a crash truncation, and
//     replay would silently discard every committed record after it;
//   - the CRC-32C (Castagnoli, hardware-accelerated on amd64/arm64)
//     covers the payload, so in-place bit rot inside a complete frame is
//     ErrCorrupt, never a misparse.
//
// A crash mid-append — frames are written with single Write calls to an
// O_APPEND file — leaves only a short read at the tail: header or payload
// bytes missing entirely. Replay reports that as a torn tail and stops;
// every complete-but-inconsistent frame is corruption.
//
// Only a coordinated flip of the same bit in both length words can forge
// a plausible length; that is outside the single-bit-rot fault model this
// layer targets (as is a payload whose CRC collides after multi-byte
// damage).
const frameHeaderSize = 12

// castagnoli is the CRC-32C table shared by framing and checkpoint files.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends the framed encoding of rec onto buf.
func appendFrame(buf, rec []byte) []byte {
	n := uint32(len(rec))
	buf = binary.LittleEndian.AppendUint32(buf, n)
	buf = binary.LittleEndian.AppendUint32(buf, ^n)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(rec, castagnoli))
	return append(buf, rec...)
}

// frameSize returns the on-disk size of a frame holding a payload of n
// bytes.
func frameSize(n int) int64 { return int64(frameHeaderSize + n) }

// parseFrameHeader validates the 12-byte header: it returns the payload
// length and the expected payload CRC, or false if the two length words
// disagree (in-place corruption of the header).
func parseFrameHeader(hdr []byte) (length uint32, crc uint32, ok bool) {
	length = binary.LittleEndian.Uint32(hdr)
	inv := binary.LittleEndian.Uint32(hdr[4:])
	crc = binary.LittleEndian.Uint32(hdr[8:])
	return length, crc, length == ^inv
}
