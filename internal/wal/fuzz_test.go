package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzDecode throws arbitrary bytes at Decode: it must never panic, never
// loop unboundedly, and classify every failure as either a torn record or
// corruption. Whatever decodes successfully must re-encode to the exact
// input bytes (the format has no redundancy to lose).
func FuzzDecode(f *testing.F) {
	f.Add(Encode(sample()))
	f.Add(Encode(&Record{TxnID: 1}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 16)) // huge nWrites + huge lengths
	hostile := binary.LittleEndian.AppendUint64(nil, 1)
	hostile = binary.LittleEndian.AppendUint32(hostile, 0xFFFFFFFF)
	f.Add(hostile) // length-prefix overflow shape
	f.Fuzz(func(t *testing.T, buf []byte) {
		rec, err := Decode(buf)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTornRecord) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if got := Encode(rec); !bytes.Equal(got, buf) {
			t.Fatalf("decode/encode not identity: %x -> %x", buf, got)
		}
	})
}

// FuzzRecordRoundTrip fuzzes the Encode/AppendRecord/Decode triangle with
// structured inputs: both encoders must agree byte for byte (AppendRecord
// onto a dirty prefix included), and Decode must reproduce the record.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint64(42), "warehouse", uint64(7), []byte{1, 2, 3}, "d", uint64(71), []byte{})
	f.Add(uint64(0), "", uint64(0), []byte(nil), "", uint64(0), []byte(nil))
	f.Fuzz(func(t *testing.T, id uint64, tbl1 string, key1 uint64, img1 []byte,
		tbl2 string, key2 uint64, img2 []byte) {
		if len(tbl1) > 65535 || len(tbl2) > 65535 {
			t.Skip("table names longer than the u16 length prefix")
		}
		rec := &Record{TxnID: id, Writes: []Write{
			{Table: tbl1, Key: key1, Image: img1},
			{Table: tbl2, Key: key2, Image: img2},
		}}
		enc := Encode(rec)
		prefix := []byte{9, 9, 9}
		appended := AppendRecord(append([]byte(nil), prefix...), rec)
		if !bytes.Equal(appended[len(prefix):], enc) {
			t.Fatalf("AppendRecord disagrees with Encode")
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("round trip decode: %v", err)
		}
		if got.TxnID != id || len(got.Writes) != 2 {
			t.Fatalf("round trip: %+v", got)
		}
		for i, w := range []struct {
			tbl string
			key uint64
			img []byte
		}{{tbl1, key1, img1}, {tbl2, key2, img2}} {
			g := got.Writes[i]
			if g.Table != w.tbl || g.Key != w.key || !bytes.Equal(g.Image, w.img) {
				t.Fatalf("write %d: got %+v want %+v", i, g, w)
			}
		}
		// Truncations of a valid record must be rejected as torn or
		// corrupt, never misparsed into a "valid" shorter record.
		for _, cut := range []int{len(enc) - 1, len(enc) / 2, 13} {
			if cut < 0 || cut >= len(enc) {
				continue
			}
			if r, err := Decode(enc[:cut]); err == nil && len(r.Writes) == len(rec.Writes) {
				t.Fatalf("truncation at %d decoded fully", cut)
			}
		}
	})
}

// FuzzReplayCheckpoint fuzzes checkpoint-aware replay: arbitrary log
// bytes with an arbitrary checkpoint LSN must never panic, must fail
// only with ErrCorrupt (a torn tail is a stats flag, not an error), and
// must agree with a full replay of the same bytes about frame counts,
// tear status and how many records a checkpoint at fromSeq skips.
func FuzzReplayCheckpoint(f *testing.F) {
	var log []byte
	for i := 1; i <= 3; i++ {
		log = appendFrame(log, Encode(&Record{TxnID: uint64(i),
			Writes: []Write{{Table: "t", Key: uint64(i), Image: []byte{byte(i), 0xAA}}}}))
	}
	f.Add(log, uint64(0))
	f.Add(log, uint64(2))
	f.Add(log, uint64(99))
	flipped := append([]byte(nil), log...)
	flipped[frameHeaderSize] ^= 0x01
	f.Add(flipped, uint64(0))
	f.Add(log[:len(log)-3], uint64(1)) // torn tail
	f.Add([]byte{}, uint64(0))
	f.Fuzz(func(t *testing.T, data []byte, fromSeq uint64) {
		applied := 0
		st, err := ReplayFrom(bytes.NewReader(data), 1, fromSeq, func(*Record) error { applied++; return nil })
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped replay error: %v", err)
			}
			if errors.Is(err, ErrTornRecord) {
				t.Fatalf("replay error typed as torn: %v", err)
			}
			return
		}
		if st.Records != applied {
			t.Fatalf("st.Records=%d but fn ran %d times", st.Records, applied)
		}
		total := st.Records + st.Skipped
		if st.LastSeq != uint64(total) {
			t.Fatalf("LastSeq=%d with %d frames from seq 1", st.LastSeq, total)
		}
		if st.Bytes > st.Offset {
			t.Fatalf("applied bytes %d exceed scanned offset %d", st.Bytes, st.Offset)
		}
		full, ferr := ReplayFrom(bytes.NewReader(data), 1, 0, func(*Record) error { return nil })
		if ferr != nil {
			// A CRC-valid frame whose record decodes short fails a full
			// replay but is legitimately skipped (undecoded) when a
			// checkpoint covers it. Nothing further to cross-check.
			return
		}
		if full.Records != total || full.Torn != st.Torn {
			t.Fatalf("full replay disagrees: %+v vs %+v", full, st)
		}
		if want := total - int(min(uint64(total), fromSeq)); applied != want {
			t.Fatalf("checkpoint at %d: applied %d of %d records, want %d", fromSeq, applied, total, want)
		}
	})
}

func TestDecodeTypedErrors(t *testing.T) {
	enc := Encode(sample())
	// Truncations are torn records.
	for _, cut := range []int{0, 5, 11, 13, len(enc) - 1} {
		if _, err := Decode(enc[:cut]); !errors.Is(err, ErrTornRecord) {
			t.Errorf("cut at %d: err = %v, want ErrTornRecord", cut, err)
		}
	}
	// Trailing bytes are corruption.
	if _, err := Decode(append(append([]byte{}, enc...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Error("trailing byte not ErrCorrupt")
	}
	// A write count that cannot fit is corruption, rejected before the
	// loop (a garbage count must not drive iteration).
	huge := binary.LittleEndian.AppendUint64(nil, 1)
	huge = binary.LittleEndian.AppendUint32(huge, 0xFFFFFFFF)
	huge = append(huge, make([]byte, 100)...)
	if _, err := Decode(huge); !errors.Is(err, ErrCorrupt) {
		t.Errorf("overflowing write count: %v, want ErrCorrupt", err)
	}
	// An image length prefix far past the buffer is torn (the image bytes
	// are simply missing), and must not panic or misparse.
	rec := &Record{TxnID: 3, Writes: []Write{{Table: "t", Key: 1, Image: []byte{1, 2, 3, 4}}}}
	enc = Encode(rec)
	binary.LittleEndian.PutUint32(enc[len(enc)-8:], 0xFFFFFFF0) // imgLen field
	if _, err := Decode(enc); !errors.Is(err, ErrTornRecord) {
		t.Errorf("overflowing image length: %v, want ErrTornRecord", err)
	}
}
