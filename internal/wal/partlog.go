package wal

import (
	"fmt"
	"time"
)

// LSN identifies a record in a PartitionedLog. Partition logs are
// independent sequence domains — there is no total order across
// partitions, which is precisely what lets each partition flush (and
// fsync) without coordinating with the others — so a log position is a
// (partition, sequence) pair.
type LSN struct {
	Partition int
	Seq       uint64
}

// String implements fmt.Stringer.
func (l LSN) String() string { return fmt.Sprintf("%d:%d", l.Partition, l.Seq) }

// PartitionedLog is the durability side of a partitioned store: one Log —
// its own group committer and device — per storage partition. Commit
// records are routed to the partition that owns their writes, so the
// commit path shares no structure across partitions and recovery can
// replay logs in parallel. A single-partition PartitionedLog is exactly
// the shared Log it wraps (the pre-partitioning layout, bit for bit).
type PartitionedLog struct {
	logs []*Log
	devs []Device
}

// NewPartitioned builds one log per device. With groupCommit set each
// partition gets its own epoch-based flusher (interval as in
// NewGroupCommit); Close must then be called to stop them. A nil device
// becomes an in-memory device exactly as in New.
func NewPartitioned(devs []Device, groupCommit bool, interval time.Duration) *PartitionedLog {
	if len(devs) == 0 {
		devs = []Device{nil}
	}
	pl := &PartitionedLog{logs: make([]*Log, len(devs)), devs: make([]Device, len(devs))}
	for i, d := range devs {
		if groupCommit {
			pl.logs[i] = NewGroupCommit(d, interval)
		} else {
			pl.logs[i] = New(d)
		}
		pl.devs[i] = pl.logs[i].dev
	}
	return pl
}

// Partitions returns the number of partition logs.
func (pl *PartitionedLog) Partitions() int { return len(pl.logs) }

// Log returns partition p's log; per-worker appenders are drawn from it.
func (pl *PartitionedLog) Log(p int) *Log { return pl.logs[p] }

// Device returns partition p's device (tests and telemetry).
func (pl *PartitionedLog) Device(p int) Device { return pl.devs[p] }

// Commit serializes and appends rec to partition p's log — the
// convenience path for tests; hot paths use per-partition Appenders.
func (pl *PartitionedLog) Commit(p int, rec *Record) (LSN, error) {
	seq, err := pl.logs[p].Commit(rec)
	return LSN{Partition: p, Seq: seq}, err
}

// Close drains and stops every partition's group committer and closes
// every closable device. All partitions are closed even if one errors;
// the first error wins.
func (pl *PartitionedLog) Close() error {
	var first error
	for _, l := range pl.logs {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, d := range pl.devs {
		if c, ok := d.(interface{ Close() error }); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// LifecycleDevice is the interface a device must satisfy for the
// storage lifecycle (checkpointing and log truncation) to manage it:
// expose the partition-local durable sequence, the live log footprint,
// and unlink-based truncation. FileDevice in segmented mode implements
// it.
type LifecycleDevice interface {
	Seq() uint64
	LiveBytes() int64
	TruncateBelow(seq uint64) (int64, error)
}

// Seq returns partition p's last appended sequence number, or 0 if its
// device does not track one.
func (pl *PartitionedLog) Seq(p int) uint64 {
	if ld, ok := pl.devs[p].(LifecycleDevice); ok {
		return ld.Seq()
	}
	return 0
}

// LiveBytes returns the live log footprint of partition p's device, or 0
// if it does not report one.
func (pl *PartitionedLog) LiveBytes(p int) int64 {
	if ld, ok := pl.devs[p].(LifecycleDevice); ok {
		return ld.LiveBytes()
	}
	return 0
}

// TruncateBelow drops partition p's log frames with sequence ≤ seq (to
// whole-segment granularity), returning the bytes reclaimed. It errors
// if the partition's device cannot truncate.
func (pl *PartitionedLog) TruncateBelow(p int, seq uint64) (int64, error) {
	ld, ok := pl.devs[p].(LifecycleDevice)
	if !ok {
		return 0, fmt.Errorf("wal: partition %d device cannot truncate", p)
	}
	return ld.TruncateBelow(seq)
}

// Stats sums the DeviceStats of every partition device that reports them.
func (pl *PartitionedLog) Stats() DeviceStats {
	var s DeviceStats
	for _, d := range pl.devs {
		if sd, ok := d.(StatsDevice); ok {
			s = s.Add(sd.Stats())
		}
	}
	return s
}
