package wal

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestPartitionedLogRoutesIndependently(t *testing.T) {
	devs := make([]Device, 3)
	mems := make([]*MemDevice, 3)
	for i := range devs {
		mems[i] = NewMemDevice(true)
		devs[i] = mems[i]
	}
	pl := NewPartitioned(devs, false, 0)
	if pl.Partitions() != 3 {
		t.Fatalf("partitions = %d", pl.Partitions())
	}
	for p := 0; p < 3; p++ {
		for i := 0; i < p+1; i++ {
			lsn, err := pl.Commit(p, &Record{TxnID: uint64(100*p + i)})
			if err != nil {
				t.Fatal(err)
			}
			if lsn.Partition != p || lsn.Seq != uint64(i+1) {
				t.Fatalf("lsn = %v", lsn)
			}
		}
	}
	for p, m := range mems {
		if m.Len() != p+1 {
			t.Fatalf("partition %d has %d records, want %d", p, m.Len(), p+1)
		}
	}
	st := pl.Stats()
	if st.Appends != 6 || st.Bytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if err := pl.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionedLogGroupCommitCloseDrains(t *testing.T) {
	devs := []Device{NewMemDevice(false), NewMemDevice(false)}
	pl := NewPartitioned(devs, true, 0)
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			a := pl.Log(p).NewAppender()
			for i := 0; i < 50; i++ {
				if _, err := a.Commit(&Record{TxnID: uint64(i)}); err != nil {
					t.Errorf("partition %d: %v", p, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if err := pl.Close(); err != nil {
		t.Fatal(err)
	}
	if st := pl.Stats(); st.Appends != 100 {
		t.Fatalf("appends = %d, want 100", st.Appends)
	}
	// Every partition's committer must be stopped.
	for p := 0; p < 2; p++ {
		if _, err := pl.Log(p).Commit(sample()); !errors.Is(err, ErrClosed) {
			t.Fatalf("partition %d commit after close: %v", p, err)
		}
	}
}

// TestSubmitWaitOverlapsPartitions drives the split submit/wait path: a
// committer with records for several partition logs submits to all before
// waiting, so slow devices flush concurrently rather than serially. The
// test pins the API contract (ticket per log, wait-all completes, zero
// tickets are inert); the latency win is visible in -exp durability.
func TestSubmitWaitOverlapsPartitions(t *testing.T) {
	devs := []Device{
		&slowDevice{MemDevice: NewMemDevice(true), delay: time.Millisecond},
		&slowDevice{MemDevice: NewMemDevice(true), delay: time.Millisecond},
	}
	pl := NewPartitioned(devs, true, 0)
	defer pl.Close()
	apps := []*Appender{pl.Log(0).NewAppender(), pl.Log(1).NewAppender()}
	var tickets [3]Ticket // one spare zero ticket: must be inert
	for i := 0; i < 20; i++ {
		for p, a := range apps {
			tickets[p] = a.Submit(&Record{TxnID: uint64(2*i + p + 1)})
		}
		for _, tk := range tickets {
			if _, err := tk.Wait(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for p := 0; p < 2; p++ {
		if got := devs[p].(*slowDevice).Len(); got != 20 {
			t.Fatalf("partition %d has %d records, want 20", p, got)
		}
	}
}

func TestTicketPerRecordLog(t *testing.T) {
	dev := NewMemDevice(true)
	l := New(dev)
	a := l.NewAppender()
	tk := a.Submit(sample())
	// Per-record logs are durable at submit; Wait just reports.
	if dev.Len() != 1 {
		t.Fatal("submit on a per-record log did not append")
	}
	lsn, err := tk.Wait()
	if err != nil || lsn != 1 {
		t.Fatalf("wait: lsn=%d err=%v", lsn, err)
	}
}

func TestNewPartitionedNilDevices(t *testing.T) {
	pl := NewPartitioned(nil, false, 0)
	if pl.Partitions() != 1 {
		t.Fatalf("partitions = %d", pl.Partitions())
	}
	if _, err := pl.Commit(0, sample()); err != nil {
		t.Fatal(err)
	}
	pl.Close()
}
