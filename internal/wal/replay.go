package wal

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ReplayStats reports what one log replay consumed.
type ReplayStats struct {
	// Records is the number of complete records decoded and applied.
	Records int
	// Skipped is the number of frames that were read and CRC-verified
	// but not applied because their sequence is covered by a checkpoint
	// (seq ≤ fromSeq). Integrity is still enforced for them — a
	// bit-flipped committed frame is corruption whether or not its
	// effects are already in a checkpoint image.
	Skipped int
	// SkippedSegments is the number of whole segment files recovery
	// never opened because every frame in them is covered by a
	// checkpoint; their frame counts are included in Skipped.
	SkippedSegments int
	// Bytes is the framed size of the applied records only — the replay
	// work actually done. With checkpoints this is the post-checkpoint
	// suffix, which is exactly what a bounded-recovery claim is about.
	Bytes int64
	// Offset is the byte offset just past the last complete frame in the
	// last file read — the point a log that will be appended to again
	// must be truncated to when Torn.
	Offset int64
	// Torn reports that the log ended in an incomplete frame (the normal
	// shape after a crash mid-append); the partial bytes were discarded.
	Torn bool
	// FirstApplied and LastSeq bound what the replay saw: FirstApplied
	// is the sequence of the first applied record (0 if none), LastSeq
	// the sequence of the last complete frame observed, applied or
	// skipped (0 if the log held none).
	FirstApplied uint64
	LastSeq      uint64
}

// add merges the stats of a later file in the same partition chain.
func (st *ReplayStats) add(next ReplayStats) {
	st.Records += next.Records
	st.Skipped += next.Skipped
	st.SkippedSegments += next.SkippedSegments
	st.Bytes += next.Bytes
	st.Offset = next.Offset
	st.Torn = next.Torn
	if st.FirstApplied == 0 {
		st.FirstApplied = next.FirstApplied
	}
	if next.LastSeq != 0 {
		st.LastSeq = next.LastSeq
	}
}

// MaxFrameBytes caps the frame length Replay accepts. A prefix above it
// is length-prefix garbage (a flipped bit, not a plausible record):
// treating it as a torn tail would silently discard every committed
// record after the corruption — and allocate up to 4 GiB first.
const MaxFrameBytes = 1 << 28 // 256 MiB

// Replay streams framed records (the WriterDevice/FileDevice framing,
// see frame.go) from r, invoking fn on each in log order. Equivalent to
// ReplayFrom(r, 1, 0, fn): frames are numbered from 1 and none are
// skipped.
func Replay(r io.Reader, fn func(*Record) error) (ReplayStats, error) {
	return ReplayFrom(r, 1, 0, fn)
}

// ReplayFrom streams framed records from r, whose first frame has
// sequence firstSeq, invoking fn only on records with sequence above
// fromSeq (a checkpoint LSN: everything at or below it is already in the
// checkpoint image). Every complete frame — skipped or not — must pass
// its header-complement and CRC checks.
//
// A truncated frame at the tail is tolerated — it is what a crash
// mid-append leaves — and reported through ReplayStats.Torn. Everything
// else that is malformed is real corruption and fails the replay with
// ErrCorrupt: a header whose length words disagree, a frame length past
// MaxFrameBytes, a payload CRC mismatch, or a complete frame whose
// record decodes short. The single-Write append discipline guarantees a
// process crash only ever leaves a prefix, so "short at the tail" is the
// one shape a crash can explain; the checksums make every in-place flip
// detectable rather than a silent misparse or silent truncation.
func ReplayFrom(r io.Reader, firstSeq, fromSeq uint64, fn func(*Record) error) (ReplayStats, error) {
	var st ReplayStats
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [frameHeaderSize]byte
	seq := firstSeq - 1 // sequence of the previously read frame
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return st, nil // clean end on a frame boundary
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				st.Torn = true // torn inside the header
				return st, nil
			}
			return st, err
		}
		frameLen, wantCRC, ok := parseFrameHeader(hdr[:])
		if !ok {
			return st, fmt.Errorf("wal: replay at offset %d (seq %d): %w: frame length %#x contradicts its complement",
				st.Offset, seq+1, ErrCorrupt, frameLen)
		}
		if frameLen > MaxFrameBytes {
			return st, fmt.Errorf("wal: replay at offset %d (seq %d): %w: frame length %d overflows the %d cap",
				st.Offset, seq+1, ErrCorrupt, frameLen, MaxFrameBytes)
		}
		buf := make([]byte, frameLen)
		if _, err := io.ReadFull(br, buf); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				st.Torn = true // torn inside the frame body
				return st, nil
			}
			return st, err
		}
		if crc32.Checksum(buf, castagnoli) != wantCRC {
			return st, fmt.Errorf("wal: replay at offset %d (seq %d): %w: payload CRC mismatch",
				st.Offset, seq+1, ErrCorrupt)
		}
		seq++
		st.LastSeq = seq
		st.Offset += frameSize(len(buf))
		if seq <= fromSeq {
			st.Skipped++
			continue
		}
		// The frame arrived whole and CRC-clean, so a decode failure here
		// — torn-shaped or not — is corruption (a writer bug), not a
		// crash artifact. Re-type Decode's truncation errors accordingly
		// so errors.Is(err, ErrTornRecord) never holds for mid-log
		// damage.
		rec, err := Decode(buf)
		if err != nil {
			if errors.Is(err, ErrTornRecord) {
				return st, fmt.Errorf("wal: replay at seq %d: %w: complete frame decodes short (%v)",
					seq, ErrCorrupt, err)
			}
			return st, fmt.Errorf("wal: replay at seq %d: %w", seq, err)
		}
		if err := fn(rec); err != nil {
			return st, err
		}
		st.Records++
		if st.FirstApplied == 0 {
			st.FirstApplied = seq
		}
		st.Bytes += frameSize(len(buf))
	}
}

// ReplayFile replays one log file from its start; see Replay. The file
// must exist — recovery decides how to treat missing partition logs.
func ReplayFile(path string, fn func(*Record) error) (ReplayStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return ReplayStats{}, err
	}
	defer f.Close()
	return Replay(f, fn)
}

// ReplayPartition replays partition p's log in dir — the segment chain
// if segment files exist, otherwise the legacy single file — invoking fn
// on every record with sequence above fromSeq. Closed segments that a
// checkpoint fully covers are skipped without being opened (their
// first-frame sequence is in the file name); the partially covered
// segment skips frame by frame, still CRC-checking what it skips. Chain
// holes (a segment whose first sequence does not continue its
// predecessor, or a replay start already truncated away) and torn
// non-final segments are corruption: recovery must fail loudly rather
// than resurrect a state missing committed records. A partition with no
// log at all returns an fs.ErrNotExist error, as ReplayFile does.
func ReplayPartition(dir string, p int, fromSeq uint64, fn func(*Record) error) (ReplayStats, error) {
	segs, err := ListSegments(dir, p)
	if err != nil {
		return ReplayStats{}, err
	}
	legacy := PartitionLogPath(dir, p)
	if len(segs) == 0 {
		f, err := os.Open(legacy)
		if err != nil {
			return ReplayStats{}, err
		}
		defer f.Close()
		return ReplayFrom(f, 1, fromSeq, fn)
	}
	if _, err := os.Stat(legacy); err == nil {
		return ReplayStats{}, fmt.Errorf("wal: partition %d has both a legacy log and segments in %s", p, dir)
	}
	if fromSeq+1 < segs[0].FirstSeq {
		return ReplayStats{}, fmt.Errorf("wal: partition %d: %w: log starts at seq %d but replay needs seq %d — truncated past the checkpoint",
			p, ErrCorrupt, segs[0].FirstSeq, fromSeq+1)
	}
	var st ReplayStats
	expect := segs[0].FirstSeq
	for i, sg := range segs {
		if sg.FirstSeq != expect {
			return st, fmt.Errorf("wal: partition %d: %w: segment chain hole — %s starts at seq %d, want %d",
				p, ErrCorrupt, sg.Path, sg.FirstSeq, expect)
		}
		last := i == len(segs)-1
		if !last && segs[i+1].FirstSeq <= fromSeq+1 {
			// Every frame of this closed segment is ≤ fromSeq: the
			// checkpoint covers it whole, no need to open the file.
			st.SkippedSegments++
			st.Skipped += int(segs[i+1].FirstSeq - sg.FirstSeq)
			expect = segs[i+1].FirstSeq
			continue
		}
		f, err := os.Open(sg.Path)
		if err != nil {
			return st, err
		}
		fst, err := ReplayFrom(f, sg.FirstSeq, fromSeq, fn)
		f.Close()
		st.add(fst)
		if err != nil {
			return st, fmt.Errorf("wal: segment %s: %w", sg.Path, err)
		}
		if fst.Torn && !last {
			return st, fmt.Errorf("wal: partition %d: %w: segment %s is torn but not the newest — a crash cannot do that",
				p, ErrCorrupt, sg.Path)
		}
		if fst.LastSeq != 0 {
			expect = fst.LastSeq + 1
		}
	}
	return st, nil
}
