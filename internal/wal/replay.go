package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// ReplayStats reports what one log replay consumed.
type ReplayStats struct {
	// Records is the number of complete records decoded and applied.
	Records int
	// Bytes is the offset of the last complete frame — the point a log
	// that will be appended to again must be truncated to when Torn.
	Bytes int64
	// Torn reports that the log ended in an incomplete frame (the normal
	// shape after a crash mid-append); the partial bytes were discarded.
	Torn bool
}

// MaxFrameBytes caps the frame length Replay accepts. A prefix above it
// is length-prefix garbage (a flipped bit, not a plausible record):
// treating it as a torn tail would silently discard every committed
// record after the corruption — and allocate up to 4 GiB first.
const MaxFrameBytes = 1 << 28 // 256 MiB

// Replay streams length-prefixed records (the WriterDevice/FileDevice
// framing) from r, invoking fn on each in log order. A truncated frame at
// the tail is tolerated — it is what a crash mid-append leaves — and
// reported through ReplayStats.Torn; a malformed record that is not a
// pure truncation (Decode's ErrCorrupt, a frame length past
// MaxFrameBytes) is real corruption and fails the replay, as does any
// error from fn.
//
// The framing has no per-record checksum, so a corrupted-in-place length
// prefix within the plausible range is indistinguishable from a torn
// tail — both read short at EOF. The single-Write append discipline makes
// process crashes safe (a crash only ever leaves a prefix); storage-level
// bit rot needs checksummed frames (ROADMAP).
func Replay(r io.Reader, fn func(*Record) error) (ReplayStats, error) {
	var st ReplayStats
	br := bufio.NewReader(r)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return st, nil // clean end on a frame boundary
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				st.Torn = true // torn inside the length prefix
				return st, nil
			}
			return st, err
		}
		frameLen := binary.LittleEndian.Uint32(hdr[:])
		if frameLen > MaxFrameBytes {
			return st, fmt.Errorf("wal: replay at offset %d: %w: frame length %d overflows the %d cap",
				st.Bytes, ErrCorrupt, frameLen, MaxFrameBytes)
		}
		buf := make([]byte, frameLen)
		if _, err := io.ReadFull(br, buf); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				st.Torn = true // torn inside the frame body
				return st, nil
			}
			return st, err
		}
		// The frame arrived whole, so its content was fully written: a
		// decode failure here — torn-shaped or not — is corruption, not a
		// crash artifact (frames are appended with single writes). Re-type
		// Decode's truncation errors accordingly so errors.Is(err,
		// ErrTornRecord) never holds for mid-log corruption.
		rec, err := Decode(buf)
		if err != nil {
			if errors.Is(err, ErrTornRecord) {
				return st, fmt.Errorf("wal: replay at offset %d: %w: complete frame decodes short (%v)",
					st.Bytes, ErrCorrupt, err)
			}
			return st, fmt.Errorf("wal: replay at offset %d: %w", st.Bytes, err)
		}
		if err := fn(rec); err != nil {
			return st, err
		}
		st.Records++
		st.Bytes += int64(4 + len(buf))
	}
}

// ReplayFile replays one log file; see Replay. The file must exist —
// recovery decides how to treat missing partition logs.
func ReplayFile(path string, fn func(*Record) error) (ReplayStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return ReplayStats{}, err
	}
	defer f.Close()
	return Replay(f, fn)
}
