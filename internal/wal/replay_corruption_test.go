package wal

import (
	"bytes"
	"errors"
	"testing"
)

// TestCorruptionInjectionMatrix is the exhaustive single-byte-flip
// table: every frame-header byte and a sample of payload bytes of a real
// multi-record log gets one bit flipped, and the replay verdict must be
// exactly ErrCorrupt — never a silent torn-tail truncation, never a
// misparse — with every record before the damaged frame still applied.
// Truncations (the other fault class) must conversely always read as
// torn, never corrupt; together the two classes pin the decision
// boundary the frame format exists to draw.
func TestCorruptionInjectionMatrix(t *testing.T) {
	var log bytes.Buffer
	dev := NewWriterDevice(&log)
	recs := []*Record{
		sample(),
		{TxnID: 2, Writes: []Write{{Table: "acct", Key: 7, Image: bytes.Repeat([]byte{0xA5}, 48)}}},
		{TxnID: 3, Writes: []Write{{Table: "acct", Key: 9, Image: bytes.Repeat([]byte{0x5A}, 16)}}},
	}
	var bounds [][2]int64
	off := int64(0)
	for _, r := range recs {
		if _, err := dev.Append(Encode(r)); err != nil {
			t.Fatal(err)
		}
		end := off + frameSize(len(Encode(r)))
		bounds = append(bounds, [2]int64{off, end})
		off = end
	}
	clean := log.Bytes()

	replayCount := func(data []byte) (int, ReplayStats, error) {
		n := 0
		st, err := Replay(bytes.NewReader(data), func(*Record) error { n++; return nil })
		return n, st, err
	}
	if n, st, err := replayCount(clean); err != nil || n != len(recs) || st.Torn {
		t.Fatalf("clean log: n=%d st=%+v err=%v", n, st, err)
	}

	// Class 1: in-place bit flips. Every header byte of every frame, and
	// every 7th payload byte, across all 8 bit positions for the header
	// words (a single position suffices for payload bytes — the CRC sees
	// them identically).
	for fi, b := range bounds {
		var offsets []int64
		for o := b[0]; o < b[0]+frameHeaderSize; o++ {
			offsets = append(offsets, o)
		}
		for o := b[0] + frameHeaderSize; o < b[1]; o += 7 {
			offsets = append(offsets, o)
		}
		for _, o := range offsets {
			header := o < b[0]+frameHeaderSize
			bits := []byte{0x01}
			if header {
				bits = []byte{0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80}
			}
			for _, bit := range bits {
				data := append([]byte(nil), clean...)
				data[o] ^= bit
				n, st, err := replayCount(data)
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("flip 0x%02x at offset %d (frame %d, header=%v): err=%v torn=%v — want ErrCorrupt",
						bit, o, fi, header, err, st.Torn)
				}
				if errors.Is(err, ErrTornRecord) {
					t.Fatalf("flip at offset %d mis-typed as torn: %v", o, err)
				}
				if n != fi {
					t.Fatalf("flip at offset %d (frame %d): applied %d records before failing, want %d", o, fi, n, fi)
				}
			}
		}
	}

	// Class 2: truncations. A cut at any non-boundary offset is a torn
	// tail — recoverable, no error, every fully preserved record applied.
	for cut := 0; cut < len(clean); cut++ {
		data := clean[:cut]
		wantN := 0
		for _, b := range bounds {
			if int64(cut) >= b[1] {
				wantN++
			}
		}
		n, st, err := replayCount(data)
		if err != nil {
			t.Fatalf("cut at %d: err=%v — truncation must never be an error", cut, err)
		}
		onBoundary := cut == 0
		for _, b := range bounds {
			if int64(cut) == b[1] {
				onBoundary = true
			}
		}
		if st.Torn == onBoundary || n != wantN {
			t.Fatalf("cut at %d: n=%d want %d, torn=%v boundary=%v", cut, n, wantN, st.Torn, onBoundary)
		}
	}
}
