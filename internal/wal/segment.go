package wal

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segment files are named wal-<partition>-<firstSeq>.seg: the sequence
// number of the first frame is in the name, so recovery can decide which
// whole files a checkpoint lets it skip — and truncation can decide
// which whole files to unlink — without reading them. The fixed-width
// zero padding keeps lexicographic and numeric order identical.

// SegmentPath returns the file name of the segment of partition p whose
// first frame has sequence firstSeq.
func SegmentPath(dir string, p int, firstSeq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%03d-%020d.seg", p, firstSeq))
}

// SegmentInfo describes one on-disk segment file.
type SegmentInfo struct {
	Path     string
	FirstSeq uint64
	Bytes    int64
}

// ListSegments returns partition p's segment files in dir, ordered by
// FirstSeq ascending. A missing directory is an empty list, not an
// error — a partition that never logged has nothing to list.
func ListSegments(dir string, p int) ([]SegmentInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: list segments: %w", err)
	}
	prefix := fmt.Sprintf("wal-%03d-", p)
	var segs []SegmentInfo
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".seg") {
			continue
		}
		seqStr := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".seg")
		seq, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil || seq == 0 {
			return nil, fmt.Errorf("wal: segment %s: malformed sequence in name", name)
		}
		info, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("wal: stat segment %s: %w", name, err)
		}
		segs = append(segs, SegmentInfo{Path: filepath.Join(dir, name), FirstSeq: seq, Bytes: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].FirstSeq < segs[j].FirstSeq })
	for i := 1; i < len(segs); i++ {
		if segs[i].FirstSeq == segs[i-1].FirstSeq {
			return nil, fmt.Errorf("wal: duplicate segment first-sequence %d in %s", segs[i].FirstSeq, dir)
		}
	}
	return segs, nil
}

// FrameBounds reports the [start, end) byte offsets of every complete,
// CRC-valid frame in the log file at path, and whether the file ends in
// a torn (incomplete) frame. A complete frame that fails its header
// complement or payload CRC check is corruption and fails the scan —
// callers repairing a crash tail must not truncate away evidence of bit
// rot. Used by segmented-device open (torn-tail repair), crash-test
// tooling and corruption-injection tests.
func FrameBounds(path string) ([][2]int64, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, false, err
	}
	var bounds [][2]int64
	off := int64(0)
	n := int64(len(data))
	for off < n {
		if n-off < frameHeaderSize {
			return bounds, true, nil // torn inside the header
		}
		length, wantCRC, ok := parseFrameHeader(data[off:])
		if !ok {
			return bounds, false, fmt.Errorf("wal: frame at offset %d: %w: length %#x contradicts its complement",
				off, ErrCorrupt, length)
		}
		if length > MaxFrameBytes {
			return bounds, false, fmt.Errorf("wal: frame at offset %d: %w: length %d overflows the %d cap",
				off, ErrCorrupt, length, MaxFrameBytes)
		}
		end := off + frameSize(int(length))
		if end > n {
			return bounds, true, nil // torn inside the payload
		}
		if crc32.Checksum(data[off+frameHeaderSize:end], castagnoli) != wantCRC {
			return bounds, false, fmt.Errorf("wal: frame at offset %d: %w: payload CRC mismatch", off, ErrCorrupt)
		}
		bounds = append(bounds, [2]int64{off, end})
		off = end
	}
	return bounds, false, nil
}
