package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// fillSegments appends n single-write records through a segmented device
// with a tiny threshold so rotation actually happens, and returns the
// device (left open).
func fillSegments(t *testing.T, dir string, n int, segMax int64) *FileDevice {
	t.Helper()
	dev, err := OpenSegmentedDevice(dir, 0, FsyncNone, 0, segMax)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		rec := &Record{TxnID: uint64(i), Writes: []Write{{Table: "t", Key: uint64(i), Image: make([]byte, 32)}}}
		if seq, err := dev.Append(Encode(rec)); err != nil || seq != uint64(i) {
			t.Fatalf("append %d: seq=%d err=%v", i, seq, err)
		}
	}
	return dev
}

func TestSegmentedRoundTripAndRotation(t *testing.T) {
	dir := t.TempDir()
	dev := fillSegments(t, dir, 50, 256)
	if dev.Segments() < 2 {
		t.Fatalf("no rotation happened: %d segments", dev.Segments())
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	st, err := ReplayPartition(dir, 0, 0, func(r *Record) error {
		got = append(got, r.TxnID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 50 || st.Torn || st.Skipped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	for i, id := range got {
		if id != uint64(i+1) {
			t.Fatalf("record %d has TxnID %d", i, id)
		}
	}
	if st.FirstApplied != 1 || st.LastSeq != 50 {
		t.Fatalf("seq range = [%d, %d]", st.FirstApplied, st.LastSeq)
	}
}

func TestSegmentedReopenContinues(t *testing.T) {
	dir := t.TempDir()
	dev := fillSegments(t, dir, 20, 256)
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	dev2, err := OpenSegmentedDevice(dir, 0, FsyncNone, 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	if got := dev2.Seq(); got != 20 {
		t.Fatalf("reopened Seq = %d, want 20", got)
	}
	if seq, err := dev2.Append(Encode(&Record{TxnID: 21})); err != nil || seq != 21 {
		t.Fatalf("append after reopen: seq=%d err=%v", seq, err)
	}
	dev2.Close()
	n := 0
	st, err := ReplayPartition(dir, 0, 0, func(*Record) error { n++; return nil })
	if err != nil || n != 21 || st.LastSeq != 21 {
		t.Fatalf("replay after reopen: n=%d st=%+v err=%v", n, st, err)
	}
}

// TestSegmentedTornTailRepair crash-truncates the newest segment
// mid-frame and reopens: the torn tail must be repaired in place so the
// device appends cleanly after it, losing only the torn frame.
func TestSegmentedTornTailRepair(t *testing.T) {
	dir := t.TempDir()
	dev := fillSegments(t, dir, 10, 1<<20) // single segment
	path := dev.Path()
	dev.Close()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	dev2, err := OpenSegmentedDevice(dir, 0, FsyncNone, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got := dev2.Seq(); got != 9 {
		t.Fatalf("Seq after torn-tail repair = %d, want 9", got)
	}
	if _, err := dev2.Append(Encode(&Record{TxnID: 100})); err != nil {
		t.Fatal(err)
	}
	dev2.Close()
	var ids []uint64
	st, err := ReplayPartition(dir, 0, 0, func(r *Record) error { ids = append(ids, r.TxnID); return nil })
	if err != nil || st.Torn {
		t.Fatalf("replay: %+v %v", st, err)
	}
	if len(ids) != 10 || ids[8] != 9 || ids[9] != 100 {
		t.Fatalf("records after repair+append: %v", ids)
	}
}

// TestSegmentedOpenRefusesCorruption pins that open-time repair never
// truncates away bit rot: a CRC-broken frame in the newest segment fails
// the open rather than being "repaired".
func TestSegmentedOpenRefusesCorruption(t *testing.T) {
	dir := t.TempDir()
	dev := fillSegments(t, dir, 5, 1<<20)
	path := dev.Path()
	dev.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeaderSize] ^= 0x01 // first payload byte of the first frame
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegmentedDevice(dir, 0, FsyncNone, 0, 1<<20); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over bit rot: %v, want ErrCorrupt", err)
	}
}

func TestSegmentedRefusesLegacyMix(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(PartitionLogPath(dir, 0), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegmentedDevice(dir, 0, FsyncNone, 0, 0); err == nil {
		t.Fatal("segmented open over a legacy log must fail")
	}
}

func TestTruncateBelow(t *testing.T) {
	dir := t.TempDir()
	dev := fillSegments(t, dir, 60, 256)
	nSegs := dev.Segments()
	if nSegs < 3 {
		t.Fatalf("want ≥3 segments, got %d", nSegs)
	}
	before := dev.LiveBytes()
	dropped, err := dev.TruncateBelow(30)
	if err != nil {
		t.Fatal(err)
	}
	if dropped <= 0 || dev.LiveBytes() != before-dropped {
		t.Fatalf("dropped=%d live %d -> %d", dropped, before, dev.LiveBytes())
	}
	dev.Close()
	// Everything above seq 30 must still replay; the log may retain a
	// little extra prefix (whole-segment granularity) but never lose a
	// record above the cut.
	var ids []uint64
	st, err := ReplayPartition(dir, 0, 30, func(r *Record) error { ids = append(ids, r.TxnID); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 30 || ids[0] != 31 || ids[len(ids)-1] != 60 {
		t.Fatalf("post-truncation replay: %d records %v", st.Records, ids)
	}
	if st.SkippedSegments == 0 && st.Skipped == 0 {
		t.Fatalf("truncation left nothing to skip? stats=%+v", st)
	}
	// A full replay of the truncated chain must fail loudly: the records
	// below the cut are gone, and pretending otherwise would resurrect a
	// state missing committed writes.
	if _, err := ReplayPartition(dir, 0, 0, func(*Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("full replay of truncated chain: %v, want ErrCorrupt", err)
	}
}

// TestReplayPartitionSkipsWholeSegments pins the whole-file skip: with a
// checkpoint covering the first segments, recovery must not even open
// them (Bytes counts only applied frames).
func TestReplayPartitionSkipsWholeSegments(t *testing.T) {
	dir := t.TempDir()
	dev := fillSegments(t, dir, 60, 256)
	dev.Close()
	full, err := ReplayPartition(dir, 0, 0, func(*Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	st, err := ReplayPartition(dir, 0, 40, func(*Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 20 || st.SkippedSegments == 0 {
		t.Fatalf("suffix replay: %+v", st)
	}
	if st.Skipped+st.Records != 60 {
		t.Fatalf("skipped %d + applied %d != 60", st.Skipped, st.Records)
	}
	if st.Bytes >= full.Bytes {
		t.Fatalf("suffix replay read %d bytes, full replay %d — no work was saved", st.Bytes, full.Bytes)
	}
}

// TestReplayPartitionHole pins chain-continuity checking: removing a
// middle segment must fail the replay as corruption.
func TestReplayPartitionHole(t *testing.T) {
	dir := t.TempDir()
	dev := fillSegments(t, dir, 60, 256)
	dev.Close()
	segs, err := ListSegments(dir, 0)
	if err != nil || len(segs) < 3 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	if err := os.Remove(segs[1].Path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayPartition(dir, 0, 0, func(*Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay over a segment hole: %v, want ErrCorrupt", err)
	}
}

// TestReplayPartitionVerifiesSkippedFrames pins that frame-level
// skipping still checks CRCs: a bit flip below the checkpoint LSN in a
// segment recovery reads is corruption, not silently ignored.
func TestReplayPartitionVerifiesSkippedFrames(t *testing.T) {
	dir := t.TempDir()
	dev := fillSegments(t, dir, 10, 1<<20) // one segment
	path := dev.Path()
	dev.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeaderSize+1] ^= 0x40 // payload of frame 1, which fromSeq=5 skips
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayPartition(dir, 0, 5, func(*Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip in skipped frame: %v, want ErrCorrupt", err)
	}
}

func TestFrameBounds(t *testing.T) {
	dir := t.TempDir()
	dev := fillSegments(t, dir, 3, 1<<20)
	path := dev.Path()
	dev.Close()
	bounds, torn, err := FrameBounds(path)
	if err != nil || torn || len(bounds) != 3 {
		t.Fatalf("bounds=%v torn=%v err=%v", bounds, torn, err)
	}
	info, _ := os.Stat(path)
	if bounds[0][0] != 0 || bounds[2][1] != info.Size() {
		t.Fatalf("bounds do not tile the file: %v size=%d", bounds, info.Size())
	}
	if err := os.Truncate(path, info.Size()-1); err != nil {
		t.Fatal(err)
	}
	if b, torn, err := FrameBounds(path); err != nil || !torn || len(b) != 2 {
		t.Fatalf("torn scan: %v %v %v", b, torn, err)
	}
}

func TestListSegmentsIgnoresOtherPartitions(t *testing.T) {
	dir := t.TempDir()
	for p := 0; p < 2; p++ {
		dev, err := OpenSegmentedDevice(dir, p, FsyncNone, 0, 128)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if _, err := dev.Append(Encode(&Record{TxnID: uint64(p*100 + i)})); err != nil {
				t.Fatal(err)
			}
		}
		dev.Close()
	}
	for p := 0; p < 2; p++ {
		segs, err := ListSegments(dir, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) == 0 {
			t.Fatalf("partition %d: no segments", p)
		}
		for _, sg := range segs {
			if filepath.Base(sg.Path)[:8] != "wal-00"+string(rune('0'+p))+"-" {
				t.Fatalf("partition %d listed %s", p, sg.Path)
			}
		}
	}
}
