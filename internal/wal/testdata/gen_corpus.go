//go:build ignore

// gen_corpus.go regenerates the committed fuzz seed corpus under
// testdata/fuzz. The corpus needs real CRC-32C values, which cannot be
// written by hand; run this after any frame-format change:
//
//	go run internal/wal/testdata/gen_corpus.go
//
// The seeds cover the interesting verdict classes: a clean multi-frame
// log (with and without a covering checkpoint LSN), a payload bit flip,
// a header bit flip, and a torn tail.
package main

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"

	"bamboo/internal/wal"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func frame(buf, rec []byte) []byte {
	n := uint32(len(rec))
	buf = binary.LittleEndian.AppendUint32(buf, n)
	buf = binary.LittleEndian.AppendUint32(buf, ^n)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(rec, castagnoli))
	return append(buf, rec...)
}

func writeSeed(dir, name string, lines ...string) {
	body := "go test fuzz v1\n"
	for _, l := range lines {
		body += l + "\n"
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		panic(err)
	}
	fmt.Println("wrote", path)
}

func bytesLit(b []byte) string { return "[]byte(" + strconv.Quote(string(b)) + ")" }
func u64Lit(v uint64) string   { return "uint64(" + strconv.FormatUint(v, 10) + ")" }

func main() {
	root := filepath.Join("internal", "wal", "testdata", "fuzz")

	var log []byte
	var recs [][]byte
	for i := 1; i <= 3; i++ {
		enc := wal.Encode(&wal.Record{TxnID: uint64(i), Writes: []wal.Write{
			{Table: "acct", Key: uint64(10 + i), Image: []byte{byte(i), 0xA5, 0x5A, byte(i)}},
		}})
		recs = append(recs, enc)
		log = frame(log, enc)
	}

	payloadFlip := append([]byte(nil), log...)
	payloadFlip[12] ^= 0x01 // first payload byte of frame 1
	headerFlip := append([]byte(nil), log...)
	headerFlip[1] ^= 0x80 // length word of frame 1

	ckptDir := filepath.Join(root, "FuzzReplayCheckpoint")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		panic(err)
	}
	writeSeed(ckptDir, "seed-clean-full", bytesLit(log), u64Lit(0))
	writeSeed(ckptDir, "seed-clean-ckpt2", bytesLit(log), u64Lit(2))
	writeSeed(ckptDir, "seed-clean-ckpt-past-end", bytesLit(log), u64Lit(99))
	writeSeed(ckptDir, "seed-payload-bitflip", bytesLit(payloadFlip), u64Lit(0))
	writeSeed(ckptDir, "seed-header-bitflip", bytesLit(headerFlip), u64Lit(1))
	writeSeed(ckptDir, "seed-torn-tail", bytesLit(log[:len(log)-5]), u64Lit(1))
	writeSeed(ckptDir, "seed-empty", bytesLit(nil), u64Lit(0))

	decDir := filepath.Join(root, "FuzzDecode")
	if err := os.MkdirAll(decDir, 0o755); err != nil {
		panic(err)
	}
	writeSeed(decDir, "seed-record", bytesLit(recs[1]))
	flippedRec := append([]byte(nil), recs[1]...)
	flippedRec[9] ^= 0x10 // nWrites word
	writeSeed(decDir, "seed-record-bitflip", bytesLit(flippedRec))
}
