// Package wal implements the write-ahead log used at commit time. The
// paper's experiments "log to main memory — modern non-volatile memory
// would offer similar performance" (§5.1); the default device here is an
// in-memory buffer with the same serialization cost a real device would
// see, and an io.Writer-backed device is provided for durability tests.
//
// Bamboo requires no special logging treatment (paper §3.4): a transaction
// writes its commit record only after the concurrency-control protocol is
// satisfied (commit_semaphore drained), exactly like conventional 2PL.
//
// Two commit disciplines are supported:
//
//   - per-record (New): every Commit appends straight to the device;
//   - group commit (NewGroupCommit): committers hand their encoded record
//     to a background flusher and block until the epoch containing it is
//     durable, so one device write covers a whole batch of transactions.
//
// For the zero-allocation hot path, workers encode records into reusable
// per-worker buffers through Appender handles; Device implementations must
// therefore not retain the byte slice passed to Append past its return.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"
)

// Record is one commit record: the transaction id and its after-images.
type Record struct {
	TxnID  uint64
	Writes []Write
}

// Write is one tuple after-image inside a commit record.
type Write struct {
	Table string
	Key   uint64
	Image []byte
}

// Device is the destination of serialized commit records.
//
// Append must not retain rec after it returns: callers reuse the buffer
// for the next record.
type Device interface {
	// Append durably appends one serialized record and returns its LSN.
	Append(rec []byte) (lsn uint64, err error)
}

// BatchDevice is optionally implemented by devices that can make a whole
// batch of records durable in one operation; the group committer uses it
// to amortize per-append costs. AppendBatch returns the LSN of the last
// record in the batch. The no-retention rule of Append applies.
type BatchDevice interface {
	AppendBatch(recs [][]byte) (lastLSN uint64, err error)
}

// ErrClosed is returned by Commit after Close.
var ErrClosed = errors.New("wal: log closed")

// DeviceStats is the durability telemetry a device accumulates: how many
// records landed, in how many device write operations (the quantity group
// commit amortizes), how many payload bytes, and what the fsyncs cost.
type DeviceStats struct {
	Appends  uint64        // records appended
	Batches  uint64        // device write operations (Append/AppendBatch calls)
	Bytes    uint64        // payload bytes appended (excluding framing)
	Syncs    uint64        // fsync operations issued
	SyncTime time.Duration // total wall time spent inside fsync
}

// Add returns the element-wise sum of s and o.
func (s DeviceStats) Add(o DeviceStats) DeviceStats {
	return DeviceStats{
		Appends:  s.Appends + o.Appends,
		Batches:  s.Batches + o.Batches,
		Bytes:    s.Bytes + o.Bytes,
		Syncs:    s.Syncs + o.Syncs,
		SyncTime: s.SyncTime + o.SyncTime,
	}
}

// StatsDevice is optionally implemented by devices that report
// DeviceStats; the benchmark harness surfaces them per point.
type StatsDevice interface {
	Stats() DeviceStats
}

// Log serializes commit records and appends them to a device, either
// per-record or through an epoch-based group committer. It is safe for
// concurrent use; serialization happens outside the device lock.
type Log struct {
	dev Device
	gc  *groupCommitter // nil = per-record commits
}

// New returns a per-record log over the given device; a nil device means
// an in-memory device with recording enabled.
func New(dev Device) *Log {
	if dev == nil {
		dev = NewMemDevice(true)
	}
	return &Log{dev: dev}
}

// NewGroupCommit returns a log whose commits are batched by a background
// flusher. interval is the epoch accumulation window: 0 flushes as soon as
// the flusher observes pending records (pure piggyback batching — records
// arriving while a flush is in progress form the next batch), larger
// values trade commit latency for bigger batches. Close must be called to
// stop the flusher.
func NewGroupCommit(dev Device, interval time.Duration) *Log {
	if dev == nil {
		dev = NewMemDevice(true)
	}
	l := &Log{dev: dev, gc: newGroupCommitter(dev, interval)}
	go l.gc.loop()
	return l
}

// GroupCommit reports whether the log batches commits.
func (l *Log) GroupCommit() bool { return l.gc != nil }

// Commit serializes and appends rec, returning its LSN (in group-commit
// mode: the last LSN of the flushed batch). The convenience path for
// tests; hot paths use an Appender to reuse the encode buffer.
func (l *Log) Commit(rec *Record) (uint64, error) {
	return l.append(Encode(rec))
}

// submit registers enc without waiting for durability; Ticket.Wait blocks
// until the epoch containing it is flushed. Per-record logs append (and
// are durable) inside submit itself, so Wait is immediate.
func (l *Log) submit(enc []byte) Ticket {
	if l.gc != nil {
		epoch, err := l.gc.submit(enc)
		return Ticket{gc: l.gc, epoch: epoch, err: err}
	}
	lsn, err := l.dev.Append(enc)
	return Ticket{lsn: lsn, err: err}
}

// Close stops the group-commit flusher after draining pending records.
// It is a no-op for per-record logs. Commits issued after Close fail with
// ErrClosed.
func (l *Log) Close() error {
	if l.gc == nil {
		return nil
	}
	return l.gc.close()
}

func (l *Log) append(enc []byte) (uint64, error) {
	if l.gc != nil {
		return l.gc.commit(enc)
	}
	return l.dev.Append(enc)
}

// Appender is a per-worker commit handle owning a reusable encode buffer,
// so steady-state commits allocate nothing. Not safe for concurrent use;
// each worker session owns one.
type Appender struct {
	l   *Log
	buf []byte
}

// NewAppender returns a commit handle for one worker.
func (l *Log) NewAppender() *Appender { return &Appender{l: l} }

// Commit encodes rec into the appender's buffer and commits it. The
// buffer is reused on the next call, which is safe under the Device
// no-retention rule and because group commit blocks until the flush that
// covers the record completes.
//
// The encode copies rec's payloads — including row images — into the
// appender's own buffer before anything crosses the device boundary, so
// the log never retains a reference to a caller's row image past
// Commit's (or Submit's) return. That no-retain contract is what lets
// the engine share one immutable image buffer between the lock table,
// the version chain and the WAL, and recycle it at release without
// consulting the log.
func (a *Appender) Commit(rec *Record) (uint64, error) {
	a.buf = AppendRecord(a.buf[:0], rec)
	return a.l.append(a.buf)
}

// Submit encodes rec and registers it for commit without waiting for
// durability; the returned Ticket's Wait blocks until the record is. It
// exists so a transaction whose writes span several partition logs can
// submit to all of them and overlap their group-commit flushes instead of
// paying one full epoch wait per log.
//
// At most one Ticket may be outstanding per Appender: the encode buffer
// is retained by the flusher until the covering flush completes, so the
// caller must Wait before the next Submit or Commit on this appender.
func (a *Appender) Submit(rec *Record) Ticket {
	a.buf = AppendRecord(a.buf[:0], rec)
	return a.l.submit(a.buf)
}

// Ticket is a pending submission. The zero value Waits as an immediate
// (lsn 0, nil) result, so a fixed-size ticket scratch array can be waited
// on wholesale.
type Ticket struct {
	gc    *groupCommitter // nil: lsn/err already final
	epoch uint64
	lsn   uint64
	err   error
}

// Wait blocks until the submitted record is durable, returning its LSN
// (group commit: the last LSN of the covering batch).
func (t Ticket) Wait() (uint64, error) {
	if t.gc == nil || t.err != nil {
		return t.lsn, t.err
	}
	return t.gc.waitEpoch(t.epoch)
}

// groupCommitter implements epoch-based group commit: committers append
// their encoded record to the pending batch of the open epoch and sleep
// until the flusher reports that epoch durable. The flusher closes an
// epoch, writes its whole batch with one (batched, if supported) device
// call, then wakes every committer that was in it.
type groupCommitter struct {
	dev      Device
	interval time.Duration

	mu      sync.Mutex
	work    sync.Cond // signaled when pending work or close arrives
	flushed sync.Cond // broadcast when durable advances
	pending [][]byte  // records of the open epoch
	spare   [][]byte  // recycled batch slice
	epoch   uint64    // open epoch number
	durable uint64    // last durable epoch
	lastLSN uint64    // device LSN of the last flushed record
	err     error     // sticky flush error, reported to all waiters
	closed  bool
	done    bool // flusher exited
}

func newGroupCommitter(dev Device, interval time.Duration) *groupCommitter {
	g := &groupCommitter{dev: dev, interval: interval, epoch: 1}
	g.work.L = &g.mu
	g.flushed.L = &g.mu
	return g
}

// commit registers enc in the open epoch and blocks until that epoch is
// durable. enc must remain unmodified until commit returns.
func (g *groupCommitter) commit(enc []byte) (uint64, error) {
	e, err := g.submit(enc)
	if err != nil {
		return 0, err
	}
	return g.waitEpoch(e)
}

// submit registers enc in the open epoch and returns that epoch number;
// enc must remain unmodified until waitEpoch(epoch) returns.
func (g *groupCommitter) submit(enc []byte) (uint64, error) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return 0, ErrClosed
	}
	e := g.epoch
	g.pending = append(g.pending, enc)
	if len(g.pending) == 1 {
		g.work.Signal()
	}
	g.mu.Unlock()
	return e, nil
}

// waitEpoch blocks until epoch e is durable. It waits even when a sticky
// error from an earlier epoch is already set: returning while a submitted
// record is still queued would let the caller reuse its encode buffer
// under the flusher's feet. durable advances past e on every flush
// (success or failure), so this always terminates; the flusher never
// exits with records still pending.
func (g *groupCommitter) waitEpoch(e uint64) (uint64, error) {
	g.mu.Lock()
	for g.durable < e && !g.done {
		g.flushed.Wait()
	}
	lsn, err := g.lastLSN, g.err
	if err == nil && g.durable < e {
		err = ErrClosed // flusher exited without covering our epoch
	}
	g.mu.Unlock()
	return lsn, err
}

func (g *groupCommitter) close() error {
	g.mu.Lock()
	g.closed = true
	g.work.Signal()
	for !g.done {
		g.flushed.Wait()
	}
	err := g.err
	g.mu.Unlock()
	return err
}

func (g *groupCommitter) loop() {
	g.mu.Lock()
	for {
		for len(g.pending) == 0 && !g.closed {
			g.work.Wait()
		}
		if len(g.pending) == 0 && g.closed {
			g.done = true
			g.flushed.Broadcast()
			g.mu.Unlock()
			return
		}
		if g.interval > 0 && !g.closed {
			// Epoch accumulation window: let more committers pile in.
			g.mu.Unlock()
			time.Sleep(g.interval)
			g.mu.Lock()
		}
		batch := g.pending
		g.pending = g.spare[:0]
		e := g.epoch
		g.epoch++
		g.mu.Unlock()

		lsn, err := flushBatch(g.dev, batch)

		for i := range batch {
			batch[i] = nil
		}
		g.mu.Lock()
		g.spare = batch[:0]
		g.durable = e
		if lsn != 0 {
			g.lastLSN = lsn
		}
		if err != nil && g.err == nil {
			g.err = err
		}
		g.flushed.Broadcast()
	}
}

func flushBatch(dev Device, batch [][]byte) (uint64, error) {
	if bd, ok := dev.(BatchDevice); ok {
		return bd.AppendBatch(batch)
	}
	var lsn uint64
	for _, rec := range batch {
		l, err := dev.Append(rec)
		if err != nil {
			return lsn, err
		}
		lsn = l
	}
	return lsn, nil
}

// Encode serializes a record:
//
//	txnID u64 | nWrites u32 | { tableLen u16 table | key u64 | imgLen u32 img }*
func Encode(rec *Record) []byte {
	n := 12
	for _, w := range rec.Writes {
		n += 2 + len(w.Table) + 8 + 4 + len(w.Image)
	}
	return AppendRecord(make([]byte, 0, n), rec)
}

// AppendRecord serializes rec onto buf (in the Encode format) and returns
// the extended slice; the zero-allocation path once buf's capacity has
// grown to the workload's record size.
func AppendRecord(buf []byte, rec *Record) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, rec.TxnID)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Writes)))
	for _, w := range rec.Writes {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(w.Table)))
		buf = append(buf, w.Table...)
		buf = binary.LittleEndian.AppendUint64(buf, w.Key)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(w.Image)))
		buf = append(buf, w.Image...)
	}
	return buf
}

// ErrCorrupt is returned by Decode for structurally malformed records
// (trailing bytes, write counts that cannot fit the buffer): content that
// no torn write could have produced.
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrTornRecord is returned by Decode when the buffer ends before the
// record's declared content — the shape a crash mid-append leaves behind.
// Recovery treats a torn record at the log tail as the end of the log;
// anywhere else it is corruption.
var ErrTornRecord = errors.New("wal: torn record")

// Decode parses a serialized record. All length arithmetic is done in
// uint64 so a hostile length prefix cannot overflow into a short bounds
// check and misparse (or panic on) the remainder of the buffer.
func Decode(buf []byte) (*Record, error) {
	n := uint64(len(buf))
	if n < 12 {
		return nil, fmt.Errorf("%w: %d bytes, header needs 12", ErrTornRecord, n)
	}
	rec := &Record{TxnID: binary.LittleEndian.Uint64(buf)}
	nw := binary.LittleEndian.Uint32(buf[8:])
	// A count past any plausible transaction is a garbage length prefix,
	// not a truncation; reject it as corruption outright. (Truncation
	// safety does not depend on this cap — every loop iteration below
	// consumes ≥14 bytes or returns ErrTornRecord, so iterations are
	// bounded by the buffer size regardless of the claimed count.)
	if nw > MaxRecordWrites {
		return nil, fmt.Errorf("%w: write count %d overflows the %d cap", ErrCorrupt, nw, MaxRecordWrites)
	}
	off := uint64(12)
	for i := uint32(0); i < nw; i++ {
		if 2 > n-off {
			return nil, fmt.Errorf("%w: write %d of %d truncated", ErrTornRecord, i, nw)
		}
		tl := uint64(binary.LittleEndian.Uint16(buf[off:]))
		off += 2
		if tl > n-off || 12 > n-off-tl {
			return nil, fmt.Errorf("%w: write %d of %d truncated", ErrTornRecord, i, nw)
		}
		table := string(buf[off : off+tl])
		off += tl
		key := binary.LittleEndian.Uint64(buf[off:])
		off += 8
		il := uint64(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if il > n-off {
			return nil, fmt.Errorf("%w: write %d image needs %d bytes, %d left", ErrTornRecord, i, il, n-off)
		}
		var img []byte
		if il > 0 {
			img = make([]byte, il)
			copy(img, buf[off:off+il])
		}
		off += il
		rec.Writes = append(rec.Writes, Write{Table: table, Key: key, Image: img})
	}
	if off != n {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, n-off)
	}
	return rec, nil
}

// MaxRecordWrites caps the per-record write count Decode accepts; counts
// above it are length-prefix garbage (ErrCorrupt), not truncations.
const MaxRecordWrites = 1 << 24

// MemDevice is an in-memory log device. With record=false it only counts
// appends (the benchmark configuration: pay serialization cost, keep no
// unbounded history); with record=true it retains copies of the records
// for recovery tests.
type MemDevice struct {
	mu      sync.Mutex
	lsn     uint64
	bytes   uint64
	batches uint64
	record  bool
	records [][]byte
}

// NewMemDevice returns an in-memory device.
func NewMemDevice(record bool) *MemDevice { return &MemDevice{record: record} }

// Append implements Device.
func (d *MemDevice) Append(rec []byte) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.batches++
	return d.appendLocked(rec), nil
}

// AppendBatch implements BatchDevice: the whole batch is made durable
// under one lock acquisition.
func (d *MemDevice) AppendBatch(recs [][]byte) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.batches++
	var lsn uint64
	for _, rec := range recs {
		lsn = d.appendLocked(rec)
	}
	return lsn, nil
}

func (d *MemDevice) appendLocked(rec []byte) uint64 {
	d.lsn++
	d.bytes += uint64(len(rec))
	if d.record {
		// Copy: the caller reuses its encode buffer (Device contract).
		cp := make([]byte, len(rec))
		copy(cp, rec)
		d.records = append(d.records, cp)
	}
	return d.lsn
}

// Len returns the number of appended records.
func (d *MemDevice) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int(d.lsn)
}

// Bytes returns the total bytes appended.
func (d *MemDevice) Bytes() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytes
}

// Batches returns the number of device write operations (one per Append
// or AppendBatch call) — the quantity group commit amortizes.
func (d *MemDevice) Batches() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.batches
}

// Stats implements StatsDevice. A memory device never syncs.
func (d *MemDevice) Stats() DeviceStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DeviceStats{Appends: d.lsn, Batches: d.batches, Bytes: d.bytes}
}

// Records returns decoded copies of all retained records.
func (d *MemDevice) Records() ([]*Record, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*Record, 0, len(d.records))
	for _, b := range d.records {
		r, err := Decode(b)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// WriterDevice appends framed records (see frame.go) to an io.Writer.
type WriterDevice struct {
	mu      sync.Mutex
	w       io.Writer
	scratch []byte
	lsn     uint64
	bytes   uint64
	batches uint64
}

// NewWriterDevice wraps w as a log device.
func NewWriterDevice(w io.Writer) *WriterDevice { return &WriterDevice{w: w} }

// Append implements Device.
func (d *WriterDevice) Append(rec []byte) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.batches++
	return d.appendLocked(rec)
}

// AppendBatch implements BatchDevice.
func (d *WriterDevice) AppendBatch(recs [][]byte) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.batches++
	var lsn uint64
	for _, rec := range recs {
		l, err := d.appendLocked(rec)
		if err != nil {
			return lsn, err
		}
		lsn = l
	}
	return lsn, nil
}

// Stats implements StatsDevice. An io.Writer cannot be synced.
func (d *WriterDevice) Stats() DeviceStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DeviceStats{Appends: d.lsn, Batches: d.batches, Bytes: d.bytes}
}

func (d *WriterDevice) appendLocked(rec []byte) (uint64, error) {
	d.scratch = appendFrame(d.scratch[:0], rec)
	if _, err := d.w.Write(d.scratch); err != nil {
		return 0, err
	}
	d.lsn++
	d.bytes += uint64(len(rec))
	return d.lsn, nil
}

// ReadAll decodes every record from a stream produced by WriterDevice,
// verifying each frame's header complement and payload CRC. Unlike
// Replay it is strict: a torn tail is an error, not a tolerated crash
// artifact — streams read here are expected to be complete.
func ReadAll(r io.Reader) ([]*Record, error) {
	var out []*Record
	var hdr [frameHeaderSize]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, fmt.Errorf("wal: truncated record: %w", err)
		}
		frameLen, wantCRC, ok := parseFrameHeader(hdr[:])
		if !ok {
			return nil, fmt.Errorf("wal: %w: frame length %#x contradicts its complement", ErrCorrupt, frameLen)
		}
		if frameLen > MaxFrameBytes {
			return nil, fmt.Errorf("wal: %w: frame length %d overflows the %d cap", ErrCorrupt, frameLen, MaxFrameBytes)
		}
		buf := make([]byte, frameLen)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("wal: truncated record: %w", err)
		}
		if crc32.Checksum(buf, castagnoli) != wantCRC {
			return nil, fmt.Errorf("wal: %w: payload CRC mismatch", ErrCorrupt)
		}
		rec, err := Decode(buf)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}
