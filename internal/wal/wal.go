// Package wal implements the write-ahead log used at commit time. The
// paper's experiments "log to main memory — modern non-volatile memory
// would offer similar performance" (§5.1); the default device here is an
// in-memory buffer with the same serialization cost a real device would
// see, and an io.Writer-backed device is provided for durability tests.
//
// Bamboo requires no special logging treatment (paper §3.4): a transaction
// writes its commit record only after the concurrency-control protocol is
// satisfied (commit_semaphore drained), exactly like conventional 2PL.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Record is one commit record: the transaction id and its after-images.
type Record struct {
	TxnID  uint64
	Writes []Write
}

// Write is one tuple after-image inside a commit record.
type Write struct {
	Table string
	Key   uint64
	Image []byte
}

// Device is the destination of serialized commit records.
type Device interface {
	// Append durably appends one serialized record and returns its LSN.
	Append(rec []byte) (lsn uint64, err error)
}

// Log serializes commit records and appends them to a device. It is safe
// for concurrent use; serialization happens outside the device lock.
type Log struct {
	dev Device
}

// New returns a log over the given device; a nil device means an
// in-memory device with recording enabled.
func New(dev Device) *Log {
	if dev == nil {
		dev = NewMemDevice(true)
	}
	return &Log{dev: dev}
}

// Commit serializes and appends rec, returning its LSN.
func (l *Log) Commit(rec *Record) (uint64, error) {
	return l.dev.Append(Encode(rec))
}

// Encode serializes a record:
//
//	txnID u64 | nWrites u32 | { tableLen u16 table | key u64 | imgLen u32 img }*
func Encode(rec *Record) []byte {
	n := 12
	for _, w := range rec.Writes {
		n += 2 + len(w.Table) + 8 + 4 + len(w.Image)
	}
	buf := make([]byte, 0, n)
	buf = binary.LittleEndian.AppendUint64(buf, rec.TxnID)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Writes)))
	for _, w := range rec.Writes {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(w.Table)))
		buf = append(buf, w.Table...)
		buf = binary.LittleEndian.AppendUint64(buf, w.Key)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(w.Image)))
		buf = append(buf, w.Image...)
	}
	return buf
}

// ErrCorrupt is returned by Decode for malformed records.
var ErrCorrupt = errors.New("wal: corrupt record")

// Decode parses a serialized record.
func Decode(buf []byte) (*Record, error) {
	if len(buf) < 12 {
		return nil, ErrCorrupt
	}
	rec := &Record{TxnID: binary.LittleEndian.Uint64(buf)}
	nw := binary.LittleEndian.Uint32(buf[8:])
	off := 12
	for i := uint32(0); i < nw; i++ {
		if off+2 > len(buf) {
			return nil, ErrCorrupt
		}
		tl := int(binary.LittleEndian.Uint16(buf[off:]))
		off += 2
		if off+tl+12 > len(buf) {
			return nil, ErrCorrupt
		}
		table := string(buf[off : off+tl])
		off += tl
		key := binary.LittleEndian.Uint64(buf[off:])
		off += 8
		il := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if off+il > len(buf) {
			return nil, ErrCorrupt
		}
		var img []byte
		if il > 0 {
			img = make([]byte, il)
			copy(img, buf[off:off+il])
		}
		off += il
		rec.Writes = append(rec.Writes, Write{Table: table, Key: key, Image: img})
	}
	if off != len(buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(buf)-off)
	}
	return rec, nil
}

// MemDevice is an in-memory log device. With record=false it only counts
// appends (the benchmark configuration: pay serialization cost, keep no
// unbounded history); with record=true it retains records for recovery
// tests.
type MemDevice struct {
	mu      sync.Mutex
	lsn     uint64
	bytes   uint64
	record  bool
	records [][]byte
}

// NewMemDevice returns an in-memory device.
func NewMemDevice(record bool) *MemDevice { return &MemDevice{record: record} }

// Append implements Device.
func (d *MemDevice) Append(rec []byte) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.lsn++
	d.bytes += uint64(len(rec))
	if d.record {
		d.records = append(d.records, rec)
	}
	return d.lsn, nil
}

// Len returns the number of appended records.
func (d *MemDevice) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int(d.lsn)
}

// Bytes returns the total bytes appended.
func (d *MemDevice) Bytes() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytes
}

// Records returns decoded copies of all retained records.
func (d *MemDevice) Records() ([]*Record, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*Record, 0, len(d.records))
	for _, b := range d.records {
		r, err := Decode(b)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// WriterDevice appends length-prefixed records to an io.Writer.
type WriterDevice struct {
	mu  sync.Mutex
	w   io.Writer
	lsn uint64
}

// NewWriterDevice wraps w as a log device.
func NewWriterDevice(w io.Writer) *WriterDevice { return &WriterDevice{w: w} }

// Append implements Device.
func (d *WriterDevice) Append(rec []byte) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(rec)))
	if _, err := d.w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := d.w.Write(rec); err != nil {
		return 0, err
	}
	d.lsn++
	return d.lsn, nil
}

// ReadAll decodes every record from a stream produced by WriterDevice.
func ReadAll(r io.Reader) ([]*Record, error) {
	var out []*Record
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, err
		}
		buf := make([]byte, binary.LittleEndian.Uint32(hdr[:]))
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("wal: truncated record: %w", err)
		}
		rec, err := Decode(buf)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}
