package wal

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func sample() *Record {
	return &Record{
		TxnID: 42,
		Writes: []Write{
			{Table: "warehouse", Key: 7, Image: []byte{1, 2, 3}},
			{Table: "district", Key: 71, Image: nil},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rec := sample()
	got, err := Decode(Encode(rec))
	if err != nil {
		t.Fatal(err)
	}
	if got.TxnID != rec.TxnID || len(got.Writes) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	if got.Writes[0].Table != "warehouse" || got.Writes[0].Key != 7 ||
		!bytes.Equal(got.Writes[0].Image, []byte{1, 2, 3}) {
		t.Fatalf("write 0: %+v", got.Writes[0])
	}
	if len(got.Writes[1].Image) != 0 {
		t.Fatalf("write 1 image: %v", got.Writes[1].Image)
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	enc := Encode(sample())
	for _, cut := range []int{1, 11, len(enc) - 1} {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := Decode(append(enc, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(id uint64, table string, key uint64, img []byte) bool {
		if len(table) > 1000 {
			table = table[:1000]
		}
		rec := &Record{TxnID: id, Writes: []Write{{Table: table, Key: key, Image: img}}}
		got, err := Decode(Encode(rec))
		if err != nil {
			return false
		}
		return got.TxnID == id && got.Writes[0].Table == table &&
			got.Writes[0].Key == key && bytes.Equal(got.Writes[0].Image, img)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemDevice(t *testing.T) {
	dev := NewMemDevice(true)
	l := New(dev)
	for i := 0; i < 3; i++ {
		lsn, err := l.Commit(sample())
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d", lsn)
		}
	}
	if dev.Len() != 3 || dev.Bytes() == 0 {
		t.Fatalf("len=%d bytes=%d", dev.Len(), dev.Bytes())
	}
	recs, err := dev.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || !reflect.DeepEqual(recs[0], sample()) {
		t.Fatalf("records: %+v", recs)
	}
}

func TestNilDeviceDefaults(t *testing.T) {
	l := New(nil)
	if _, err := l.Commit(sample()); err != nil {
		t.Fatal(err)
	}
}

func TestWriterDeviceAndReadAll(t *testing.T) {
	var buf bytes.Buffer
	l := New(NewWriterDevice(&buf))
	want := []*Record{sample(), {TxnID: 1}, sample()}
	for _, r := range want {
		if _, err := l.Commit(r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ReadAll = %+v", got)
	}
	// Truncated stream errors.
	var buf2 bytes.Buffer
	l2 := New(NewWriterDevice(&buf2))
	if _, err := l2.Commit(sample()); err != nil {
		t.Fatal(err)
	}
	trunc := buf2.Bytes()[:buf2.Len()-2]
	if _, err := ReadAll(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}
