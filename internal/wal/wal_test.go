package wal

import (
	"bytes"
	"errors"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func sample() *Record {
	return &Record{
		TxnID: 42,
		Writes: []Write{
			{Table: "warehouse", Key: 7, Image: []byte{1, 2, 3}},
			{Table: "district", Key: 71, Image: nil},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rec := sample()
	got, err := Decode(Encode(rec))
	if err != nil {
		t.Fatal(err)
	}
	if got.TxnID != rec.TxnID || len(got.Writes) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	if got.Writes[0].Table != "warehouse" || got.Writes[0].Key != 7 ||
		!bytes.Equal(got.Writes[0].Image, []byte{1, 2, 3}) {
		t.Fatalf("write 0: %+v", got.Writes[0])
	}
	if len(got.Writes[1].Image) != 0 {
		t.Fatalf("write 1 image: %v", got.Writes[1].Image)
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	enc := Encode(sample())
	for _, cut := range []int{1, 11, len(enc) - 1} {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := Decode(append(enc, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(id uint64, table string, key uint64, img []byte) bool {
		if len(table) > 1000 {
			table = table[:1000]
		}
		rec := &Record{TxnID: id, Writes: []Write{{Table: table, Key: key, Image: img}}}
		got, err := Decode(Encode(rec))
		if err != nil {
			return false
		}
		return got.TxnID == id && got.Writes[0].Table == table &&
			got.Writes[0].Key == key && bytes.Equal(got.Writes[0].Image, img)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemDevice(t *testing.T) {
	dev := NewMemDevice(true)
	l := New(dev)
	for i := 0; i < 3; i++ {
		lsn, err := l.Commit(sample())
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d", lsn)
		}
	}
	if dev.Len() != 3 || dev.Bytes() == 0 {
		t.Fatalf("len=%d bytes=%d", dev.Len(), dev.Bytes())
	}
	recs, err := dev.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || !reflect.DeepEqual(recs[0], sample()) {
		t.Fatalf("records: %+v", recs)
	}
}

func TestNilDeviceDefaults(t *testing.T) {
	l := New(nil)
	if _, err := l.Commit(sample()); err != nil {
		t.Fatal(err)
	}
}

func TestAppenderReusesBuffer(t *testing.T) {
	dev := NewMemDevice(true)
	l := New(dev)
	a := l.NewAppender()
	want := []*Record{sample(), {TxnID: 9, Writes: []Write{{Table: "t", Key: 1, Image: []byte{7}}}}}
	for _, r := range want {
		if _, err := a.Commit(r); err != nil {
			t.Fatal(err)
		}
	}
	// The appender reuses one buffer; the device must have copied, so
	// earlier records stay intact.
	recs, err := dev.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || !reflect.DeepEqual(recs[0], want[0]) || !reflect.DeepEqual(recs[1], want[1]) {
		t.Fatalf("records corrupted by buffer reuse: %+v", recs)
	}
}

// slowDevice delays every device write, modeling a real fsync; with it,
// records pile up while a flush is in progress, so piggyback batching
// (interval=0) must actually form multi-record batches.
type slowDevice struct {
	*MemDevice
	delay time.Duration
}

func (d *slowDevice) Append(rec []byte) (uint64, error) {
	time.Sleep(d.delay)
	return d.MemDevice.Append(rec)
}

func (d *slowDevice) AppendBatch(recs [][]byte) (uint64, error) {
	time.Sleep(d.delay)
	return d.MemDevice.AppendBatch(recs)
}

func TestGroupCommitDurability(t *testing.T) {
	for _, interval := range []time.Duration{0, 200 * time.Microsecond} {
		dev := NewMemDevice(true)
		l := NewGroupCommit(&slowDevice{MemDevice: dev, delay: 200 * time.Microsecond}, interval)
		const workers, perWorker = 8, 50
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				a := l.NewAppender()
				for i := 0; i < perWorker; i++ {
					rec := &Record{TxnID: uint64(w*perWorker + i), Writes: []Write{{Table: "t", Key: uint64(i), Image: []byte{byte(i)}}}}
					if _, err := a.Commit(rec); err != nil {
						t.Errorf("commit: %v", err)
						return
					}
					// Commit returning means the record is durable NOW.
					if got := dev.Len(); got < 1 {
						t.Errorf("commit returned before anything was durable")
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		if got := dev.Len(); got != workers*perWorker {
			t.Fatalf("interval %v: %d records durable, want %d", interval, got, workers*perWorker)
		}
		// Group commit must have batched device writes: fewer flush
		// operations than records proves multi-record epochs. The slow
		// device guarantees records pile up during each flush, so a
		// one-record-per-flush run means batching is broken.
		if b := dev.Batches(); b >= uint64(workers*perWorker) {
			t.Fatalf("interval %v: batches = %d for %d records: group commit degenerated to per-record writes",
				interval, b, workers*perWorker)
		}
		// Every record must decode and be unique.
		recs, err := dev.Records()
		if err != nil {
			t.Fatal(err)
		}
		seen := map[uint64]bool{}
		for _, r := range recs {
			if seen[r.TxnID] {
				t.Fatalf("duplicate record %d", r.TxnID)
			}
			seen[r.TxnID] = true
		}
	}
}

func TestGroupCommitClose(t *testing.T) {
	l := NewGroupCommit(NewMemDevice(false), 0)
	if _, err := l.Commit(sample()); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit(sample()); !errors.Is(err, ErrClosed) {
		t.Fatalf("commit after close: %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWriterDeviceAndReadAll(t *testing.T) {
	var buf bytes.Buffer
	l := New(NewWriterDevice(&buf))
	want := []*Record{sample(), {TxnID: 1}, sample()}
	for _, r := range want {
		if _, err := l.Commit(r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ReadAll = %+v", got)
	}
	// Truncated stream errors.
	var buf2 bytes.Buffer
	l2 := New(NewWriterDevice(&buf2))
	if _, err := l2.Commit(sample()); err != nil {
		t.Fatal(err)
	}
	trunc := buf2.Bytes()[:buf2.Len()-2]
	if _, err := ReadAll(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}
