// Package synth implements the paper's synthetic hotspot microbenchmark
// (§5.2–§5.3): transactions of a fixed length whose operations are random
// reads over a large table, except for a small number of read-modify-write
// "hotspot" accesses to globally shared tuples at configurable positions
// within the transaction.
//
// Placing one hotspot at the beginning reproduces §5.2 (no cascading
// aborts — only one uncommitted version chain); two hotspots at varying
// distances reproduce §5.3 (cascading aborts grow with the distance
// between the hotspots).
package synth

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"bamboo/internal/core"
	"bamboo/internal/storage"
)

// Config parametrizes the workload.
type Config struct {
	// Rows is the table size (paper: >100 GB table; scaled here).
	Rows int
	// TxnLen is the number of operations per transaction (paper: 4–64).
	TxnLen int
	// HotspotPos are the positions of the hotspot RMW operations as
	// fractions of the transaction length (0 = first op, 1 = last op).
	// Each position uses its own hot tuple, shared by all transactions.
	HotspotPos []float64
	// PayloadCols is the number of extra 8-byte payload columns.
	PayloadCols int
	// Seed seeds the per-worker generators.
	Seed int64
}

// DefaultConfig is a 16-op transaction with one hotspot at the beginning
// over a scaled-down table.
func DefaultConfig() Config {
	return Config{Rows: 100000, TxnLen: 16, HotspotPos: []float64{0}, PayloadCols: 1}
}

// Workload is a loaded synthetic workload.
type Workload struct {
	cfg    Config
	tbl    *storage.Table
	schema *storage.Schema
	valCol int
	// hot[i] is the hot row for hotspot i.
	hot []*storage.Row
	// hotOps[i] is the op index of hotspot i, sorted ascending.
	hotOps []int
}

// Load creates and populates the table inside db.
func Load(db *core.DB, cfg Config) (*Workload, error) {
	if cfg.Rows < cfg.TxnLen+len(cfg.HotspotPos) {
		return nil, fmt.Errorf("synth: table of %d rows too small for %d-op transactions",
			cfg.Rows, cfg.TxnLen)
	}
	cols := []storage.Column{{Name: "val", Type: storage.ColInt64}}
	for i := 0; i < cfg.PayloadCols; i++ {
		cols = append(cols, storage.Column{Name: fmt.Sprintf("pad%d", i), Type: storage.ColInt64})
	}
	schema := storage.NewSchema("synth", cols...)
	// Hash-partitioned like YCSB so partition telemetry stays meaningful
	// on synthetic experiments; rows are tiny, so the load stays serial.
	tbl, err := db.Catalog.CreateTablePartitioned(schema, cfg.Rows,
		storage.HashPartitioner{N: db.Partitions()})
	if err != nil {
		return nil, err
	}
	for k := 0; k < cfg.Rows; k++ {
		tbl.MustInsertRow(uint64(k), nil)
	}

	w := &Workload{cfg: cfg, tbl: tbl, schema: schema, valCol: schema.ColIndex("val")}
	type hotspot struct {
		op  int
		row *storage.Row
	}
	var hs []hotspot
	seen := map[int]bool{}
	for i, pos := range cfg.HotspotPos {
		op := int(pos * float64(cfg.TxnLen-1))
		if op < 0 {
			op = 0
		}
		if op >= cfg.TxnLen {
			op = cfg.TxnLen - 1
		}
		for seen[op] {
			op++ // hotspots occupy distinct ops
			if op >= cfg.TxnLen {
				op = 0
			}
		}
		seen[op] = true
		hs = append(hs, hotspot{op: op, row: tbl.Get(uint64(i))}) // rows 0..h-1 are hot
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i].op < hs[j].op })
	for _, h := range hs {
		w.hotOps = append(w.hotOps, h.op)
		w.hot = append(w.hot, h.row)
	}
	return w, nil
}

// Table returns the backing table.
func (w *Workload) Table() *storage.Table { return w.tbl }

// HotRows returns the hot tuples.
func (w *Workload) HotRows() []*storage.Row { return w.hot }

// NewGenerator returns a per-worker transaction generator.
func (w *Workload) NewGenerator(worker int) func(seq int) core.TxnFunc {
	rng := rand.New(rand.NewSource(w.cfg.Seed + int64(worker)*2654435761 + 99))
	nHot := len(w.cfg.HotspotPos)
	return func(seq int) core.TxnFunc {
		// Pre-draw the random read keys (distinct, outside the hot set).
		keys := make([]uint64, 0, w.cfg.TxnLen-nHot)
		used := make(map[uint64]bool, w.cfg.TxnLen)
		for len(keys) < w.cfg.TxnLen-nHot {
			k := uint64(rng.Intn(w.cfg.Rows-nHot) + nHot)
			if !used[k] {
				used[k] = true
				keys = append(keys, k)
			}
		}
		return func(tx core.Tx) error {
			tx.DeclareOps(w.cfg.TxnLen)
			ki := 0
			hi := 0
			for op := 0; op < w.cfg.TxnLen; op++ {
				if hi < len(w.hotOps) && w.hotOps[hi] == op {
					row := w.hot[hi]
					hi++
					err := tx.Update(row, func(img []byte) {
						w.schema.AddInt64(img, w.valCol, 1)
					})
					if err != nil {
						return err
					}
					continue
				}
				if _, err := tx.Read(w.tbl.Get(keys[ki])); err != nil {
					return err
				}
				ki++
			}
			return nil
		}
	}
}

// Generator adapts the workload to core.Generator. The per-worker
// sub-generators are created under a mutex; each is then used only by its
// own worker goroutine.
func (w *Workload) Generator() core.Generator {
	var mu sync.Mutex
	gens := map[int]func(int) core.TxnFunc{}
	return func(worker, seq int) core.TxnFunc {
		mu.Lock()
		g, ok := gens[worker]
		if !ok {
			g = w.NewGenerator(worker)
			gens[worker] = g
		}
		mu.Unlock()
		return g(seq)
	}
}

// HotValue returns hot tuple i's committed counter (total committed
// increments) for consistency checks.
func (w *Workload) HotValue(i int) int64 {
	img := w.hot[i].Entry.CurrentData()
	if p := w.hot[i].OCCImage.Load(); p != nil {
		img = *p
	}
	return w.schema.GetInt64(img, w.valCol)
}
