package synth_test

import (
	"testing"

	"bamboo/internal/core"
	"bamboo/internal/workload/synth"
)

func TestHotspotCounterConservation(t *testing.T) {
	for _, name := range []string{"BAMBOO", "WOUND_WAIT", "NO_WAIT"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var cfg core.Config
			switch name {
			case "BAMBOO":
				cfg = core.Bamboo()
			case "WOUND_WAIT":
				cfg = core.WoundWait()
			default:
				cfg = core.NoWait()
			}
			db := core.NewDB(cfg)
			wcfg := synth.Config{Rows: 2000, TxnLen: 8, HotspotPos: []float64{0, 1}, PayloadCols: 1}
			w, err := synth.Load(db, wcfg)
			if err != nil {
				t.Fatal(err)
			}
			res := core.RunN(core.NewLockEngine(db), 8, 150, w.Generator())
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			want := int64(8 * 150)
			for i := 0; i < 2; i++ {
				if got := w.HotValue(i); got != want {
					t.Fatalf("hot tuple %d counter = %d, want %d", i, got, want)
				}
			}
		})
	}
}

func TestHotspotPositions(t *testing.T) {
	db := core.NewDB(core.Bamboo())
	w, err := synth.Load(db, synth.Config{
		Rows: 100, TxnLen: 16, HotspotPos: []float64{1, 0, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.HotRows()) != 3 {
		t.Fatalf("hot rows = %d, want 3", len(w.HotRows()))
	}
	// One transaction executes without contention and touches all three.
	res := core.RunN(core.NewLockEngine(db), 1, 1, w.Generator())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	for i := 0; i < 3; i++ {
		if got := w.HotValue(i); got != 1 {
			t.Fatalf("hot tuple %d counter = %d, want 1", i, got)
		}
	}
}

func TestLoadRejectsTinyTable(t *testing.T) {
	db := core.NewDB(core.Bamboo())
	if _, err := synth.Load(db, synth.Config{Rows: 4, TxnLen: 16, HotspotPos: []float64{0}}); err == nil {
		t.Fatal("expected error for tiny table")
	}
}
