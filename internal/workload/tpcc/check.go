package tpcc

import (
	"fmt"

	"bamboo/internal/storage"
)

// img returns a row's committed image for either engine family.
func img(r *storage.Row) []byte {
	if p := r.OCCImage.Load(); p != nil {
		return *p
	}
	return r.Entry.CurrentData()
}

// CheckConsistency verifies the TPC-C consistency conditions the workload
// can violate only through concurrency bugs:
//
//  1. per warehouse, ΔW_YTD = Σ districts ΔD_YTD (Payment writes both);
//  2. Σ ΔW_YTD = Σ H_AMOUNT (every Payment inserts one history row);
//  3. Σ ΔC_YTD_PAYMENT = Σ H_AMOUNT and ΔC_BALANCE = -ΔC_YTD_PAYMENT;
//  4. per district, D_NEXT_O_ID - 3001 = #orders = #new_order rows;
//  5. per order, its OL_CNT order lines exist with matching ids;
//  6. Σ stock S_YTD = Σ order-line quantities, and S_ORDER_CNT sums to
//     the number of order lines.
func (w *Workload) CheckConsistency() error {
	const initialWYTD = 30000000
	const initialDYTD = 3000000

	// 1 & 2: warehouse vs district vs history money flows.
	var totalWDelta int64
	for wid := int64(0); wid < int64(w.cfg.Warehouses); wid++ {
		ws := w.Warehouse.Schema
		wDelta := ws.GetInt64(img(w.Warehouse.Get(uint64(wid))), w.wc.YTD) - initialWYTD
		var dDelta int64
		for did := int64(0); did < distPerWarehouse; did++ {
			ds := w.District.Schema
			dDelta += ds.GetInt64(img(w.District.Get(districtKey(wid, did))), w.dc.YTD) - initialDYTD
		}
		if wDelta != dDelta {
			return fmt.Errorf("tpcc: warehouse %d ΔW_YTD=%d != ΣΔD_YTD=%d", wid, wDelta, dDelta)
		}
		totalWDelta += wDelta
	}
	var histTotal int64
	var histRows int64
	hs := w.HistoryTbl.Schema
	w.HistoryTbl.Range(func(_ uint64, r *storage.Row) bool {
		histTotal += hs.GetInt64(img(r), w.hc.Amount)
		histRows++
		return true
	})
	if histTotal != totalWDelta {
		return fmt.Errorf("tpcc: Σ H_AMOUNT=%d != ΣΔW_YTD=%d over %d history rows",
			histTotal, totalWDelta, histRows)
	}

	// 3: customer money flows.
	var cYTD, cBal int64
	cs := w.Customer.Schema
	var customers int64
	w.Customer.Range(func(_ uint64, r *storage.Row) bool {
		b := img(r)
		cYTD += cs.GetInt64(b, w.cc.YTDPayment)
		cBal += cs.GetInt64(b, w.cc.Balance)
		customers++
		return true
	})
	if cYTD != histTotal {
		return fmt.Errorf("tpcc: Σ C_YTD_PAYMENT=%d != Σ H_AMOUNT=%d", cYTD, histTotal)
	}
	if want := -1000*customers - cYTD; cBal != want {
		return fmt.Errorf("tpcc: Σ C_BALANCE=%d, want %d", cBal, want)
	}

	// 4: order counters per district.
	orderCount := map[uint64]int64{}
	os := w.Orders.Schema
	w.Orders.Range(func(_ uint64, r *storage.Row) bool {
		b := img(r)
		orderCount[districtKey(os.GetInt64(b, w.oc.WID), os.GetInt64(b, w.oc.DID))]++
		return true
	})
	noCount := map[uint64]int64{}
	ns := w.NewOrderTbl.Schema
	w.NewOrderTbl.Range(func(_ uint64, r *storage.Row) bool {
		b := img(r)
		noCount[districtKey(ns.GetInt64(b, w.noc.WID), ns.GetInt64(b, w.noc.DID))]++
		return true
	})
	for wid := int64(0); wid < int64(w.cfg.Warehouses); wid++ {
		for did := int64(0); did < distPerWarehouse; did++ {
			dk := districtKey(wid, did)
			ds := w.District.Schema
			next := ds.GetInt64(img(w.District.Get(dk)), w.dc.NextOID)
			if got := orderCount[dk]; got != next-3001 {
				return fmt.Errorf("tpcc: district %d/%d has %d orders, D_NEXT_O_ID implies %d",
					wid, did, got, next-3001)
			}
			if got := noCount[dk]; got != next-3001 {
				return fmt.Errorf("tpcc: district %d/%d has %d new_order rows, want %d",
					wid, did, got, next-3001)
			}
		}
	}

	// 5: order lines per order.
	var olQty, olRows int64
	ols := w.OrderLine.Schema
	olCount := map[uint64]int64{}
	w.OrderLine.Range(func(_ uint64, r *storage.Row) bool {
		b := img(r)
		olCount[orderKey(ols.GetInt64(b, w.olc.WID), ols.GetInt64(b, w.olc.DID), ols.GetInt64(b, w.olc.OID))]++
		olQty += ols.GetInt64(b, w.olc.Quantity)
		olRows++
		return true
	})
	var checkErr error
	w.Orders.Range(func(key uint64, r *storage.Row) bool {
		b := img(r)
		want := os.GetInt64(b, w.oc.OLCnt)
		if got := olCount[key]; got != want {
			checkErr = fmt.Errorf("tpcc: order %d has %d lines, want %d", key, got, want)
			return false
		}
		return true
	})
	if checkErr != nil {
		return checkErr
	}

	// 6: stock counters vs order lines.
	var sYTD, sOrderCnt int64
	ss := w.Stock.Schema
	w.Stock.Range(func(_ uint64, r *storage.Row) bool {
		b := img(r)
		sYTD += ss.GetInt64(b, w.sc.YTD)
		sOrderCnt += ss.GetInt64(b, w.sc.OrderCnt)
		return true
	})
	if sYTD != olQty {
		return fmt.Errorf("tpcc: Σ S_YTD=%d != Σ OL_QUANTITY=%d", sYTD, olQty)
	}
	if sOrderCnt != olRows {
		return fmt.Errorf("tpcc: Σ S_ORDER_CNT=%d != order-line rows %d", sOrderCnt, olRows)
	}
	return nil
}
