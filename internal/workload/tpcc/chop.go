package tpcc

import (
	"math/rand"
	"sync"

	"bamboo/internal/chop"
	"bamboo/internal/core"
	"bamboo/internal/stats"
)

// ChopRegistry builds the IC3 templates for the NewOrder + Payment mix
// with column-level access declarations (§5.6).
//
// In the original workload Payment writes warehouse.w_ytd while NewOrder
// reads warehouse.w_tax — disjoint columns, so IC3's analysis finds no
// C-edge on the hottest table and the warehouse pieces run without
// waiting. With ModifiedNewOrder, NewOrder also reads w_ytd, creating the
// "true" conflict that collapses IC3's advantage (Figure 11c/d).
//
// Under Config.Unannotated the Write flags are stripped: pieces declare
// tables and columns but no modes, the analysis goes conservative, and
// the bodies' read-then-update accesses (see Workload.update) promote
// SH→EX in place inside the chop engine at runtime. The NewOrder+Payment
// C-edge set is unchanged by the stripping — every overlapping column
// pair already had a writer — so the mix still analyzes to zero merges.
func (w *Workload) ChopRegistry() (*chop.Registry, *chop.Template, *chop.Template) {
	wc, dc, cc, ic, sc := w.wc, w.dc, w.cc, w.ic, w.sc

	noWarehouseCols := []int{wc.Tax}
	if w.cfg.ModifiedNewOrder {
		noWarehouseCols = append(noWarehouseCols, wc.YTD)
	}

	payment := &chop.Template{Name: "payment", Pieces: []*chop.Piece{
		{
			Accesses: []chop.AccessDecl{{Table: "warehouse", Cols: []int{wc.YTD}, Write: true}},
			Body: func(pt *chop.PieceTx) error {
				return w.PayWarehouse(pt, pt.Env().(*PaymentArgs))
			},
		},
		{
			Accesses: []chop.AccessDecl{{Table: "district", Cols: []int{dc.YTD}, Write: true}},
			Body: func(pt *chop.PieceTx) error {
				return w.PayDistrict(pt, pt.Env().(*PaymentArgs))
			},
		},
		{
			Accesses: []chop.AccessDecl{{
				Table: "customer", Write: true,
				Cols: []int{cc.Balance, cc.YTDPayment, cc.PaymentCnt, cc.Data, cc.Credit},
			}},
			Body: func(pt *chop.PieceTx) error {
				return w.PayCustomer(pt, pt.Env().(*PaymentArgs))
			},
		},
		{
			Accesses: []chop.AccessDecl{{Table: "history", Cols: []int{0}, Write: true}},
			Body: func(pt *chop.PieceTx) error {
				return w.PayHistory(pt, pt.Env().(*PaymentArgs))
			},
		},
	}}

	neworder := &chop.Template{Name: "neworder", Pieces: []*chop.Piece{
		{
			Accesses: []chop.AccessDecl{{Table: "warehouse", Cols: noWarehouseCols}},
			Body: func(pt *chop.PieceTx) error {
				return w.NOWarehouse(pt, pt.Env().(*NewOrderState))
			},
		},
		{
			Accesses: []chop.AccessDecl{{
				Table: "district", Cols: []int{dc.NextOID, dc.Tax}, Write: true,
			}},
			Body: func(pt *chop.PieceTx) error {
				return w.NODistrict(pt, pt.Env().(*NewOrderState))
			},
		},
		{
			Accesses: []chop.AccessDecl{{Table: "customer", Cols: []int{cc.Balance}}},
			Body: func(pt *chop.PieceTx) error {
				return w.NOCustomer(pt, pt.Env().(*NewOrderState))
			},
		},
		{
			Accesses: []chop.AccessDecl{
				{Table: "item", Cols: []int{ic.Price}},
				{Table: "stock", Write: true,
					Cols: []int{sc.Quantity, sc.YTD, sc.OrderCnt, sc.RemoteCnt}},
				{Table: "order_line", Cols: []int{0}, Write: true},
			},
			Body: func(pt *chop.PieceTx) error {
				return w.NOItems(pt, pt.Env().(*NewOrderState))
			},
		},
		{
			Accesses: []chop.AccessDecl{
				{Table: "orders", Cols: []int{0}, Write: true},
				{Table: "new_order", Cols: []int{0}, Write: true},
			},
			Body: func(pt *chop.PieceTx) error {
				return w.NOInsertOrder(pt, pt.Env().(*NewOrderState))
			},
		},
	}}

	if w.cfg.Unannotated {
		for _, t := range []*chop.Template{payment, neworder} {
			for _, p := range t.Pieces {
				for i := range p.Accesses {
					p.Accesses[i].Write = false
				}
			}
		}
	}

	reg := &chop.Registry{}
	reg.Register(payment)
	reg.Register(neworder)
	reg.Analyze()
	return reg, payment, neworder
}

// RunIC3 drives the NewOrder/Payment mix through an IC3 engine with the
// given parallelism, mirroring core.RunN for the chopped execution model.
func (w *Workload) RunIC3(e *chop.Engine, payment, neworder *chop.Template,
	workers, perWorker int) ([]*stats.Collector, error) {

	cols := make([]*stats.Collector, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		cols[wk] = &stats.Collector{}
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			sess := e.NewSession(wk, cols[wk])
			rng := rand.New(rand.NewSource(w.cfg.Seed + int64(wk)*2862933555777941757 + 3037000493))
			for i := 0; i < perWorker; i++ {
				var err error
				if rng.Float64() < w.cfg.PaymentFraction {
					a := w.GenPayment(rng)
					err = sess.Run(payment, &a)
				} else {
					st := &NewOrderState{Args: w.GenNewOrder(rng)}
					err = sess.Run(neworder, st)
				}
				if err != nil {
					errs[wk] = err
					return
				}
			}
		}(wk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return cols, err
		}
	}
	return cols, nil
}

var _ core.Tx = (*chop.PieceTx)(nil)
