package tpcc_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"bamboo/internal/chop"
	"bamboo/internal/core"
	"bamboo/internal/stats"
	"bamboo/internal/workload/tpcc"
)

func TestIC3PaymentMoneyFlow(t *testing.T) {
	cfg := testConfig(1)
	cfg.PaymentFraction = 1.0
	db := core.NewDB(core.Config{})
	w, err := tpcc.Load(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg, payment, _ := w.ChopRegistry()
	e := chop.New(db, reg)

	var expected atomic.Int64
	var wg sync.WaitGroup
	const workers, per = 8, 150
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			sess := e.NewSession(wk, &stats.Collector{})
			rng := rand.New(rand.NewSource(int64(wk) * 97))
			for i := 0; i < per; i++ {
				a := w.GenPayment(rng)
				if err := sess.Run(payment, &a); err != nil {
					t.Error(err)
					return
				}
				expected.Add(a.Amount)
			}
		}(wk)
	}
	wg.Wait()
	if err := w.CheckConsistency(); err != nil {
		t.Fatalf("%v (expected total %d)", err, expected.Load())
	}
}
