// Package tpcc implements the TPC-C workload as evaluated in the paper
// (§5.5): the nine tables, a loader, and the NewOrder + Payment
// transaction mix (50/50) with 1% of NewOrder transactions aborting on an
// invalid item to simulate user-initiated aborts. The "modified NewOrder"
// of §5.6 — which additionally reads W_YTD, a column Payment updates — is
// a flag; it changes nothing for row-granularity protocols but creates a
// true column conflict for IC3.
//
// Money columns are stored as int64 cents so consistency checks are exact.
package tpcc

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"bamboo/internal/core"
	"bamboo/internal/storage"
)

// Schema column indexes are resolved once at load into these structs so
// transaction bodies never do string lookups.

// Warehouse columns.
type warehouseCols struct {
	ID, Name, Tax, YTD int
}

// District columns.
type districtCols struct {
	ID, WID, Tax, YTD, NextOID int
}

// Customer columns.
type customerCols struct {
	ID, DID, WID, Last, Credit, Balance, YTDPayment, PaymentCnt, Data int
}

// Item columns.
type itemCols struct {
	ID, Name, Price int
}

// Stock columns.
type stockCols struct {
	IID, WID, Quantity, YTD, OrderCnt, RemoteCnt int
}

// Order columns.
type orderCols struct {
	OID, DID, WID, CID, EntryD, OLCnt, AllLocal int
}

// NewOrderTbl columns.
type newOrderCols struct {
	OID, DID, WID int
}

// OrderLine columns.
type orderLineCols struct {
	OID, DID, WID, Number, IID, SupplyWID, Quantity, Amount int
}

// History columns.
type historyCols struct {
	CID, CDID, CWID, DID, WID, Amount int
}

func warehouseSchema() *storage.Schema {
	return storage.NewSchema("warehouse",
		storage.Column{Name: "w_id", Type: storage.ColInt64},
		storage.Column{Name: "w_name", Type: storage.ColBytes, Size: 10},
		storage.Column{Name: "w_tax", Type: storage.ColInt64},
		storage.Column{Name: "w_ytd", Type: storage.ColInt64},
	)
}

func districtSchema() *storage.Schema {
	return storage.NewSchema("district",
		storage.Column{Name: "d_id", Type: storage.ColInt64},
		storage.Column{Name: "d_w_id", Type: storage.ColInt64},
		storage.Column{Name: "d_tax", Type: storage.ColInt64},
		storage.Column{Name: "d_ytd", Type: storage.ColInt64},
		storage.Column{Name: "d_next_o_id", Type: storage.ColInt64},
	)
}

func customerSchema() *storage.Schema {
	return storage.NewSchema("customer",
		storage.Column{Name: "c_id", Type: storage.ColInt64},
		storage.Column{Name: "c_d_id", Type: storage.ColInt64},
		storage.Column{Name: "c_w_id", Type: storage.ColInt64},
		storage.Column{Name: "c_last", Type: storage.ColBytes, Size: 16},
		storage.Column{Name: "c_credit", Type: storage.ColBytes, Size: 2},
		storage.Column{Name: "c_balance", Type: storage.ColInt64},
		storage.Column{Name: "c_ytd_payment", Type: storage.ColInt64},
		storage.Column{Name: "c_payment_cnt", Type: storage.ColInt64},
		storage.Column{Name: "c_data", Type: storage.ColBytes, Size: 64},
	)
}

func itemSchema() *storage.Schema {
	return storage.NewSchema("item",
		storage.Column{Name: "i_id", Type: storage.ColInt64},
		storage.Column{Name: "i_name", Type: storage.ColBytes, Size: 24},
		storage.Column{Name: "i_price", Type: storage.ColInt64},
	)
}

func stockSchema() *storage.Schema {
	return storage.NewSchema("stock",
		storage.Column{Name: "s_i_id", Type: storage.ColInt64},
		storage.Column{Name: "s_w_id", Type: storage.ColInt64},
		storage.Column{Name: "s_quantity", Type: storage.ColInt64},
		storage.Column{Name: "s_ytd", Type: storage.ColInt64},
		storage.Column{Name: "s_order_cnt", Type: storage.ColInt64},
		storage.Column{Name: "s_remote_cnt", Type: storage.ColInt64},
	)
}

func orderSchema() *storage.Schema {
	return storage.NewSchema("orders",
		storage.Column{Name: "o_id", Type: storage.ColInt64},
		storage.Column{Name: "o_d_id", Type: storage.ColInt64},
		storage.Column{Name: "o_w_id", Type: storage.ColInt64},
		storage.Column{Name: "o_c_id", Type: storage.ColInt64},
		storage.Column{Name: "o_entry_d", Type: storage.ColInt64},
		storage.Column{Name: "o_ol_cnt", Type: storage.ColInt64},
		storage.Column{Name: "o_all_local", Type: storage.ColInt64},
	)
}

func newOrderSchema() *storage.Schema {
	return storage.NewSchema("new_order",
		storage.Column{Name: "no_o_id", Type: storage.ColInt64},
		storage.Column{Name: "no_d_id", Type: storage.ColInt64},
		storage.Column{Name: "no_w_id", Type: storage.ColInt64},
	)
}

func orderLineSchema() *storage.Schema {
	return storage.NewSchema("order_line",
		storage.Column{Name: "ol_o_id", Type: storage.ColInt64},
		storage.Column{Name: "ol_d_id", Type: storage.ColInt64},
		storage.Column{Name: "ol_w_id", Type: storage.ColInt64},
		storage.Column{Name: "ol_number", Type: storage.ColInt64},
		storage.Column{Name: "ol_i_id", Type: storage.ColInt64},
		storage.Column{Name: "ol_supply_w_id", Type: storage.ColInt64},
		storage.Column{Name: "ol_quantity", Type: storage.ColInt64},
		storage.Column{Name: "ol_amount", Type: storage.ColInt64},
	)
}

func historySchema() *storage.Schema {
	return storage.NewSchema("history",
		storage.Column{Name: "h_c_id", Type: storage.ColInt64},
		storage.Column{Name: "h_c_d_id", Type: storage.ColInt64},
		storage.Column{Name: "h_c_w_id", Type: storage.ColInt64},
		storage.Column{Name: "h_d_id", Type: storage.ColInt64},
		storage.Column{Name: "h_w_id", Type: storage.ColInt64},
		storage.Column{Name: "h_amount", Type: storage.ColInt64},
	)
}

// Key encodings. TPC-C ids are small; composite keys pack into 64 bits.

const (
	distPerWarehouse = 10
	custPerDistrict  = 3000
)

func districtKey(w, d int64) uint64 { return uint64(w*distPerWarehouse + d) }
func customerKey(w, d, c int64) uint64 {
	return uint64((w*distPerWarehouse+d)*custPerDistrict + c)
}
func stockKey(w, i int64) uint64 { return uint64(w)<<32 | uint64(i) }
func orderKey(w, d, o int64) uint64 {
	return uint64(w*distPerWarehouse+d)<<40 | uint64(o)
}
func orderLineKey(w, d, o, n int64) uint64 {
	return (uint64(w*distPerWarehouse+d)<<40|uint64(o))<<5 | uint64(n)
}

// lastNames are the TPC-C syllables for C_LAST generation.
var lastSyllables = []string{
	"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
}

func lastName(num int) string {
	return lastSyllables[num/100] + lastSyllables[(num/10)%10] + lastSyllables[num%10]
}

// NURand is the TPC-C non-uniform random function.
func nuRand(rng *rand.Rand, a, c, x, y int) int {
	return ((rng.Intn(a+1)|(rng.Intn(y-x+1)+x))+c)%(y-x+1) + x
}

// Config parametrizes scale and mix.
type Config struct {
	// Warehouses is the warehouse count (paper sweeps 1–16).
	Warehouses int
	// Items is the item/stock catalog size (spec: 100000; scale down for
	// tests).
	Items int
	// CustomersPerDistrict (spec: 3000).
	CustomersPerDistrict int
	// PaymentFraction of the mix (paper: 0.5; remainder is NewOrder).
	PaymentFraction float64
	// UserAbortPct is the percent of NewOrder transactions that roll back
	// on an invalid item (spec and paper: 1).
	UserAbortPct int
	// RemotePaymentPct is the percent of Payments against a remote
	// customer warehouse (spec: 15).
	RemotePaymentPct int
	// RemoteStockPct is the per-item percent of NewOrder stock accesses
	// hitting a remote warehouse (spec: 1).
	RemoteStockPct int
	// ModifiedNewOrder makes NewOrder also read W_YTD (§5.6, Figure 11c).
	ModifiedNewOrder bool
	// StockLevelFraction adds the spec's read-only StockLevel transaction
	// to the mix (taken from the NewOrder share). StockLevel reads the
	// district's next order id and scans the stock rows of the last 20
	// orders' lines — shared locks on exactly the rows NewOrder updates,
	// so it contends with (and under Unannotated mode, with the upgrades
	// of) the write path.
	StockLevelFraction float64
	// Unannotated runs the transaction bodies without read/write
	// pre-declaration: every update first Reads the row and then Updates
	// it, so the executor upgrades SH→EX in place (interactive clients
	// that do not declare their write sets up front). Access declarations
	// (DeclareOps) are also withheld.
	Unannotated bool
	// Seed seeds the loader and generators.
	Seed int64
}

// DefaultConfig returns the paper's mix at a test-friendly scale.
func DefaultConfig() Config {
	return Config{
		Warehouses:           1,
		Items:                10000,
		CustomersPerDistrict: 3000,
		PaymentFraction:      0.5,
		UserAbortPct:         1,
		RemotePaymentPct:     15,
		RemoteStockPct:       1,
	}
}

// Workload is a loaded TPC-C database.
type Workload struct {
	cfg Config

	Warehouse, District, Customer, Item, Stock *storage.Table
	Orders, NewOrderTbl, OrderLine, HistoryTbl *storage.Table

	wc  warehouseCols
	dc  districtCols
	cc  customerCols
	ic  itemCols
	sc  stockCols
	oc  orderCols
	noc newOrderCols
	olc orderLineCols
	hc  historyCols

	// byLastName maps (w, d, lastname) to the customer ids with that last
	// name, sorted; Payment-by-last-name picks the middle one (spec
	// §2.5.2.2). Immutable after load.
	byLastName map[string][]int64

	histKeys atomic.Uint64
}

func lastNameKey(w, d int64, name string) string {
	return strconv.FormatInt(w*distPerWarehouse+d, 10) + "/" + name
}

// Key→warehouse decoders, inverting the key encodings above; the range
// partitioner routes every warehouse-keyed table by them.

func widOfWarehouseKey(k uint64) int64 { return int64(k) }
func widOfDistrictKey(k uint64) int64  { return int64(k) / distPerWarehouse }
func widOfCustomerKey(k uint64) int64 {
	return int64(k) / (distPerWarehouse * custPerDistrict)
}
func widOfStockKey(k uint64) int64     { return int64(k >> 32) }
func widOfOrderKey(k uint64) int64     { return int64(k>>40) / distPerWarehouse }
func widOfOrderLineKey(k uint64) int64 { return int64(k>>45) / distPerWarehouse }

// Load creates and populates all nine tables. With db.Partitions() > 1
// every warehouse-keyed table is range-partitioned by warehouse —
// partition p owns the contiguous warehouse range [p·W/P, (p+1)·W/P),
// empty when P exceeds W — and the loader populates the
// partitions in parallel, one goroutine per partition, each seeding a
// per-warehouse rng so the data is deterministic for any partition count.
// Item (the global catalog) and History (runtime inserts under a
// sequential key) are hash-partitioned. A single-partition load keeps the
// original serial path and rng stream, so Partitions=1 is bit-for-bit the
// pre-partitioning behavior.
func Load(db *core.DB, cfg Config) (*Workload, error) {
	if cfg.Warehouses < 1 || cfg.Items < 100 {
		return nil, fmt.Errorf("tpcc: invalid scale W=%d I=%d", cfg.Warehouses, cfg.Items)
	}
	if cfg.CustomersPerDistrict <= 0 || cfg.CustomersPerDistrict > custPerDistrict {
		cfg.CustomersPerDistrict = custPerDistrict
	}
	w := &Workload{cfg: cfg, byLastName: make(map[string][]int64)}

	// The configured partition count is honored even when it exceeds the
	// warehouse count: wid·P/W stays < P for every wid < W, the surplus
	// partitions are simply empty, and the partition-counter telemetry
	// (sized from Config.Partitions at DB construction) stays aligned
	// with the table layout.
	parts := db.Partitions()
	widPart := func(wid int64) int { return int(wid) * parts / cfg.Warehouses }
	byWID := func(decode func(uint64) int64) storage.Partitioner {
		return storage.FuncPartitioner{N: parts, Fn: func(k uint64) int { return widPart(decode(k)) }}
	}
	byHash := storage.HashPartitioner{N: parts}

	w.Warehouse = db.Catalog.MustCreateTablePartitioned(warehouseSchema(), cfg.Warehouses, byWID(widOfWarehouseKey))
	w.District = db.Catalog.MustCreateTablePartitioned(districtSchema(), cfg.Warehouses*distPerWarehouse, byWID(widOfDistrictKey))
	w.Customer = db.Catalog.MustCreateTablePartitioned(customerSchema(),
		cfg.Warehouses*distPerWarehouse*cfg.CustomersPerDistrict, byWID(widOfCustomerKey))
	w.Item = db.Catalog.MustCreateTablePartitioned(itemSchema(), cfg.Items, byHash)
	w.Stock = db.Catalog.MustCreateTablePartitioned(stockSchema(), cfg.Warehouses*cfg.Items, byWID(widOfStockKey))
	w.Orders = db.Catalog.MustCreateTablePartitioned(orderSchema(), 1<<16, byWID(widOfOrderKey))
	w.NewOrderTbl = db.Catalog.MustCreateTablePartitioned(newOrderSchema(), 1<<16, byWID(widOfOrderKey))
	w.OrderLine = db.Catalog.MustCreateTablePartitioned(orderLineSchema(), 1<<18, byWID(widOfOrderLineKey))
	w.HistoryTbl = db.Catalog.MustCreateTablePartitioned(historySchema(), 1<<16, byHash)

	w.resolveColumns()

	if parts == 1 {
		rng := rand.New(rand.NewSource(cfg.Seed + 42))
		for wid := int64(0); wid < int64(cfg.Warehouses); wid++ {
			w.loadWarehouse(wid, rng, w.byLastName)
		}
		w.loadItems(rng)
	} else {
		var wg sync.WaitGroup
		names := make([]map[string][]int64, parts)
		for p := 0; p < parts; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				local := make(map[string][]int64)
				for wid := int64(0); wid < int64(cfg.Warehouses); wid++ {
					if widPart(wid) != p {
						continue
					}
					rng := rand.New(rand.NewSource(cfg.Seed + 42 + (wid+1)*1_000_003))
					w.loadWarehouse(wid, rng, local)
				}
				names[p] = local
			}(p)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.loadItems(rand.New(rand.NewSource(cfg.Seed + 43)))
		}()
		wg.Wait()
		// Last-name keys embed the warehouse id, so the per-partition maps
		// are disjoint and merge without conflict.
		for _, local := range names {
			for k, ids := range local {
				w.byLastName[k] = ids
			}
		}
	}
	for k := range w.byLastName {
		ids := w.byLastName[k]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	return w, nil
}

// loadWarehouse populates one warehouse: its row, districts, customers and
// stock. names receives the (w, d, lastname)→customer-ids entries; callers
// loading warehouses in parallel pass goroutine-local maps.
func (w *Workload) loadWarehouse(wid int64, rng *rand.Rand, names map[string][]int64) {
	cfg := w.cfg
	ws := w.Warehouse.Schema
	img := ws.NewRowImage()
	ws.SetInt64(img, w.wc.ID, wid)
	ws.SetBytes(img, w.wc.Name, []byte(fmt.Sprintf("WH%03d", wid)))
	ws.SetInt64(img, w.wc.Tax, int64(rng.Intn(2001))) // 0–0.2000 in basis points
	ws.SetInt64(img, w.wc.YTD, 30000000)              // $300,000.00 in cents
	w.Warehouse.MustInsertRow(uint64(wid), img)

	for did := int64(0); did < distPerWarehouse; did++ {
		ds := w.District.Schema
		img := ds.NewRowImage()
		ds.SetInt64(img, w.dc.ID, did)
		ds.SetInt64(img, w.dc.WID, wid)
		ds.SetInt64(img, w.dc.Tax, int64(rng.Intn(2001)))
		ds.SetInt64(img, w.dc.YTD, 3000000) // $30,000.00
		ds.SetInt64(img, w.dc.NextOID, 3001)
		w.District.MustInsertRow(districtKey(wid, did), img)

		for cid := int64(0); cid < int64(cfg.CustomersPerDistrict); cid++ {
			cs := w.Customer.Schema
			img := cs.NewRowImage()
			cs.SetInt64(img, w.cc.ID, cid)
			cs.SetInt64(img, w.cc.DID, did)
			cs.SetInt64(img, w.cc.WID, wid)
			var ln string
			if cid < 1000 {
				ln = lastName(int(cid))
			} else {
				ln = lastName(nuRand(rng, 255, 157, 0, 999))
			}
			cs.SetBytes(img, w.cc.Last, []byte(ln))
			credit := "GC"
			if rng.Intn(10) == 0 {
				credit = "BC"
			}
			cs.SetBytes(img, w.cc.Credit, []byte(credit))
			cs.SetInt64(img, w.cc.Balance, -1000) // -$10.00
			w.Customer.MustInsertRow(customerKey(wid, did, cid), img)
			k := lastNameKey(wid, did, ln)
			names[k] = append(names[k], cid)
		}
	}
	for iid := int64(0); iid < int64(cfg.Items); iid++ {
		ss := w.Stock.Schema
		img := ss.NewRowImage()
		ss.SetInt64(img, w.sc.IID, iid)
		ss.SetInt64(img, w.sc.WID, wid)
		ss.SetInt64(img, w.sc.Quantity, int64(rng.Intn(91)+10))
		w.Stock.MustInsertRow(stockKey(wid, iid), img)
	}
}

// loadItems populates the global item catalog.
func (w *Workload) loadItems(rng *rand.Rand) {
	for iid := int64(0); iid < int64(w.cfg.Items); iid++ {
		is := w.Item.Schema
		img := is.NewRowImage()
		is.SetInt64(img, w.ic.ID, iid)
		is.SetBytes(img, w.ic.Name, []byte(fmt.Sprintf("item-%d", iid)))
		is.SetInt64(img, w.ic.Price, int64(rng.Intn(9901)+100)) // $1.00–$100.00
		w.Item.MustInsertRow(uint64(iid), img)
	}
}

func (w *Workload) resolveColumns() {
	ws := w.Warehouse.Schema
	w.wc = warehouseCols{ws.ColIndex("w_id"), ws.ColIndex("w_name"), ws.ColIndex("w_tax"), ws.ColIndex("w_ytd")}
	ds := w.District.Schema
	w.dc = districtCols{ds.ColIndex("d_id"), ds.ColIndex("d_w_id"), ds.ColIndex("d_tax"), ds.ColIndex("d_ytd"), ds.ColIndex("d_next_o_id")}
	cs := w.Customer.Schema
	w.cc = customerCols{cs.ColIndex("c_id"), cs.ColIndex("c_d_id"), cs.ColIndex("c_w_id"), cs.ColIndex("c_last"),
		cs.ColIndex("c_credit"), cs.ColIndex("c_balance"), cs.ColIndex("c_ytd_payment"), cs.ColIndex("c_payment_cnt"), cs.ColIndex("c_data")}
	is := w.Item.Schema
	w.ic = itemCols{is.ColIndex("i_id"), is.ColIndex("i_name"), is.ColIndex("i_price")}
	ss := w.Stock.Schema
	w.sc = stockCols{ss.ColIndex("s_i_id"), ss.ColIndex("s_w_id"), ss.ColIndex("s_quantity"), ss.ColIndex("s_ytd"),
		ss.ColIndex("s_order_cnt"), ss.ColIndex("s_remote_cnt")}
	os := w.Orders.Schema
	w.oc = orderCols{os.ColIndex("o_id"), os.ColIndex("o_d_id"), os.ColIndex("o_w_id"), os.ColIndex("o_c_id"),
		os.ColIndex("o_entry_d"), os.ColIndex("o_ol_cnt"), os.ColIndex("o_all_local")}
	ns := w.NewOrderTbl.Schema
	w.noc = newOrderCols{ns.ColIndex("no_o_id"), ns.ColIndex("no_d_id"), ns.ColIndex("no_w_id")}
	ols := w.OrderLine.Schema
	w.olc = orderLineCols{ols.ColIndex("ol_o_id"), ols.ColIndex("ol_d_id"), ols.ColIndex("ol_w_id"), ols.ColIndex("ol_number"),
		ols.ColIndex("ol_i_id"), ols.ColIndex("ol_supply_w_id"), ols.ColIndex("ol_quantity"), ols.ColIndex("ol_amount")}
	hs := w.HistoryTbl.Schema
	w.hc = historyCols{hs.ColIndex("h_c_id"), hs.ColIndex("h_c_d_id"), hs.ColIndex("h_c_w_id"),
		hs.ColIndex("h_d_id"), hs.ColIndex("h_w_id"), hs.ColIndex("h_amount")}
}

// Config returns the workload configuration.
func (w *Workload) Config() Config { return w.cfg }
