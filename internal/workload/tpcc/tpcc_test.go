package tpcc_test

import (
	"math/rand"
	"testing"
	"time"

	"bamboo/internal/chop"
	"bamboo/internal/core"
	"bamboo/internal/occ"
	"bamboo/internal/stats"
	"bamboo/internal/workload/tpcc"
)

func newCollector() *stats.Collector { return &stats.Collector{} }

func testConfig(warehouses int) tpcc.Config {
	cfg := tpcc.DefaultConfig()
	cfg.Warehouses = warehouses
	cfg.Items = 200
	cfg.CustomersPerDistrict = 60
	return cfg
}

func runMix(t *testing.T, e core.Engine, w *tpcc.Workload, workers, perWorker int) {
	t.Helper()
	res := core.RunN(e, workers, perWorker, w.Generator())
	if res.Err != nil {
		t.Fatalf("%s: %v", e.Name(), res.Err)
	}
	total := uint64(workers * perWorker)
	if res.Report.Commits+res.Report.AbortsBy["user"] != total {
		t.Fatalf("%s: commits=%d + user aborts=%d != %d",
			e.Name(), res.Report.Commits, res.Report.AbortsBy["user"], total)
	}
	if err := w.CheckConsistency(); err != nil {
		t.Fatalf("%s: %v", e.Name(), err)
	}
}

func TestTPCCConsistencyAllProtocols(t *testing.T) {
	configs := map[string]core.Config{
		"BAMBOO":      core.Bamboo(),
		"BAMBOO-base": core.BambooBase(),
		"WOUND_WAIT":  core.WoundWait(),
		"WAIT_DIE":    core.WaitDie(),
		"NO_WAIT":     core.NoWait(),
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			db := core.NewDB(cfg)
			w, err := tpcc.Load(db, testConfig(1))
			if err != nil {
				t.Fatal(err)
			}
			runMix(t, core.NewLockEngine(db), w, 8, 100)
		})
	}
}

func TestTPCCConsistencySilo(t *testing.T) {
	db := core.NewDB(core.Config{})
	w, err := tpcc.Load(db, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	e := occ.New(db)
	defer e.Close()
	runMix(t, e, w, 8, 100)
}

func TestTPCCMultiWarehouse(t *testing.T) {
	db := core.NewDB(core.Bamboo())
	w, err := tpcc.Load(db, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	runMix(t, core.NewLockEngine(db), w, 8, 100)
}

func TestTPCCModifiedNewOrder(t *testing.T) {
	cfg := testConfig(1)
	cfg.ModifiedNewOrder = true
	db := core.NewDB(core.Bamboo())
	w, err := tpcc.Load(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	runMix(t, core.NewLockEngine(db), w, 4, 100)
}

func TestTPCCUserAbortRate(t *testing.T) {
	cfg := testConfig(1)
	cfg.PaymentFraction = 0 // NewOrder only
	cfg.UserAbortPct = 50   // amplified for a small-sample check
	db := core.NewDB(core.Bamboo())
	w, err := tpcc.Load(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewLockEngine(db)
	res := core.RunN(e, 4, 200, w.Generator())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	user := res.Report.AbortsBy["user"]
	frac := float64(user) / 800
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("user abort fraction = %.2f, want ≈0.5", frac)
	}
	if err := w.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestGenNewOrderDistinctItems(t *testing.T) {
	db := core.NewDB(core.Bamboo())
	w, err := tpcc.Load(db, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a := w.GenNewOrder(rng)
		if len(a.Items) < 5 || len(a.Items) > 15 {
			t.Fatalf("order has %d items", len(a.Items))
		}
		seen := map[int64]bool{}
		for _, it := range a.Items {
			if seen[it.IID] {
				t.Fatal("duplicate item id in order")
			}
			seen[it.IID] = true
		}
	}
}

func TestGenPaymentRemoteFraction(t *testing.T) {
	db := core.NewDB(core.Bamboo())
	w, err := tpcc.Load(db, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	remote := 0
	const n = 5000
	for i := 0; i < n; i++ {
		a := w.GenPayment(rng)
		if a.CWID != a.WID {
			remote++
		}
	}
	frac := float64(remote) / n
	if frac < 0.10 || frac > 0.20 {
		t.Fatalf("remote payment fraction = %.3f, want ≈0.15", frac)
	}
}

func TestTPCCConsistencyIC3(t *testing.T) {
	for _, modified := range []bool{false, true} {
		name := "original"
		if modified {
			name = "modified"
		}
		t.Run(name, func(t *testing.T) {
			cfg := testConfig(1)
			cfg.ModifiedNewOrder = modified
			db := core.NewDB(core.Config{})
			w, err := tpcc.Load(db, cfg)
			if err != nil {
				t.Fatal(err)
			}
			reg, payment, neworder := w.ChopRegistry()
			if reg.Merges() != 0 {
				t.Fatalf("TPC-C templates merged %d times; table orders agree, expected none", reg.Merges())
			}
			e := chop.New(db, reg)
			if _, err := w.RunIC3(e, payment, neworder, 8, 80); err != nil {
				t.Fatal(err)
			}
			if err := w.CheckConsistency(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTPCCUnannotatedWithStockLevel runs the full mix without RW
// pre-declaration — every update is a read-then-update that the executor
// upgrades in place — plus the read-only StockLevel transaction scanning
// the very district and stock rows NewOrder upgrades. The spec's
// consistency conditions must survive.
func TestTPCCUnannotatedWithStockLevel(t *testing.T) {
	configs := map[string]core.Config{
		"BAMBOO":      core.Bamboo(),
		"BAMBOO-base": core.BambooBase(),
		"WOUND_WAIT":  core.WoundWait(),
		"WAIT_DIE":    core.WaitDie(),
		"NO_WAIT":     core.NoWait(),
	}
	for name, cc := range configs {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cc.AbortBackoffMax = 200 * time.Microsecond
			db := core.NewDB(cc)
			cfg := testConfig(1)
			cfg.Unannotated = true
			cfg.StockLevelFraction = 0.2
			w, err := tpcc.Load(db, cfg)
			if err != nil {
				t.Fatal(err)
			}
			runMix(t, core.NewLockEngine(db), w, 8, 100)
		})
	}
}

// TestTPCCStockLevelReadsOrders inserts order history through committed
// NewOrders and checks a StockLevel run observes it without error.
func TestTPCCStockLevelReadsOrders(t *testing.T) {
	db := core.NewDB(core.Bamboo())
	cfg := testConfig(1)
	cfg.PaymentFraction = 0 // only NewOrder, to build order history
	cfg.UserAbortPct = 0
	w, err := tpcc.Load(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewLockEngine(db)
	res := core.RunN(e, 2, 30, w.Generator())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	sess := e.NewSession(0, newCollector())
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		if err := sess.Run(w.StockLevel(w.GenStockLevel(rng))); err != nil {
			t.Fatalf("stock-level run %d: %v", i, err)
		}
	}
}
