package tpcc_test

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"bamboo/internal/chop"
	"bamboo/internal/core"
	"bamboo/internal/occ"
	"bamboo/internal/stats"
	"bamboo/internal/storage"
	"bamboo/internal/workload/tpcc"
)

func newCollector() *stats.Collector { return &stats.Collector{} }

func testConfig(warehouses int) tpcc.Config {
	cfg := tpcc.DefaultConfig()
	cfg.Warehouses = warehouses
	cfg.Items = 200
	cfg.CustomersPerDistrict = 60
	return cfg
}

func runMix(t *testing.T, e core.Engine, w *tpcc.Workload, workers, perWorker int) {
	t.Helper()
	res := core.RunN(e, workers, perWorker, w.Generator())
	if res.Err != nil {
		t.Fatalf("%s: %v", e.Name(), res.Err)
	}
	total := uint64(workers * perWorker)
	if res.Report.Commits+res.Report.AbortsBy["user"] != total {
		t.Fatalf("%s: commits=%d + user aborts=%d != %d",
			e.Name(), res.Report.Commits, res.Report.AbortsBy["user"], total)
	}
	if err := w.CheckConsistency(); err != nil {
		t.Fatalf("%s: %v", e.Name(), err)
	}
}

func TestTPCCConsistencyAllProtocols(t *testing.T) {
	configs := map[string]core.Config{
		"BAMBOO":      core.Bamboo(),
		"BAMBOO-base": core.BambooBase(),
		"WOUND_WAIT":  core.WoundWait(),
		"WAIT_DIE":    core.WaitDie(),
		"NO_WAIT":     core.NoWait(),
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			db := core.NewDB(cfg)
			w, err := tpcc.Load(db, testConfig(1))
			if err != nil {
				t.Fatal(err)
			}
			runMix(t, core.NewLockEngine(db), w, 8, 100)
		})
	}
}

func TestTPCCConsistencySilo(t *testing.T) {
	db := core.NewDB(core.Config{})
	w, err := tpcc.Load(db, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	e := occ.New(db)
	defer e.Close()
	runMix(t, e, w, 8, 100)
}

func TestTPCCMultiWarehouse(t *testing.T) {
	db := core.NewDB(core.Bamboo())
	w, err := tpcc.Load(db, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	runMix(t, core.NewLockEngine(db), w, 8, 100)
}

// TestTPCCPartitionedMix runs the full mix over warehouse-range-
// partitioned tables (4 warehouses across 4 partitions, loaded in
// parallel): the spec consistency conditions must hold exactly as in the
// flat layout, and the partition counters must have seen traffic on every
// partition (Payment/NewOrder touch remote warehouses too).
func TestTPCCPartitionedMix(t *testing.T) {
	cc := core.Bamboo()
	cc.Partitions = 4
	db := core.NewDB(cc)
	w, err := tpcc.Load(db, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Warehouse.NumPartitions(); got != 4 {
		t.Fatalf("warehouse table has %d partitions, want 4", got)
	}
	// The key→partition routing seam: warehouse wid ranges to partition
	// wid·P/W, and the DB-level router agrees with the table's.
	for wid := uint64(0); wid < 4; wid++ {
		if got := db.PartitionOf(w.Warehouse, wid); got != int(wid) {
			t.Fatalf("warehouse %d routed to partition %d, want %d", wid, got, wid)
		}
	}
	runMix(t, core.NewLockEngine(db), w, 8, 100)
	for pid, a := range db.Global.PartitionAccesses() {
		if a == 0 {
			t.Fatalf("partition %d saw no accesses: %v", pid, db.Global.PartitionAccesses())
		}
	}
}

// TestTPCCMorePartitionsThanWarehouses pins the P>W contract: the
// configured partition count is honored (surplus partitions empty), the
// counter telemetry stays aligned with the table layout, and the mix
// still satisfies the consistency conditions.
func TestTPCCMorePartitionsThanWarehouses(t *testing.T) {
	cc := core.Bamboo()
	cc.Partitions = 4
	db := core.NewDB(cc)
	w, err := tpcc.Load(db, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Warehouse.NumPartitions(); got != 4 {
		t.Fatalf("warehouse table has %d partitions, want 4", got)
	}
	counts := w.Warehouse.PartitionRows()
	if counts[0]+counts[2] != 2 || counts[1] != 0 || counts[3] != 0 {
		t.Fatalf("2 warehouses over 4 partitions laid out as %v", counts)
	}
	runMix(t, core.NewLockEngine(db), w, 4, 50)
	accs := db.Global.PartitionAccesses()
	if len(accs) != 4 {
		t.Fatalf("partition counters = %v, want 4 entries", accs)
	}
}

// TestTPCCParallelLoadMatchesSerial checks the partition-parallel loader
// builds the same database shape the serial loader does: identical row
// counts per table, every warehouse-keyed row in the partition its
// warehouse ranges to, and Payment-by-last-name still resolving (the
// merged byLastName maps must cover every district).
func TestTPCCParallelLoadMatchesSerial(t *testing.T) {
	cfg := testConfig(4)

	serialDB := core.NewDB(core.Bamboo())
	serial, err := tpcc.Load(serialDB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cc := core.Bamboo()
	cc.Partitions = 4
	parDB := core.NewDB(cc)
	par, err := tpcc.Load(parDB, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, tbls := range [][2]*storage.Table{
		{serial.Warehouse, par.Warehouse},
		{serial.District, par.District},
		{serial.Customer, par.Customer},
		{serial.Item, par.Item},
		{serial.Stock, par.Stock},
	} {
		s, p := tbls[0], tbls[1]
		if s.Rows() != p.Rows() {
			t.Fatalf("table %s: serial %d rows, parallel %d", s.Schema.Name, s.Rows(), p.Rows())
		}
		// Every serial key exists in the parallel load, in its routed
		// partition.
		missing := 0
		s.Range(func(k uint64, _ *storage.Row) bool {
			r := p.Get(k)
			if r == nil {
				missing++
				return false
			}
			if r.PartitionID != p.PartitionFor(k) {
				t.Fatalf("table %s key %d in partition %d, routes to %d",
					p.Schema.Name, k, r.PartitionID, p.PartitionFor(k))
			}
			return true
		})
		if missing > 0 {
			t.Fatalf("table %s: parallel load is missing keys", s.Schema.Name)
		}
	}
	// Both loads must satisfy the freshly-loaded consistency conditions.
	if err := serial.CheckConsistency(); err != nil {
		t.Fatalf("serial: %v", err)
	}
	if err := par.CheckConsistency(); err != nil {
		t.Fatalf("parallel: %v", err)
	}
}

func TestTPCCModifiedNewOrder(t *testing.T) {
	cfg := testConfig(1)
	cfg.ModifiedNewOrder = true
	db := core.NewDB(core.Bamboo())
	w, err := tpcc.Load(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	runMix(t, core.NewLockEngine(db), w, 4, 100)
}

func TestTPCCUserAbortRate(t *testing.T) {
	cfg := testConfig(1)
	cfg.PaymentFraction = 0 // NewOrder only
	cfg.UserAbortPct = 50   // amplified for a small-sample check
	db := core.NewDB(core.Bamboo())
	w, err := tpcc.Load(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewLockEngine(db)
	res := core.RunN(e, 4, 200, w.Generator())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	user := res.Report.AbortsBy["user"]
	frac := float64(user) / 800
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("user abort fraction = %.2f, want ≈0.5", frac)
	}
	if err := w.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestGenNewOrderDistinctItems(t *testing.T) {
	db := core.NewDB(core.Bamboo())
	w, err := tpcc.Load(db, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a := w.GenNewOrder(rng)
		if len(a.Items) < 5 || len(a.Items) > 15 {
			t.Fatalf("order has %d items", len(a.Items))
		}
		seen := map[int64]bool{}
		for _, it := range a.Items {
			if seen[it.IID] {
				t.Fatal("duplicate item id in order")
			}
			seen[it.IID] = true
		}
	}
}

func TestGenPaymentRemoteFraction(t *testing.T) {
	db := core.NewDB(core.Bamboo())
	w, err := tpcc.Load(db, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	remote := 0
	const n = 5000
	for i := 0; i < n; i++ {
		a := w.GenPayment(rng)
		if a.CWID != a.WID {
			remote++
		}
	}
	frac := float64(remote) / n
	if frac < 0.10 || frac > 0.20 {
		t.Fatalf("remote payment fraction = %.3f, want ≈0.15", frac)
	}
}

func TestTPCCConsistencyIC3(t *testing.T) {
	for _, modified := range []bool{false, true} {
		name := "original"
		if modified {
			name = "modified"
		}
		t.Run(name, func(t *testing.T) {
			cfg := testConfig(1)
			cfg.ModifiedNewOrder = modified
			db := core.NewDB(core.Config{})
			w, err := tpcc.Load(db, cfg)
			if err != nil {
				t.Fatal(err)
			}
			reg, payment, neworder := w.ChopRegistry()
			if reg.Merges() != 0 {
				t.Fatalf("TPC-C templates merged %d times; table orders agree, expected none", reg.Merges())
			}
			e := chop.New(db, reg)
			if _, err := w.RunIC3(e, payment, neworder, 8, 80); err != nil {
				t.Fatal(err)
			}
			if err := w.CheckConsistency(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTPCCConsistencyIC3Unannotated runs the IC3 mix with the access
// modes stripped from the templates: the bodies' read-then-update
// accesses promote SH→EX in place inside the chop engine, the
// conservative analysis still finds zero merges (every overlapping
// column pair already had a writer), and the spec's consistency
// conditions must survive.
func TestTPCCConsistencyIC3Unannotated(t *testing.T) {
	cfg := testConfig(1)
	cfg.Unannotated = true
	db := core.NewDB(core.Config{})
	w, err := tpcc.Load(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg, payment, neworder := w.ChopRegistry()
	if reg.Merges() != 0 {
		t.Fatalf("un-annotated TPC-C templates merged %d times; conservative C-edge set should be unchanged", reg.Merges())
	}
	e := chop.New(db, reg)
	cols, err := w.RunIC3(e, payment, neworder, 8, 80)
	if err != nil {
		t.Fatal(err)
	}
	var upgrades uint64
	for _, c := range cols {
		upgrades += c.Upgrades
	}
	if upgrades == 0 {
		t.Fatal("no in-place promotions recorded; un-annotated bodies did not drive the upgrade path")
	}
	if err := w.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestTPCCConsistencyIC3SingleProc stresses the IC3 engine's retry path
// at GOMAXPROCS(1) — the configuration where the attach / piece-order
// spin loops used to livelock rarely under -race. The fix (escalating
// backoff carried across blockers, jittered retry backoff) makes the run
// terminate; this test keeps the 1-CPU path exercised in both the plain
// and -race CI jobs.
func TestTPCCConsistencyIC3SingleProc(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	rounds := 3
	if testing.Short() {
		rounds = 1
	}
	for round := 0; round < rounds; round++ {
		cfg := testConfig(1)
		db := core.NewDB(core.Config{})
		w, err := tpcc.Load(db, cfg)
		if err != nil {
			t.Fatal(err)
		}
		reg, payment, neworder := w.ChopRegistry()
		e := chop.New(db, reg)
		if _, err := w.RunIC3(e, payment, neworder, 8, 40); err != nil {
			t.Fatal(err)
		}
		if err := w.CheckConsistency(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTPCCUnannotatedWithStockLevel runs the full mix without RW
// pre-declaration — every update is a read-then-update that the executor
// upgrades in place — plus the read-only StockLevel transaction scanning
// the very district and stock rows NewOrder upgrades. The spec's
// consistency conditions must survive.
func TestTPCCUnannotatedWithStockLevel(t *testing.T) {
	configs := map[string]core.Config{
		"BAMBOO":      core.Bamboo(),
		"BAMBOO-base": core.BambooBase(),
		"WOUND_WAIT":  core.WoundWait(),
		"WAIT_DIE":    core.WaitDie(),
		"NO_WAIT":     core.NoWait(),
	}
	for name, cc := range configs {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cc.AbortBackoffMax = 200 * time.Microsecond
			db := core.NewDB(cc)
			cfg := testConfig(1)
			cfg.Unannotated = true
			cfg.StockLevelFraction = 0.2
			w, err := tpcc.Load(db, cfg)
			if err != nil {
				t.Fatal(err)
			}
			runMix(t, core.NewLockEngine(db), w, 8, 100)
		})
	}
}

// Load benchmarks: serial (flat single-partition) vs partition-parallel
// at the same scale. On a multi-core host the parallel loader approaches
// a W-way speedup (per-warehouse loading shares nothing); on a 1-CPU host
// the two are within noise, which is itself worth pinning — the
// goroutine fan-out must not cost anything when there is no parallelism
// to win. EXPERIMENTS.md records measured numbers.
func benchmarkTPCCLoad(b *testing.B, warehouses, partitions int) {
	cfg := tpcc.DefaultConfig()
	cfg.Warehouses = warehouses
	for i := 0; i < b.N; i++ {
		cc := core.Bamboo()
		cc.Partitions = partitions
		db := core.NewDB(cc)
		if _, err := tpcc.Load(db, cfg); err != nil {
			b.Fatal(err)
		}
		db.Close()
	}
}

func BenchmarkTPCCLoadW4Serial(b *testing.B)    { benchmarkTPCCLoad(b, 4, 1) }
func BenchmarkTPCCLoadW4Parallel4(b *testing.B) { benchmarkTPCCLoad(b, 4, 4) }
func BenchmarkTPCCLoadW8Serial(b *testing.B)    { benchmarkTPCCLoad(b, 8, 1) }
func BenchmarkTPCCLoadW8Parallel8(b *testing.B) { benchmarkTPCCLoad(b, 8, 8) }

// TestTPCCStockLevelReadsOrders inserts order history through committed
// NewOrders and checks a StockLevel run observes it without error.
func TestTPCCStockLevelReadsOrders(t *testing.T) {
	db := core.NewDB(core.Bamboo())
	cfg := testConfig(1)
	cfg.PaymentFraction = 0 // only NewOrder, to build order history
	cfg.UserAbortPct = 0
	w, err := tpcc.Load(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewLockEngine(db)
	res := core.RunN(e, 2, 30, w.Generator())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	sess := e.NewSession(0, newCollector())
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		if err := sess.Run(w.StockLevel(w.GenStockLevel(rng))); err != nil {
			t.Fatalf("stock-level run %d: %v", i, err)
		}
	}
}
