package tpcc

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"bamboo/internal/core"
	"bamboo/internal/storage"
)

// PaymentArgs are the inputs of one Payment transaction.
type PaymentArgs struct {
	WID, DID int64
	// Customer selection: by last name (60%) or by id (40%).
	ByLastName bool
	CLast      string
	CID        int64
	// CWID/CDID locate the customer (15% remote warehouse).
	CWID, CDID int64
	Amount     int64 // cents
}

// NewOrderArgs are the inputs of one NewOrder transaction.
type NewOrderArgs struct {
	WID, DID, CID int64
	Items         []OrderItem
	// Rollback simulates the 1% user abort on an unused item number.
	Rollback bool
	AllLocal bool
}

// OrderItem is one order line request.
type OrderItem struct {
	IID      int64
	SupplyW  int64
	Quantity int64
}

// GenPayment draws Payment arguments per the TPC-C spec.
func (w *Workload) GenPayment(rng *rand.Rand) PaymentArgs {
	wid := int64(rng.Intn(w.cfg.Warehouses))
	did := int64(rng.Intn(distPerWarehouse))
	a := PaymentArgs{
		WID: wid, DID: did,
		CWID: wid, CDID: did,
		Amount: int64(rng.Intn(499901) + 100), // $1.00–$5000.00
	}
	if w.cfg.Warehouses > 1 && rng.Intn(100) < w.cfg.RemotePaymentPct {
		a.CWID = int64(rng.Intn(w.cfg.Warehouses - 1))
		if a.CWID >= wid {
			a.CWID++
		}
		a.CDID = int64(rng.Intn(distPerWarehouse))
	}
	if rng.Intn(100) < 60 {
		a.ByLastName = true
		a.CLast = lastName(nuRand(rng, 255, 223, 0, 999))
	} else {
		a.CID = int64(nuRand(rng, 1023, 259, 0, w.cfg.CustomersPerDistrict-1))
	}
	return a
}

// GenNewOrder draws NewOrder arguments per the TPC-C spec. Item ids are
// de-duplicated within an order (DBx1000 does the same) so each stock row
// is written once, which lets Bamboo retire it at the last write.
func (w *Workload) GenNewOrder(rng *rand.Rand) NewOrderArgs {
	wid := int64(rng.Intn(w.cfg.Warehouses))
	a := NewOrderArgs{
		WID:      wid,
		DID:      int64(rng.Intn(distPerWarehouse)),
		CID:      int64(nuRand(rng, 1023, 259, 0, w.cfg.CustomersPerDistrict-1)),
		AllLocal: true,
	}
	n := rng.Intn(11) + 5 // 5–15 lines
	used := make(map[int64]bool, n)
	for len(a.Items) < n {
		iid := int64(nuRand(rng, 8191, 7911, 0, w.cfg.Items-1))
		if used[iid] {
			continue
		}
		used[iid] = true
		it := OrderItem{IID: iid, SupplyW: wid, Quantity: int64(rng.Intn(10) + 1)}
		if w.cfg.Warehouses > 1 && rng.Intn(100) < w.cfg.RemoteStockPct {
			it.SupplyW = int64(rng.Intn(w.cfg.Warehouses - 1))
			if it.SupplyW >= wid {
				it.SupplyW++
			}
			a.AllLocal = false
		}
		a.Items = append(a.Items, it)
	}
	if w.cfg.UserAbortPct > 0 && rng.Intn(100) < w.cfg.UserAbortPct {
		a.Rollback = true
	}
	return a
}

// Payment's per-step helpers are shared by the row-engine transaction
// body and the IC3 piece bodies.

// update is tx.Update, or — in Unannotated mode — a Read of the row
// followed by the Update, driving the executor's SH→EX upgrade path the
// way a client that does not pre-declare its write set would.
func (w *Workload) update(tx core.Tx, row *storage.Row, mutate func(img []byte)) error {
	if w.cfg.Unannotated {
		if _, err := tx.Read(row); err != nil {
			return err
		}
	}
	return tx.Update(row, mutate)
}

// declare forwards the access declaration unless the workload runs
// un-annotated (no pre-declared access information at all).
func (w *Workload) declare(tx core.Tx, n int) {
	if !w.cfg.Unannotated {
		tx.DeclareOps(n)
	}
}

// PayWarehouse adds the payment amount to W_YTD.
func (w *Workload) PayWarehouse(tx core.Tx, a *PaymentArgs) error {
	return w.update(tx, w.Warehouse.Get(uint64(a.WID)), func(img []byte) {
		w.Warehouse.Schema.AddInt64(img, w.wc.YTD, a.Amount)
	})
}

// PayDistrict adds the payment amount to D_YTD.
func (w *Workload) PayDistrict(tx core.Tx, a *PaymentArgs) error {
	return w.update(tx, w.District.Get(districtKey(a.WID, a.DID)), func(img []byte) {
		w.District.Schema.AddInt64(img, w.dc.YTD, a.Amount)
	})
}

// resolveCustomer maps by-last-name selection to a concrete id.
func (w *Workload) resolveCustomer(a *PaymentArgs) int64 {
	if !a.ByLastName {
		return a.CID
	}
	ids := w.byLastName[lastNameKey(a.CWID, a.CDID, a.CLast)]
	if len(ids) == 0 {
		// No customer with this name at this district (possible at
		// reduced scale): fall back to a deterministic id.
		return 0
	}
	return ids[len(ids)/2] // spec: ceiling(n/2) position
}

// PayCustomer applies the payment to the customer row.
func (w *Workload) PayCustomer(tx core.Tx, a *PaymentArgs) error {
	cid := w.resolveCustomer(a)
	cs := w.Customer.Schema
	return w.update(tx, w.Customer.Get(customerKey(a.CWID, a.CDID, cid)), func(img []byte) {
		cs.AddInt64(img, w.cc.Balance, -a.Amount)
		cs.AddInt64(img, w.cc.YTDPayment, a.Amount)
		cs.AddInt64(img, w.cc.PaymentCnt, 1)
		if string(cs.GetBytes(img, w.cc.Credit)) == "BC" {
			data := fmt.Sprintf("%d,%d,%d,%d,%d", cid, a.CDID, a.CWID, a.DID, a.Amount)
			cs.SetBytes(img, w.cc.Data, []byte(data))
		}
	})
}

// PayHistory inserts the history row.
func (w *Workload) PayHistory(tx core.Tx, a *PaymentArgs) error {
	hs := w.HistoryTbl.Schema
	img := hs.NewRowImage()
	hs.SetInt64(img, w.hc.CID, w.resolveCustomer(a))
	hs.SetInt64(img, w.hc.CDID, a.CDID)
	hs.SetInt64(img, w.hc.CWID, a.CWID)
	hs.SetInt64(img, w.hc.DID, a.DID)
	hs.SetInt64(img, w.hc.WID, a.WID)
	hs.SetInt64(img, w.hc.Amount, a.Amount)
	return tx.Insert(w.HistoryTbl, w.histKeys.Add(1), img)
}

// Payment returns the transaction body for args.
//
// Access order matches DBx1000: warehouse (the hotspot) first, then
// district, then customer, then the history insert. With one warehouse
// the W_YTD update is the global hotspot at the transaction's beginning —
// the best case for Bamboo's early retiring.
func (w *Workload) Payment(a PaymentArgs) core.TxnFunc {
	return func(tx core.Tx) error {
		w.declare(tx, 3)
		if err := w.PayWarehouse(tx, &a); err != nil {
			return err
		}
		if err := w.PayDistrict(tx, &a); err != nil {
			return err
		}
		if err := w.PayCustomer(tx, &a); err != nil {
			return err
		}
		return w.PayHistory(tx, &a)
	}
}

// NewOrderState carries per-transaction state between NewOrder's steps
// (and, under IC3, between its pieces).
type NewOrderState struct {
	Args NewOrderArgs
	OID  int64
	WTax int64
	DTax int64
}

// NOWarehouse reads W_TAX (and, with ModifiedNewOrder, W_YTD — the §5.6
// "true conflict" with Payment, free for row-granularity protocols).
func (w *Workload) NOWarehouse(tx core.Tx, st *NewOrderState) error {
	ws := w.Warehouse.Schema
	wImg, err := tx.Read(w.Warehouse.Get(uint64(st.Args.WID)))
	if err != nil {
		return err
	}
	st.WTax = ws.GetInt64(wImg, w.wc.Tax)
	if w.cfg.ModifiedNewOrder {
		_ = ws.GetInt64(wImg, w.wc.YTD)
	}
	return nil
}

// NODistrict draws the order id from D_NEXT_O_ID — the canonical
// read-modify-write: un-annotated it reads the district row first and
// upgrades the lock for the increment.
func (w *Workload) NODistrict(tx core.Tx, st *NewOrderState) error {
	ds := w.District.Schema
	return w.update(tx, w.District.Get(districtKey(st.Args.WID, st.Args.DID)), func(img []byte) {
		st.OID = ds.GetInt64(img, w.dc.NextOID)
		ds.SetInt64(img, w.dc.NextOID, st.OID+1)
		st.DTax = ds.GetInt64(img, w.dc.Tax)
	})
}

// NOCustomer reads the ordering customer.
func (w *Workload) NOCustomer(tx core.Tx, st *NewOrderState) error {
	_, err := tx.Read(w.Customer.Get(customerKey(st.Args.WID, st.Args.DID, st.Args.CID)))
	return err
}

// NOItems processes the order lines: item reads, stock updates,
// order-line inserts, and the 1% user abort on an invalid item.
func (w *Workload) NOItems(tx core.Tx, st *NewOrderState) error {
	a := &st.Args
	for n, it := range a.Items {
		if a.Rollback && n == len(a.Items)-1 {
			// Unused item number: the transaction rolls back (1%).
			return core.ErrUserAbort
		}
		is := w.Item.Schema
		iImg, err := tx.Read(w.Item.Get(uint64(it.IID)))
		if err != nil {
			return err
		}
		price := is.GetInt64(iImg, w.ic.Price)

		ss := w.Stock.Schema
		err = w.update(tx, w.Stock.Get(stockKey(it.SupplyW, it.IID)), func(img []byte) {
			q := ss.GetInt64(img, w.sc.Quantity)
			if q >= it.Quantity+10 {
				q -= it.Quantity
			} else {
				q = q - it.Quantity + 91
			}
			ss.SetInt64(img, w.sc.Quantity, q)
			ss.AddInt64(img, w.sc.YTD, it.Quantity)
			ss.AddInt64(img, w.sc.OrderCnt, 1)
			if it.SupplyW != a.WID {
				ss.AddInt64(img, w.sc.RemoteCnt, 1)
			}
		})
		if err != nil {
			return err
		}

		ols := w.OrderLine.Schema
		olImg := ols.NewRowImage()
		ols.SetInt64(olImg, w.olc.OID, st.OID)
		ols.SetInt64(olImg, w.olc.DID, a.DID)
		ols.SetInt64(olImg, w.olc.WID, a.WID)
		ols.SetInt64(olImg, w.olc.Number, int64(n))
		ols.SetInt64(olImg, w.olc.IID, it.IID)
		ols.SetInt64(olImg, w.olc.SupplyWID, it.SupplyW)
		ols.SetInt64(olImg, w.olc.Quantity, it.Quantity)
		ols.SetInt64(olImg, w.olc.Amount, price*it.Quantity)
		if err := tx.Insert(w.OrderLine, orderLineKey(a.WID, a.DID, st.OID, int64(n)), olImg); err != nil {
			return err
		}
	}
	return nil
}

// NOInsertOrder inserts the orders and new_order rows.
func (w *Workload) NOInsertOrder(tx core.Tx, st *NewOrderState) error {
	a := &st.Args
	os := w.Orders.Schema
	oImg := os.NewRowImage()
	os.SetInt64(oImg, w.oc.OID, st.OID)
	os.SetInt64(oImg, w.oc.DID, a.DID)
	os.SetInt64(oImg, w.oc.WID, a.WID)
	os.SetInt64(oImg, w.oc.CID, a.CID)
	os.SetInt64(oImg, w.oc.EntryD, time.Now().UnixNano())
	os.SetInt64(oImg, w.oc.OLCnt, int64(len(a.Items)))
	if a.AllLocal {
		os.SetInt64(oImg, w.oc.AllLocal, 1)
	}
	if err := tx.Insert(w.Orders, orderKey(a.WID, a.DID, st.OID), oImg); err != nil {
		return err
	}

	ns := w.NewOrderTbl.Schema
	nImg := ns.NewRowImage()
	ns.SetInt64(nImg, w.noc.OID, st.OID)
	ns.SetInt64(nImg, w.noc.DID, a.DID)
	ns.SetInt64(nImg, w.noc.WID, a.WID)
	return tx.Insert(w.NewOrderTbl, orderKey(a.WID, a.DID, st.OID), nImg)
}

// NewOrder returns the transaction body for args.
func (w *Workload) NewOrder(a NewOrderArgs) core.TxnFunc {
	return func(tx core.Tx) error {
		// warehouse read + district update + customer read + per-item
		// (item read + stock update).
		w.declare(tx, 3+2*len(a.Items))
		st := &NewOrderState{Args: a}
		for _, step := range []func(core.Tx, *NewOrderState) error{
			w.NOWarehouse, w.NODistrict, w.NOCustomer, w.NOItems, w.NOInsertOrder,
		} {
			if err := step(tx, st); err != nil {
				return err
			}
		}
		return nil
	}
}

// StockLevelArgs are the inputs of one StockLevel transaction.
type StockLevelArgs struct {
	WID, DID  int64
	Threshold int64
}

// GenStockLevel draws StockLevel arguments per the TPC-C spec (threshold
// uniform in [10, 20]).
func (w *Workload) GenStockLevel(rng *rand.Rand) StockLevelArgs {
	return StockLevelArgs{
		WID:       int64(rng.Intn(w.cfg.Warehouses)),
		DID:       int64(rng.Intn(distPerWarehouse)),
		Threshold: int64(rng.Intn(11) + 10),
	}
}

// stockLevelOrders is the number of most recent orders StockLevel
// examines (spec §2.8.2.1: 20).
const stockLevelOrders = 20

// StockLevel returns the transaction body for args: read D_NEXT_O_ID,
// walk the order lines of the district's last 20 orders, and count the
// distinct items whose stock quantity is below the threshold. The
// transaction is read-only and naturally un-annotated — it shares the
// district row and the stock rows with NewOrder's write (and, in
// Unannotated mode, upgrade) path, which is what makes it the paper-era
// contended read-modify-write benchmark shape.
//
// Orders below the initial D_NEXT_O_ID (the loader populates no order
// history) and order lines trimmed at reduced scale are skipped.
func (w *Workload) StockLevel(a StockLevelArgs) core.TxnFunc {
	return func(tx core.Tx) error {
		// Declared read-only: on an MVCC engine the whole scan runs at a
		// snapshot with zero lock acquisitions, so it stops inflating
		// NewOrder's tail latency; without MVCC this is a no-op and the
		// scan takes shared locks as before.
		core.MarkReadOnly(tx)
		dImg, err := tx.Read(w.District.Get(districtKey(a.WID, a.DID)))
		if err != nil {
			return err
		}
		nextOID := w.District.Schema.GetInt64(dImg, w.dc.NextOID)

		seen := make(map[int64]bool, 32)
		low := 0
		os, ols, ss := w.Orders.Schema, w.OrderLine.Schema, w.Stock.Schema
		for oid := nextOID - stockLevelOrders; oid < nextOID; oid++ {
			oRow := w.Orders.Get(orderKey(a.WID, a.DID, oid))
			if oRow == nil {
				continue // pre-load history does not exist
			}
			oImg, err := tx.Read(oRow)
			if err != nil {
				return err
			}
			olCnt := os.GetInt64(oImg, w.oc.OLCnt)
			for n := int64(0); n < olCnt; n++ {
				olRow := w.OrderLine.Get(orderLineKey(a.WID, a.DID, oid, n))
				if olRow == nil {
					continue
				}
				olImg, err := tx.Read(olRow)
				if err != nil {
					return err
				}
				iid := ols.GetInt64(olImg, w.olc.IID)
				supplyW := ols.GetInt64(olImg, w.olc.SupplyWID)
				if seen[iid] {
					continue
				}
				seen[iid] = true
				sImg, err := tx.Read(w.Stock.Get(stockKey(supplyW, iid)))
				if err != nil {
					return err
				}
				if ss.GetInt64(sImg, w.sc.Quantity) < a.Threshold {
					low++
				}
			}
		}
		_ = low // the count is the client's result; nothing to persist
		return nil
	}
}

// Generator returns the transaction mix as a core.Generator: Payment
// with PaymentFraction, StockLevel with StockLevelFraction, NewOrder
// with the remainder.
func (w *Workload) Generator() core.Generator {
	var mu sync.Mutex
	rngs := map[int]*rand.Rand{}
	return func(worker, seq int) core.TxnFunc {
		mu.Lock()
		rng, ok := rngs[worker]
		if !ok {
			rng = rand.New(rand.NewSource(w.cfg.Seed + int64(worker)*6364136223846793005 + 1442695040888963407))
			rngs[worker] = rng
		}
		mu.Unlock()
		draw := rng.Float64()
		if draw < w.cfg.PaymentFraction {
			return w.Payment(w.GenPayment(rng))
		}
		if draw < w.cfg.PaymentFraction+w.cfg.StockLevelFraction {
			return w.StockLevel(w.GenStockLevel(rng))
		}
		return w.NewOrder(w.GenNewOrder(rng))
	}
}
