// Package ycsb implements the YCSB workload as configured in the paper's
// §5.4: a single table with a primary key and payload columns, 16 accesses
// per transaction drawn from a Zipfian distribution with skew theta, a
// configurable read/update ratio, and an optional fraction of long
// read-only transactions scanning 1000 tuples (Figure 7).
//
// The paper's table is 100 M rows (~100 GB); the default here is scaled
// down, which preserves contention behaviour because the hot set is
// governed by theta, not the absolute table size.
package ycsb

import (
	"fmt"
	"math/rand"
	"sync"

	"bamboo/internal/core"
	"bamboo/internal/storage"
	"bamboo/internal/zipfian"
)

// Config parametrizes the workload.
type Config struct {
	// Rows is the table size.
	Rows int
	// OpsPerTxn is the number of accesses per transaction (paper: 16).
	OpsPerTxn int
	// Theta is the Zipfian skew (paper sweeps 0.5–0.99; 0.9 is the
	// high-contention default).
	Theta float64
	// ReadRatio is the probability an access is a read (paper: 0.5).
	ReadRatio float64
	// Columns is the number of payload columns (paper: 10).
	Columns int
	// ColumnBytes is each payload column's width (paper: 100).
	ColumnBytes int
	// LongReadFrac is the fraction of transactions that are long
	// read-only scans (Figure 7 uses 0.05); LongReadOps is their length
	// (Figure 7 uses 1000).
	LongReadFrac float64
	LongReadOps  int
	// ReadOnlyFrac is the fraction of transactions issued as declared
	// read-only: all accesses are reads and the body opts into the MVCC
	// snapshot path via core.MarkReadOnly (a no-op returning false when
	// the engine runs without MVCC — the plan still executes, through
	// shared locks). 0 keeps the classic mixed transactions only.
	ReadOnlyFrac float64
	// RMWFrac is the fraction of update accesses issued un-annotated: the
	// transaction Reads the row first and Updates it afterwards, so the
	// executor must upgrade the shared lock to exclusive in place instead
	// of knowing the write intent up front (the TXSQL-style contended
	// read-modify-write hotspot shape). 0 keeps the classic pre-declared
	// YCSB updates.
	RMWFrac float64
	// Seed seeds the generators.
	Seed int64
}

// DefaultConfig matches the paper's high-contention setup at reduced
// scale.
func DefaultConfig() Config {
	return Config{
		Rows: 200000, OpsPerTxn: 16, Theta: 0.9, ReadRatio: 0.5,
		Columns: 10, ColumnBytes: 100, LongReadOps: 1000,
	}
}

// Workload is a loaded YCSB workload.
type Workload struct {
	cfg      Config
	tbl      *storage.Table
	schema   *storage.Schema
	stampCol int
}

// Load creates and populates the YCSB table. With db.Partitions() > 1 the
// table is hash-partitioned and loaded partition-parallel: one goroutine
// per partition inserts exactly the keys that route to it, touching no
// structure any other loader touches. A single-partition load keeps the
// original serial path (and its exact rng stream) so Partitions=1 is
// bit-for-bit the pre-partitioning behavior.
func Load(db *core.DB, cfg Config) (*Workload, error) {
	if cfg.Rows <= cfg.OpsPerTxn {
		return nil, fmt.Errorf("ycsb: %d rows too small", cfg.Rows)
	}
	cols := []storage.Column{{Name: "f0", Type: storage.ColInt64}}
	for i := 1; i < cfg.Columns; i++ {
		cols = append(cols, storage.Column{
			Name: fmt.Sprintf("f%d", i), Type: storage.ColBytes, Size: cfg.ColumnBytes,
		})
	}
	schema := storage.NewSchema("ycsb", cols...)
	parts := db.Partitions()
	part := storage.HashPartitioner{N: parts}
	tbl, err := db.Catalog.CreateTablePartitioned(schema, cfg.Rows, part)
	if err != nil {
		return nil, err
	}
	loadRange := func(rng *rand.Rand, want int) {
		buf := make([]byte, cfg.ColumnBytes)
		for k := 0; k < cfg.Rows; k++ {
			if want >= 0 && part.Partition(uint64(k)) != want {
				continue
			}
			img := schema.NewRowImage()
			for c := 1; c < cfg.Columns; c++ {
				rng.Read(buf)
				schema.SetBytes(img, c, buf)
			}
			tbl.MustInsertRow(uint64(k), img)
		}
	}
	if parts == 1 {
		loadRange(rand.New(rand.NewSource(cfg.Seed+7)), -1)
	} else {
		var wg sync.WaitGroup
		for p := 0; p < parts; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				loadRange(rand.New(rand.NewSource(cfg.Seed+7+int64(p)*65537)), p)
			}(p)
		}
		wg.Wait()
	}
	return &Workload{cfg: cfg, tbl: tbl, schema: schema, stampCol: 0}, nil
}

// Table returns the backing table.
func (w *Workload) Table() *storage.Table { return w.tbl }

// op is one planned access.
type op struct {
	key   uint64
	write bool
	// rmw marks an un-annotated read-modify-write: read first, then
	// update the same row through an SH→EX upgrade.
	rmw bool
}

// planTxn draws a transaction's access plan: distinct keys (DBx1000
// de-duplicates repeated Zipfian draws within a transaction) with the
// configured write ratio. Keys are sorted hottest-first in draw order —
// Zipfian rank 0 is the hottest tuple, matching DBx1000's loader.
func (w *Workload) planTxn(z *zipfian.Zipfian, rng *rand.Rand) []op {
	n := w.cfg.OpsPerTxn
	ops := make([]op, 0, n)
	used := make(map[uint64]bool, n)
	for len(ops) < n {
		k := z.Next()
		if used[k] {
			continue
		}
		used[k] = true
		write := rng.Float64() >= w.cfg.ReadRatio
		ops = append(ops, op{
			key:   k,
			write: write,
			rmw:   write && rng.Float64() < w.cfg.RMWFrac,
		})
	}
	return ops
}

// NewGenerator returns a per-worker generator.
func (w *Workload) NewGenerator(worker int) func(seq int) core.TxnFunc {
	seed := w.cfg.Seed + int64(worker)*104729 + 13
	z := zipfian.New(uint64(w.cfg.Rows), w.cfg.Theta, seed)
	rng := rand.New(rand.NewSource(seed ^ 0x5deece66d))
	// One shared mutate closure: building it inside the op loop would
	// allocate per Update call (it escapes through the Tx interface),
	// which at ~8 writes/txn is the difference between ~1 and ~9
	// steady-state allocs/txn on the alloc-gate harness.
	stamp := func(img []byte) {
		w.schema.AddInt64(img, w.stampCol, 1)
	}
	return func(seq int) core.TxnFunc {
		if w.cfg.LongReadFrac > 0 && rng.Float64() < w.cfg.LongReadFrac {
			start := uint64(rng.Intn(w.cfg.Rows - w.cfg.LongReadOps))
			nOps := w.cfg.LongReadOps
			return func(tx core.Tx) error {
				tx.DeclareOps(nOps)
				for i := 0; i < nOps; i++ {
					if _, err := tx.Read(w.tbl.Get(start + uint64(i))); err != nil {
						return err
					}
				}
				return nil
			}
		}
		if w.cfg.ReadOnlyFrac > 0 && rng.Float64() < w.cfg.ReadOnlyFrac {
			ops := w.planTxn(z, rng)
			return func(tx core.Tx) error {
				core.MarkReadOnly(tx)
				tx.DeclareOps(len(ops))
				for _, o := range ops {
					if _, err := tx.Read(w.tbl.Get(o.key)); err != nil {
						return err
					}
				}
				return nil
			}
		}
		ops := w.planTxn(z, rng)
		return func(tx core.Tx) error {
			tx.DeclareOps(len(ops))
			for _, o := range ops {
				row := w.tbl.Get(o.key)
				if o.write {
					if o.rmw {
						// Un-annotated read-modify-write: the Update below
						// upgrades the shared lock in place.
						if _, err := tx.Read(row); err != nil {
							return err
						}
					}
					if err := tx.Update(row, stamp); err != nil {
						return err
					}
				} else if _, err := tx.Read(row); err != nil {
					return err
				}
			}
			return nil
		}
	}
}

// Generator adapts the workload to core.Generator.
func (w *Workload) Generator() core.Generator {
	var mu sync.Mutex
	gens := map[int]func(int) core.TxnFunc{}
	return func(worker, seq int) core.TxnFunc {
		mu.Lock()
		g, ok := gens[worker]
		if !ok {
			g = w.NewGenerator(worker)
			gens[worker] = g
		}
		mu.Unlock()
		return g(seq)
	}
}

// TotalWrites sums the f0 counters across the table — equal to the number
// of committed updates, for conservation checks.
func (w *Workload) TotalWrites() int64 {
	var total int64
	for k := 0; k < w.cfg.Rows; k++ {
		row := w.tbl.Get(uint64(k))
		img := row.Entry.CurrentData()
		if p := row.OCCImage.Load(); p != nil {
			img = *p
		}
		total += w.schema.GetInt64(img, w.stampCol)
	}
	return total
}
