package ycsb_test

import (
	"testing"
	"time"

	"bamboo/internal/core"
	"bamboo/internal/workload/ycsb"
)

func smallConfig() ycsb.Config {
	cfg := ycsb.DefaultConfig()
	cfg.Rows = 3000
	cfg.ColumnBytes = 8
	cfg.LongReadOps = 100
	return cfg
}

func TestYCSBWriteConservation(t *testing.T) {
	db := core.NewDB(core.Bamboo())
	w, err := ycsb.Load(db, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := core.RunN(core.NewLockEngine(db), 8, 100, w.Generator())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// Committed transactions each perform a deterministic number of +1
	// updates; the table-wide sum must equal the total update count. We
	// can't know the per-txn write split externally, so check a weaker
	// invariant: the sum is positive and bounded by ops*txns.
	total := w.TotalWrites()
	if total <= 0 || total > int64(8*100*16) {
		t.Fatalf("total writes = %d out of range", total)
	}
}

func TestYCSBLongReadOnly(t *testing.T) {
	cfg := smallConfig()
	cfg.LongReadFrac = 1.0 // every transaction is a long scan
	db := core.NewDB(core.Bamboo())
	w, err := ycsb.Load(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := core.RunN(core.NewLockEngine(db), 4, 20, w.Generator())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Report.Commits != 80 {
		t.Fatalf("commits = %d, want 80", res.Report.Commits)
	}
	if w.TotalWrites() != 0 {
		t.Fatal("read-only scan workload wrote data")
	}
}

func TestYCSBSkewHitsHotSet(t *testing.T) {
	cfg := smallConfig()
	cfg.Theta = 0.9
	db := core.NewDB(core.Bamboo())
	w, err := ycsb.Load(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := core.RunN(core.NewLockEngine(db), 4, 200, w.Generator())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// With theta=0.9 the hottest key must absorb far more writes than an
	// average key.
	tbl := w.Table()
	hot := tbl.Schema.GetInt64(tbl.Get(0).Entry.CurrentData(), 0)
	if hot < 20 {
		t.Fatalf("hottest key got only %d writes under theta=0.9", hot)
	}
}

// TestYCSBPartitionedLoadComplete checks the partition-parallel loader
// produces a complete table: every key present exactly once, per-partition
// counts summing to Rows, access counters feeding the partition ids, and a
// contended run over the partitioned table conserving writes.
func TestYCSBPartitionedLoadComplete(t *testing.T) {
	cc := core.Bamboo()
	cc.Partitions = 4
	db := core.NewDB(cc)
	cfg := smallConfig()
	w, err := ycsb.Load(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := w.Table()
	if tbl.NumPartitions() != 4 {
		t.Fatalf("partitions = %d, want 4", tbl.NumPartitions())
	}
	if got := tbl.Rows(); got != int64(cfg.Rows) {
		t.Fatalf("rows = %d, want %d", got, cfg.Rows)
	}
	for k := 0; k < cfg.Rows; k++ {
		r := tbl.Get(uint64(k))
		if r == nil {
			t.Fatalf("key %d missing after parallel load", k)
		}
		if r.PartitionID != tbl.PartitionFor(uint64(k)) {
			t.Fatalf("key %d in partition %d, routes to %d", k, r.PartitionID, tbl.PartitionFor(uint64(k)))
		}
	}
	var sum int64
	for _, c := range tbl.PartitionRows() {
		if c == 0 {
			t.Fatalf("empty partition after parallel load: %v", tbl.PartitionRows())
		}
		sum += c
	}
	if sum != int64(cfg.Rows) {
		t.Fatalf("partition counts sum to %d, want %d", sum, cfg.Rows)
	}

	res := core.RunN(core.NewLockEngine(db), 4, 100, w.Generator())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	total := w.TotalWrites()
	if total <= 0 || total > int64(4*100*16) {
		t.Fatalf("total writes = %d out of range", total)
	}
	accs := db.Global.PartitionAccesses()
	if len(accs) != 4 {
		t.Fatalf("partition access counters = %v, want 4 entries", accs)
	}
	var accSum uint64
	for _, a := range accs {
		if a == 0 {
			t.Fatalf("a partition saw zero accesses: %v", accs)
		}
		accSum += a
	}
	if accSum == 0 {
		t.Fatal("no partition accesses recorded")
	}
}

func TestYCSBRMWMixRunsUnannotated(t *testing.T) {
	// Every update is issued read-then-update: the whole write load goes
	// through the executor's SH→EX upgrade path, under contention (theta
	// 0.9), and write conservation must still hold.
	for name, cc := range map[string]core.Config{
		"BAMBOO":     core.Bamboo(),
		"WOUND_WAIT": core.WoundWait(),
		"NO_WAIT":    core.NoWait(),
	} {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cc.AbortBackoffMax = 200 * time.Microsecond // damp no-wait upgrade storms
			db := core.NewDB(cc)
			cfg := smallConfig()
			cfg.Theta = 0.9
			cfg.RMWFrac = 1.0
			w, err := ycsb.Load(db, cfg)
			if err != nil {
				t.Fatal(err)
			}
			res := core.RunN(core.NewLockEngine(db), 4, 60, w.Generator())
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if res.Report.Commits != 4*60 {
				t.Fatalf("commits = %d, want %d", res.Report.Commits, 4*60)
			}
			total := w.TotalWrites()
			if total <= 0 || total > int64(4*60*16) {
				t.Fatalf("total writes = %d out of range", total)
			}
		})
	}
}
